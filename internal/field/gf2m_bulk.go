package field

import "fmt"

// Native bulk kernels for GF(2^m). Addition is a plain XOR loop;
// multiplicative kernels hoist the scalar operand's discrete log out of the
// loop, so each element costs one table lookup and one bounded subtraction
// instead of a dynamic dispatch plus two log lookups.

var _ Bulk[uint64] = (*GF2m)(nil)

// AddVec implements Bulk.
func (f *GF2m) AddVec(dst, a, b []uint64) {
	for i := range a {
		dst[i] = a[i] ^ b[i]
	}
}

// SubVec implements Bulk; subtraction is addition in characteristic 2.
func (f *GF2m) SubVec(dst, a, b []uint64) {
	for i := range a {
		dst[i] = a[i] ^ b[i]
	}
}

// MulVec implements Bulk.
func (f *GF2m) MulVec(dst, a, b []uint64) {
	for i := range a {
		dst[i] = f.Mul(a[i], b[i])
	}
}

// ScaleVec implements Bulk.
func (f *GF2m) ScaleVec(dst []uint64, c uint64, a []uint64) {
	if c == 0 {
		for i := range a {
			dst[i] = 0
		}
		return
	}
	logC := uint64(f.logT[c])
	mod := f.order - 1
	for i := range a {
		x := a[i]
		if x == 0 {
			dst[i] = 0
			continue
		}
		s := logC + uint64(f.logT[x])
		if s >= mod {
			s -= mod
		}
		dst[i] = uint64(f.expT[s])
	}
}

// ScaleAccVec implements Bulk.
func (f *GF2m) ScaleAccVec(dst []uint64, c uint64, a []uint64) {
	if c == 0 {
		return
	}
	logC := uint64(f.logT[c])
	mod := f.order - 1
	for i := range a {
		x := a[i]
		if x == 0 {
			continue
		}
		s := logC + uint64(f.logT[x])
		if s >= mod {
			s -= mod
		}
		dst[i] ^= uint64(f.expT[s])
	}
}

// SubScaleVec implements Bulk; identical to ScaleAccVec in characteristic 2.
func (f *GF2m) SubScaleVec(dst []uint64, c uint64, a []uint64) {
	f.ScaleAccVec(dst, c, a)
}

// DotVec implements Bulk.
func (f *GF2m) DotVec(a, b []uint64) uint64 {
	var acc uint64
	for i := range a {
		acc ^= f.Mul(a[i], b[i])
	}
	return acc
}

// SubScalarVec implements Bulk.
func (f *GF2m) SubScalarVec(dst, a []uint64, c uint64) {
	for i := range a {
		dst[i] = a[i] ^ c
	}
}

// ScalarSubVec implements Bulk.
func (f *GF2m) ScalarSubVec(dst []uint64, c uint64, a []uint64) {
	for i := range a {
		dst[i] = c ^ a[i]
	}
}

// HornerVec implements Bulk.
func (f *GF2m) HornerVec(acc, xs []uint64, c uint64) {
	for i := range acc {
		acc[i] = f.Mul(acc[i], xs[i]) ^ c
	}
}

// BatchInvInto implements Bulk.
func (f *GF2m) BatchInvInto(dst, xs []uint64) error {
	n := len(xs)
	if len(dst) < n {
		panic(fmt.Sprintf("field: BatchInvInto dst length %d < %d", len(dst), n))
	}
	for i, x := range xs {
		if x == 0 {
			return fmt.Errorf("field: batch inverse of zero at index %d: %w", i, ErrDivisionByZero)
		}
		// Direct log-table inversion beats Montgomery's trick here: no
		// multiplication chain is needed when every inverse is one lookup.
		dst[i] = uint64(f.expT[(f.order-1-uint64(f.logT[x]))%(f.order-1)])
	}
	return nil
}
