package lint_test

import (
	"testing"

	"codedsm/internal/lint"
	"codedsm/internal/lint/linttest"
)

func TestDetMap(t *testing.T) {
	linttest.Run(t, "testdata/src/detmap", "codedsm/internal/csm", lint.DetMap)
}

func TestDetMapConsensusSubpackage(t *testing.T) {
	// Tree-aware scoping: consensus implementations live in
	// subpackages of internal/consensus and must be covered.
	linttest.Run(t, "testdata/src/detmap", "codedsm/internal/consensus/pbft", lint.DetMap)
}

func TestDetMapShardPackage(t *testing.T) {
	// The sharded router's placement and two-phase paths feed
	// client-visible output and the digest comparison against the
	// unsharded oracle, so internal/shard is protocol scope too.
	linttest.Run(t, "testdata/src/detmap", "codedsm/internal/shard", lint.DetMap)
}

func TestDetMapOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/outofscope", "codedsm/internal/other", lint.DetMap)
}

func TestDetSource(t *testing.T) {
	linttest.Run(t, "testdata/src/detsource", "codedsm/internal/csm", lint.DetSource)
}

func TestDetSourceExemptHarness(t *testing.T) {
	linttest.Run(t, "testdata/src/outofscope", "codedsm/internal/procharness", lint.DetSource)
}

func TestDetSourceExemptCommand(t *testing.T) {
	linttest.Run(t, "testdata/src/outofscope", "codedsm/cmd/bench", lint.DetSource)
}

func TestErrString(t *testing.T) {
	// errstring applies in every package, test files included.
	linttest.Run(t, "testdata/src/errstring", "codedsm/internal/anywhere", lint.ErrString)
}

func TestWALFsync(t *testing.T) {
	linttest.Run(t, "testdata/src/walfsync", "codedsm/internal/wal", lint.WALFsync)
}

func TestWALFsyncOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/outofscope", "codedsm/internal/other", lint.WALFsync)
}

func TestWireMap(t *testing.T) {
	linttest.Run(t, "testdata/src/wiremap", "codedsm/internal/transport", lint.WireMap)
}

func TestWireMapOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata/src/outofscope", "codedsm/internal/other", lint.WireMap)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata/src/shadow", "codedsm/internal/anywhere", lint.Shadow)
}
