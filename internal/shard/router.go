package shard

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"codedsm/internal/csm"
	"codedsm/internal/field"
)

// Option configures a router built with Open. Like csm.Option, options
// validate eagerly and fail Open with a message naming the option.
type Option func(*settings) error

type perShardOpts struct {
	shard int
	opts  []csm.Option
}

type settings struct {
	shards      int
	machines    int
	slots       int
	vnodes      int
	seed        uint64
	clusterOpts []csm.Option
	shardOpts   []perShardOpts
	clientOpts  []csm.ClientOption
	pad         any // []E, asserted in Open
	initial     any // [][]E, asserted in Open
}

// optionErr builds an Option that fails Open with the given message.
func optionErr(format string, args ...any) Option {
	err := fmt.Errorf(format, args...)
	return func(*settings) error { return err }
}

// WithShards sets the shard count S. Required.
func WithShards(s int) Option {
	if s < 1 {
		return optionErr("WithShards(%d): need at least one shard", s)
	}
	return func(st *settings) error { st.shards = s; return nil }
}

// WithMachines sets the global machine count the router serves. Required.
// Machines are addressed by global index [0, machines) and assigned to
// shards by the consistent-hash ring.
func WithMachines(m int) Option {
	if m < 1 {
		return optionErr("WithMachines(%d): need at least one machine", m)
	}
	return func(st *settings) error { st.machines = m; return nil }
}

// WithSlots sets each shard cluster's machine capacity K. A shard must
// have a slot for every machine the ring assigns it, plus free slots to
// receive migrations; the default is the ring's maximum shard load plus
// one. Every shard has the same capacity so a machine can migrate to any
// shard.
func WithSlots(k int) Option {
	if k < 1 {
		return optionErr("WithSlots(%d): need at least one slot per shard", k)
	}
	return func(st *settings) error { st.slots = k; return nil }
}

// WithVirtualNodes sets the per-shard virtual-node count of the ring
// (default DefaultVirtualNodes).
func WithVirtualNodes(v int) Option {
	if v < 1 {
		return optionErr("WithVirtualNodes(%d): need at least one virtual node", v)
	}
	return func(st *settings) error { st.vnodes = v; return nil }
}

// WithSeed seeds the ring placement, the per-shard cluster seeds (each
// shard derives its own by a fixed mix), and the two-phase coordinator
// election. Fixed seed ⇒ bit-identical runs.
func WithSeed(seed uint64) Option {
	return func(st *settings) error { st.seed = seed; return nil }
}

// WithClusterOptions appends csm options applied to every shard cluster
// (batching, pipelining, consensus kind, durability, parallelism, ...).
// The router appends its own WithMachines and WithSeed afterwards, so
// per-cluster machine counts and seeds are always router-managed.
func WithClusterOptions(opts ...csm.Option) Option {
	return func(st *settings) error {
		st.clusterOpts = append(st.clusterOpts, opts...)
		return nil
	}
}

// WithClusterOptionsFor appends csm options applied to one shard's
// cluster only, after the shared WithClusterOptions (tests use this to
// give a single shard a fault budget or a churn schedule).
func WithClusterOptionsFor(shard int, opts ...csm.Option) Option {
	if shard < 0 {
		return optionErr("WithClusterOptionsFor(%d): negative shard", shard)
	}
	return func(st *settings) error {
		st.shardOpts = append(st.shardOpts, perShardOpts{shard: shard, opts: opts})
		return nil
	}
}

// WithClientOptions appends csm client options applied every time the
// router opens a shard's ingress client (admission policy, queue depth).
func WithClientOptions(opts ...csm.ClientOption) Option {
	return func(st *settings) error {
		st.clientOpts = append(st.clientOpts, opts...)
		return nil
	}
}

// WithPadCommand sets the identity command used both as the shard
// clients' pad and as the two-phase prepare probe (defaults to the
// all-zero command vector). The element type must match the router's
// field element.
func WithPadCommand[E comparable](cmd []E) Option {
	return func(st *settings) error { st.pad = cmd; return nil }
}

// WithInitialStates sets the global machines' initial state vectors, in
// global machine order (default all-zero). The router scatters them to
// each machine's assigned shard slot.
func WithInitialStates[E comparable](states [][]E) Option {
	return func(st *settings) error { st.initial = states; return nil }
}

// placeEntry locates a global machine inside the shard fleet.
type placeEntry struct {
	shard int
	slot  int
}

// Move records one completed rebalance.
type Move struct {
	Machine int
	From    int
	To      int
}

// Router serves a fleet of S independent CSM clusters behind one
// Submit/Future/Results surface. Machines are addressed by global index;
// the consistent-hash ring fixes each machine's home shard and the
// router keeps a machine → (shard, slot) placement that Rebalance
// updates when a machine migrates. Submit routes to the owning shard's
// ingress client; SubmitCross (twophase.go) coordinates commands that
// span shards.
type Router[E comparable] struct {
	f        field.Field[E]
	ring     *Ring
	machines int
	slots    int
	seed     uint64
	cmdLen   int
	stateLen int
	pad      []E
	sessions atomic.Uint64 // two-phase session counter (coordinator beacon)

	clientOpts []csm.ClientOption
	clusters   []*csm.Cluster[E]

	// mu guards the routing state. Submit holds it shared for the whole
	// enqueue (so a rebalance never closes a client mid-Submit); Rebalance
	// and Close hold it exclusively — that exclusivity is the fence that
	// lets them close, hand off, and reopen shard clients while no new
	// traffic routes.
	mu      sync.RWMutex
	clients []*csm.Client[E]
	place   []placeEntry
	slotOf  [][]int // per shard: slot → global machine, -1 when free
	moves   []Move
	closed  bool
	runErr  error

	// The Results stream mirrors csm.Client.Results: futures are logged
	// in submission order only while a consumer exists.
	logMu    sync.Mutex
	logCond  *sync.Cond
	stream   bool
	finished bool
	log      []*Future[E]
}

// shardSeed derives shard s's cluster seed from the router seed.
func shardSeed(seed uint64, s int) uint64 {
	return mix64(mix64(seed^0x5eed) ^ uint64(s))
}

// Open builds the ring, opens the S shard clusters via csm.Open (so
// every engine option composes), scatters the initial states, and opens
// each shard's ingress client. The router owns the clients until Close.
func Open[E comparable](f field.Field[E], newTransition csm.TransitionFactory[E], opts ...Option) (*Router[E], error) {
	if f == nil || newTransition == nil {
		return nil, fmt.Errorf("shard: Open: the field and transition factory are required")
	}
	s := settings{vnodes: DefaultVirtualNodes}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("shard: Open: nil Option")
		}
		if err := opt(&s); err != nil {
			return nil, fmt.Errorf("shard: Open: %w", err)
		}
	}
	if s.shards == 0 {
		return nil, fmt.Errorf("shard: Open: WithShards is required")
	}
	if s.machines == 0 {
		return nil, fmt.Errorf("shard: Open: WithMachines is required")
	}
	ring, err := NewRing(s.shards, s.vnodes, s.seed)
	if err != nil {
		return nil, fmt.Errorf("shard: Open: %w", err)
	}
	tr, err := newTransition(f)
	if err != nil {
		return nil, fmt.Errorf("shard: Open: building transition: %w", err)
	}
	loads := ring.Loads(s.machines)
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	slots := s.slots
	if slots == 0 {
		slots = maxLoad + 1 // headroom to receive one migration
	}
	if slots < maxLoad {
		return nil, fmt.Errorf("shard: Open: WithSlots(%d) below the ring's maximum shard load %d", slots, maxLoad)
	}
	rt := &Router[E]{
		f:          f,
		ring:       ring,
		machines:   s.machines,
		slots:      slots,
		seed:       s.seed,
		cmdLen:     tr.CmdLen(),
		stateLen:   tr.StateLen(),
		clientOpts: s.clientOpts,
		clusters:   make([]*csm.Cluster[E], s.shards),
		clients:    make([]*csm.Client[E], s.shards),
		place:      make([]placeEntry, s.machines),
		slotOf:     make([][]int, s.shards),
	}
	rt.logCond = sync.NewCond(&rt.logMu)

	rt.pad = field.ZeroVec(f, rt.cmdLen)
	if s.pad != nil {
		p, ok := s.pad.([]E)
		if !ok {
			return nil, fmt.Errorf("shard: Open: WithPadCommand element type %T does not match the router's field element %T", s.pad, *new(E))
		}
		if len(p) != rt.cmdLen {
			return nil, fmt.Errorf("shard: Open: WithPadCommand length %d, want %d", len(p), rt.cmdLen)
		}
		rt.pad = append([]E(nil), p...)
	}

	var initial [][]E
	if s.initial != nil {
		states, ok := s.initial.([][]E)
		if !ok {
			return nil, fmt.Errorf("shard: Open: WithInitialStates element type %T does not match the router's field element %T", s.initial, *new(E))
		}
		if len(states) != s.machines {
			return nil, fmt.Errorf("shard: Open: WithInitialStates has %d states for %d machines", len(states), s.machines)
		}
		initial = states
	}

	// Deterministic placement: machines fill their home shard's slots in
	// global machine order.
	for sh := range rt.slotOf {
		rt.slotOf[sh] = make([]int, slots)
		for i := range rt.slotOf[sh] {
			rt.slotOf[sh][i] = -1
		}
	}
	next := make([]int, s.shards)
	for m := 0; m < s.machines; m++ {
		sh := ring.Machine(m)
		slot := next[sh]
		next[sh]++
		rt.place[m] = placeEntry{shard: sh, slot: slot}
		rt.slotOf[sh][slot] = m
	}

	// Per-shard initial states, scattered to assigned slots (free slots
	// hold the all-zero state, the additive identity a vacated slot also
	// resets to).
	for sh := 0; sh < s.shards; sh++ {
		shardStates := make([][]E, slots)
		for slot := range shardStates {
			if m := rt.slotOf[sh][slot]; m >= 0 && initial != nil {
				if len(initial[m]) != rt.stateLen {
					return nil, fmt.Errorf("shard: Open: WithInitialStates machine %d length %d, want %d", m, len(initial[m]), rt.stateLen)
				}
				shardStates[slot] = initial[m]
			} else {
				shardStates[slot] = field.ZeroVec(f, rt.stateLen)
			}
		}
		clusterOpts := append([]csm.Option(nil), s.clusterOpts...)
		for _, pso := range s.shardOpts {
			if pso.shard >= s.shards {
				return nil, fmt.Errorf("shard: Open: WithClusterOptionsFor(%d) with %d shards", pso.shard, s.shards)
			}
			if pso.shard == sh {
				clusterOpts = append(clusterOpts, pso.opts...)
			}
		}
		// Router-managed knobs go last: later csm options override earlier.
		clusterOpts = append(clusterOpts,
			csm.WithMachines(slots),
			csm.WithSeed(shardSeed(s.seed, sh)),
			csm.WithInitialStates(shardStates),
		)
		c, err := csm.Open(f, newTransition, clusterOpts...)
		if err != nil {
			return nil, fmt.Errorf("shard: Open: shard %d: %w", sh, err)
		}
		rt.clusters[sh] = c
	}
	for sh := range rt.clients {
		if err := rt.openClient(sh); err != nil {
			for j := 0; j < sh; j++ {
				rt.clients[j].Close()
			}
			return nil, err
		}
	}
	return rt, nil
}

// openClient (re)opens shard sh's ingress client with the router's
// client options plus its pad command.
func (rt *Router[E]) openClient(sh int) error {
	opts := append([]csm.ClientOption(nil), rt.clientOpts...)
	opts = append(opts, csm.WithPadCommand(rt.pad))
	cl, err := rt.clusters[sh].Open(opts...)
	if err != nil {
		return &ShardError{Shard: sh, Err: fmt.Errorf("open client: %w", err)}
	}
	rt.clients[sh] = cl
	return nil
}

// Ring returns the router's consistent-hash ring.
func (rt *Router[E]) Ring() *Ring { return rt.ring }

// Shards returns the shard count S.
func (rt *Router[E]) Shards() int { return rt.ring.Shards() }

// Machines returns the global machine count.
func (rt *Router[E]) Machines() int { return rt.machines }

// Slots returns each shard cluster's machine capacity.
func (rt *Router[E]) Slots() int { return rt.slots }

// ShardOf returns the shard currently serving global machine m (its ring
// home unless a Rebalance moved it).
func (rt *Router[E]) ShardOf(m int) (int, error) {
	if m < 0 || m >= rt.machines {
		return 0, fmt.Errorf("shard: ShardOf: machine %d out of range [0,%d)", m, rt.machines)
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.place[m].shard, nil
}

// Loads returns how many machines each shard currently serves.
func (rt *Router[E]) Loads() []int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]int, len(rt.clusters))
	for _, p := range rt.place {
		out[p.shard]++
	}
	return out
}

// Moves returns the completed rebalances, in order.
func (rt *Router[E]) Moves() []Move {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]Move(nil), rt.moves...)
}

// Cluster exposes shard sh's underlying cluster (read-only inspection;
// the router's clients own the clusters while the router is open).
func (rt *Router[E]) Cluster(sh int) (*csm.Cluster[E], error) {
	if sh < 0 || sh >= len(rt.clusters) {
		return nil, fmt.Errorf("shard: Cluster: shard %d out of range [0,%d)", sh, len(rt.clusters))
	}
	return rt.clusters[sh], nil
}

// Future is the pending result of one routed command: a csm future plus
// the global machine and shard it routed to. Errors surface wrapped in a
// *ShardError naming the shard, with the csm chain intact underneath.
type Future[E comparable] struct {
	machine int
	shard   int
	inner   *csm.Future[E]
}

// Machine returns the global machine the command addressed.
func (f *Future[E]) Machine() int { return f.machine }

// Shard returns the shard the command routed to.
func (f *Future[E]) Shard() int { return f.shard }

// Done is closed when the future has resolved.
func (f *Future[E]) Done() <-chan struct{} { return f.inner.Done() }

// Wait blocks until the future resolves (or ctx is done) and returns the
// machine's decoded output for the command's round.
func (f *Future[E]) Wait(ctx context.Context) ([]E, error) {
	out, err := f.inner.Wait(ctx)
	if err != nil && ctx.Err() == nil {
		return out, &ShardError{Shard: f.shard, Err: err}
	}
	return out, err
}

// Submit routes cmd to global machine m's shard and enqueues it there,
// returning a Future. Submit may be called from any number of
// goroutines; it blocks while the target machine's queue is full
// (backpressure, honouring ctx) and while a Rebalance or Close holds the
// routing fence.
func (rt *Router[E]) Submit(ctx context.Context, m int, cmd []E) (*Future[E], error) {
	if m < 0 || m >= rt.machines {
		return nil, fmt.Errorf("shard: Submit: machine %d out of range [0,%d)", m, rt.machines)
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.closed {
		return nil, ErrRouterClosed
	}
	p := rt.place[m]
	inner, err := rt.clients[p.shard].Submit(ctx, p.slot, cmd)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, &ShardError{Shard: p.shard, Err: err}
	}
	fut := &Future[E]{machine: m, shard: p.shard, inner: inner}
	rt.logMu.Lock()
	if rt.stream {
		rt.log = append(rt.log, fut)
		rt.logCond.Broadcast()
	}
	rt.logMu.Unlock()
	return fut, nil
}

// Results streams the router's submitted futures in submission order,
// mirroring csm.Client.Results: the stream starts at the Results call,
// blocks waiting for further submissions while the router is open, ends
// once the router has closed and every buffered future was yielded, and
// supports one consumer. SubmitCross commands do not appear (their
// outcomes return synchronously from SubmitCross).
func (rt *Router[E]) Results() iter.Seq[*Future[E]] {
	rt.logMu.Lock()
	rt.stream = true
	rt.logMu.Unlock()
	return func(yield func(*Future[E]) bool) {
		defer func() {
			rt.logMu.Lock()
			rt.stream = false
			rt.log = nil
			rt.logMu.Unlock()
		}()
		for {
			rt.logMu.Lock()
			for len(rt.log) == 0 && !rt.finished {
				rt.logCond.Wait()
			}
			if len(rt.log) == 0 {
				rt.logMu.Unlock()
				return
			}
			f := rt.log[0]
			rt.log[0] = nil
			rt.log = rt.log[1:]
			rt.logMu.Unlock()
			if !yield(f) {
				return
			}
		}
	}
}

// Rebalance migrates global machine m to shard `to` through the coded
// handoff: the routing fence closes the source and target shards'
// clients (draining their queues, so every in-flight future resolves or
// fails deterministically before the move), the source decodes the
// machine's state from its nodes' coded shares
// (csm.DecodeMachineState), the target installs it as a rank-1 share
// update (csm.AdoptMachineState), the vacated source slot resets to the
// all-zero state, and both clients reopen. Traffic on other shards is
// never fenced.
func (rt *Router[E]) Rebalance(m, to int) error {
	if m < 0 || m >= rt.machines {
		return fmt.Errorf("shard: Rebalance: machine %d out of range [0,%d)", m, rt.machines)
	}
	if to < 0 || to >= len(rt.clusters) {
		return fmt.Errorf("shard: Rebalance: shard %d out of range [0,%d)", to, len(rt.clusters))
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrRouterClosed
	}
	from := rt.place[m].shard
	if from == to {
		return fmt.Errorf("shard: Rebalance: machine %d already on shard %d", m, to)
	}
	dstSlot := -1
	for i, occ := range rt.slotOf[to] {
		if occ < 0 {
			dstSlot = i
			break
		}
	}
	if dstSlot < 0 {
		return fmt.Errorf("shard: Rebalance: shard %d has no free slot (capacity %d)", to, rt.slots)
	}

	// Fence: drain and close the two involved clients. A sticky run error
	// poisons the move — the failed shard's state is not a safe handoff
	// source or target — but the clients still reopen so the router keeps
	// serving whatever the clusters can still do.
	closeErr := func() error {
		for _, sh := range [2]int{from, to} {
			if err := rt.clients[sh].Close(); err != nil {
				return &ShardError{Shard: sh, Err: err}
			}
		}
		return nil
	}()

	var moveErr error
	srcSlot := rt.place[m].slot
	if closeErr == nil {
		moveErr = func() error {
			state, err := rt.clusters[from].DecodeMachineState(srcSlot)
			if err != nil {
				return &ShardError{Shard: from, Err: err}
			}
			if err := rt.clusters[to].AdoptMachineState(dstSlot, state); err != nil {
				return &ShardError{Shard: to, Err: err}
			}
			if err := rt.clusters[from].AdoptMachineState(srcSlot, field.ZeroVec(rt.f, rt.stateLen)); err != nil {
				return &ShardError{Shard: from, Err: err}
			}
			return nil
		}()
	}
	if closeErr == nil && moveErr == nil {
		rt.place[m] = placeEntry{shard: to, slot: dstSlot}
		rt.slotOf[from][srcSlot] = -1
		rt.slotOf[to][dstSlot] = m
		rt.moves = append(rt.moves, Move{Machine: m, From: from, To: to})
	}

	for _, sh := range [2]int{from, to} {
		if err := rt.openClient(sh); err != nil {
			rt.closed = true
			rt.finish()
			return fmt.Errorf("shard: Rebalance: reopening after move: %w", err)
		}
	}
	if closeErr != nil {
		return fmt.Errorf("shard: Rebalance: fencing machine %d: %w", m, closeErr)
	}
	if moveErr != nil {
		return fmt.Errorf("shard: Rebalance: moving machine %d: %w", m, moveErr)
	}
	return nil
}

// Close drains and closes every shard client and finishes the Results
// stream. It returns the first shard run error, wrapped in a ShardError.
// Close is idempotent; Submit fails with ErrRouterClosed afterwards.
func (rt *Router[E]) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return rt.runErr
	}
	rt.closed = true
	for sh, cl := range rt.clients {
		if err := cl.Close(); err != nil && rt.runErr == nil {
			rt.runErr = &ShardError{Shard: sh, Err: err}
		}
	}
	rt.finish()
	return rt.runErr
}

// finish ends the Results stream. Callers hold rt.mu.
func (rt *Router[E]) finish() {
	rt.logMu.Lock()
	rt.finished = true
	rt.logCond.Broadcast()
	rt.logMu.Unlock()
}

// MachineState reconstructs global machine m's current state from its
// shard's coded shares (csm.DecodeMachineState). The router must be
// closed — while it is open the shard clients own the clusters.
func (rt *Router[E]) MachineState(m int) ([]E, error) {
	if m < 0 || m >= rt.machines {
		return nil, fmt.Errorf("shard: MachineState: machine %d out of range [0,%d)", m, rt.machines)
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if !rt.closed {
		return nil, fmt.Errorf("shard: MachineState: the router is still serving (Close it first)")
	}
	p := rt.place[m]
	state, err := rt.clusters[p.shard].DecodeMachineState(p.slot)
	if err != nil {
		return nil, &ShardError{Shard: p.shard, Err: err}
	}
	return state, nil
}

// StateDigests returns each global machine's state digest, in global
// machine order, decoded from the owning shards' coded shares. The
// router must be closed. A sharded run and an unsharded oracle run of
// the same commands agree on every digest — the acceptance check the
// multitenant example and the router tests pin.
func (rt *Router[E]) StateDigests() ([]string, error) {
	out := make([]string, rt.machines)
	for m := range out {
		state, err := rt.MachineState(m)
		if err != nil {
			return nil, err
		}
		out[m] = DigestState(rt.f, state)
	}
	return out, nil
}

// DigestState returns the hex SHA-256 digest of a state vector under the
// field's canonical little-endian uint64 representation — the
// cross-cluster comparison format (a sharded shard slot and an unsharded
// oracle machine digest equal iff their states are element-wise equal).
func DigestState[E comparable](f field.Field[E], state []E) string {
	h := sha256.New()
	var buf [8]byte
	for _, e := range state {
		binary.LittleEndian.PutUint64(buf[:], f.Uint64(e))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
