// Intermix: Section 6.1 as a library user sees it. The CSM coefficient
// matrix C times the agreed command vector is exactly the encoding a
// delegated worker performs; this example delegates it, lets the worker
// cheat, and shows the committee + bisection + constant-time verdict flow.
//
//	go run ./examples/intermix
package main

import (
	"fmt"
	"log"

	"codedsm"
)

func main() {
	gold := codedsm.NewGoldilocks()
	const n, k = 30, 10

	// A deterministic "coefficient matrix" and command vector.
	a := make([][]uint64, n)
	for i := range a {
		a[i] = make([]uint64, k)
		for j := range a[i] {
			a[i][j] = uint64((i+1)*(j+2)) % 97
		}
	}
	x := make([]uint64, k)
	for j := range x {
		x[j] = uint64(j*j + 1)
	}

	j, err := codedsm.CommitteeSize(0.001, 1.0/3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network of %d nodes, µ=1/3 dishonest, ε=0.001 -> J=%d auditors\n\n", n, j)

	for _, strategy := range []codedsm.IntermixStrategy{
		codedsm.HonestWorker, codedsm.NaiveLiar, codedsm.ConsistentLiar,
	} {
		out, err := codedsm.RunIntermix(codedsm.IntermixSession[uint64]{
			F: gold, A: a, X: x, NetworkSize: n,
			Mu: 1.0 / 3.0, Epsilon: 0.001, Seed: 99,
			WorkerStrategy: strategy, CorruptRow: 4, CorruptCol: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker=%-15v committee=%v\n", strategy, out.Committee)
		fmt.Printf("  accepted=%v validAlerts=%d dismissed=%d queryPairs=%d\n\n",
			out.Accepted, out.ValidAlerts, out.DismissedAlerts, out.Queries)
	}
	fmt.Println("Honest output accepted; both liars rejected — the consistent liar only")
	fmt.Println("falls at the leaf of the log K bisection, where one multiplication convicts it.")
}
