package delegate

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/sm"
)

var gold = field.NewGoldilocks()

type fixture struct {
	ring *poly.Ring[uint64]
	code *lcc.Code[uint64]
	tr   *sm.Transition[uint64]
	rng  *rand.Rand
}

func newFixture(t *testing.T, k, n int) *fixture {
	t.Helper()
	ring := poly.NewRing[uint64](gold)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sm.NewQuadraticTally[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ring: ring, code: code, tr: tr, rng: rand.New(rand.NewPCG(1, 2))}
}

// simulateRound produces node results for random states/commands, with
// `liars` nodes corrupted.
func (fx *fixture) simulateRound(t *testing.T, liars int) (results [][]uint64, cmds [][]uint64) {
	t.Helper()
	k := fx.code.K()
	states := make([][]uint64, k)
	cmds = make([][]uint64, k)
	for i := 0; i < k; i++ {
		states[i] = field.RandVec[uint64](gold, fx.rng, fx.tr.StateLen())
		cmds[i] = field.RandVec[uint64](gold, fx.rng, fx.tr.CmdLen())
	}
	codedStates, err := fx.code.EncodeVectors(states)
	if err != nil {
		t.Fatal(err)
	}
	codedCmds, err := fx.code.EncodeVectors(cmds)
	if err != nil {
		t.Fatal(err)
	}
	results = make([][]uint64, fx.code.N())
	for i := range results {
		r, err := fx.tr.ApplyResult(codedStates[i], codedCmds[i])
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i := 0; i < liars; i++ {
		results[i*2] = field.RandVec[uint64](gold, fx.rng, fx.tr.ResultLen())
	}
	return results, cmds
}

func TestHonestDelegateEncoding(t *testing.T) {
	fx := newFixture(t, 3, 12)
	d := New(fx.ring, fx.code, HonestDelegate)
	cmds := make([][]uint64, 3)
	for i := range cmds {
		cmds[i] = field.RandVec[uint64](gold, fx.rng, 2)
	}
	coded, err := d.EncodeCommands(cmds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.code.EncodeVectors(cmds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !field.VecEqual[uint64](gold, coded[i], want[i]) {
			t.Fatalf("node %d: fast encode differs from matrix encode", i)
		}
	}
	if err := d.AuditEncoding(cmds, coded); err != nil {
		t.Fatalf("honest encoding rejected: %v", err)
	}
}

func TestCorruptEncodingCaught(t *testing.T) {
	fx := newFixture(t, 3, 12)
	d := New(fx.ring, fx.code, CorruptEncoding)
	cmds := make([][]uint64, 3)
	for i := range cmds {
		cmds[i] = field.RandVec[uint64](gold, fx.rng, 2)
	}
	coded, err := d.EncodeCommands(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AuditEncoding(cmds, coded); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("corrupt encoding not caught: %v", err)
	}
}

func TestDecodeWithProofHonest(t *testing.T) {
	const k, n = 3, 20
	fx := newFixture(t, k, n)
	d := New(fx.ring, fx.code, HonestDelegate)
	b := lcc.SyncMaxFaults(n, k, fx.tr.Degree())
	results, _ := fx.simulateRound(t, b)
	dec, proof, err := d.DecodeWithProof(results, fx.tr.Degree())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyDecodeProof(results, fx.tr.Degree(), proof, dec.Outputs); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
	if len(dec.FaultyNodes) != b {
		t.Errorf("detected %d faulty nodes, injected %d", len(dec.FaultyNodes), b)
	}
}

func TestCorruptDecodingCaught(t *testing.T) {
	const k, n = 2, 16
	fx := newFixture(t, k, n)
	d := New(fx.ring, fx.code, CorruptDecoding)
	results, _ := fx.simulateRound(t, 0)
	dec, proof, err := d.DecodeWithProof(results, fx.tr.Degree())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyDecodeProof(results, fx.tr.Degree(), proof, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("corrupt decoding not caught: %v", err)
	}
}

func TestCorruptOutputsCaught(t *testing.T) {
	const k, n = 2, 16
	fx := newFixture(t, k, n)
	d := New(fx.ring, fx.code, CorruptOutputs)
	results, _ := fx.simulateRound(t, 0)
	dec, proof, err := d.DecodeWithProof(results, fx.tr.Degree())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyDecodeProof(results, fx.tr.Degree(), proof, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("corrupt outputs not caught: %v", err)
	}
}

func TestProofValidationEdgeCases(t *testing.T) {
	const k, n = 2, 16
	fx := newFixture(t, k, n)
	d := New(fx.ring, fx.code, HonestDelegate)
	results, _ := fx.simulateRound(t, 0)
	deg := fx.tr.Degree()
	dec, proof, err := d.DecodeWithProof(results, deg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyDecodeProof(results, deg, nil, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Error("nil proof accepted")
	}
	// Shrunken tau below threshold.
	small := *proof
	small.Tau = make([][]int, len(proof.Tau))
	copy(small.Tau, proof.Tau)
	small.Tau[0] = proof.Tau[0][:2]
	if err := d.VerifyDecodeProof(results, deg, &small, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Error("undersized tau accepted")
	}
	// Duplicate tau entries to fake the threshold.
	dup := *proof
	dup.Tau = make([][]int, len(proof.Tau))
	copy(dup.Tau, proof.Tau)
	fakeTau := make([]int, len(proof.Tau[0]))
	for i := range fakeTau {
		fakeTau[i] = proof.Tau[0][0]
	}
	dup.Tau[0] = fakeTau
	if err := d.VerifyDecodeProof(results, deg, &dup, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Error("duplicate tau entries accepted")
	}
	// Tau pointing at a corrupted coordinate.
	resultsBad := make([][]uint64, len(results))
	for i := range results {
		resultsBad[i] = append([]uint64{}, results[i]...)
	}
	resultsBad[proof.Tau[0][0]][0]++
	if err := d.VerifyDecodeProof(resultsBad, deg, proof, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Error("tau entry disagreeing with received result accepted")
	}
	// Wrong dimension claim.
	wrongDim := *proof
	wrongDim.Dim = proof.Dim + 1
	if err := d.VerifyDecodeProof(results, deg, &wrongDim, dec.Outputs); !errors.Is(err, ErrProofInvalid) {
		t.Error("wrong dimension accepted")
	}
}

func TestDelegateRoundMatchesDecentralized(t *testing.T) {
	// Full delegated round: fast-encode commands, nodes compute, worker
	// decodes with proof, verifier accepts, and the outputs equal the
	// uncoded execution.
	const k, n = 2, 16
	fx := newFixture(t, k, n)
	d := New(fx.ring, fx.code, HonestDelegate)
	states := make([][]uint64, k)
	cmds := make([][]uint64, k)
	for i := 0; i < k; i++ {
		states[i] = field.RandVec[uint64](gold, fx.rng, 1)
		cmds[i] = field.RandVec[uint64](gold, fx.rng, 1)
	}
	codedStates, err := fx.code.EncodeVectors(states)
	if err != nil {
		t.Fatal(err)
	}
	codedCmds, err := d.EncodeCommands(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AuditEncoding(cmds, codedCmds); err != nil {
		t.Fatal(err)
	}
	results := make([][]uint64, n)
	for i := range results {
		if results[i], err = fx.tr.ApplyResult(codedStates[i], codedCmds[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec, proof, err := d.DecodeWithProof(results, fx.tr.Degree())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyDecodeProof(results, fx.tr.Degree(), proof, dec.Outputs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		want, err := fx.tr.ApplyResult(states[i], cmds[i])
		if err != nil {
			t.Fatal(err)
		}
		if !field.VecEqual[uint64](gold, dec.Outputs[i], want) {
			t.Fatalf("machine %d: delegated output differs from direct execution", i)
		}
	}
	// Coded-state refresh matches direct encoding.
	next := make([][]uint64, k)
	for i := range next {
		nextState, _, err := fx.tr.SplitResult(dec.Outputs[i])
		if err != nil {
			t.Fatal(err)
		}
		next[i] = nextState
	}
	updated, err := d.UpdateStates(next)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fx.code.EncodeVectors(next)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if !field.VecEqual[uint64](gold, updated[i], direct[i]) {
			t.Fatal("state refresh differs from direct encoding")
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []CorruptMode{HonestDelegate, CorruptEncoding, CorruptDecoding, CorruptOutputs, CorruptMode(9)} {
		if m.String() == "" {
			t.Error("empty mode string")
		}
	}
	fx := newFixture(t, 2, 8)
	if New(fx.ring, fx.code, CorruptOutputs).Mode() != CorruptOutputs {
		t.Error("Mode accessor")
	}
}

func TestDelegateInputValidation(t *testing.T) {
	fx := newFixture(t, 2, 8)
	d := New(fx.ring, fx.code, HonestDelegate)
	if _, _, err := d.DecodeWithProof(make([][]uint64, 3), 2); err == nil {
		t.Error("wrong result count should fail")
	}
	if err := d.AuditEncoding(make([][]uint64, 2), make([][]uint64, 3)); err == nil {
		t.Error("wrong claimed length should fail")
	}
	if err := d.AuditEncoding(make([][]uint64, 1), make([][]uint64, 8)); err == nil {
		t.Error("wrong command count should fail")
	}
}
