package csm

import (
	"slices"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// batchScenarios are the oracle-consensus scenarios batching must leave
// observably unchanged (consensus-protocol scenarios change tick and
// leader accounting per batch by design, so they are pinned separately).
func batchScenarios() map[string]Config[uint64] {
	scenarios := map[string]Config[uint64]{}

	cfg := baseConfig(3, 12, 2)
	scenarios["all-honest"] = cfg

	cfg = baseConfig(3, 12, 2)
	cfg.NewTransition = quadFactory
	scenarios["all-honest-quadratic"] = cfg

	cfg = baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult}
	scenarios["wrong-results"] = cfg

	cfg = baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{0: Silent, 4: Silent}
	scenarios["silent-erasures"] = cfg

	cfg = baseConfig(2, 16, 4)
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{0: WrongResult, 3: Silent, 8: Equivocate, 13: WrongResult}
	scenarios["mixed-at-budget"] = cfg

	cfg = baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 0
	cfg.Byzantine = map[int]Behavior{3: Silent, 9: WrongResult}
	scenarios["partial-sync"] = cfg

	return scenarios
}

// TestBatchedMatchesSequentialOutputs proves the batched engine's
// amortizations (one consensus instance, flat-row command encode, primed
// decodes) change nothing observable: outputs, correctness, detected
// faults, coded states, and oracle states all match the unbatched engine
// round for round. Only tick accounting and the operation counts of the
// accelerated decodes may differ.
func TestBatchedMatchesSequentialOutputs(t *testing.T) {
	const rounds = 8
	for name, cfg := range batchScenarios() {
		for _, batch := range []int{2, 4} {
			t.Run(name+"/B="+string(rune('0'+batch)), func(t *testing.T) {
				seq := newCluster(t, cfg)
				bCfg := cfg
				bCfg.BatchSize = batch
				bat := newCluster(t, bCfg)
				wl := RandomWorkload[uint64](gold, rounds, cfg.K, seq.tr.CmdLen(), 7)
				seqRes, err := seq.Run(wl)
				if err != nil {
					t.Fatal(err)
				}
				batRes, err := bat.Run(wl)
				if err != nil {
					t.Fatal(err)
				}
				if len(batRes) != len(seqRes) {
					t.Fatalf("round counts differ: %d vs %d", len(batRes), len(seqRes))
				}
				for r := range seqRes {
					s, b := seqRes[r], batRes[r]
					if s.Correct != b.Correct || s.Skipped != b.Skipped {
						t.Fatalf("round %d flags diverged: %+v vs %+v", r, s, b)
					}
					if !slices.Equal(s.FaultyDetected, b.FaultyDetected) {
						t.Fatalf("round %d faulty sets diverged: %v vs %v", r, s.FaultyDetected, b.FaultyDetected)
					}
					for k := range s.Outputs {
						if (s.Outputs[k] == nil) != (b.Outputs[k] == nil) ||
							(s.Outputs[k] != nil && !field.VecEqual[uint64](gold, s.Outputs[k], b.Outputs[k])) {
							t.Fatalf("round %d machine %d outputs diverged", r, k)
						}
					}
					if !s.Correct {
						t.Fatalf("round %d incorrect (scenario must execute cleanly)", r)
					}
				}
				for i := 0; i < cfg.N; i++ {
					seqState, err := seq.NodeCodedState(i)
					if err != nil {
						t.Fatal(err)
					}
					batState, err := bat.NodeCodedState(i)
					if err != nil {
						t.Fatal(err)
					}
					if !field.VecEqual[uint64](gold, seqState, batState) {
						t.Fatalf("node %d coded state diverged", i)
					}
				}
				if bat.Round() != seq.Round() {
					t.Fatalf("round counters diverged: %d vs %d", bat.Round(), seq.Round())
				}
			})
		}
	}
}

// TestBatchedPrimedDecodeSavesOps pins the point of batching under oracle
// consensus: with a stable fault pattern, the primed decodes of
// micro-steps 2..B skip the error-locator solve, so the batched run costs
// measurably fewer field operations per command.
func TestBatchedPrimedDecodeSavesOps(t *testing.T) {
	cfg := baseConfig(2, 16, 4)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 6: WrongResult, 11: WrongResult, 13: WrongResult}
	seq := newCluster(t, cfg)
	bCfg := cfg
	bCfg.BatchSize = 4
	bat := newCluster(t, bCfg)
	wl := RandomWorkload[uint64](gold, 8, 2, 1, 9)
	if _, err := seq.Run(wl); err != nil {
		t.Fatal(err)
	}
	if _, err := bat.Run(wl); err != nil {
		t.Fatal(err)
	}
	seqOps, batOps := seq.OpCounts().Total(), bat.OpCounts().Total()
	if batOps >= seqOps {
		t.Fatalf("batched run not cheaper: %d ops vs %d sequential", batOps, seqOps)
	}
	t.Logf("ops per 8 rounds: sequential %d, batched(B=4) %d (%.2fx)",
		seqOps, batOps, float64(seqOps)/float64(batOps))
}

// TestBatchedBadLeaderSkipsWholeBatch pins the consensus-batch semantics:
// a garbage proposal skips every round of the batch, and leadership
// rotates per consensus instance (so every node still leads eventually,
// whatever the batch size).
func TestBatchedBadLeaderSkipsWholeBatch(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.BatchSize = 3
	cfg.Byzantine = map[int]Behavior{0: BadLeader} // node 0 leads the first batch
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 6, 2, 1, 3)
	results, err := c.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if !results[r].Skipped {
			t.Fatalf("round %d of the corrupted batch not skipped", r)
		}
	}
	if results[0].Ticks == 0 || results[1].Ticks != 0 {
		t.Fatalf("consensus ticks must be charged to the batch's first round: %d/%d",
			results[0].Ticks, results[1].Ticks)
	}
	// The second consensus instance is led by node 1: honest leader,
	// executes cleanly.
	for r := 3; r < 6; r++ {
		if results[r].Skipped || !results[r].Correct {
			t.Fatalf("round %d of the honest batch: %+v", r, results[r])
		}
	}
}

// TestBatchedLeaderRotationCoversAllNodes pins that batching cannot
// exclude a BadLeader from ever leading: with gcd(BatchSize, N) > 1,
// round-based rotation would only visit every other node.
func TestBatchedLeaderRotationCoversAllNodes(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.BatchSize = 2 // gcd(2, 10) = 2: round-based rotation skips odd nodes
	cfg.Byzantine = map[int]Behavior{1: BadLeader}
	c := newCluster(t, cfg)
	results, err := c.Run(RandomWorkload[uint64](gold, 6, 2, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Instance 1 (rounds 2-3) is led by the Byzantine node 1: skipped.
	for r, wantSkip := range []bool{false, false, true, true, false, false} {
		if results[r].Skipped != wantSkip {
			t.Fatalf("round %d: skipped=%v, want %v (leader rotation must reach node 1)",
				r, results[r].Skipped, wantSkip)
		}
	}
}

// TestBatchedConsensusTickAmortization pins that a batch consumes one
// consensus instance: Dolev-Strong ticks appear once per batch, not once
// per round.
func TestBatchedConsensusTickAmortization(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	run := func(batch, rounds int) int {
		bCfg := cfg
		bCfg.BatchSize = batch
		c := newCluster(t, bCfg)
		total := 0
		results, err := c.Run(RandomWorkload[uint64](gold, rounds, 2, 1, 5))
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			total += res.Ticks
		}
		return total
	}
	seqTicks := run(1, 8)
	batTicks := run(4, 8)
	if batTicks >= seqTicks {
		t.Fatalf("batched consensus not amortized: %d ticks vs %d", batTicks, seqTicks)
	}
}
