package field

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// scalarOnly hides any Bulk implementation of the wrapped field, forcing
// AsBulk onto the generic adapter.
type scalarOnly[E comparable] struct{ Field[E] }

// refKernels applies every kernel the slow, obviously-correct way through
// the scalar Field interface.
type refKernels[E comparable] struct{ f Field[E] }

func (r refKernels[E]) addVec(a, b []E) []E {
	out := make([]E, len(a))
	for i := range a {
		out[i] = r.f.Add(a[i], b[i])
	}
	return out
}

func (r refKernels[E]) subVec(a, b []E) []E {
	out := make([]E, len(a))
	for i := range a {
		out[i] = r.f.Sub(a[i], b[i])
	}
	return out
}

func (r refKernels[E]) mulVec(a, b []E) []E {
	out := make([]E, len(a))
	for i := range a {
		out[i] = r.f.Mul(a[i], b[i])
	}
	return out
}

func bulkFieldsUnderTest(t *testing.T) map[string]Bulk[uint64] {
	t.Helper()
	gold := NewGoldilocks()
	gf8, err := NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	gf3, err := NewGF2m(3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Bulk[uint64]{
		"goldilocks":          gold,
		"gf2m8":               gf8,
		"gf2m3":               gf3,
		"counting/goldilocks": AsBulk[uint64](NewCounting[uint64](gold)),
		"counting/gf2m8":      AsBulk[uint64](NewCounting[uint64](gf8)),
		"generic/goldilocks":  AsBulk[uint64](scalarOnly[uint64]{gold}),
		"generic/gf2m8":       AsBulk[uint64](scalarOnly[uint64]{gf8}),
	}
}

// TestBulkKernelsMatchScalar proves every kernel is bit-identical to the
// per-element scalar loops, for native, counting, and generic-adapter
// resolutions, including the dst-aliases-input cases the hot paths rely on.
func TestBulkKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for name, bf := range bulkFieldsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			ref := refKernels[uint64]{bf}
			for _, n := range []int{0, 1, 2, 3, 17, 64} {
				a := RandVec[uint64](bf, rng, n)
				b := RandVec[uint64](bf, rng, n)
				c := bf.Rand(rng)
				check := func(kernel string, got, want []uint64) {
					t.Helper()
					if !VecEqual[uint64](bf, got, want) {
						t.Fatalf("n=%d %s: got %v want %v", n, kernel, got, want)
					}
				}
				dst := make([]uint64, n)

				bf.AddVec(dst, a, b)
				check("AddVec", dst, ref.addVec(a, b))
				bf.SubVec(dst, a, b)
				check("SubVec", dst, ref.subVec(a, b))
				bf.MulVec(dst, a, b)
				check("MulVec", dst, ref.mulVec(a, b))

				bf.ScaleVec(dst, c, a)
				check("ScaleVec", dst, ref.mulVec(repeat(c, n), a))
				bf.ScaleVec(dst, 0, a)
				check("ScaleVec(0)", dst, make([]uint64, n))

				acc := append([]uint64(nil), b...)
				bf.ScaleAccVec(acc, c, a)
				check("ScaleAccVec", acc, ref.addVec(b, ref.mulVec(repeat(c, n), a)))

				acc = append([]uint64(nil), b...)
				bf.SubScaleVec(acc, c, a)
				check("SubScaleVec", acc, ref.subVec(b, ref.mulVec(repeat(c, n), a)))

				wantDot := bf.Zero()
				for i := range a {
					wantDot = bf.Add(wantDot, bf.Mul(a[i], b[i]))
				}
				if got := bf.DotVec(a, b); got != wantDot {
					t.Fatalf("n=%d DotVec: got %v want %v", n, got, wantDot)
				}

				bf.SubScalarVec(dst, a, c)
				check("SubScalarVec", dst, ref.subVec(a, repeat(c, n)))
				bf.ScalarSubVec(dst, c, a)
				check("ScalarSubVec", dst, ref.subVec(repeat(c, n), a))

				acc = append([]uint64(nil), b...)
				bf.HornerVec(acc, a, c)
				check("HornerVec", acc, ref.addVec(ref.mulVec(b, a), repeat(c, n)))

				// Aliasing: dst == a must behave as if computed out of place.
				alias := append([]uint64(nil), a...)
				bf.MulVec(alias, alias, b)
				check("MulVec(aliased)", alias, ref.mulVec(a, b))
				alias = append([]uint64(nil), a...)
				bf.ScaleVec(alias, c, alias)
				check("ScaleVec(aliased)", alias, ref.mulVec(repeat(c, n), a))
			}
		})
	}
}

func repeat(c uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// TestBatchInvIntoMatchesBatchInv covers success, aliasing, and the
// error path (zero element) for every bulk resolution.
func TestBatchInvIntoMatchesBatchInv(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for name, bf := range bulkFieldsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 5, 33} {
				xs := make([]uint64, n)
				for i := range xs {
					for xs[i] == 0 {
						xs[i] = bf.Rand(rng)
					}
				}
				want := make([]uint64, n)
				for i, x := range xs {
					inv, err := bf.Inv(x)
					if err != nil {
						t.Fatal(err)
					}
					want[i] = inv
				}
				dst := make([]uint64, n)
				if err := bf.BatchInvInto(dst, xs); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if !VecEqual[uint64](bf, dst, want) {
					t.Fatalf("n=%d: BatchInvInto %v want %v", n, dst, want)
				}
				if n > 0 {
					withZero := append([]uint64(nil), xs...)
					withZero[n/2] = 0
					if err := bf.BatchInvInto(dst, withZero); !errors.Is(err, ErrDivisionByZero) {
						t.Fatalf("n=%d: zero input: got %v", n, err)
					}
				}
			}
		})
	}
}

// TestCountingBulkTotalsMatchScalar pins the core accounting invariant: a
// kernel call on a Counting field charges exactly the operations the
// replaced scalar loop would have, so the paper's throughput metric is
// unchanged by the devirtualized path.
func TestCountingBulkTotalsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	gold := NewGoldilocks()
	n := 37
	a := RandVec[uint64](gold, rng, n)
	b := RandVec[uint64](gold, rng, n)
	c := gold.Rand(rng)
	for i := range a {
		for a[i] == 0 {
			a[i] = gold.Rand(rng)
		}
	}

	scalar := NewCounting[uint64](gold)
	scalarBulk := AsBulk[uint64](scalarOnly[uint64]{Field[uint64](scalar)})
	bulk := AsBulk[uint64](NewCounting[uint64](gold))
	if _, isCounting := bulk.(*Counting[uint64]); !isCounting {
		t.Fatal("Counting must resolve to its own bulk implementation")
	}

	dst := make([]uint64, n)
	run := func(k Bulk[uint64]) {
		k.AddVec(dst, a, b)
		k.SubVec(dst, a, b)
		k.MulVec(dst, a, b)
		k.ScaleVec(dst, c, a)
		k.ScaleAccVec(dst, c, a)
		k.SubScaleVec(dst, c, a)
		k.DotVec(a, b)
		k.SubScalarVec(dst, a, c)
		k.ScalarSubVec(dst, c, a)
		k.HornerVec(dst, a, c)
		if err := k.BatchInvInto(dst, a); err != nil {
			t.Fatal(err)
		}
		withZero := append([]uint64(nil), a...)
		withZero[n/2] = 0
		if err := k.BatchInvInto(dst, withZero); !errors.Is(err, ErrDivisionByZero) {
			t.Fatalf("zero input: got %v", err)
		}
	}
	run(scalarBulk) // generic adapter over the counting field: per-element calls
	run(bulk)       // counting bulk kernels: one charge per vector
	want := scalar.Counts()
	got := bulk.(*Counting[uint64]).Counts()
	if want == (OpCounts{}) {
		t.Fatal("scalar reference counted nothing")
	}
	if got != want {
		t.Fatalf("bulk counting totals %+v, scalar totals %+v", got, want)
	}
}
