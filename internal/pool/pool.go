// Package pool provides the deterministic fork-join worker pool the
// parallel execution engine is built on. The paper's Theorem 1 claims
// throughput λ that scales linearly in N; realizing that on real hardware
// requires fanning the per-node work of a round — coded transition
// computes, per-dimension encode/decode columns, and the Reed-Solomon
// error-locator solves — across CPU cores without perturbing the simulated
// protocol.
//
// Determinism contract: Run partitions the index space [0, n) across
// workers, and callers write each index's result into a caller-owned,
// index-addressed slot. Because slots are disjoint and every index is
// processed exactly once, the observable output is bit-identical to the
// sequential loop regardless of goroutine scheduling. Shared state touched
// by fn must be either immutable, atomic (e.g. field.Counting's counters,
// which commute), or mutex-protected.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker count: runtime.GOMAXPROCS(0).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a requested worker count for n independent work items:
// workers <= 0 selects DefaultWorkers, and the result never exceeds n (a
// worker with no work is never spawned) nor drops below 1.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers). With one worker — or n < 2 — it
// degenerates to the plain sequential loop, stopping at the first error.
//
// In the parallel regime every index is attempted even if an earlier index
// fails (workers race ahead), so fn must be safe to run for all indices;
// the error reported is the one with the lowest index, matching what the
// sequential loop would have surfaced first.
func Run(workers, n int, fn func(i int) error) error {
	return RunIndexed(workers, n, func(_, i int) error { return fn(i) })
}

// RunIndexed is Run with the executing worker's index passed alongside the
// work index: fn(worker, i) with worker in [0, Clamp(workers, n)). A worker
// index is held by exactly one goroutine at a time, so fn may use it to
// address per-worker scratch buffers (the allocation-free decode path's
// per-worker codeword and evaluation scratch) without synchronization.
func RunIndexed(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
