// Package lint is csmlint: a suite of static analyzers that encode the
// protocol invariants this repository's correctness rests on —
// bit-identical runs across engines, byte-for-byte wire compatibility
// between the simulated oracle and TCP, and fsync-before-rename WAL
// durability. Each analyzer turns a bug class a past PR actually
// shipped (map-iteration tallies, wall-clock reads in deterministic
// code, string matching on error text, unsynced renames, map bytes on
// the wire) into a machine-checked rule.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library
// only (go/ast, go/types, and compiler export data), so the module
// keeps zero external dependencies and the linter builds offline.
//
// # Suppression
//
// A finding is suppressed by an annotation comment on the flagged line
// or on the line directly above it:
//
//	//csmlint:allow <check>(<reason>)
//
// The reason is mandatory and non-empty; several <check>(<reason>)
// groups may share one comment. Unknown check names and empty reasons
// are themselves diagnostics (see CheckDirectives), so the annotations
// double as a validated inventory of every deliberately
// order-dependent or wall-clock site in the tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //csmlint:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the import path the build system uses for the package.
	// For testdata fixtures it is the directory under testdata/src, so
	// scope decisions match real packages by suffix.
	Path string

	report func(Diagnostic)
	allows *AllowSet
}

// Reportf records a finding unless an //csmlint:allow annotation for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allows != nil && p.allows.Allowed(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several analyzers exempt tests (seeded clocks and RNGs are a
// production-engine contract, not a test-harness one).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Analyzers returns the full csmlint suite in stable order.
//
// nilness from x/tools is deliberately not bundled: it needs the SSA
// packages of golang.org/x/tools, and this module builds with zero
// external dependencies (and offline). Shadow is reimplemented here on
// go/types scopes instead.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetMap,
		DetSource,
		ErrString,
		WALFsync,
		WireMap,
		Shadow,
	}
}

// AnalyzerNames returns the set of valid check names for annotation
// validation.
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// ---- //csmlint:allow annotations ----

const allowPrefix = "//csmlint:allow"

// allowGroupRE matches one <check>(<reason>) group. Reasons may hold
// anything but a closing parenthesis.
var allowGroupRE = regexp.MustCompile(`([a-zA-Z][a-zA-Z0-9_-]*)\(([^)]*)\)`)

// An allowDirective is one parsed <check>(<reason>) group.
type allowDirective struct {
	check  string
	reason string
	pos    token.Pos
	used   bool
}

// An AllowSet indexes every //csmlint:allow annotation in a package by
// file and line.
type AllowSet struct {
	// byLine maps filename -> line -> directives on that line.
	byLine map[string]map[int][]*allowDirective
	// malformed collects annotations that do not parse: no
	// <check>(<reason>) group at all, or trailing junk.
	malformed []Diagnostic
}

// ParseAllows scans the comments of files for //csmlint:allow
// annotations.
func ParseAllows(fset *token.FileSet, files []*ast.File) *AllowSet {
	s := &AllowSet{byLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				s.add(fset, c)
			}
		}
	}
	return s
}

func (s *AllowSet) add(fset *token.FileSet, c *ast.Comment) {
	body := strings.TrimPrefix(c.Text, allowPrefix)
	pos := fset.Position(c.Pos())
	groups := allowGroupRE.FindAllStringSubmatch(body, -1)
	// The whole annotation must be a sequence of groups: stripping
	// every match and whitespace/commas must leave nothing, so typos
	// like "detmap reason" or "detmap(x" fail loudly.
	rest := allowGroupRE.ReplaceAllString(body, "")
	rest = strings.Map(func(r rune) rune {
		if r == ',' || r == ' ' || r == '\t' {
			return -1
		}
		return r
	}, rest)
	if len(groups) == 0 || rest != "" {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:      c.Pos(),
			Message:  "malformed //csmlint:allow annotation: want //csmlint:allow check(reason)",
			Analyzer: "allow",
		})
		return
	}
	file := pos.Filename
	if s.byLine[file] == nil {
		s.byLine[file] = make(map[int][]*allowDirective)
	}
	for _, g := range groups {
		s.byLine[file][pos.Line] = append(s.byLine[file][pos.Line], &allowDirective{
			check:  g[1],
			reason: strings.TrimSpace(g[2]),
			pos:    c.Pos(),
		})
	}
}

// Allowed reports whether a directive for check covers pos: same line,
// or the line directly above (a full-line annotation comment).
func (s *AllowSet) Allowed(fset *token.FileSet, pos token.Pos, check string) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range s.byLine[p.Filename][line] {
			if d.check == check && d.reason != "" {
				d.used = true
				return true
			}
		}
	}
	return false
}

// CheckDirectives validates every annotation: malformed syntax, empty
// reasons, and check names no analyzer owns are all diagnostics, so a
// stale or typo'd suppression cannot silently disable a rule.
func (s *AllowSet) CheckDirectives(known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, s.malformed...)
	var files []string
	for f := range s.byLine {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		var lines []int
		for l := range s.byLine[f] {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			for _, d := range s.byLine[f][l] {
				if !known[d.check] {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Message:  fmt.Sprintf("//csmlint:allow names unknown check %q", d.check),
						Analyzer: "allow",
					})
				}
				if d.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Message:  fmt.Sprintf("//csmlint:allow %s() needs a reason", d.check),
						Analyzer: "allow",
					})
				}
			}
		}
	}
	return diags
}

// CheckUnused reports directives that suppressed nothing after every
// analyzer ran over the package: a stale annotation means either the
// flagged code was fixed (delete the annotation) or the annotation is
// on the wrong line (so the rule it documents is not actually
// enforced). Must be called after the full suite, with the same
// AllowSet handed to each Run.
func (s *AllowSet) CheckUnused(known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	var files []string
	for f := range s.byLine {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		var lines []int
		for l := range s.byLine[f] {
			lines = append(lines, l)
		}
		sort.Ints(lines)
		for _, l := range lines {
			for _, d := range s.byLine[f][l] {
				if known[d.check] && d.reason != "" && !d.used {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Message:  fmt.Sprintf("//csmlint:allow %s(...) suppresses nothing; delete the stale annotation or move it to the flagged line", d.check),
						Analyzer: "allow",
					})
				}
			}
		}
	}
	return diags
}

// Run applies one analyzer to a type-checked package and returns its
// findings after annotation filtering.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string, allows *AllowSet) ([]Diagnostic, error) {
	if allows == nil {
		allows = ParseAllows(fset, files)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Path:     path,
		allows:   allows,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ---- package scoping shared by the analyzers ----

// pathMatches reports whether importPath lies in the package tree
// rooted at pkg. Testdata fixtures use bare suffixes like
// "internal/csm"; real packages are "codedsm/internal/csm"; consensus
// implementations live in subpackages like
// "codedsm/internal/consensus/pbft" — all match.
func pathMatches(importPath, pkg string) bool {
	importPath = strings.TrimSuffix(importPath, ".test")
	importPath = strings.TrimSuffix(importPath, "_test")
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i] // "p [p.test]" build variants
	}
	return importPath == pkg ||
		strings.HasSuffix(importPath, "/"+pkg) ||
		strings.HasPrefix(importPath, pkg+"/") ||
		strings.Contains(importPath, "/"+pkg+"/")
}

func pathMatchesAny(importPath string, pkgs []string) bool {
	for _, p := range pkgs {
		if pathMatches(importPath, p) {
			return true
		}
	}
	return false
}

// protocolPkgs are the packages whose execution must be bit-identical
// across the sequential, parallel, pipelined, and Submit engines: map
// iteration order must never influence state, output, or wire bytes.
var protocolPkgs = []string{
	"internal/csm",
	"internal/lcc",
	"internal/transport",
	"internal/nodeapi",
	"internal/consensus",
	"internal/shard",
}

// wirePkgs are the packages that produce bytes another process or a
// digest will see: the wire codec, the node control protocol, the WAL,
// and the engine/consensus layers that feed run digests.
var wirePkgs = []string{
	"internal/transport",
	"internal/nodeapi",
	"internal/wal",
	"internal/csm",
	"internal/consensus",
}

// nondetExemptPkgs hold code that legitimately lives on the wall
// clock: OS-process harnesses and metrics. Everything else under the
// module (outside cmd/ and examples/) is deterministic-engine code.
var nondetExemptPkgs = []string{
	"internal/procharness",
	"internal/metrics",
}

// inDeterministicScope reports whether detsource applies to the
// package: not a command, not an example, not an exempt harness.
func inDeterministicScope(importPath string) bool {
	if pathMatchesAny(importPath, nondetExemptPkgs) {
		return false
	}
	for _, seg := range []string{"cmd/", "examples/"} {
		if strings.HasPrefix(importPath, seg) || strings.Contains(importPath, "/"+seg) {
			return false
		}
	}
	return true
}
