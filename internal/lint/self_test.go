package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"codedsm/internal/lint/driver"
)

// TestRepoIsClean is the meta-test: the repository itself, tests
// included, must hold zero csmlint findings. Every deliberately
// order-dependent or wall-clock site carries a validated
// //csmlint:allow annotation, so this test is what keeps the
// annotation inventory and the code in sync.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	findings, err := driver.AnalyzeModule(root, true, "./...")
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
