// Ingress: the serving-oriented front of the CSM engine. A Cluster built
// for batch workloads executes pre-assembled rounds ([][][]E); a service
// receives commands one at a time, from many concurrent clients, for
// whichever machine each command addresses. Cluster.Open bridges the two:
// it returns a Client whose Submit enqueues a single command for one
// machine and returns a Future, while a scheduler goroutine coalesces
// pending submissions into full rounds (padding idle machines with the
// pad command), groups them into consensus batches of Config.BatchSize,
// drives the existing engines underneath, and resolves each Future with
// its machine's decoded output.
//
// Two admission policies are offered:
//
//   - Eager (the default): any pending command is admitted immediately;
//     machines with nothing pending are padded. Latency-optimal, but the
//     round composition depends on arrival timing.
//
//   - Deterministic (WithDeterministicAdmission): a round is admitted only
//     once every machine has a pending command (or the client is closing,
//     which pads the remainder), and a consensus batch runs only when full
//     (or at close). Admission becomes a pure function of per-machine
//     submission order, so a seeded cluster driven through Submit is
//     bit-identical — outputs, op counts, ticks — to Run on the equivalent
//     workload (TestSubmitBitIdenticalToRun pins this for the sequential,
//     parallel, and pipelined engines).
//
// Backpressure is a bounded per-machine queue (WithSubmitQueueDepth):
// Submit blocks while its machine's queue is full, honouring the caller's
// context.
package csm

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"codedsm/internal/field"
)

// DefaultSubmitQueueDepth is the per-machine pending-command bound a
// client applies when WithSubmitQueueDepth is not given.
const DefaultSubmitQueueDepth = 16

// ClientOption configures Cluster.Open.
type ClientOption func(*clientSettings) error

type clientSettings struct {
	queueDepth    int
	deterministic bool
	pad           any // []E, asserted in Open
}

// clientOptionErr builds a ClientOption that fails Open with the message.
func clientOptionErr(format string, args ...any) ClientOption {
	err := fmt.Errorf(format, args...)
	return func(*clientSettings) error { return err }
}

// WithSubmitQueueDepth bounds each machine's pending-submission queue:
// Submit blocks (respecting its context) while the addressed machine
// already has this many commands waiting.
func WithSubmitQueueDepth(depth int) ClientOption {
	if depth < 1 {
		return clientOptionErr("WithSubmitQueueDepth(%d): need a positive depth", depth)
	}
	return func(s *clientSettings) error { s.queueDepth = depth; return nil }
}

// WithDeterministicAdmission makes admission a pure function of
// per-machine submission order: a round is admitted only when every
// machine has a pending command (or the client is closing), and a
// consensus batch runs only when Config.BatchSize rounds are assembled
// (or at close). A seeded cluster driven through Submit by in-order
// submitters is then bit-identical to Run on the equivalent workload.
// The cost is latency: commands wait for their round- and batch-mates,
// so do not Wait on a Future before submitting the commands that
// complete its batch.
func WithDeterministicAdmission() ClientOption {
	return func(s *clientSettings) error { s.deterministic = true; return nil }
}

// WithPadCommand sets the identity command the scheduler submits on
// behalf of machines with nothing pending when a round is admitted
// (defaults to the all-zero command vector — the identity of the additive
// machines; multiplicative machines need an explicit pad). The element
// type must match the cluster's field element.
func WithPadCommand[E comparable](cmd []E) ClientOption {
	return func(s *clientSettings) error { s.pad = cmd; return nil }
}

// Future is the pending result of one submitted command. It resolves when
// the command's round has executed and its machine's output was decoded
// (or when the round failed; ErrQuorumUnreachable marks an output that
// never gathered b+1 matching client replies).
type Future[E comparable] struct {
	machine int
	done    chan struct{}

	// Written exactly once before done is closed; read only after.
	out []E
	res *RoundResult[E]
	err error
}

// Machine returns the machine the command addressed.
func (f *Future[E]) Machine() int { return f.machine }

// Done is closed when the future has resolved.
func (f *Future[E]) Done() <-chan struct{} { return f.done }

// Wait blocks until the future resolves (or ctx is done) and returns the
// machine's decoded output for the command's round.
func (f *Future[E]) Wait(ctx context.Context) ([]E, error) {
	select {
	case <-f.done:
		return f.out, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Round blocks until the future resolves (or ctx is done) and returns the
// full report of the round that carried the command. The report may be
// non-nil even when the future resolved with an error (e.g. a quorum
// failure on this machine's output in an otherwise-executed round).
func (f *Future[E]) Round(ctx context.Context) (*RoundResult[E], error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (f *Future[E]) resolve(out []E, res *RoundResult[E], err error) {
	f.out, f.res, f.err = out, res, err
	close(f.done)
}

// submission pairs a pending command with its future (nil for scheduler
// pads).
type submission[E comparable] struct {
	cmd []E
	fut *Future[E]
}

// Client is the submission front of an open cluster. Submit may be called
// from any number of goroutines; the cluster itself must not be driven
// through Run/ExecuteRound/etc. while a client is open (the scheduler owns
// it).
type Client[E comparable] struct {
	c        *Cluster[E]
	k        int
	cmdLen   int
	batch    int
	pad      []E
	determ   bool
	queues   []chan *submission[E]
	notify   chan struct{} // eager mode: "something was enqueued"
	quit     chan struct{} // closed by Close: stop admission, start drain
	done     chan struct{} // closed when the scheduler exits
	inflight sync.WaitGroup

	mu       sync.Mutex
	logCond  *sync.Cond
	closed   bool
	finished bool // scheduler exited and the log is final
	runErr   error
	// The Results stream: futures are logged only once a consumer exists
	// (stream), and yielded entries are released immediately, so retention
	// is bounded by consumer lag — a client whose futures are tracked by
	// its submitters alone retains nothing.
	stream bool
	log    []*Future[E] // admitted, not-yet-yielded futures, in admission order
}

// Open starts serving the cluster: it returns a Client accepting
// per-command submissions and spawns the admission scheduler that owns the
// cluster until Close. Only one client may be open at a time.
func (c *Cluster[E]) Open(opts ...ClientOption) (*Client[E], error) {
	c.clientMu.Lock()
	if c.clientOpen {
		c.clientMu.Unlock()
		return nil, fmt.Errorf("csm: Open: the cluster already has an open client")
	}
	c.clientOpen = true
	c.clientMu.Unlock()
	release := func() {
		c.clientMu.Lock()
		c.clientOpen = false
		c.clientMu.Unlock()
	}
	s := clientSettings{queueDepth: DefaultSubmitQueueDepth}
	for _, opt := range opts {
		if opt == nil {
			release()
			return nil, fmt.Errorf("csm: Open: nil ClientOption")
		}
		if err := opt(&s); err != nil {
			release()
			return nil, fmt.Errorf("csm: Open: %w", err)
		}
	}
	pad := field.ZeroVec(c.cfg.BaseField, c.tr.CmdLen())
	if s.pad != nil {
		p, ok := s.pad.([]E)
		if !ok {
			release()
			return nil, fmt.Errorf("csm: Open: WithPadCommand element type %T does not match the cluster's field element %T", s.pad, *new(E))
		}
		if len(p) != c.tr.CmdLen() {
			release()
			return nil, fmt.Errorf("csm: Open: WithPadCommand length %d, want %d", len(p), c.tr.CmdLen())
		}
		pad = append([]E(nil), p...)
	}
	cl := &Client[E]{
		c:      c,
		k:      c.cfg.K,
		cmdLen: c.tr.CmdLen(),
		batch:  c.batchSize(),
		pad:    pad,
		determ: s.deterministic,
		queues: make([]chan *submission[E], c.cfg.K),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	cl.logCond = sync.NewCond(&cl.mu)
	for k := range cl.queues {
		cl.queues[k] = make(chan *submission[E], s.queueDepth)
	}
	go cl.scheduler()
	return cl, nil
}

// Submit enqueues cmd for the given machine and returns a Future that
// resolves with that machine's decoded output once the command's round
// has executed. Submit blocks while the machine's queue is full
// (backpressure), honouring ctx; it fails with ErrClientClosed after
// Close, and with the scheduler's sticky error (also matching
// ErrClientClosed) once a run has failed.
func (cl *Client[E]) Submit(ctx context.Context, machine int, cmd []E) (*Future[E], error) {
	if machine < 0 || machine >= cl.k {
		return nil, fmt.Errorf("csm: Submit: machine %d out of range [0,%d)", machine, cl.k)
	}
	if len(cmd) != cl.cmdLen {
		return nil, fmt.Errorf("csm: Submit: machine %d: command length %d, want %d", machine, len(cmd), cl.cmdLen)
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, ErrClientClosed
	}
	if err := cl.runErr; err != nil {
		cl.mu.Unlock()
		return nil, fmt.Errorf("%w: a run failed: %w", ErrClientClosed, err)
	}
	// The in-flight count lets the drain sequence know when no Submit can
	// still be enqueueing; registering under the same lock as the closed
	// check keeps Add from racing the drain's Wait.
	cl.inflight.Add(1)
	cl.mu.Unlock()
	defer cl.inflight.Done()
	fut := &Future[E]{machine: machine, done: make(chan struct{})}
	sub := &submission[E]{cmd: append([]E(nil), cmd...), fut: fut}
	select {
	case cl.queues[machine] <- sub:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-cl.quit:
		return nil, ErrClientClosed
	}
	select {
	case cl.notify <- struct{}{}:
	default:
	}
	return fut, nil
}

// Results streams the admitted futures in admission order (round-major,
// machine-minor; scheduler pads are not futures and do not appear). The
// iterator blocks waiting for further admissions while the client is open
// and ends once the client has closed and every buffered future has been
// yielded — so a consumer ranges over command outcomes without ever
// materializing a result slice.
//
// The stream starts at the Results call: futures admitted earlier are not
// replayed (and a client that never calls Results retains no futures at
// all — only the submitters' own references keep them alive), so call
// Results before submitting to observe every outcome. Yielded entries are
// released immediately; retention is bounded by consumer lag. The stream
// supports one consumer: concurrent iterators partition it.
func (cl *Client[E]) Results() iter.Seq[*Future[E]] {
	cl.mu.Lock()
	cl.stream = true
	cl.mu.Unlock()
	return func(yield func(*Future[E]) bool) {
		// When the consumer leaves — normally or via break — stop logging
		// and release the buffer, or futures would accumulate unconsumed
		// for the rest of the client's life.
		defer func() {
			cl.mu.Lock()
			cl.stream = false
			cl.log = nil
			cl.mu.Unlock()
		}()
		for {
			cl.mu.Lock()
			for len(cl.log) == 0 && !cl.finished {
				cl.logCond.Wait()
			}
			if len(cl.log) == 0 {
				cl.mu.Unlock()
				return
			}
			f := cl.log[0]
			cl.log[0] = nil // release: the backing array must not pin it
			cl.log = cl.log[1:]
			cl.mu.Unlock()
			if !yield(f) {
				return
			}
		}
	}
}

// Close stops admission, drains every pending submission (padding the
// final partial rounds and running the final partial batch), resolves all
// outstanding futures, releases the cluster, and returns the scheduler's
// first run error, if any. Close is idempotent; Submit fails with
// ErrClientClosed afterwards.
func (cl *Client[E]) Close() error {
	cl.mu.Lock()
	already := cl.closed
	cl.closed = true
	cl.mu.Unlock()
	if !already {
		close(cl.quit)
	}
	<-cl.done
	cl.mu.Lock()
	first := !cl.finished
	if first {
		cl.finished = true
		cl.logCond.Broadcast()
	}
	err := cl.runErr
	cl.mu.Unlock()
	if first {
		cl.c.clientMu.Lock()
		cl.c.clientOpen = false
		cl.c.clientMu.Unlock()
	}
	return err
}

// Err reports the scheduler's sticky error: the first run failure, or nil.
func (cl *Client[E]) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.runErr
}

// scheduler is the admission loop: it assembles rounds from the queues,
// groups them into consensus batches, and drives the cluster. It is the
// only goroutine touching the cluster between Open and Close.
func (cl *Client[E]) scheduler() {
	defer close(cl.done)
	var chunk [][][]E
	var futs [][]*Future[E]
	flush := func() {
		if len(chunk) > 0 {
			cl.runChunk(chunk, futs)
			chunk, futs = nil, nil
		}
	}
	draining := false
	for {
		cmds, roundFuts, formed := cl.nextRound(&draining)
		if !formed {
			flush()
			if draining {
				return
			}
			select {
			case <-cl.notify:
			case <-cl.quit:
				cl.beginDrain(&draining)
			}
			continue
		}
		chunk = append(chunk, cmds)
		futs = append(futs, roundFuts)
		if len(chunk) >= cl.batch {
			flush()
			continue
		}
		if !cl.determ {
			// Eager batching: only what is already pending coalesces into
			// one consensus batch — never wait for future submissions.
			if !cl.anyPending() {
				flush()
			}
		}
	}
}

// beginDrain transitions the scheduler into drain mode: quit is already
// closed, so after every in-flight Submit has either enqueued or aborted,
// the queues hold the final set of submissions.
func (cl *Client[E]) beginDrain(draining *bool) {
	if !*draining {
		*draining = true
		cl.inflight.Wait()
	}
}

// anyPending reports whether any machine has a queued submission.
func (cl *Client[E]) anyPending() bool {
	for _, q := range cl.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// nextRound assembles one round. In deterministic mode (before draining)
// it blocks until every machine has a pending command; otherwise it takes
// whatever is pending right now. Machines without a submission are padded.
// formed is false when nothing at all was pending (no round is admitted).
func (cl *Client[E]) nextRound(draining *bool) (cmds [][]E, futs []*Future[E], formed bool) {
	subs := make([]*submission[E], cl.k)
	for k := 0; k < cl.k; k++ {
		if cl.determ && !*draining {
			select {
			case subs[k] = <-cl.queues[k]:
				formed = true
				continue
			case <-cl.quit:
				cl.beginDrain(draining)
				// fall through to the non-blocking attempt
			}
		}
		select {
		case subs[k] = <-cl.queues[k]:
			formed = true
		default:
		}
	}
	if !formed {
		return nil, nil, false
	}
	cmds = make([][]E, cl.k)
	futs = make([]*Future[E], cl.k)
	cl.mu.Lock()
	for k, sub := range subs {
		if sub == nil {
			cmds[k] = cl.pad
			continue
		}
		cmds[k] = sub.cmd
		futs[k] = sub.fut
		if cl.stream {
			cl.log = append(cl.log, sub.fut)
		}
	}
	cl.logCond.Broadcast()
	cl.mu.Unlock()
	return cmds, futs, true
}

// runChunk executes one consensus batch worth of admitted rounds and
// resolves the rounds' futures. The chunk goes through Run, so the
// cluster's configured engine applies — including the pipelined one when
// Config.Pipeline is set. A chunk is exactly one consensus instance, so a
// Byzantine leader skips it atomically (every report carries Skipped);
// like RunQueue, the scheduler then retries the chunk under the next
// instances' rotated leaders, failing with ErrRoundLimit after a full
// rotation. After a run error the client is sticky-failed: the unexecuted
// rounds' futures resolve with the error, as does everything admitted
// afterwards.
func (cl *Client[E]) runChunk(chunk [][][]E, futs [][]*Future[E]) {
	if err := cl.Err(); err != nil {
		cl.resolveFrom(futs, 0, nil, err)
		return
	}
	for attempts := 0; ; attempts++ {
		results, err := cl.c.Run(chunk)
		if err != nil {
			for i, res := range results {
				cl.resolveRound(futs[i], res)
			}
			cl.fail(err)
			cl.resolveFrom(futs, len(results), nil, err)
			return
		}
		if !results[0].Skipped {
			for i, res := range results {
				cl.resolveRound(futs[i], res)
			}
			return
		}
		if attempts+1 >= cl.c.cfg.N { // a full leader rotation
			err := fmt.Errorf("%w: chunk skipped by %d consecutive leaders", ErrRoundLimit, attempts+1)
			cl.fail(err)
			cl.resolveFrom(futs, 0, nil, err)
			return
		}
	}
}

// resolveRound resolves one admitted round's futures from its report.
func (cl *Client[E]) resolveRound(futs []*Future[E], res *RoundResult[E]) {
	for k, fut := range futs {
		if fut == nil {
			continue
		}
		out := res.Outputs[k]
		if out == nil {
			fut.resolve(nil, res, fmt.Errorf("%w: machine %d gathered no b+1 matching replies", ErrQuorumUnreachable, k))
			continue
		}
		fut.resolve(out, res, nil)
	}
}

// resolveFrom resolves every future from round index `from` on with err.
func (cl *Client[E]) resolveFrom(futs [][]*Future[E], from int, res *RoundResult[E], err error) {
	for _, roundFuts := range futs[from:] {
		for _, fut := range roundFuts {
			if fut != nil {
				fut.resolve(nil, res, err)
			}
		}
	}
}

// fail records the scheduler's first run error.
func (cl *Client[E]) fail(err error) {
	cl.mu.Lock()
	if cl.runErr == nil {
		cl.runErr = err
	}
	cl.mu.Unlock()
}
