// Package consensus defines the interface between CSM's consensus phase and
// its execution phase, plus a lock-step runner. CSM deliberately reuses
// standard consensus protocols ("CSM uses the same consensus protocols to
// decide on the input commands", Section 1): the Dolev-Strong authenticated
// broadcast for synchronous networks (sub-package dolevstrong, tolerating
// any b < N) and PBFT for partially synchronous networks (sub-package pbft,
// requiring N >= 3b+1).
package consensus

import (
	"errors"
	"fmt"

	"codedsm/internal/transport"
)

// ErrNoDecision is returned when a protocol instance exhausts its round
// budget without every honest node deciding.
var ErrNoDecision = errors.New("consensus: no decision within round budget")

// Node is one participant in a lock-step protocol instance. Tick is called
// once per network round with the messages delivered this round; the node
// reacts by sending messages through its endpoint.
type Node interface {
	// Tick processes one round.
	Tick(inbox []transport.Message) error
	// Decided returns the decided value once the node has terminated.
	Decided() ([]byte, bool)
}

// Run drives a set of nodes in lock step until every node in waitFor has
// decided or maxRounds have elapsed. Nodes not in waitFor (e.g. Byzantine
// ones simulated by adversarial Node implementations) still get ticks.
func Run(net *transport.Network, nodes []Node, waitFor []int, maxRounds int) error {
	if len(waitFor) == 0 {
		return fmt.Errorf("consensus: empty waitFor set")
	}
	endpoints := make([]*transport.Endpoint, len(nodes))
	for i := range nodes {
		e, err := net.Endpoint(transport.NodeID(i))
		if err != nil {
			return err
		}
		endpoints[i] = e
	}
	for r := 0; r < maxRounds; r++ {
		for i, n := range nodes {
			if n == nil {
				continue
			}
			if err := n.Tick(endpoints[i].Receive()); err != nil {
				return fmt.Errorf("consensus: node %d round %d: %w", i, r, err)
			}
		}
		net.Step()
		done := true
		for _, i := range waitFor {
			if nodes[i] == nil {
				continue
			}
			if _, ok := nodes[i].Decided(); !ok {
				done = false
				break
			}
		}
		if done {
			return nil
		}
	}
	return ErrNoDecision
}
