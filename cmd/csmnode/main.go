// Command csmnode runs one node of a Coded State Machine cluster as its
// own OS process, speaking the length-prefixed signed TCP transport to
// its peers. A cluster is N csmnode processes, each started from a
// static per-node config file; `csmnode bootstrap` writes a matching set
// of config files for an N-node localhost cluster.
//
//	csmnode bootstrap -dir cluster -n 4 -k 2 -seed 42 -serve -data-dir cluster/data
//	csmnode run -config cluster/node1.json &
//	csmnode run -config cluster/node2.json &
//	csmnode run -config cluster/node3.json &
//	csmnode run -config cluster/node0.json -rounds 16   # leads a seeded workload
//
// How each batch is decided is the cluster's consensus mode (bootstrap
// -consensus oracle|dolev-strong|pbft). Under the default oracle mode
// node 0 is the trusted sequencer: with -rounds it leads a seeded random
// workload; with -serve it listens on the config's client address and
// sequences rounds submitted by nodeapi clients (the Submit ingress,
// over a socket); followers need neither flag — they execute whatever
// the sequencer agrees until the stop marker arrives. Under
// dolev-strong or pbft there is no sequencer: every node must be given
// the same -rounds and drives the same seeded workload, each batch
// decided by the real BFT protocol over TCP. PBFT clusters (sized
// N >= 3b+1) survive the crash of up to b processes mid-run — the view
// change routes leadership around them and the survivors' digests still
// match the simulated oracle run.
//
// With data_dir set (bootstrap -data-dir), every node write-ahead-logs
// each decided batch and periodically snapshots its coded share, so a
// killed cluster restarted on the same config files recovers its state,
// reconciles residual crash skew peer-to-peer (csm's Recover handshake),
// and resumes the workload where it stopped. CSMNODE_CRASH=<point>[@n]
// arms the fault-injection hook: the process exits hard the n-th time
// the WAL layer reaches the named crash point (see internal/wal).
//
// Every node prints `digest=<hex>` (a canonical SHA-256 over all decoded
// outputs since round 0, surviving restarts) and `rounds=<n>` on stdout
// when the run ends; honest nodes of one run print identical digests,
// and the digest equals the in-memory simulated cluster's on the same
// workload. SIGINT/SIGTERM shut the node down gracefully: the transport
// closes, the barrier unblocks, and the digest of the rounds executed so
// far is still printed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/nodeapi"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
	"codedsm/internal/wal"
)

// nodeConfig is the static per-node cluster configuration. All fields
// except Node, Listen, ClientListen, and DataDir must be identical
// across the cluster's config files — and DataDir must be set on either
// all nodes or none, since recovery is a cluster-wide handshake.
type nodeConfig struct {
	Node   int    `json:"node"`   // this node's id (0 = sequencer)
	N      int    `json:"n"`      // cluster size
	K      int    `json:"k"`      // number of state machines
	Faults int    `json:"faults"` // fault budget b the code is sized for
	Degree int    `json:"degree"` // polynomial-register transition degree
	Seed   uint64 `json:"seed"`   // shared cluster seed (keys + workload)
	Batch  int    `json:"batch"`  // rounds per sequencer batch (workload mode)
	// Consensus selects how batches are decided: "oracle" (default; node
	// 0 is the trusted sequencer), "dolev-strong", or "pbft".
	Consensus string   `json:"consensus,omitempty"`
	Listen    string   `json:"listen"` // this node's transport listen address
	Peers     []string `json:"peers"`  // all N transport addresses, node order
	// ClientListen is the sequencer's nodeapi ingress address (serve
	// mode); empty elsewhere.
	ClientListen  string `json:"client_listen,omitempty"`
	StepTimeoutMS int    `json:"step_timeout_ms,omitempty"`
	// DataDir is this node's durable state directory (write-ahead log +
	// coded snapshots). Empty disables durability.
	DataDir string `json:"data_dir,omitempty"`
	// SnapshotEvery is the snapshot cadence in rounds (0 = engine
	// default).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// Fsync selects the WAL sync policy: "always" (default; a decided
	// batch survives any crash) or "never" (the OS decides; faster, may
	// lose the tail on power loss — crash-kill safe either way).
	Fsync string `json:"fsync,omitempty"`
}

func (c nodeConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("n=%d: a multi-process cluster needs at least 2 nodes", c.N)
	case c.Node < 0 || c.Node >= c.N:
		return fmt.Errorf("node=%d out of range for n=%d", c.Node, c.N)
	case c.K < 1:
		return fmt.Errorf("k=%d: need at least one machine", c.K)
	case c.Degree < 1:
		return fmt.Errorf("degree=%d: need a degree >= 1 transition", c.Degree)
	case c.Batch < 0:
		return fmt.Errorf("batch=%d must be >= 0", c.Batch)
	case len(c.Peers) != c.N:
		return fmt.Errorf("%d peer addresses for n=%d", len(c.Peers), c.N)
	case c.Listen == "":
		return errors.New("listen address is empty")
	case c.Fsync != "" && c.Fsync != "always" && c.Fsync != "never":
		return fmt.Errorf("fsync=%q: want \"always\" or \"never\"", c.Fsync)
	case c.SnapshotEvery < 0:
		return fmt.Errorf("snapshot_every=%d must be >= 0", c.SnapshotEvery)
	}
	kind, err := c.consensusKind()
	if err != nil {
		return err
	}
	// Eager shape check (PBFT: n >= 3b+1) with the engine's typed error,
	// so a doomed cluster fails at bootstrap, not after N sockets are up.
	return csm.ValidateRemoteConsensus(kind, c.N, c.Faults)
}

// consensusKind maps the config's consensus string to the engine kind.
func (c nodeConfig) consensusKind() (csm.ConsensusKind, error) {
	switch c.Consensus {
	case "", "oracle":
		return csm.Oracle, nil
	case "dolev-strong":
		return csm.DolevStrong, nil
	case "pbft":
		return csm.PBFT, nil
	default:
		return 0, fmt.Errorf("%w: unknown consensus %q (want oracle, dolev-strong, or pbft)",
			csm.ErrConsensusConfig, c.Consensus)
	}
}

// syncPolicy maps the config's fsync string to the WAL policy.
func (c nodeConfig) syncPolicy() wal.SyncPolicy {
	if c.Fsync == "never" {
		return wal.SyncNever
	}
	return wal.SyncAlways
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "bootstrap":
		err = bootstrap(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csmnode:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  csmnode bootstrap -dir DIR [-n 4] [-k 2] [-faults 0] [-degree 2] [-seed 42] [-batch 1]
                    [-consensus oracle|dolev-strong|pbft]
                    [-serve] [-data-dir DIR] [-snapshot-every R] [-fsync always|never]
      write per-node config files for an N-node localhost cluster;
      -data-dir enables durable state under DIR/node<i>;
      -consensus pbft needs n >= 3*faults+1 (validated here)
  csmnode run -config FILE [-rounds R] [-serve]
      run one node. Oracle mode: node 0 leads R seeded workload rounds
      (-rounds) or serves the nodeapi Submit ingress (-serve); followers
      need neither flag. BFT modes (dolev-strong, pbft): every node
      needs the same -rounds; -serve is oracle-only. A node with durable
      state resumes from it and reconciles with its peers first.`)
}

// bootstrap writes node{i}.json config files for a localhost cluster,
// probing the kernel for free ports.
func bootstrap(args []string) error {
	fs := flag.NewFlagSet("bootstrap", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to write node config files into")
	n := fs.Int("n", 4, "cluster size")
	k := fs.Int("k", 2, "number of state machines")
	faults := fs.Int("faults", 0, "fault budget the code is sized for")
	degree := fs.Int("degree", 2, "polynomial-register transition degree")
	seed := fs.Uint64("seed", 42, "shared cluster seed")
	batch := fs.Int("batch", 1, "rounds per sequencer batch")
	consensus := fs.String("consensus", "oracle", `batch consensus: "oracle", "dolev-strong", or "pbft"`)
	serve := fs.Bool("serve", false, "give node 0 a client ingress address")
	dataDir := fs.String("data-dir", "", "enable durability: per-node state under DIR/node<i>")
	snapshotEvery := fs.Int("snapshot-every", 0, "snapshot cadence in rounds (0 = engine default)")
	fsync := fs.String("fsync", "", `WAL sync policy: "always" (default) or "never"`)
	fs.Parse(args)

	if maxK := lcc.SyncMaxMachines(*n, *faults, *degree); *k > maxK {
		return fmt.Errorf("k=%d exceeds capacity %d for n=%d faults=%d degree=%d (need n >= (k-1)*degree + 2*faults + 1)",
			*k, maxK, *n, *faults, *degree)
	}
	// Fail a doomed consensus/fault-budget pairing before any port probe.
	kind, err := nodeConfig{Consensus: *consensus}.consensusKind()
	if err != nil {
		return err
	}
	if err := csm.ValidateRemoteConsensus(kind, *n, *faults); err != nil {
		return err
	}
	if *serve && kind != csm.Oracle {
		return fmt.Errorf("%w: -serve needs the oracle sequencer; %s clusters run fixed workloads", csm.ErrConsensusConfig, *consensus)
	}
	ports := *n
	if *serve {
		ports++
	}
	addrs, err := probePorts(ports)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		cfg := nodeConfig{
			Node: i, N: *n, K: *k, Faults: *faults, Degree: *degree,
			Seed: *seed, Batch: *batch, Consensus: *consensus,
			Listen: addrs[i], Peers: addrs[:*n],
			SnapshotEvery: *snapshotEvery, Fsync: *fsync,
		}
		if *serve && i == 0 {
			cfg.ClientListen = addrs[*n]
		}
		if *dataDir != "" {
			cfg.DataDir = filepath.Join(*dataDir, fmt.Sprintf("node%d", i))
		}
		if err := cfg.validate(); err != nil {
			return err
		}
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, fmt.Sprintf("node%d.json", i))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

// probePorts reserves n distinct localhost addresses by briefly binding
// port 0. The listeners close before returning, so the ports are free
// for the nodes to bind (a small reuse race the transport's bind retry
// rides out).
func probePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// installCrashHook arms the fault-injection hook from CSMNODE_CRASH:
// "<point>" or "<point>@<n>" makes the process exit hard — os.Exit, no
// deferred cleanup, indistinguishable from a crash — the n-th time
// (default: first) the WAL layer reaches that crash point. Used by the
// restart harness; normal operation leaves the variable unset.
func installCrashHook() {
	spec := os.Getenv("CSMNODE_CRASH")
	if spec == "" {
		return
	}
	point, after, found := strings.Cut(spec, "@")
	hits := int64(1)
	if found {
		if v, err := strconv.ParseInt(after, 10, 64); err == nil && v > 0 {
			hits = v
		}
	}
	var count atomic.Int64
	wal.SetCrashHook(func(p wal.CrashPoint) {
		if string(p) == point && count.Add(1) == hits {
			fmt.Fprintf(os.Stderr, "csmnode: injected crash at %s\n", p)
			os.Exit(137)
		}
	})
}

// procSequencer adapts the field-element node process to the ingress
// server's plain-uint64 Sequencer surface.
type procSequencer struct {
	proc *csm.NodeProcess[uint64]
	gold field.Goldilocks
}

func (s procSequencer) Machines() int     { return s.proc.Machines() }
func (s procSequencer) CmdLen() int       { return s.proc.Transition().CmdLen() }
func (s procSequencer) Round() int        { return s.proc.Round() }
func (s procSequencer) DigestSum() string { return s.proc.DigestSum() }
func (s procSequencer) Stop() error       { return s.proc.Stop() }

func (s procSequencer) Canonicalize(cmd []uint64) []uint64 {
	out := make([]uint64, len(cmd))
	for i, v := range cmd {
		out[i] = s.gold.Uint64(s.gold.FromUint64(v)) // canonicalize into the field
	}
	return out
}

func (s procSequencer) LeadRound(cmds [][]uint64) ([][]uint64, error) {
	outs, err := s.proc.LeadBatch([][][]uint64{cmds})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// run runs one node until its workload finishes, its sequencer stops the
// cluster, or a termination signal arrives.
func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	configPath := fs.String("config", "", "node config file (required)")
	rounds := fs.Int("rounds", 0, "sequencer only: lead this many seeded workload rounds")
	serve := fs.Bool("serve", false, "sequencer only: serve the nodeapi Submit ingress")
	fs.Parse(args)
	if *configPath == "" {
		return errors.New("run needs -config")
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		return err
	}
	var cfg nodeConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", *configPath, err)
	}
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("%s: %w", *configPath, err)
	}
	kind, err := cfg.consensusKind()
	if err != nil {
		return err // unreachable after validate, kept for clarity
	}
	if kind != csm.Oracle {
		// BFT clusters are symmetric: no sequencer, no ingress, every node
		// drives the same seeded workload.
		if *serve {
			return fmt.Errorf("%w: -serve needs the oracle sequencer; %s clusters run fixed workloads", csm.ErrConsensusConfig, cfg.Consensus)
		}
		if *rounds <= 0 {
			return fmt.Errorf("%s clusters are symmetric: every node needs the same -rounds", cfg.Consensus)
		}
	} else if cfg.Node == 0 {
		if *serve && *rounds > 0 {
			return errors.New("-serve and -rounds are mutually exclusive")
		}
		if !*serve && *rounds <= 0 {
			return errors.New("the sequencer (node 0) needs -rounds or -serve")
		}
		if *serve && cfg.ClientListen == "" {
			return errors.New("-serve needs a client_listen address in the config (bootstrap -serve)")
		}
	}
	installCrashHook()

	stepTimeout := time.Duration(cfg.StepTimeoutMS) * time.Millisecond
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "node %d: "+format+"\n", append([]any{cfg.Node}, a...)...)
	}
	tcpCfg := transport.TCPConfig{
		Self: transport.NodeID(cfg.Node), N: cfg.N, Seed: cfg.Seed,
		Listen: cfg.Listen, Peers: cfg.Peers,
		StepTimeout: stepTimeout,
		// Ride out the bootstrap probe-to-bind reuse race (and, after a
		// crash, a lingering socket from the previous incarnation).
		BindRetries: 20, BindBackoff: 50 * time.Millisecond,
		Logf: logf,
	}
	if kind == csm.PBFT && cfg.Faults > 0 {
		// PBFT tolerates b dead peers; let the lock-step barrier tolerate
		// the same instead of stalling on a crashed process forever.
		tcpCfg.FailoverQuorum = cfg.N - 1 - cfg.Faults
	}
	link, err := transport.NewTCP(tcpCfg)
	if err != nil {
		return fmt.Errorf("bringing up transport: %w", err)
	}
	defer link.Close()

	// Graceful shutdown: closing the link fails any blocked barrier with
	// ErrClosed, which unwinds the engine; the digest still prints.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var clientLn net.Listener
	if cfg.Node == 0 && *serve {
		clientLn, err = net.Listen("tcp", cfg.ClientListen)
		if err != nil {
			return fmt.Errorf("binding client ingress: %w", err)
		}
		defer clientLn.Close()
	}
	var interrupted atomic.Bool
	go func() {
		s := <-sigc
		interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "node %d: received %v, shutting down\n", cfg.Node, s)
		if clientLn != nil {
			clientLn.Close()
		}
		link.Close()
	}()

	gold := field.NewGoldilocks()
	var dur *csm.DurabilityConfig
	if cfg.DataDir != "" {
		dur = &csm.DurabilityConfig{
			Dir: cfg.DataDir, SnapshotEvery: cfg.SnapshotEvery, Sync: cfg.syncPolicy(),
		}
	}
	proc, err := csm.NewNodeProcess(csm.RemoteConfig[uint64]{
		BaseField: gold,
		NewTransition: func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
			return sm.NewPolynomialRegister(f, cfg.Degree)
		},
		K:          cfg.K,
		MaxFaults:  cfg.Faults,
		Consensus:  kind,
		Durability: dur,
	}, link)
	if err != nil {
		return err
	}
	defer proc.Close()
	if proc.Durable() {
		if proc.Round() > 0 {
			logf("resuming at round %d from %s", proc.Round(), cfg.DataDir)
		}
		// Reconcile residual crash skew with the peers before any batch.
		if err := proc.Recover(); err != nil {
			return fmt.Errorf("recovery handshake: %w", err)
		}
	}

	var runErr error
	switch {
	case kind != csm.Oracle:
		// Symmetric BFT drive: every node proposes the same seeded
		// workload and executes whatever the protocol decides.
		workload := csm.RandomWorkload[uint64](gold, *rounds, cfg.K, proc.Transition().CmdLen(), cfg.Seed)
		resume := min(proc.Round(), len(workload))
		_, runErr = proc.RunWorkload(workload[resume:], cfg.Batch)
	case cfg.Node != 0:
		_, runErr = proc.Follow()
	case *rounds > 0:
		workload := csm.RandomWorkload[uint64](gold, *rounds, cfg.K, proc.Transition().CmdLen(), cfg.Seed)
		resume := min(proc.Round(), len(workload))
		_, runErr = proc.Lead(workload[resume:], cfg.Batch)
	default:
		runErr = nodeapi.NewServer(procSequencer{proc: proc, gold: gold}, logf).Serve(clientLn)
	}
	if interrupted.Load() && errors.Is(runErr, transport.ErrClosed) {
		runErr = nil // clean signal shutdown
	}
	fmt.Printf("digest=%s\n", proc.DigestSum())
	fmt.Printf("rounds=%d\n", proc.Round())
	return runErr
}
