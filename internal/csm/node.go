package csm

import (
	"fmt"
	"slices"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// resultKind tags execution-phase messages.
const resultKind = "csm-result"

// node is one CSM compute node.
type node[E comparable] struct {
	cluster    *Cluster[E]
	id         int
	ep         *transport.Endpoint
	behavior   Behavior
	codedState []E

	// per-round collection state
	received map[int][]E // sender -> result vector
	decoded  *nodeDecode[E]

	// Round-to-round scratch: steady-state rounds reuse these instead of
	// allocating. cmdScratch holds the node's coded commands, stateScratch
	// double-buffers the re-encoded coded state (it swaps with codedState
	// each round), and idxScratch/resScratch stage the decode inputs.
	cmdScratch   []E
	stateScratch []E
	idxScratch   []int
	resScratch   [][]E

	// delegated-mode state (Section 6.2)
	dlgCoded [][]E        // worker only: the coded commands it produced
	dlgProof *dlgProofMsg // the proof this node holds for the round
}

// nodeDecode is a node's decoded view of one round.
type nodeDecode[E comparable] struct {
	outputs    [][]E // K output vectors
	nextStates [][]E // K next-state vectors
	faulty     []int
}

// lagrangeEncodeInto accumulates the node's Lagrange encode Σ_k c_ik
// vecs[k] into dst — allocated at the given length when nil — on the
// counted bulk kernels (K ScaleAccVec calls). It returns dst.
func (n *node[E]) lagrangeEncodeInto(dst []E, length int, vecs [][]E) []E {
	c := n.cluster
	if dst == nil {
		dst = make([]E, length)
	}
	zero := c.counting.Zero()
	for j := range dst {
		dst[j] = zero
	}
	row := c.code.Coeffs()[n.id]
	for k := range vecs {
		c.bulk.ScaleAccVec(dst, row[k], vecs[k])
	}
	return dst
}

// computeResult runs the coded execution step: encode the commands with the
// node's Lagrange coefficients and apply f on coded state and command. The
// encode lands in the node's reusable command scratch — Apply copies its
// inputs, so the scratch never escapes the round.
func (n *node[E]) computeResult(cmds [][]E) ([]E, error) {
	c := n.cluster
	n.cmdScratch = n.lagrangeEncodeInto(n.cmdScratch, c.tr.CmdLen(), cmds)
	return c.tr.ApplyResult(n.codedState, n.cmdScratch)
}

// broadcastResult sends the node's (possibly corrupted) result.
func (n *node[E]) broadcastResult(result []E) error {
	c := n.cluster
	switch n.behavior {
	case Silent:
		return nil
	case WrongResult, BadLeader:
		bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
		n.received[n.id] = bad // a liar is at least self-consistent
		return n.ep.Broadcast(resultKind, c.encodeResultPayload(c.round, bad))
	case Equivocate:
		// A different wrong value to every peer. On a no-equivocation
		// (broadcast) network the transport coerces these to the first.
		for to := 0; to < c.cfg.N; to++ {
			if to == n.id {
				continue
			}
			bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
			if err := n.ep.Send(transport.NodeID(to), resultKind, c.encodeResultPayload(c.round, bad)); err != nil {
				return err
			}
		}
		n.received[n.id] = result
		return nil
	default:
		n.received[n.id] = result
		return n.ep.Broadcast(resultKind, c.encodeResultPayload(c.round, result))
	}
}

// collect ingests result messages for the current round.
func (n *node[E]) collect(msgs []transport.Message) {
	c := n.cluster
	for _, m := range msgs {
		if m.Kind != resultKind {
			continue
		}
		round, result, ok := c.decodeResultPayload(m.Payload)
		if !ok || round != c.round || len(result) != c.tr.ResultLen() {
			continue
		}
		n.received[int(m.From)] = result
	}
}

// tryDecode decodes once enough results are available. Synchronous mode
// decodes whatever arrived after the fixed interval (missing results are
// erasures); partially synchronous mode requires at least N-b results.
func (n *node[E]) tryDecode(force bool) (bool, error) {
	c := n.cluster
	need := c.cfg.N - c.cfg.MaxFaults
	if len(n.received) < need {
		return false, nil
	}
	if !force && len(n.received) < c.cfg.N {
		// Wait for more stragglers unless the deadline passed.
		return false, nil
	}
	indices := n.idxScratch[:0]
	for idx := range n.received {
		indices = append(indices, idx)
	}
	slices.Sort(indices)
	n.idxScratch = indices
	results := n.resScratch[:0]
	for _, idx := range indices {
		results = append(results, n.received[idx])
	}
	n.resScratch = results
	dec, err := c.code.DecodeOutputsSubset(indices, results, c.tr.Degree())
	if err != nil {
		return false, fmt.Errorf("csm: node %d decode: %w", n.id, err)
	}
	outputs := make([][]E, c.cfg.K)
	nextStates := make([][]E, c.cfg.K)
	for k := 0; k < c.cfg.K; k++ {
		next, out, err := c.tr.SplitResult(dec.Outputs[k])
		if err != nil {
			return false, err
		}
		nextStates[k] = next
		outputs[k] = out
	}
	n.decoded = &nodeDecode[E]{outputs: outputs, nextStates: nextStates, faulty: dec.FaultyNodes}
	// Update the coded state: S̃_i(t+1) = Σ_k c_ik Ŝ_k(t+1), re-encoded into
	// the state double-buffer (the outgoing coded state becomes next round's
	// buffer; nothing else retains it — external readers go through
	// NodeCodedState, which copies).
	newCoded := n.lagrangeEncodeInto(n.stateScratch, c.tr.StateLen(), nextStates)
	n.stateScratch = n.codedState
	n.codedState = newCoded
	return true, nil
}
