package rs

import (
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
)

// Regression test: decoding a corrupted encoding of the ZERO codeword (all
// outputs zero — routine for Boolean machines whose output bit is mostly 0,
// Appendix A). The EEA remainder sequence terminates at zero before the
// Gao stop degree; an early version of PartialEEA returned the previous
// remainder and misdecoded.
func TestDecodeZeroCodeword(t *testing.T) {
	for _, mk := range []func(t *testing.T) *poly.Ring[uint64]{
		func(t *testing.T) *poly.Ring[uint64] { return goldRing() },
		func(t *testing.T) *poly.Ring[uint64] { return newGF2mRingRS(t) },
	} {
		ring := mk(t)
		for _, tc := range []struct{ n, k int }{{8, 4}, {20, 6}, {5, 1}} {
			c := newTestCode(t, ring, tc.n, tc.k)
			word := make([]uint64, tc.n)
			for e := 0; e <= c.MaxErrors(); e++ {
				w := append([]uint64{}, word...)
				for i := 0; i < e; i++ {
					w[i*2] = ring.Field().Add(w[i*2], uint64(i)+7)
				}
				res, err := c.Decode(w)
				if err != nil {
					t.Fatalf("%s n=%d k=%d e=%d: %v", ring.Field().Name(), tc.n, tc.k, e, err)
				}
				if !ring.IsZero(res.Message) {
					t.Fatalf("%s n=%d k=%d e=%d: decoded %v, want zero", ring.Field().Name(), tc.n, tc.k, e, res.Message)
				}
				if len(res.ErrorsAt) != e {
					t.Fatalf("e=%d: found %d errors", e, len(res.ErrorsAt))
				}
				// Berlekamp-Welch agrees.
				bw, err := c.DecodeBW(w)
				if err != nil {
					t.Fatalf("BW e=%d: %v", e, err)
				}
				if !ring.IsZero(bw.Message) {
					t.Fatalf("BW e=%d: nonzero decode", e)
				}
			}
		}
	}
}

// Constant (degree-0) codewords exercise the same near-degenerate path.
func TestDecodeConstantCodeword(t *testing.T) {
	ring := goldRing()
	c := newTestCode(t, ring, 12, 5)
	word, err := c.Encode(poly.Poly[uint64]{42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.MaxErrors(); i++ {
		word[i*3] = ring.Field().Add(word[i*3], 1)
	}
	res, err := c.Decode(word)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Equal(res.Message, poly.Poly[uint64]{42}) {
		t.Fatalf("decoded %v", res.Message)
	}
}

func newGF2mRingRS(t *testing.T) *poly.Ring[uint64] {
	t.Helper()
	f, err := field.NewGF2m(16)
	if err != nil {
		t.Fatal(err)
	}
	return poly.NewRing[uint64](f)
}
