// Package csm implements the Coded State Machine engine — the paper's core
// contribution (Sections 2, 5). A cluster of N nodes operates K independent
// state machines with the same polynomial transition function f of degree d:
//
//   - every node i stores one Lagrange-coded state S̃_i (storage efficiency
//     γ = K, Theorem 1);
//   - each round, the nodes agree on K input commands (consensus phase:
//     Dolev-Strong in synchronous networks, PBFT in partially synchronous
//     ones, or a trusted-sequencer oracle when the experiment isolates the
//     execution phase, as the paper's throughput metric does);
//   - each node encodes the commands (X̃_i), computes g_i = f(S̃_i, X̃_i) and
//     broadcasts it (execution phase);
//   - each node Reed-Solomon-decodes the N results — at most b of which are
//     corrupted by Byzantine nodes — recovers every machine's output and
//     next state, replies to the clients, and re-encodes its coded state.
//
// The engine runs on the deterministic lock-step network of package
// transport and measures throughput exactly as the paper defines it:
// commands per field operation per node (Section 2.2).
//
// # Batching and pipelining
//
// Two throughput knobs compose with the per-round parallelism of
// Config.Parallelism:
//
//   - Config.BatchSize B groups B consecutive workload rounds under one
//     consensus instance. The agreed B*K commands are Lagrange-encoded in
//     a single flat-row bulk pass per node, and the B micro-steps then run
//     the coded execution back to back. From the second micro-step on,
//     each node primes its Reed-Solomon decode with the previous
//     micro-step's faulty set (lcc.Primed): the error-locator solve is
//     skipped whenever the corruption pattern is stable, which is the
//     steady state under static Byzantine behaviour. For every decided
//     batch, outputs, detected faults and decoded states are identical to
//     unbatched execution; only tick accounting (one consensus per batch)
//     and the operation counts of the accelerated decodes differ. The
//     consensus granularity itself necessarily changes: rotating-leader
//     protocols elect one leader per instance (rotating over instances,
//     so every node still leads eventually) and a corrupted proposal
//     skips the whole batch rather than a single round.
//
//   - Config.Pipeline (and RunPipelined) overlaps rounds: a background
//     client stage performs the oracle advance, client tally, and audit of
//     a decided round while the driving goroutine already runs the
//     consensus and execution phases of the following rounds.
//
// The pipelined engine's happens-before contract: within a round, every
// node's next-state re-encode (the tail of its decode) completes on the
// driving goroutine before the next round's compute phase reads any coded
// state, so overlapped rounds never observe a half-updated S̃_i. The
// client stage receives only immutable per-round snapshots — the decoded
// outputs/states (freshly allocated by each decode), the agreed commands,
// and client replies pre-drawn on the driving goroutine in protocol
// order — and it alone touches the oracle machines between Run start and
// return. All cluster and network randomness is consumed on the driving
// goroutine in the same order as sequential execution, which is what makes
// pipelined runs bit-identical (RoundResult for RoundResult) to
// sequential ones.
package csm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"codedsm/internal/consensus"
	"codedsm/internal/consensus/dolevstrong"
	"codedsm/internal/consensus/pbft"
	"codedsm/internal/field"
	"codedsm/internal/ints"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// Behavior selects how a Byzantine node misbehaves in the execution phase.
type Behavior int

const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// WrongResult broadcasts a random wrong computation result g_i.
	WrongResult
	// Silent sends nothing in the execution phase.
	Silent
	// Equivocate sends a different wrong result to every recipient
	// (requires a point-to-point network; a broadcast network coerces the
	// payloads, which is exactly the paper's no-equivocation assumption).
	Equivocate
	// BadLeader proposes a garbage batch when leading consensus and also
	// broadcasts wrong results.
	BadLeader
	// Crashed is a fail-stopped node: it sends and receives nothing (the
	// transport drops its traffic in both directions), its coded state is
	// lost, and it participates in neither consensus nor execution until it
	// is repaired. Unlike active misbehaviour, a crash is an *erasure* in
	// the Reed-Solomon sense: every decoder knows the coordinate is absent,
	// so it consumes one parity symbol of the fault budget where an error
	// consumes two (Table 2; see the fault-budget rules on Config).
	Crashed
	// Recovering marks a node between rejoining the network and completing
	// its coded-state repair: it is reachable again but holds no valid
	// share yet, so it behaves as an erasure like Crashed. Rejoin installs
	// it transiently; a node is left in this state only when a repair
	// attempt failed (it stays out of consensus and execution until a
	// retried Rejoin succeeds). It is not accepted in Config.Byzantine.
	Recovering
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case WrongResult:
		return "wrong-result"
	case Silent:
		return "silent"
	case Equivocate:
		return "equivocate"
	case BadLeader:
		return "bad-leader"
	case Crashed:
		return "crashed"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// ConsensusKind selects the consensus-phase protocol.
type ConsensusKind int

const (
	// Oracle is a trusted sequencer: all nodes receive the batch directly.
	// Used when measuring the execution phase alone (the paper's throughput
	// definition explicitly excludes consensus cost, Section 2.2).
	Oracle ConsensusKind = iota
	// DolevStrong runs authenticated broadcast (synchronous networks).
	DolevStrong
	// PBFT runs Practical BFT (partially synchronous networks).
	PBFT
)

// String implements fmt.Stringer.
func (c ConsensusKind) String() string {
	switch c {
	case Oracle:
		return "oracle"
	case DolevStrong:
		return "dolev-strong"
	case PBFT:
		return "pbft"
	default:
		return fmt.Sprintf("ConsensusKind(%d)", int(c))
	}
}

// TransitionFactory builds the same logical transition function over a
// given field instance. The engine needs two instances: one over a counting
// field (the cluster under measurement) and one over the plain field (the
// uncoded reference oracle).
type TransitionFactory[E comparable] func(field.Field[E]) (*sm.Transition[E], error)

// Config configures a CSM cluster.
type Config[E comparable] struct {
	// BaseField is the arithmetic field (Goldilocks or GF(2^m)).
	BaseField field.Field[E]
	// NewTransition builds the state transition function.
	NewTransition TransitionFactory[E]
	// K is the number of state machines; N the number of nodes.
	K, N int
	// MaxFaults is the engineering fault budget b the cluster is sized
	// for; it determines the partially synchronous wait threshold N-b.
	MaxFaults int
	// Mode selects the network timing model.
	Mode transport.Mode
	// GST is the stabilization round for PartialSync.
	GST int
	// Consensus selects the consensus-phase protocol.
	Consensus ConsensusKind
	// Byzantine maps node index to misbehaviour.
	Byzantine map[int]Behavior
	// NoEquivocation models a broadcast network (Section 6 assumption).
	NoEquivocation bool
	// Delegated enables the Section 6.2 execution phase: a rotating worker
	// performs all coding, verified by a random auditor committee; fraud
	// aborts the attempt and the next worker retries. Requires a
	// synchronous broadcast network (Mode == Sync and NoEquivocation).
	Delegated bool
	// InitialStates holds K state vectors; nil means all-zero states.
	InitialStates [][]E
	// Seed drives all randomness.
	Seed uint64
	// MaxTicksPerRound bounds a single round's lock-step ticks (default 200).
	MaxTicksPerRound int
	// Parallelism is the number of worker goroutines the execution phase
	// fans node-level work onto: the N coded transition computes, the
	// result-broadcast signing whenever the network schedule is RNG-free,
	// and the honest nodes' Reed-Solomon decodes (in delegated mode, the
	// rotating worker's per-component decodes). Rounds are bit-identical
	// to the sequential path for any worker count — all randomness and
	// ordered network interaction stay on the driving goroutine. 1 runs
	// sequentially; <= 0 selects runtime.GOMAXPROCS(0).
	Parallelism int
	// BatchSize is the number of consecutive workload rounds each
	// consensus instance decides (Run/RunPipelined group the workload
	// accordingly). The B micro-steps share one amortized command encode
	// and prime each other's decodes; see the package documentation.
	// 0 and 1 both mean one round per consensus instance; negative
	// values are rejected.
	BatchSize int
	// Pipeline enables the pipelined engine in Run and sets its depth: up
	// to Pipeline decided rounds may have their client/audit stage still
	// outstanding while the driving goroutine executes later rounds.
	// 0 disables pipelining in Run (RunPipelined then uses
	// DefaultPipelineDepth); negative values are rejected. Incompatible
	// with Delegated.
	Pipeline int
	// Churn schedules membership and adversary changes: an event with
	// Round r is applied at the boundary of the consensus instance that
	// covers engine round r (Cluster.Round), before that instance runs
	// (with BatchSize B events land at instance boundaries — an instance
	// is the atomic unit of agreement, so membership cannot change inside
	// one). Engine rounds advance for skipped instances too, so under
	// RunQueue retries events are keyed to protocol time, not workload
	// position: a crash scheduled for round r fires at round r even if a
	// Byzantine leader forced earlier rounds to be re-attempted. Events
	// are applied in schedule order for equal rounds. Every application is
	// checked against the fault-budget rules (see ChurnEvent); a violating
	// event fails the run. Incompatible with Delegated.
	Churn []ChurnEvent
	// ChurnFn optionally generates churn events dynamically: it is called
	// once per workload round at the covering instance boundary and its
	// events are applied after the static Churn entries for that round.
	// It must be deterministic (a pure function of the round) or the
	// same-seed reproducibility contract is void. Incompatible with
	// Delegated. See MovingAdversary for the paper's Section 7 dynamic
	// adversary as a ChurnFn.
	ChurnFn func(round int) []ChurnEvent
	// Durability enables the durable state layer (see durability.go):
	// decided batches are logged write-ahead to a CRC-framed WAL and the
	// full cluster state is snapshotted on a cadence; New recovers from
	// the newest valid snapshot plus WAL replay when the directory holds
	// prior state. Incompatible with Delegated. Durability never touches
	// the cluster RNG, so a durable run's outputs are bit-identical to
	// the same seed without it.
	Durability *DurabilityConfig
}

// Cluster is a running CSM deployment.
type Cluster[E comparable] struct {
	cfg      Config[E]
	counting *field.Counting[E]
	bulk     field.Bulk[E] // counted bulk kernels: one capability check at build
	ring     *poly.Ring[E]
	code     *lcc.Code[E]
	tr       *sm.Transition[E] // over the counting field
	oracleTr *sm.Transition[E] // over the base field
	oracle   []*sm.Machine[E]
	net      *transport.Network
	nodes    []*node[E]
	rng      *rand.Rand
	round    int
	// instances counts consensus instances (= batches, skipped or not).
	// Leadership rotates over instances, not rounds: with BatchSize B the
	// round counter advances by B per instance, and rotating by round
	// would visit only every gcd(B,N)-th node — silently excluding
	// BadLeader adversaries from batched runs. For B=1 the two coincide.
	instances int
	// epoch counts membership epochs: it advances whenever a churn
	// boundary applies at least one event, so rounds between two
	// increments share one static fault pattern.
	epoch int
	// churnAt is the cursor into cfg.Churn (kept sorted by Round at
	// construction): events before it have been applied.
	churnAt int
	repairs RepairStats
	// clientMu guards clientOpen — the ingress flag: while a Client is
	// open its scheduler owns the cluster, so a second Open is refused
	// until Close (the only cluster state that concurrent goroutines may
	// legitimately contend on).
	clientMu   sync.Mutex
	clientOpen bool
	// dur is the durable store (nil without Config.Durability).
	dur *clusterStore
}

// New builds and initializes a cluster, distributing coded initial states.
func New[E comparable](cfg Config[E]) (*Cluster[E], error) {
	if cfg.BaseField == nil || cfg.NewTransition == nil {
		return nil, errors.New("csm: BaseField and NewTransition are required")
	}
	if cfg.MaxFaults < 0 {
		return nil, fmt.Errorf("csm: negative MaxFaults %d", cfg.MaxFaults)
	}
	// Only misbehaving entries count against the budget: a map entry whose
	// value is Honest is a (redundant) statement of the default, not a
	// fault. Keys must name real nodes — nodes are built for 0..N-1 only,
	// so an out-of-range key would otherwise be silently ignored.
	// Validation walks the entries in sorted key order so that when
	// several entries are invalid, every run rejects the same one —
	// raw map iteration would make the returned error nondeterministic.
	for _, i := range ints.SortedMapKeys(cfg.Byzantine) {
		beh := cfg.Byzantine[i]
		if i < 0 || i >= cfg.N {
			return nil, fmt.Errorf("csm: Byzantine node %d out of range [0,%d)", i, cfg.N)
		}
		if beh == Recovering {
			return nil, fmt.Errorf("csm: node %d: Recovering is a transient repair state, not a configurable behavior", i)
		}
		if beh == Crashed && cfg.Delegated {
			return nil, fmt.Errorf("csm: node %d: crashed nodes are not supported in delegated mode", i)
		}
	}
	if err := budgetCheck(cfg.N, cfg.MaxFaults, cfg.Mode, cfg.Consensus, cfg.Byzantine); err != nil {
		return nil, err // budgetCheck errors wrap the csm-prefixed sentinels
	}
	if cfg.MaxTicksPerRound == 0 {
		cfg.MaxTicksPerRound = 200
	}
	if cfg.Delegated && (cfg.Mode != transport.Sync || !cfg.NoEquivocation) {
		return nil, errors.New("csm: delegated mode requires a synchronous broadcast network (Mode=Sync, NoEquivocation=true) — Section 6 assumption")
	}
	if cfg.Delegated && (len(cfg.Churn) > 0 || cfg.ChurnFn != nil) {
		return nil, errors.New("csm: churn is incompatible with delegated mode: the rotating worker re-reads the static fault pattern")
	}
	for _, ev := range cfg.Churn {
		if err := ev.validate(cfg.N); err != nil {
			return nil, fmt.Errorf("csm: churn schedule: %w", err)
		}
	}
	// The application cursor sweeps the schedule once; sort stably by
	// round on a copy so equal-round events keep their schedule order and
	// the caller's slice is left alone.
	if len(cfg.Churn) > 0 {
		cfg.Churn = append([]ChurnEvent(nil), cfg.Churn...)
		sort.SliceStable(cfg.Churn, func(i, j int) bool { return cfg.Churn[i].Round < cfg.Churn[j].Round })
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("csm: negative BatchSize %d", cfg.BatchSize)
	}
	if cfg.Pipeline < 0 {
		return nil, fmt.Errorf("csm: negative Pipeline depth %d", cfg.Pipeline)
	}
	if cfg.Pipeline > 0 && cfg.Delegated {
		return nil, errors.New("csm: pipelining requires the decentralized execution phase (Delegated=false): the delegated round interleaves client work with network phases")
	}
	counting := field.NewCounting(cfg.BaseField)
	ring := poly.NewRing[E](counting)
	tr, err := cfg.NewTransition(counting)
	if err != nil {
		return nil, fmt.Errorf("csm: building transition: %w", err)
	}
	oracleTr, err := cfg.NewTransition(cfg.BaseField)
	if err != nil {
		return nil, err
	}
	d := tr.Degree()
	// Capacity check (Table 2): the cluster must be able to decode with b
	// faults.
	var maxK int
	if cfg.Mode == transport.Sync {
		maxK = lcc.SyncMaxMachines(cfg.N, cfg.MaxFaults, d)
	} else {
		maxK = lcc.PSyncMaxMachines(cfg.N, cfg.MaxFaults, d)
	}
	if cfg.K > maxK {
		return nil, fmt.Errorf("csm: K=%d exceeds capacity %d for N=%d b=%d d=%d (%s)",
			cfg.K, maxK, cfg.N, cfg.MaxFaults, d, cfg.Mode)
	}
	code, err := lcc.New(ring, cfg.K, cfg.N)
	if err != nil {
		return nil, err
	}
	net, err := transport.New(transport.Config{
		N: cfg.N, Mode: cfg.Mode, GST: cfg.GST,
		NoEquivocation: cfg.NoEquivocation, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	initial := cfg.InitialStates
	if initial == nil {
		initial = make([][]E, cfg.K)
		for k := range initial {
			initial[k] = field.ZeroVec(cfg.BaseField, tr.StateLen())
		}
	}
	if len(initial) != cfg.K {
		return nil, fmt.Errorf("csm: %d initial states for K=%d machines", len(initial), cfg.K)
	}
	oracle := make([]*sm.Machine[E], cfg.K)
	for k := range oracle {
		m, err := sm.NewMachine(oracleTr, initial[k])
		if err != nil {
			return nil, err
		}
		oracle[k] = m
	}
	codedStates, err := code.EncodeVectorsParallel(initial, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	c := &Cluster[E]{
		cfg:      cfg,
		counting: counting,
		bulk:     ring.Bulk(),
		ring:     ring,
		code:     code,
		tr:       tr,
		oracleTr: oracleTr,
		oracle:   oracle,
		net:      net,
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0xc5a)),
	}
	c.nodes = make([]*node[E], cfg.N)
	for i := 0; i < cfg.N; i++ {
		ep, err := net.Endpoint(transport.NodeID(i))
		if err != nil {
			return nil, err
		}
		c.nodes[i] = &node[E]{
			cluster:    c,
			id:         i,
			ep:         ep,
			behavior:   cfg.Byzantine[i],
			codedState: codedStates[i],
		}
		if c.nodes[i].behavior == Crashed {
			// Born crashed: unreachable and without a share until repaired.
			if err := net.SetDown(transport.NodeID(i), true); err != nil {
				return nil, err
			}
			c.nodes[i].codedState = field.ZeroVec(cfg.BaseField, tr.StateLen())
		}
	}
	// Encoding the initial states is setup, not steady-state work.
	counting.Reset()
	if cfg.Durability != nil {
		// Recover (or cold-start) from the data directory. This runs last:
		// WAL replay drives the fully-built cluster through the ordinary
		// execution engine.
		if err := c.openDurability(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Code exposes the underlying Lagrange code (coefficients, points).
func (c *Cluster[E]) Code() *lcc.Code[E] { return c.code }

// Transition returns the measured transition function.
func (c *Cluster[E]) Transition() *sm.Transition[E] { return c.tr }

// Round returns the number of executed rounds.
func (c *Cluster[E]) Round() int { return c.round }

// Epoch returns the number of membership epochs entered so far: it
// advances whenever a churn boundary applies at least one event, so all
// rounds between two increments ran under one static fault pattern.
func (c *Cluster[E]) Epoch() int { return c.epoch }

// Behavior reports node i's current behavior (churn moves it over time).
func (c *Cluster[E]) Behavior(i int) (Behavior, error) {
	if i < 0 || i >= len(c.nodes) {
		return Honest, fmt.Errorf("csm: node %d out of range", i)
	}
	return c.nodes[i].behavior, nil
}

// OpCounts returns the accumulated field-operation counts across all nodes.
func (c *Cluster[E]) OpCounts() field.OpCounts { return c.counting.Counts() }

// OracleStates returns the ground-truth states of all K machines.
func (c *Cluster[E]) OracleStates() [][]E {
	out := make([][]E, len(c.oracle))
	for k, m := range c.oracle {
		out[k] = m.State()
	}
	return out
}

// NodeCodedState returns node i's current coded state (copy).
func (c *Cluster[E]) NodeCodedState(i int) ([]E, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("csm: node %d out of range", i)
	}
	return append([]E(nil), c.nodes[i].codedState...), nil
}

// RoundResult reports one executed round.
type RoundResult[E comparable] struct {
	// Outputs[k] is the client-accepted output of machine k (nil when the
	// client could not gather b+1 matching replies).
	Outputs [][]E
	// Correct reports whether every accepted output matches the uncoded
	// oracle execution.
	Correct bool
	// FaultyDetected is the union of node indices the honest decoders
	// identified as having submitted corrupted results.
	FaultyDetected []int
	// Skipped is true when consensus decided a garbage batch and the
	// execution phase was skipped (commands stay pending).
	Skipped bool
	// Ticks is the number of lock-step network rounds consumed.
	Ticks int
}

// batchMsg is the consensus payload: the batch's command vectors, one per
// machine per batch step, flattened step-major (step j, machine k at
// index j*K+k; a single-round batch is exactly one vector per machine).
type batchMsg struct {
	Round int
	Cmds  [][]uint64
}

// Execution-phase result broadcasts use a fixed binary layout instead of
// gob: every node receives N-1 of them per round, and gob's reflective
// decoder dominated the steady-state allocation profile. Layout (all
// little-endian uint64): round, element count, then the canonical field
// representation of each element.
//
// The codec is package-level because it IS the wire format: the simulated
// cluster and the multi-process remote engine (remote.go) encode and
// decode result broadcasts with these exact functions, which is what
// makes a TCP run's traffic round-trip through the same bytes as the
// in-memory oracle's.
const resultHdrLen = 16

// encodeResult serializes a round's result vector.
func encodeResult[E comparable](f field.Field[E], round int, result []E) []byte {
	buf := make([]byte, resultHdrLen+8*len(result))
	binary.LittleEndian.PutUint64(buf[0:], uint64(round))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(result)))
	for i, e := range result {
		binary.LittleEndian.PutUint64(buf[resultHdrLen+8*i:], f.Uint64(e))
	}
	return buf
}

// decodeResult parses a result broadcast, converting the wire values
// straight into field elements. ok is false for malformed payloads (which
// collect ignores, like any other garbage message).
func decodeResult[E comparable](f field.Field[E], data []byte) (round int, result []E, ok bool) {
	if len(data) < resultHdrLen {
		return 0, nil, false
	}
	count := binary.LittleEndian.Uint64(data[8:])
	body := len(data) - resultHdrLen
	// Compare counts, not count*8: a huge attacker-chosen count must not
	// overflow past the length check into make().
	if body%8 != 0 || count != uint64(body/8) {
		return 0, nil, false
	}
	result = make([]E, count)
	for i := range result {
		result[i] = f.FromUint64(binary.LittleEndian.Uint64(data[resultHdrLen+8*i:]))
	}
	return int(binary.LittleEndian.Uint64(data)), result, true
}

// encodeResultPayload serializes a round's result vector (counting-field
// conversions excluded: the codec works on canonical uint64s).
func (c *Cluster[E]) encodeResultPayload(round int, result []E) []byte {
	return encodeResult(c.cfg.BaseField, round, result)
}

// decodeResultPayload parses a result broadcast.
func (c *Cluster[E]) decodeResultPayload(data []byte) (round int, result []E, ok bool) {
	return decodeResult(c.cfg.BaseField, data)
}

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("csm: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodePayload(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// toWire converts a field vector to its canonical uint64 representation.
func (c *Cluster[E]) toWire(vec []E) []uint64 {
	out := make([]uint64, len(vec))
	for i, e := range vec {
		out[i] = c.cfg.BaseField.Uint64(e)
	}
	return out
}

// fromWire converts uint64 wire values back into field elements.
func (c *Cluster[E]) fromWire(vals []uint64) []E {
	out := make([]E, len(vals))
	for i, v := range vals {
		out[i] = c.cfg.BaseField.FromUint64(v)
	}
	return out
}

// ExecuteRound agrees on the given commands (one vector per machine) and
// runs the coded execution phase. It returns the per-round report.
func (c *Cluster[E]) ExecuteRound(cmds [][]E) (*RoundResult[E], error) {
	out, err := c.executeBatch([][][]E{cmds}, nil)
	if err != nil {
		var bre *batchRoundError
		if errors.As(err, &bre) {
			// A one-round batch: the offset adds nothing to the message.
			return nil, fmt.Errorf("csm: %w", bre.err)
		}
		return nil, err
	}
	return out[0], nil
}

// ExecuteBatch agrees on a batch of consecutive command rounds under a
// single consensus instance and executes them as micro-steps (batch[j][k]
// is machine k's command vector in the batch's j-th round). It returns one
// report per round; on a mid-batch error the reports of the rounds that
// fully completed are returned alongside a *BatchError whose Round is the
// batch-relative index of the failed round. The whole batch is validated
// before consensus: a malformed round fails the batch up front (the error
// names that round) and none of its rounds execute, just as a
// leader-corrupted batch is skipped as a whole (every report carries
// Skipped).
func (c *Cluster[E]) ExecuteBatch(batch [][][]E) ([]*RoundResult[E], error) {
	out, err := c.executeBatch(batch, nil)
	if err != nil {
		return out, newBatchError(err, out, 0, len(out))
	}
	return out, nil
}

// runConsensus agrees on the command batch. It returns the agreed
// commands (per batch step), or nil if the decided batch failed validation
// (Byzantine leader).
func (c *Cluster[E]) runConsensus(batch [][][]E) ([][][]E, int, error) {
	defer func() { c.instances++ }()
	if c.cfg.Consensus == Oracle {
		// Trusted sequencer: no proposal to serialize, no network phase.
		return batch, 0, nil
	}
	wire := make([][]uint64, 0, len(batch)*c.cfg.K)
	for _, cmds := range batch {
		for _, cmd := range cmds {
			wire = append(wire, c.toWire(cmd))
		}
	}
	valid, err := encodePayload(batchMsg{Round: c.round, Cmds: wire})
	if err != nil {
		return nil, 0, err
	}
	var decided []byte
	var ticks int
	switch c.cfg.Consensus {
	case DolevStrong:
		decided, ticks, err = c.runDolevStrong(valid)
	case PBFT:
		decided, ticks, err = c.runPBFT(valid)
	default:
		return nil, 0, fmt.Errorf("csm: unknown consensus kind %d", c.cfg.Consensus)
	}
	if err != nil {
		return nil, ticks, err
	}
	return c.validateBatch(decided, len(batch), ticks)
}

// leaderFor rotates leadership across consensus instances.
func (c *Cluster[E]) leaderFor(instance int) int { return instance % c.cfg.N }

func (c *Cluster[E]) runDolevStrong(valid []byte) ([]byte, int, error) {
	leader := c.leaderFor(c.instances)
	proposal := valid
	if b := c.cfg.Byzantine[leader]; b == BadLeader {
		proposal = []byte("garbage-batch")
	}
	nodes := make([]consensus.Node, c.cfg.N)
	waitFor := make([]int, 0, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		tr, err := consensus.NewNetTransport(c.net, transport.NodeID(i))
		if err != nil {
			return nil, 0, err
		}
		nd, err := dolevstrong.New(dolevstrong.Config{
			Transport: tr, Sender: transport.NodeID(leader),
			Slot: uint64(c.round), MaxFaults: c.cfg.MaxFaults,
			Value: proposal, Default: nil,
		})
		if err != nil {
			return nil, 0, err
		}
		nodes[i] = nd
		if c.cfg.Byzantine[i] == Honest {
			waitFor = append(waitFor, i)
		}
	}
	rounds := dolevstrong.Rounds(c.cfg.MaxFaults) + 1
	if err := consensus.Run(c.net, nodes, waitFor, rounds); err != nil {
		return nil, rounds, err
	}
	decided, _ := nodes[waitFor[0]].Decided()
	return decided, rounds, nil
}

func (c *Cluster[E]) runPBFT(valid []byte) ([]byte, int, error) {
	nodes := make([]consensus.Node, c.cfg.N)
	waitFor := make([]int, 0, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		proposal := valid
		if c.cfg.Byzantine[i] == BadLeader {
			proposal = []byte("garbage-batch")
		}
		tr, err := consensus.NewNetTransport(c.net, transport.NodeID(i))
		if err != nil {
			return nil, 0, err
		}
		nd, err := pbft.New(pbft.Config{
			Transport: tr, Slot: uint64(c.round),
			MaxFaults: c.cfg.MaxFaults, Value: proposal,
		})
		if err != nil {
			return nil, 0, err
		}
		nodes[i] = nd
		if c.cfg.Byzantine[i] == Honest {
			waitFor = append(waitFor, i)
		}
	}
	budget := c.cfg.MaxTicksPerRound
	if err := consensus.Run(c.net, nodes, waitFor, budget); err != nil {
		return nil, budget, err
	}
	decided, _ := nodes[waitFor[0]].Decided()
	return decided, budget, nil
}

// parseBatchMsg decodes a batch payload (the gob batchMsg both the
// consensus phase and the multi-process sequencer broadcast) into per-step
// command vectors. steps < 0 infers the step count from the command count
// (the remote follower does not know the sequencer's batch size up
// front); a non-negative steps additionally pins it. ok is false for
// anything malformed.
func parseBatchMsg[E comparable](f field.Field[E], data []byte, steps, k, cmdLen int) ([][][]E, bool) {
	var batch batchMsg
	if err := decodePayload(data, &batch); err != nil {
		return nil, false
	}
	if steps < 0 {
		if k < 1 || len(batch.Cmds) == 0 || len(batch.Cmds)%k != 0 {
			return nil, false
		}
		steps = len(batch.Cmds) / k
	}
	if len(batch.Cmds) != steps*k {
		return nil, false
	}
	out := make([][][]E, steps)
	for j := range out {
		out[j] = make([][]E, k)
		for i := 0; i < k; i++ {
			w := batch.Cmds[j*k+i]
			if len(w) != cmdLen {
				return nil, false
			}
			vec := make([]E, cmdLen)
			for x, v := range w {
				vec[x] = f.FromUint64(v)
			}
			out[j][i] = vec
		}
	}
	return out, true
}

// validateBatch checks a decided batch of the given step count; garbage
// yields a skipped batch (nil commands).
func (c *Cluster[E]) validateBatch(decided []byte, steps, ticks int) ([][][]E, int, error) {
	out, ok := parseBatchMsg(c.cfg.BaseField, decided, steps, c.cfg.K, c.tr.CmdLen())
	if !ok {
		return nil, ticks, nil // garbage decision: skip batch
	}
	return out, ticks, nil
}
