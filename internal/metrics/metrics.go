// Package metrics implements the experiment harness that regenerates the
// paper's quantitative content: Table 1 (security / storage efficiency /
// throughput of full replication, partial replication, the
// information-theoretic limits, and CSM), Table 2 (the fault-tolerance
// thresholds for consensus, decoding, and output delivery), and the
// Theorem 1 scaling series. Throughput is measured exactly as Section 2.2
// defines it: commands per field operation per node, with consensus
// excluded and operations counted by the field.Counting decorator.
package metrics

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/replication"
	"codedsm/internal/sm"
)

// Table1Row is one scheme's measured row of Table 1.
type Table1Row struct {
	Scheme     string
	N, K, B    int
	Security   int     // β: max tolerated faults
	Storage    float64 // γ: states supported per single-state storage
	OpsPerNode float64 // measured field ops per node per round
	Throughput float64 // λ = K / OpsPerNode
	Correct    bool
}

// Table1Config parameterizes the Table 1 experiment.
type Table1Config struct {
	// N is the network size; µ the Byzantine fraction (the paper uses 1/3
	// as the concrete example); D the transition degree; Rounds the number
	// of measured rounds.
	N      int
	Mu     float64
	D      int
	Rounds int
	Seed   uint64
	// Parallelism is the worker count every measured scheme executes with
	// (csm.Config.Parallelism / replication.Config.Parallelism). Measured
	// op counts are worker-count-independent; wall-clock is not.
	Parallelism int
	// BatchSize groups the measured rounds into consensus batches
	// (csm.Config.BatchSize). Batching lowers the CSM row's measured
	// ops/node/round — primed decodes amortize the error-locator solve
	// across the batch. The replication baselines run the same grouping
	// through their consensus-free ExecuteBatch purely for a uniform
	// harness; their rows are measurement-identical for any value.
	BatchSize int
	// Pipeline sets the CSM row's pipelined-engine depth
	// (csm.Config.Pipeline); 0 measures the sequential engine. Outputs and
	// op counts are pipeline-independent — only wall-clock changes.
	Pipeline int
}

// runBatched drives a workload through a scheme's ExecuteBatch in groups
// of batch rounds and reports whether every round stayed correct.
func runBatched[E comparable](workload [][][]E, batch int,
	exec func([][][]E) ([]*replication.RoundResult[E], error)) (bool, error) {
	if batch < 1 {
		batch = 1
	}
	correct := true
	for start := 0; start < len(workload); start += batch {
		end := min(start+batch, len(workload))
		results, err := exec(workload[start:end])
		if err != nil {
			return false, err
		}
		for _, res := range results {
			correct = correct && res.Correct
		}
	}
	return correct, nil
}

// bankLike returns a degree-d transition factory.
func bankLike(d int) csm.TransitionFactory[uint64] {
	return func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
		return sm.NewPolynomialRegister(f, d)
	}
}

func replFactory(d int) replication.TransitionFactory[uint64] {
	return func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
		return sm.NewPolynomialRegister(f, d)
	}
}

// Table1 measures all three schemes plus the information-theoretic limit
// row at one network size.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Rounds < 1 {
		cfg.Rounds = 3
	}
	gold := field.NewGoldilocks()
	b := int(cfg.Mu * float64(cfg.N))
	k := lcc.SyncMaxMachines(cfg.N, b, cfg.D)
	if k < 1 {
		return nil, fmt.Errorf("metrics: no capacity at N=%d mu=%.2f d=%d", cfg.N, cfg.Mu, cfg.D)
	}
	if cfg.N%k != 0 {
		// Partial replication needs q = N/K integral; shrink K to the
		// nearest divisor for its row (CSM keeps the full K).
		return nil, fmt.Errorf("metrics: N=%d not divisible by K=%d; pick N as a multiple (mu=1/3, d=1 gives K=N/3)", cfg.N, k)
	}
	rows := make([]Table1Row, 0, 4)
	workload := csm.RandomWorkload[uint64](gold, cfg.Rounds, k, 1, cfg.Seed)

	// Full replication.
	full, err := replication.OpenFull(gold, replFactory(cfg.D),
		replication.WithNodes(cfg.N), replication.WithMachines(k),
		replication.WithSeed(cfg.Seed), replication.WithParallelism(cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	correct, err := runBatched(workload, cfg.BatchSize, full.ExecuteBatch)
	if err != nil {
		return nil, err
	}
	rows = append(rows, makeRow("full-replication", cfg.N, k, b, full.Security(), 1,
		full.OpCounts(), cfg.Rounds, correct))

	// Partial replication.
	part, err := replication.OpenPartial(gold, replFactory(cfg.D),
		replication.WithNodes(cfg.N), replication.WithMachines(k),
		replication.WithSeed(cfg.Seed), replication.WithParallelism(cfg.Parallelism))
	if err != nil {
		return nil, err
	}
	correct, err = runBatched(workload, cfg.BatchSize, part.ExecuteBatch)
	if err != nil {
		return nil, err
	}
	rows = append(rows, makeRow("partial-replication", cfg.N, k, b, part.Security(),
		float64(k), part.OpCounts(), cfg.Rounds, correct))

	// Information-theoretic limit (analytic row, Section 3).
	rows = append(rows, Table1Row{
		Scheme: "info-theoretic-limit", N: cfg.N, K: k, B: b,
		Security: cfg.N / 2, Storage: float64(cfg.N),
		OpsPerNode: 0, Throughput: float64(cfg.N), Correct: true,
	})

	// CSM with b = µN Byzantine nodes actually injected.
	byz := make(map[int]csm.Behavior, b)
	for i := 0; i < b; i++ {
		byz[(i*7+1)%cfg.N] = csm.WrongResult
	}
	for len(byz) < b { // collision fill
		byz[len(byz)*11%cfg.N] = csm.WrongResult
	}
	cluster, err := csm.Open(gold, bankLike(cfg.D),
		csm.WithNodes(cfg.N), csm.WithMachines(k), csm.WithFaults(b),
		csm.WithByzantine(byz), csm.WithSeed(cfg.Seed),
		csm.WithParallelism(cfg.Parallelism),
		csm.WithBatching(cfg.BatchSize), csm.WithPipeline(cfg.Pipeline))
	if err != nil {
		return nil, err
	}
	correct, err = runCorrect(cluster, workload, cfg.Pipeline > 0, "table1 csm")
	if err != nil {
		return nil, err
	}
	rows = append(rows, makeRow("csm", cfg.N, k, b, b, float64(k),
		cluster.OpCounts(), cfg.Rounds, correct))
	return rows, nil
}

// runCorrect folds per-round correctness over a workload without dropping
// any completed round's report on a mid-workload failure: rounds are
// consumed through the streaming Rounds iterator (or Run when the cluster
// is configured for the pipelined engine, whose overlap a streaming
// consumer would serialize), and the returned error names the failed round
// and the number of rounds that did complete — recovered with errors.As,
// not string inspection.
func runCorrect(cluster *csm.Cluster[uint64], workload [][][]uint64, pipelined bool, what string) (bool, error) {
	wrap := func(correct bool, completed int, err error) (bool, error) {
		var batchErr *csm.BatchError[uint64]
		if errors.As(err, &batchErr) {
			return correct, fmt.Errorf("metrics: %s: %d/%d rounds completed: %w",
				what, completed, len(workload), err)
		}
		return correct, fmt.Errorf("metrics: %s: %w", what, err)
	}
	correct := true
	if pipelined {
		results, err := cluster.Run(workload)
		for _, res := range results {
			correct = correct && res.Correct
		}
		if err != nil {
			return wrap(correct, len(results), err)
		}
		return correct, nil
	}
	completed := 0
	for res, err := range cluster.Rounds(workload) {
		if err != nil {
			return wrap(correct, completed, err)
		}
		correct = correct && res.Correct
		completed++
	}
	return correct, nil
}

func makeRow(scheme string, n, k, b, security int, storage float64,
	ops field.OpCounts, rounds int, correct bool) Table1Row {
	perNode := float64(ops.Total()) / float64(n*rounds)
	row := Table1Row{
		Scheme: scheme, N: n, K: k, B: b,
		Security: security, Storage: storage,
		OpsPerNode: perNode, Correct: correct,
	}
	if perNode > 0 {
		row.Throughput = float64(k) / perNode
	}
	return row
}

// RenderTable1 renders rows as an aligned text table.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SCHEME\tN\tK\tb\tSECURITY β\tSTORAGE γ\tOPS/NODE/ROUND\tTHROUGHPUT λ\tCORRECT")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f\t%.4f\t%v\n",
			r.Scheme, r.N, r.K, r.B, r.Security, r.Storage, r.OpsPerNode, r.Throughput, r.Correct)
	}
	w.Flush()
	return sb.String()
}
