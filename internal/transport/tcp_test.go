package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// reservePorts grabs n distinct localhost listen addresses by briefly
// binding port 0. The listeners are closed before returning, so the
// addresses are free for the nodes to bind (a small reuse race CI has to
// live with — the alternative is a config file format that cannot name
// ports up front).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startTCPCluster brings up an n-node in-process TCP cluster.
func startTCPCluster(t *testing.T, n int, seed uint64) []Link {
	t.Helper()
	addrs := reservePorts(t, n)
	links := make([]Link, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tcp, err := NewTCP(TCPConfig{
				Self: NodeID(i), N: n, Seed: seed,
				Listen: addrs[i], Peers: addrs,
				DialTimeout: 10 * time.Second, StepTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			links[i] = tcp
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	})
	return links
}

// delivery is the observable content of one delivered message.
type delivery struct {
	Round   int
	From    NodeID
	Kind    string
	Payload string
}

// driveExchange runs the same small protocol over any Link
// implementation: every node broadcasts a round-stamped payload each
// round and sends a point-to-point message to its successor, for the
// given number of rounds. It returns each node's full delivery sequence.
func driveExchange(t *testing.T, links []Link, rounds int) [][]delivery {
	t.Helper()
	n := len(links)
	out := make([][]delivery, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, l := range links {
		wg.Add(1)
		go func(i int, l Link) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := l.Broadcast("bcast", fmt.Appendf(nil, "b/%d/%d", i, r)); err != nil {
					errs[i] = err
					return
				}
				succ := NodeID((i + 1) % n)
				if err := l.Send(succ, "p2p", fmt.Appendf(nil, "p/%d/%d", i, r)); err != nil {
					errs[i] = err
					return
				}
				msgs, err := l.Step()
				if err != nil {
					errs[i] = err
					return
				}
				for _, m := range msgs {
					out[i] = append(out[i], delivery{Round: m.Round, From: m.From, Kind: m.Kind, Payload: string(m.Payload)})
				}
			}
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return out
}

// TestTCPDeliveryMatchesSimulatedOracle is the transport-equivalence
// contract: the same protocol driven over real localhost sockets delivers
// exactly the messages, in exactly the order, that the deterministic
// in-memory oracle delivers.
func TestTCPDeliveryMatchesSimulatedOracle(t *testing.T) {
	const n, rounds, seed = 4, 3, 1234
	sim, err := New(Config{N: n, Mode: Sync, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	simLinks, err := NewLocalLinks(sim)
	if err != nil {
		t.Fatal(err)
	}
	want := driveExchange(t, simLinks, rounds)
	got := driveExchange(t, startTCPCluster(t, n, seed), rounds)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("node %d: TCP delivered %d messages, oracle %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("node %d delivery %d: TCP %+v, oracle %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestTCPSimulationOnlyKnobs pins the typed error: crash injection is an
// oracle-only knob and must fail loudly on the production transport
// rather than silently no-op.
func TestTCPSimulationOnlyKnobs(t *testing.T) {
	links := startTCPCluster(t, 2, 5)
	err := links[0].SetDown(1, true)
	if err == nil {
		t.Fatal("SetDown on the TCP transport succeeded; want ErrSimulationOnly")
	}
	if !errors.Is(err, ErrSimulationOnly) {
		t.Fatalf("SetDown error %v does not wrap ErrSimulationOnly", err)
	}
}

// TestTCPDialRetriesUntilPeerListens exercises the reconnect-with-backoff
// path: node 0 starts dialing before node 1's listener exists and must
// keep retrying until it comes up.
func TestTCPDialRetriesUntilPeerListens(t *testing.T) {
	addrs := reservePorts(t, 2)
	var links [2]Link
	var wg sync.WaitGroup
	var errs [2]error
	wg.Add(1)
	go func() {
		defer wg.Done()
		tcp, err := NewTCP(TCPConfig{
			Self: 0, N: 2, Seed: 9, Listen: addrs[0], Peers: addrs[:],
			DialTimeout: 10 * time.Second, RetryBackoff: 10 * time.Millisecond,
		})
		links[0], errs[0] = tcp, err
	}()
	time.Sleep(300 * time.Millisecond) // node 0 is now failing its dials
	wg.Add(1)
	go func() {
		defer wg.Done()
		tcp, err := NewTCP(TCPConfig{
			Self: 1, N: 2, Seed: 9, Listen: addrs[1], Peers: addrs[:],
			DialTimeout: 10 * time.Second, RetryBackoff: 10 * time.Millisecond,
		})
		links[1], errs[1] = tcp, err
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	defer links[0].Close()
	defer links[1].Close()
	// The late mesh must still carry a full round.
	if err := links[0].Broadcast("hello", []byte("after-backoff")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := links[0].Step()
		done <- err
	}()
	msgs, err := links[1].Step()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "after-backoff" {
		t.Fatalf("node 1 delivered %v, want the after-backoff broadcast", msgs)
	}
}

// TestTCPCloseUnblocksStep: closing a link fails a blocked barrier with
// ErrClosed instead of hanging until the step timeout.
func TestTCPCloseUnblocksStep(t *testing.T) {
	links := startTCPCluster(t, 2, 11)
	stepErr := make(chan error, 1)
	go func() {
		_, err := links[0].Step() // blocks: node 1 never steps
		stepErr <- err
	}()
	time.Sleep(100 * time.Millisecond)
	links[0].Close()
	select {
	case err := <-stepErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Step after Close returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Step still blocked 5s after Close")
	}
}

// TestTCPForgeryDropped: a frame carrying a bad signature is counted and
// dropped, exactly like the simulated network's Inject path.
func TestTCPForgeryDropped(t *testing.T) {
	links := startTCPCluster(t, 2, 21)
	tcp0 := links[0].(*TCP)
	// Hand-deliver a forged body to node 0's ingest path: claims to be
	// from node 1 but is signed with garbage.
	body, err := AppendMessage(nil, Message{From: 1, To: 0, Round: 0, Kind: "forged", Payload: []byte("x"), Sig: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	tcp0.ingestData(body)
	if got := tcp0.Stats().ForgeriesDropped; got != 1 {
		t.Fatalf("ForgeriesDropped = %d, want 1", got)
	}
	if n := len(tcp0.buffered[0]); n != 0 {
		t.Fatalf("forged message was buffered (%d pending)", n)
	}
}

// TestTCPBindRetriesRideOutReuseRace pins the bootstrap port-reuse fix:
// a probed-free port can be grabbed by another process between the probe
// and the daemon's bind. Without retries NewTCP fails fast; with
// BindRetries it keeps attempting while the squatter holds the port and
// binds as soon as it lets go.
func TestTCPBindRetriesRideOutReuseRace(t *testing.T) {
	addr := reservePorts(t, 1)[0]
	squatter, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()

	if _, err := NewTCP(TCPConfig{
		Self: 0, N: 1, Seed: 1, Listen: addr, Peers: []string{addr},
	}); err == nil {
		t.Fatal("expected an immediate bind failure with BindRetries unset")
	}

	released := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		squatter.Close()
		close(released)
	}()
	tcp, err := NewTCP(TCPConfig{
		Self: 0, N: 1, Seed: 1, Listen: addr, Peers: []string{addr},
		BindRetries: 100, BindBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("bind did not ride out the reuse race: %v", err)
	}
	<-released
	tcp.Close()
}
