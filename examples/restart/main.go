// Restart: the crash-restart harness for durable coded state. Where
// examples/processes proves a healthy multi-process cluster faithful to
// the in-memory simulation, this one proves a *crashing* one is too:
//
//  1. run the workload on the in-memory simulated cluster and digest its
//     outputs (the oracle);
//  2. bootstrap a durable csmnode cluster (-data-dir: every node
//     write-ahead-logs decided batches and snapshots its coded share);
//  3. SIGKILL all N processes mid-workload — no warning, no flush — and
//     restart them from their data directories, several times;
//  4. one cycle arms CSMNODE_CRASH so a node dies halfway through a WAL
//     record write: recovery must detect the torn tail and truncate it;
//  5. the final incarnation runs to completion, and every node must
//     print the oracle's digest bit for bit, at exactly the workload's
//     round count.
//
// Any divergence, hang (everything runs under a deadline), or failed
// recovery exits non-zero — `make smoke-restart` and the CI durability
// job assert this end to end.
//
//	go build -o bin/csmnode ./cmd/csmnode
//	go run ./examples/restart -csmnode bin/csmnode
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"codedsm"
	"codedsm/internal/nodeapi"
	"codedsm/internal/procharness"
)

func main() {
	csmnode := flag.String("csmnode", "csmnode", "path to the csmnode binary")
	n := flag.Int("n", 4, "cluster size")
	k := flag.Int("k", 2, "number of state machines")
	degree := flag.Int("degree", 2, "polynomial-register degree")
	rounds := flag.Int("rounds", 48, "workload rounds")
	seed := flag.Uint64("seed", 4242, "workload and cluster seed")
	cycles := flag.Int("kill-cycles", 2, "whole-cluster SIGKILL cycles before the final run")
	killAfter := flag.Duration("kill-after", 200*time.Millisecond, "delay between first WAL progress and SIGKILL")
	timeout := flag.Duration("timeout", 4*time.Minute, "deadline for the whole scenario")
	flag.Parse()
	log.SetFlags(0)

	deadline := time.AfterFunc(*timeout, func() {
		log.Fatalf("FAIL: scenario exceeded %v", *timeout)
	})
	defer deadline.Stop()

	// 1. The oracle: same workload, in-memory simulated cluster.
	gold := codedsm.NewGoldilocks()
	workload := codedsm.RandomWorkload[uint64](gold, *rounds, *k, 1, *seed)
	oracle := oracleDigest(gold, workload, *n, *k, *degree, *seed)
	log.Printf("oracle:   digest=%s over %d rounds (in-memory cluster)", oracle, *rounds)

	// 2. A durable cluster: snapshot often so recovery exercises both the
	// snapshot-load and the WAL-suffix-replay paths.
	dir, err := os.MkdirTemp("", "csmnode-restart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	h := procharness.New(*csmnode, dir, *n)
	if err := h.Bootstrap(
		"-k", fmt.Sprint(*k), "-degree", fmt.Sprint(*degree), "-seed", fmt.Sprint(*seed),
		"-data-dir", filepath.Join(dir, "data"), "-snapshot-every", "4"); err != nil {
		log.Fatal(err)
	}
	node0Data := filepath.Join(dir, "data", "node0")

	// 3. Whole-cluster SIGKILL mid-workload, repeatedly. Each incarnation
	// resumes from its durable state, reconciles crash skew peer to peer,
	// and makes some progress before the next kill.
	for cycle := 1; cycle <= *cycles; cycle++ {
		if err := h.StartAll(*rounds, nil); err != nil {
			log.Fatal(err)
		}
		h.WaitWALProgress(node0Data, int64(64*cycle), 20*time.Second)
		time.Sleep(*killAfter)
		h.KillAll()
		log.Printf("cycle %d:  SIGKILLed all %d nodes mid-workload", cycle, *n)
	}

	// 4. A surgical crash inside a WAL record write: the last follower
	// dies with roughly half a record on disk, and the rest of the
	// cluster is killed while it waits at the barrier. The torn tail must
	// be truncated on the next recovery.
	torn := *n - 1
	if err := h.StartAll(*rounds, func(i int) []string {
		if i == torn {
			return []string{"CSMNODE_CRASH=wal-mid-record@7"}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	h.WaitExit(torn)
	h.KillAll()
	log.Printf("cycle %d:  node %d crashed mid-record (injected), rest killed at the barrier", *cycles+1, torn)

	// 5. The final incarnation runs to completion; every node must land
	// on the oracle's digest at exactly the workload's round count.
	if err := h.StartAll(*rounds, nil); err != nil {
		log.Fatal(err)
	}
	if err := h.AwaitAll(oracle, *rounds); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Printf("PASS: %d processes, %d crash-restart cycles, final digest bit-identical to the oracle", *n, *cycles+1)
}

// oracleDigest runs the workload on the simulated cluster and returns
// the canonical digest of its outputs.
func oracleDigest(gold codedsm.Goldilocks, workload [][][]uint64, n, k, degree int, seed uint64) string {
	cluster, err := codedsm.Open(gold,
		func(f codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewPolynomialRegister(f, degree)
		},
		codedsm.WithNodes(n),
		codedsm.WithMachines(k),
		codedsm.WithFaults(0),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	digest := nodeapi.NewDigest()
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("oracle round %d incorrect", r)
		}
		digest.AddRound(r, res.Outputs)
	}
	return digest.Sum()
}
