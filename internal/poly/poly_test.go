package poly

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
)

func newGoldRing() *Ring[uint64] {
	return NewRing[uint64](field.NewGoldilocks())
}

func newGF2mRing(t *testing.T, m uint) *Ring[uint64] {
	t.Helper()
	f, err := field.NewGF2m(m)
	if err != nil {
		t.Fatal(err)
	}
	return NewRing[uint64](f)
}

func randPoly(r *Ring[uint64], rng *rand.Rand, deg int) Poly[uint64] {
	if deg < 0 {
		return nil
	}
	p := make(Poly[uint64], deg+1)
	for i := range p {
		p[i] = r.f.Rand(rng)
	}
	for r.f.IsZero(p[deg]) {
		p[deg] = r.f.Rand(rng)
	}
	return p
}

func TestNormalizeAndDeg(t *testing.T) {
	r := newGoldRing()
	cases := []struct {
		in   Poly[uint64]
		deg  int
		zero bool
	}{
		{nil, -1, true},
		{Poly[uint64]{0}, -1, true},
		{Poly[uint64]{0, 0, 0}, -1, true},
		{Poly[uint64]{5}, 0, false},
		{Poly[uint64]{5, 0}, 0, false},
		{Poly[uint64]{0, 1, 0}, 1, false},
		{Poly[uint64]{1, 2, 3}, 2, false},
	}
	for _, tc := range cases {
		if got := r.Deg(tc.in); got != tc.deg {
			t.Errorf("Deg(%v) = %d, want %d", tc.in, got, tc.deg)
		}
		if got := r.IsZero(tc.in); got != tc.zero {
			t.Errorf("IsZero(%v) = %v, want %v", tc.in, got, tc.zero)
		}
	}
}

func TestEvalHorner(t *testing.T) {
	r := newGoldRing()
	// p(z) = 3 + 2z + z^3 at z=5: 3 + 10 + 125 = 138.
	p := Poly[uint64]{3, 2, 0, 1}
	if got := r.Eval(p, 5); got != 138 {
		t.Errorf("Eval = %d, want 138", got)
	}
	if got := r.Eval(nil, 7); got != 0 {
		t.Errorf("Eval(0 poly) = %d", got)
	}
}

func TestAddSub(t *testing.T) {
	r := newGoldRing()
	a := Poly[uint64]{1, 2, 3}
	b := Poly[uint64]{4, 5}
	sum := r.Add(a, b)
	if !r.Equal(sum, Poly[uint64]{5, 7, 3}) {
		t.Errorf("Add = %v", sum)
	}
	diff := r.Sub(sum, b)
	if !r.Equal(diff, a) {
		t.Errorf("(a+b)-b = %v, want %v", diff, a)
	}
	// Cancellation must normalize.
	if got := r.Sub(a, a); !r.IsZero(got) {
		t.Errorf("a - a = %v", got)
	}
	if got := r.Add(a, r.MulScalar(field.GoldilocksModulus-1, a)); !r.IsZero(got) {
		t.Errorf("a + (-1)a = %v", got)
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, ring := range []*Ring[uint64]{newGoldRing(), newGF2mRing(t, 16)} {
		for _, degs := range [][2]int{{0, 0}, {1, 1}, {3, 7}, {20, 50}, {63, 63}, {100, 129}, {200, 300}} {
			a := randPoly(ring, rng, degs[0])
			b := randPoly(ring, rng, degs[1])
			fast := ring.Mul(a, b)
			naive := ring.MulNaive(a, b)
			if !ring.Equal(fast, naive) {
				t.Fatalf("%s: Mul != MulNaive at degs %v", ring.f.Name(), degs)
			}
			if ring.Deg(fast) != degs[0]+degs[1] {
				t.Fatalf("product degree %d, want %d", ring.Deg(fast), degs[0]+degs[1])
			}
		}
	}
}

func TestMulZero(t *testing.T) {
	r := newGoldRing()
	a := Poly[uint64]{1, 2, 3}
	if got := r.Mul(a, nil); !r.IsZero(got) {
		t.Errorf("a * 0 = %v", got)
	}
	if got := r.MulNaive(nil, a); !r.IsZero(got) {
		t.Errorf("0 * a = %v", got)
	}
	if got := r.MulScalar(0, a); !r.IsZero(got) {
		t.Errorf("0 . a = %v", got)
	}
}

func TestNTTRingDetection(t *testing.T) {
	if !newGoldRing().HasNTT() {
		t.Error("Goldilocks ring should have NTT")
	}
	if newGF2mRing(t, 8).HasNTT() {
		t.Error("GF(2^8) ring should not have NTT")
	}
	// A counting wrapper over Goldilocks still exposes NTT.
	c := field.NewCounting[uint64](field.NewGoldilocks())
	if !NewRing[uint64](c).HasNTT() {
		t.Error("counting Goldilocks ring should have NTT")
	}
	// A counting wrapper over GF(2^m) must not.
	f2, err := field.NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	if NewRing[uint64](field.NewCounting[uint64](f2)).HasNTT() {
		t.Error("counting GF(2^8) ring should not have NTT")
	}
}

func TestDivMod(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, ring := range []*Ring[uint64]{newGoldRing(), newGF2mRing(t, 12)} {
		for i := 0; i < 50; i++ {
			a := randPoly(ring, rng, 5+int(rng.Uint64N(40)))
			b := randPoly(ring, rng, int(rng.Uint64N(10)))
			q, rem, err := ring.DivMod(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ring.Deg(rem) >= ring.Deg(b) {
				t.Fatalf("deg(rem)=%d >= deg(b)=%d", ring.Deg(rem), ring.Deg(b))
			}
			recon := ring.Add(ring.Mul(q, b), rem)
			if !ring.Equal(recon, a) {
				t.Fatalf("%s: q*b + rem != a", ring.f.Name())
			}
		}
	}
}

func TestDivModEdge(t *testing.T) {
	r := newGoldRing()
	if _, _, err := r.DivMod(Poly[uint64]{1, 2}, nil); !errors.Is(err, field.ErrDivisionByZero) {
		t.Error("DivMod by zero should fail")
	}
	// deg(a) < deg(b): q = 0, rem = a.
	q, rem, err := r.DivMod(Poly[uint64]{7}, Poly[uint64]{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsZero(q) || !r.Equal(rem, Poly[uint64]{7}) {
		t.Errorf("q=%v rem=%v", q, rem)
	}
}

func TestDerivative(t *testing.T) {
	r := newGoldRing()
	// d/dz (1 + 2z + 3z^2 + 4z^3) = 2 + 6z + 12z^2.
	got := r.Derivative(Poly[uint64]{1, 2, 3, 4})
	if !r.Equal(got, Poly[uint64]{2, 6, 12}) {
		t.Errorf("Derivative = %v", got)
	}
	if !r.IsZero(r.Derivative(Poly[uint64]{9})) {
		t.Error("constant derivative should be zero")
	}
	// Characteristic 2: d/dz z^2 = 2z = 0.
	r2 := newGF2mRing(t, 8)
	if !r2.IsZero(r2.Derivative(Poly[uint64]{0, 0, 1})) {
		t.Error("derivative of z^2 over GF(2^m) should vanish")
	}
	if !r2.Equal(r2.Derivative(Poly[uint64]{0, 0, 0, 1}), Poly[uint64]{0, 0, 1}) {
		t.Error("derivative of z^3 over GF(2^m) should be z^2")
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, ring := range []*Ring[uint64]{newGoldRing(), newGF2mRing(t, 10)} {
		for _, n := range []int{1, 2, 3, 8, 17, 33} {
			xs, err := ring.f.Elements(n)
			if err != nil {
				t.Fatal(err)
			}
			ys := field.RandVec(ring.f, rng, n)
			p, err := ring.Interpolate(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			if ring.Deg(p) >= n {
				t.Fatalf("interpolant degree %d >= %d", ring.Deg(p), n)
			}
			for i := range xs {
				if got := ring.Eval(p, xs[i]); !ring.f.Equal(got, ys[i]) {
					t.Fatalf("%s n=%d: p(x%d) = %v, want %v", ring.f.Name(), n, i, got, ys[i])
				}
			}
		}
	}
}

func TestInterpolateDuplicatePoints(t *testing.T) {
	r := newGoldRing()
	if _, err := r.Interpolate([]uint64{1, 1}, []uint64{2, 3}); err == nil {
		t.Error("duplicate points should fail")
	}
	if _, err := r.Interpolate([]uint64{1, 2}, []uint64{5}); !errors.Is(err, ErrDegreeMismatch) {
		t.Error("length mismatch should fail")
	}
	p, err := r.Interpolate(nil, nil)
	if err != nil || !r.IsZero(p) {
		t.Errorf("empty interpolation: %v, %v", p, err)
	}
}

func TestPartialEEA(t *testing.T) {
	r := newGoldRing()
	rng := rand.New(rand.NewPCG(9, 10))
	a := randPoly(r, rng, 20)
	b := randPoly(r, rng, 15)
	g, u, v, err := r.PartialEEA(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deg(g) >= 8 && !r.IsZero(b) {
		// Stop condition: the returned remainder has degree < stopDeg
		// unless the inputs were already smaller.
		t.Fatalf("PartialEEA returned degree %d >= 8", r.Deg(g))
	}
	lhs := r.Add(r.Mul(u, a), r.Mul(v, b))
	if !r.Equal(lhs, g) {
		t.Fatal("u*a + v*b != g")
	}
}

func TestFromRootsNaive(t *testing.T) {
	r := newGoldRing()
	p := r.FromRootsNaive([]uint64{1, 2, 3})
	for _, root := range []uint64{1, 2, 3} {
		if got := r.Eval(p, root); got != 0 {
			t.Errorf("p(%d) = %d, want 0", root, got)
		}
	}
	if r.Deg(p) != 3 {
		t.Errorf("degree = %d", r.Deg(p))
	}
	if got := r.FromRootsNaive(nil); !r.Equal(got, Poly[uint64]{1}) {
		t.Errorf("empty product = %v", got)
	}
}

func TestCloneAndConstant(t *testing.T) {
	r := newGoldRing()
	p := Poly[uint64]{1, 2}
	c := r.Clone(p)
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases input")
	}
	if !r.IsZero(r.Constant(0)) {
		t.Error("Constant(0) should be zero poly")
	}
	if !r.Equal(r.Constant(5), Poly[uint64]{5}) {
		t.Error("Constant(5) wrong")
	}
}
