package replication

import (
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// Option configures a baseline cluster built with OpenFull or OpenPartial.
// Options validate eagerly, mirroring the csm package's Open: a
// constructor given an out-of-range value returns an option that fails the
// open call with a message naming the option.
type Option func(*settings) error

// settings accumulates the non-generic baseline knobs; the generic initial
// states travel as an opaque value, type-checked in the open calls.
type settings struct {
	n, k          int
	mode          transport.Mode
	byzantine     map[int]Behavior
	seed          uint64
	parallelism   int
	initialStates any // [][]E
}

func optionErr(format string, args ...any) Option {
	err := fmt.Errorf(format, args...)
	return func(*settings) error { return err }
}

// WithNodes sets the network size N. Required.
func WithNodes(n int) Option {
	if n < 1 {
		return optionErr("WithNodes(%d): need at least one node", n)
	}
	return func(s *settings) error { s.n = n; return nil }
}

// WithMachines sets the number of state machines K. Required.
func WithMachines(k int) Option {
	if k < 1 {
		return optionErr("WithMachines(%d): need at least one machine", k)
	}
	return func(s *settings) error { s.k = k; return nil }
}

// WithPartialSync switches the security-bound formulas to the partially
// synchronous ones ((N-1)/3-style instead of (N-1)/2).
func WithPartialSync() Option {
	return func(s *settings) error { s.mode = transport.PartialSync; return nil }
}

// WithByzantine assigns failure modes to nodes (merged over previous
// applications; the map is copied).
func WithByzantine(behaviors map[int]Behavior) Option {
	return func(s *settings) error {
		if s.byzantine == nil {
			s.byzantine = make(map[int]Behavior, len(behaviors))
		}
		for i, b := range behaviors {
			s.byzantine[i] = b
		}
		return nil
	}
}

// WithSeed seeds the adversary's lies.
func WithSeed(seed uint64) Option {
	return func(s *settings) error { s.seed = seed; return nil }
}

// WithParallelism sets the replica-step worker count (rounds are
// bit-identical for any value).
func WithParallelism(workers int) Option {
	return func(s *settings) error { s.parallelism = workers; return nil }
}

// WithInitialStates sets the K machines' initial state vectors. The
// element type must match the cluster's field element.
func WithInitialStates[E comparable](states [][]E) Option {
	return func(s *settings) error { s.initialStates = states; return nil }
}

// buildConfig assembles the generic Config from applied options.
func buildConfig[E comparable](f field.Field[E], tf TransitionFactory[E], opts []Option) (Config[E], error) {
	var s settings
	for _, opt := range opts {
		if opt == nil {
			return Config[E]{}, fmt.Errorf("replication: nil Option")
		}
		if err := opt(&s); err != nil {
			return Config[E]{}, fmt.Errorf("replication: %w", err)
		}
	}
	cfg := Config[E]{
		BaseField:     f,
		NewTransition: tf,
		K:             s.k,
		N:             s.n,
		Mode:          s.mode,
		Byzantine:     s.byzantine,
		Seed:          s.seed,
		Parallelism:   s.parallelism,
	}
	if s.initialStates != nil {
		states, ok := s.initialStates.([][]E)
		if !ok {
			return Config[E]{}, fmt.Errorf("replication: WithInitialStates element type %T does not match the cluster's field element %T",
				s.initialStates, *new(E))
		}
		cfg.InitialStates = states
	}
	return cfg, nil
}

// OpenFull builds the full-replication baseline from functional options —
// the options-based front door to NewFull.
func OpenFull[E comparable](f field.Field[E], newTransition TransitionFactory[E], opts ...Option) (*FullCluster[E], error) {
	cfg, err := buildConfig(f, newTransition, opts)
	if err != nil {
		return nil, err
	}
	return NewFull(cfg)
}

// OpenPartial builds the partial-replication baseline from functional
// options — the options-based front door to NewPartial.
func OpenPartial[E comparable](f field.Field[E], newTransition TransitionFactory[E], opts ...Option) (*PartialCluster[E], error) {
	cfg, err := buildConfig(f, newTransition, opts)
	if err != nil {
		return nil, err
	}
	return NewPartial(cfg)
}
