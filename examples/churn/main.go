// Churn: dynamic membership on a Coded State Machine (Section 7). Nodes
// crash, get repaired from the surviving coded shares, and rejoin; the
// Byzantine set moves between epochs. Both survive because Lagrange-coded
// state has no small committee to capture, and a replacement share is one
// evaluation of the encoding polynomial (lcc.RepairShare) — not a
// re-download of all K states.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"codedsm"
)

const (
	machines = 4  // K
	nodes    = 16 // N
	budget   = 3  // b
)

func mustCorrect(results []*codedsm.RoundResult[uint64], err error) {
	if err != nil {
		log.Fatal(err)
	}
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("round %d incorrect", r)
		}
	}
}

func main() {
	gold := codedsm.NewGoldilocks()

	// --- Crash, repair, rejoin ---
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(nodes), codedsm.WithMachines(machines), codedsm.WithFaults(budget),
		codedsm.WithByzantineNode(9, codedsm.WrongResult),
		codedsm.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	wl := codedsm.RandomWorkload[uint64](gold, 6, machines, 1, 7)

	mustCorrect(cluster.Run(wl[:2]))
	fmt.Println("rounds 0-1: healthy cluster, node 9 lying — corrected")

	if err := cluster.Crash(4); err != nil {
		log.Fatal(err)
	}
	mustCorrect(cluster.Run(wl[2:4]))
	fmt.Println("rounds 2-3: node 4 crashed (an erasure: 1 parity symbol, where an error costs 2) — still correct")

	if err := cluster.Rejoin(4); err != nil {
		log.Fatal(err)
	}
	mustCorrect(cluster.Run(wl[4:]))
	rs := cluster.RepairStats()
	ops := cluster.OpCounts().Total()
	roundOps := float64(ops-rs.Ops.Total()) / float64(nodes*6)
	fmt.Printf("rounds 4-5: node 4 repaired from surviving shares and rejoined — still correct\n")
	fmt.Printf("  repair cost: %d field ops ≈ %.1f node-rounds of work (no K-state re-download)\n\n",
		rs.Ops.Total(), float64(rs.Ops.Total())/roundOps)

	// --- The dynamic adversary: corruptions move every epoch ---
	adversary, err := codedsm.MovingAdversary(nodes, budget, 2, codedsm.WrongResult, 13)
	if err != nil {
		log.Fatal(err)
	}
	moving, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(nodes), codedsm.WithMachines(machines), codedsm.WithFaults(budget),
		codedsm.WithChurnFn(adversary),
		codedsm.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	mustCorrect(moving.Run(codedsm.RandomWorkload[uint64](gold, 8, machines, 1, 13)))
	fmt.Printf("dynamic adversary: b=%d corruptions re-targeted every 2 rounds across %d epochs — all rounds correct\n\n",
		budget, moving.Epoch())

	// --- Repair cost vs network size (Section 7, Remark 5) ---
	rows, err := codedsm.RepairCost([]int{12, 16, 24}, 0.15, 1, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repair cost series (one crashed node re-provisioned mid-run):")
	fmt.Print(codedsm.RenderRepair(rows))
}
