// Package nodeapi is the client-facing ingress protocol of a csmnode
// cluster: newline-delimited JSON over TCP between a client and the
// sequencer node. Clients submit per-machine commands; the sequencer cuts
// a workload round whenever every machine has a pending command (or on an
// explicit flush, padding idle machines), leads the round through the
// coded cluster, and streams every machine's decoded output back.
//
// The protocol is deliberately lock-step-friendly: a client that submits
// one command per machine and then reads K results observes exactly the
// deterministic-admission schedule of the in-process ingress
// (csm.Client with WithDeterministicAdmission), which is what lets the
// examples/processes harness compare a socket-driven cluster digest
// against the in-memory oracle bit for bit.
package nodeapi

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// Ops a client sends.
const (
	OpSubmit = "submit" // Machine + Cmd
	OpFlush  = "flush"  // cut a round now, padding machines with no pending command
	OpStatus = "status" // report round/machines/digest; echoed back as an OpStatus response
	OpClose  = "close"  // stop the cluster and finish the stream
)

// Ops the sequencer sends.
const (
	OpResult = "result" // Round + Machine + Output
	OpError  = "error"  // Msg (fatal; the connection closes after it)
	OpClosed = "closed" // Digest over the whole run; last frame of the stream
)

// MaxLine caps one ndjson frame. A legitimate frame is one command or
// one output vector — a few hundred bytes; a line that exceeds the cap
// is rejected with ErrLineTooLong instead of buffering without bound.
const MaxLine = 1 << 20

// ErrLineTooLong reports a frame longer than MaxLine bytes.
var ErrLineTooLong = errors.New("nodeapi: frame exceeds maximum line length")

// A RemoteError is a failure the sequencer reported over the wire (an
// OpError frame), as opposed to a local transport failure. Callers
// that need the failure class inspect Msg; errors.As distinguishes a
// server-side rejection from a broken connection.
type RemoteError struct {
	// Msg is the sequencer's message, verbatim from the frame.
	Msg string
}

func (e *RemoteError) Error() string { return "nodeapi: sequencer: " + e.Msg }

// ErrMalformed reports a frame that is not valid JSON. Wrapped errors
// carry the parser detail; match with errors.Is.
var ErrMalformed = errors.New("nodeapi: malformed frame")

// Request is one client frame.
type Request struct {
	Op      string   `json:"op"`
	Machine int      `json:"machine,omitempty"`
	Cmd     []uint64 `json:"cmd,omitempty"`
}

// Response is one sequencer frame.
type Response struct {
	Op      string   `json:"op"`
	Round   int      `json:"round,omitempty"`
	Machine int      `json:"machine,omitempty"`
	Output  []uint64 `json:"output,omitempty"`
	Msg     string   `json:"msg,omitempty"`
	Digest  string   `json:"digest,omitempty"`
}

// Conn wraps a net.Conn with the frame codec; it is used by both ends.
type Conn struct {
	c   net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

// NewConn wraps an established connection. The read buffer is sized to
// MaxLine so an over-long frame surfaces as ErrLineTooLong rather than
// unbounded buffering.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReaderSize(c, MaxLine), enc: json.NewEncoder(c)}
}

// readLine reads one newline-terminated frame, capped at MaxLine.
func (c *Conn) readLine() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		return nil, ErrLineTooLong
	}
	return line, err
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// WriteRequest sends one client frame.
func (c *Conn) WriteRequest(req Request) error { return c.enc.Encode(req) }

// WriteResponse sends one sequencer frame.
func (c *Conn) WriteResponse(resp Response) error { return c.enc.Encode(resp) }

// ReadRequest reads one client frame (sequencer side). A frame that is
// not valid JSON returns an error wrapping ErrMalformed; a frame longer
// than MaxLine returns ErrLineTooLong.
func (c *Conn) ReadRequest() (Request, error) {
	var req Request
	line, err := c.readLine()
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(line, &req); err != nil {
		return req, fmt.Errorf("%w: request: %v", ErrMalformed, err)
	}
	return req, nil
}

// ReadResponse reads one sequencer frame (client side), under the same
// ErrMalformed/ErrLineTooLong contract as ReadRequest.
func (c *Conn) ReadResponse() (Response, error) {
	var resp Response
	line, err := c.readLine()
	if err != nil {
		return resp, err
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return resp, fmt.Errorf("%w: response: %v", ErrMalformed, err)
	}
	return resp, nil
}

// Client is the submission front of a remote csmnode cluster.
type Client struct {
	conn *Conn
}

// Dial connects to a sequencer's client-ingress address, retrying with a
// fixed backoff until the deadline (the daemon may still be binding).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout) //csmlint:allow detsource(dial-retry deadline on a real socket; never feeds protocol state)
	for {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return &Client{conn: NewConn(c)}, nil
		}
		//csmlint:allow detsource(dial-retry deadline on a real socket; never feeds protocol state)
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("nodeapi: dialing %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Submit enqueues one command for one machine. Results stream back
// asynchronously; read them with ReadResult.
func (c *Client) Submit(machine int, cmd []uint64) error {
	return c.conn.WriteRequest(Request{Op: OpSubmit, Machine: machine, Cmd: cmd})
}

// Flush forces the sequencer to cut a round now, padding machines that
// have no pending command.
func (c *Client) Flush() error {
	return c.conn.WriteRequest(Request{Op: OpFlush})
}

// Status reports the sequencer's progress: the next round to be cut,
// the machine count, and the canonical digest over everything decoded
// so far. The reply is read synchronously, so call it only when no
// result frames are pending (before submitting, or after draining a
// submitted round's K results).
func (c *Client) Status() (round, machines int, digest string, err error) {
	if err := c.conn.WriteRequest(Request{Op: OpStatus}); err != nil {
		return 0, 0, "", err
	}
	resp, err := c.conn.ReadResponse()
	if err != nil {
		return 0, 0, "", err
	}
	switch resp.Op {
	case OpStatus:
		return resp.Round, resp.Machine, resp.Digest, nil
	case OpError:
		return 0, 0, "", &RemoteError{Msg: resp.Msg}
	default:
		return 0, 0, "", fmt.Errorf("%w: expected a status reply, got op %q (results pending?)", ErrMalformed, resp.Op)
	}
}

// ReadResult reads the next result frame. It returns a *RemoteError on
// OpError frames and other errors on transport failures.
func (c *Client) ReadResult() (Response, error) {
	resp, err := c.conn.ReadResponse()
	if err != nil {
		return resp, err
	}
	if resp.Op == OpError {
		return resp, &RemoteError{Msg: resp.Msg}
	}
	return resp, nil
}

// Close stops the cluster: it sends the close frame, drains the stream to
// the closed marker, and returns the sequencer's run digest.
func (c *Client) Close() (digest string, err error) {
	defer c.conn.Close()
	if err := c.conn.WriteRequest(Request{Op: OpClose}); err != nil {
		return "", err
	}
	for {
		resp, err := c.conn.ReadResponse()
		if err != nil {
			return "", err
		}
		switch resp.Op {
		case OpClosed:
			return resp.Digest, nil
		case OpError:
			return "", &RemoteError{Msg: resp.Msg}
		}
		// Late results between close and closed are drained silently.
	}
}
