package intermix

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"codedsm/internal/field"
)

// auditCase is a random INTERMIX instance.
type auditCase struct {
	a          [][]uint64
	x          []uint64
	strategy   Strategy
	corruptRow int
	corruptCol int
}

func quickAuditConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			n := 2 + int(r.Uint64N(20))
			k := 1 + int(r.Uint64N(40))
			a := make([][]uint64, n)
			for i := range a {
				a[i] = field.RandVec[uint64](gold, r, k)
			}
			strategies := []Strategy{HonestWorker, NaiveLiar, ConsistentLiar}
			args[0] = reflect.ValueOf(auditCase{
				a:          a,
				x:          field.RandVec[uint64](gold, r, k),
				strategy:   strategies[r.Uint64N(3)],
				corruptRow: int(r.Uint64N(uint64(n))),
				corruptCol: int(r.Uint64N(uint64(k))),
			})
		},
	}
}

// TestQuickAuditSoundnessAndCompleteness: for ANY instance, an honest
// auditor accepts an honest worker and produces a commoner-verifiable alert
// against any lying worker (soundness is information-theoretic: the liar
// strategies here span truthful-answering and fully consistent lying).
func TestQuickAuditSoundnessAndCompleteness(t *testing.T) {
	if err := quick.Check(func(c auditCase) bool {
		w, err := NewWorker[uint64](gold, c.a, c.x, c.strategy, c.corruptRow, c.corruptCol)
		if err != nil {
			return false
		}
		output := w.Output()
		alert, err := Audit[uint64](gold, c.a, c.x, output, w.Answer)
		if err != nil {
			return false
		}
		if c.strategy == HonestWorker {
			return alert == nil
		}
		if alert == nil {
			return false // fraud missed
		}
		if alert.Row != c.corruptRow {
			return false // wrong localization
		}
		return VerifyAlert[uint64](gold, c.a, c.x, alert)
	}, quickAuditConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickQueryBound: the number of interactive query pairs never exceeds
// ceil(log2 K) + 1 — the paper's "log K interactive queries".
func TestQuickQueryBound(t *testing.T) {
	if err := quick.Check(func(c auditCase) bool {
		if c.strategy == HonestWorker {
			return true
		}
		w, err := NewWorker[uint64](gold, c.a, c.x, c.strategy, c.corruptRow, c.corruptCol)
		if err != nil {
			return false
		}
		alert, err := Audit[uint64](gold, c.a, c.x, w.Output(), w.Answer)
		if err != nil || alert == nil {
			return false
		}
		bound := 1
		for v := len(c.x); v > 1; v = (v + 1) / 2 {
			bound++
		}
		return alert.Queries <= bound
	}, quickAuditConfig()); err != nil {
		t.Error(err)
	}
}
