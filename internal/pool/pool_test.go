package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(4, 100); got != 4 {
		t.Errorf("Clamp(4, 100) = %d", got)
	}
	if got := Clamp(8, 3); got != 3 {
		t.Errorf("Clamp(8, 3) = %d, want 3", got)
	}
	if got := Clamp(0, 100); got != DefaultWorkers() {
		t.Errorf("Clamp(0, 100) = %d, want DefaultWorkers=%d", got, DefaultWorkers())
	}
	if got := Clamp(-1, 100); got != DefaultWorkers() {
		t.Errorf("Clamp(-1, 100) = %d, want DefaultWorkers=%d", got, DefaultWorkers())
	}
	if got := Clamp(5, 0); got != 1 {
		t.Errorf("Clamp(5, 0) = %d, want 1", got)
	}
}

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 1000
			counts := make([]atomic.Int32, n)
			out := make([]int, n)
			err := Run(workers, n, func(i int) error {
				counts[i].Add(1)
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("index %d ran %d times", i, c)
				}
				if out[i] != i*i {
					t.Fatalf("slot %d corrupted: %d", i, out[i])
				}
			}
		})
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 8} {
		err := Run(workers, 100, func(i int) error {
			switch i {
			case 13:
				return errA
			case 77:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: want lowest-index error %v, got %v", workers, errA, err)
		}
	}
}

func TestRunSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Run(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if ran != 4 {
		t.Fatalf("sequential path ran %d calls after error, want 4", ran)
	}
}

func TestRunIndexedWorkerOwnership(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 200
		clamped := Clamp(workers, n)
		// Each worker index must stay within [0, clamped) and be usable as a
		// scratch slot: per-worker counters poked without synchronization
		// must add up to exactly n processed items.
		scratch := make([]int, clamped)
		seen := make([]int32, n)
		err := RunIndexed(workers, n, func(worker, i int) error {
			if worker < 0 || worker >= clamped {
				return fmt.Errorf("worker index %d out of range [0,%d)", worker, clamped)
			}
			scratch[worker]++
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		total := 0
		for _, c := range scratch {
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: per-worker scratch counted %d items, want %d", workers, total, n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, c)
			}
		}
	}
}
