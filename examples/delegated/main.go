// Delegated: Section 6.2 inside the live engine. The same cluster runs the
// same workload twice — once with every node decoding for itself
// (Section 5), once with a rotating worker doing all coding under INTERMIX
// committee verification (Section 6.2) — and prints the measured
// field-operation counts, the unit the paper defines throughput in.
//
//	go run ./examples/delegated
package main

import (
	"fmt"
	"log"

	"codedsm"
)

const (
	machines = 8
	nodes    = 24
	faults   = 8 // µ = 1/3
)

func main() {
	gold := codedsm.NewGoldilocks()
	liars := map[int]codedsm.Behavior{
		1: codedsm.WrongResult, 5: codedsm.WrongResult, 9: codedsm.WrongResult,
		13: codedsm.WrongResult, 17: codedsm.SilentNode,
	}
	workload := codedsm.RandomWorkload[uint64](gold, 3, machines, 1, 4)

	run := func(delegated bool) uint64 {
		opts := []codedsm.Option{
			codedsm.WithNodes(nodes), codedsm.WithMachines(machines), codedsm.WithFaults(faults),
			codedsm.WithByzantine(liars), codedsm.WithSeed(4),
		}
		if delegated {
			opts = append(opts, codedsm.WithDelegated())
		}
		cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64], opts...)
		if err != nil {
			log.Fatal(err)
		}
		for r, cmds := range workload {
			res, err := cluster.ExecuteRound(cmds)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Correct {
				log.Fatalf("round %d incorrect (delegated=%v)", r, delegated)
			}
		}
		return cluster.OpCounts().Total()
	}

	fmt.Printf("%d machines on %d nodes, %d Byzantine, 3 rounds\n\n", machines, nodes, len(liars))
	decentralized := run(false)
	delegated := run(true)
	fmt.Printf("decentralized (every node decodes):   %9d field ops total\n", decentralized)
	fmt.Printf("delegated (worker + audit committee): %9d field ops total\n", delegated)
	fmt.Printf("\ndelegation cut total coding work %.1fx — the Section 6.2 throughput\n",
		float64(decentralized)/float64(delegated))
	fmt.Println("mechanism, with every worker step verified and liars still corrected.")
}
