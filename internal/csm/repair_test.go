package csm

import (
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

func TestRunQueueLiveness(t *testing.T) {
	// Node 0 (round-0 leader) proposes garbage; the batch must be retried
	// and executed under round 1's honest leader. Every batch in the queue
	// eventually executes — the paper's Liveness requirement.
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{0: BadLeader}
	c := newCluster(t, cfg)
	batches := RandomWorkload[uint64](gold, 3, 2, 1, 5)
	results, err := c.RunQueue(batches, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("executed %d of 3 batches", len(results))
	}
	for i, res := range results {
		if res.Skipped || !res.Correct {
			t.Fatalf("batch %d: skipped=%v correct=%v", i, res.Skipped, res.Correct)
		}
	}
	// The oracle advanced exactly 3 times despite the retries.
	if c.oracle[0].Round() != 3 {
		t.Fatalf("oracle at round %d", c.oracle[0].Round())
	}
}

func TestRunQueueExhaustsAttempts(t *testing.T) {
	// With every node a BadLeader... not configurable (budget); instead use
	// maxAttempts=1 and a Byzantine round-0 leader: the first batch cannot
	// execute within one attempt.
	cfg := baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{0: BadLeader}
	c := newCluster(t, cfg)
	batches := RandomWorkload[uint64](gold, 1, 2, 1, 5)
	if _, err := c.RunQueue(batches, 1); err == nil {
		t.Fatal("single attempt under a bad leader should fail")
	}
}

func TestRepairNode(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{5: WrongResult}
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	// Advance a few rounds so states are non-trivial.
	runRounds(t, c, 3)
	// Wipe node 7's coded state, then repair it from its peers (with the
	// Byzantine node contributing garbage to the repair).
	want, err := c.NodeCodedState(7)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[7].codedState = []uint64{0xdead}
	if err := c.RepairNode(7); err != nil {
		t.Fatal(err)
	}
	got, err := c.NodeCodedState(7)
	if err != nil {
		t.Fatal(err)
	}
	if !field.VecEqual[uint64](gold, got, want) {
		t.Fatalf("repaired state %v, want %v", got, want)
	}
	// The repaired node participates correctly in subsequent rounds.
	for _, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatal("round incorrect after repair")
		}
	}
	if err := c.RepairNode(-1); err == nil {
		t.Error("out-of-range repair should fail")
	}
}

func TestRepairNodeVectorState(t *testing.T) {
	// Repair with a multi-coordinate state (affine machine, stateLen=2).
	affine := func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
		return sm.NewAffine(f,
			[][]uint64{{1, 1}, {0, 1}},
			[][]uint64{{1}, {2}})
	}
	c := newCluster(t, Config[uint64]{
		BaseField:     gold,
		NewTransition: affine,
		K:             2, N: 10, MaxFaults: 2,
		Mode:      transport.Sync,
		Consensus: Oracle,
		InitialStates: [][]uint64{
			{5, 6},
			{7, 8},
		},
		Seed: 4,
	})
	runRounds(t, c, 2)
	want, err := c.NodeCodedState(3)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[3].codedState = []uint64{1, 2}
	if err := c.RepairNode(3); err != nil {
		t.Fatal(err)
	}
	got, _ := c.NodeCodedState(3)
	if !field.VecEqual[uint64](gold, got, want) {
		t.Fatalf("vector repair %v, want %v", got, want)
	}
}

// TestDynamicAdversary is the Section 7 claim: a dynamic adversary that
// moves its b corruptions to different nodes every round (after observing
// everything) still cannot break CSM — there is no small group to capture.
func TestDynamicAdversary(t *testing.T) {
	const k, n, b = 3, 15, 3
	cfg := baseConfig(k, n, b)
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 6, k, 1, 31)
	for r, cmds := range wl {
		// The adversary re-targets: release old corruptions, seize new ones.
		for i := 0; i < n; i++ {
			if err := c.Corrupt(i, Honest); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < b; j++ {
			if err := c.Corrupt((r*4+j*5)%n, WrongResult); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d: dynamic adversary broke CSM", r)
		}
	}
	// Budget enforcement: a b+1-th simultaneous corruption is refused.
	for i := 0; i < n; i++ {
		_ = c.Corrupt(i, Honest)
	}
	for j := 0; j < b; j++ {
		if err := c.Corrupt(j, WrongResult); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Corrupt(b, WrongResult); err == nil {
		t.Fatal("exceeding the fault budget must be refused")
	}
	if err := c.Corrupt(-1, Honest); err == nil {
		t.Fatal("out-of-range corrupt should fail")
	}
}
