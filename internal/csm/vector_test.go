package csm

import (
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/sm"
)

// TestVectorCommandMachine runs the engine with a machine whose state and
// command are vectors (inner-product machine, d=2): multi-component coded
// execution end to end.
func TestVectorCommandMachine(t *testing.T) {
	const dim = 3
	factory := func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
		return sm.NewInnerProduct(f, dim)
	}
	cfg := Config[uint64]{
		BaseField:     gold,
		NewTransition: factory,
		K:             2, N: 14, MaxFaults: 3,
		Consensus: Oracle,
		Byzantine: map[int]Behavior{2: WrongResult, 10: Silent},
		InitialStates: [][]uint64{
			{1, 2, 3},
			{4, 5, 6},
		},
		Seed: 8,
	}
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 4, 2, dim, 9)
	for r, cmds := range wl {
		res, err := c.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d incorrect with vector machine", r)
		}
	}
}

// TestHonestNodesAgree: after a round with equivocating Byzantine nodes on
// a point-to-point network, every honest node holds the identical coded
// state — the paper's consistency claim under equivocation (Section 5.2).
func TestHonestNodesAgree(t *testing.T) {
	cfg := baseConfig(3, 15, 3)
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{1: Equivocate, 7: Equivocate, 13: WrongResult}
	c := newCluster(t, cfg)
	runRounds(t, c, 3)
	enc, err := c.code.EncodeVectors(c.OracleStates())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.nodes {
		if n.behavior != Honest {
			continue
		}
		if !field.VecEqual[uint64](gold, n.codedState, enc[i]) {
			t.Fatalf("honest node %d diverged from the canonical coded state", i)
		}
	}
}

// TestDelegatedVectorMachine: delegated mode with multi-component results.
func TestDelegatedVectorMachine(t *testing.T) {
	factory := func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
		return sm.NewInnerProduct(f, 2)
	}
	cfg := Config[uint64]{
		BaseField:     gold,
		NewTransition: factory,
		K:             2, N: 14, MaxFaults: 3,
		Consensus:      Oracle,
		NoEquivocation: true,
		Delegated:      true,
		Byzantine:      map[int]Behavior{6: WrongResult},
		Seed:           12,
	}
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 2, 2, 2, 13)
	for r, cmds := range wl {
		res, err := c.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("delegated vector round %d incorrect", r)
		}
	}
}
