// Remote engine: one node of a CSM cluster running as its own OS
// process, driven over a transport.Link (real TCP sockets in production,
// the in-memory lock-step adapter in tests). Where Cluster simulates all
// N nodes in one process — and is therefore the deterministic oracle —
// a NodeProcess runs exactly one node's side of the round protocol:
//
//   - in Oracle mode node 0 is the sequencer (the paper's
//     trusted-sequencer consensus, Section 2.2): it broadcasts each
//     agreed command batch in the same gob batchMsg the simulated
//     consensus phase serializes;
//   - every node Lagrange-encodes its coded command row, applies the
//     transition to its coded state, and broadcasts the result in the
//     same fixed binary codec (encodeResult) the simulated path uses;
//   - every node collects all N results, Reed-Solomon-decodes them,
//     recovers every machine's output and next state, and re-encodes its
//     coded state.
//
// Because both the batch and result codecs are shared with the simulated
// cluster, a multi-process run's outputs are bit-identical to Cluster.Run
// on the same workload — TestRemoteMatchesCluster pins this over local
// links and over real TCP.
//
// Scope: how a batch is decided is pluggable (RemoteConfig.Consensus).
// Oracle keeps the trusted-sequencer split above; DolevStrong and PBFT
// replace it with the real BFT protocols running over the same link —
// see remote_consensus.go and RunWorkload — with PBFT's view change
// providing real leader failover for the multi-process engine.
// Byzantine behaviour *injection* and churn remain simulation-only
// knobs (see transport.ErrSimulationOnly).
package csm

import (
	"errors"
	"fmt"
	"slices"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/nodeapi"
	"codedsm/internal/poly"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// Message kinds of the remote protocol. Result broadcasts reuse the
// simulated engine's resultKind; recoverKind and deltaKind carry the
// crash-recovery handshake (see Recover).
const (
	batchKind   = "csm-batch"
	stopKind    = "csm-stop"
	recoverKind = "csm-recover"
	deltaKind   = "csm-delta"
)

// SequencerID is the node that sequences batches in a multi-process
// cluster (the trusted-sequencer role of the paper's throughput model).
const SequencerID = 0

// ErrStopped is returned by sequencer operations after Stop, and wrapped
// into FollowBatch's done return.
var ErrStopped = errors.New("csm: remote cluster stopped")

// RemoteConfig configures one node of a multi-process CSM cluster. The
// same values (including Seed, via the transport) must be used by every
// process of the cluster.
type RemoteConfig[E comparable] struct {
	// BaseField is the arithmetic field (must match across processes).
	BaseField field.Field[E]
	// NewTransition builds the state transition function.
	NewTransition TransitionFactory[E]
	// K is the number of state machines.
	K int
	// MaxFaults is the fault budget b the code is sized for. The Oracle
	// execution phase requires all N results (honest deployment), but
	// the capacity check K <= SyncMaxMachines(N, b, d) still applies so a
	// config that could never decode under b faults is rejected up front.
	// Consensus modes additionally validate the protocol's own quorum
	// shape (PBFT: N >= 3b+1) and tolerate dead peers in the execution
	// phase by subset-decoding once enough results arrived.
	MaxFaults int
	// Consensus selects how each batch is decided. Oracle (the default)
	// is the trusted sequencer: node 0 leads, everyone else follows.
	// DolevStrong and PBFT run the real BFT protocols over the link —
	// every node drives the symmetric RunWorkload instead of the
	// Lead/Follow split (see remote_consensus.go).
	Consensus ConsensusKind
	// InitialStates holds K state vectors; nil means all-zero states.
	InitialStates [][]E
	// MaxTicksPerRound bounds the lock-step ticks a node waits for the
	// round's results before giving up (default 200).
	MaxTicksPerRound int
	// Durability persists this node's coded share, run digest, and
	// decided batches under a data directory (see durability.go). A
	// restarted process resumes from its last durable round; Recover
	// then reconciles any round skew with the peers.
	Durability *DurabilityConfig
}

// NodeProcess is one node of a multi-process CSM cluster.
type NodeProcess[E comparable] struct {
	cfg  RemoteConfig[E]
	link transport.Link
	ring *poly.Ring[E]
	bulk field.Bulk[E]
	code *lcc.Code[E]
	tr   *sm.Transition[E]

	self       int
	n          int
	round      int // workload round (not the link's lock-step round)
	codedState []E
	stopped    bool
	// startView is the PBFT view the previous instance decided in; new
	// instances start there so a dead leader costs one view change per
	// run, not one per batch.
	startView int

	// digest is the canonical run digest over all decoded outputs; with
	// durability it is persisted per round and survives restarts.
	digest *nodeapi.Digest
	// initialCoded keeps the round-0 share for recovery rollbacks.
	initialCoded []E
	// store is the durable state (nil without RemoteConfig.Durability).
	store *nodeStore

	// steady-state scratch, mirroring the simulated node's
	cmdScratch   []E
	stateScratch []E
}

// NewNodeProcess builds this process's node over the given link and
// distributes (the node's share of) the coded initial states.
func NewNodeProcess[E comparable](cfg RemoteConfig[E], link transport.Link) (*NodeProcess[E], error) {
	if cfg.BaseField == nil || cfg.NewTransition == nil {
		return nil, errors.New("csm: BaseField and NewTransition are required")
	}
	if link == nil {
		return nil, errors.New("csm: remote node needs a transport link")
	}
	n := link.N()
	if cfg.MaxFaults < 0 {
		return nil, fmt.Errorf("csm: negative MaxFaults %d", cfg.MaxFaults)
	}
	if err := ValidateRemoteConsensus(cfg.Consensus, n, cfg.MaxFaults); err != nil {
		return nil, err
	}
	if cfg.MaxTicksPerRound == 0 {
		cfg.MaxTicksPerRound = 200
	}
	tr, err := cfg.NewTransition(cfg.BaseField)
	if err != nil {
		return nil, fmt.Errorf("csm: building transition: %w", err)
	}
	d := tr.Degree()
	if maxK := lcc.SyncMaxMachines(n, cfg.MaxFaults, d); cfg.K > maxK {
		return nil, fmt.Errorf("csm: K=%d exceeds capacity %d for N=%d b=%d d=%d (synchronous)",
			cfg.K, maxK, n, cfg.MaxFaults, d)
	}
	ring := poly.NewRing[E](cfg.BaseField)
	code, err := lcc.New(ring, cfg.K, n)
	if err != nil {
		return nil, err
	}
	initial := cfg.InitialStates
	if initial == nil {
		initial = make([][]E, cfg.K)
		for k := range initial {
			initial[k] = field.ZeroVec(cfg.BaseField, tr.StateLen())
		}
	}
	if len(initial) != cfg.K {
		return nil, fmt.Errorf("csm: %d initial states for K=%d machines", len(initial), cfg.K)
	}
	for k, st := range initial {
		if len(st) != tr.StateLen() {
			return nil, fmt.Errorf("csm: initial state %d has length %d, want %d", k, len(st), tr.StateLen())
		}
	}
	p := &NodeProcess[E]{
		cfg:  cfg,
		link: link,
		ring: ring,
		bulk: ring.Bulk(),
		code: code,
		tr:   tr,
		self: int(link.Self()),
		n:    n,
	}
	p.codedState = lagrangeRowInto(p.bulk, cfg.BaseField.Zero(), code.Coeffs()[p.self], initial, nil, tr.StateLen())
	p.initialCoded = append([]E(nil), p.codedState...)
	p.digest = nodeapi.NewDigest()
	if cfg.Durability != nil {
		store, err := openNodeStore(*cfg.Durability, cfg.Consensus)
		if err != nil {
			return nil, err
		}
		p.store = store
		if store.round > 0 {
			// Resume from the last durable round: snapshot + WAL suffix.
			if len(store.share) != tr.StateLen() {
				return nil, fmt.Errorf("csm: durable share in %s has length %d, want %d (foreign data directory?)",
					cfg.Durability.Dir, len(store.share), tr.StateLen())
			}
			p.round = store.round
			p.codedState = vecFromWire(cfg.BaseField, store.share)
			if err := p.digest.UnmarshalBinary(store.digest); err != nil {
				return nil, fmt.Errorf("csm: restoring durable digest: %w", err)
			}
		}
	}
	return p, nil
}

// Self returns this process's node id.
func (p *NodeProcess[E]) Self() int { return p.self }

// IsSequencer reports whether this node sequences batches.
func (p *NodeProcess[E]) IsSequencer() bool { return p.self == SequencerID }

// Round returns the number of executed workload rounds.
func (p *NodeProcess[E]) Round() int { return p.round }

// Machines returns K, the number of coded state machines.
func (p *NodeProcess[E]) Machines() int { return p.cfg.K }

// Transition returns the node's transition function.
func (p *NodeProcess[E]) Transition() *sm.Transition[E] { return p.tr }

// DigestSum returns the node's canonical run digest over every decoded
// output so far — across restarts when durability is enabled.
func (p *NodeProcess[E]) DigestSum() string { return p.digest.Sum() }

// Durable reports whether the node persists state.
func (p *NodeProcess[E]) Durable() bool { return p.store != nil }

// Close releases the node's durable store (no-op without durability).
// It does not stop the cluster; see Stop.
func (p *NodeProcess[E]) Close() error {
	if p.store == nil {
		return nil
	}
	err := p.store.close()
	p.store = nil
	return err
}

// PadCommand returns the identity command the sequencer submits for
// machines with nothing pending (the all-zero vector, matching the
// ingress scheduler's default pad).
func (p *NodeProcess[E]) PadCommand() []E {
	return field.ZeroVec(p.cfg.BaseField, p.tr.CmdLen())
}

// LeadBatch sequences and executes one batch: the sequencer broadcasts
// the agreed commands (batch[j][k] is machine k's command in the batch's
// j-th round) and every node — this one included — runs the coded
// execution micro-steps. It returns the decoded outputs, one [K][]E
// slice per round. Only the sequencer may call it.
func (p *NodeProcess[E]) LeadBatch(batch [][][]E) ([][][]E, error) {
	if p.cfg.Consensus != Oracle {
		return nil, fmt.Errorf("%w: %v clusters drive RunWorkload, not LeadBatch", ErrConsensusConfig, p.cfg.Consensus)
	}
	if !p.IsSequencer() {
		return nil, fmt.Errorf("csm: node %d is not the sequencer (node %d leads)", p.self, SequencerID)
	}
	if p.stopped {
		return nil, ErrStopped
	}
	payload, err := p.encodeBatchProposal(batch)
	if err != nil {
		return nil, err
	}
	if p.store != nil {
		// Write-ahead: the decided batch hits disk before any peer sees it.
		if err := p.store.appendBatch(p.round, payload); err != nil {
			return nil, err
		}
	}
	if err := p.link.Broadcast(batchKind, payload); err != nil {
		return nil, err
	}
	// One lock-step tick carries the batch to the followers (they are
	// blocked in the Step of their FollowBatch).
	if _, err := p.link.Step(); err != nil {
		return nil, err
	}
	return p.executeSteps(batch)
}

// FollowBatch waits for the sequencer's next batch and executes it. done
// is true (with nil outputs) once the sequencer has broadcast the stop
// marker. Followers call it in a loop; Follow does exactly that.
func (p *NodeProcess[E]) FollowBatch() (outputs [][][]E, done bool, err error) {
	if p.cfg.Consensus != Oracle {
		return nil, false, fmt.Errorf("%w: %v clusters drive RunWorkload, not FollowBatch", ErrConsensusConfig, p.cfg.Consensus)
	}
	if p.IsSequencer() {
		return nil, false, errors.New("csm: the sequencer leads batches, it does not follow")
	}
	for {
		msgs, err := p.link.Step()
		if err != nil {
			return nil, false, err
		}
		for _, m := range msgs {
			if m.From != transport.NodeID(SequencerID) {
				continue
			}
			switch m.Kind {
			case stopKind:
				return nil, true, nil
			case batchKind:
				batch, ok := parseBatchMsg(p.cfg.BaseField, m.Payload, -1, p.cfg.K, p.tr.CmdLen())
				if !ok {
					return nil, false, fmt.Errorf("csm: node %d: malformed batch from sequencer", p.self)
				}
				var bm batchMsg
				if err := decodePayload(m.Payload, &bm); err == nil && bm.Round != p.round {
					return nil, false, fmt.Errorf("csm: node %d at round %d received batch for round %d (desynchronized)",
						p.self, p.round, bm.Round)
				}
				if p.store != nil {
					if err := p.store.appendBatch(p.round, m.Payload); err != nil {
						return nil, false, err
					}
				}
				out, err := p.executeSteps(batch)
				return out, false, err
			}
		}
		// A tick with no batch: the sequencer is idle (a serving cluster
		// between submissions). Keep stepping.
	}
}

// encodeBatchProposal validates the batch shape and serializes it as
// the canonical batchMsg payload for the node's current round — the
// exact bytes the simulated consensus phase proposes, which is what
// keeps run digests identical across engines and consensus modes.
func (p *NodeProcess[E]) encodeBatchProposal(batch [][][]E) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("csm: empty batch")
	}
	for j, cmds := range batch {
		if len(cmds) != p.cfg.K {
			return nil, fmt.Errorf("csm: batch round %d: %d command vectors for K=%d machines", j, len(cmds), p.cfg.K)
		}
		for k, cmd := range cmds {
			if len(cmd) != p.tr.CmdLen() {
				return nil, fmt.Errorf("csm: batch round %d: command %d has length %d, want %d", j, k, len(cmd), p.tr.CmdLen())
			}
		}
	}
	wire := make([][]uint64, 0, len(batch)*p.cfg.K)
	for _, cmds := range batch {
		for _, cmd := range cmds {
			w := make([]uint64, len(cmd))
			for i, e := range cmd {
				w[i] = p.cfg.BaseField.Uint64(e)
			}
			wire = append(wire, w)
		}
	}
	return encodePayload(batchMsg{Round: p.round, Cmds: wire})
}

// executeSteps runs the coded execution micro-steps of one agreed batch.
// All N nodes run it in lock step; on return every node has decoded all
// rounds and re-encoded its coded state.
func (p *NodeProcess[E]) executeSteps(batch [][][]E) ([][][]E, error) {
	f := p.cfg.BaseField
	steps := len(batch)
	cmdLen := p.tr.CmdLen()
	// One amortized row encode covers the whole batch, as on the
	// simulated path: commands are state-independent.
	flat := make([][]E, p.cfg.K)
	for k := 0; k < p.cfg.K; k++ {
		row := make([]E, 0, steps*cmdLen)
		for j := 0; j < steps; j++ {
			row = append(row, batch[j][k]...)
		}
		flat[k] = row
	}
	p.cmdScratch = lagrangeRowInto(p.bulk, f.Zero(), p.code.Coeffs()[p.self], flat, p.cmdScratch, steps*cmdLen)
	// minShares is the exact erasure-decode threshold deg(f∘u)+1 =
	// (K-1)d+1: consensus modes fall back to it when a peer is dead
	// (e.g. a killed PBFT leader); Oracle mode always waits for all N.
	minShares := (p.cfg.K-1)*p.tr.Degree() + 1
	out := make([][][]E, 0, steps)
	for j := 0; j < steps; j++ {
		cmd := p.cmdScratch[j*cmdLen : (j+1)*cmdLen]
		result, err := p.tr.ApplyResult(p.codedState, cmd)
		if err != nil {
			return out, err
		}
		if err := p.link.Broadcast(resultKind, encodeResult(f, p.round, result)); err != nil {
			return out, err
		}
		received := map[int][]E{p.self: result}
		for ticks := 0; len(received) < p.n; ticks++ {
			if p.cfg.Consensus != Oracle && ticks >= quorumGraceTicks && len(received) >= minShares {
				// Stragglers got their grace; the subset decode below
				// recovers every output exactly from what arrived.
				break
			}
			if ticks >= p.cfg.MaxTicksPerRound {
				missing := make([]int, 0, p.n)
				for i := 0; i < p.n; i++ {
					if received[i] == nil {
						missing = append(missing, i)
					}
				}
				return out, fmt.Errorf("csm: node %d round %d: %w — no result from nodes %v after %d ticks",
					p.self, p.round, ErrRoundStuck, missing, ticks)
			}
			msgs, err := p.link.Step()
			if err != nil {
				return out, err
			}
			for _, m := range msgs {
				if m.Kind != resultKind {
					continue
				}
				round, res, ok := decodeResult(f, m.Payload)
				if !ok || round != p.round || len(res) != p.tr.ResultLen() {
					continue
				}
				received[int(m.From)] = res
			}
		}
		indices := make([]int, 0, p.n)
		//csmlint:allow detmap(keys are collected then sorted two lines down)
		for idx := range received {
			indices = append(indices, idx)
		}
		slices.Sort(indices)
		results := make([][]E, len(indices))
		for i, idx := range indices {
			results[i] = received[idx]
		}
		dec, err := p.code.DecodeOutputsSubset(indices, results, p.tr.Degree())
		if err != nil {
			return out, fmt.Errorf("csm: node %d decode: %w", p.self, err)
		}
		if len(dec.FaultyNodes) > 0 {
			// Honest deployment: a corrupted result means a peer is broken
			// or hostile; surface it rather than silently correcting.
			return out, fmt.Errorf("csm: node %d round %d: decode flagged corrupted results from nodes %v",
				p.self, p.round, dec.FaultyNodes)
		}
		outputs := make([][]E, p.cfg.K)
		nextStates := make([][]E, p.cfg.K)
		for k := 0; k < p.cfg.K; k++ {
			next, o, err := p.tr.SplitResult(dec.Outputs[k])
			if err != nil {
				return out, err
			}
			nextStates[k] = next
			outputs[k] = o
		}
		newCoded := lagrangeRowInto(p.bulk, f.Zero(), p.code.Coeffs()[p.self], nextStates, p.stateScratch, p.tr.StateLen())
		p.stateScratch = p.codedState
		p.codedState = newCoded
		p.round++
		out = append(out, outputs)
		wireOuts := make([][]uint64, p.cfg.K)
		for k := range outputs {
			wireOuts[k] = vecToWire(f, outputs[k])
		}
		p.digest.AddRound(p.round-1, wireOuts)
		if p.store != nil {
			dstate, err := p.digest.MarshalBinary()
			if err != nil {
				return out, err
			}
			if err := p.store.appendApplied(p.round-1, vecToWire(f, p.codedState), dstate, wireOuts); err != nil {
				return out, err
			}
		}
	}
	if p.store != nil {
		dstate, err := p.digest.MarshalBinary()
		if err != nil {
			return out, err
		}
		if err := p.store.maybeSnapshot(p.round, vecToWire(f, p.codedState), dstate, false); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Stop broadcasts the stop marker and runs the final lock-step tick that
// delivers it, after which every follower's FollowBatch returns done.
// Only the sequencer may call it; it is idempotent.
func (p *NodeProcess[E]) Stop() error {
	if !p.IsSequencer() {
		return errors.New("csm: only the sequencer stops the cluster")
	}
	if p.stopped {
		return nil
	}
	p.stopped = true
	if err := p.link.Broadcast(stopKind, nil); err != nil {
		return err
	}
	_, err := p.link.Step()
	return err
}

// Lead runs a whole workload as the sequencer — rounds grouped into
// batches of batchSize (<= 1 means one round per batch) — then stops the
// cluster. It returns the decoded outputs, one [K][]E per round,
// bit-identical to Cluster.Run's RoundResult.Outputs on the same seeded
// workload.
func (p *NodeProcess[E]) Lead(rounds [][][]E, batchSize int) ([][][]E, error) {
	if batchSize < 1 {
		batchSize = 1
	}
	out := make([][][]E, 0, len(rounds))
	for start := 0; start < len(rounds); start += batchSize {
		end := min(start+batchSize, len(rounds))
		res, err := p.LeadBatch(rounds[start:end])
		out = append(out, res...)
		if err != nil {
			return out, err
		}
	}
	if err := p.Stop(); err != nil {
		return out, err
	}
	return out, nil
}

// Follow executes sequencer batches until the stop marker arrives. It
// returns the decoded outputs of every executed round.
func (p *NodeProcess[E]) Follow() ([][][]E, error) {
	var out [][][]E
	for {
		res, done, err := p.FollowBatch()
		out = append(out, res...)
		if err != nil {
			return out, err
		}
		if done {
			return out, nil
		}
	}
}
