// Package pbft implements a single-slot Practical Byzantine Fault Tolerance
// instance — the consensus protocol the paper uses for partially
// synchronous networks (Section 3, citing Castro & Liskov). It requires
// N >= 3f+1 nodes and tolerates f Byzantine faults through three phases
// (pre-prepare, prepare, commit) with 2f+1 quorums, plus view changes with
// exponentially growing timeouts that guarantee liveness after GST.
//
// Participants are written against consensus.Transport, so one instance
// runs identically over the simulated lock-step network and over a
// transport.Link into a real TCP cluster. All messages use the fixed
// binary encodings of the consensus package (no gob on the wire), which
// keeps view-change blob signatures verifiable across transports.
package pbft

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"codedsm/internal/consensus"
	"codedsm/internal/ints"
	"codedsm/internal/transport"
)

// Message kinds on the wire.
const (
	kindPrePrepare = "pbft-preprepare"
	kindPrepare    = "pbft-prepare"
	kindCommit     = "pbft-commit"
	kindViewChange = "pbft-viewchange"
	kindNewView    = "pbft-newview"
)

// Config configures one PBFT participant.
type Config struct {
	// Transport carries this node's broadcasts and blob signatures. Both
	// consensus.NewNetTransport (simulated network) and a transport.Link
	// (one real process per node) satisfy it.
	Transport consensus.Transport
	// Slot disambiguates concurrent instances.
	Slot uint64
	// MaxFaults is f; the cluster must have N >= 3f+1 nodes.
	MaxFaults int
	// Value is this node's own proposal, used when it becomes leader.
	Value []byte
	// BaseTimeout is the initial view's timeout in rounds (doubles per
	// view). Defaults to 6.
	BaseTimeout int
	// StartView is the view the instance begins in (leader = StartView mod
	// N). A sequence of instances can hand the view a previous instance
	// decided in to the next one, so a crashed low-view leader is paid for
	// with one view change instead of one per instance. Defaults to 0.
	StartView int
}

// Node is one PBFT participant; it implements consensus.Node.
type Node struct {
	cfg  Config
	tr   consensus.Transport
	id   transport.NodeID
	n, f int

	view       int
	timer      int
	targetView int // nonzero: view we are trying to change into

	prePrepared map[int][]byte                    // view -> value proposed by leader
	prepares    map[int]map[[32]byte]map[int]bool // view -> digest -> senders
	commits     map[int]map[[32]byte]map[int]bool
	vcs         map[int]map[int]consensus.ViewChangeMsg // newView -> sender -> VC
	sentPrepare map[int]bool
	sentCommit  map[int]bool

	preparedView  int
	preparedValue []byte

	decided []byte
	done    bool
}

var _ consensus.Node = (*Node)(nil)

// New creates a PBFT participant.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("pbft: nil transport")
	}
	if cfg.MaxFaults < 0 {
		return nil, fmt.Errorf("pbft: negative MaxFaults")
	}
	if cfg.Transport.N() < 3*cfg.MaxFaults+1 {
		return nil, fmt.Errorf("pbft: need N >= 3f+1, got N=%d f=%d", cfg.Transport.N(), cfg.MaxFaults)
	}
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 6
	}
	if cfg.BaseTimeout < 1 {
		return nil, fmt.Errorf("pbft: BaseTimeout must be positive")
	}
	if cfg.StartView < 0 {
		return nil, fmt.Errorf("pbft: negative StartView")
	}
	return &Node{
		cfg:          cfg,
		tr:           cfg.Transport,
		id:           cfg.Transport.Self(),
		n:            cfg.Transport.N(),
		f:            cfg.MaxFaults,
		view:         cfg.StartView,
		prePrepared:  make(map[int][]byte),
		prepares:     make(map[int]map[[32]byte]map[int]bool),
		commits:      make(map[int]map[[32]byte]map[int]bool),
		vcs:          make(map[int]map[int]consensus.ViewChangeMsg),
		sentPrepare:  make(map[int]bool),
		sentCommit:   make(map[int]bool),
		preparedView: -1,
	}, nil
}

// Leader returns the designated leader of a view.
func Leader(view, n int) transport.NodeID { return transport.NodeID(view % n) }

// quorum is the 2f+1 threshold.
func (nd *Node) quorum() int { return 2*nd.f + 1 }

func digestOf(value []byte) [32]byte { return sha256.Sum256(value) }

// vcSignContent is the blob covered by a view-change signature.
func vcSignContent(slot uint64, newView, preparedView int, preparedValue []byte) []byte {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], slot)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(newView)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(int64(preparedView)))
	buf.Write(hdr[:])
	buf.Write(preparedValue)
	return buf.Bytes()
}

// Tick implements consensus.Node.
func (nd *Node) Tick(inbox []transport.Message) error {
	if nd.done {
		// Keep answering nothing; peers already have our votes.
		return nil
	}
	if nd.timer == 0 && nd.view == nd.cfg.StartView {
		// Entering the initial view: the leader proposes.
		if err := nd.maybePropose(); err != nil {
			return err
		}
	}
	for _, m := range inbox {
		if err := nd.handle(m); err != nil {
			return err
		}
	}
	if nd.done {
		return nil
	}
	nd.timer++
	current := nd.view
	if nd.targetView > current {
		current = nd.targetView
	}
	if nd.timer >= nd.timeoutFor(current) {
		// Either the current view's leader stalled, or the view change we
		// joined did not complete (its leader is faulty too): escalate.
		if err := nd.sendViewChange(current + 1); err != nil {
			return err
		}
	}
	return nil
}

// timeoutFor doubles per view past the start view, giving liveness after
// GST.
func (nd *Node) timeoutFor(view int) int {
	t := nd.cfg.BaseTimeout
	for i := nd.cfg.StartView; i < view && t < 1<<20; i++ {
		t *= 2
	}
	return t
}

// maybePropose sends a pre-prepare if this node leads the current view.
func (nd *Node) maybePropose() error {
	if Leader(nd.view, nd.n) != nd.id {
		return nil
	}
	value := nd.cfg.Value
	if nd.preparedValue != nil {
		value = nd.preparedValue
	}
	pp := consensus.PrePrepareMsg{Slot: nd.cfg.Slot, View: nd.view, Value: value}
	if err := nd.tr.Broadcast(kindPrePrepare, consensus.AppendPrePrepareMsg(nil, pp)); err != nil {
		return err
	}
	// Leader treats its own proposal as pre-prepared and prepares it.
	return nd.onPrePrepare(pp, nd.id)
}

func (nd *Node) handle(m transport.Message) error {
	switch m.Kind {
	case kindPrePrepare:
		pp, err := consensus.DecodePrePrepareMsg(m.Payload)
		if err != nil || pp.Slot != nd.cfg.Slot {
			return nil
		}
		return nd.onPrePrepare(pp, m.From)
	case kindPrepare, kindCommit:
		v, err := consensus.DecodeVoteMsg(m.Payload)
		if err != nil || v.Slot != nd.cfg.Slot {
			return nil
		}
		return nd.onVote(m.Kind, v, int(m.From))
	case kindViewChange:
		vc, err := consensus.DecodeViewChangeMsg(m.Payload)
		if err != nil || vc.Slot != nd.cfg.Slot {
			return nil
		}
		return nd.onViewChange(vc, m.From)
	case kindNewView:
		nv, err := consensus.DecodeNewViewMsg(m.Payload)
		if err != nil || nv.Slot != nd.cfg.Slot {
			return nil
		}
		return nd.onNewView(nv, m.From)
	}
	return nil
}

func (nd *Node) onPrePrepare(pp consensus.PrePrepareMsg, from transport.NodeID) error {
	if pp.View < nd.view || Leader(pp.View, nd.n) != from {
		return nil
	}
	if prev, ok := nd.prePrepared[pp.View]; ok {
		// Only the first value per view counts; a conflicting one is the
		// leader equivocating and is ignored (the view will time out).
		if !bytes.Equal(prev, pp.Value) {
			return nil
		}
	} else {
		nd.prePrepared[pp.View] = append([]byte(nil), pp.Value...)
	}
	if pp.View > nd.view {
		// We lag; the pre-prepare is buffered, the prepare goes out once
		// the view change completes.
		return nil
	}
	if nd.sentPrepare[pp.View] || nd.targetView > nd.view {
		return nil
	}
	nd.sentPrepare[pp.View] = true
	vote := consensus.VoteMsg{Slot: nd.cfg.Slot, View: pp.View, Digest: digestOf(pp.Value)}
	if err := nd.tr.Broadcast(kindPrepare, consensus.AppendVoteMsg(nil, vote)); err != nil {
		return err
	}
	// Count our own prepare.
	return nd.onVote(kindPrepare, vote, int(nd.id))
}

func (nd *Node) onVote(kind string, v consensus.VoteMsg, from int) error {
	table := nd.prepares
	if kind == kindCommit {
		table = nd.commits
	}
	byDigest, ok := table[v.View]
	if !ok {
		byDigest = make(map[[32]byte]map[int]bool)
		table[v.View] = byDigest
	}
	senders, ok := byDigest[v.Digest]
	if !ok {
		senders = make(map[int]bool)
		byDigest[v.Digest] = senders
	}
	senders[from] = true
	if len(senders) < nd.quorum() {
		return nil
	}
	value, have := nd.prePrepared[v.View]
	if !have || digestOf(value) != v.Digest {
		return nil // quorum on a value we have not seen yet
	}
	if kind == kindPrepare {
		if nd.sentCommit[v.View] || v.View != nd.view || nd.targetView > nd.view {
			return nil
		}
		// Prepared: remember for view changes.
		if v.View > nd.preparedView {
			nd.preparedView = v.View
			nd.preparedValue = append([]byte(nil), value...)
		}
		nd.sentCommit[v.View] = true
		vote := consensus.VoteMsg{Slot: nd.cfg.Slot, View: v.View, Digest: v.Digest}
		if err := nd.tr.Broadcast(kindCommit, consensus.AppendVoteMsg(nil, vote)); err != nil {
			return err
		}
		return nd.onVote(kindCommit, v, int(nd.id))
	}
	// Commit quorum: decide.
	nd.decided = append([]byte(nil), value...)
	nd.done = true
	return nil
}

func (nd *Node) sendViewChange(newView int) error {
	if newView <= nd.view || newView <= nd.targetView {
		return nil
	}
	nd.targetView = newView
	nd.timer = 0 // give the new view's leader a full timeout to assemble it
	vc := consensus.ViewChangeMsg{
		Slot:          nd.cfg.Slot,
		NewView:       newView,
		PreparedView:  nd.preparedView,
		PreparedValue: nd.preparedValue,
		Sender:        uint64(nd.id),
	}
	vc.Sig = nd.tr.SignBlob("pbft-vc", vcSignContent(vc.Slot, vc.NewView, vc.PreparedView, vc.PreparedValue))
	if err := nd.tr.Broadcast(kindViewChange, consensus.AppendViewChangeMsg(nil, vc)); err != nil {
		return err
	}
	return nd.onViewChange(vc, nd.id)
}

// validVC verifies a view-change message's blob signature.
func (nd *Node) validVC(vc consensus.ViewChangeMsg) bool {
	return nd.tr.VerifyBlob(transport.NodeID(vc.Sender), "pbft-vc",
		vcSignContent(vc.Slot, vc.NewView, vc.PreparedView, vc.PreparedValue), vc.Sig)
}

func (nd *Node) onViewChange(vc consensus.ViewChangeMsg, from transport.NodeID) error {
	if vc.NewView <= nd.view || transport.NodeID(vc.Sender) != from || !nd.validVC(vc) {
		return nil
	}
	bySender, ok := nd.vcs[vc.NewView]
	if !ok {
		bySender = make(map[int]consensus.ViewChangeMsg)
		nd.vcs[vc.NewView] = bySender
	}
	bySender[int(vc.Sender)] = vc
	// Join the view change once f+1 nodes demand it (we cannot all be wrong).
	if len(bySender) >= nd.f+1 && vc.NewView > nd.targetView {
		if err := nd.sendViewChange(vc.NewView); err != nil {
			return err
		}
	}
	// New leader assembles the new view from 2f+1 view changes.
	if len(bySender) >= nd.quorum() && Leader(vc.NewView, nd.n) == nd.id {
		return nd.sendNewView(vc.NewView)
	}
	return nil
}

func (nd *Node) sendNewView(view int) error {
	// Assemble the proof in sorted sender order: the slice is encoded into
	// the new-view message, so its order is part of the wire bytes, and
	// the prepared-value fold below must not tie-break on map order.
	proof := make([]consensus.ViewChangeMsg, 0, len(nd.vcs[view]))
	for _, sender := range ints.SortedMapKeys(nd.vcs[view]) {
		proof = append(proof, nd.vcs[view][sender])
	}
	// Adopt the highest prepared value among the proof, else our own.
	value := nd.cfg.Value
	best := -1
	for _, vc := range proof {
		if vc.PreparedView > best && vc.PreparedValue != nil {
			best = vc.PreparedView
			value = vc.PreparedValue
		}
	}
	nv := consensus.NewViewMsg{Slot: nd.cfg.Slot, View: view, Value: value, Proof: proof}
	if err := nd.tr.Broadcast(kindNewView, consensus.AppendNewViewMsg(nil, nv)); err != nil {
		return err
	}
	return nd.onNewView(nv, nd.id)
}

func (nd *Node) onNewView(nv consensus.NewViewMsg, from transport.NodeID) error {
	if nv.View <= nd.view || Leader(nv.View, nd.n) != from {
		return nil
	}
	// Verify 2f+1 valid, distinct view-change signatures for this view.
	seen := make(map[uint64]bool)
	best := -1
	var bestValue []byte
	for _, vc := range nv.Proof {
		if vc.Slot != nd.cfg.Slot || vc.NewView != nv.View || seen[vc.Sender] || !nd.validVC(vc) {
			continue
		}
		seen[vc.Sender] = true
		if vc.PreparedView > best && vc.PreparedValue != nil {
			best = vc.PreparedView
			bestValue = vc.PreparedValue
		}
	}
	if len(seen) < nd.quorum() {
		return nil
	}
	// Safety: if some VC proves a prepared value, the leader must carry it.
	if bestValue != nil && digestOf(nv.Value) != digestOf(bestValue) {
		return nil
	}
	// Enter the new view.
	nd.view = nv.View
	if nd.targetView <= nv.View {
		nd.targetView = 0
	}
	nd.timer = 0
	return nd.onPrePrepare(consensus.PrePrepareMsg{Slot: nd.cfg.Slot, View: nv.View, Value: nv.Value}, from)
}

// Decided implements consensus.Node.
func (nd *Node) Decided() ([]byte, bool) {
	if !nd.done {
		return nil, false
	}
	return nd.decided, true
}

// View returns the node's current view; after a decision it is the view
// the value was committed in, which callers running a sequence of
// instances can feed into the next instance's StartView.
func (nd *Node) View() int { return nd.view }
