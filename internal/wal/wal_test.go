package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, SyncAlways)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := mustOpen(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	want := []Record{
		{Type: 1, Payload: []byte("alpha")},
		{Type: 2, Payload: nil},
		{Type: 7, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := mustOpen(t, path)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("reopen returned %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d = %v, want %v", i, r, want[i])
		}
	}
	// The reopened log must still accept appends at the right offset.
	if err := l2.Append(9, []byte("tail")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	l2.Close()
	_, got = mustOpen(t, path)
	if len(got) != 4 || got[3].Type != 9 {
		t.Fatalf("after reopen+append got %d records (last %+v)", len(got), got[len(got)-1])
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	if err := l.Append(1, []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("keep-me-too")); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	l.Close()

	for name, tail := range map[string][]byte{
		"partial-header": {0x42, 0x00},
		"header-no-body": {0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef},
		"bad-crc":        {0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02},
		"zero-length":    {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
	} {
		t.Run(name, func(t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l, recs := mustOpen(t, path)
			defer l.Close()
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2", len(recs))
			}
			if l.Size() != goodSize {
				t.Fatalf("size after recovery = %d, want %d", l.Size(), goodSize)
			}
			info, _ := os.Stat(path)
			if info.Size() != goodSize {
				t.Fatalf("file size = %d, want truncation to %d", info.Size(), goodSize)
			}
		})
	}
}

func TestForeignFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("this is not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, SyncAlways)
	if !errors.Is(err, ErrBadHeader) {
		t.Fatalf("Open on foreign file: err = %v, want ErrBadHeader", err)
	}
}

func TestRecordSizeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxRecord+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: err = %v, want ErrTooLarge", err)
	}
}

// crashErr lets a crash hook unwind Append like a process death would,
// leaving whatever bytes were already written on disk.
type crashErr struct{ at CrashPoint }

func (c crashErr) Error() string { return "injected crash at " + string(c.at) }

func crashAt(t *testing.T, point CrashPoint, fn func() error) {
	t.Helper()
	SetCrashHook(func(p CrashPoint) {
		if p == point {
			panic(crashErr{at: p})
		}
	})
	defer SetCrashHook(nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("crash point %s never fired", point)
		}
		if _, ok := r.(crashErr); !ok {
			panic(r)
		}
	}()
	if err := fn(); err != nil {
		t.Fatalf("fn: %v", err)
	}
	t.Fatalf("fn returned without hitting crash point %s", point)
}

func TestCrashMidRecordRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	if err := l.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}

	crashAt(t, CrashMidRecord, func() error {
		return l.Append(2, bytes.Repeat([]byte{0x55}, 64))
	})
	l.f.Close() // simulate process death without Close's sync

	l2, recs := mustOpen(t, path)
	defer l2.Close()
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, []byte("durable")) {
		t.Fatalf("after mid-record crash recovered %v, want only the durable record", recs)
	}
	if err := l2.Append(3, []byte("post-crash")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestCrashBeforeSyncKeepsLogConsistent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := mustOpen(t, path)
	if err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	crashAt(t, CrashBeforeSync, func() error {
		return l.Append(2, []byte("maybe-lost"))
	})
	l.f.Close()

	// The record was fully written before the crash point, so it may
	// survive; either way the log must open cleanly with a valid prefix.
	l2, recs := mustOpen(t, path)
	defer l2.Close()
	if len(recs) != 1 && len(recs) != 2 {
		t.Fatalf("recovered %d records, want 1 or 2", len(recs))
	}
	if !bytes.Equal(recs[0].Payload, []byte("first")) {
		t.Fatalf("first record corrupted: %v", recs[0])
	}
}
