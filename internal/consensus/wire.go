// Wire formats for the consensus protocols. Every message is a fixed
// little-endian layout with explicit length prefixes — no gob, no maps —
// so the bytes a node signs and broadcasts are identical whether the
// instance runs on the simulator or over TCP, and a signature produced on
// one transport verifies on the other. Decoders are strict (exact
// consume, validated ranges), which makes every encoding canonical: the
// fuzz harness pins decode(b) ok => encode(decode(b)) == b.
package consensus

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// errWire is the uniform malformed-message error; protocol code treats it
// as Byzantine garbage and drops the message.
var errWire = errors.New("consensus: malformed wire message")

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return appendU64(dst, uint64(v))
}

// appendBytes writes a u32 length prefix followed by the bytes.
func appendBytes(dst, p []byte) []byte {
	dst = appendU32(dst, uint32(len(p)))
	return append(dst, p...)
}

// wireReader consumes a buffer left to right; the first short read or
// range violation latches ok=false and every later read returns zero.
type wireReader struct {
	b  []byte
	ok bool
}

func (r *wireReader) u32() uint32 {
	if !r.ok || len(r.b) < 4 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) u64() uint64 {
	if !r.ok || len(r.b) < 8 {
		r.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) i64() int64 { return int64(r.u64()) }

// bytes reads a u32-length-prefixed field; zero length decodes to nil, so
// encodings of nil and empty slices coincide on one canonical form.
func (r *wireReader) bytes() []byte {
	n := int(r.u32())
	if !r.ok || n < 0 || n > len(r.b) {
		r.ok = false
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}

// count reads a u32 element count and rejects it when the remaining bytes
// cannot possibly hold that many elements of minSize bytes — the guard
// that keeps a hostile count from pre-allocating unbounded memory.
func (r *wireReader) count(minSize int) int {
	n := int(r.u32())
	if !r.ok || n < 0 || n > len(r.b)/minSize {
		r.ok = false
		return 0
	}
	return n
}

// done reports a clean, fully-consumed decode.
func (r *wireReader) done() bool { return r.ok && len(r.b) == 0 }

// ChainMsg is Dolev-Strong's wire message: a value and its chain of blob
// signatures (Signers[i] signed Value; the chains must survive relay by
// other nodes, hence blob rather than envelope signatures).
//
// Layout: u64 slot | bytes value | u32 n | n x (u64 signer | bytes sig),
// where `bytes` is a u32 length prefix followed by the raw bytes.
type ChainMsg struct {
	Slot    uint64
	Value   []byte
	Signers []uint64
	Sigs    [][]byte
}

// AppendChainMsg appends the encoding of m to dst.
func AppendChainMsg(dst []byte, m ChainMsg) ([]byte, error) {
	if len(m.Signers) != len(m.Sigs) {
		return nil, fmt.Errorf("consensus: chain with %d signers but %d sigs", len(m.Signers), len(m.Sigs))
	}
	dst = appendU64(dst, m.Slot)
	dst = appendBytes(dst, m.Value)
	dst = appendU32(dst, uint32(len(m.Signers)))
	for i := range m.Signers {
		dst = appendU64(dst, m.Signers[i])
		dst = appendBytes(dst, m.Sigs[i])
	}
	return dst, nil
}

// DecodeChainMsg parses an encoded ChainMsg.
func DecodeChainMsg(b []byte) (ChainMsg, error) {
	r := wireReader{b: b, ok: true}
	var m ChainMsg
	m.Slot = r.u64()
	m.Value = r.bytes()
	n := r.count(12) // u64 signer + u32 sig length at minimum
	for i := 0; i < n; i++ {
		m.Signers = append(m.Signers, r.u64())
		m.Sigs = append(m.Sigs, r.bytes())
	}
	if !r.done() {
		return ChainMsg{}, errWire
	}
	return m, nil
}

// PrePrepareMsg is PBFT's leader proposal for one view.
//
// Layout: u64 slot | i64 view | bytes value.
type PrePrepareMsg struct {
	Slot  uint64
	View  int
	Value []byte
}

// AppendPrePrepareMsg appends the encoding of m to dst.
func AppendPrePrepareMsg(dst []byte, m PrePrepareMsg) []byte {
	dst = appendU64(dst, m.Slot)
	dst = appendI64(dst, int64(m.View))
	return appendBytes(dst, m.Value)
}

// DecodePrePrepareMsg parses an encoded PrePrepareMsg.
func DecodePrePrepareMsg(b []byte) (PrePrepareMsg, error) {
	r := wireReader{b: b, ok: true}
	var m PrePrepareMsg
	m.Slot = r.u64()
	view := r.i64()
	m.Value = r.bytes()
	if !r.done() || view < 0 || view > int64(int(view)) {
		return PrePrepareMsg{}, errWire
	}
	m.View = int(view)
	return m, nil
}

// VoteMsg is PBFT's prepare/commit vote (the message kind distinguishes
// the phase).
//
// Layout: u64 slot | i64 view | 32-byte digest.
type VoteMsg struct {
	Slot   uint64
	View   int
	Digest [32]byte
}

// AppendVoteMsg appends the encoding of m to dst.
func AppendVoteMsg(dst []byte, m VoteMsg) []byte {
	dst = appendU64(dst, m.Slot)
	dst = appendI64(dst, int64(m.View))
	return append(dst, m.Digest[:]...)
}

// DecodeVoteMsg parses an encoded VoteMsg.
func DecodeVoteMsg(b []byte) (VoteMsg, error) {
	r := wireReader{b: b, ok: true}
	var m VoteMsg
	m.Slot = r.u64()
	view := r.i64()
	if !r.ok || len(r.b) != 32 || view < 0 || view > int64(int(view)) {
		return VoteMsg{}, errWire
	}
	copy(m.Digest[:], r.b)
	m.View = int(view)
	return m, nil
}

// ViewChangeMsg is PBFT's signed demand to move to NewView, carrying the
// sender's prepared certificate (PreparedView == -1 when none). Sig is a
// blob signature by Sender over the view-change content, so the new
// leader can prove the demand to third parties inside a NewViewMsg.
//
// Layout: u64 slot | i64 newView | i64 preparedView | bytes preparedValue
// | bytes sig | u64 sender.
type ViewChangeMsg struct {
	Slot          uint64
	NewView       int
	PreparedView  int
	PreparedValue []byte
	Sig           []byte
	Sender        uint64
}

// viewChangeWireMin is the smallest possible ViewChangeMsg encoding: three
// u64-sized fields, two empty byte fields, one u64 sender.
const viewChangeWireMin = 8 + 8 + 8 + 4 + 4 + 8

// AppendViewChangeMsg appends the encoding of m to dst.
func AppendViewChangeMsg(dst []byte, m ViewChangeMsg) []byte {
	dst = appendU64(dst, m.Slot)
	dst = appendI64(dst, int64(m.NewView))
	dst = appendI64(dst, int64(m.PreparedView))
	dst = appendBytes(dst, m.PreparedValue)
	dst = appendBytes(dst, m.Sig)
	return appendU64(dst, m.Sender)
}

// decodeViewChangeInto consumes one ViewChangeMsg from the reader.
func decodeViewChangeInto(r *wireReader, m *ViewChangeMsg) {
	m.Slot = r.u64()
	newView := r.i64()
	preparedView := r.i64()
	m.PreparedValue = r.bytes()
	m.Sig = r.bytes()
	m.Sender = r.u64()
	if newView < 0 || newView > int64(int(newView)) ||
		preparedView < -1 || preparedView > int64(int(preparedView)) {
		r.ok = false
		return
	}
	m.NewView = int(newView)
	m.PreparedView = int(preparedView)
}

// DecodeViewChangeMsg parses an encoded ViewChangeMsg.
func DecodeViewChangeMsg(b []byte) (ViewChangeMsg, error) {
	r := wireReader{b: b, ok: true}
	var m ViewChangeMsg
	decodeViewChangeInto(&r, &m)
	if !r.done() {
		return ViewChangeMsg{}, errWire
	}
	return m, nil
}

// NewViewMsg is the new leader's view installation: the adopted value
// plus the 2f+1 view-change messages proving the view change legitimate.
//
// Layout: u64 slot | i64 view | bytes value | u32 n | n x ViewChangeMsg.
type NewViewMsg struct {
	Slot  uint64
	View  int
	Value []byte
	Proof []ViewChangeMsg
}

// AppendNewViewMsg appends the encoding of m to dst.
func AppendNewViewMsg(dst []byte, m NewViewMsg) []byte {
	dst = appendU64(dst, m.Slot)
	dst = appendI64(dst, int64(m.View))
	dst = appendBytes(dst, m.Value)
	dst = appendU32(dst, uint32(len(m.Proof)))
	for i := range m.Proof {
		dst = AppendViewChangeMsg(dst, m.Proof[i])
	}
	return dst
}

// DecodeNewViewMsg parses an encoded NewViewMsg.
func DecodeNewViewMsg(b []byte) (NewViewMsg, error) {
	r := wireReader{b: b, ok: true}
	var m NewViewMsg
	m.Slot = r.u64()
	view := r.i64()
	m.Value = r.bytes()
	n := r.count(viewChangeWireMin)
	for i := 0; i < n; i++ {
		var vc ViewChangeMsg
		decodeViewChangeInto(&r, &vc)
		m.Proof = append(m.Proof, vc)
	}
	if !r.done() || view < 0 || view > int64(int(view)) {
		return NewViewMsg{}, errWire
	}
	m.View = int(view)
	return m, nil
}
