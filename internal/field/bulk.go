package field

import "fmt"

// Bulk is the optional bulk-arithmetic capability of a Field: vector kernels
// that process whole slices per call instead of one element per dynamic
// interface dispatch. The coding hot paths (Lagrange encode, Reed-Solomon
// component decodes, subproduct-tree evaluation, Gaussian elimination) issue
// one kernel call per row/column, so a field that implements Bulk natively —
// Goldilocks and GF(2^m) do, with branchless concrete uint64 loops — removes
// the per-element virtual call that otherwise dominates the constant factor
// of the paper's O(N) per-node cost.
//
// Fields that do not implement Bulk keep working through AsBulk's generic
// adapter, which performs exactly the per-element Field calls the scalar
// loops it replaces would have made: wrapped in the Counting decorator, the
// generic path reports bit-identical operation totals.
//
// Kernel contracts (all kernels):
//   - dst, a and b (where present) must have identical lengths; kernels
//     panic on shorter dst, matching the scalar loops they replace.
//   - dst may alias a and/or b; kernels read a[i]/b[i] before writing dst[i].
//   - Elements must be canonical on input and are canonical on output.
type Bulk[E comparable] interface {
	Field[E]
	// AddVec sets dst[i] = a[i] + b[i].
	AddVec(dst, a, b []E)
	// SubVec sets dst[i] = a[i] - b[i].
	SubVec(dst, a, b []E)
	// MulVec sets dst[i] = a[i] * b[i].
	MulVec(dst, a, b []E)
	// ScaleVec sets dst[i] = c * a[i].
	ScaleVec(dst []E, c E, a []E)
	// ScaleAccVec sets dst[i] = dst[i] + c*a[i] (axpy): the inner kernel of
	// the K x L Lagrange encode.
	ScaleAccVec(dst []E, c E, a []E)
	// SubScaleVec sets dst[i] = dst[i] - c*a[i]: the row-elimination kernel
	// of Gaussian elimination and schoolbook polynomial division.
	SubScaleVec(dst []E, c E, a []E)
	// DotVec returns sum_i a[i]*b[i], or zero for empty vectors.
	DotVec(a, b []E) E
	// SubScalarVec sets dst[i] = a[i] - c.
	SubScalarVec(dst, a []E, c E)
	// ScalarSubVec sets dst[i] = c - a[i].
	ScalarSubVec(dst []E, c E, a []E)
	// HornerVec performs one vectorized Horner step: acc[i] = acc[i]*xs[i] + c.
	// Folding a polynomial's coefficients from the highest down evaluates it
	// at every xs point simultaneously.
	HornerVec(acc, xs []E, c E)
	// BatchInvInto writes the multiplicative inverses of xs into dst using
	// Montgomery's trick (one inversion plus 3(n-1) multiplications),
	// allocation-free. Unlike the other kernels, dst must NOT alias xs: the
	// forward product sweep stores its prefixes in dst while the backward
	// sweep still needs the original inputs. It returns ErrDivisionByZero
	// (wrapped, identifying the first offending index) if any element is
	// zero; dst's contents are unspecified on error.
	BatchInvInto(dst, xs []E) error
}

// AsBulk resolves the bulk capability of f: the field itself when it
// implements Bulk (Goldilocks, GF(2^m), and Counting around either), or a
// generic adapter that routes every kernel through f's scalar methods.
// Resolve once and cache the result — adapting a plain field allocates.
func AsBulk[E comparable](f Field[E]) Bulk[E] {
	if b, ok := f.(Bulk[E]); ok {
		return b
	}
	return genericBulk[E]{f}
}

// genericBulk adapts any Field to Bulk with scalar per-element calls. Each
// kernel mirrors, call for call, the loop it replaced, so operation-counting
// decorators observe unchanged totals on this path.
type genericBulk[E comparable] struct {
	Field[E]
}

func (g genericBulk[E]) AddVec(dst, a, b []E) {
	for i := range a {
		dst[i] = g.Add(a[i], b[i])
	}
}

func (g genericBulk[E]) SubVec(dst, a, b []E) {
	for i := range a {
		dst[i] = g.Sub(a[i], b[i])
	}
}

func (g genericBulk[E]) MulVec(dst, a, b []E) {
	for i := range a {
		dst[i] = g.Mul(a[i], b[i])
	}
}

func (g genericBulk[E]) ScaleVec(dst []E, c E, a []E) {
	for i := range a {
		dst[i] = g.Mul(c, a[i])
	}
}

func (g genericBulk[E]) ScaleAccVec(dst []E, c E, a []E) {
	for i := range a {
		dst[i] = g.Add(dst[i], g.Mul(c, a[i]))
	}
}

func (g genericBulk[E]) SubScaleVec(dst []E, c E, a []E) {
	for i := range a {
		dst[i] = g.Sub(dst[i], g.Mul(c, a[i]))
	}
}

func (g genericBulk[E]) DotVec(a, b []E) E {
	acc := g.Zero()
	for i := range a {
		acc = g.Add(acc, g.Mul(a[i], b[i]))
	}
	return acc
}

func (g genericBulk[E]) SubScalarVec(dst, a []E, c E) {
	for i := range a {
		dst[i] = g.Sub(a[i], c)
	}
}

func (g genericBulk[E]) ScalarSubVec(dst []E, c E, a []E) {
	for i := range a {
		dst[i] = g.Sub(c, a[i])
	}
}

func (g genericBulk[E]) HornerVec(acc, xs []E, c E) {
	for i := range acc {
		acc[i] = g.Add(g.Mul(acc[i], xs[i]), c)
	}
}

func (g genericBulk[E]) BatchInvInto(dst, xs []E) error {
	return batchInvInto[E](g.Field, dst, xs)
}

// batchInvInto is the shared Montgomery-trick implementation: dst first
// accumulates the prefix products, then the backward sweep rewrites it with
// the inverses (which is why dst must not alias xs). The multiplication
// sequence is identical to BatchInv's.
func batchInvInto[E comparable](f Field[E], dst, xs []E) error {
	n := len(xs)
	if len(dst) < n {
		panic(fmt.Sprintf("field: BatchInvInto dst length %d < %d", len(dst), n))
	}
	if n == 0 {
		return nil
	}
	acc := f.One()
	for i, x := range xs {
		if f.IsZero(x) {
			return fmt.Errorf("field: batch inverse of zero at index %d: %w", i, ErrDivisionByZero)
		}
		dst[i] = acc
		acc = f.Mul(acc, x)
	}
	inv, err := f.Inv(acc)
	if err != nil {
		return err
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = f.Mul(inv, dst[i])
		inv = f.Mul(inv, xs[i])
	}
	return nil
}

// zeroIndex returns the index of the first zero element, or -1. Used by
// counting fields to charge BatchInvInto's error path exactly like the
// scalar algorithm (i multiplications before the zero at index i).
func zeroIndex[E comparable](f Field[E], xs []E) int {
	for i, x := range xs {
		if f.IsZero(x) {
			return i
		}
	}
	return -1
}
