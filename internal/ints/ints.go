// Package ints holds small integer-set helpers shared by the coding layers
// (lcc's faulty-node sets, csm's client-phase audit sets).
package ints

import "slices"

// SortedKeys returns the keys of a set in ascending order.
func SortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
