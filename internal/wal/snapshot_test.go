package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotWriteLoad(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
	if err := WriteSnapshot(dir, 1, []byte("gen-one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 2, []byte("gen-two")); err != nil {
		t.Fatal(err)
	}
	seq, payload, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || !bytes.Equal(payload, []byte("gen-two")) {
		t.Fatalf("loaded seq=%d payload=%q, want newest generation", seq, payload)
	}
}

func TestSnapshotCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("gen-one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 2, []byte("gen-two")); err != nil {
		t.Fatal(err)
	}
	// Smash a byte in the newest snapshot's payload.
	path := filepath.Join(dir, SnapshotName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || !bytes.Equal(payload, []byte("gen-one")) {
		t.Fatalf("loaded seq=%d payload=%q, want fallback to generation 1", seq, payload)
	}
}

func TestSnapshotPruneKeepsPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 4; seq++ {
		// Each generation also gets a paired WAL segment.
		l, _, err := Open(filepath.Join(dir, SegmentName(seq)), SyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
		if err := WriteSnapshot(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := map[string]bool{
		SnapshotName(3): true, SnapshotName(4): true,
		SegmentName(3): true, SegmentName(4): true,
	}
	if len(names) != len(want) {
		t.Fatalf("dir holds %v, want exactly generations 3 and 4", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected leftover %s (dir: %v)", n, names)
		}
	}
}

func TestSnapshotCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	crashAt(t, CrashSnapshotTemp, func() error {
		return WriteSnapshot(dir, 2, []byte("new"))
	})
	// The orphan .tmp must not shadow the previous snapshot.
	seq, payload, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || !bytes.Equal(payload, []byte("old")) {
		t.Fatalf("loaded seq=%d payload=%q, want previous generation", seq, payload)
	}
	// The next successful snapshot sweeps the orphan temp file.
	if err := WriteSnapshot(dir, 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stale temp file %s survived rotation", e.Name())
		}
	}
}

func TestSnapshotCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	crashAt(t, CrashSnapshotRenamed, func() error {
		return WriteSnapshot(dir, 2, []byte("new"))
	})
	seq, payload, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || !bytes.Equal(payload, []byte("new")) {
		t.Fatalf("loaded seq=%d payload=%q, want renamed generation 2", seq, payload)
	}
}
