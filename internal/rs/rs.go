// Package rs implements Reed-Solomon codes over arbitrary evaluation
// points, with two noisy-interpolation decoders:
//
//   - Gao's decoder, built on the extended Euclidean algorithm — the
//     "efficient noisy polynomial interpolation" the paper invokes for the
//     execution phase (Section 5.2);
//   - the Berlekamp-Welch decoder, built on linear algebra — the algorithm
//     the paper names for the delegated worker (Section 6.2).
//
// A CSM execution round produces N evaluations g_i = h(α_i) of the composite
// polynomial h = f(u(z), v(z)) of degree d(K-1); up to b of them are
// corrupted by Byzantine nodes. Decoding recovers h, hence every machine's
// output and next state, iff 2b ≤ N - d(K-1) - 1 (Table 2).
package rs

import (
	"errors"
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/poly"
	"codedsm/internal/pool"
)

// ErrTooManyErrors is returned when the received word is not within the
// code's error-correction radius.
var ErrTooManyErrors = errors.New("rs: too many errors to decode")

// Code is a Reed-Solomon code of the given dimension over fixed evaluation
// points: codewords are (p(points[0]), ..., p(points[n-1])) for polynomials
// p with deg(p) < dim.
type Code[E comparable] struct {
	ring   *poly.Ring[E]
	points []E
	tree   *poly.SubproductTree[E]
	dim    int
}

// NewCode constructs a code with the given evaluation points (which must be
// pairwise distinct) and dimension 1 ≤ dim ≤ len(points).
func NewCode[E comparable](ring *poly.Ring[E], points []E, dim int) (*Code[E], error) {
	if dim < 1 || dim > len(points) {
		return nil, fmt.Errorf("rs: dimension %d out of range [1,%d]", dim, len(points))
	}
	seen := make(map[E]int, len(points))
	for i, pt := range points {
		if j, dup := seen[pt]; dup {
			return nil, fmt.Errorf("rs: duplicate evaluation point at indices %d and %d", j, i)
		}
		seen[pt] = i
	}
	pts := make([]E, len(points))
	copy(pts, points)
	return &Code[E]{
		ring:   ring,
		points: pts,
		tree:   poly.NewSubproductTree(ring, pts),
		dim:    dim,
	}, nil
}

// Length returns the code length n.
func (c *Code[E]) Length() int { return len(c.points) }

// Dim returns the code dimension k.
func (c *Code[E]) Dim() int { return c.dim }

// Points returns the evaluation points (do not modify).
func (c *Code[E]) Points() []E { return c.points }

// MaxErrors returns the unique-decoding radius (n-k)/2.
func (c *Code[E]) MaxErrors() int { return (len(c.points) - c.dim) / 2 }

// Encode evaluates the message polynomial (deg < dim) at every point.
func (c *Code[E]) Encode(msg poly.Poly[E]) ([]E, error) {
	if c.ring.Deg(msg) >= c.dim {
		return nil, fmt.Errorf("rs: message degree %d >= dimension %d", c.ring.Deg(msg), c.dim)
	}
	return c.tree.EvalMany(msg)
}

// IsCodeword reports whether word is a noiseless codeword and, if so,
// returns the message polynomial.
func (c *Code[E]) IsCodeword(word []E) (poly.Poly[E], bool) {
	if len(word) != len(c.points) {
		return nil, false
	}
	p, err := c.tree.Interpolate(word)
	if err != nil {
		return nil, false
	}
	if c.ring.Deg(p) >= c.dim {
		return nil, false
	}
	return p, true
}

// DecodeResult carries a successful decode: the recovered message
// polynomial and the indices at which the received word was corrupted.
type DecodeResult[E comparable] struct {
	Message   poly.Poly[E]
	ErrorsAt  []int
	Corrected []E // the re-encoded (clean) codeword
}

// Decode recovers the message from a received word with at most MaxErrors
// corrupted coordinates, using Gao's extended-Euclidean decoder:
//
//	g0 = prod (z - α_i),   g1 = interpolate(α, received)
//	run EEA(g0, g1) until deg(remainder) < (n + k)/2, giving g = u g0 + v g1
//	message = g / v  (exact division on success)
func (c *Code[E]) Decode(received []E) (*DecodeResult[E], error) {
	n, k := len(c.points), c.dim
	if len(received) != n {
		return nil, fmt.Errorf("rs: received word length %d, want %d", len(received), n)
	}
	g1, err := c.tree.Interpolate(received)
	if err != nil {
		return nil, err
	}
	// Fast path: already a codeword.
	if c.ring.Deg(g1) < k {
		corrected, err := c.tree.EvalMany(g1)
		if err != nil {
			return nil, err
		}
		return &DecodeResult[E]{Message: g1, ErrorsAt: []int{}, Corrected: corrected}, nil
	}
	g0 := c.tree.Master()
	stopDeg := (n + k + 1) / 2 // first deg strictly below (n+k)/2
	g, _, v, err := c.ring.PartialEEA(g0, g1, stopDeg)
	if err != nil {
		return nil, err
	}
	if c.ring.IsZero(v) {
		return nil, fmt.Errorf("rs: decoder produced zero locator: %w", ErrTooManyErrors)
	}
	msg, rem, err := c.ring.DivMod(g, v)
	if err != nil {
		return nil, err
	}
	if !c.ring.IsZero(rem) || c.ring.Deg(msg) >= k {
		return nil, fmt.Errorf("rs: %w (non-exact division)", ErrTooManyErrors)
	}
	return c.finish(msg, received)
}

// finish validates a candidate message against the received word and
// collects error positions.
func (c *Code[E]) finish(msg poly.Poly[E], received []E) (*DecodeResult[E], error) {
	corrected, err := c.tree.EvalMany(msg)
	if err != nil {
		return nil, err
	}
	f := c.ring.Field()
	errorsAt := make([]int, 0, c.MaxErrors())
	for i := range received {
		if !f.Equal(corrected[i], received[i]) {
			errorsAt = append(errorsAt, i)
		}
	}
	if len(errorsAt) > c.MaxErrors() {
		return nil, fmt.Errorf("rs: %w (%d errors, radius %d)", ErrTooManyErrors, len(errorsAt), c.MaxErrors())
	}
	return &DecodeResult[E]{Message: msg, ErrorsAt: errorsAt, Corrected: corrected}, nil
}

// A WordError locates a batch-decode failure: Word is the index of the
// received word within the DecodeMany batch, and Err is the underlying
// decode failure (typically wrapping ErrTooManyErrors). Match the
// cause with errors.Is and recover the index with errors.As.
type WordError struct {
	Word int
	Err  error
}

func (e *WordError) Error() string { return fmt.Sprintf("rs: word %d: %v", e.Word, e.Err) }

func (e *WordError) Unwrap() error { return e.Err }

// DecodeMany decodes len(words) received words against the same code,
// fanning the independent Gao decodes — each an extended-Euclidean
// error-locator solve — across at most workers goroutines (workers <= 0
// selects runtime.GOMAXPROCS). Results are index-aligned with words and
// identical to decoding each word sequentially; the error reported is the
// lowest-index failure, wrapped as a *WordError.
//
// A Code is immutable after construction, so concurrent decodes against it
// are safe; an execution round's L vector components are exactly such a
// batch (Section 5.2).
func (c *Code[E]) DecodeMany(words [][]E, workers int) ([]*DecodeResult[E], error) {
	out := make([]*DecodeResult[E], len(words))
	err := pool.Run(workers, len(words), func(j int) error {
		res, err := c.Decode(words[j])
		if err != nil {
			return &WordError{Word: j, Err: err}
		}
		out[j] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Subcode returns the code restricted to the points selected by indices —
// the partially synchronous execution phase decodes from only the N-b
// results that arrived (Section 5.2).
func (c *Code[E]) Subcode(indices []int) (*Code[E], error) {
	pts := make([]E, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(c.points) {
			return nil, fmt.Errorf("rs: subcode index %d out of range", idx)
		}
		pts[i] = c.points[idx]
	}
	return NewCode(c.ring, pts, c.dim)
}

// DecodeSubset decodes from a subset of coordinates (erasure of the rest):
// indices selects the present points and values carries their (possibly
// corrupted) evaluations.
func (c *Code[E]) DecodeSubset(indices []int, values []E) (*DecodeResult[E], error) {
	if len(indices) != len(values) {
		return nil, fmt.Errorf("rs: %d indices but %d values", len(indices), len(values))
	}
	sub, err := c.Subcode(indices)
	if err != nil {
		return nil, err
	}
	res, err := sub.Decode(values)
	if err != nil {
		return nil, err
	}
	// Map error positions back to original indices.
	mapped := make([]int, len(res.ErrorsAt))
	for i, e := range res.ErrorsAt {
		mapped[i] = indices[e]
	}
	res.ErrorsAt = mapped
	return res, nil
}

// DecodeBW decodes with the Berlekamp-Welch algorithm: find E(z) monic of
// degree e and Q(z) of degree < k+e with Q(α_i) = y_i E(α_i) for all i,
// then message = Q/E. Exposed alongside Decode for the Section 6.2 worker
// and for the decoder ablation benchmarks.
func (c *Code[E]) DecodeBW(received []E) (*DecodeResult[E], error) {
	n, k := len(c.points), c.dim
	if len(received) != n {
		return nil, fmt.Errorf("rs: received word length %d, want %d", len(received), n)
	}
	f := c.ring.Field()
	e := c.MaxErrors()
	if e == 0 {
		p, ok := c.IsCodeword(received)
		if !ok {
			return nil, fmt.Errorf("rs: %w (no redundancy)", ErrTooManyErrors)
		}
		return c.finish(p, received)
	}
	// Unknowns: q_0..q_{k+e-1}, eps_0..eps_{e-1} with E = z^e + sum eps_j z^j.
	// Row i: sum_j q_j α_i^j - y_i sum_j eps_j α_i^j = y_i α_i^e.
	cols := k + 2*e
	mat := make([][]E, n)
	flat := make([]E, n*cols) // one backing array for all rows
	rhs := make([]E, n)
	for i := 0; i < n; i++ {
		row := flat[i*cols : (i+1)*cols]
		pow := f.One()
		for j := 0; j < k+e; j++ {
			row[j] = pow
			pow = f.Mul(pow, c.points[i])
		}
		pow = f.One()
		for j := 0; j < e; j++ {
			row[k+e+j] = f.Neg(f.Mul(received[i], pow))
			pow = f.Mul(pow, c.points[i])
		}
		mat[i] = row
		rhs[i] = f.Mul(received[i], field.Exp(f, c.points[i], uint64(e)))
	}
	sol, err := solveLinear(f, mat, rhs)
	if err != nil {
		return nil, fmt.Errorf("rs: %w: %v", ErrTooManyErrors, err)
	}
	q := c.ring.Normalize(poly.Poly[E](sol[:k+e]))
	locator := make(poly.Poly[E], e+1)
	copy(locator, sol[k+e:])
	locator[e] = f.One()
	msg, rem, err := c.ring.DivMod(q, locator)
	if err != nil {
		return nil, err
	}
	if !c.ring.IsZero(rem) || c.ring.Deg(msg) >= k {
		return nil, fmt.Errorf("rs: %w (Berlekamp-Welch division not exact)", ErrTooManyErrors)
	}
	return c.finish(msg, received)
}
