// Pluggable batch consensus for the multi-process engine.
//
// The Oracle engine (remote.go) splits the cluster into one sequencer
// and N-1 followers: the batch IS whatever node 0 broadcasts. The
// consensus modes below remove that asymmetry. Every node derives the
// same seeded workload, serializes each batch into the identical
// canonical payload (the same gob batchMsg the simulated consensus
// phase proposes), and runs a real BFT instance over its transport.Link
// to decide it — Dolev-Strong under synchrony, PBFT under partial
// synchrony. The decided payload, not the local proposal, is what gets
// parsed and executed, so a node that somehow proposed stale bytes
// still executes the agreed batch.
//
// Because the execution core and both codecs are shared with the
// simulated cluster, the run digest of a consensus-mode multi-process
// run is bit-identical to the simulated Oracle cluster on the same
// workload — consensus changes who decides, never what is computed.
// PBFT additionally gives the multi-process engine its first real
// leader-failover path: if the current leader's process dies, the
// survivors' view change installs the next leader and the workload
// completes (TestRemotePBFTLeaderFailover pins this over real TCP).
package csm

import (
	"fmt"

	"codedsm/internal/consensus"
	"codedsm/internal/consensus/dolevstrong"
	"codedsm/internal/consensus/pbft"
	"codedsm/internal/transport"
)

// quorumGraceTicks is how many extra lock-step ticks a consensus-mode
// node waits for stragglers' results once it already holds an
// erasure-decodable subset. Oracle mode always waits for all N (honest
// deployment); consensus modes must make progress when a peer is dead —
// the very failure PBFT's view change just routed around.
const quorumGraceTicks = 8

// ValidateRemoteConsensus eagerly checks a consensus selection against
// the cluster shape, before any socket is opened. Failures wrap
// ErrConsensusConfig so callers (csmnode bootstrap) can classify them.
func ValidateRemoteConsensus(kind ConsensusKind, n, maxFaults int) error {
	if maxFaults < 0 {
		return fmt.Errorf("%w: negative fault budget b=%d", ErrConsensusConfig, maxFaults)
	}
	switch kind {
	case Oracle:
		return nil
	case DolevStrong:
		// Dolev-Strong tolerates any b < N, but needs the signature chains
		// the link provides (SignBlob/VerifyBlob) and at least one honest
		// relay besides the sender to be meaningful.
		if n < 2 {
			return fmt.Errorf("%w: dolev-strong needs N >= 2, got N=%d", ErrConsensusConfig, n)
		}
		if maxFaults >= n {
			return fmt.Errorf("%w: dolev-strong needs b < N, got b=%d N=%d", ErrConsensusConfig, maxFaults, n)
		}
	case PBFT:
		if n < 3*maxFaults+1 {
			return fmt.Errorf("%w: pbft needs N >= 3b+1, got N=%d b=%d (need N >= %d)",
				ErrConsensusConfig, n, maxFaults, 3*maxFaults+1)
		}
	default:
		return fmt.Errorf("%w: unknown consensus kind %d", ErrConsensusConfig, int(kind))
	}
	return nil
}

// decideBatch runs one consensus instance over the link and returns the
// decided payload bytes. The slot is the workload round, so instances
// never alias across batches; the Dolev-Strong sender rotates with the
// round, and PBFT instances start in the view the previous instance
// decided in — all survivors agree on it, so a dead low-view leader
// costs one view change for the whole run, not one per batch.
func (p *NodeProcess[E]) decideBatch(proposal []byte) ([]byte, error) {
	switch p.cfg.Consensus {
	case DolevStrong:
		nd, err := dolevstrong.New(dolevstrong.Config{
			Transport: p.link,
			Sender:    transport.NodeID(p.round % p.n),
			Slot:      uint64(p.round),
			MaxFaults: p.cfg.MaxFaults,
			Value:     proposal,
			Default:   nil,
		})
		if err != nil {
			return nil, err
		}
		return consensus.RunLink(p.link, nd, dolevstrong.Rounds(p.cfg.MaxFaults)+1)
	case PBFT:
		nd, err := pbft.New(pbft.Config{
			Transport: p.link,
			Slot:      uint64(p.round),
			MaxFaults: p.cfg.MaxFaults,
			Value:     proposal,
			StartView: p.startView,
		})
		if err != nil {
			return nil, err
		}
		decided, err := consensus.RunLink(p.link, nd, p.cfg.MaxTicksPerRound)
		if err != nil {
			return nil, err
		}
		p.startView = nd.View()
		return decided, nil
	default:
		return nil, fmt.Errorf("%w: decideBatch under %v", ErrConsensusConfig, p.cfg.Consensus)
	}
}

// RunWorkload drives a whole workload under a real consensus protocol.
// There is no sequencer: every node of the cluster calls RunWorkload
// with the same rounds (derived from the shared seed) and the same
// batchSize (<= 1 means one round per batch), proposes each batch as
// identical payload bytes, decides it with the configured protocol, and
// executes the decided batch through the shared coded execution core.
// It returns the decoded outputs, one [K][]E per round, bit-identical
// to the simulated Oracle cluster on the same workload.
func (p *NodeProcess[E]) RunWorkload(rounds [][][]E, batchSize int) ([][][]E, error) {
	if p.cfg.Consensus == Oracle {
		return nil, fmt.Errorf("%w: RunWorkload needs a BFT protocol; Oracle clusters use Lead/Follow", ErrConsensusConfig)
	}
	if batchSize < 1 {
		batchSize = 1
	}
	out := make([][][]E, 0, len(rounds))
	for start := 0; start < len(rounds); start += batchSize {
		end := min(start+batchSize, len(rounds))
		res, err := p.runConsensusBatch(rounds[start:end])
		out = append(out, res...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// runConsensusBatch decides and executes one batch: propose the
// canonical payload, run the consensus instance, parse and validate the
// decided bytes, write-ahead log them, execute.
func (p *NodeProcess[E]) runConsensusBatch(batch [][][]E) ([][][]E, error) {
	proposal, err := p.encodeBatchProposal(batch)
	if err != nil {
		return nil, err
	}
	decided, err := p.decideBatch(proposal)
	if err != nil {
		return nil, fmt.Errorf("csm: node %d round %d: %v consensus: %w", p.self, p.round, p.cfg.Consensus, err)
	}
	agreed, ok := parseBatchMsg(p.cfg.BaseField, decided, len(batch), p.cfg.K, p.tr.CmdLen())
	if !ok {
		// Unlike the simulated cluster (which skips a garbage batch and
		// retries under a rotated leader), the multi-process driver has no
		// retry queue yet; surface the decision instead of silently
		// diverging from the workload.
		return nil, fmt.Errorf("csm: node %d round %d: %v decided an unusable batch (%d bytes)",
			p.self, p.round, p.cfg.Consensus, len(decided))
	}
	var bm batchMsg
	if err := decodePayload(decided, &bm); err == nil && bm.Round != p.round {
		return nil, fmt.Errorf("csm: node %d at round %d decided a batch for round %d (desynchronized)",
			p.self, p.round, bm.Round)
	}
	if p.store != nil {
		// Write-ahead: the decided batch hits disk before execution.
		if err := p.store.appendBatch(p.round, decided); err != nil {
			return nil, err
		}
	}
	return p.executeSteps(agreed)
}
