// Package load type-checks Go packages for csmlint using only the
// standard library: sources are parsed with go/parser and imports are
// resolved from compiler export data, either produced by
// `go list -export` (standalone driver, tests) or handed over by the
// go vet driver (unitchecker mode). This replaces
// golang.org/x/tools/go/packages, which cannot be a dependency here —
// the module builds offline with an empty dependency graph.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked unit ready for analysis.
type Package struct {
	// Path is the import path (external test packages get the
	// conventional "_test" suffix).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo allocates the full set of type-checker fact maps the
// analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check parses and type-checks one package from explicit file paths.
func Check(path string, files []string, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, f := range files {
		a, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, a)
	}
	return CheckFiles(path, fset, asts, imp)
}

// CheckFiles type-checks already-parsed files as one package.
func CheckFiles(path string, fset *token.FileSet, asts []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, fset, asts, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", e)
		}
		return nil, fmt.Errorf("type-checking %s:%s", path, b.String())
	}
	return &Package{Path: path, Fset: fset, Files: asts, Pkg: pkg, Info: info}, nil
}

// ---- export-data importer ----

// ExportImporter resolves imports from compiler export-data files, the
// way the gc toolchain itself links packages together.
type ExportImporter struct {
	fset *token.FileSet
	// exports maps canonical import path -> export data file.
	exports map[string]string
	// importMap translates source-level import paths to canonical ones
	// (vendoring, test variants); may be nil.
	importMap map[string]string
	inner     types.ImporterFrom
	// fallback, when non-nil, resolves paths missing from exports by
	// invoking `go list -export` on demand (used by test harnesses for
	// stdlib imports of fixture files).
	fallback func(path string) (string, error)
}

// NewExportImporter builds an importer over a path->export-file map.
func NewExportImporter(exports map[string]string, importMap map[string]string) *ExportImporter {
	imp := &ExportImporter{
		fset:      token.NewFileSet(),
		exports:   exports,
		importMap: importMap,
	}
	imp.inner = importer.ForCompiler(imp.fset, "gc", imp.lookup).(types.ImporterFrom)
	return imp
}

func (imp *ExportImporter) lookup(path string) (io.ReadCloser, error) {
	if imp.importMap != nil {
		if canon, ok := imp.importMap[path]; ok {
			path = canon
		}
	}
	file, ok := imp.exports[path]
	if !ok && imp.fallback != nil {
		f, err := imp.fallback(path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %w", path, err)
		}
		imp.exports[path] = f
		file = f
		ok = true
	}
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer.
func (imp *ExportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return imp.inner.ImportFrom(path, "", 0)
}

// ---- `go list -export` front end ----

// listPackage is the subset of `go list -json` output load consumes.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	ForTest      string
	DepOnly      bool
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList runs `go list -export -deps -json` (plus extra flags) in dir.
func goList(dir string, extra []string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Module loads, parses, and type-checks every package matching
// patterns in the module rooted at dir. With tests true, in-package
// _test.go files are checked together with their package and external
// _test packages are checked as "<path>_test" units.
func Module(dir string, tests bool, patterns ...string) ([]*Package, error) {
	extra := []string{}
	if tests {
		extra = append(extra, "-test")
	}
	listed, err := goList(dir, extra, patterns)
	if err != nil {
		return nil, err
	}
	// Split the listing: plain export data for every dependency, the
	// test-augmented export of each package under test (external test
	// files may use symbols exported by in-package test files), and
	// the target packages to re-check from source.
	exports := make(map[string]string)
	forTest := make(map[string]string)
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		path := p.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i] // "p [p.test]" build variant
		}
		if p.Export != "" {
			if p.ForTest != "" && p.ForTest == path {
				forTest[path] = p.Export
			} else if _, ok := exports[path]; !ok && p.ForTest == "" {
				exports[path] = p.Export
			}
		}
		if !p.DepOnly && p.ForTest == "" && !strings.HasSuffix(path, ".test") && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	var out []*Package
	for _, p := range targets {
		files := AbsFiles(p.Dir, p.GoFiles)
		if tests {
			files = append(files, AbsFiles(p.Dir, p.TestGoFiles)...)
		}
		imp := NewExportImporter(exports, nil)
		pkg, err := Check(p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if tests && len(p.XTestGoFiles) > 0 {
			// The external test package imports the test-augmented
			// package under test when one was built.
			xexports := exports
			if aug, ok := forTest[p.ImportPath]; ok {
				xexports = make(map[string]string, len(exports)+1)
				for k, v := range exports {
					xexports[k] = v
				}
				xexports[p.ImportPath] = aug
			}
			ximp := NewExportImporter(xexports, nil)
			xpkg, err := Check(p.ImportPath+"_test", AbsFiles(p.Dir, p.XTestGoFiles), ximp)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	return out, nil
}

func AbsFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// ---- fixture loading for the linttest harness ----

// stdExports lazily resolves export data for standard-library imports
// of fixture packages via one `go list -export` call per miss.
var stdExports = make(map[string]string)

// StdImporter returns an importer for fixture packages whose imports
// are standard-library only. Export data is produced on demand by the
// local go toolchain (compiled into the build cache, so this works
// offline).
func StdImporter() *ExportImporter {
	imp := NewExportImporter(stdExports, nil)
	imp.fallback = func(path string) (string, error) {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return "", fmt.Errorf("go list -export %s: %v: %s", path, err, ee.Stderr)
			}
			return "", fmt.Errorf("go list -export %s: %v", path, err)
		}
		file := strings.TrimSpace(string(out))
		if file == "" {
			return "", fmt.Errorf("go list -export %s: no export data", path)
		}
		return file, nil
	}
	return imp
}

// Dir parses and type-checks all .go files under dir as one package
// with the given import path (files declaring a "_test"-suffixed
// package name are grouped into a second, external-test unit that may
// not reference unexported symbols of the first; fixture packages
// currently keep everything in-package, so Dir rejects that split to
// stay simple).
func Dir(dir, path string, imp types.Importer) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	return Check(path, files, imp)
}
