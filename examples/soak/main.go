// Soak: a duration-bounded churn-and-crash torture loop. Each iteration
// interleaves two stress phases until the time budget runs out:
//
//   - In-process churn: a simulated cluster under a MovingAdversary
//     (the Section 7 adaptive adversary relocating its corruptions every
//     epoch) plus explicit crash/repair/rejoin churn, every round checked
//     correct.
//
//   - Process crash-restart: a fresh durable csmnode cluster is
//     SIGKILLed mid-workload a random number of times at random moments,
//     then run to completion — every node must land bit-identical to the
//     in-memory oracle.
//
// The defaults are a CI-sized smoke (`make soak-short`, seconds); `make
// soak` runs the same loop for minutes. Any incorrect round, digest
// divergence, failed recovery, or hang (a deadline guards the loop)
// exits non-zero.
//
//	go build -o bin/csmnode ./cmd/csmnode
//	go run ./examples/soak -csmnode bin/csmnode -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"codedsm"
	"codedsm/internal/nodeapi"
	"codedsm/internal/procharness"
)

const (
	churnNodes    = 16
	churnMachines = 4
	churnBudget   = 3

	procNodes    = 4
	procMachines = 2
	procDegree   = 2
	procRounds   = 40
)

func main() {
	csmnode := flag.String("csmnode", "", "path to the csmnode binary (empty: skip the process-restart phase)")
	duration := flag.Duration("duration", 15*time.Second, "soak time budget")
	seed := flag.Uint64("seed", 99, "base seed; each iteration derives its own")
	flag.Parse()
	log.SetFlags(0)

	// The budget bounds when new iterations start; the deadline catches a
	// hung iteration well after the budget.
	stop := time.Now().Add(*duration)
	deadline := time.AfterFunc(*duration+4*time.Minute, func() {
		log.Fatal("FAIL: an iteration hung past the soak budget")
	})
	defer deadline.Stop()

	gold := codedsm.NewGoldilocks()
	rng := rand.New(rand.NewSource(int64(*seed)))
	iters := 0
	for ; iters == 0 || time.Now().Before(stop); iters++ {
		iterSeed := *seed + uint64(iters)*7919
		churnSoak(gold, iterSeed)
		if *csmnode != "" {
			crashSoak(gold, *csmnode, iterSeed, rng)
		}
	}
	log.Printf("PASS: %d soak iterations in %v", iters, *duration)
}

// churnSoak runs one in-process phase in two independent clusters: one
// under a moving adversary relocating its full corruption budget every
// other round, one doing crash/repair/rejoin churn next to a static
// liar. Every round's decoded outputs are checked correct. The two are
// separate because the adversary picks targets blindly — corrupting an
// explicitly crashed node is (correctly) rejected by the engine.
func churnSoak(gold codedsm.Goldilocks, seed uint64) {
	adversary, err := codedsm.MovingAdversary(churnNodes, churnBudget, 2, codedsm.WrongResult, seed)
	if err != nil {
		log.Fatal(err)
	}
	moving, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(churnNodes), codedsm.WithMachines(churnMachines),
		codedsm.WithFaults(churnBudget), codedsm.WithChurnFn(adversary),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	wl := codedsm.RandomWorkload[uint64](gold, 8, churnMachines, 1, seed)
	mustCorrect(moving.Run(wl))

	liar := int(seed % uint64(churnNodes))
	crashing, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(churnNodes), codedsm.WithMachines(churnMachines),
		codedsm.WithFaults(churnBudget), codedsm.WithByzantineNode(liar, codedsm.WrongResult),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	crashed := int((seed >> 8) % uint64(churnNodes))
	mustCorrect(crashing.Run(wl[:4]))
	if err := crashing.Crash(crashed); err != nil {
		log.Fatalf("crash node %d: %v", crashed, err)
	}
	mustCorrect(crashing.Run(wl[4:6]))
	if err := crashing.Rejoin(crashed); err != nil {
		log.Fatalf("rejoin node %d: %v", crashed, err)
	}
	mustCorrect(crashing.Run(wl[6:]))
}

func mustCorrect(results []*codedsm.RoundResult[uint64], err error) {
	if err != nil {
		log.Fatal(err)
	}
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("churn round %d incorrect", r)
		}
	}
}

// crashSoak runs one process phase: a fresh durable cluster, a random
// number of whole-cluster SIGKILLs at random moments, then a final run
// whose every node must print the oracle digest at the full round count.
func crashSoak(gold codedsm.Goldilocks, csmnode string, seed uint64, rng *rand.Rand) {
	workload := codedsm.RandomWorkload[uint64](gold, procRounds, procMachines, 1, seed)
	oracle := oracleDigest(gold, workload, seed)

	dir, err := os.MkdirTemp("", "csmnode-soak-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	h := procharness.New(csmnode, dir, procNodes)
	if err := h.Bootstrap(
		"-k", fmt.Sprint(procMachines), "-degree", fmt.Sprint(procDegree),
		"-seed", fmt.Sprint(seed),
		"-data-dir", filepath.Join(dir, "data"), "-snapshot-every", "4"); err != nil {
		log.Fatal(err)
	}
	node0Data := filepath.Join(dir, "data", "node0")
	kills := 1 + rng.Intn(3)
	for cycle := 0; cycle < kills; cycle++ {
		if err := h.StartAll(procRounds, nil); err != nil {
			log.Fatal(err)
		}
		h.WaitWALProgress(node0Data, int64(64*(cycle+1)), 20*time.Second)
		time.Sleep(time.Duration(rng.Intn(250)) * time.Millisecond)
		h.KillAll()
	}
	if err := h.StartAll(procRounds, nil); err != nil {
		log.Fatal(err)
	}
	if err := h.AwaitAll(oracle, procRounds); err != nil {
		log.Fatalf("FAIL (seed %d, %d kills): %v", seed, kills, err)
	}
	log.Printf("soak:     seed %d survived %d whole-cluster SIGKILLs, digest bit-identical", seed, kills)
}

// oracleDigest runs the workload on the simulated cluster and returns
// the canonical digest of its outputs.
func oracleDigest(gold codedsm.Goldilocks, workload [][][]uint64, seed uint64) string {
	cluster, err := codedsm.Open(gold,
		func(f codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewPolynomialRegister(f, procDegree)
		},
		codedsm.WithNodes(procNodes),
		codedsm.WithMachines(procMachines),
		codedsm.WithFaults(0),
		codedsm.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	results, err := cluster.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	digest := nodeapi.NewDigest()
	for r, res := range results {
		if !res.Correct {
			log.Fatalf("oracle round %d incorrect", r)
		}
		digest.AddRound(r, res.Outputs)
	}
	return digest.Sum()
}
