package lcc

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
)

// buildRound fabricates one coded execution round: K states and commands,
// degree-d results at all N nodes, with faults corrupted coordinates.
func buildRound(t *testing.T, k, n, d, faults int) (*Code[uint64], [][]uint64) {
	t.Helper()
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	code, err := New(ring, k, n)
	if err != nil {
		t.Fatal(err)
	}
	states := make([][]uint64, k)
	cmds := make([][]uint64, k)
	for i := 0; i < k; i++ {
		states[i] = []uint64{uint64(i + 1), uint64(2*i + 1)}
		cmds[i] = []uint64{uint64(7 * (i + 1)), uint64(i + 3)}
	}
	codedStates, err := code.EncodeVectors(states)
	if err != nil {
		t.Fatal(err)
	}
	codedCmds, err := code.EncodeVectors(cmds)
	if err != nil {
		t.Fatal(err)
	}
	// Elementwise degree-d "result": state^d + cmd (componentwise).
	results := make([][]uint64, n)
	for i := range results {
		row := make([]uint64, len(codedStates[i]))
		for j := range row {
			v := uint64(1)
			for e := 0; e < d; e++ {
				v = gold.Mul(v, codedStates[i][j])
			}
			row[j] = gold.Add(v, codedCmds[i][j])
		}
		results[i] = row
	}
	for i := 0; i < faults; i++ {
		results[(i*3+1)%n][0]++
	}
	return code, results
}

func TestEncodeVectorsParallelMatchesSequential(t *testing.T) {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	code, err := New(ring, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	values := make([][]uint64, 8)
	for i := range values {
		values[i] = []uint64{uint64(i + 1), uint64(3 * i), uint64(i * i)}
	}
	seq, err := code.EncodeVectors(values)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 100} {
		par, err := code.EncodeVectorsParallel(values, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel encode diverged", workers)
		}
	}
}

func TestDecodeOutputsParallelMatchesSequential(t *testing.T) {
	const k, n, d = 4, 31, 2
	faults := SyncMaxFaults(n, k, d)
	code, results := buildRound(t, k, n, d, faults)
	seq, err := code.DecodeOutputs(results, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.FaultyNodes) != faults {
		t.Fatalf("detected %d faulty nodes, injected %d", len(seq.FaultyNodes), faults)
	}
	for _, workers := range []int{2, 8} {
		par, err := code.DecodeOutputsParallel(results, d, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel decode diverged", workers)
		}
	}
}

func TestDecodeOutputsSubsetParallelMatchesSequential(t *testing.T) {
	const k, n, d = 3, 24, 1
	code, results := buildRound(t, k, n, d, 2)
	// Proper subset: drop the last 4 nodes.
	indices := make([]int, n-4)
	sub := make([][]uint64, n-4)
	for i := range indices {
		indices[i] = i
		sub[i] = results[i]
	}
	seq, err := code.DecodeOutputsSubset(indices, sub, d)
	if err != nil {
		t.Fatal(err)
	}
	par, err := code.DecodeOutputsSubsetParallel(indices, sub, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("subset parallel decode diverged")
	}
	// Full-index "subset" must agree with the plain decode (fast path).
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	whole, err := code.DecodeOutputs(results, d)
	if err != nil {
		t.Fatal(err)
	}
	asSubset, err := code.DecodeOutputsSubsetParallel(full, results, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole, asSubset) {
		t.Fatal("full-index subset decode diverged from plain decode")
	}
	if _, err := code.DecodeOutputsSubsetParallel(nil, results, d, 4); err == nil {
		t.Fatal("nil indices must fail")
	}
}

// TestConcurrentDecodesShareOneCode exercises the codesByDim cache under
// concurrent decoders — the cluster's nodes decode the same round in
// parallel against one shared Code (run with -race).
func TestConcurrentDecodesShareOneCode(t *testing.T) {
	const k, n, d = 3, 20, 2
	code, results := buildRound(t, k, n, d, 1)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Alternate degrees so the cache is hit and populated while
			// decodes are in flight.
			if g%2 == 0 {
				_, errs[g] = code.DecodeOutputs(results, d)
			} else {
				_, errs[g] = code.DecodeOutputs(results, d+1)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func BenchmarkDecodeOutputsParallel(b *testing.B) {
	const k, n, d = 8, 64, 1
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	code, err := New(ring, k, n)
	if err != nil {
		b.Fatal(err)
	}
	const l = 16 // wide vectors: 16 component codewords to decode
	values := make([][]uint64, k)
	for i := range values {
		values[i] = make([]uint64, l)
		for j := range values[i] {
			values[i][j] = uint64(i*l + j + 1)
		}
	}
	results, err := code.EncodeVectors(values)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < SyncMaxFaults(n, k, 1); i++ {
		results[(i*3+2)%n][i%l]++
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := code.DecodeOutputsParallel(results, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
