package csm

import (
	"fmt"
	"sort"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// resultKind tags execution-phase messages.
const resultKind = "csm-result"

// node is one CSM compute node.
type node[E comparable] struct {
	cluster    *Cluster[E]
	id         int
	ep         *transport.Endpoint
	behavior   Behavior
	codedState []E

	// per-round collection state
	received map[int][]E // sender -> result vector
	decoded  *nodeDecode[E]

	// delegated-mode state (Section 6.2)
	dlgCoded [][]E        // worker only: the coded commands it produced
	dlgProof *dlgProofMsg // the proof this node holds for the round
}

// nodeDecode is a node's decoded view of one round.
type nodeDecode[E comparable] struct {
	outputs    [][]E // K output vectors
	nextStates [][]E // K next-state vectors
	faulty     []int
}

// computeResult runs the coded execution step: encode the commands with the
// node's Lagrange coefficients and apply f on coded state and command.
func (n *node[E]) computeResult(cmds [][]E) ([]E, error) {
	c := n.cluster
	f := c.counting // all coding arithmetic is counted
	cmdLen := c.tr.CmdLen()
	coded := make([]E, cmdLen)
	for j := 0; j < cmdLen; j++ {
		acc := f.Zero()
		for k := 0; k < c.cfg.K; k++ {
			acc = f.Add(acc, f.Mul(c.code.Coeffs()[n.id][k], cmds[k][j]))
		}
		coded[j] = acc
	}
	return c.tr.ApplyResult(n.codedState, coded)
}

// broadcastResult sends the node's (possibly corrupted) result.
func (n *node[E]) broadcastResult(result []E) error {
	c := n.cluster
	switch n.behavior {
	case Silent:
		return nil
	case WrongResult, BadLeader:
		bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
		payload, err := encodePayload(resultMsg{Round: c.round, Result: c.toWire(bad)})
		if err != nil {
			return err
		}
		n.received[n.id] = bad // a liar is at least self-consistent
		return n.ep.Broadcast(resultKind, payload)
	case Equivocate:
		// A different wrong value to every peer. On a no-equivocation
		// (broadcast) network the transport coerces these to the first.
		for to := 0; to < c.cfg.N; to++ {
			if to == n.id {
				continue
			}
			bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
			payload, err := encodePayload(resultMsg{Round: c.round, Result: c.toWire(bad)})
			if err != nil {
				return err
			}
			if err := n.ep.Send(transport.NodeID(to), resultKind, payload); err != nil {
				return err
			}
		}
		n.received[n.id] = result
		return nil
	default:
		payload, err := encodePayload(resultMsg{Round: c.round, Result: c.toWire(result)})
		if err != nil {
			return err
		}
		n.received[n.id] = result
		return n.ep.Broadcast(resultKind, payload)
	}
}

// collect ingests result messages for the current round.
func (n *node[E]) collect(msgs []transport.Message) {
	c := n.cluster
	for _, m := range msgs {
		if m.Kind != resultKind {
			continue
		}
		var rm resultMsg
		if err := decodePayload(m.Payload, &rm); err != nil {
			continue
		}
		if rm.Round != c.round || len(rm.Result) != c.tr.ResultLen() {
			continue
		}
		n.received[int(m.From)] = c.fromWire(rm.Result)
	}
}

// tryDecode decodes once enough results are available. Synchronous mode
// decodes whatever arrived after the fixed interval (missing results are
// erasures); partially synchronous mode requires at least N-b results.
func (n *node[E]) tryDecode(force bool) (bool, error) {
	c := n.cluster
	need := c.cfg.N - c.cfg.MaxFaults
	if len(n.received) < need {
		return false, nil
	}
	if !force && len(n.received) < c.cfg.N {
		// Wait for more stragglers unless the deadline passed.
		return false, nil
	}
	indices := make([]int, 0, len(n.received))
	for idx := range n.received {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	results := make([][]E, len(indices))
	for i, idx := range indices {
		results[i] = n.received[idx]
	}
	dec, err := c.code.DecodeOutputsSubset(indices, results, c.tr.Degree())
	if err != nil {
		return false, fmt.Errorf("csm: node %d decode: %w", n.id, err)
	}
	outputs := make([][]E, c.cfg.K)
	nextStates := make([][]E, c.cfg.K)
	for k := 0; k < c.cfg.K; k++ {
		next, out, err := c.tr.SplitResult(dec.Outputs[k])
		if err != nil {
			return false, err
		}
		nextStates[k] = next
		outputs[k] = out
	}
	n.decoded = &nodeDecode[E]{outputs: outputs, nextStates: nextStates, faulty: dec.FaultyNodes}
	// Update the coded state: S̃_i(t+1) = Σ_k c_ik Ŝ_k(t+1).
	f := c.counting
	stateLen := c.tr.StateLen()
	newCoded := make([]E, stateLen)
	for j := 0; j < stateLen; j++ {
		acc := f.Zero()
		for k := 0; k < c.cfg.K; k++ {
			acc = f.Add(acc, f.Mul(c.code.Coeffs()[n.id][k], nextStates[k][j]))
		}
		newCoded[j] = acc
	}
	n.codedState = newCoded
	return true, nil
}
