package main

import (
	"testing"

	"codedsm"
)

func TestParseBehavior(t *testing.T) {
	cases := map[string]codedsm.Behavior{
		"wrong":      codedsm.WrongResult,
		"silent":     codedsm.SilentNode,
		"equivocate": codedsm.Equivocate,
		"bad-leader": codedsm.BadLeader,
	}
	for in, want := range cases {
		got, err := parseBehavior(in)
		if err != nil || got != want {
			t.Errorf("parseBehavior(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseBehavior("bogus"); err == nil {
		t.Error("unknown behavior should fail")
	}
}

func TestParseByzantine(t *testing.T) {
	m, err := parseByzantine("1, 3,5", codedsm.WrongResult)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[3] != codedsm.WrongResult {
		t.Errorf("map = %v", m)
	}
	if m2, err := parseByzantine("", codedsm.WrongResult); err != nil || len(m2) != 0 {
		t.Error("empty list should parse to empty map")
	}
	if _, err := parseByzantine("1,x", codedsm.WrongResult); err == nil {
		t.Error("garbage index should fail")
	}
}

func TestParseConsensus(t *testing.T) {
	for in, want := range map[string]codedsm.ConsensusKind{
		"oracle": codedsm.OracleConsensus, "dolev-strong": codedsm.DolevStrong, "pbft": codedsm.PBFT,
	} {
		got, err := parseConsensus(in)
		if err != nil || got != want {
			t.Errorf("parseConsensus(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseConsensus("raft"); err == nil {
		t.Error("unknown consensus should fail")
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-n", "9", "-k", "2", "-b", "2", "-rounds", "1", "-byz", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "4", "-b", "2", "-d", "1"}); err == nil {
		t.Error("no-capacity run should fail")
	}
	if err := run([]string{"-behavior", "bogus"}); err == nil {
		t.Error("bad behavior should fail")
	}
}
