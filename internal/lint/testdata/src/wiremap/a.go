// Fixture for the wiremap analyzer, loaded under a wire-codec package
// path.
package fixture

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

type batchMsg struct {
	Slot   int
	Rounds map[int][]byte
}

type flatMsg struct {
	Slot  int
	Bytes []byte
}

func renderMap(m map[int]string) string {
	return fmt.Sprintf("%v", m) // want `fmt.Sprintf renders map-typed m`
}

func renderCarrier(v batchMsg) string {
	return fmt.Sprint(v) // want `fmt.Sprint renders map-typed v`
}

func gobCarrier(v batchMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil { // want `gob-encoding map-typed v`
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobFlat(v flatMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil { // no maps anywhere in flatMsg: no finding
		return nil, err
	}
	return buf.Bytes(), nil
}

func renderScalar(n int, s string) string {
	return fmt.Sprintf("%d/%s", n, s) // no finding
}

func annotated(m map[int]string) string {
	//csmlint:allow wiremap(log line for humans; never hashed or sent)
	return fmt.Sprintf("%v", m)
}
