package csm

import (
	"codedsm/internal/pool"
)

// The parallel execution engine fans a round's node-level work across
// worker goroutines while keeping the simulation bit-identical to the
// sequential path. The round is split into phases by what they touch:
//
//   - compute (parallel): every node's coded transition g_i = f(S̃_i, X̃_i)
//     is a pure function of the node's state and the agreed batch; results
//     land in index-addressed slots.
//   - broadcast (sequential): Byzantine lies draw from the cluster RNG and
//     messages enter the lock-step network, both order-sensitive.
//   - decode (parallel): each honest node's Reed-Solomon decode of the
//     collected results is independent; message collection stays on the
//     driving goroutine so inbox draining is ordered.
//   - client/audit (sequential): draws from the cluster RNG.
//
// Shared structures reached from worker goroutines are safe by
// construction: field.Counting uses atomic counters (which commute, so op
// totals are also identical), lcc.Code guards its lazy RS-code cache with
// a mutex, and poly rings/trees are immutable after construction.

// workers returns the effective worker count for node-level fan-out:
// cfg.Parallelism, defaulted and clamped to the cluster size.
func (c *Cluster[E]) workers() int {
	return pool.Clamp(c.cfg.Parallelism, c.cfg.N)
}

// Parallelism reports the effective worker count rounds execute with.
func (c *Cluster[E]) Parallelism() int { return c.workers() }

// computeAllResults runs the compute phase: every node's true coded result
// for the agreed batch, in parallel, index-aligned with c.nodes.
func (c *Cluster[E]) computeAllResults(agreed [][]E) ([][]E, error) {
	results := make([][]E, len(c.nodes))
	err := pool.Run(c.workers(), len(c.nodes), func(i int) error {
		r, err := c.nodes[i].computeResult(agreed)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// tryDecodeAll runs the decode phase for the pending honest nodes in
// parallel and reports whether every one of them now holds a decode. Every
// node is attempted even if one fails — a parallel pool races ahead of an
// error anyway, so the sequential path does the same and the cluster is
// left in an identical state for any worker count, error or not; the
// lowest-index error is reported.
func (c *Cluster[E]) tryDecodeAll(pending []*node[E], force bool) (bool, error) {
	oks := make([]bool, len(pending))
	errs := make([]error, len(pending))
	_ = pool.Run(c.workers(), len(pending), func(i int) error {
		oks[i], errs[i] = pending[i].tryDecode(force)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	for _, ok := range oks {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
