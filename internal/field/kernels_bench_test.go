package field

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// BenchmarkFieldKernels measures each bulk kernel on the native Goldilocks
// implementation against the generic per-element adapter over the same
// field — the devirtualization win in isolation. All kernels are
// allocation-free; b.ReportAllocs makes a regression there fail review.
func BenchmarkFieldKernels(b *testing.B) {
	gold := NewGoldilocks()
	impls := map[string]Bulk[uint64]{
		"native":  gold,
		"generic": AsBulk[uint64](scalarOnly[uint64]{gold}),
	}
	rng := rand.New(rand.NewPCG(31, 32))
	for _, n := range []int{16, 256} {
		x := RandVec[uint64](gold, rng, n)
		y := RandVec[uint64](gold, rng, n)
		for i := range x {
			for x[i] == 0 {
				x[i] = gold.Rand(rng)
			}
		}
		c := gold.Rand(rng)
		dst := make([]uint64, n)
		for _, impl := range []string{"native", "generic"} {
			k := impls[impl]
			kernels := []struct {
				name string
				fn   func()
			}{
				{"AddVec", func() { k.AddVec(dst, x, y) }},
				{"MulVec", func() { k.MulVec(dst, x, y) }},
				{"ScaleAccVec", func() { k.ScaleAccVec(dst, c, x) }},
				{"DotVec", func() { _ = k.DotVec(x, y) }},
				{"HornerVec", func() { k.HornerVec(dst, x, c) }},
				{"BatchInvInto", func() {
					if err := k.BatchInvInto(dst, x); err != nil {
						b.Fatal(err)
					}
				}},
			}
			for _, kn := range kernels {
				b.Run(fmt.Sprintf("%s/%s/n=%d", kn.name, impl, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						kn.fn()
					}
				})
			}
		}
	}
}
