package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow flags inner short declarations that shadow an outer variable
// of the identical type when the outer variable is still used after
// the shadowing scope ends — the pattern where a `:=` silently splits
// one logical variable into two and a later read sees a stale value.
// This is a stdlib-only reimplementation of the x/tools `shadow`
// vet check (which cannot be vendored here: the module builds with no
// external dependencies), with two deliberate narrowings that keep it
// quiet enough to enforce:
//
//   - only type-identical shadows are flagged (a shadow with a new
//     type is almost always intentional);
//   - `err` is exempt — guard-clause `if err := f(); err != nil`
//     shadowing is idiomatic Go and not a correctness hazard.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc: "flag declarations that shadow an outer variable of identical type while " +
		"the outer variable is used after the inner scope ends",
	Run: runShadow,
}

func runShadow(pass *Pass) error {
	// Reverse index: every use position of every object.
	uses := make(map[types.Object][]token.Pos)
	for id, obj := range pass.Info.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkShadow(pass, id, uses)
					}
				}
			case *ast.RangeStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						checkShadow(pass, id, uses)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkShadow(pass *Pass, id *ast.Ident, uses map[types.Object][]token.Pos) {
	if id.Name == "_" || id.Name == "err" {
		return
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		return // reuse in a multi-assign :=, not a new declaration
	}
	inner := pass.Pkg.Scope().Innermost(id.Pos())
	if inner == nil || inner.Parent() == nil {
		return
	}
	outerScope, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
		return // shadowing a package-level var or a non-variable is a different disease
	}
	if outer.IsField() || !types.Identical(obj.Type(), outer.Type()) {
		return
	}
	// Only a hazard if the outer variable is read again once the
	// shadow goes out of scope.
	for _, p := range uses[outer] {
		if p > inner.End() {
			pass.Reportf(id.Pos(),
				"declaration of %q shadows a %s declared at %s that is used after this scope ends",
				id.Name, obj.Type(), pass.Fset.Position(outer.Pos()))
			return
		}
	}
}
