package nodeapi

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash"
)

// Digest accumulates a canonical run digest over decoded outputs: every
// output vector is absorbed as (round, machine, length, elements), all
// little-endian uint64, in (round, machine) order. Every honest node of a
// cluster — and the in-memory oracle run on the same workload — produces
// the same digest, which is the multi-process smoke test's equality
// check.
type Digest struct {
	h hash.Hash
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: sha256.New()} }

// Add absorbs one machine's output for one round. Call in (round,
// machine) order.
func (d *Digest) Add(round, machine int, output []uint64) {
	var buf [8]byte
	for _, v := range []uint64{uint64(round), uint64(machine), uint64(len(output))} {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.h.Write(buf[:])
	}
	for _, v := range output {
		binary.LittleEndian.PutUint64(buf[:], v)
		d.h.Write(buf[:])
	}
}

// AddRound absorbs a whole round's outputs in machine order.
func (d *Digest) AddRound(round int, outputs [][]uint64) {
	for k, out := range outputs {
		d.Add(round, k, out)
	}
}

// Sum returns the hex digest of everything absorbed so far.
func (d *Digest) Sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

// MarshalBinary captures the digest's running state (the standard
// library's SHA-256 supports this), so a durable node can persist it
// per round and resume the digest across a crash-restart.
func (d *Digest) MarshalBinary() ([]byte, error) {
	m, ok := d.h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, errors.New("nodeapi: digest hash does not support marshaling")
	}
	return m.MarshalBinary()
}

// UnmarshalBinary restores a digest state captured by MarshalBinary.
// An empty input leaves the digest fresh.
func (d *Digest) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	u, ok := d.h.(encoding.BinaryUnmarshaler)
	if !ok {
		return errors.New("nodeapi: digest hash does not support unmarshaling")
	}
	return u.UnmarshalBinary(data)
}
