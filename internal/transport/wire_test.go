package transport

import (
	"bytes"
	"testing"
)

// TestMessageCodecRoundTrip pins the wire codec: every field survives
// encode/decode bit-for-bit.
func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{From: 3, To: 7, Round: 42, Kind: "csm-result", Payload: []byte{1, 2, 3}, Sig: bytes.Repeat([]byte{9}, 64)},
		{From: 0, To: 0, Round: 0, Kind: "", Payload: nil, Sig: nil},
		{From: 15, To: 1, Round: 1 << 30, Kind: "k", Payload: bytes.Repeat([]byte{0xff}, 1024), Sig: []byte{1}},
	}
	for i, m := range msgs {
		body, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		got, err := UnmarshalMessage(body)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got.From != m.From || got.To != m.To || got.Round != m.Round || got.Kind != m.Kind ||
			!bytes.Equal(got.Payload, m.Payload) || !bytes.Equal(got.Sig, m.Sig) {
			t.Fatalf("msg %d: round-trip mismatch: sent %+v got %+v", i, m, got)
		}
	}
}

// TestMessageCodecRejectsMalformed exercises the length checks: every
// truncation of a valid encoding must error, never panic or mis-parse.
func TestMessageCodecRejectsMalformed(t *testing.T) {
	m := Message{From: 2, To: 5, Round: 9, Kind: "csm-result", Payload: []byte("payload"), Sig: bytes.Repeat([]byte{7}, 64)}
	body, err := AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := UnmarshalMessage(body[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	// Trailing garbage must be rejected too: a frame carries exactly one
	// message.
	if _, err := UnmarshalMessage(append(append([]byte(nil), body...), 0xaa)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestWireCodecPreservesSimulatedSignatures is the codec-equivalence
// contract: a message signed inside the simulated network still verifies
// — against the same deterministic cluster keys — after a round-trip
// through the TCP wire codec. Every byte the TCP path exchanges therefore
// carries exactly the signed envelope the simulated oracle uses.
func TestWireCodecPreservesSimulatedSignatures(t *testing.T) {
	net, err := New(Config{N: 4, Mode: Sync, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Broadcast("csm-result", []byte("coded-result-payload")); err != nil {
		t.Fatal(err)
	}
	net.Step()
	rx, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	msgs := rx.Receive()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	body, err := AppendMessage(nil, msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Verify(got) {
		t.Fatal("simulated-network signature does not verify after wire round-trip")
	}
	// And the TCP side derives the identical keys from the same seed.
	pubs, _ := DeriveKeys(99, 4)
	for i, pub := range pubs {
		netPub, err := net.PublicKey(NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pub, netPub) {
			t.Fatalf("node %d: DeriveKeys public key differs from the simulated network's", i)
		}
	}
}

// TestHelloRoundTrip covers the connection handshake frame.
func TestHelloRoundTrip(t *testing.T) {
	net, err := New(Config{N: 5, Mode: Sync, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	body := helloBody(3, ep.SignBlob)
	id, err := parseHello(body, 5, net.VerifyBlob)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("hello parsed as node %d, want 3", id)
	}
	// A different claimed id must fail verification.
	forged := append([]byte(nil), body...)
	forged[4] = 1 // claim node 1 with node 3's signature
	if _, err := parseHello(forged, 5, net.VerifyBlob); err == nil {
		t.Fatal("forged hello accepted")
	}
}

// TestFrameReaderCaps ensures an oversized frame announcement errors out
// before any allocation.
func TestFrameReaderCaps(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, frameData}) // ~4 GiB announcement
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
