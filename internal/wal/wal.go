// Package wal provides the durability layer for the coded state machine:
// an append-only, CRC-framed, length-prefixed record log plus atomically
// rotated snapshots. The framing follows the same fixed binary
// conventions as internal/transport/wire.go — little-endian fixed-width
// headers, a magic prefix, and hard caps checked before any allocation —
// so a WAL segment is as self-describing as a wire frame.
//
// On-disk record layout (after an 8-byte file header):
//
//	uint32 LE  body length (type byte + payload)
//	uint32 LE  CRC-32C (Castagnoli) over the body
//	byte       record type
//	[]byte     payload
//
// A torn or corrupt tail — a partial header, a short body, or a CRC
// mismatch — terminates a scan without error: recovery keeps every
// record up to the last valid one and Open truncates the tail so the
// log is append-clean again. Corruption is indistinguishable from a
// torn write by design; the caller's snapshot + replay protocol must
// tolerate losing a suffix, never a middle.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic prefixes a WAL segment file. The trailing byte versions the
// format; bumping it invalidates old segments.
var Magic = [8]byte{'C', 'S', 'M', 'W', 'A', 'L', '1', '\n'}

const (
	headerLen    = 8 // len(Magic)
	recordHdrLen = 8 // uint32 length + uint32 crc
	// MaxRecord caps a single record body. Mirrors the transport's
	// frame cap: anything larger is treated as corruption, not data.
	MaxRecord = 16 << 20
)

var (
	// ErrTooLarge is returned by Append for a record over MaxRecord.
	ErrTooLarge = errors.New("wal: record exceeds size cap")
	// ErrBadHeader is returned by Open/Scan when a file exists but does
	// not start with the WAL magic — a foreign or smashed file, not a
	// torn tail, so it is an error rather than silent truncation.
	ErrBadHeader = errors.New("wal: bad file header")
)

// castagnoli is the CRC-32C table; same polynomial family the storage
// world uses for torn-write detection.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append. Slowest, loses nothing.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves syncing to the OS (and explicit Sync calls).
	// A crash can lose a suffix of acknowledged appends; recovery
	// still works because the tail is discarded, but the caller must
	// be able to re-derive lost rounds from peers.
	SyncNever
)

// Record is one decoded WAL entry.
type Record struct {
	Type    byte
	Payload []byte
}

// Log is an append-only record log backed by a single segment file.
type Log struct {
	f      *os.File
	path   string
	policy SyncPolicy
	size   int64
	buf    []byte
}

// Open opens (creating if absent) the segment at path, scans it for
// valid records, truncates any torn tail, and returns the log
// positioned for append together with the records that survived.
// Payload slices are owned by the caller.
func Open(path string, policy SyncPolicy) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{f: f, path: path, policy: policy}
	if info.Size() == 0 {
		if _, err := f.Write(Magic[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := l.maybeSync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size = headerLen
		return l, nil, nil
	}
	var recs []Record
	end, err := Scan(f, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if end < info.Size() {
		// Torn or corrupt tail: discard everything after the last
		// valid record so appends resume from a clean boundary.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l.size = end
	return l, recs, nil
}

// Scan reads records from r, invoking fn for each valid one, and
// returns the byte offset just past the last valid record. A torn or
// corrupt tail ends the scan silently; fn errors and underlying read
// errors (other than EOF) are returned. A missing or wrong magic
// header yields ErrBadHeader.
func Scan(r io.Reader, fn func(Record) error) (int64, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, ErrBadHeader
		}
		return 0, err
	}
	if hdr != Magic {
		return 0, ErrBadHeader
	}
	off := int64(headerLen)
	var rh [recordHdrLen]byte
	for {
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil // torn header: stop at last valid record
			}
			return off, err
		}
		n := binary.LittleEndian.Uint32(rh[0:4])
		sum := binary.LittleEndian.Uint32(rh[4:8])
		if n == 0 || n > MaxRecord+1 {
			return off, nil // implausible length: treat as corruption
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil // torn body
			}
			return off, err
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return off, nil // bit rot or torn overwrite
		}
		if err := fn(Record{Type: body[0], Payload: body[1:]}); err != nil {
			return off, err
		}
		off += recordHdrLen + int64(n)
	}
}

// Append writes one record. Under SyncAlways it is durable when Append
// returns. The payload may be reused by the caller afterwards.
func (l *Log) Append(typ byte, payload []byte) error {
	if len(payload)+1 > MaxRecord+1 {
		return ErrTooLarge
	}
	n := 1 + len(payload)
	need := recordHdrLen + n
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	buf := l.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[recordHdrLen] = typ
	copy(buf[recordHdrLen+1:], payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[recordHdrLen:], castagnoli))

	fire(CrashBeforeAppend)
	if hookInstalled() {
		// Split the write so a mid-record crash hook observes a
		// genuinely torn record on disk, not an atomic all-or-nothing.
		half := len(buf) / 2
		if _, err := l.f.Write(buf[:half]); err != nil {
			return err
		}
		fire(CrashMidRecord)
		if _, err := l.f.Write(buf[half:]); err != nil {
			return err
		}
	} else if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(need)
	return l.maybeSync()
}

func (l *Log) maybeSync() error {
	if l.policy != SyncAlways {
		return nil
	}
	fire(CrashBeforeSync)
	return l.f.Sync()
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error { return l.f.Sync() }

// Size reports the current segment size in bytes, header included.
func (l *Log) Size() int64 { return l.size }

// Path reports the segment file path.
func (l *Log) Path() string { return l.path }

// Close syncs (under SyncAlways appends are already durable; this
// covers SyncNever) and closes the segment.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
