// Package field provides the finite-field arithmetic underlying the Coded
// State Machine: a fast NTT-friendly prime field GF(p) with p = 2^64-2^32+1
// (the "Goldilocks" prime), binary extension fields GF(2^m) used for Boolean
// state machines (Appendix A of the paper), and an operation-counting
// decorator used to measure throughput in the unit the paper defines —
// "number of additions and multiplications in F" (Section 2.2).
package field

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// ErrDivisionByZero is returned by Inv and Div when the divisor is zero.
var ErrDivisionByZero = errors.New("field: division by zero")

// Field is the abstract finite field over elements of type E. All CSM coding
// machinery (polynomials, Reed-Solomon, Lagrange coding) is generic over a
// Field so that the same code runs over GF(p) for arithmetic state machines
// and over GF(2^m) for Boolean state machines.
//
// Implementations must keep elements canonical: two equal field values must
// compare equal with ==, so E can be used as a map key and with
// reflect.DeepEqual in tests.
type Field[E comparable] interface {
	// Name identifies the field, e.g. "GF(2^64-2^32+1)".
	Name() string
	// Zero returns the additive identity.
	Zero() E
	// One returns the multiplicative identity.
	One() E
	// FromUint64 maps v into the field (reduced as appropriate).
	FromUint64(v uint64) E
	// Uint64 returns the canonical integer representation of e.
	Uint64(e E) uint64
	// Add returns a + b.
	Add(a, b E) E
	// Sub returns a - b.
	Sub(a, b E) E
	// Neg returns -a.
	Neg(a E) E
	// Mul returns a * b.
	Mul(a, b E) E
	// Inv returns the multiplicative inverse of a, or ErrDivisionByZero.
	Inv(a E) (E, error)
	// Equal reports whether a == b.
	Equal(a, b E) bool
	// IsZero reports whether a is the additive identity.
	IsZero(a E) bool
	// Rand returns a uniformly random field element.
	Rand(r *rand.Rand) E
	// Elements returns n pairwise-distinct field elements. It returns an
	// error if the field has fewer than n elements. The sequence is
	// deterministic: Elements(n) is a prefix of Elements(n+1).
	Elements(n int) ([]E, error)
}

// NTTField is implemented by fields with a large power-of-two multiplicative
// subgroup, enabling O(n log n) polynomial multiplication. The Goldilocks
// field implements it; GF(2^m) does not (its multiplicative order 2^m-1 is
// odd).
type NTTField[E comparable] interface {
	Field[E]
	// RootOfUnity returns a primitive root of unity of the given order.
	// order must be a power of two supported by the field.
	RootOfUnity(order uint64) (E, error)
}

// Div returns a/b in f, or ErrDivisionByZero.
func Div[E comparable](f Field[E], a, b E) (E, error) {
	bi, err := f.Inv(b)
	if err != nil {
		var zero E
		return zero, err
	}
	return f.Mul(a, bi), nil
}

// Exp returns base^e by square-and-multiply.
func Exp[E comparable](f Field[E], base E, e uint64) E {
	result := f.One()
	acc := base
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = f.Mul(result, acc)
		}
		acc = f.Mul(acc, acc)
	}
	return result
}

// BatchInv inverts every element of xs using Montgomery's trick: one field
// inversion plus 3(n-1) multiplications. It returns ErrDivisionByZero if any
// element is zero (identifying the first offending index in the error).
// Allocation-sensitive callers should resolve AsBulk once and use
// Bulk.BatchInvInto directly.
func BatchInv[E comparable](f Field[E], xs []E) ([]E, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	out := make([]E, len(xs))
	if err := AsBulk(f).BatchInvInto(out, xs); err != nil {
		return nil, err
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors over f.
func Dot[E comparable](f Field[E], a, b []E) (E, error) {
	if len(a) != len(b) {
		var zero E
		return zero, fmt.Errorf("field: dot product length mismatch %d != %d", len(a), len(b))
	}
	return AsBulk(f).DotVec(a, b), nil
}

// VecAdd returns a + b componentwise.
func VecAdd[E comparable](f Field[E], a, b []E) ([]E, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("field: vector add length mismatch %d != %d", len(a), len(b))
	}
	out := make([]E, len(a))
	AsBulk(f).AddVec(out, a, b)
	return out, nil
}

// VecScale returns c * v componentwise.
func VecScale[E comparable](f Field[E], c E, v []E) []E {
	out := make([]E, len(v))
	AsBulk(f).ScaleVec(out, c, v)
	return out
}

// VecEqual reports componentwise equality of a and b.
func VecEqual[E comparable](f Field[E], a, b []E) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// RandVec returns a vector of n uniformly random elements.
func RandVec[E comparable](f Field[E], r *rand.Rand, n int) []E {
	out := make([]E, n)
	for i := range out {
		out[i] = f.Rand(r)
	}
	return out
}

// ZeroVec returns a vector of n zero elements.
func ZeroVec[E comparable](f Field[E], n int) []E {
	out := make([]E, n)
	for i := range out {
		out[i] = f.Zero()
	}
	return out
}
