package main

import (
	"testing"

	"codedsm"
)

func TestParseBehavior(t *testing.T) {
	cases := map[string]codedsm.Behavior{
		"wrong":      codedsm.WrongResult,
		"silent":     codedsm.SilentNode,
		"equivocate": codedsm.Equivocate,
		"bad-leader": codedsm.BadLeader,
	}
	for in, want := range cases {
		got, err := parseBehavior(in)
		if err != nil || got != want {
			t.Errorf("parseBehavior(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseBehavior("bogus"); err == nil {
		t.Error("unknown behavior should fail")
	}
}

func TestParseByzantine(t *testing.T) {
	m, err := parseByzantine("1, 3,5", codedsm.WrongResult)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[3] != codedsm.WrongResult {
		t.Errorf("map = %v", m)
	}
	if m2, err := parseByzantine("", codedsm.WrongResult); err != nil || len(m2) != 0 {
		t.Error("empty list should parse to empty map")
	}
	if _, err := parseByzantine("1,x", codedsm.WrongResult); err == nil {
		t.Error("garbage index should fail")
	}
}

func TestParseConsensus(t *testing.T) {
	for in, want := range map[string]codedsm.ConsensusKind{
		"oracle": codedsm.OracleConsensus, "dolev-strong": codedsm.DolevStrong, "pbft": codedsm.PBFT,
	} {
		got, err := parseConsensus(in)
		if err != nil || got != want {
			t.Errorf("parseConsensus(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseConsensus("raft"); err == nil {
		t.Error("unknown consensus should fail")
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-n", "9", "-k", "2", "-b", "2", "-rounds", "1", "-byz", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "4", "-b", "2", "-d", "1"}); err == nil {
		t.Error("no-capacity run should fail")
	}
	if err := run([]string{"-behavior", "bogus"}); err == nil {
		t.Error("bad behavior should fail")
	}
}

func TestParseChurn(t *testing.T) {
	evs, err := parseChurn("1:crash:2, 3:rejoin:2,4:corrupt:5:wrong,6:release:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []codedsm.ChurnEvent{
		{Round: 1, Node: 2, Op: codedsm.ChurnCrash},
		{Round: 3, Node: 2, Op: codedsm.ChurnRejoin},
		{Round: 4, Node: 5, Op: codedsm.ChurnCorrupt, Behavior: codedsm.WrongResult},
		{Round: 6, Node: 5, Op: codedsm.ChurnRelease},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events", len(evs))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	if evs, err := parseChurn(""); err != nil || evs != nil {
		t.Error("empty spec should parse to no schedule")
	}
	for _, bad := range []string{
		"1:crash", "x:crash:1", "1:crash:x", "1:corrupt:2", "1:corrupt:2:bogus",
		"1:explode:2", "1:crash:2:wrong",
	} {
		if _, err := parseChurn(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestRunChurnSmoke(t *testing.T) {
	if err := run([]string{"-n", "12", "-b", "2", "-rounds", "4",
		"-churn", "1:crash:3,3:rejoin:3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-churn", "1:bogus:0"}); err == nil {
		t.Fatal("bad churn spec should fail")
	}
}
