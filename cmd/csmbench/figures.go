package main

import (
	"fmt"

	"codedsm"
	"codedsm/internal/delegate"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
)

// runFig2 reproduces the Figure 2 scenario: K=2 state machines with a
// malicious node. The figure's N=3 cluster is *not* decodable with b=1
// (2b+1 > N - d(K-1)); the minimal safe cluster is N=4.
func runFig2(seed uint64) error {
	gold := codedsm.NewGoldilocks()
	fmt.Println("K=2 machines, d=1; trying N=3 with b=1 (the figure's setup):")
	_, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(3), codedsm.WithMachines(2), codedsm.WithFaults(1),
		codedsm.WithSeed(seed))
	fmt.Printf("  rejected as expected: %v\n", err)
	fmt.Println("minimal safe cluster N=4 (2b+1 = 3 <= N - d(K-1) = 3), node 2 malicious:")
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(4), codedsm.WithMachines(2), codedsm.WithFaults(1),
		codedsm.WithByzantineNode(2, codedsm.WrongResult), codedsm.WithSeed(seed))
	if err != nil {
		return err
	}
	wl := codedsm.RandomWorkload[uint64](gold, 3, 2, 1, seed)
	for r, cmds := range wl {
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			return err
		}
		fmt.Printf("  round %d: correct=%v faulty-detected=%v\n", r, res.Correct, res.FaultyDetected)
	}
	return nil
}

// runFig3 traces the Figure 3 pipeline: Lagrange-coded states, coded
// execution, an erroneous g_2, and Reed-Solomon correction.
func runFig3() error {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	const k, n = 2, 5
	code, err := lcc.New(ring, k, n)
	if err != nil {
		return err
	}
	states := [][]uint64{{10}, {20}}
	fmt.Printf("uncoded states: S1=%d S2=%d at omegas %v\n",
		states[0][0], states[1][0], code.Omegas())
	coded, err := code.EncodeVectors(states)
	if err != nil {
		return err
	}
	for i := range coded {
		fmt.Printf("  node %d stores S~ = u(alpha=%d) = %d\n", i+1, code.Alphas()[i], coded[i][0])
	}
	// Identity transition (d=1): g_i = S~_i; node 2's result is corrupted.
	results := make([][]uint64, n)
	for i := range results {
		results[i] = append([]uint64{}, coded[i]...)
	}
	results[1][0] += 999
	fmt.Printf("node 2 broadcasts erroneous g2 = %d\n", results[1][0])
	dec, err := code.DecodeOutputs(results, 1)
	if err != nil {
		return err
	}
	fmt.Printf("RS decoding recovers h, evaluates at omegas: S1=%d S2=%d; faulty nodes: %v\n",
		dec.Outputs[0][0], dec.Outputs[1][0], dec.FaultyNodes)
	return nil
}

// runFig4 runs the Figure 4 delegated-computing round: the worker encodes,
// the nodes execute, the worker decodes with a tau-set proof, the auditors
// verify — then the same flow with a corrupt worker.
func runFig4() error {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	const k, n = 3, 16
	code, err := lcc.New(ring, k, n)
	if err != nil {
		return err
	}
	tr, err := codedsm.NewQuadraticTally[uint64](gold)
	if err != nil {
		return err
	}
	states := [][]uint64{{1}, {2}, {3}}
	cmds := [][]uint64{{5}, {6}, {7}}
	codedStates, err := code.EncodeVectors(states)
	if err != nil {
		return err
	}
	for _, mode := range []delegate.CorruptMode{delegate.HonestDelegate, delegate.CorruptDecoding} {
		d := delegate.New(ring, code, mode)
		codedCmds, err := d.EncodeCommands(cmds)
		if err != nil {
			return err
		}
		results := make([][]uint64, n)
		for i := range results {
			if results[i], err = tr.ApplyResult(codedStates[i], codedCmds[i]); err != nil {
				return err
			}
		}
		dec, proof, err := d.DecodeWithProof(results, tr.Degree())
		if err != nil {
			return err
		}
		verr := d.VerifyDecodeProof(results, tr.Degree(), proof, dec.Outputs)
		fmt.Printf("worker=%v: proof verification: %v\n", mode, errString(verr))
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ACCEPTED"
	}
	return "REJECTED (" + err.Error() + ")"
}

// runFig5 prints the INTERMIX interactive localization transcript of
// Figure 5 / Algorithm 1.
func runFig5() error {
	gold := field.NewGoldilocks()
	const n, k = 8, 16
	a := make([][]uint64, n)
	for i := range a {
		a[i] = make([]uint64, k)
		for j := range a[i] {
			a[i][j] = uint64(i*k + j + 1)
		}
	}
	x := make([]uint64, k)
	for j := range x {
		x[j] = uint64(j + 3)
	}
	w, err := intermix.NewWorker[uint64](gold, a, x, intermix.ConsistentLiar, 5, 11)
	if err != nil {
		return err
	}
	output := w.Output()
	fmt.Printf("worker publishes Y^ (row 5 corrupted, lie hidden at column 11)\n")
	alert, err := intermix.Audit[uint64](gold, a, x, output, w.Answer)
	if err != nil {
		return err
	}
	if alert == nil {
		return fmt.Errorf("fraud not detected")
	}
	fmt.Printf("auditor recomputes AX, finds row %d wrong; interactive bisection:\n", alert.Row)
	for lvl, st := range alert.Steps {
		fmt.Printf("  level %d: segment [%d,%d), worker claims left=%d right=%d (parent claim %d)\n",
			lvl, st.Lo, st.Hi, st.Left, st.Right, st.Claimed)
	}
	fmt.Printf("verdict: %v at column %d after %d query pairs (zeta path %v)\n",
		alert.Kind, alert.LeafCol, alert.Queries, alert.Path)
	ok := intermix.VerifyAlert[uint64](gold, a, x, alert)
	fmt.Printf("commoner O(1) check: fraud confirmed = %v\n", ok)
	return nil
}

// runRandomAlloc reproduces the Section 7 comparison.
func runRandomAlloc(seed uint64) error {
	const n, k = 60, 15 // q = 4, capture needs 3
	for _, kind := range []codedsm.RandomAllocationExperiment{
		{N: n, K: k, Budget: 3, Kind: codedsm.StaticAdversary, Seed: seed},
		{N: n, K: k, Budget: 3, Kind: codedsm.DynamicAdversary, Seed: seed},
	} {
		frac, err := kind.Run(500)
		if err != nil {
			return err
		}
		fmt.Printf("random allocation, %7v adversary, budget 3 of N=%d: group captured in %.1f%% of trials\n",
			kind.Kind, n, 100*frac)
	}
	fmt.Printf("CSM with the same N=%d, K=%d tolerates %d dynamic corruptions (Table 2 bound)\n",
		n, k, codedsm.SyncMaxFaults(n, k, 1))
	return nil
}

// runCoding prints the Section 6.2 ablation: operation counts of the naive
// distributed encoding versus the delegated worker's quasilinear path.
func runCoding(seed uint64) error {
	fmt.Println("per-component command encoding, K = N/3 (op counts via the counting field):")
	fmt.Println("  N      naive C*X (total)   fast interp+eval (worker)")
	for _, n := range []int{64, 128, 256, 512, 1024} {
		k := n / 3
		counting := field.NewCounting[uint64](field.NewGoldilocks())
		ring := poly.NewRing[uint64](counting)
		code, err := lcc.New(ring, k, n)
		if err != nil {
			return err
		}
		cmds := make([][]uint64, k)
		for i := range cmds {
			cmds[i] = []uint64{uint64(i+1) + seed%97}
		}
		counting.Reset()
		if _, err := code.EncodeVectors(cmds); err != nil {
			return err
		}
		naive := counting.Counts().Total()
		counting.Reset()
		if _, err := code.EncodeVectorsFast(cmds); err != nil {
			return err
		}
		fast := counting.Counts().Total()
		fmt.Printf("  %-6d %-19d %d\n", n, naive, fast)
	}
	fmt.Println("naive grows quadratically (O(N*K)); fast grows quasilinearly (O(N log^2 N)).")
	return nil
}
