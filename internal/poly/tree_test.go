package poly

import (
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
)

func TestSubproductTreeMaster(t *testing.T) {
	r := newGoldRing()
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13} {
		xs, err := r.f.Elements(n)
		if err != nil {
			t.Fatal(err)
		}
		tree := NewSubproductTree(r, xs)
		want := r.FromRootsNaive(xs)
		if !r.Equal(tree.Master(), want) {
			t.Errorf("n=%d: master mismatch", n)
		}
		if len(tree.Points()) != n {
			t.Errorf("n=%d: Points() has %d entries", n, len(tree.Points()))
		}
	}
}

func TestFastEvalManyMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, ring := range []*Ring[uint64]{newGoldRing(), newGF2mRing(t, 10)} {
		for _, n := range []int{1, 2, 7, 16, 33, 100} {
			xs, err := ring.f.Elements(n)
			if err != nil {
				t.Fatal(err)
			}
			p := randPoly(ring, rng, n+5)
			fast, err := ring.FastEvalMany(p, xs)
			if err != nil {
				t.Fatal(err)
			}
			slow := ring.EvalMany(p, xs)
			if !field.VecEqual(ring.f, fast, slow) {
				t.Fatalf("%s n=%d: fast eval != Horner", ring.f.Name(), n)
			}
		}
	}
}

func TestFastEvalLowDegreePoly(t *testing.T) {
	r := newGoldRing()
	xs, _ := r.f.Elements(10)
	// Degree < number of points, including the zero polynomial.
	for _, p := range []Poly[uint64]{nil, {7}, {1, 2}} {
		fast, err := r.FastEvalMany(p, xs)
		if err != nil {
			t.Fatal(err)
		}
		if !field.VecEqual[uint64](r.f, fast, r.EvalMany(p, xs)) {
			t.Fatalf("fast eval mismatch for %v", p)
		}
	}
}

func TestFastInterpolateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, ring := range []*Ring[uint64]{newGoldRing(), newGF2mRing(t, 10)} {
		for _, n := range []int{1, 2, 5, 16, 31, 64} {
			xs, err := ring.f.Elements(n)
			if err != nil {
				t.Fatal(err)
			}
			ys := field.RandVec(ring.f, rng, n)
			fast, err := ring.FastInterpolate(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := ring.Interpolate(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			if !ring.Equal(fast, naive) {
				t.Fatalf("%s n=%d: fast interpolate != naive", ring.f.Name(), n)
			}
		}
	}
}

func TestFastInterpolateDuplicates(t *testing.T) {
	r := newGoldRing()
	if _, err := r.FastInterpolate([]uint64{3, 3}, []uint64{1, 2}); err == nil {
		t.Error("duplicate points should fail")
	}
	if _, err := NewSubproductTree(r, []uint64{1, 2}).Interpolate([]uint64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFastInterpolateEmpty(t *testing.T) {
	r := newGoldRing()
	p, err := NewSubproductTree(r, nil).Interpolate(nil)
	if err != nil || !r.IsZero(p) {
		t.Errorf("empty: %v, %v", p, err)
	}
	vals, err := NewSubproductTree(r, nil).EvalMany(Poly[uint64]{1, 2})
	if err != nil || len(vals) != 0 {
		t.Errorf("empty eval: %v, %v", vals, err)
	}
}

func TestEncodeDecodeRoundTripViaTree(t *testing.T) {
	// Interpolate then re-evaluate: identity on values. This is exactly the
	// worker's encode step in Section 6.2 (interpolate v_t, evaluate at the
	// alphas).
	r := newGoldRing()
	rng := rand.New(rand.NewPCG(15, 16))
	const k, n = 12, 40
	pts, err := r.f.Elements(k + n)
	if err != nil {
		t.Fatal(err)
	}
	omegas, alphas := pts[:k], pts[k:]
	ys := field.RandVec[uint64](r.f, rng, k)
	v, err := r.FastInterpolate(omegas, ys)
	if err != nil {
		t.Fatal(err)
	}
	coded, err := r.FastEvalMany(v, alphas)
	if err != nil {
		t.Fatal(err)
	}
	// Decode: interpolate any k of the coded values together with their
	// alphas must reproduce v.
	v2, err := r.FastInterpolate(alphas[:k], coded[:k])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(v, v2) {
		t.Fatal("round trip through coded evaluations failed")
	}
}

// opCountRing returns a ring whose field counts operations.
func opCountRing() (*Ring[uint64], *field.Counting[uint64]) {
	c := field.NewCounting[uint64](field.NewGoldilocks())
	return NewRing[uint64](c), c
}

func TestFastEvalIsSubquadratic(t *testing.T) {
	// Op-count check backing the Section 6.2 complexity claim: doubling n
	// must grow the cost by clearly less than 4x (quadratic would be 4x).
	rng := rand.New(rand.NewPCG(17, 18))
	cost := func(n int) uint64 {
		ring, counter := opCountRing()
		xs, err := ring.f.Elements(n)
		if err != nil {
			t.Fatal(err)
		}
		p := randPoly(ring, rng, n-1)
		counter.Reset()
		if _, err := ring.FastEvalMany(p, xs); err != nil {
			t.Fatal(err)
		}
		return counter.Counts().Total()
	}
	c1, c2 := cost(256), cost(512)
	ratio := float64(c2) / float64(c1)
	// The leaf-block Horner descent lowers the absolute operation count but
	// trims proportionally more of the linear term, so the measured growth
	// ratio at these small sizes sits slightly above 3; quadratic would be 4.
	if ratio > 3.3 {
		t.Errorf("fast eval cost ratio for doubling n: %.2f (4 would be quadratic)", ratio)
	}
	t.Logf("fast multipoint eval: cost(256)=%d cost(512)=%d ratio=%.2f", c1, c2, ratio)
}
