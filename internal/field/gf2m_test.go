package field

import (
	"math/rand/v2"
	"testing"
)

func TestGF2mConstruction(t *testing.T) {
	for m := uint(2); m <= 16; m++ {
		f, err := NewGF2m(m)
		if err != nil {
			t.Fatalf("NewGF2m(%d): %v", m, err)
		}
		if f.Order() != 1<<m {
			t.Errorf("m=%d: order = %d, want %d", m, f.Order(), 1<<m)
		}
	}
	if _, err := NewGF2m(1); err == nil {
		t.Error("NewGF2m(1) should fail")
	}
	if _, err := NewGF2m(17); err == nil {
		t.Error("NewGF2m(17) should fail")
	}
}

func TestGF2mFieldAxioms(t *testing.T) {
	for _, m := range []uint{2, 4, 8, 16} {
		f, err := NewGF2m(m)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(f.Name(), func(t *testing.T) {
			testFieldAxioms[uint64](t, f, uint64(m))
		})
	}
}

func TestGF2mExhaustiveSmall(t *testing.T) {
	// In GF(2^4), exhaustively verify multiplication against carryless
	// schoolbook multiplication with reduction.
	f, err := NewGF2m(4)
	if err != nil {
		t.Fatal(err)
	}
	ref := func(a, b uint64) uint64 {
		var acc uint64
		for i := 0; i < 4; i++ {
			if b&(1<<i) != 0 {
				acc ^= a << i
			}
		}
		// Reduce modulo x^4 + x + 1 (0x13).
		for i := 7; i >= 4; i-- {
			if acc&(1<<i) != 0 {
				acc ^= 0x13 << (i - 4)
			}
		}
		return acc
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got, want := f.Mul(a, b), ref(a, b); got != want {
				t.Errorf("GF(16): %d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestGF2mInvExhaustive(t *testing.T) {
	f, err := NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Inv(0); err == nil {
		t.Fatal("Inv(0) should fail")
	}
	for a := uint64(1); a < 256; a++ {
		inv, err := f.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if f.Mul(a, inv) != 1 {
			t.Fatalf("%d * %d != 1", a, inv)
		}
	}
}

func TestGF2mCharacteristicTwo(t *testing.T) {
	f, err := NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 100; i++ {
		a := f.Rand(r)
		if f.Add(a, a) != 0 {
			t.Fatalf("a + a != 0 for a=%d", a)
		}
		if f.Neg(a) != a {
			t.Fatalf("-a != a for a=%d", a)
		}
	}
}

func TestGF2mElementsBound(t *testing.T) {
	f, err := NewGF2m(4)
	if err != nil {
		t.Fatal(err)
	}
	elems, err := f.Elements(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 16 {
		t.Fatalf("got %d elements", len(elems))
	}
	if _, err := f.Elements(17); err == nil {
		t.Error("Elements(17) on GF(16) should fail — Appendix A requires 2^m >= N")
	}
}

func TestGF2mEmbedding(t *testing.T) {
	f, err := NewGF2m(16)
	if err != nil {
		t.Fatal(err)
	}
	if f.EmbedBit(0) != 0 || f.EmbedBit(1) != 1 {
		t.Fatal("embedding does not follow equation (13)")
	}
	for _, bit := range []uint8{0, 1} {
		got, err := f.ExtractBit(f.EmbedBit(bit))
		if err != nil || got != bit {
			t.Fatalf("ExtractBit(EmbedBit(%d)) = %d, %v", bit, got, err)
		}
	}
	if _, err := f.ExtractBit(7); err == nil {
		t.Error("ExtractBit(7) should fail")
	}
}

func TestGF2mFromUint64Masks(t *testing.T) {
	f, err := NewGF2m(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.FromUint64(0x1f); got != 0xf {
		t.Errorf("FromUint64(0x1f) = %#x, want 0xf", got)
	}
}
