package lcc

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
)

// codedExecCase is a random coded-execution instance: a random polynomial
// transition of degree <= 3, a legal (K, N, b) geometry, random states,
// commands and error pattern within the decoding radius.
type codedExecCase struct {
	k, n, b  int
	degree   int
	poly     mvpoly.Poly[uint64] // 2 variables: state, command
	states   []uint64
	cmds     []uint64
	errorsAt []int
}

func genCase(r *randv2.Rand) codedExecCase {
	gold := field.NewGoldilocks()
	d := 1 + int(r.Uint64N(3))
	// Random bivariate polynomial of total degree exactly <= d with a few
	// terms.
	var terms []mvpoly.Term[uint64]
	for i := 0; i <= d; i++ {
		for j := 0; i+j <= d; j++ {
			if r.Uint64N(2) == 0 {
				continue
			}
			terms = append(terms, mvpoly.Term[uint64]{
				Coeff: 1 + r.Uint64N(1000),
				Exps:  []int{i, j},
			})
		}
	}
	// Guarantee degree-d presence so capacity math is exercised honestly.
	terms = append(terms, mvpoly.Term[uint64]{Coeff: 1, Exps: []int{0, d}})
	p, err := mvpoly.FromTerms(gold, 2, terms)
	if err != nil {
		panic(err)
	}
	k := 1 + int(r.Uint64N(4))
	b := int(r.Uint64N(4))
	n := d*(k-1) + 2*b + 1 + int(r.Uint64N(4)) // decodable by construction
	if n < k {
		n = k
	}
	states := make([]uint64, k)
	cmds := make([]uint64, k)
	for i := range states {
		states[i] = gold.Rand(r)
		cmds[i] = gold.Rand(r)
	}
	return codedExecCase{
		k: k, n: n, b: b, degree: d, poly: p,
		states: states, cmds: cmds,
		errorsAt: r.Perm(n)[:b],
	}
}

// TestQuickCodedExecution is the paper's core theorem as a property test:
// for ANY polynomial transition f of degree d and ANY error pattern of
// weight b with N >= d(K-1) + 2b + 1, coded execution + RS decoding equals
// uncoded execution at every machine.
func TestQuickCodedExecution(t *testing.T) {
	gold := field.NewGoldilocks()
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			args[0] = reflect.ValueOf(genCase(r))
		},
	}
	if err := quick.Check(func(c codedExecCase) bool {
		code, err := New(goldRing(), c.k, c.n)
		if err != nil {
			return false
		}
		states := make([][]uint64, c.k)
		cmds := make([][]uint64, c.k)
		for i := 0; i < c.k; i++ {
			states[i] = []uint64{c.states[i]}
			cmds[i] = []uint64{c.cmds[i]}
		}
		codedStates, err := code.EncodeVectors(states)
		if err != nil {
			return false
		}
		codedCmds, err := code.EncodeVectorsFast(cmds)
		if err != nil {
			return false
		}
		results := make([][]uint64, c.n)
		for i := 0; i < c.n; i++ {
			v, err := c.poly.Eval(gold, []uint64{codedStates[i][0], codedCmds[i][0]})
			if err != nil {
				return false
			}
			results[i] = []uint64{v}
		}
		for _, pos := range c.errorsAt {
			results[pos][0] = gold.Add(results[pos][0], 1)
		}
		dec, err := code.DecodeOutputs(results, c.degree)
		if err != nil {
			return false
		}
		for ki := 0; ki < c.k; ki++ {
			want, err := c.poly.Eval(gold, []uint64{c.states[ki], c.cmds[ki]})
			if err != nil {
				return false
			}
			if !gold.Equal(dec.Outputs[ki][0], want) {
				return false
			}
		}
		return len(dec.FaultyNodes) == len(c.errorsAt)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodingIsLagrangeEvaluation: for random states, the coded state
// at every node equals u(alpha_i) where u interpolates the states at the
// omegas — equation (7) as a property.
func TestQuickEncodingIsLagrangeEvaluation(t *testing.T) {
	gold := field.NewGoldilocks()
	ring := goldRing()
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			k := 1 + int(r.Uint64N(8))
			vals := make([]uint64, k)
			for i := range vals {
				vals[i] = gold.Rand(r)
			}
			args[0] = reflect.ValueOf(vals)
		},
	}
	if err := quick.Check(func(states []uint64) bool {
		k := len(states)
		n := k + 5
		code, err := New(ring, k, n)
		if err != nil {
			return false
		}
		u, err := ring.Interpolate(code.Omegas(), states)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got, err := code.EncodeAt(states, i)
			if err != nil {
				return false
			}
			if !gold.Equal(got, ring.Eval(u, code.Alphas()[i])) {
				return false
			}
		}
		// And decoding any K clean coded values recovers the states.
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
