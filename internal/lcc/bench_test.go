package lcc

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
)

// Micro-benchmarks for the encode/decode kernels in isolation, swept over
// K (machines) x L (vector length), so kernel-level regressions are visible
// without the noise of a whole cluster round. Compare against BENCH_PR2.json
// with benchstat (see README "Performance").

func benchCode(b *testing.B, k, n int) *Code[uint64] {
	b.Helper()
	ring := poly.NewRing[uint64](field.NewGoldilocks())
	code, err := New(ring, k, n)
	if err != nil {
		b.Fatal(err)
	}
	return code
}

func benchValues(k, l int) [][]uint64 {
	rng := rand.New(rand.NewPCG(21, 22))
	gold := field.NewGoldilocks()
	values := make([][]uint64, k)
	for i := range values {
		values[i] = field.RandVec[uint64](gold, rng, l)
	}
	return values
}

func BenchmarkLCCEncode(b *testing.B) {
	for _, kl := range []struct{ k, l int }{{4, 2}, {4, 32}, {22, 2}, {22, 32}, {64, 8}} {
		n := 3 * kl.k
		b.Run(fmt.Sprintf("K=%d/N=%d/L=%d", kl.k, n, kl.l), func(b *testing.B) {
			code := benchCode(b, kl.k, n)
			values := benchValues(kl.k, kl.l)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.EncodeVectors(values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLCCDecode(b *testing.B) {
	const degree = 1
	for _, kl := range []struct{ k, l int }{{4, 2}, {4, 32}, {22, 2}, {22, 32}} {
		n := 3 * kl.k
		b.Run(fmt.Sprintf("K=%d/N=%d/L=%d", kl.k, n, kl.l), func(b *testing.B) {
			code := benchCode(b, kl.k, n)
			// Degree-1 results: the coded vectors themselves are a codeword
			// of dimension K; corrupt up to the radius.
			results, err := code.EncodeVectors(benchValues(kl.k, kl.l))
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < (n-code.ResultDim(degree))/2; e++ {
				results[2*e][e%kl.l] += 7
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.DecodeOutputs(results, degree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
