package rs

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"codedsm/internal/poly"
)

// decodeCase is a randomly generated decoding instance within the code's
// error-correction radius.
type decodeCase struct {
	n, k     int
	msg      poly.Poly[uint64]
	errorsAt []int
}

func quickDecodeConfig(ring *poly.Ring[uint64]) *quick.Config {
	return &quick.Config{
		MaxCount: 80,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			n := 4 + int(r.Uint64N(40))
			k := 1 + int(r.Uint64N(uint64(n)))
			msg := make(poly.Poly[uint64], k)
			for i := range msg {
				msg[i] = ring.Field().Rand(r)
			}
			radius := (n - k) / 2
			e := 0
			if radius > 0 {
				e = int(r.Uint64N(uint64(radius + 1)))
			}
			args[0] = reflect.ValueOf(decodeCase{
				n: n, k: k,
				msg:      ring.Normalize(msg),
				errorsAt: r.Perm(n)[:e],
			})
		},
	}
}

// TestQuickDecodeWithinRadius is the central coding invariant of the paper
// (Section 5.2): any error pattern of weight <= (N - d(K-1) - 1)/2 is
// corrected exactly, and the error positions are identified.
func TestQuickDecodeWithinRadius(t *testing.T) {
	ring := goldRing()
	if err := quick.Check(func(c decodeCase) bool {
		pts, err := ring.Field().Elements(c.n)
		if err != nil {
			return false
		}
		code, err := NewCode(ring, pts, c.k)
		if err != nil {
			return false
		}
		word, err := code.Encode(c.msg)
		if err != nil {
			return false
		}
		for _, pos := range c.errorsAt {
			word[pos] = ring.Field().Add(word[pos], 1)
		}
		res, err := code.Decode(word)
		if err != nil {
			return false
		}
		if !ring.Equal(res.Message, c.msg) {
			return false
		}
		return len(res.ErrorsAt) == len(c.errorsAt)
	}, quickDecodeConfig(ring)); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodersAgree: Gao and Berlekamp-Welch are interchangeable.
func TestQuickDecodersAgree(t *testing.T) {
	ring := goldRing()
	cfg := quickDecodeConfig(ring)
	cfg.MaxCount = 40
	if err := quick.Check(func(c decodeCase) bool {
		if c.n > 28 { // keep the O(n^3) BW solver quick
			return true
		}
		pts, err := ring.Field().Elements(c.n)
		if err != nil {
			return false
		}
		code, err := NewCode(ring, pts, c.k)
		if err != nil {
			return false
		}
		word, err := code.Encode(c.msg)
		if err != nil {
			return false
		}
		for _, pos := range c.errorsAt {
			word[pos] = ring.Field().Add(word[pos], 3)
		}
		gao, errG := code.Decode(word)
		bw, errB := code.DecodeBW(word)
		if errG != nil || errB != nil {
			return false
		}
		return ring.Equal(gao.Message, bw.Message)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeIsLinear: the code is linear — encode(a+b) = encode(a) +
// encode(b) componentwise. CSM's state update step (re-encoding decoded
// states) relies on this.
func TestQuickEncodeIsLinear(t *testing.T) {
	ring := goldRing()
	pts, err := ring.Field().Elements(20)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(ring, pts, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			for i := range args {
				msg := make(poly.Poly[uint64], 7)
				for j := range msg {
					msg[j] = ring.Field().Rand(r)
				}
				args[i] = reflect.ValueOf(msg)
			}
		},
	}
	if err := quick.Check(func(a, b poly.Poly[uint64]) bool {
		ea, err1 := code.Encode(ring.Normalize(a))
		eb, err2 := code.Encode(ring.Normalize(b))
		esum, err3 := code.Encode(ring.Add(a, b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		f := ring.Field()
		for i := range esum {
			if !f.Equal(esum[i], f.Add(ea[i], eb[i])) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
