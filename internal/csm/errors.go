package csm

import (
	"errors"
	"fmt"
)

// The package's error taxonomy. Workload runners (Run, RunQueue,
// RunPipelined, Rounds, ExecuteBatch) attach a *BatchError to every
// mid-workload failure, so callers recover the completed prefix and the
// failed round with errors.As instead of string inspection; the sentinels
// below classify *why* a run, a membership change, or a submission failed
// and are matched with errors.Is.
var (
	// ErrRoundStuck reports a round that did not complete within the tick
	// budget (e.g. too many silent nodes in partial synchrony).
	ErrRoundStuck = errors.New("csm: round did not complete within tick budget")

	// ErrRoundLimit reports a workload round that could not be executed
	// within its retry budget: every attempted consensus instance decided a
	// garbage batch (RunQueue's maxAttempts, or an ingress client's leader
	// rotation) and the commands are still pending.
	ErrRoundLimit = errors.New("csm: round retry limit reached")

	// ErrFaultBudgetExceeded reports a fault pattern whose Reed-Solomon
	// load (2 parity symbols per error, 1 per erasure) exceeds the 2b
	// budget the cluster is sized for — at construction, or when a churn
	// event would push the live pattern over it.
	ErrFaultBudgetExceeded = errors.New("csm: fault budget exceeded")

	// ErrQuorumUnreachable reports a fault pattern that keeps some quorum
	// threshold from ever being met: fewer than b+1 honest client repliers
	// (Table 2, output delivery), more than b non-senders in partial
	// synchrony (the N-b decode threshold), fewer than 2b+1 live PBFT
	// voters — or, on a Future, a round whose machine output never gathered
	// b+1 matching replies.
	ErrQuorumUnreachable = errors.New("csm: quorum unreachable")

	// ErrClientClosed reports a Submit on an ingress client that has been
	// closed (or whose scheduler already failed; the failure is attached).
	ErrClientClosed = errors.New("csm: client closed")

	// ErrClientOpen reports a direct cluster-state operation
	// (DecodeMachineState, AdoptMachineState) attempted while an ingress
	// client is open — between Open and Close the scheduler goroutine owns
	// the cluster.
	ErrClientOpen = errors.New("csm: the cluster has an open client (Close it first)")

	// ErrConsensusConfig reports a consensus selection that can never work
	// for the cluster shape — PBFT with N < 3b+1, an unknown kind, or a
	// driver entry point that does not match the configured protocol
	// (RunWorkload under Oracle, LeadBatch under BFT). It is raised
	// eagerly, by ValidateRemoteConsensus and csmnode bootstrap, before
	// any socket is opened.
	ErrConsensusConfig = errors.New("csm: invalid consensus configuration")

	// ErrConsensusMismatch reports a durable data directory whose applied
	// records were decided under a different consensus protocol than the
	// process is configured for: resuming would splice two histories whose
	// decisions are not interchangeable.
	ErrConsensusMismatch = errors.New("csm: durable state was decided under a different consensus protocol")
)

// BatchError is the structured form of every mid-workload failure: Err is
// the underlying cause, Round the workload index of the round it is
// attributed to, and Completed the reports of every round that fully
// completed before the failure — always a prefix of the workload, and the
// same slice the failing runner returned alongside the error. (The
// streaming Rounds iterator is the exception: it leaves Completed nil
// because the completed reports were already yielded.) Callers unwrap it
// with errors.As:
//
//	results, err := cluster.Run(workload)
//	var batchErr *csm.BatchError[uint64]
//	if errors.As(err, &batchErr) {
//		log.Printf("round %d failed after %d completed rounds: %v",
//			batchErr.Round, len(batchErr.Completed), batchErr.Err)
//	}
//
// errors.Is sees through it to the cause (ErrRoundStuck, ErrRoundLimit,
// context.Canceled, ...).
type BatchError[E comparable] struct {
	// Completed holds the reports of the rounds that fully completed
	// before the failure (a workload prefix; possibly empty).
	Completed []*RoundResult[E]
	// Round is the workload index of the failed round.
	Round int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *BatchError[E]) Error() string {
	return fmt.Sprintf("csm: round %d: %v", e.Round, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *BatchError[E]) Unwrap() error { return e.Err }

// newBatchError attributes a workload failure to a round: completed is the
// prefix of fully completed reports, base the batch's first workload
// round, failed the first round that did not complete. A batchRoundError
// names the offending round within its batch (which may sit later in the
// failed batch than the rounds it prevented from executing); any other
// cause is attributed to the first unexecuted round.
func newBatchError[E comparable](err error, completed []*RoundResult[E], base, failed int) *BatchError[E] {
	var bre *batchRoundError
	if errors.As(err, &bre) {
		return &BatchError[E]{Completed: completed, Round: base + bre.offset, Err: bre.err}
	}
	return &BatchError[E]{Completed: completed, Round: failed, Err: err}
}
