// Multitenant: the sharded serving tier end to end. Tenants' accounts
// are spread over independent CSM clusters by the router's
// consistent-hash ring; skewed per-tenant traffic flows through
// Router.Submit from concurrent tellers; a cross-tenant settlement runs
// the two-phase cross-shard protocol; the hot tenant's busiest account
// is migrated to the least-loaded shard mid-run through the coded-state
// handoff; and the final per-account digests must be bit-identical to
// an unsharded single-cluster oracle fed the same commands — the
// acceptance check `make smoke-shard` enforces under the race detector.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"codedsm"
)

const (
	tenants     = 3
	accountsPer = 3
	accounts    = tenants * accountsPer // global machines
	shards      = 3
	nodes       = 10 // per shard
	faults      = 1  // per shard
	seed        = 2026
	tellers     = 3
	commands    = 180 // phase A + phase B submissions
)

// schedule returns the deterministic skewed workload as (account, delta)
// pairs: half of all traffic hits tenant 0 (the hot tenant), the rest
// spreads over tenants 1 and 2.
func schedule() (acct []int, delta []uint64) {
	for i := 0; i < commands; i++ {
		var m int
		if i%2 == 0 {
			m = (i / 2) % accountsPer // tenant 0: accounts 0..2
		} else {
			m = accountsPer + (i/2)%(accounts-accountsPer) // tenants 1..2
		}
		acct = append(acct, m)
		delta = append(delta, uint64(1+i))
	}
	return acct, delta
}

func main() {
	ctx := context.Background()
	gold := codedsm.NewGoldilocks()
	acct, delta := schedule()

	router, err := codedsm.OpenRouter(gold, codedsm.NewBank[uint64],
		codedsm.WithShards(shards),
		codedsm.WithShardMachines(accounts),
		codedsm.WithShardSeed(seed),
		codedsm.WithShardClusterOptions(
			codedsm.WithNodes(nodes),
			codedsm.WithFaults(faults),
			codedsm.WithByzantineNode(4, codedsm.WrongResult),
			codedsm.WithBatching(2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router: %d tenants x %d accounts over %d shards (N=%d, b=%d each, one Byzantine node per shard)\n",
		tenants, accountsPer, shards, nodes, faults)
	fmt.Printf("ring loads: %v\n", router.Loads())

	// Stream every routed outcome; the consumer just counts resolutions.
	// Results is called before any Submit so the stream sees all of them.
	stream := router.Results()
	resolved := 0
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for fut := range stream {
			if _, err := fut.Wait(ctx); err != nil {
				log.Fatalf("streamed future (machine %d, shard %d): %v", fut.Machine(), fut.Shard(), err)
			}
			resolved++
		}
	}()

	// Phase A: concurrent tellers push the first half of the skewed
	// schedule.
	half := commands / 2
	runPhase := func(lo, hi int) {
		var wg sync.WaitGroup
		for t := 0; t < tellers; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for i := lo + t; i < hi; i += tellers {
					fut, err := router.Submit(ctx, acct[i], []uint64{delta[i]})
					if err != nil {
						log.Fatalf("submit %d: %v", i, err)
					}
					if _, err := fut.Wait(ctx); err != nil {
						log.Fatalf("await %d: %v", i, err)
					}
				}
			}(t)
		}
		wg.Wait()
	}
	runPhase(0, half)

	// The hot tenant's account 0 migrates to the least-loaded shard: the
	// router fences the two involved shards, decodes the account's state
	// from the source's coded shares, installs it on the target as a
	// rank-1 share update, and reopens — in-flight futures on both shards
	// resolve before the move.
	hot := 0
	from, err := router.ShardOf(hot)
	if err != nil {
		log.Fatal(err)
	}
	loads := router.Loads()
	target := -1
	for sh, l := range loads {
		if sh == from {
			continue
		}
		if target < 0 || l < loads[target] {
			target = sh
		}
	}
	if err := router.Rebalance(hot, target); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalanced hot account %d: shard %d -> shard %d; loads now %v\n",
		hot, from, target, router.Loads())

	// Phase B: the rest of the schedule lands on the rebalanced layout.
	runPhase(half, commands)

	// A cross-tenant settlement: debit one account, credit another on a
	// different shard, atomically via the two-phase protocol (prepare
	// probes both shards, then commits; any failure is a typed abort with
	// nothing committed).
	src, dst := hot, -1
	srcShard, _ := router.ShardOf(src)
	for m := 0; m < accounts; m++ {
		if sh, _ := router.ShardOf(m); sh != srcShard {
			dst = m
			break
		}
	}
	if dst < 0 {
		log.Fatal("all accounts on one shard; cannot demonstrate a cross-shard settlement")
	}
	const amount = 250
	if _, err := router.SubmitCross(ctx, []codedsm.CrossOp[uint64]{
		{Machine: src, Cmd: []uint64{gold.Neg(gold.FromUint64(amount))}},
		{Machine: dst, Cmd: []uint64{amount}},
	}); err != nil {
		log.Fatalf("cross-shard settlement: %v", err)
	}
	fmt.Printf("cross-shard settlement: account %d -> account %d (%d), two-phase commit over shards %v\n",
		src, dst, amount, []int{srcShard, func() int { sh, _ := router.ShardOf(dst); return sh }()})

	if err := router.Close(); err != nil {
		log.Fatal(err)
	}
	consumer.Wait()
	fmt.Printf("streamed %d resolved futures; moves: %v\n", resolved, router.Moves())

	shardedDigests, err := router.StateDigests()
	if err != nil {
		log.Fatal(err)
	}

	// The unsharded oracle: one cluster holding all accounts, fed exactly
	// the same commands (the settlement included; prepare probes and pads
	// are identity commands and leave no trace).
	oracle, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(12), codedsm.WithMachines(accounts), codedsm.WithFaults(1),
		codedsm.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	client, err := oracle.Open()
	if err != nil {
		log.Fatal(err)
	}
	var futs []*codedsm.Future[uint64]
	submit := func(m int, d uint64) {
		fut, err := client.Submit(ctx, m, []uint64{d})
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for i := range acct {
		submit(acct[i], delta[i])
	}
	submit(src, gold.Neg(gold.FromUint64(amount)))
	submit(dst, amount)
	for _, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			log.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}

	mismatches := 0
	for m := 0; m < accounts; m++ {
		state, err := codedsm.DecodeMachineState(oracle, m)
		if err != nil {
			log.Fatal(err)
		}
		want := codedsm.DigestShardState(gold, state)
		if shardedDigests[m] != want {
			log.Printf("account %d: sharded digest %s != oracle %s (balance %v)", m, shardedDigests[m], want, state)
			mismatches++
		}
	}
	if mismatches > 0 {
		log.Fatalf("%d of %d account digests diverge from the unsharded oracle", mismatches, accounts)
	}
	fmt.Printf("all %d account digests bit-identical to the unsharded oracle run\n", accounts)
}
