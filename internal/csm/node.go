package csm

import (
	"fmt"
	"slices"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/transport"
)

// resultKind tags execution-phase messages.
const resultKind = "csm-result"

// node is one CSM compute node.
type node[E comparable] struct {
	cluster    *Cluster[E]
	id         int
	ep         *transport.Endpoint
	behavior   Behavior
	codedState []E

	// per-round collection state
	received map[int][]E // sender -> result vector
	decoded  *nodeDecode[E]

	// Staged result transmission: planBroadcast draws all Byzantine
	// randomness on the driving goroutine (cluster-RNG order matters) and
	// fills these; transmitResult is then RNG-free, so the signing and
	// enqueueing of the N nodes' results can fan out across workers
	// whenever the network delivery schedule is deterministic.
	txBroadcast []byte   // payload to Broadcast (nil: nothing to broadcast)
	txSends     [][]byte // per-recipient payloads (Equivocate), nil otherwise

	// Batched-decode state: suspects is the faulty set the previous
	// micro-step of the current batch identified (nil on a batch's first
	// micro-step — the full decoder always runs there), and primed is the
	// accelerator built for it, reused while layout and suspicion match.
	// primedIdx/primedSusp memoize the exact layout NewPrimed last ran
	// for, so an ineligible layout (primed == nil) is not rebuilt every
	// lock-step tick of a degraded partially synchronous round, while a
	// genuinely new layout still gets its priming attempt.
	suspects   []int
	primed     *lcc.Primed[E]
	primedIdx  []int
	primedSusp []int

	// Round-to-round scratch: steady-state rounds reuse these instead of
	// allocating. cmdScratch holds the node's coded commands for the whole
	// current batch (BatchSize x CmdLen, flat), stateScratch
	// double-buffers the re-encoded coded state (it swaps with codedState
	// each round), and idxScratch/resScratch stage the decode inputs.
	cmdScratch   []E
	stateScratch []E
	idxScratch   []int
	resScratch   [][]E

	// delegated-mode state (Section 6.2)
	dlgCoded [][]E        // worker only: the coded commands it produced
	dlgProof *dlgProofMsg // the proof this node holds for the round
}

// nodeDecode is a node's decoded view of one round. Instances are
// allocated fresh every round and never mutated afterwards, so the
// pipelined client stage can hold them across rounds.
type nodeDecode[E comparable] struct {
	outputs    [][]E // K output vectors
	nextStates [][]E // K next-state vectors
	faulty     []int
}

// lagrangeRowInto accumulates one node's Lagrange encode Σ_k row[k]
// vecs[k] into dst — (re)allocated at the given length when it does not
// match — on the bulk kernels (K ScaleAccVec calls). It returns dst.
// Shared by the simulated node and the multi-process NodeProcess, which
// run the identical encode over different transports.
func lagrangeRowInto[E comparable](bulk field.Bulk[E], zero E, row []E, vecs [][]E, dst []E, length int) []E {
	if len(dst) != length {
		dst = make([]E, length)
	}
	for j := range dst {
		dst[j] = zero
	}
	for k := range vecs {
		bulk.ScaleAccVec(dst, row[k], vecs[k])
	}
	return dst
}

// lagrangeEncodeInto is the node-side wrapper over lagrangeRowInto, on
// the counted kernels and the node's own coefficient row.
func (n *node[E]) lagrangeEncodeInto(dst []E, length int, vecs [][]E) []E {
	c := n.cluster
	return lagrangeRowInto(c.bulk, c.counting.Zero(), c.code.Coeffs()[n.id], vecs, dst, length)
}

// computeResultAt runs the coded execution step for the batch's micro-th
// micro-step: the node's coded command was already encoded into the batch
// scratch, and f is applied on coded state and command. Apply copies its
// inputs, so the scratch never escapes the round.
func (n *node[E]) computeResultAt(micro int) ([]E, error) {
	c := n.cluster
	cmdLen := c.tr.CmdLen()
	cmd := n.cmdScratch[micro*cmdLen : (micro+1)*cmdLen]
	return c.tr.ApplyResult(n.codedState, cmd)
}

// planBroadcast stages the node's (possibly corrupted) result
// transmission, drawing any Byzantine randomness from the cluster RNG —
// this must run on the driving goroutine, in node order.
func (n *node[E]) planBroadcast(result []E) {
	c := n.cluster
	n.txBroadcast = nil
	n.txSends = nil
	switch n.behavior {
	case Silent, Crashed, Recovering:
		// Nothing to transmit: silence is adversarial withholding; a
		// crashed or recovering node computed no result at all (the
		// transport would drop a crashed node's traffic anyway).
	case WrongResult, BadLeader:
		bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
		n.received[n.id] = bad // a liar is at least self-consistent
		n.txBroadcast = c.encodeResultPayload(c.round, bad)
	case Equivocate:
		// A different wrong value to every peer. On a no-equivocation
		// (broadcast) network the transport coerces these to the first.
		n.txSends = make([][]byte, c.cfg.N)
		for to := 0; to < c.cfg.N; to++ {
			if to == n.id {
				continue
			}
			bad := field.RandVec(c.cfg.BaseField, c.rng, len(result))
			n.txSends[to] = c.encodeResultPayload(c.round, bad)
		}
		n.received[n.id] = result
	default:
		n.received[n.id] = result
		n.txBroadcast = c.encodeResultPayload(c.round, result)
	}
}

// transmitResult signs and enqueues what planBroadcast staged. It is
// RNG-free and touches only this node's endpoint, so distinct nodes may
// transmit concurrently when the network schedule is deterministic.
func (n *node[E]) transmitResult() error {
	if n.txBroadcast != nil {
		return n.ep.Broadcast(resultKind, n.txBroadcast)
	}
	for to, payload := range n.txSends {
		if payload == nil {
			continue
		}
		if err := n.ep.Send(transport.NodeID(to), resultKind, payload); err != nil {
			return err
		}
	}
	return nil
}

// collect ingests result messages for the current round.
func (n *node[E]) collect(msgs []transport.Message) {
	c := n.cluster
	for _, m := range msgs {
		if m.Kind != resultKind {
			continue
		}
		round, result, ok := c.decodeResultPayload(m.Payload)
		if !ok || round != c.round || len(result) != c.tr.ResultLen() {
			continue
		}
		n.received[int(m.From)] = result
	}
}

// tryDecode decodes once enough results are available. Synchronous mode
// decodes whatever arrived after the fixed interval (missing results are
// erasures); partially synchronous mode requires at least N-b results.
// From a batch's second micro-step on, the decode first tries the primed
// fast path (suspects from the previous micro-step); the full
// noisy-interpolation decoder remains the fallback and the authority on
// anything the fast path cannot certify.
// need is the step-constant decode threshold (Cluster.decodeNeed),
// computed once per micro-step by the caller.
func (n *node[E]) tryDecode(force bool, need int) (bool, error) {
	c := n.cluster
	if len(n.received) < need {
		return false, nil
	}
	if !force && len(n.received) < c.cfg.N {
		// Wait for more stragglers unless the deadline passed.
		return false, nil
	}
	indices := n.idxScratch[:0]
	//csmlint:allow detmap(keys are collected then sorted two lines down)
	for idx := range n.received {
		indices = append(indices, idx)
	}
	slices.Sort(indices)
	n.idxScratch = indices
	results := n.resScratch[:0]
	for _, idx := range indices {
		results = append(results, n.received[idx])
	}
	n.resScratch = results
	var dec *lcc.DecodeResult[E]
	if n.suspects != nil {
		var primed *lcc.Primed[E]
		switch {
		case n.primed != nil && n.primed.Matches(indices, n.suspects):
			primed = n.primed
		case !slices.Equal(n.primedIdx, indices) || !slices.Equal(n.primedSusp, n.suspects):
			p, err := c.code.NewPrimed(indices, n.suspects, c.tr.Degree(), c.cfg.MaxFaults)
			if err != nil {
				return false, fmt.Errorf("csm: node %d priming decode: %w", n.id, err)
			}
			n.primed = p // may be nil: layout ineligible for the fast path
			n.primedIdx = append(n.primedIdx[:0], indices...)
			n.primedSusp = append(n.primedSusp[:0], n.suspects...)
			primed = p
		default:
			// This exact layout was already found ineligible: skip.
		}
		if primed != nil {
			fast, ok, err := primed.Decode(results, 1)
			if err != nil {
				return false, fmt.Errorf("csm: node %d primed decode: %w", n.id, err)
			}
			if ok {
				dec = fast
			}
		}
	}
	if dec == nil {
		full, err := c.code.DecodeOutputsSubset(indices, results, c.tr.Degree())
		if err != nil {
			return false, fmt.Errorf("csm: node %d decode: %w", n.id, err)
		}
		dec = full
	}
	outputs := make([][]E, c.cfg.K)
	nextStates := make([][]E, c.cfg.K)
	for k := 0; k < c.cfg.K; k++ {
		next, out, err := c.tr.SplitResult(dec.Outputs[k])
		if err != nil {
			return false, err
		}
		nextStates[k] = next
		outputs[k] = out
	}
	n.decoded = &nodeDecode[E]{outputs: outputs, nextStates: nextStates, faulty: dec.FaultyNodes}
	// Update the coded state: S̃_i(t+1) = Σ_k c_ik Ŝ_k(t+1), re-encoded into
	// the state double-buffer (the outgoing coded state becomes next round's
	// buffer; nothing else retains it — external readers go through
	// NodeCodedState, which copies).
	newCoded := n.lagrangeEncodeInto(n.stateScratch, c.tr.StateLen(), nextStates)
	n.stateScratch = n.codedState
	n.codedState = newCoded
	return true, nil
}
