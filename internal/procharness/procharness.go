// Package procharness drives real csmnode OS processes for the
// fault-injection harnesses (examples/restart, examples/soak): bootstrap
// a localhost cluster, start/kill/await its nodes — SIGKILL, not a
// graceful signal, so a "crash" really is one — and scrape the
// digest=/rounds= lines every node prints at exit.
package procharness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Result is what one csmnode process reported on stdout when it exited.
type Result struct {
	Digest string
	Rounds int
}

type node struct {
	cmd *exec.Cmd
	out bytes.Buffer
	err bytes.Buffer
}

// Cluster manages the N csmnode processes of one bootstrapped config
// directory. Methods are not safe for concurrent use on the same node
// index.
type Cluster struct {
	Csmnode string // path to the csmnode binary
	Dir     string // directory holding node<i>.json
	N       int
	Verbose bool // forward node stderr live instead of capturing it

	mu    sync.Mutex
	nodes []*node
}

// New returns a harness over an (about to be) bootstrapped cluster.
func New(csmnode, dir string, n int) *Cluster {
	return &Cluster{Csmnode: csmnode, Dir: dir, N: n, nodes: make([]*node, n)}
}

// Bootstrap writes the cluster's config files: `csmnode bootstrap -dir
// Dir -n N <extra...>`.
func (c *Cluster) Bootstrap(extra ...string) error {
	args := append([]string{"bootstrap", "-dir", c.Dir, "-n", strconv.Itoa(c.N)}, extra...)
	cmd := exec.Command(c.Csmnode, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("csmnode bootstrap: %w", err)
	}
	return nil
}

// ConfigPath returns node i's config file path.
func (c *Cluster) ConfigPath(i int) string {
	return filepath.Join(c.Dir, fmt.Sprintf("node%d.json", i))
}

// ClientAddr reads the sequencer's nodeapi ingress address from its
// config (bootstrap must have run with -serve).
func (c *Cluster) ClientAddr() (string, error) {
	data, err := os.ReadFile(c.ConfigPath(0))
	if err != nil {
		return "", err
	}
	var cfg struct {
		ClientListen string `json:"client_listen"`
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return "", fmt.Errorf("parsing %s: %w", c.ConfigPath(0), err)
	}
	if cfg.ClientListen == "" {
		return "", fmt.Errorf("no client_listen in %s (bootstrap without -serve?)", c.ConfigPath(0))
	}
	return cfg.ClientListen, nil
}

// Start launches node i (`csmnode run -config node<i>.json <extra...>`)
// with the given extra environment entries ("KEY=value") appended to the
// parent's. It fails if the node is already running.
func (c *Cluster) Start(i int, extraArgs []string, extraEnv ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes[i] != nil {
		return fmt.Errorf("procharness: node %d is already running", i)
	}
	args := append([]string{"run", "-config", c.ConfigPath(i)}, extraArgs...)
	n := &node{cmd: exec.Command(c.Csmnode, args...)}
	n.cmd.Stdout = &n.out
	if c.Verbose {
		n.cmd.Stderr = os.Stderr
	} else {
		n.cmd.Stderr = &n.err
	}
	n.cmd.Env = append(os.Environ(), extraEnv...)
	if err := n.cmd.Start(); err != nil {
		return fmt.Errorf("starting node %d: %w", i, err)
	}
	c.nodes[i] = n
	return nil
}

// take claims node i's handle, leaving the slot free for a restart.
func (c *Cluster) take(i int) *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[i]
	c.nodes[i] = nil
	return n
}

// Kill SIGKILLs node i and reaps it; a node that is not running (or
// already exited) is a no-op. The data directory is left exactly as the
// crash left it.
func (c *Cluster) Kill(i int) {
	n := c.take(i)
	if n == nil {
		return
	}
	if n.cmd.Process != nil {
		n.cmd.Process.Kill()
	}
	n.cmd.Wait()
}

// KillAll SIGKILLs every running node, concurrently — the whole-cluster
// crash the recovery handshake is specified against.
func (c *Cluster) KillAll() {
	var wg sync.WaitGroup
	for i := 0; i < c.N; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); c.Kill(i) }(i)
	}
	wg.Wait()
}

// Wait blocks until node i exits on its own and returns the digest and
// rounds it printed. A non-zero exit (including an injected crash) is
// returned as the error, with the node's captured output attached.
func (c *Cluster) Wait(i int) (Result, error) {
	n := c.take(i)
	if n == nil {
		return Result{}, fmt.Errorf("procharness: node %d is not running", i)
	}
	err := n.cmd.Wait()
	res, parseErr := parseResult(n.out.String())
	if err != nil {
		return res, fmt.Errorf("node %d exited: %w\nstdout:\n%sstderr:\n%s", i, err, n.out.String(), n.err.String())
	}
	if parseErr != nil {
		return res, fmt.Errorf("node %d: %w", i, parseErr)
	}
	return res, nil
}

// WaitExit blocks until node i exits, expecting a crash: the exit error
// (if any) is discarded and only the fact that the process is gone
// matters. Used after arming CSMNODE_CRASH.
func (c *Cluster) WaitExit(i int) {
	n := c.take(i)
	if n == nil {
		return
	}
	n.cmd.Wait()
}

// parseResult scrapes the digest=<hex> and rounds=<n> lines.
func parseResult(out string) (Result, error) {
	var res Result
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		if d, ok := strings.CutPrefix(sc.Text(), "digest="); ok {
			res.Digest = d
		}
		if r, ok := strings.CutPrefix(sc.Text(), "rounds="); ok {
			v, err := strconv.Atoi(r)
			if err != nil {
				return res, fmt.Errorf("bad rounds line %q", sc.Text())
			}
			res.Rounds = v
		}
	}
	if res.Digest == "" {
		return res, fmt.Errorf("no digest line in output:\n%s", out)
	}
	return res, nil
}

// StartAll launches every node: the sequencer with -rounds, followers
// bare. env, if non-nil, supplies extra environment entries per node
// (the crash-injection hook).
func (c *Cluster) StartAll(rounds int, env func(i int) []string) error {
	for i := c.N - 1; i >= 0; i-- {
		var args []string
		if i == 0 {
			args = []string{"-rounds", strconv.Itoa(rounds)}
		}
		var extra []string
		if env != nil {
			extra = env(i)
		}
		if err := c.Start(i, args, extra...); err != nil {
			return err
		}
	}
	return nil
}

// AwaitAll waits for every node to finish on its own and checks that
// each printed exactly the wanted digest and round count.
func (c *Cluster) AwaitAll(wantDigest string, wantRounds int) error {
	for i := 0; i < c.N; i++ {
		res, err := c.Wait(i)
		if err != nil {
			return err
		}
		if res.Digest != wantDigest {
			return fmt.Errorf("node %d digest %s, want %s", i, res.Digest, wantDigest)
		}
		if res.Rounds != wantRounds {
			return fmt.Errorf("node %d finished at round %d, want %d", i, res.Rounds, wantRounds)
		}
	}
	return nil
}

// WaitWALProgress polls dataDir until its WAL segments hold at least
// minBytes of records (the cluster is provably mid-workload), so a
// SIGKILL lands on a cluster that has state to lose. It gives up after
// timeout — the cluster may legitimately have finished already.
func (c *Cluster) WaitWALProgress(dataDir string, minBytes int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var total int64
		segs, _ := filepath.Glob(filepath.Join(dataDir, "wal-*.log"))
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				total += fi.Size()
			}
		}
		if total >= minBytes {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
