package sm

import (
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
)

// NewBank returns the paper's motivating example (Section 4): a bank
// account whose balance is updated by deposits/withdrawals. State: one
// balance; command: one signed delta; output: the new balance.
// f(s, x) = (s + x, s + x); degree d = 1.
func NewBank[E comparable](f field.Field[E]) (*Transition[E], error) {
	return FromExprs(f, "bank", []string{"s"}, []string{"x"},
		[]string{"s + x"}, []string{"s + x"})
}

// NewQuadraticTally returns a degree-2 machine: an accumulator of squared
// command values (e.g. a quadratic-voting tally).
// f(s, x) = (s + x^2, s + x^2); d = 2.
func NewQuadraticTally[E comparable](f field.Field[E]) (*Transition[E], error) {
	return FromExprs(f, "quadratic-tally", []string{"s"}, []string{"x"},
		[]string{"s + x^2"}, []string{"s + x^2"})
}

// NewMultiplicativeAccumulator returns f(s, x) = (s*x, s*x); d = 2. This is
// the canonical bilinear machine: the state transition itself mixes state
// and command multiplicatively.
func NewMultiplicativeAccumulator[E comparable](f field.Field[E]) (*Transition[E], error) {
	return FromExprs(f, "mul-accumulator", []string{"s"}, []string{"x"},
		[]string{"s*x"}, []string{"s*x"})
}

// NewAffine returns the linear machine S' = A S + B X with output Y = S'.
// A must be stateLen x stateLen and B stateLen x cmdLen; d = 1. Linear
// machines are the d=1 special case the paper notes is also reachable with
// classic storage codes (Remark 3).
func NewAffine[E comparable](f field.Field[E], a, b [][]E) (*Transition[E], error) {
	stateLen := len(a)
	if stateLen == 0 {
		return nil, fmt.Errorf("sm: affine machine needs a non-empty A matrix")
	}
	cmdLen := 0
	if len(b) != stateLen {
		return nil, fmt.Errorf("sm: B has %d rows, want %d", len(b), stateLen)
	}
	if len(b[0]) > 0 {
		cmdLen = len(b[0])
	}
	if cmdLen == 0 {
		return nil, fmt.Errorf("sm: affine machine needs a non-empty B matrix")
	}
	nvars := stateLen + cmdLen
	polys := make([]mvpoly.Poly[E], stateLen)
	for i := 0; i < stateLen; i++ {
		if len(a[i]) != stateLen || len(b[i]) != cmdLen {
			return nil, fmt.Errorf("sm: ragged matrix row %d", i)
		}
		terms := make([]mvpoly.Term[E], 0, nvars)
		for j := 0; j < stateLen; j++ {
			exps := make([]int, nvars)
			exps[j] = 1
			terms = append(terms, mvpoly.Term[E]{Coeff: a[i][j], Exps: exps})
		}
		for j := 0; j < cmdLen; j++ {
			exps := make([]int, nvars)
			exps[stateLen+j] = 1
			terms = append(terms, mvpoly.Term[E]{Coeff: b[i][j], Exps: exps})
		}
		p, err := mvpoly.FromTerms(f, nvars, terms)
		if err != nil {
			return nil, err
		}
		polys[i] = p
	}
	out := make([]mvpoly.Poly[E], len(polys))
	copy(out, polys)
	return NewTransition(f, "affine", stateLen, cmdLen, polys, out)
}

// NewInnerProduct returns a machine with vector state and command of length
// dim: the state accumulates the command (S' = S + X) and the output is the
// inner product <S', X>; d = 2.
func NewInnerProduct[E comparable](f field.Field[E], dim int) (*Transition[E], error) {
	if dim < 1 {
		return nil, fmt.Errorf("sm: inner-product machine needs dim >= 1, got %d", dim)
	}
	nvars := 2 * dim
	next := make([]mvpoly.Poly[E], dim)
	for i := 0; i < dim; i++ {
		sExps := make([]int, nvars)
		sExps[i] = 1
		xExps := make([]int, nvars)
		xExps[dim+i] = 1
		p, err := mvpoly.FromTerms(f, nvars, []mvpoly.Term[E]{
			{Coeff: f.One(), Exps: sExps},
			{Coeff: f.One(), Exps: xExps},
		})
		if err != nil {
			return nil, err
		}
		next[i] = p
	}
	// Output = sum_i (s_i + x_i) * x_i.
	terms := make([]mvpoly.Term[E], 0, 2*dim)
	for i := 0; i < dim; i++ {
		mixed := make([]int, nvars)
		mixed[i], mixed[dim+i] = 1, 1
		sq := make([]int, nvars)
		sq[dim+i] = 2
		terms = append(terms,
			mvpoly.Term[E]{Coeff: f.One(), Exps: mixed},
			mvpoly.Term[E]{Coeff: f.One(), Exps: sq},
		)
	}
	outPoly, err := mvpoly.FromTerms(f, nvars, terms)
	if err != nil {
		return nil, err
	}
	return NewTransition(f, fmt.Sprintf("inner-product-%d", dim), dim, dim,
		next, []mvpoly.Poly[E]{outPoly})
}

// NewPolynomialRegister returns a machine of exact degree d on scalar
// state/command: f(s, x) = (s + x^d, s*x^(d-1) + x^d). Useful for sweeping
// the degree parameter in the Table 1 / scaling experiments.
func NewPolynomialRegister[E comparable](f field.Field[E], d int) (*Transition[E], error) {
	if d < 1 {
		return nil, fmt.Errorf("sm: degree must be >= 1, got %d", d)
	}
	out := fmt.Sprintf("s*x^%d + x^%d", d-1, d)
	return FromExprs(f, fmt.Sprintf("poly-register-d%d", d),
		[]string{"s"}, []string{"x"},
		[]string{fmt.Sprintf("s + x^%d", d)},
		[]string{out})
}
