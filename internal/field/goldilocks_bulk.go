package field

import (
	"fmt"
	"math/bits"
)

// Native bulk kernels for the Goldilocks field. Each loop body is the
// concrete branch-light uint64 arithmetic of goldilocks.go, inlined by the
// compiler with no interface dispatch — the devirtualized hot path of the
// coded-execution engine.

var _ Bulk[uint64] = Goldilocks{}

// AddVec implements Bulk.
func (g Goldilocks) AddVec(dst, a, b []uint64) {
	for i := range a {
		dst[i] = g.Add(a[i], b[i])
	}
}

// SubVec implements Bulk.
func (g Goldilocks) SubVec(dst, a, b []uint64) {
	for i := range a {
		dst[i] = g.Sub(a[i], b[i])
	}
}

// MulVec implements Bulk.
func (g Goldilocks) MulVec(dst, a, b []uint64) {
	for i := range a {
		hi, lo := bits.Mul64(a[i], b[i])
		dst[i] = goldReduce(hi, lo)
	}
}

// ScaleVec implements Bulk.
func (g Goldilocks) ScaleVec(dst []uint64, c uint64, a []uint64) {
	for i := range a {
		hi, lo := bits.Mul64(c, a[i])
		dst[i] = goldReduce(hi, lo)
	}
}

// ScaleAccVec implements Bulk.
func (g Goldilocks) ScaleAccVec(dst []uint64, c uint64, a []uint64) {
	for i := range a {
		hi, lo := bits.Mul64(c, a[i])
		dst[i] = g.Add(dst[i], goldReduce(hi, lo))
	}
}

// SubScaleVec implements Bulk.
func (g Goldilocks) SubScaleVec(dst []uint64, c uint64, a []uint64) {
	for i := range a {
		hi, lo := bits.Mul64(c, a[i])
		dst[i] = g.Sub(dst[i], goldReduce(hi, lo))
	}
}

// DotVec implements Bulk.
func (g Goldilocks) DotVec(a, b []uint64) uint64 {
	var acc uint64
	for i := range a {
		hi, lo := bits.Mul64(a[i], b[i])
		acc = g.Add(acc, goldReduce(hi, lo))
	}
	return acc
}

// SubScalarVec implements Bulk.
func (g Goldilocks) SubScalarVec(dst, a []uint64, c uint64) {
	for i := range a {
		dst[i] = g.Sub(a[i], c)
	}
}

// ScalarSubVec implements Bulk.
func (g Goldilocks) ScalarSubVec(dst []uint64, c uint64, a []uint64) {
	for i := range a {
		dst[i] = g.Sub(c, a[i])
	}
}

// HornerVec implements Bulk.
func (g Goldilocks) HornerVec(acc, xs []uint64, c uint64) {
	for i := range acc {
		hi, lo := bits.Mul64(acc[i], xs[i])
		acc[i] = g.Add(goldReduce(hi, lo), c)
	}
}

// BatchInvInto implements Bulk.
func (g Goldilocks) BatchInvInto(dst, xs []uint64) error {
	n := len(xs)
	if len(dst) < n {
		panic(fmt.Sprintf("field: BatchInvInto dst length %d < %d", len(dst), n))
	}
	if n == 0 {
		return nil
	}
	acc := uint64(1)
	for i, x := range xs {
		if x == 0 {
			return fmt.Errorf("field: batch inverse of zero at index %d: %w", i, ErrDivisionByZero)
		}
		dst[i] = acc
		acc = g.Mul(acc, x)
	}
	inv, err := g.Inv(acc)
	if err != nil {
		return err
	}
	for i := n - 1; i >= 0; i-- {
		dst[i] = g.Mul(inv, dst[i])
		inv = g.Mul(inv, xs[i])
	}
	return nil
}
