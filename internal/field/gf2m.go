package field

import (
	"fmt"
	"math/rand/v2"
)

// gf2mPolys maps the extension degree m to a primitive polynomial over
// GF(2), represented with bit i standing for x^i (the x^m term included).
// These are the standard primitive polynomials used throughout the coding
// literature (Lin & Costello, Appendix C).
var gf2mPolys = map[uint]uint64{
	2:  0x7,     // x^2 + x + 1
	3:  0xb,     // x^3 + x + 1
	4:  0x13,    // x^4 + x + 1
	5:  0x25,    // x^5 + x^2 + 1
	6:  0x43,    // x^6 + x + 1
	7:  0x89,    // x^7 + x^3 + 1
	8:  0x11d,   // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,   // x^9 + x^4 + 1
	10: 0x409,   // x^10 + x^3 + 1
	11: 0x805,   // x^11 + x^2 + 1
	12: 0x1053,  // x^12 + x^6 + x^4 + x + 1
	13: 0x201b,  // x^13 + x^4 + x^3 + x + 1
	14: 0x4443,  // x^14 + x^10 + x^6 + x + 1
	15: 0x8003,  // x^15 + x + 1
	16: 0x1100b, // x^16 + x^12 + x^3 + x + 1
}

// GF2m is the binary extension field GF(2^m), 2 ≤ m ≤ 16. Elements are
// uint64 values whose low m bits are the coefficients of a polynomial over
// GF(2). Multiplication uses log/antilog tables built at construction, so a
// GF2m value must be created with NewGF2m.
//
// The paper's Appendix A uses GF(2^m) with 2^m ≥ N to run Boolean state
// machines under CSM: each bit of the state is embedded as 0 -> 0, 1 -> 1,
// and the Boolean transition function, rewritten as a polynomial over GF(2),
// evaluates identically over the extension field.
type GF2m struct {
	m     uint
	poly  uint64
	order uint64 // 2^m
	logT  []uint32
	expT  []uint32
}

var _ Field[uint64] = (*GF2m)(nil)

// NewGF2m constructs GF(2^m) for 2 ≤ m ≤ 16. It verifies at construction
// that the chosen polynomial is primitive (the generator x cycles through
// all 2^m - 1 nonzero elements).
func NewGF2m(m uint) (*GF2m, error) {
	poly, ok := gf2mPolys[m]
	if !ok {
		return nil, fmt.Errorf("field: unsupported GF(2^m) degree m=%d (supported: 2..16)", m)
	}
	order := uint64(1) << m
	f := &GF2m{
		m:     m,
		poly:  poly,
		order: order,
		logT:  make([]uint32, order),
		expT:  make([]uint32, order-1),
	}
	v := uint64(1)
	for i := uint64(0); i < order-1; i++ {
		if v == 1 && i != 0 {
			return nil, fmt.Errorf("field: polynomial %#x is not primitive for m=%d", poly, m)
		}
		f.expT[i] = uint32(v)
		f.logT[v] = uint32(i)
		v <<= 1
		if v&order != 0 {
			v ^= poly
		}
	}
	if v != 1 {
		return nil, fmt.Errorf("field: polynomial %#x is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// M returns the extension degree m.
func (f *GF2m) M() uint { return f.m }

// Order returns the field size 2^m.
func (f *GF2m) Order() uint64 { return f.order }

// Name implements Field.
func (f *GF2m) Name() string { return fmt.Sprintf("GF(2^%d)", f.m) }

// Zero implements Field.
func (f *GF2m) Zero() uint64 { return 0 }

// One implements Field.
func (f *GF2m) One() uint64 { return 1 }

// FromUint64 implements Field, keeping the low m bits.
func (f *GF2m) FromUint64(v uint64) uint64 { return v & (f.order - 1) }

// Uint64 implements Field.
func (f *GF2m) Uint64(e uint64) uint64 { return e }

// Add implements Field; addition in characteristic 2 is XOR.
func (f *GF2m) Add(a, b uint64) uint64 { return a ^ b }

// Sub implements Field; identical to Add in characteristic 2.
func (f *GF2m) Sub(a, b uint64) uint64 { return a ^ b }

// Neg implements Field; every element is its own additive inverse.
func (f *GF2m) Neg(a uint64) uint64 { return a }

// Mul implements Field via log/antilog tables.
func (f *GF2m) Mul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	s := uint64(f.logT[a]) + uint64(f.logT[b])
	if s >= f.order-1 {
		s -= f.order - 1
	}
	return uint64(f.expT[s])
}

// Inv implements Field.
func (f *GF2m) Inv(a uint64) (uint64, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	if a == 1 {
		return 1, nil
	}
	return uint64(f.expT[f.order-1-uint64(f.logT[a])]), nil
}

// Equal implements Field.
func (f *GF2m) Equal(a, b uint64) bool { return a == b }

// IsZero implements Field.
func (f *GF2m) IsZero(a uint64) bool { return a == 0 }

// Rand implements Field.
func (f *GF2m) Rand(r *rand.Rand) uint64 { return r.Uint64N(f.order) }

// Elements implements Field: it returns 0, 1, ..., n-1 as field elements.
func (f *GF2m) Elements(n int) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("field: negative element count %d", n)
	}
	if uint64(n) > f.order {
		return nil, fmt.Errorf("field: GF(2^%d) has only %d elements, %d requested; use a larger m (Appendix A requires 2^m >= N)", f.m, f.order, n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out, nil
}

// EmbedBit embeds a GF(2) bit into GF(2^m) per the paper's equation (13):
// 0 maps to the all-zero word and 1 to the word 00...01. Boolean transition
// polynomials evaluate identically on embedded inputs.
func (f *GF2m) EmbedBit(bit uint8) uint64 {
	if bit == 0 {
		return 0
	}
	return 1
}

// ExtractBit recovers a GF(2) bit from an embedded element. It reports an
// error if the element is not in the image of EmbedBit, which for honest
// executions of a Boolean machine cannot happen (Appendix A).
func (f *GF2m) ExtractBit(e uint64) (uint8, error) {
	switch e {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("field: element %#x is not an embedded bit", e)
	}
}
