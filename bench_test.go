// Benchmarks regenerating the paper's quantitative content. Each paper
// table/figure has a benchmark (wall-clock) counterpart here; the absolute
// *measurements* (operation counts, thresholds, tables) are printed by
// cmd/csmbench, which shares the same harness code in internal/metrics.
//
//	Table 1  -> BenchmarkTable1_*        (scheme round cost at fixed N)
//	Table 2  -> BenchmarkTable2_*        (decoding at the fault threshold)
//	Thm 1    -> BenchmarkScalingCSM/*    (round cost vs N at µ = 1/3)
//	Fig. 2   -> BenchmarkFig2MinimalCluster
//	Fig. 3   -> BenchmarkFig3CodedExecution
//	Fig. 4   -> BenchmarkFig4DelegatedRound
//	Fig. 5   -> BenchmarkFig5IntermixAudit
//	§6.2     -> BenchmarkCoding* (naive vs fast encode/decode ablation)
//	§5.2     -> BenchmarkRSDecoder* (Gao vs Berlekamp-Welch ablation)
//	§3       -> BenchmarkConsensus* (consensus-phase protocols)
package codedsm

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"codedsm/internal/consensus"
	"codedsm/internal/consensus/dolevstrong"
	"codedsm/internal/consensus/pbft"
	"codedsm/internal/delegate"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/rs"
	"codedsm/internal/transport"
)

var gold = field.NewGoldilocks()

func bankCluster(b *testing.B, k, n, faults int, byz map[int]Behavior) *Cluster[uint64] {
	b.Helper()
	c, err := NewCluster(ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: NewBank[uint64],
		K:             k, N: n, MaxFaults: faults,
		Mode: Synchronous, Consensus: OracleConsensus,
		Byzantine: byz, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func runWorkload(b *testing.B, c *Cluster[uint64], k int) {
	b.Helper()
	wl := RandomWorkload[uint64](gold, 1, k, 1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.ExecuteRound(wl[0])
		if err != nil {
			b.Fatal(err)
		}
		if !res.Correct {
			b.Fatal("incorrect round")
		}
	}
}

// --- Table 1 ---

func BenchmarkTable1_FullReplication(b *testing.B) {
	c, err := NewFullReplication(ReplicationConfig[uint64]{
		BaseField: gold, NewTransition: NewBank[uint64], K: 8, N: 24, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 1, 8, 1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExecuteRound(wl[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_PartialReplication(b *testing.B) {
	c, err := NewPartialReplication(ReplicationConfig[uint64]{
		BaseField: gold, NewTransition: NewBank[uint64], K: 8, N: 24, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 1, 8, 1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExecuteRound(wl[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_CSM(b *testing.B) {
	byz := map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult}
	c := bankCluster(b, 8, 24, 8, byz)
	runWorkload(b, c, 8)
}

// --- Table 2: decoding exactly at the fault threshold ---

func BenchmarkTable2_SyncDecodeAtThreshold(b *testing.B) {
	const n, k, d = 31, 4, 2
	ring := poly.NewRing[uint64](gold)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		b.Fatal(err)
	}
	faults := lcc.SyncMaxFaults(n, k, d)
	states := make([][]uint64, k)
	for i := range states {
		states[i] = []uint64{uint64(i + 1)}
	}
	// Degree-d "results": use coded states put through x -> x^d elementwise
	// via an actual polynomial machine round.
	tr, err := NewPolynomialRegister[uint64](gold, d)
	if err != nil {
		b.Fatal(err)
	}
	codedStates, err := code.EncodeVectors(states)
	if err != nil {
		b.Fatal(err)
	}
	cmds := make([][]uint64, k)
	for i := range cmds {
		cmds[i] = []uint64{uint64(7 * (i + 1))}
	}
	codedCmds, err := code.EncodeVectors(cmds)
	if err != nil {
		b.Fatal(err)
	}
	results := make([][]uint64, n)
	for i := range results {
		if results[i], err = tr.ApplyResult(codedStates[i], codedCmds[i]); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < faults; i++ {
		results[i*2][0]++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.DecodeOutputs(results, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorem 1 scaling ---

func BenchmarkScalingCSM(b *testing.B) {
	for _, n := range []int{12, 24, 48, 96} {
		faults := n / 3
		k := SyncMaxMachines(n, faults, 1)
		byz := map[int]Behavior{}
		for i := 0; len(byz) < faults; i++ {
			byz[(i*5+2)%n] = WrongResult
		}
		b.Run(fmt.Sprintf("N=%d/K=%d/b=%d", n, k, faults), func(b *testing.B) {
			c := bankCluster(b, k, n, faults, byz)
			runWorkload(b, c, k)
		})
	}
}

// --- Parallel execution engine: worker-count sweep ---

// BenchmarkClusterRoundParallel quantifies the execution-phase speedup of
// the worker-pool engine: identical clusters (µ = 1/3 wrong-result nodes
// injected) swept over N and worker counts. Rounds are bit-identical across
// worker counts (see internal/csm TestParallelRoundsBitIdenticalToSequential),
// so the only difference is wall-clock. On a single-core machine all worker
// counts collapse to sequential speed; on >= 4 cores the 8-worker N=32
// configuration runs >= 2x faster than 1 worker.
func BenchmarkClusterRoundParallel(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		faults := n / 3
		k := SyncMaxMachines(n, faults, 1)
		byz := map[int]Behavior{}
		for i := 0; len(byz) < faults; i++ {
			byz[(i*5+2)%n] = WrongResult
		}
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("N=%d/K=%d/workers=%d", n, k, workers), func(b *testing.B) {
				c, err := NewCluster(ClusterConfig[uint64]{
					BaseField:     gold,
					NewTransition: NewBank[uint64],
					K:             k, N: n, MaxFaults: faults,
					Mode: Synchronous, Consensus: OracleConsensus,
					Byzantine: byz, Seed: 1,
					Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				runWorkload(b, c, k)
			})
		}
	}
}

// --- Pipelined engine: batch x pipeline sweep ---

// BenchmarkClusterRoundPipelined measures the batched + pipelined engine
// against the sequential one on the PR2 reference cluster (N=64, µ = 1/3
// wrong-result nodes, oracle consensus — the paper's throughput setting).
// Each op executes an 8-round workload, so commands/sec =
// 8*K / (ns_op * 1e-9); the BENCH_PR2.json N=64 rows are per single round
// (commands/sec = K / (ns_op * 1e-9)). Outputs are identical across all
// configurations (TestPipelinedBitIdenticalToSequential,
// TestBatchedMatchesSequentialOutputs); the batched configurations win by
// priming steady-state decodes with the previous micro-step's faulty set,
// and pipelining overlaps the client stage with the next rounds'
// execution.
func BenchmarkClusterRoundPipelined(b *testing.B) {
	const n, roundsPerOp = 64, 8
	faults := n / 3
	k := SyncMaxMachines(n, faults, 1)
	byz := map[int]Behavior{}
	for i := 0; len(byz) < faults; i++ {
		byz[(i*5+2)%n] = WrongResult
	}
	for _, tc := range []struct {
		name            string
		batch, pipeline int
	}{
		{"sequential/B=1", 1, 0},
		{"pipelined/B=1", 1, 4},
		{"pipelined/B=4", 4, 4},
		{"pipelined/B=8", 8, 4},
	} {
		b.Run(fmt.Sprintf("N=%d/K=%d/%s/workers=8", n, k, tc.name), func(b *testing.B) {
			c, err := NewCluster(ClusterConfig[uint64]{
				BaseField:     gold,
				NewTransition: NewBank[uint64],
				K:             k, N: n, MaxFaults: faults,
				Mode: Synchronous, Consensus: OracleConsensus,
				Byzantine: byz, Seed: 1,
				Parallelism: 8,
				BatchSize:   tc.batch, Pipeline: tc.pipeline,
			})
			if err != nil {
				b.Fatal(err)
			}
			wl := RandomWorkload[uint64](gold, roundsPerOp, k, 1, 9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := c.Run(wl)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if !res.Correct {
						b.Fatal("incorrect round")
					}
				}
			}
		})
	}
}

// --- Submit-based ingress: client throughput ---

// BenchmarkClientThroughput measures the serving path end to end:
// concurrent submitters push individual commands through Client.Submit
// (bounded queues, futures), the admission scheduler coalesces them into
// rounds and consensus batches, and the coded execution engine runs
// underneath with µ = 1/3 wrong-result nodes. Each op is one submitted
// command, so commands/sec = 1 / (ns_op * 1e-9); compare against the
// batch path in BenchmarkClusterRoundPipelined (ns_op there covers 8*K
// commands).
func BenchmarkClientThroughput(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{16, 64} {
		faults := n / 3
		k := SyncMaxMachines(n, faults, 1)
		byz := map[int]Behavior{}
		for i := 0; len(byz) < faults; i++ {
			byz[(i*5+2)%n] = WrongResult
		}
		for _, submitters := range []int{1, 4} {
			for _, batch := range []int{1, 8} {
				name := fmt.Sprintf("N=%d/K=%d/submitters=%d/batch=%d", n, k, submitters, batch)
				b.Run(name, func(b *testing.B) {
					c, err := Open(gold, NewBank[uint64],
						WithNodes(n), WithMachines(k), WithFaults(faults),
						WithByzantine(byz), WithSeed(1),
						WithParallelism(8), WithBatching(batch))
					if err != nil {
						b.Fatal(err)
					}
					client, err := c.Open(WithSubmitQueueDepth(4 * batch))
					if err != nil {
						b.Fatal(err)
					}
					cmds := RandomWorkload[uint64](gold, 1, k, 1, 9)[0]
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					for s := 0; s < submitters; s++ {
						wg.Add(1)
						go func(s int) {
							defer wg.Done()
							for i := s; i < b.N; i += submitters {
								machine := i % k
								if _, err := client.Submit(ctx, machine, cmds[machine]); err != nil {
									b.Error(err)
									return
								}
							}
						}(s)
					}
					wg.Wait()
					if err := client.Close(); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
				})
			}
		}
	}
}

// --- Section 6.2 coding ablation: naive vs fast, encode and decode ---

func BenchmarkCodingNaiveEncode(b *testing.B) {
	benchEncode(b, false)
}

func BenchmarkCodingFastEncode(b *testing.B) {
	benchEncode(b, true)
}

func benchEncode(b *testing.B, fast bool) {
	b.Helper()
	for _, n := range []int{64, 256, 1024} {
		k := n / 3
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ring := poly.NewRing[uint64](gold)
			code, err := lcc.New(ring, k, n)
			if err != nil {
				b.Fatal(err)
			}
			cmds := make([][]uint64, k)
			for i := range cmds {
				cmds[i] = []uint64{uint64(i + 1)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fast {
					_, err = code.EncodeVectorsFast(cmds)
				} else {
					_, err = code.EncodeVectors(cmds)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 5.2 decoder ablation: Gao vs Berlekamp-Welch ---

func BenchmarkRSDecoderGao(b *testing.B) {
	benchDecoder(b, true)
}

func BenchmarkRSDecoderBerlekampWelch(b *testing.B) {
	benchDecoder(b, false)
}

func benchDecoder(b *testing.B, gao bool) {
	b.Helper()
	for _, n := range []int{32, 64} {
		k := n / 4
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ring := poly.NewRing[uint64](gold)
			pts, err := gold.Elements(n)
			if err != nil {
				b.Fatal(err)
			}
			code, err := rs.NewCode(ring, pts, k)
			if err != nil {
				b.Fatal(err)
			}
			msg := make(poly.Poly[uint64], k)
			for i := range msg {
				msg[i] = uint64(i + 3)
			}
			word, err := code.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < code.MaxErrors(); i++ {
				word[i] = gold.Add(word[i], 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if gao {
					_, err = code.Decode(word)
				} else {
					_, err = code.DecodeBW(word)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 2: the minimal fault-tolerant cluster ---

func BenchmarkFig2MinimalCluster(b *testing.B) {
	c := bankCluster(b, 2, 4, 1, map[int]Behavior{2: WrongResult})
	runWorkload(b, c, 2)
}

// --- Figure 3: coded execution with one erroneous result ---

func BenchmarkFig3CodedExecution(b *testing.B) {
	const k, n, d = 2, 5, 1
	ring := poly.NewRing[uint64](gold)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		b.Fatal(err)
	}
	states := [][]uint64{{11}, {22}}
	coded, err := code.EncodeVectors(states)
	if err != nil {
		b.Fatal(err)
	}
	coded[1][0]++ // node 2's g is erroneous, as in the figure
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := code.DecodeOutputs(coded, d)
		if err != nil {
			b.Fatal(err)
		}
		if dec.Outputs[0][0] != 11 {
			b.Fatal("figure 3 decode wrong")
		}
	}
}

// --- Figure 4: delegated computing round ---

func BenchmarkFig4DelegatedRound(b *testing.B) {
	const k, n = 3, 16
	ring := poly.NewRing[uint64](gold)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		b.Fatal(err)
	}
	d := delegate.New(ring, code, delegate.HonestDelegate)
	tr, err := NewQuadraticTally[uint64](gold)
	if err != nil {
		b.Fatal(err)
	}
	states := make([][]uint64, k)
	cmds := make([][]uint64, k)
	for i := 0; i < k; i++ {
		states[i] = []uint64{uint64(i + 1)}
		cmds[i] = []uint64{uint64(2 * (i + 1))}
	}
	codedStates, err := code.EncodeVectors(states)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codedCmds, err := d.EncodeCommands(cmds)
		if err != nil {
			b.Fatal(err)
		}
		results := make([][]uint64, n)
		for j := range results {
			if results[j], err = tr.ApplyResult(codedStates[j], codedCmds[j]); err != nil {
				b.Fatal(err)
			}
		}
		dec, proof, err := d.DecodeWithProof(results, tr.Degree())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.VerifyDecodeProof(results, tr.Degree(), proof, dec.Outputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: INTERMIX interactive fraud localization ---

func BenchmarkFig5IntermixAudit(b *testing.B) {
	const n, k = 64, 32
	a := make([][]uint64, n)
	for i := range a {
		a[i] = make([]uint64, k)
		for j := range a[i] {
			a[i][j] = uint64(i*k + j + 1)
		}
	}
	x := make([]uint64, k)
	for j := range x {
		x[j] = uint64(j + 7)
	}
	w, err := intermix.NewWorker[uint64](gold, a, x, intermix.ConsistentLiar, n/2, k/2)
	if err != nil {
		b.Fatal(err)
	}
	output := w.Output()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alert, err := intermix.Audit[uint64](gold, a, x, output, w.Answer)
		if err != nil {
			b.Fatal(err)
		}
		if alert == nil || alert.Kind != intermix.LeafMismatch {
			b.Fatal("fraud not localized")
		}
	}
}

// --- Consensus-phase protocols (Section 3) ---

func BenchmarkConsensusDolevStrong(b *testing.B) {
	const n, faults = 10, 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := transport.New(transport.Config{N: n, Mode: transport.Sync, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		nodes := make([]consensus.Node, n)
		waitFor := make([]int, n)
		for j := 0; j < n; j++ {
			tr, err := consensus.NewNetTransport(net, transport.NodeID(j))
			if err != nil {
				b.Fatal(err)
			}
			nodes[j], err = dolevstrong.New(dolevstrong.Config{
				Transport: tr, Sender: 0, Slot: 1,
				MaxFaults: faults, Value: []byte("v"),
			})
			if err != nil {
				b.Fatal(err)
			}
			waitFor[j] = j
		}
		if err := consensus.Run(net, nodes, waitFor, dolevstrong.Rounds(faults)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensusPBFT(b *testing.B) {
	const n, faults = 7, 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := transport.New(transport.Config{N: n, Mode: transport.Sync, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		nodes := make([]consensus.Node, n)
		waitFor := make([]int, n)
		for j := 0; j < n; j++ {
			tr, err := consensus.NewNetTransport(net, transport.NodeID(j))
			if err != nil {
				b.Fatal(err)
			}
			nodes[j], err = pbft.New(pbft.Config{
				Transport: tr, Slot: 1,
				MaxFaults: faults, Value: []byte("v"),
			})
			if err != nil {
				b.Fatal(err)
			}
			waitFor[j] = j
		}
		if err := consensus.Run(net, nodes, waitFor, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Committee election ---

func BenchmarkElection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := intermix.ElectCommittee(uint64(i), 128, 7); len(c) > 128 {
			b.Fatal("impossible")
		}
	}
}

// --- Section 6.2 in the engine: delegated vs decentralized round ---

func BenchmarkDelegatedEngineRound(b *testing.B) {
	c, err := NewCluster(ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: NewBank[uint64],
		K:             8, N: 24, MaxFaults: 8,
		Mode: Synchronous, Consensus: OracleConsensus,
		NoEquivocation: true, Delegated: true,
		Byzantine: map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult},
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	runWorkload(b, c, 8)
}
