package csm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// parallelScenarios reuses the csm_test.go Byzantine scenarios: each one is
// run with Parallelism 1 and Parallelism 8 and every observable — round
// results, decoded states, detected-fault sets, coded states, op counts —
// must be byte-identical.
func parallelScenarios() map[string]Config[uint64] {
	scenarios := map[string]Config[uint64]{}

	cfg := baseConfig(3, 12, 2)
	scenarios["all-honest"] = cfg

	cfg = baseConfig(3, 12, 2)
	cfg.NewTransition = quadFactory
	scenarios["all-honest-quadratic"] = cfg

	cfg = baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: WrongResult, 9: WrongResult}
	scenarios["wrong-results"] = cfg

	cfg = baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{0: Silent, 4: Silent}
	scenarios["silent-erasures"] = cfg

	cfg = baseConfig(2, 12, 3)
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{2: Equivocate, 7: Equivocate, 11: Equivocate}
	scenarios["equivocation"] = cfg

	cfg = baseConfig(2, 16, 4)
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{0: WrongResult, 3: Silent, 8: Equivocate, 13: WrongResult}
	scenarios["mixed-at-budget"] = cfg

	cfg = baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 0
	cfg.Byzantine = map[int]Behavior{3: Silent, 9: WrongResult}
	scenarios["partial-sync"] = cfg

	cfg = baseConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{3: WrongResult}
	scenarios["dolev-strong"] = cfg

	cfg = baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{6: WrongResult}
	cfg.InitialStates = [][]uint64{{100}, {200}, {300}}
	scenarios["state-evolution"] = cfg

	return scenarios
}

// encodeRound gob-encodes a round result so byte equality is exact
// structural equality (outputs, correctness, faults, skips, ticks).
func encodeRound(t *testing.T, res *RoundResult[uint64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParallelRoundsBitIdenticalToSequential(t *testing.T) {
	const rounds = 4
	for name, cfg := range parallelScenarios() {
		t.Run(name, func(t *testing.T) {
			seqCfg, parCfg := cfg, cfg
			seqCfg.Parallelism = 1
			parCfg.Parallelism = 8
			seq := newCluster(t, seqCfg)
			par := newCluster(t, parCfg)
			if par.Parallelism() < 2 {
				t.Fatalf("parallel cluster runs with %d workers", par.Parallelism())
			}
			wl := RandomWorkload[uint64](gold, rounds, cfg.K, seq.tr.CmdLen(), 7)
			for r, cmds := range wl {
				seqRes, err := seq.ExecuteRound(cmds)
				if err != nil {
					t.Fatal(err)
				}
				parRes, err := par.ExecuteRound(cmds)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(encodeRound(t, seqRes), encodeRound(t, parRes)) {
					t.Fatalf("round %d diverged:\nsequential: %+v\nparallel:   %+v", r, seqRes, parRes)
				}
				if !seqRes.Correct {
					t.Fatalf("round %d incorrect (scenario must execute cleanly)", r)
				}
			}
			// Detected-fault sets and decoded states are part of RoundResult;
			// additionally every node's coded state must match slot for slot.
			for i := 0; i < cfg.N; i++ {
				seqState, err := seq.NodeCodedState(i)
				if err != nil {
					t.Fatal(err)
				}
				parState, err := par.NodeCodedState(i)
				if err != nil {
					t.Fatal(err)
				}
				if !field.VecEqual[uint64](gold, seqState, parState) {
					t.Fatalf("node %d coded state diverged", i)
				}
			}
			for k, seqState := range seq.OracleStates() {
				if !field.VecEqual[uint64](gold, seqState, par.OracleStates()[k]) {
					t.Fatalf("oracle state %d diverged", k)
				}
			}
			// The same multiset of field operations must have run: atomic
			// counters commute, so totals are order-independent.
			if seqOps, parOps := seq.OpCounts(), par.OpCounts(); seqOps != parOps {
				t.Fatalf("op counts diverged: sequential %+v, parallel %+v", seqOps, parOps)
			}
		})
	}
}

// TestParallelismWorkerSweep pins the knob semantics: explicit counts are
// clamped to N, and any worker count yields the same rounds.
func TestParallelismWorkerSweep(t *testing.T) {
	cfg := baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: Silent}
	var ref []byte
	for _, workers := range []int{1, 2, 3, 5, 12, 64} {
		wCfg := cfg
		wCfg.Parallelism = workers
		c := newCluster(t, wCfg)
		if workers > cfg.N && c.Parallelism() != cfg.N {
			t.Fatalf("workers=%d not clamped to N=%d: %d", workers, cfg.N, c.Parallelism())
		}
		wl := RandomWorkload[uint64](gold, 3, 2, c.tr.CmdLen(), 11)
		var trace bytes.Buffer
		for _, cmds := range wl {
			res, err := c.ExecuteRound(cmds)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			trace.Write(encodeRound(t, res))
		}
		if ref == nil {
			ref = trace.Bytes()
			continue
		}
		if !bytes.Equal(ref, trace.Bytes()) {
			t.Fatalf("workers=%d produced a different round trace", workers)
		}
	}
}

// TestParallelismDefaultsToGOMAXPROCS pins the <= 0 default.
func TestParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	c := newCluster(t, baseConfig(2, 12, 3))
	if c.Parallelism() < 1 {
		t.Fatalf("default parallelism %d", c.Parallelism())
	}
	for _, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatal("default-parallelism round incorrect")
		}
	}
}

func BenchmarkEngineDecodePhase(b *testing.B) {
	// Micro-benchmark of the decode fan-out alone: N=32, b=10, all results
	// in, every honest node decodes. Used to sanity-check the
	// BenchmarkClusterRoundParallel speedups at the root.
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := baseConfig(0, 32, 10)
			cfg.K = 11 // SyncMaxMachines(32, 10, 1)
			cfg.Parallelism = workers
			cfg.Byzantine = map[int]Behavior{3: WrongResult, 17: WrongResult}
			c, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			wl := RandomWorkload[uint64](gold, 1, cfg.K, c.tr.CmdLen(), 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ExecuteRound(wl[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
