package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/sm"
)

var gold = field.NewGoldilocks()

// twoShardedMachines returns two machines the ring places on different
// shards (every multi-shard ring over enough machines has such a pair).
func twoShardedMachines(t *testing.T, ring *Ring, machines int) (a, b int) {
	t.Helper()
	for m := 1; m < machines; m++ {
		if ring.Machine(m) != ring.Machine(0) {
			return 0, m
		}
	}
	t.Fatalf("all %d machines landed on shard %d", machines, ring.Machine(0))
	return 0, 0
}

// The acceptance-criteria scenario: a seeded S=3 sharded run with
// single-shard traffic, a cross-shard two-phase command, and one
// rebalance produces per-machine final digests bit-identical to an
// unsharded single-cluster oracle fed the same commands — at any
// execution-phase worker count.
func TestShardedDigestsMatchUnshardedOracle(t *testing.T) {
	const (
		shards   = 3
		machines = 8
		nodes    = 12
		faults   = 1
		rounds   = 5
		seed     = 7
	)
	ctx := context.Background()

	// The command schedule, as (machine, delta) pairs. Cross-shard ops are
	// part of it; prepare probes are identity commands and do not appear.
	type cmd struct {
		machine int
		delta   uint64
	}
	var schedule []cmd
	for r := 0; r < rounds; r++ {
		for m := 0; m < machines; m++ {
			schedule = append(schedule, cmd{machine: m, delta: uint64(1 + m*10 + r)})
		}
	}

	ring, err := NewRing(shards, DefaultVirtualNodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := twoShardedMachines(t, ring, machines)
	// A cross-shard transfer: debit src, credit dst (the debit is the
	// field negation, so the pair sums to zero).
	const amount = 500
	debit := gold.Neg(gold.FromUint64(amount))
	credit := gold.FromUint64(amount)
	schedule = append(schedule, cmd{machine: src, delta: debit}, cmd{machine: dst, delta: credit})

	runSharded := func(parallelism int) []string {
		rt, err := Open(gold, sm.NewBank[uint64],
			WithShards(shards), WithMachines(machines), WithSeed(seed),
			WithClusterOptions(
				csm.WithNodes(nodes), csm.WithFaults(faults),
				csm.WithByzantineNode(3, csm.WrongResult),
				csm.WithBatching(2), csm.WithParallelism(parallelism)))
		if err != nil {
			t.Fatal(err)
		}
		// Single-shard traffic, waiting round by round.
		for r := 0; r < rounds; r++ {
			var futs []*Future[uint64]
			for m := 0; m < machines; m++ {
				fut, err := rt.Submit(ctx, m, []uint64{uint64(1 + m*10 + r)})
				if err != nil {
					t.Fatalf("round %d machine %d: %v", r, m, err)
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				if _, err := fut.Wait(ctx); err != nil {
					t.Fatalf("round %d machine %d: %v", r, fut.Machine(), err)
				}
			}
			if r == 2 {
				// Mid-run hot-shard rebalance: move src to a third shard
				// (one holding neither src nor dst).
				target := 0
				for sh := 0; sh < shards; sh++ {
					if sh != ring.Machine(src) && sh != ring.Machine(dst) {
						target = sh
						break
					}
				}
				if err := rt.Rebalance(src, target); err != nil {
					t.Fatalf("rebalance: %v", err)
				}
				if got, _ := rt.ShardOf(src); got != target {
					t.Fatalf("after rebalance ShardOf(%d) = %d, want %d", src, got, target)
				}
			}
		}
		// The cross-shard transfer (src moved, so its current shard still
		// differs from dst's — the rebalance target excluded dst's shard).
		outs, err := rt.SubmitCross(ctx, []Op[uint64]{
			{Machine: src, Cmd: []uint64{debit}},
			{Machine: dst, Cmd: []uint64{credit}},
		})
		if err != nil {
			t.Fatalf("cross-shard transfer: %v", err)
		}
		if len(outs) != 2 {
			t.Fatalf("cross-shard transfer returned %d outputs, want 2", len(outs))
		}
		if moves := rt.Moves(); len(moves) != 1 || moves[0].Machine != src {
			t.Fatalf("moves = %+v, want exactly one move of machine %d", moves, src)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		digests, err := rt.StateDigests()
		if err != nil {
			t.Fatal(err)
		}
		return digests
	}

	// The unsharded oracle: one cluster serving all machines, fed the same
	// schedule through its own ingress client.
	oracle := func() []string {
		c, err := csm.Open(gold, sm.NewBank[uint64],
			csm.WithNodes(nodes), csm.WithMachines(machines), csm.WithFaults(faults),
			csm.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := c.Open()
		if err != nil {
			t.Fatal(err)
		}
		var futs []*csm.Future[uint64]
		for _, sc := range schedule {
			fut, err := cl.Submit(ctx, sc.machine, []uint64{sc.delta})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, fut)
		}
		for _, fut := range futs {
			if _, err := fut.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		digests := make([]string, machines)
		for m := range digests {
			state, err := c.DecodeMachineState(m)
			if err != nil {
				t.Fatal(err)
			}
			digests[m] = DigestState[uint64](gold, state)
		}
		return digests
	}()

	for _, parallelism := range []int{1, 8} {
		digests := runSharded(parallelism)
		for m := range digests {
			if digests[m] != oracle[m] {
				t.Errorf("parallelism %d: machine %d digest %s != oracle %s",
					parallelism, m, digests[m], oracle[m])
			}
		}
	}
}

// A shard that dies mid-prepare (a fault-budget-violating crash on its
// first round, the PR 4 churn machinery) aborts the two-phase command
// with a typed error, commits nothing anywhere, and leaves single-shard
// traffic on the surviving shards untouched.
func TestCrossShardAbortsWhenShardCrashesInPrepare(t *testing.T) {
	const (
		shards   = 3
		machines = 6
		nodes    = 6
		seed     = 21
	)
	ctx := context.Background()
	ring, err := NewRing(shards, DefaultVirtualNodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	survivorM, victimM := twoShardedMachines(t, ring, machines)
	victim := ring.Machine(victimM)

	rt, err := Open(gold, sm.NewBank[uint64],
		WithShards(shards), WithMachines(machines), WithSeed(seed),
		WithClusterOptions(csm.WithNodes(nodes), csm.WithFaults(1)),
		// The victim shard has no fault budget and a scheduled crash at its
		// first round: the prepare probe is the first command it ever runs,
		// so the crash fires mid-prepare and fails the run.
		WithClusterOptionsFor(victim, csm.WithFaults(0),
			csm.WithChurn(csm.ChurnEvent{Round: 0, Node: 0, Op: csm.ChurnCrash})))
	if err != nil {
		t.Fatal(err)
	}

	_, err = rt.SubmitCross(ctx, []Op[uint64]{
		{Machine: survivorM, Cmd: []uint64{100}},
		{Machine: victimM, Cmd: []uint64{100}},
	})
	if err == nil {
		t.Fatal("cross-shard command succeeded despite the victim shard crashing in prepare")
	}
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("error %v (%T) is not an *AbortError", err, err)
	}
	if abort.Phase != PhasePrepare {
		t.Fatalf("abort phase %q, want %q", abort.Phase, PhasePrepare)
	}
	if abort.Shard != victim {
		t.Fatalf("abort names shard %d, want the victim %d", abort.Shard, victim)
	}
	if len(abort.Committed) != 0 {
		t.Fatalf("prepare-phase abort lists committed shards %v", abort.Committed)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("abort error does not match ErrAborted: %v", err)
	}
	if !errors.Is(err, csm.ErrFaultBudgetExceeded) {
		t.Fatalf("abort error does not expose the csm fault-budget chain: %v", err)
	}

	// Survivors serve single-shard traffic as if nothing happened.
	fut, err := rt.Submit(ctx, survivorM, []uint64{50})
	if err != nil {
		t.Fatalf("survivor submit after abort: %v", err)
	}
	if out, err := fut.Wait(ctx); err != nil || len(out) != 1 || out[0] != 50 {
		t.Fatalf("survivor output %v, %v; want [50]", out, err)
	}

	// The victim's client is sticky-failed; its machines reject traffic
	// with the closed-client error, shard-attributed.
	if _, err := rt.Submit(ctx, victimM, []uint64{1}); !errors.Is(err, csm.ErrClientClosed) {
		t.Fatalf("victim submit error %v, want csm.ErrClientClosed in the chain", err)
	}
	var serr *ShardError
	if _, err := rt.Submit(ctx, victimM, []uint64{1}); !errors.As(err, &serr) || serr.Shard != victim {
		t.Fatalf("victim submit error %v not attributed to shard %d", err, victim)
	}

	// Close (the victim's sticky run error surfaces here) and verify no
	// machine holds any trace of the aborted command: the survivor's state
	// is exactly its post-abort deposit, the victim machine is untouched.
	if err := rt.Close(); !errors.Is(err, csm.ErrFaultBudgetExceeded) {
		t.Fatalf("close error %v, want the victim's fault-budget error", err)
	}
	state, err := rt.MachineState(survivorM)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 || state[0] != 50 {
		t.Fatalf("survivor machine state %v, want [50] (the aborted 100 must not commit)", state)
	}
	state, err = rt.MachineState(victimM)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 || state[0] != 0 {
		t.Fatalf("victim machine state %v, want [0] (nothing committed)", state)
	}
}

// The typed-error contract: AbortError and ShardError match their
// sentinels and keep the underlying csm chains visible to errors.Is.
func TestErrorContract(t *testing.T) {
	inner := fmt.Errorf("run 3: %w", csm.ErrRoundLimit)
	abort := &AbortError{Phase: PhaseCommit, Shard: 2, Committed: []int{0}, Err: inner}
	if !errors.Is(abort, ErrAborted) {
		t.Error("AbortError does not match ErrAborted")
	}
	if !errors.Is(abort, csm.ErrRoundLimit) {
		t.Error("AbortError hides the csm.ErrRoundLimit chain")
	}
	serr := &ShardError{Shard: 1, Err: fmt.Errorf("x: %w", csm.ErrClientClosed)}
	if !errors.Is(serr, csm.ErrClientClosed) {
		t.Error("ShardError hides the csm.ErrClientClosed chain")
	}
	if errors.Is(serr, ErrAborted) {
		t.Error("ShardError spuriously matches ErrAborted")
	}
}

// Results streams every routed future in submission order.
func TestRouterResultsStream(t *testing.T) {
	const machines = 4
	ctx := context.Background()
	rt, err := Open(gold, sm.NewBank[uint64],
		WithShards(2), WithMachines(machines), WithSeed(3),
		WithClusterOptions(csm.WithNodes(8), csm.WithFaults(1)))
	if err != nil {
		t.Fatal(err)
	}
	results := rt.Results()
	done := make(chan []int)
	go func() {
		var order []int
		for fut := range results {
			if _, err := fut.Wait(ctx); err != nil {
				t.Errorf("streamed future failed: %v", err)
			}
			order = append(order, fut.Machine())
		}
		done <- order
	}()
	var want []int
	for r := 0; r < 3; r++ {
		for m := 0; m < machines; m++ {
			if _, err := rt.Submit(ctx, m, []uint64{1}); err != nil {
				t.Fatal(err)
			}
			want = append(want, m)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	order := <-done
	if len(order) != len(want) {
		t.Fatalf("streamed %d futures, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stream position %d machine %d, want %d", i, order[i], want[i])
		}
	}
}
