// Package intermix implements INTERMIX (Section 6.1 of the paper): an
// information-theoretically secure, interactively verifiable matrix-vector
// multiplication. One worker computes Y = AX for the whole network; a small
// random committee of J auditors recomputes it, and an honest auditor that
// detects fraud interactively forces the worker — in log K queries
// (Algorithm 1) — to expose a single inconsistency that every remaining
// node (the "commoners") can check in constant time.
//
// Soundness does not rest on any computational assumption: even an
// unbounded worker cannot answer the bisection queries consistently, since
// the leaf claim is checkable by direct computation. The protocol requires
// the synchronous broadcast network of Section 6 (no equivocation; refusing
// to answer is itself detectable).
package intermix

import (
	"errors"
	"fmt"
	"math"

	"codedsm/internal/field"
)

// Strategy selects how the worker behaves.
type Strategy int

const (
	// HonestWorker computes Y = AX correctly and answers queries truthfully.
	HonestWorker Strategy = iota
	// NaiveLiar corrupts one output entry but answers the bisection
	// queries truthfully — caught at the first level, where the two
	// truthful halves do not sum to the corrupted claim.
	NaiveLiar
	// ConsistentLiar corrupts one output entry and distributes the lie
	// down the bisection so that every sum check passes — caught at the
	// leaf, where the claim is checkable by one multiplication.
	ConsistentLiar
	// Refusing answers no queries; under the synchronous broadcast
	// assumption the silence itself convicts the worker.
	Refusing
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case HonestWorker:
		return "honest"
	case NaiveLiar:
		return "naive-liar"
	case ConsistentLiar:
		return "consistent-liar"
	case Refusing:
		return "refusing"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrRefused reports a worker that did not answer an audit query.
var ErrRefused = errors.New("intermix: worker refused to answer")

// Worker simulates the delegated computation node.
type Worker[E comparable] struct {
	f        field.Field[E]
	a        [][]E
	x        []E
	strategy Strategy
	// corruptRow/corruptCol locate the lie for the two liar strategies.
	corruptRow int
	corruptCol int
	delta      E // the additive lie
}

// NewWorker builds a worker over A (n x k) and X (k).
func NewWorker[E comparable](f field.Field[E], a [][]E, x []E, strategy Strategy, corruptRow, corruptCol int) (*Worker[E], error) {
	if len(a) == 0 || len(x) == 0 {
		return nil, errors.New("intermix: empty matrix or vector")
	}
	for i, row := range a {
		if len(row) != len(x) {
			return nil, fmt.Errorf("intermix: row %d has %d columns, want %d", i, len(row), len(x))
		}
	}
	if strategy != HonestWorker && strategy != Refusing {
		if corruptRow < 0 || corruptRow >= len(a) || corruptCol < 0 || corruptCol >= len(x) {
			return nil, fmt.Errorf("intermix: corruption site (%d,%d) out of range", corruptRow, corruptCol)
		}
	}
	return &Worker[E]{
		f: f, a: a, x: x, strategy: strategy,
		corruptRow: corruptRow, corruptCol: corruptCol,
		delta: f.One(),
	}, nil
}

// trueDot computes A[row][lo:hi] . X[lo:hi].
func (w *Worker[E]) trueDot(row, lo, hi int) E {
	acc := w.f.Zero()
	for j := lo; j < hi; j++ {
		acc = w.f.Add(acc, w.f.Mul(w.a[row][j], w.x[j]))
	}
	return acc
}

// Output returns the worker's claimed Y = AX.
func (w *Worker[E]) Output() []E {
	out := make([]E, len(w.a))
	for i := range w.a {
		out[i] = w.trueDot(i, 0, len(w.x))
	}
	switch w.strategy {
	case NaiveLiar, ConsistentLiar:
		out[w.corruptRow] = w.f.Add(out[w.corruptRow], w.delta)
	}
	return out
}

// Answer responds to the audit query "compute A[row][lo:hi] . X[lo:hi]".
func (w *Worker[E]) Answer(row, lo, hi int) (E, error) {
	var zero E
	if w.strategy == Refusing {
		return zero, ErrRefused
	}
	truth := w.trueDot(row, lo, hi)
	if w.strategy == ConsistentLiar && row == w.corruptRow &&
		lo <= w.corruptCol && w.corruptCol < hi {
		// Keep the lie alive in whichever segment hides the chosen column:
		// the parent/children sums then always match.
		return w.f.Add(truth, w.delta), nil
	}
	return truth, nil
}

// AlertKind classifies how the fraud was exposed.
type AlertKind int

const (
	// SumMismatch: the worker's two half-answers do not sum to its claim.
	SumMismatch AlertKind = iota
	// LeafMismatch: the bisection reached one coordinate whose claim
	// differs from the directly computable product.
	LeafMismatch
	// RefusedToAnswer: the worker went silent mid-audit.
	RefusedToAnswer
)

// String implements fmt.Stringer.
func (k AlertKind) String() string {
	switch k {
	case SumMismatch:
		return "sum-mismatch"
	case LeafMismatch:
		return "leaf-mismatch"
	case RefusedToAnswer:
		return "refused"
	default:
		return fmt.Sprintf("AlertKind(%d)", int(k))
	}
}

// Step records one bisection level of Algorithm 1.
type Step[E comparable] struct {
	Lo, Mid, Hi int
	Left, Right E // the worker's claimed half-products
	Claimed     E // the claim being split
}

// Alert is the evidence an auditor publishes. The commoners, having
// overheard the (broadcast) conversation, verify only the final step — a
// constant-time check.
type Alert[E comparable] struct {
	Row     int
	Kind    AlertKind
	Steps   []Step[E]
	Path    []int // the paper's ζ: 1 = left, 2 = right at each level
	LeafCol int   // for LeafMismatch
	Claim   E     // the final inconsistent claim
	Queries int   // number of query pairs issued
}

// Audit implements Algorithm 1 at an honest auditor: recompute Y = AX, and
// if the worker's output differs, bisect interactively until an
// inconsistency is exposed. It returns nil if the output is correct.
func Audit[E comparable](f field.Field[E], a [][]E, x []E, output []E, answer func(row, lo, hi int) (E, error)) (*Alert[E], error) {
	if len(output) != len(a) {
		return nil, fmt.Errorf("intermix: output length %d, want %d", len(output), len(a))
	}
	// The auditor repeats the computation (cost c(AX)).
	row := -1
	var truth E
	for i := range a {
		ti, err := field.Dot(f, a[i], x)
		if err != nil {
			return nil, err
		}
		if !f.Equal(ti, output[i]) {
			row, truth = i, ti
			break
		}
	}
	if row < 0 {
		return nil, nil // correct output
	}
	_ = truth
	alert := &Alert[E]{Row: row}
	lo, hi := 0, len(x)
	claimed := output[row]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		left, err := answer(row, lo, mid)
		if err != nil {
			alert.Kind = RefusedToAnswer
			return alert, nil
		}
		right, err := answer(row, mid, hi)
		if err != nil {
			alert.Kind = RefusedToAnswer
			return alert, nil
		}
		alert.Queries++
		alert.Steps = append(alert.Steps, Step[E]{Lo: lo, Mid: mid, Hi: hi, Left: left, Right: right, Claimed: claimed})
		if !f.Equal(f.Add(left, right), claimed) {
			alert.Kind = SumMismatch
			return alert, nil
		}
		// Locate the wrong half by local recomputation (auditor-side work).
		trueLeft := f.Zero()
		for j := lo; j < mid; j++ {
			trueLeft = f.Add(trueLeft, f.Mul(a[row][j], x[j]))
		}
		if !f.Equal(left, trueLeft) {
			hi, claimed = mid, left
			alert.Path = append(alert.Path, 1)
		} else {
			lo, claimed = mid, right
			alert.Path = append(alert.Path, 2)
		}
	}
	alert.Kind = LeafMismatch
	alert.LeafCol = lo
	alert.Claim = claimed
	return alert, nil
}

// VerifyAlert is the commoners' constant-time check of an auditor's alert:
// one addition and comparison for a sum mismatch, or one multiplication and
// comparison for a leaf mismatch. It returns true when the alert is valid
// (the worker is guilty); a false alert (dishonest auditor) returns false
// and is dismissed.
func VerifyAlert[E comparable](f field.Field[E], a [][]E, x []E, alert *Alert[E]) bool {
	if alert == nil {
		return false
	}
	switch alert.Kind {
	case RefusedToAnswer:
		// Under the broadcast assumption everyone observed the silence.
		return true
	case SumMismatch:
		if len(alert.Steps) == 0 {
			return false
		}
		last := alert.Steps[len(alert.Steps)-1]
		return !f.Equal(f.Add(last.Left, last.Right), last.Claimed)
	case LeafMismatch:
		if alert.Row < 0 || alert.Row >= len(a) || alert.LeafCol < 0 || alert.LeafCol >= len(x) {
			return false
		}
		truth := f.Mul(a[alert.Row][alert.LeafCol], x[alert.LeafCol])
		return !f.Equal(truth, alert.Claim)
	default:
		return false
	}
}

// CommitteeSize returns J = ceil(log ε / log µ): the number of auditors
// needed so that P(no honest auditor) <= ε when a µ fraction of nodes is
// dishonest.
func CommitteeSize(epsilon, mu float64) (int, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("intermix: epsilon %v out of (0,1)", epsilon)
	}
	if mu <= 0 {
		return 1, nil // no adversary: one auditor suffices
	}
	if mu >= 1 {
		return 0, fmt.Errorf("intermix: mu %v out of [0,1)", mu)
	}
	return int(math.Ceil(math.Log(epsilon) / math.Log(mu))), nil
}

// WorstCaseOverhead evaluates the Section 6.1 complexity bound
// (J+1)·c(AX) + 8JK + 3J·log2(K) + N - J - 1 in field operations, where
// cAX is the cost of one matrix-vector product.
func WorstCaseOverhead(j, k, n int, cAX uint64) uint64 {
	logK := 0
	for v := k; v > 1; v >>= 1 {
		logK++
	}
	return uint64(j+1)*cAX + uint64(8*j*k) + uint64(3*j*logK) + uint64(n-j-1)
}
