// Command csmsim runs a configurable Coded State Machine cluster on the
// simulated network and reports per-round correctness, detected faults, and
// the measured throughput.
//
// Example:
//
//	csmsim -n 16 -k 3 -b 3 -d 2 -rounds 5 -byz 1,5,9 -behavior wrong \
//	       -consensus dolev-strong
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"codedsm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csmsim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 12, "number of nodes")
		k         = fs.Int("k", 0, "number of state machines (0: maximum capacity)")
		b         = fs.Int("b", 2, "fault budget")
		d         = fs.Int("d", 1, "transition degree (polynomial register machine)")
		rounds    = fs.Int("rounds", 5, "rounds to execute")
		byzList   = fs.String("byz", "", "comma-separated Byzantine node indices")
		behavior  = fs.String("behavior", "wrong", "byzantine behavior: wrong|silent|equivocate|bad-leader")
		consensus = fs.String("consensus", "oracle", "consensus: oracle|dolev-strong|pbft")
		psync     = fs.Bool("psync", false, "partially synchronous network")
		delegated = fs.Bool("delegated", false, "delegate coding to a rotating verified worker (Section 6.2; requires synchronous broadcast)")
		gst       = fs.Int("gst", 0, "global stabilization round (psync)")
		seed      = fs.Uint64("seed", 1, "random seed")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "execution-phase worker goroutines (rounds are identical for any value)")
		pipeline  = fs.Int("pipeline", 0, "pipelined-engine depth: overlap up to this many rounds' client stages with later rounds (0: sequential engine)")
		batch     = fs.Int("batch", 1, "rounds per consensus instance (command batching; decodes are primed across a batch)")
		churn     = fs.String("churn", "", "churn schedule: comma-separated round:op:node[:behavior] events, op one of crash|rejoin|corrupt|release (e.g. \"1:crash:2,3:rejoin:2,4:corrupt:5:wrong\")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gold := codedsm.NewGoldilocks()
	mode := codedsm.Synchronous
	if *psync {
		mode = codedsm.PartiallySynchronous
	}
	if *k == 0 {
		if *psync {
			*k = codedsm.PSyncMaxMachines(*n, *b, *d)
		} else {
			*k = codedsm.SyncMaxMachines(*n, *b, *d)
		}
		if *k < 1 {
			return fmt.Errorf("no capacity at N=%d b=%d d=%d", *n, *b, *d)
		}
	}
	beh, err := parseBehavior(*behavior)
	if err != nil {
		return err
	}
	byz, err := parseByzantine(*byzList, beh)
	if err != nil {
		return err
	}
	ck, err := parseConsensus(*consensus)
	if err != nil {
		return err
	}
	schedule, err := parseChurn(*churn)
	if err != nil {
		return err
	}
	degree := *d
	opts := []codedsm.Option{
		codedsm.WithNodes(*n), codedsm.WithMachines(*k), codedsm.WithFaults(*b),
		codedsm.WithConsensus(ck), codedsm.WithByzantine(byz), codedsm.WithSeed(*seed),
		codedsm.WithParallelism(*workers),
		codedsm.WithBatching(*batch), codedsm.WithPipeline(*pipeline),
		codedsm.WithChurn(schedule...),
	}
	if *psync {
		opts = append(opts, codedsm.WithPartialSync(*gst))
	}
	if *delegated {
		opts = append(opts, codedsm.WithDelegated())
	}
	cluster, err := codedsm.Open(gold,
		func(f codedsm.Field[uint64]) (*codedsm.Transition[uint64], error) {
			return codedsm.NewPolynomialRegister(f, degree)
		}, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("CSM cluster: N=%d K=%d b=%d d=%d mode=%v consensus=%v delegated=%v workers=%d batch=%d pipeline=%d byzantine=%v\n",
		*n, *k, *b, *d, mode, ck, *delegated, cluster.Parallelism(), cluster.BatchSize(), *pipeline, byz)
	wl := codedsm.RandomWorkload[uint64](gold, *rounds, *k, 1, *seed)
	results, runErr := cluster.Run(wl)
	allCorrect := true
	totalTicks := 0
	for r, res := range results {
		allCorrect = allCorrect && res.Correct
		totalTicks += res.Ticks
		fmt.Printf("round %2d: correct=%v skipped=%v faulty-detected=%v ticks=%d\n",
			r, res.Correct, res.Skipped, res.FaultyDetected, res.Ticks)
	}
	if runErr != nil {
		// Run attaches a BatchError to every mid-workload failure: the
		// completed prefix and failed round come out typed, so the partial
		// progress is surfaced without string inspection.
		var batchErr *codedsm.BatchError[uint64]
		if errors.As(runErr, &batchErr) {
			return fmt.Errorf("completed %d/%d rounds, round %d failed: %w",
				len(batchErr.Completed), *rounds, batchErr.Round, batchErr.Err)
		}
		return fmt.Errorf("completed %d/%d rounds: %w", len(results), *rounds, runErr)
	}
	ops := cluster.OpCounts()
	perNode := float64(ops.Total()) / float64(*n**rounds)
	fmt.Printf("\nsummary: all-correct=%v network-ticks=%d\n", allCorrect, totalTicks)
	if len(schedule) > 0 {
		rs := cluster.RepairStats()
		fmt.Printf("churn: epochs=%d repairs=%d failed=%d repair-ops=%d\n",
			cluster.Epoch(), rs.Repairs, rs.Failed, rs.Ops.Total())
	}
	fmt.Printf("ops total=%d (adds=%d muls=%d invs=%d)\n", ops.Total(), ops.Adds, ops.Muls, ops.Invs)
	fmt.Printf("throughput λ = K/(ops/node/round) = %.6f commands per field op\n",
		float64(*k)/perNode)
	fmt.Printf("storage efficiency γ = %d, security β = %d\n", *k, *b)
	return nil
}

func parseBehavior(s string) (codedsm.Behavior, error) {
	switch s {
	case "wrong":
		return codedsm.WrongResult, nil
	case "silent":
		return codedsm.SilentNode, nil
	case "equivocate":
		return codedsm.Equivocate, nil
	case "bad-leader":
		return codedsm.BadLeader, nil
	default:
		return codedsm.Honest, fmt.Errorf("unknown behavior %q", s)
	}
}

func parseByzantine(list string, beh codedsm.Behavior) (map[int]codedsm.Behavior, error) {
	out := map[int]codedsm.Behavior{}
	if list == "" {
		return out, nil
	}
	for _, part := range strings.Split(list, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node index %q: %w", part, err)
		}
		out[idx] = beh
	}
	return out, nil
}

// parseChurn parses a comma-separated churn schedule: each event is
// round:op:node with op one of crash|rejoin|corrupt|release, and corrupt
// takes a fourth :behavior part (the -behavior vocabulary).
func parseChurn(spec string) ([]codedsm.ChurnEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []codedsm.ChurnEvent
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("bad churn event %q: want round:op:node[:behavior]", part)
		}
		round, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad churn round in %q: %w", part, err)
		}
		node, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad churn node in %q: %w", part, err)
		}
		ev := codedsm.ChurnEvent{Round: round, Node: node}
		switch op := fields[1]; op {
		case "crash":
			ev.Op = codedsm.ChurnCrash
		case "rejoin":
			ev.Op = codedsm.ChurnRejoin
		case "release":
			ev.Op = codedsm.ChurnRelease
		case "corrupt":
			if len(fields) != 4 {
				return nil, fmt.Errorf("churn event %q: corrupt needs round:corrupt:node:behavior", part)
			}
			beh, err := parseBehavior(fields[3])
			if err != nil {
				return nil, fmt.Errorf("churn event %q: %w", part, err)
			}
			ev.Op, ev.Behavior = codedsm.ChurnCorrupt, beh
		default:
			return nil, fmt.Errorf("churn event %q: unknown op %q", part, op)
		}
		if ev.Op != codedsm.ChurnCorrupt && len(fields) != 3 {
			return nil, fmt.Errorf("churn event %q: only corrupt takes a behavior", part)
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseConsensus(s string) (codedsm.ConsensusKind, error) {
	switch s {
	case "oracle":
		return codedsm.OracleConsensus, nil
	case "dolev-strong":
		return codedsm.DolevStrong, nil
	case "pbft":
		return codedsm.PBFT, nil
	default:
		return codedsm.OracleConsensus, fmt.Errorf("unknown consensus %q", s)
	}
}
