// Package lcc implements the Lagrange coded computing layer of the Coded
// State Machine (Section 5 of the paper).
//
// Coded State: pick K distinct ω_1..ω_K (one per state machine) and N
// distinct α_1..α_N (one per node). The Lagrange polynomial u_t with
// u_t(ω_k) = S_k(t) is evaluated at α_i to produce node i's coded state
// S̃_i(t) = u_t(α_i) = Σ_k c_ik S_k(t) — a single state's worth of storage,
// so γ_CSM = K (equation (7), Remark 4: the coefficients c_ik depend only on
// the points, not on f or t).
//
// Coded Execution: each node encodes the agreed commands with the same
// coefficients, X̃_i = v_t(α_i), computes g_i = f(S̃_i, X̃_i) = h(α_i) with
// h = f(u_t(z), v_t(z)) of degree ≤ d(K-1), and the N results (≤ b wrong)
// are Reed-Solomon decoded to recover every machine's transition.
package lcc

import (
	"fmt"
	"sync"

	"codedsm/internal/field"
	"codedsm/internal/ints"
	"codedsm/internal/poly"
	"codedsm/internal/pool"
	"codedsm/internal/rs"
)

// Code fixes the interpolation points and exposes encoding and decoding of
// state/command/result vectors.
type Code[E comparable] struct {
	ring      *poly.Ring[E]
	f         field.Field[E]
	bulk      field.Bulk[E] // resolved once; drives the encode/decode kernels
	omegas    []E
	alphas    []E
	omegaTree *poly.SubproductTree[E]
	alphaTree *poly.SubproductTree[E]
	coeffs    [][]E // N x K Lagrange coefficient matrix C = [c_ik]

	mu         sync.Mutex // guards codesByDim (nodes decode concurrently)
	codesByDim map[int]*rs.Code[E]
}

// New constructs the code for K machines on N nodes, choosing
// ω_1..ω_K, α_1..α_N as the first K+N distinct field elements. It fails if
// the field is too small (Appendix A: over GF(2^m) one needs 2^m ≥ N+K).
func New[E comparable](ring *poly.Ring[E], k, n int) (*Code[E], error) {
	if k < 1 {
		return nil, fmt.Errorf("lcc: need at least one state machine, got K=%d", k)
	}
	if n < k {
		return nil, fmt.Errorf("lcc: need N >= K, got N=%d < K=%d", n, k)
	}
	pts, err := ring.Field().Elements(k + n)
	if err != nil {
		return nil, fmt.Errorf("lcc: field too small for K+N=%d points: %w", k+n, err)
	}
	return NewWithPoints(ring, pts[:k], pts[k:])
}

// NewWithPoints constructs the code over explicit points. All K+N points
// must be pairwise distinct.
func NewWithPoints[E comparable](ring *poly.Ring[E], omegas, alphas []E) (*Code[E], error) {
	if len(omegas) == 0 || len(alphas) < len(omegas) {
		return nil, fmt.Errorf("lcc: need 1 <= K <= N, got K=%d N=%d", len(omegas), len(alphas))
	}
	seen := make(map[E]bool, len(omegas)+len(alphas))
	for _, p := range omegas {
		if seen[p] {
			return nil, fmt.Errorf("lcc: duplicate interpolation point %v", p)
		}
		seen[p] = true
	}
	for _, p := range alphas {
		if seen[p] {
			return nil, fmt.Errorf("lcc: duplicate interpolation point %v", p)
		}
		seen[p] = true
	}
	c := &Code[E]{
		ring:       ring,
		f:          ring.Field(),
		bulk:       ring.Bulk(),
		omegas:     append([]E(nil), omegas...),
		alphas:     append([]E(nil), alphas...),
		codesByDim: make(map[int]*rs.Code[E]),
	}
	c.omegaTree = poly.NewSubproductTree(ring, c.omegas)
	c.alphaTree = poly.NewSubproductTree(ring, c.alphas)
	if err := c.buildCoeffs(); err != nil {
		return nil, err
	}
	return c, nil
}

// buildCoeffs computes c_ik = prod_{l != k} (α_i - ω_l) / (ω_k - ω_l)
// (equation (7)).
func (c *Code[E]) buildCoeffs() error {
	k, n := len(c.omegas), len(c.alphas)
	// denom_k = prod_{l != k} (ω_k - ω_l) = m'(ω_k) where m = prod (z-ω_l).
	deriv := c.ring.Derivative(c.omegaTree.Master())
	denoms, err := c.omegaTree.EvalMany(deriv)
	if err != nil {
		return err
	}
	denomInvs, err := field.BatchInv(c.f, denoms)
	if err != nil {
		return fmt.Errorf("lcc: duplicate omegas: %w", err)
	}
	// master(α_i) and (α_i - ω_k) give numer_ik = master(α_i)/(α_i - ω_k).
	masterAtAlphas, err := c.alphaTree.EvalMany(c.omegaTree.Master())
	if err != nil {
		return err
	}
	c.coeffs = make([][]E, n)
	diffs := make([]E, k)
	diffInvs := make([]E, k)
	for i := 0; i < n; i++ {
		row := make([]E, k)
		c.bulk.ScalarSubVec(diffs, c.alphas[i], c.omegas)
		if err := c.bulk.BatchInvInto(diffInvs, diffs); err != nil {
			return fmt.Errorf("lcc: alpha equals omega: %w", err)
		}
		c.bulk.ScaleVec(row, masterAtAlphas[i], diffInvs)
		c.bulk.MulVec(row, row, denomInvs)
		c.coeffs[i] = row
	}
	return nil
}

// K returns the number of state machines.
func (c *Code[E]) K() int { return len(c.omegas) }

// N returns the number of nodes.
func (c *Code[E]) N() int { return len(c.alphas) }

// Omegas returns the machine interpolation points (do not modify).
func (c *Code[E]) Omegas() []E { return c.omegas }

// Alphas returns the node evaluation points (do not modify).
func (c *Code[E]) Alphas() []E { return c.alphas }

// Coeffs returns the N x K coefficient matrix C with X̃ = C X (do not
// modify). This is the matrix INTERMIX audits in the delegated mode.
func (c *Code[E]) Coeffs() [][]E { return c.coeffs }

// StorageEfficiency returns γ_CSM = K: each node stores one coded state of
// the same size as an uncoded state (Section 5.1).
func (c *Code[E]) StorageEfficiency() int { return len(c.omegas) }

// EncodeAt computes the coded value for node i from the K machines' values:
// Σ_k c_ik values[k]. values must have length K.
func (c *Code[E]) EncodeAt(values []E, node int) (E, error) {
	var zero E
	if node < 0 || node >= len(c.alphas) {
		return zero, fmt.Errorf("lcc: node %d out of range [0,%d)", node, len(c.alphas))
	}
	return field.Dot(c.f, c.coeffs[node], values)
}

// EncodeVectors encodes K machine vectors (each of length L) into N coded
// vectors by the naive matrix product, O(N*K*L) operations. This is the
// per-node encoding cost the delegated mode eliminates.
func (c *Code[E]) EncodeVectors(values [][]E) ([][]E, error) {
	return c.EncodeVectorsParallel(values, 1)
}

// EncodeVectorsParallel is EncodeVectors with the N output rows fanned
// across at most workers goroutines (workers <= 0 selects
// runtime.GOMAXPROCS). Each row i = Σ_k c_ik values[k] is independent, so
// the result is identical to the sequential product.
//
// The K x L inner product runs as one ScaleAccVec (axpy) kernel per
// coefficient row entry over a single flat backing array — no per-row
// allocation and no per-element interface dispatch.
func (c *Code[E]) EncodeVectorsParallel(values [][]E, workers int) ([][]E, error) {
	l, err := c.vectorLen(values, len(c.omegas))
	if err != nil {
		return nil, err
	}
	n := len(c.alphas)
	flat := make([]E, n*l)
	out := make([][]E, n)
	zero := c.f.Zero()
	encErr := pool.Run(workers, n, func(i int) error {
		vec := flat[i*l : (i+1)*l : (i+1)*l] // full slice: append never bleeds across rows
		for j := range vec {
			vec[j] = zero
		}
		row := c.coeffs[i]
		for k := range values {
			c.bulk.ScaleAccVec(vec, row[k], values[k])
		}
		out[i] = vec
		return nil
	})
	if encErr != nil {
		return nil, encErr
	}
	return out, nil
}

// EncodeVectorsFast is the Section 6.2 worker path: per vector component,
// interpolate v_t over the omegas (O(K log^2 K)) and evaluate at all alphas
// (O(N log^2 N)) via subproduct trees.
func (c *Code[E]) EncodeVectorsFast(values [][]E) ([][]E, error) {
	l, err := c.vectorLen(values, len(c.omegas))
	if err != nil {
		return nil, err
	}
	out := make([][]E, len(c.alphas))
	for i := range out {
		out[i] = make([]E, l)
	}
	ys := make([]E, len(c.omegas))
	for j := 0; j < l; j++ {
		for k := range values {
			ys[k] = values[k][j]
		}
		v, err := c.omegaTree.Interpolate(ys)
		if err != nil {
			return nil, err
		}
		coded, err := c.alphaTree.EvalMany(v)
		if err != nil {
			return nil, err
		}
		for i := range coded {
			out[i][j] = coded[i]
		}
	}
	return out, nil
}

// vectorLen validates a K-vector-of-vectors input and returns the common
// component length.
func (c *Code[E]) vectorLen(values [][]E, want int) (int, error) {
	if len(values) != want {
		return 0, fmt.Errorf("lcc: got %d vectors, want %d", len(values), want)
	}
	l := len(values[0])
	for i, v := range values {
		if len(v) != l {
			return 0, fmt.Errorf("lcc: vector %d has length %d, want %d", i, len(v), l)
		}
	}
	return l, nil
}

// codeForDim returns (building if needed) the RS code over the alphas with
// the given dimension. Safe for concurrent use: cluster nodes decode the
// same round in parallel against one shared Code.
func (c *Code[E]) codeForDim(dim int) (*rs.Code[E], error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if code, ok := c.codesByDim[dim]; ok {
		return code, nil
	}
	code, err := rs.NewCode(c.ring, c.alphas, dim)
	if err != nil {
		return nil, err
	}
	c.codesByDim[dim] = code
	return code, nil
}

// ResultDim returns the RS dimension of execution results for a transition
// of total degree d: deg h = d(K-1), so dimension d(K-1)+1.
func (c *Code[E]) ResultDim(degree int) int {
	if degree < 1 {
		degree = 1
	}
	return degree*(len(c.omegas)-1) + 1
}

// DecodeResult carries a decoded execution round.
type DecodeResult[E comparable] struct {
	// Outputs[k] is machine k's decoded result vector h_j(ω_k).
	Outputs [][]E
	// FaultyNodes lists node indices whose submitted results were corrupted
	// (union over vector components), sorted ascending.
	FaultyNodes []int
}

// DecodeOutputs recovers the K machines' result vectors from the N nodes'
// coded results (each a vector of length L), tolerating up to
// (N - d(K-1) - 1)/2 corrupted nodes, where degree is the transition's
// total degree d.
func (c *Code[E]) DecodeOutputs(results [][]E, degree int) (*DecodeResult[E], error) {
	return c.decode(results, nil, degree, 1)
}

// DecodeOutputsParallel is DecodeOutputs with the L independent
// vector-component decodes — each a Reed-Solomon error-locator solve —
// fanned across at most workers goroutines (workers <= 0 selects
// runtime.GOMAXPROCS). The result is identical to DecodeOutputs.
func (c *Code[E]) DecodeOutputsParallel(results [][]E, degree, workers int) (*DecodeResult[E], error) {
	return c.decode(results, nil, degree, workers)
}

// DecodeOutputsSubset decodes from a subset of nodes (partially synchronous
// operation: only N-b results arrive). indices identifies which node each
// results row came from.
func (c *Code[E]) DecodeOutputsSubset(indices []int, results [][]E, degree int) (*DecodeResult[E], error) {
	if indices == nil {
		return nil, fmt.Errorf("lcc: nil subset indices")
	}
	return c.decode(results, indices, degree, 1)
}

// DecodeOutputsSubsetParallel is DecodeOutputsSubset with the component
// decodes fanned across at most workers goroutines.
func (c *Code[E]) DecodeOutputsSubsetParallel(indices []int, results [][]E, degree, workers int) (*DecodeResult[E], error) {
	if indices == nil {
		return nil, fmt.Errorf("lcc: nil subset indices")
	}
	return c.decode(results, indices, degree, workers)
}

// RepairShare reconstructs node i's coded share directly from a subset of
// the surviving nodes' shares. Component-wise, the vector (S̃_1,...,S̃_N) of
// coded states is a Reed-Solomon codeword of the degree-(K-1) encoding
// polynomial u at the alphas, so u is interpolated from the subset —
// correcting up to (len(indices)-K)/2 corrupted rows — and evaluated at
// α_node: one Horner evaluation per component instead of a full decode to
// the K machine states plus a re-encode. Field arithmetic is exact and u
// is unique, so the result is bit-identical to a fresh encode of the
// underlying machine vectors. This is what makes node replacement cheap in
// CSM, in contrast to the re-download cost that rules out frequent group
// rotation in random-allocation schemes (Section 7, Remark 5).
//
// indices[r] names the node that contributed shares[r] (strictly
// ascending). The returned faulty list is the union, in node index space,
// of the rows the component decoders corrected.
func (c *Code[E]) RepairShare(indices []int, shares [][]E, node int) ([]E, []int, error) {
	n := len(c.alphas)
	if node < 0 || node >= n {
		return nil, nil, fmt.Errorf("lcc: repair target %d out of range [0,%d)", node, n)
	}
	if len(indices) == 0 {
		return nil, nil, fmt.Errorf("lcc: no repair contributors")
	}
	rows := len(indices)
	l, err := c.vectorLen(shares, rows)
	if err != nil {
		return nil, nil, err
	}
	code, err := c.codeForDim(len(c.omegas))
	if err != nil {
		return nil, nil, err
	}
	target := code
	if !isFullSet(indices, n) {
		if target, err = code.Subcode(indices); err != nil {
			return nil, nil, err
		}
	}
	repaired := make([]E, l)
	colMajor := transposeColMajor(shares, rows, l, nil)
	faultyByComponent := make([][]int, l)
	at := c.alphas[node]
	for j := 0; j < l; j++ {
		res, derr := target.Decode(colMajor[j*rows : (j+1)*rows])
		if derr != nil {
			return nil, nil, fmt.Errorf("lcc: repair component %d: %w", j, derr)
		}
		repaired[j] = c.ring.Eval(res.Message, at)
		if len(res.ErrorsAt) > 0 {
			mapped := make([]int, len(res.ErrorsAt))
			for i, e := range res.ErrorsAt {
				mapped[i] = indices[e]
			}
			faultyByComponent[j] = mapped
		}
	}
	return repaired, mergeFaulty(faultyByComponent), nil
}

// isFullSet reports whether indices is exactly 0..n-1, i.e. the "subset"
// decode actually has every node's result (the common synchronous case).
func isFullSet(indices []int, n int) bool {
	if len(indices) != n {
		return false
	}
	for i, idx := range indices {
		if idx != i {
			return false
		}
	}
	return true
}

// flatOutputs allocates the K result vectors of length l over one flat
// backing array (full slice expressions: append never bleeds across rows).
func flatOutputs[E comparable](k, l int) [][]E {
	flat := make([]E, k*l)
	outputs := make([][]E, k)
	for i := range outputs {
		outputs[i] = flat[i*l : (i+1)*l : (i+1)*l]
	}
	return outputs
}

// transposeColMajor lays the results matrix out column-major so component
// j's received word is a contiguous slice, reusing dst when it fits —
// this replaces the per-component strided gather (and its allocation).
func transposeColMajor[E comparable](results [][]E, rows, l int, dst []E) []E {
	if len(dst) != l*rows {
		dst = make([]E, l*rows)
	}
	for i, row := range results {
		for j, v := range row {
			dst[j*rows+i] = v
		}
	}
	return dst
}

// mergeFaulty unions per-component error positions into one sorted set.
func mergeFaulty(faultyByComponent [][]int) []int {
	faulty := make(map[int]bool)
	for _, errsAt := range faultyByComponent {
		for _, e := range errsAt {
			faulty[e] = true
		}
	}
	return ints.SortedKeys(faulty)
}

func (c *Code[E]) decode(results [][]E, indices []int, degree, workers int) (*DecodeResult[E], error) {
	n := len(c.alphas)
	rows := n
	if indices != nil {
		rows = len(indices)
	}
	l, err := c.vectorLen(results, rows)
	if err != nil {
		return nil, err
	}
	code, err := c.codeForDim(c.ResultDim(degree))
	if err != nil {
		return nil, err
	}
	// Resolve the decoding code once, not per component: either the full
	// code (indices nil or the complete 0..N-1 set) or one shared subcode.
	target := code
	if indices != nil && !isFullSet(indices, n) {
		if target, err = code.Subcode(indices); err != nil {
			return nil, err
		}
	} else {
		indices = nil
	}
	k := len(c.omegas)
	outputs := flatOutputs[E](k, l)
	colMajor := transposeColMajor(results, rows, l, nil)
	// Components are independent codewords; decode them concurrently and
	// merge the per-component faulty sets afterwards in component order.
	// Each worker owns one reusable evaluation scratch buffer.
	faultyByComponent := make([][]int, l)
	evalScratch := make([][]E, pool.Clamp(workers, l))
	err = pool.RunIndexed(workers, l, func(worker, j int) error {
		word := colMajor[j*rows : (j+1)*rows]
		res, derr := target.Decode(word)
		if derr != nil {
			return fmt.Errorf("lcc: component %d: %w", j, derr)
		}
		if evalScratch[worker] == nil {
			evalScratch[worker] = make([]E, k)
		}
		vals := evalScratch[worker]
		c.ring.EvalManyInto(vals, res.Message, c.omegas)
		for ki := 0; ki < k; ki++ {
			outputs[ki][j] = vals[ki]
		}
		if len(res.ErrorsAt) > 0 {
			if indices != nil {
				mapped := make([]int, len(res.ErrorsAt))
				for i, e := range res.ErrorsAt {
					mapped[i] = indices[e]
				}
				faultyByComponent[j] = mapped
			} else {
				faultyByComponent[j] = res.ErrorsAt
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &DecodeResult[E]{Outputs: outputs, FaultyNodes: mergeFaulty(faultyByComponent)}, nil
}

// SyncMaxMachines returns the largest K supported by N nodes with b faults
// under a synchronous network and degree-d transitions:
// 2b + 1 ≤ N - d(K-1)  ⇒  K ≤ (N - 2b - 1)/d + 1 (Table 2).
func SyncMaxMachines(n, b, d int) int {
	if d < 1 {
		d = 1
	}
	k := (n-2*b-1)/d + 1
	if k < 0 {
		return 0
	}
	return k
}

// PSyncMaxMachines is the partially synchronous bound:
// 3b + 1 ≤ N - d(K-1)  ⇒  K ≤ (N - 3b - 1)/d + 1 (Theorem 2).
func PSyncMaxMachines(n, b, d int) int {
	if d < 1 {
		d = 1
	}
	k := (n-3*b-1)/d + 1
	if k < 0 {
		return 0
	}
	return k
}

// SyncMaxFaults returns the largest b tolerated for fixed N, K, d in a
// synchronous network: 2b ≤ N - d(K-1) - 1.
func SyncMaxFaults(n, k, d int) int {
	if d < 1 {
		d = 1
	}
	b := (n - d*(k-1) - 1) / 2
	if b < 0 {
		return 0
	}
	return b
}

// PSyncMaxFaults returns the largest b tolerated for fixed N, K, d in a
// partially synchronous network: 3b ≤ N - d(K-1) - 1.
func PSyncMaxFaults(n, k, d int) int {
	if d < 1 {
		d = 1
	}
	b := (n - d*(k-1) - 1) / 3
	if b < 0 {
		return 0
	}
	return b
}
