// Package sm defines the state machines CSM executes: a deterministic
// transition function (S(t+1), Y(t)) = f(S(t), X(t)) whose every output
// coordinate is a multivariate polynomial over the field (Section 4 of the
// paper), together with a library of concrete machines used by the examples
// and the benchmark harness, and the Appendix A construction that turns an
// arbitrary Boolean function into such a polynomial over GF(2^m).
package sm

import (
	"errors"
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
)

// ErrDimension reports state/command vectors of the wrong length.
var ErrDimension = errors.New("sm: dimension mismatch")

// Transition is a polynomial state transition function. The polynomials
// take StateLen+CmdLen variables: the state coordinates first, then the
// command coordinates.
type Transition[E comparable] struct {
	f         field.Field[E]
	stateLen  int
	cmdLen    int
	nextState []mvpoly.Poly[E]
	output    []mvpoly.Poly[E]
	degree    int
	name      string
}

// NewTransition builds a transition from explicit polynomials. nextState
// must have one polynomial per state coordinate; output may have any
// positive length.
func NewTransition[E comparable](f field.Field[E], name string, stateLen, cmdLen int,
	nextState, output []mvpoly.Poly[E]) (*Transition[E], error) {
	if stateLen < 1 || cmdLen < 1 {
		return nil, fmt.Errorf("sm: state and command must be non-empty (got %d, %d)", stateLen, cmdLen)
	}
	if len(nextState) != stateLen {
		return nil, fmt.Errorf("sm: %d next-state polynomials for state length %d: %w",
			len(nextState), stateLen, ErrDimension)
	}
	if len(output) < 1 {
		return nil, fmt.Errorf("sm: transition needs at least one output polynomial")
	}
	nvars := stateLen + cmdLen
	degree := 1 // a constant transition still occupies a degree-1 codeword slot
	for _, p := range append(append([]mvpoly.Poly[E]{}, nextState...), output...) {
		if p.NumVars() != nvars {
			return nil, fmt.Errorf("sm: polynomial over %d variables, want %d: %w",
				p.NumVars(), nvars, ErrDimension)
		}
		if d := p.TotalDegree(); d > degree {
			degree = d
		}
	}
	return &Transition[E]{
		f:         f,
		stateLen:  stateLen,
		cmdLen:    cmdLen,
		nextState: nextState,
		output:    output,
		degree:    degree,
		name:      name,
	}, nil
}

// FromExprs builds a transition by parsing polynomial expressions over
// named state and command variables; see mvpoly.Parse for the grammar.
func FromExprs[E comparable](f field.Field[E], name string, stateVars, cmdVars []string,
	nextExprs, outExprs []string) (*Transition[E], error) {
	vars := append(append([]string{}, stateVars...), cmdVars...)
	parseAll := func(exprs []string) ([]mvpoly.Poly[E], error) {
		out := make([]mvpoly.Poly[E], len(exprs))
		for i, e := range exprs {
			p, err := mvpoly.Parse(f, e, vars)
			if err != nil {
				return nil, fmt.Errorf("sm: expression %q: %w", e, err)
			}
			out[i] = p
		}
		return out, nil
	}
	next, err := parseAll(nextExprs)
	if err != nil {
		return nil, err
	}
	outs, err := parseAll(outExprs)
	if err != nil {
		return nil, err
	}
	return NewTransition(f, name, len(stateVars), len(cmdVars), next, outs)
}

// Name returns the human-readable machine name.
func (t *Transition[E]) Name() string { return t.name }

// Field returns the underlying field.
func (t *Transition[E]) Field() field.Field[E] { return t.f }

// StateLen returns the number of state coordinates.
func (t *Transition[E]) StateLen() int { return t.stateLen }

// CmdLen returns the number of command coordinates.
func (t *Transition[E]) CmdLen() int { return t.cmdLen }

// OutLen returns the number of output coordinates.
func (t *Transition[E]) OutLen() int { return len(t.output) }

// ResultLen returns StateLen+OutLen: the length of the combined result
// vector (next state followed by output) a node computes per round.
func (t *Transition[E]) ResultLen() int { return t.stateLen + len(t.output) }

// Degree returns the maximum total degree d over all transition
// polynomials; CSM's fault-tolerance bounds are all functions of d.
func (t *Transition[E]) Degree() int { return t.degree }

// Apply executes the transition: it returns the next state and the output.
// It works identically on uncoded and Lagrange-coded inputs — that is the
// key property CSM exploits (coded execution, Section 5.2).
func (t *Transition[E]) Apply(state, cmd []E) (next, out []E, err error) {
	if len(state) != t.stateLen {
		return nil, nil, fmt.Errorf("sm: state length %d, want %d: %w", len(state), t.stateLen, ErrDimension)
	}
	if len(cmd) != t.cmdLen {
		return nil, nil, fmt.Errorf("sm: command length %d, want %d: %w", len(cmd), t.cmdLen, ErrDimension)
	}
	args := make([]E, 0, t.stateLen+t.cmdLen)
	args = append(args, state...)
	args = append(args, cmd...)
	next = make([]E, t.stateLen)
	for i, p := range t.nextState {
		if next[i], err = p.Eval(t.f, args); err != nil {
			return nil, nil, err
		}
	}
	out = make([]E, len(t.output))
	for i, p := range t.output {
		if out[i], err = p.Eval(t.f, args); err != nil {
			return nil, nil, err
		}
	}
	return next, out, nil
}

// ApplyResult executes the transition and returns the combined result
// vector [next state | output] — the vector a CSM node broadcasts.
func (t *Transition[E]) ApplyResult(state, cmd []E) ([]E, error) {
	next, out, err := t.Apply(state, cmd)
	if err != nil {
		return nil, err
	}
	return append(next, out...), nil
}

// SplitResult splits a combined result vector back into next state and
// output.
func (t *Transition[E]) SplitResult(result []E) (next, out []E, err error) {
	if len(result) != t.ResultLen() {
		return nil, nil, fmt.Errorf("sm: result length %d, want %d: %w", len(result), t.ResultLen(), ErrDimension)
	}
	return result[:t.stateLen], result[t.stateLen:], nil
}

// Machine is an uncoded reference state machine: the ground truth used by
// the replication baselines and as the correctness oracle in tests.
type Machine[E comparable] struct {
	tr    *Transition[E]
	state []E
	round int
}

// NewMachine creates a machine with the given initial state (copied).
func NewMachine[E comparable](tr *Transition[E], initial []E) (*Machine[E], error) {
	if len(initial) != tr.StateLen() {
		return nil, fmt.Errorf("sm: initial state length %d, want %d: %w", len(initial), tr.StateLen(), ErrDimension)
	}
	return &Machine[E]{tr: tr, state: append([]E(nil), initial...)}, nil
}

// Transition returns the machine's transition function.
func (m *Machine[E]) Transition() *Transition[E] { return m.tr }

// State returns a copy of the current state.
func (m *Machine[E]) State() []E { return append([]E(nil), m.state...) }

// Round returns the number of commands executed so far.
func (m *Machine[E]) Round() int { return m.round }

// SetState replaces the machine's state (copied) without advancing the
// round counter — the handoff primitive behind migrating a machine
// between clusters: the receiving cluster's oracle adopts the state the
// sending cluster decoded.
func (m *Machine[E]) SetState(state []E) error {
	if len(state) != m.tr.StateLen() {
		return fmt.Errorf("sm: state length %d, want %d: %w", len(state), m.tr.StateLen(), ErrDimension)
	}
	m.state = append(m.state[:0:0], state...)
	return nil
}

// Step executes one command, advancing the state and returning the output.
func (m *Machine[E]) Step(cmd []E) ([]E, error) {
	next, out, err := m.tr.Apply(m.state, cmd)
	if err != nil {
		return nil, err
	}
	m.state = next
	m.round++
	return out, nil
}
