//go:build tools

// Package tools pins the versions of the external analysis tools the
// build runs via `go run module@version`. The pin lives here — in one
// greppable Go constant per tool — and the Makefile extracts it, so
// bumping a tool is a one-line change reviewed like any other code.
//
// The tools are deliberately NOT blank-imported: they are binaries,
// not libraries, and `go run module@version` resolves them without
// adding their module graphs to go.mod (this module has zero external
// dependencies and keeps it that way). The build tag keeps this file
// out of every ordinary build.
package tools

const (
	// StaticcheckModule/Version pin honnef.co staticcheck, run by
	// `make staticcheck`.
	StaticcheckModule  = "honnef.co/go/tools/cmd/staticcheck"
	StaticcheckVersion = "2025.1"

	// GovulncheckModule/Version pin the Go vulnerability scanner, run
	// by `make govulncheck`.
	GovulncheckModule  = "golang.org/x/vuln/cmd/govulncheck"
	GovulncheckVersion = "v1.1.4"
)
