package consensus

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzz tags select which codec the remaining bytes are fed to.
const (
	fuzzChain = iota
	fuzzPrePrepare
	fuzzVote
	fuzzViewChange
	fuzzNewView
)

// seedMessages returns one well-formed encoding per message type, used
// both as f.Add seeds and by the corpus-generation helper.
func seedMessages(t testing.TB) map[byte][]byte {
	chain, err := AppendChainMsg(nil, ChainMsg{
		Slot:    7,
		Value:   []byte("batch-payload"),
		Signers: []uint64{0, 2},
		Sigs:    [][]byte{bytes.Repeat([]byte{1}, 64), bytes.Repeat([]byte{2}, 64)},
	})
	if err != nil {
		t.Fatal(err)
	}
	vc := ViewChangeMsg{
		Slot: 7, NewView: 2, PreparedView: 1,
		PreparedValue: []byte("prepared"), Sig: bytes.Repeat([]byte{3}, 64), Sender: 3,
	}
	return map[byte][]byte{
		fuzzChain:      chain,
		fuzzPrePrepare: AppendPrePrepareMsg(nil, PrePrepareMsg{Slot: 7, View: 1, Value: []byte("proposal")}),
		fuzzVote:       AppendVoteMsg(nil, VoteMsg{Slot: 7, View: 1, Digest: [32]byte{9, 9, 9}}),
		fuzzViewChange: AppendViewChangeMsg(nil, vc),
		fuzzNewView: AppendNewViewMsg(nil, NewViewMsg{
			Slot: 7, View: 2, Value: []byte("prepared"), Proof: []ViewChangeMsg{vc},
		}),
	}
}

// FuzzConsensusMessage drives every consensus wire codec: the first byte
// selects the message type, the rest is the candidate encoding. The
// property under test is canonicality — a successful decode must
// round-trip to the exact input bytes, and decoding the re-encoding must
// yield the same message. That is what lets signatures over these bytes
// verify identically on both transports.
func FuzzConsensusMessage(f *testing.F) {
	for tag, enc := range seedMessages(f) {
		f.Add(append([]byte{tag}, enc...))
	}
	f.Add([]byte{fuzzChain})
	f.Add([]byte{fuzzNewView, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		tag, body := data[0], data[1:]
		var reenc []byte
		var decoded, again any
		var err, err2 error
		switch tag % 5 {
		case fuzzChain:
			m, e := DecodeChainMsg(body)
			if e != nil {
				return
			}
			reenc, err = AppendChainMsg(nil, m)
			decoded = m
			again, err2 = DecodeChainMsg(reenc)
		case fuzzPrePrepare:
			m, e := DecodePrePrepareMsg(body)
			if e != nil {
				return
			}
			reenc = AppendPrePrepareMsg(nil, m)
			decoded = m
			again, err2 = DecodePrePrepareMsg(reenc)
		case fuzzVote:
			m, e := DecodeVoteMsg(body)
			if e != nil {
				return
			}
			reenc = AppendVoteMsg(nil, m)
			decoded = m
			again, err2 = DecodeVoteMsg(reenc)
		case fuzzViewChange:
			m, e := DecodeViewChangeMsg(body)
			if e != nil {
				return
			}
			reenc = AppendViewChangeMsg(nil, m)
			decoded = m
			again, err2 = DecodeViewChangeMsg(reenc)
		case fuzzNewView:
			m, e := DecodeNewViewMsg(body)
			if e != nil {
				return
			}
			reenc = AppendNewViewMsg(nil, m)
			decoded = m
			again, err2 = DecodeNewViewMsg(reenc)
		}
		if err != nil {
			t.Fatalf("re-encode failed for decoded message: %v", err)
		}
		if err2 != nil {
			t.Fatalf("decode of re-encoding failed: %v", err2)
		}
		if !bytes.Equal(reenc, body) {
			t.Fatalf("non-canonical encoding accepted: decode(%x) re-encodes to %x", body, reenc)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("round-trip mismatch: %#v vs %#v", decoded, again)
		}
	})
}

// TestSeedCorpusDecodes pins that every seed in the checked-in corpus
// is well-formed for its tagged codec (guards the corpus against codec
// drift).
func TestSeedCorpusDecodes(t *testing.T) {
	for tag, enc := range seedMessages(t) {
		var err error
		switch tag {
		case fuzzChain:
			_, err = DecodeChainMsg(enc)
		case fuzzPrePrepare:
			_, err = DecodePrePrepareMsg(enc)
		case fuzzVote:
			_, err = DecodeVoteMsg(enc)
		case fuzzViewChange:
			_, err = DecodeViewChangeMsg(enc)
		case fuzzNewView:
			_, err = DecodeNewViewMsg(enc)
		}
		if err != nil {
			t.Errorf("seed for tag %d does not decode: %v", tag, err)
		}
	}
}
