package consensus

import (
	"errors"
	"slices"
	"sync"
	"testing"

	"codedsm/internal/transport"
)

// stuck never decides; decided decides immediately.
type stuck struct{}

func (stuck) Tick(inbox []transport.Message) error { return nil }
func (stuck) Decided() ([]byte, bool)              { return nil, false }

type decided struct{}

func (decided) Tick(inbox []transport.Message) error { return nil }
func (decided) Decided() ([]byte, bool)              { return []byte("v"), true }

// TestNoDecisionErrorReportsUndecided: when the round budget runs out,
// the error must name exactly the waitFor nodes that had not decided —
// not the ones that had.
func TestNoDecisionErrorReportsUndecided(t *testing.T) {
	net, err := transport.New(transport.Config{N: 3, Mode: transport.Sync, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{decided{}, stuck{}, stuck{}}
	runErr := Run(net, nodes, []int{0, 1, 2}, 3)
	if !errors.Is(runErr, ErrNoDecision) {
		t.Fatalf("Run = %v, want ErrNoDecision", runErr)
	}
	var nde *NoDecisionError
	if !errors.As(runErr, &nde) {
		t.Fatalf("Run error %T does not unwrap to *NoDecisionError", runErr)
	}
	want := []transport.NodeID{1, 2}
	if !slices.Equal(nde.Undecided, want) {
		t.Fatalf("Undecided = %v, want %v", nde.Undecided, want)
	}
}

// TestRunLinkNoDecision: the per-link driver reports its own node as
// undecided when the tick budget runs out.
func TestRunLinkNoDecision(t *testing.T) {
	net, err := transport.New(transport.Config{N: 2, Mode: transport.Sync, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			_, errs[i] = RunLink(l, stuck{}, 4)
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrNoDecision) {
			t.Fatalf("node %d: RunLink = %v, want ErrNoDecision", i, err)
		}
		var nde *NoDecisionError
		if !errors.As(err, &nde) {
			t.Fatalf("node %d: %T does not unwrap to *NoDecisionError", i, err)
		}
		if want := []transport.NodeID{transport.NodeID(i)}; !slices.Equal(nde.Undecided, want) {
			t.Fatalf("node %d: Undecided = %v, want %v", i, nde.Undecided, want)
		}
	}
}

// TestRunLinkDecides: a node that decides stops the driver with the
// decided value, before the budget is spent.
func TestRunLinkDecides(t *testing.T) {
	net, err := transport.New(transport.Config{N: 2, Mode: transport.Sync, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([][]byte, len(links))
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			vals[i], errs[i] = RunLink(l, decided{}, 4)
		}(i, l)
	}
	wg.Wait()
	for i := range links {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if string(vals[i]) != "v" {
			t.Fatalf("node %d decided %q, want v", i, vals[i])
		}
	}
}
