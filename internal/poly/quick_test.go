package poly

import (
	randv1 "math/rand"
	randv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"codedsm/internal/field"
)

// genPoly produces a random polynomial of degree < maxLen from quick's
// randomness source.
func genPoly(r *randv2.Rand, ring *Ring[uint64], maxLen int) Poly[uint64] {
	n := int(r.Uint64N(uint64(maxLen)))
	p := make(Poly[uint64], n)
	for i := range p {
		p[i] = ring.f.Rand(r)
	}
	return ring.Normalize(p)
}

// quickPolyConfig adapts testing/quick to generate polynomial pairs.
func quickPolyConfig(ring *Ring[uint64], maxLen int) *quick.Config {
	return &quick.Config{
		MaxCount: 120,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			for i := range args {
				args[i] = reflect.ValueOf(genPoly(r, ring, maxLen))
			}
		},
	}
}

func TestQuickRingAxioms(t *testing.T) {
	ring := newGoldRing()
	cfg := quickPolyConfig(ring, 80)

	t.Run("mul-commutative", func(t *testing.T) {
		if err := quick.Check(func(a, b Poly[uint64]) bool {
			return ring.Equal(ring.Mul(a, b), ring.Mul(b, a))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul-associative", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Poly[uint64]) bool {
			return ring.Equal(ring.Mul(ring.Mul(a, b), c), ring.Mul(a, ring.Mul(b, c)))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributive", func(t *testing.T) {
		if err := quick.Check(func(a, b, c Poly[uint64]) bool {
			lhs := ring.Mul(a, ring.Add(b, c))
			rhs := ring.Add(ring.Mul(a, b), ring.Mul(a, c))
			return ring.Equal(lhs, rhs)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("add-inverse", func(t *testing.T) {
		if err := quick.Check(func(a, b Poly[uint64]) bool {
			return ring.Equal(ring.Sub(ring.Add(a, b), b), a)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("divmod-identity", func(t *testing.T) {
		if err := quick.Check(func(a, b Poly[uint64]) bool {
			if ring.IsZero(b) {
				return true
			}
			q, rem, err := ring.DivMod(a, b)
			if err != nil {
				return false
			}
			return ring.Equal(ring.Add(ring.Mul(q, b), rem), a) && ring.Deg(rem) < ring.Deg(b)
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("eval-homomorphism", func(t *testing.T) {
		if err := quick.Check(func(a, b Poly[uint64]) bool {
			x := uint64(12345)
			sum := ring.Eval(ring.Add(a, b), x)
			prod := ring.Eval(ring.Mul(a, b), x)
			f := ring.f
			return f.Equal(sum, f.Add(ring.Eval(a, x), ring.Eval(b, x))) &&
				f.Equal(prod, f.Mul(ring.Eval(a, x), ring.Eval(b, x)))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestQuickInterpolationRoundTrip(t *testing.T) {
	ring := newGoldRing()
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, src *randv1.Rand) {
			r := randv2.New(randv2.NewPCG(src.Uint64(), src.Uint64()))
			n := 1 + int(r.Uint64N(60))
			ys := make([]uint64, n)
			for i := range ys {
				ys[i] = ring.f.Rand(r)
			}
			args[0] = reflect.ValueOf(ys)
		},
	}
	if err := quick.Check(func(ys []uint64) bool {
		xs, err := ring.f.Elements(len(ys))
		if err != nil {
			return false
		}
		p, err := ring.FastInterpolate(xs, ys)
		if err != nil {
			return false
		}
		got, err := ring.FastEvalMany(p, xs)
		if err != nil {
			return false
		}
		return field.VecEqual(ring.f, got, ys)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickGF2mMulMatchesNaive(t *testing.T) {
	ring := newGF2mRing(t, 12)
	cfg := quickPolyConfig(ring, 50)
	if err := quick.Check(func(a, b Poly[uint64]) bool {
		return ring.Equal(ring.Mul(a, b), ring.MulNaive(a, b))
	}, cfg); err != nil {
		t.Error(err)
	}
}
