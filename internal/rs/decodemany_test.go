package rs

import (
	"errors"
	"reflect"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
)

func TestDecodeManyMatchesSequential(t *testing.T) {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	pts, err := gold.Elements(32)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(ring, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	const words = 12
	batch := make([][]uint64, words)
	want := make([]*DecodeResult[uint64], words)
	for w := 0; w < words; w++ {
		msg := make(poly.Poly[uint64], 8)
		for i := range msg {
			msg[i] = uint64(w*10 + i + 1)
		}
		word, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e <= w%code.MaxErrors(); e++ {
			word[(e*5+w)%len(word)] = gold.Add(word[(e*5+w)%len(word)], 1)
		}
		batch[w] = word
		if want[w], err = code.Decode(word); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 32} {
		got, err := code.DecodeMany(batch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: DecodeMany diverged from sequential decodes", workers)
		}
	}
}

func TestDecodeManyReportsLowestFailingWord(t *testing.T) {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	pts, err := gold.Elements(8)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewCode(ring, pts, 6) // radius (8-6)/2 = 1
	if err != nil {
		t.Fatal(err)
	}
	msg := poly.Poly[uint64]{1, 2, 3, 4, 5, 6}
	clean, err := code.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Two corrupted coordinates exceed the radius-1 code's reach (a generic
	// 2-error vector interpolates to a degree-7 polynomial, not a codeword).
	ruined := append([]uint64(nil), clean...)
	ruined[0] = gold.Add(ruined[0], 11)
	ruined[3] = gold.Add(ruined[3], 29)
	batch := [][]uint64{clean, ruined, ruined}
	_, err = code.DecodeMany(batch, 4)
	if err == nil {
		t.Fatal("undecodable words must fail")
	}
	if !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("want ErrTooManyErrors, got %v", err)
	}
	var werr *WordError
	if !errors.As(err, &werr) || werr.Word != 1 {
		t.Fatalf("want lowest failing word index 1, got %v", err)
	}
}
