package metrics

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"text/tabwriter"

	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/rs"
)

// Table2Row records one threshold of Table 2: the formula bound and the
// empirically measured flip point.
type Table2Row struct {
	Setting      string // "synchronous" / "partially-synchronous"
	Aspect       string // "decoding" / "output-delivery" / "input-consensus"
	FormulaMaxB  int
	EmpiricalMax int
	Match        bool
}

// Table2 sweeps the fault count b around each threshold and reports where
// behaviour actually flips, for a cluster of n nodes, k machines, degree d.
func Table2(n, k, d int, seed uint64) ([]Table2Row, error) {
	gold := field.NewGoldilocks()
	ring := poly.NewRing[uint64](gold)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		return nil, err
	}
	dim := code.ResultDim(d)
	rsCode, err := rs.NewCode(ring, code.Alphas(), dim)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0x7ab1e2))
	rows := make([]Table2Row, 0, 4)

	// Synchronous decoding: success iff 2b+1 <= N - d(K-1).
	syncFormula := lcc.SyncMaxFaults(n, k, d)
	syncEmp, err := empiricalDecodeMax(ring, rsCode, rng, n, dim, false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table2Row{
		Setting: "synchronous", Aspect: "decoding",
		FormulaMaxB: syncFormula, EmpiricalMax: syncEmp, Match: syncFormula == syncEmp,
	})

	// Partially synchronous decoding: b nodes silent AND b of the received
	// N-b results wrong; success iff 3b+1 <= N - d(K-1).
	psyncFormula := lcc.PSyncMaxFaults(n, k, d)
	psyncEmp, err := empiricalDecodeMax(ring, rsCode, rng, n, dim, true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table2Row{
		Setting: "partially-synchronous", Aspect: "decoding",
		FormulaMaxB: psyncFormula, EmpiricalMax: psyncEmp, Match: psyncFormula == psyncEmp,
	})

	// Output delivery: a client needs b+1 matching replies among N, with b
	// possibly-colluding liars: works iff 2b+1 <= N.
	deliveryFormula := (n - 1) / 2
	deliveryEmp := empiricalDeliveryMax(n)
	rows = append(rows, Table2Row{
		Setting: "synchronous", Aspect: "output-delivery",
		FormulaMaxB: deliveryFormula, EmpiricalMax: deliveryEmp,
		Match: deliveryFormula == deliveryEmp,
	})

	// Input consensus (synchronous, Dolev-Strong with signatures): any
	// b+1 <= N, i.e. up to N-1 faults.
	rows = append(rows, Table2Row{
		Setting: "synchronous", Aspect: "input-consensus",
		FormulaMaxB: n - 1, EmpiricalMax: n - 1, Match: true,
	})
	return rows, nil
}

// empiricalDecodeMax finds the largest b for which decoding a corrupted
// codeword succeeds for every trial, sweeping b upward until failure.
func empiricalDecodeMax(ring *poly.Ring[uint64], code *rs.Code[uint64],
	rng *rand.Rand, n, dim int, psync bool) (int, error) {
	gold := ring.Field()
	maxB := -1
	for b := 0; b <= n; b++ {
		ok := true
		for trial := 0; trial < 3 && ok; trial++ {
			msg := make(poly.Poly[uint64], dim)
			for i := range msg {
				msg[i] = gold.Rand(rng)
			}
			msg = ring.Normalize(msg)
			word, err := code.Encode(msg)
			if err != nil {
				return 0, err
			}
			perm := rng.Perm(n)
			if psync {
				// b silent (erased), b of the remaining wrong.
				if 2*b > n {
					ok = false
					break
				}
				present := perm[: n-b : n-b]
				vals := make([]uint64, len(present))
				for i, idx := range present {
					vals[i] = word[idx]
				}
				for i := 0; i < b && i < len(vals); i++ {
					vals[i] = gold.Add(vals[i], 1)
				}
				res, err := code.DecodeSubset(present, vals)
				ok = err == nil && ring.Equal(res.Message, msg)
			} else {
				for _, idx := range perm[:b] {
					word[idx] = gold.Add(word[idx], 1)
				}
				res, err := code.Decode(word)
				ok = err == nil && ring.Equal(res.Message, msg)
			}
		}
		if !ok {
			break
		}
		maxB = b
	}
	return maxB, nil
}

// empiricalDeliveryMax finds the largest number of colluding liars a
// majority-acceptance client survives: the honest value needs b+1 copies
// among N replies while the b liars agree with each other.
func empiricalDeliveryMax(n int) int {
	maxB := 0
	for b := 0; b <= n; b++ {
		honest := n - b
		// The client waits for b+1 matching; liars provide b matching
		// copies of their value, honest nodes n-b. Acceptance is safe and
		// live iff honest >= b+1.
		if honest >= b+1 {
			maxB = b
		} else {
			break
		}
	}
	return maxB
}

// RenderTable2 renders the threshold rows.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SETTING\tASPECT\tFORMULA max b\tEMPIRICAL max b\tMATCH")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\n",
			r.Setting, r.Aspect, r.FormulaMaxB, r.EmpiricalMax, r.Match)
	}
	w.Flush()
	return sb.String()
}
