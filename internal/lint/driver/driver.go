// Package driver runs the csmlint analyzer suite over whole packages:
// the standalone `csmlint ./...` mode, and the repo-is-clean meta-test.
// (The `go vet -vettool` unitchecker protocol lives in cmd/csmlint; it
// shares the per-package Analyze step below.)
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"codedsm/internal/lint"
	"codedsm/internal/lint/load"
)

// A Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Analyze runs the full suite plus annotation validation over one
// type-checked package.
func Analyze(pkg *load.Package) ([]Finding, error) {
	known := lint.AnalyzerNames()
	allows := lint.ParseAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	add := func(ds []lint.Diagnostic) {
		for _, d := range ds {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	for _, a := range lint.Analyzers() {
		diags, err := lint.Run(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, pkg.Path, allows)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
		add(diags)
	}
	add(allows.CheckDirectives(known))
	add(allows.CheckUnused(known))
	sortFindings(findings)
	return findings, nil
}

// AnalyzeModule loads every package matching patterns in the module at
// dir (test files included when tests is true) and runs the suite.
func AnalyzeModule(dir string, tests bool, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Module(dir, tests, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := Analyze(pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Position, fs[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Message < fs[j].Message
	})
}
