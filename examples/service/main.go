// Service: the serving-oriented API. Instead of pre-assembling a batch
// workload for Cluster.Run, concurrent tellers submit individual commands
// to a long-lived bank cluster through Client.Submit, each getting a
// Future for its command's decoded outcome. The client's scheduler
// coalesces whatever is pending into full rounds (padding idle accounts
// with the identity command), groups rounds into consensus batches, and
// drives the coded execution engine — under real Byzantine faults and
// Dolev-Strong consensus. A bounded per-account queue applies
// backpressure: a teller that runs too far ahead blocks in Submit until
// the cluster catches up.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"codedsm"
)

const (
	accounts  = 4  // K: one state machine per bank account
	nodes     = 16 // N
	faults    = 3  // b
	tellers   = 3  // concurrent submitters per account
	deposits  = 5  // submissions per teller
	queueCap  = 4  // per-account backpressure bound
	batchSize = 2  // rounds per consensus instance
)

func main() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(nodes),
		codedsm.WithMachines(accounts),
		codedsm.WithFaults(faults),
		codedsm.WithConsensus(codedsm.DolevStrong),
		codedsm.WithByzantineNode(2, codedsm.WrongResult),
		codedsm.WithByzantineNode(7, codedsm.SilentNode),
		codedsm.WithBatching(batchSize),
		codedsm.WithInitialStates([][]uint64{{1_000}, {2_000}, {3_000}, {4_000}}),
		codedsm.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	client, err := cluster.Open(codedsm.WithSubmitQueueDepth(queueCap))
	if err != nil {
		log.Fatal(err)
	}

	// A consumer streams every admitted future as it resolves — no result
	// slice is ever materialized. The stream starts at the Results call,
	// so obtain it before the tellers begin submitting.
	results := client.Results()
	var consumer sync.WaitGroup
	consumer.Add(1)
	resolved := 0
	go func() {
		defer consumer.Done()
		for fut := range results {
			if _, err := fut.Wait(context.Background()); err != nil {
				log.Fatalf("account %d command failed: %v", fut.Machine(), err)
			}
			resolved++
		}
	}()

	// Concurrent tellers: deposits to every account, amounts fixed per
	// (account, teller, round) so the final balances are deterministic no
	// matter how the scheduler interleaves the submissions into rounds.
	var wg sync.WaitGroup
	for acct := 0; acct < accounts; acct++ {
		for t := 0; t < tellers; t++ {
			wg.Add(1)
			go func(acct, t int) {
				defer wg.Done()
				for d := 0; d < deposits; d++ {
					amount := uint64(100*(acct+1) + 10*t + d)
					fut, err := client.Submit(context.Background(), acct, []uint64{amount})
					if err != nil {
						log.Fatalf("teller %d/%d: %v", acct, t, err)
					}
					_ = fut // the Results consumer tracks every outcome
				}
			}(acct, t)
		}
	}
	wg.Wait()
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}
	consumer.Wait()

	submitted := accounts * tellers * deposits
	rounds := cluster.Round()
	fmt.Printf("%d tellers × %d deposits to %d accounts on %d nodes (2 Byzantine), Dolev-Strong consensus\n\n",
		accounts*tellers, deposits, accounts, nodes)
	fmt.Printf("submissions resolved: %d/%d\n", resolved, submitted)
	fmt.Printf("rounds executed:      %d (%d command slots, %d filled by the identity pad)\n",
		rounds, rounds*accounts, rounds*accounts-submitted)
	fmt.Println("\nfinal balances (initial + every teller's deposits, decoded under faults):")
	for acct, state := range cluster.OracleStates() {
		want := uint64(1_000 * (acct + 1))
		for t := 0; t < tellers; t++ {
			for d := 0; d < deposits; d++ {
				want += uint64(100*(acct+1) + 10*t + d)
			}
		}
		status := "OK"
		if state[0] != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("  account %d: %6d  %s\n", acct, state[0], status)
	}
	fmt.Printf("\nfield ops: %d — the same coded execution engine, now behind Submit.\n",
		cluster.OpCounts().Total())
}
