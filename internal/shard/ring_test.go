package shard

import (
	"fmt"
	"sync"
	"testing"
)

// The ring's whole value is that placement is a pure function of
// (seed, shards, vnodes): bit-identical across runs, processes, and any
// number of concurrent builders.
func TestRingDeterministicPlacement(t *testing.T) {
	const machines = 4096
	ref, err := NewRing(5, DefaultVirtualNodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Placement(machines)

	// Rebuild serially.
	for run := 0; run < 3; run++ {
		r, err := NewRing(5, DefaultVirtualNodes, 42)
		if err != nil {
			t.Fatal(err)
		}
		for m, sh := range r.Placement(machines) {
			if sh != want[m] {
				t.Fatalf("run %d: machine %d placed on shard %d, want %d", run, m, sh, want[m])
			}
		}
	}

	// Rebuild from many goroutines at once (the "worker counts" axis: ring
	// construction and lookup share no state, so concurrency cannot change
	// placement).
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := NewRing(5, DefaultVirtualNodes, 42)
			if err != nil {
				errs[w] = err
				return
			}
			for m := 0; m < machines; m++ {
				if sh := r.Machine(m); sh != want[m] {
					errs[w] = fmt.Errorf("worker %d: machine %d placed on shard %d, want %d", w, m, sh, want[m])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// A different seed is a different ring (sanity: the seed is live).
	other, err := NewRing(5, DefaultVirtualNodes, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for m := 0; m < machines; m++ {
		if other.Machine(m) == want[m] {
			same++
		}
	}
	if same == machines {
		t.Fatalf("seeds 42 and 43 produced identical placement over %d machines", machines)
	}
}

// Consistent hashing's defining property: growing the ring from S to S+1
// shards moves roughly 1/(S+1) of the keys, and every moved key lands on
// the new shard (a key never moves between surviving shards).
func TestRingAddShardMovesOneOverS(t *testing.T) {
	const machines = 8192
	for _, s := range []int{2, 3, 4, 7} {
		before, err := NewRing(s, DefaultVirtualNodes, 99)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(s+1, DefaultVirtualNodes, 99)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for m := 0; m < machines; m++ {
			a, b := before.Machine(m), after.Machine(m)
			if a == b {
				continue
			}
			if b != s {
				t.Fatalf("S=%d: machine %d moved from shard %d to surviving shard %d (only the new shard %d may gain keys)",
					s, m, a, b, s)
			}
			moved++
		}
		// Expectation is machines/(S+1); pin generous-but-meaningful bounds
		// (vnodes=64 keeps the variance modest).
		frac := float64(moved) / machines
		lo, hi := 0.4/float64(s+1), 2.0/float64(s+1)
		if frac < lo || frac > hi {
			t.Fatalf("S=%d→%d: moved fraction %.4f outside pinned bounds [%.4f, %.4f]", s, s+1, frac, lo, hi)
		}
	}
}

// With enough virtual nodes no shard is starved or grossly overloaded.
func TestRingLoadSpread(t *testing.T) {
	const machines = 8192
	r, err := NewRing(4, DefaultVirtualNodes, 7)
	if err != nil {
		t.Fatal(err)
	}
	mean := machines / 4
	for sh, load := range r.Loads(machines) {
		if load < mean/3 || load > mean*3 {
			t.Fatalf("shard %d load %d too far from the mean %d", sh, load, mean)
		}
	}
}
