package replication

import (
	"fmt"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/sm"
)

// TestParallelReplicationBitIdentical runs both baselines with 1 and 8
// workers and requires identical outputs, correctness, and op counts.
func TestParallelReplicationBitIdentical(t *testing.T) {
	gold := field.NewGoldilocks()
	factory := func(f field.Field[uint64]) (*sm.Transition[uint64], error) { return sm.NewBank(f) }
	cfg := Config[uint64]{
		BaseField: gold, NewTransition: factory,
		K: 4, N: 12, Seed: 9,
		Byzantine: map[int]Behavior{1: Colluding, 5: Crash, 7: Colluding},
	}
	cmds := make([][]uint64, cfg.K)
	for k := range cmds {
		cmds[k] = []uint64{uint64(3*k + 1)}
	}
	type scheme struct {
		name string
		run  func(c Config[uint64]) (*RoundResult[uint64], field.OpCounts, error)
	}
	schemes := []scheme{
		{"full", func(c Config[uint64]) (*RoundResult[uint64], field.OpCounts, error) {
			cl, err := NewFull(c)
			if err != nil {
				return nil, field.OpCounts{}, err
			}
			res, err := cl.ExecuteRound(cmds)
			return res, cl.OpCounts(), err
		}},
		{"partial", func(c Config[uint64]) (*RoundResult[uint64], field.OpCounts, error) {
			cl, err := NewPartial(c)
			if err != nil {
				return nil, field.OpCounts{}, err
			}
			res, err := cl.ExecuteRound(cmds)
			return res, cl.OpCounts(), err
		}},
	}
	for _, s := range schemes {
		t.Run(s.name, func(t *testing.T) {
			seqCfg, parCfg := cfg, cfg
			seqCfg.Parallelism = 1
			parCfg.Parallelism = 8
			seqRes, seqOps, err := s.run(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			parRes, parOps, err := s.run(parCfg)
			if err != nil {
				t.Fatal(err)
			}
			if seqRes.Correct != parRes.Correct {
				t.Fatalf("correctness diverged: %v vs %v", seqRes.Correct, parRes.Correct)
			}
			if fmt.Sprint(seqRes.Outputs) != fmt.Sprint(parRes.Outputs) {
				t.Fatalf("outputs diverged:\nsequential: %v\nparallel:   %v", seqRes.Outputs, parRes.Outputs)
			}
			if seqOps != parOps {
				t.Fatalf("op counts diverged: %+v vs %+v", seqOps, parOps)
			}
		})
	}
}
