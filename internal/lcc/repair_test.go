package lcc

import (
	"math/rand/v2"
	"slices"
	"testing"

	"codedsm/internal/field"
)

// TestRepairShareBitIdenticalToEncode is the repair contract: the share
// reconstructed from any correct subset of surviving shares equals a
// fresh encode of the same machine vectors bit for bit, for every target
// node, with and without corrupted contributions.
func TestRepairShareBitIdenticalToEncode(t *testing.T) {
	const k, n, l = 3, 11, 4
	gold := field.NewGoldilocks()
	code := newTestCode(t, k, n)
	rng := rand.New(rand.NewPCG(7, 0))
	values := make([][]uint64, k)
	for i := range values {
		values[i] = field.RandVec[uint64](gold, rng, l)
	}
	enc, err := code.EncodeVectors(values)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := (n - 1 - k) / 2 // subset of n-1 rows, dimension k
	for target := 0; target < n; target++ {
		indices := make([]int, 0, n-1)
		shares := make([][]uint64, 0, n-1)
		corrupted := 0
		for j := 0; j < n; j++ {
			if j == target {
				continue
			}
			row := append([]uint64(nil), enc[j]...)
			if corrupted < maxErr && (j+target)%3 == 0 {
				row[corrupted%l] = gold.Add(row[corrupted%l], 0x5eed) // a lying contributor
				corrupted++
				shares = append(shares, row)
				indices = append(indices, j)
				continue
			}
			shares = append(shares, row)
			indices = append(indices, j)
		}
		got, faulty, err := code.RepairShare(indices, shares, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if !slices.Equal(got, enc[target]) {
			t.Fatalf("target %d: repaired share %v, fresh encode %v", target, got, enc[target])
		}
		if len(faulty) != corrupted {
			t.Fatalf("target %d: detected %v, corrupted %d rows", target, faulty, corrupted)
		}
	}
}

// TestRepairShareSubset repairs from fewer than N-1 shares: any subset
// within the error-correction radius suffices.
func TestRepairShareSubset(t *testing.T) {
	const k, n, l = 2, 10, 3
	gold := field.NewGoldilocks()
	code := newTestCode(t, k, n)
	rng := rand.New(rand.NewPCG(9, 0))
	values := make([][]uint64, k)
	for i := range values {
		values[i] = field.RandVec[uint64](gold, rng, l)
	}
	enc, err := code.EncodeVectors(values)
	if err != nil {
		t.Fatal(err)
	}
	// Repair node 0 from nodes 3..8 only (6 rows, dim 2: radius 2), with
	// one corrupted row.
	indices := []int{3, 4, 5, 6, 7, 8}
	shares := make([][]uint64, len(indices))
	for i, idx := range indices {
		shares[i] = append([]uint64(nil), enc[idx]...)
	}
	shares[2][1] = gold.Add(shares[2][1], 1)
	got, faulty, err := code.RepairShare(indices, shares, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, enc[0]) {
		t.Fatalf("subset repair %v, want %v", got, enc[0])
	}
	if !slices.Equal(faulty, []int{5}) {
		t.Fatalf("faulty %v, want [5]", faulty)
	}
}

func TestRepairShareValidation(t *testing.T) {
	code := newTestCode(t, 2, 6)
	shares := [][]uint64{{1}, {2}, {3}}
	if _, _, err := code.RepairShare([]int{0, 1, 2}, shares, -1); err == nil {
		t.Error("negative target should fail")
	}
	if _, _, err := code.RepairShare([]int{0, 1, 2}, shares, 6); err == nil {
		t.Error("out-of-range target should fail")
	}
	if _, _, err := code.RepairShare(nil, nil, 0); err == nil {
		t.Error("no contributors should fail")
	}
	if _, _, err := code.RepairShare([]int{0, 1}, shares, 2); err == nil {
		t.Error("indices/shares length mismatch should fail")
	}
	if _, _, err := code.RepairShare([]int{0, 1, 9}, shares, 2); err == nil {
		t.Error("out-of-range contributor should fail")
	}
}
