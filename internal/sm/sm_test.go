package sm

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
)

var gold = field.NewGoldilocks()

func TestNewTransitionValidation(t *testing.T) {
	p, err := mvpoly.Parse[uint64](gold, "s + x", []string{"s", "x"})
	if err != nil {
		t.Fatal(err)
	}
	ok := []mvpoly.Poly[uint64]{p}
	if _, err := NewTransition[uint64](gold, "t", 0, 1, nil, ok); err == nil {
		t.Error("stateLen 0 should fail")
	}
	if _, err := NewTransition[uint64](gold, "t", 1, 0, ok, ok); err == nil {
		t.Error("cmdLen 0 should fail")
	}
	if _, err := NewTransition[uint64](gold, "t", 2, 1, ok, ok); err == nil {
		t.Error("wrong next-state count should fail")
	}
	if _, err := NewTransition[uint64](gold, "t", 1, 1, ok, nil); err == nil {
		t.Error("no outputs should fail")
	}
	bad := mvpoly.Zero[uint64](3)
	if _, err := NewTransition[uint64](gold, "t", 1, 1, ok, []mvpoly.Poly[uint64]{bad}); err == nil {
		t.Error("wrong nvars should fail")
	}
	tr, err := NewTransition[uint64](gold, "t", 1, 1, ok, ok)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "t" || tr.StateLen() != 1 || tr.CmdLen() != 1 || tr.OutLen() != 1 ||
		tr.ResultLen() != 2 || tr.Degree() != 1 {
		t.Errorf("accessors wrong: %+v", tr)
	}
}

func TestBankMachine(t *testing.T) {
	tr, err := NewBank[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 1 {
		t.Errorf("bank degree = %d, want 1", tr.Degree())
	}
	m, err := NewMachine(tr, []uint64{100})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Step([]uint64{50})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 150 || m.State()[0] != 150 {
		t.Errorf("after deposit 50: out=%v state=%v", out, m.State())
	}
	// Withdrawal = additive inverse.
	if _, err := m.Step([]uint64{gold.Neg(30)}); err != nil {
		t.Fatal(err)
	}
	if m.State()[0] != 120 {
		t.Errorf("after withdrawal 30: state=%v", m.State())
	}
	if m.Round() != 2 {
		t.Errorf("round = %d", m.Round())
	}
}

func TestMachineLibraryDegrees(t *testing.T) {
	quad, err := NewQuadraticTally[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	if quad.Degree() != 2 {
		t.Errorf("quadratic tally degree = %d", quad.Degree())
	}
	mul, err := NewMultiplicativeAccumulator[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	if mul.Degree() != 2 {
		t.Errorf("mul accumulator degree = %d", mul.Degree())
	}
	for d := 1; d <= 5; d++ {
		pr, err := NewPolynomialRegister[uint64](gold, d)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Degree() != d {
			t.Errorf("poly register d=%d has degree %d", d, pr.Degree())
		}
	}
	if _, err := NewPolynomialRegister[uint64](gold, 0); err == nil {
		t.Error("degree 0 should fail")
	}
}

func TestQuadraticTallySemantics(t *testing.T) {
	tr, err := NewQuadraticTally[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(tr, []uint64{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3} {
		if _, err := m.Step([]uint64{v}); err != nil {
			t.Fatal(err)
		}
	}
	if m.State()[0] != 1+4+9 {
		t.Errorf("tally = %d, want 14", m.State()[0])
	}
}

func TestAffineMachine(t *testing.T) {
	// S' = [[1,1],[0,2]] S + [[1],[0]] X.
	a := [][]uint64{{1, 1}, {0, 2}}
	b := [][]uint64{{1}, {0}}
	tr, err := NewAffine[uint64](gold, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 1 || tr.StateLen() != 2 || tr.CmdLen() != 1 {
		t.Fatalf("affine dims wrong: d=%d", tr.Degree())
	}
	next, out, err := tr.Apply([]uint64{3, 4}, []uint64{10})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3 + 4 + 10, 8}
	if next[0] != want[0] || next[1] != want[1] {
		t.Errorf("next = %v, want %v", next, want)
	}
	if out[0] != want[0] || out[1] != want[1] {
		t.Errorf("out = %v, want %v", out, want)
	}
	if _, err := NewAffine[uint64](gold, nil, nil); err == nil {
		t.Error("empty A should fail")
	}
	if _, err := NewAffine[uint64](gold, a, [][]uint64{{1}}); err == nil {
		t.Error("B row count mismatch should fail")
	}
	if _, err := NewAffine[uint64](gold, [][]uint64{{1, 1}, {0}}, b); err == nil {
		t.Error("ragged A should fail")
	}
}

func TestInnerProductMachine(t *testing.T) {
	tr, err := NewInnerProduct[uint64](gold, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 2 {
		t.Errorf("degree = %d", tr.Degree())
	}
	s := []uint64{1, 2, 3}
	x := []uint64{10, 20, 30}
	next, out, err := tr.Apply(s, x)
	if err != nil {
		t.Fatal(err)
	}
	wantNext := []uint64{11, 22, 33}
	for i := range wantNext {
		if next[i] != wantNext[i] {
			t.Errorf("next = %v", next)
			break
		}
	}
	if want := uint64(11*10 + 22*20 + 33*30); out[0] != want {
		t.Errorf("out = %d, want %d", out[0], want)
	}
	if _, err := NewInnerProduct[uint64](gold, 0); err == nil {
		t.Error("dim 0 should fail")
	}
}

func TestApplyDimensionErrors(t *testing.T) {
	tr, err := NewBank[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Apply([]uint64{1, 2}, []uint64{1}); !errors.Is(err, ErrDimension) {
		t.Error("bad state length should fail")
	}
	if _, _, err := tr.Apply([]uint64{1}, []uint64{}); !errors.Is(err, ErrDimension) {
		t.Error("bad command length should fail")
	}
	if _, err := NewMachine(tr, []uint64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Error("bad initial state should fail")
	}
	if _, _, err := tr.SplitResult([]uint64{1}); !errors.Is(err, ErrDimension) {
		t.Error("bad result length should fail")
	}
}

func TestApplyResultAndSplit(t *testing.T) {
	tr, err := NewBank[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.ApplyResult([]uint64{5}, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != 12 || res[1] != 12 {
		t.Errorf("result = %v", res)
	}
	next, out, err := tr.SplitResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if next[0] != 12 || out[0] != 12 {
		t.Errorf("split = %v, %v", next, out)
	}
}

func TestFromExprsErrors(t *testing.T) {
	if _, err := FromExprs[uint64](gold, "t", []string{"s"}, []string{"x"},
		[]string{"s + y"}, []string{"s"}); err == nil {
		t.Error("unknown variable should fail")
	}
	if _, err := FromExprs[uint64](gold, "t", []string{"s"}, []string{"x"},
		[]string{"s"}, []string{"x +"}); err == nil {
		t.Error("syntax error should fail")
	}
}

func TestMachineIsolation(t *testing.T) {
	tr, err := NewBank[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	initial := []uint64{10}
	m, err := NewMachine(tr, initial)
	if err != nil {
		t.Fatal(err)
	}
	initial[0] = 999
	if m.State()[0] != 10 {
		t.Error("machine aliases caller's initial state")
	}
	st := m.State()
	st[0] = 777
	if m.State()[0] != 10 {
		t.Error("State() exposes internal slice")
	}
}

func TestTransitionOnCodedDataProperty(t *testing.T) {
	// The defining CSM property: for polynomial f and Lagrange-coded
	// inputs, f(coded) at alpha equals h(alpha) where h interpolates the
	// uncoded results. Spot-check via linearity for d=1 machines:
	// f(sum c_k s_k, sum c_k x_k) with sum c_k = 1 equals sum c_k f(s_k, x_k).
	tr, err := NewBank[uint64](gold)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		// Random coefficients summing to one.
		c1 := gold.Rand(rng)
		c2 := gold.Sub(gold.One(), c1)
		s1, s2 := gold.Rand(rng), gold.Rand(rng)
		x1, x2 := gold.Rand(rng), gold.Rand(rng)
		codedS := gold.Add(gold.Mul(c1, s1), gold.Mul(c2, s2))
		codedX := gold.Add(gold.Mul(c1, x1), gold.Mul(c2, x2))
		got, err := tr.ApplyResult([]uint64{codedS}, []uint64{codedX})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := tr.ApplyResult([]uint64{s1}, []uint64{x1})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := tr.ApplyResult([]uint64{s2}, []uint64{x2})
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			want := gold.Add(gold.Mul(c1, r1[j]), gold.Mul(c2, r2[j]))
			if got[j] != want {
				t.Fatal("linear transition does not commute with coding")
			}
		}
	}
}
