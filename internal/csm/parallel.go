package csm

import (
	"codedsm/internal/pool"
)

// The parallel execution engine fans a round's node-level work across
// worker goroutines while keeping the simulation bit-identical to the
// sequential path. The round is split into phases by what they touch:
//
//   - command encode (parallel): each node's Lagrange encode of the whole
//     agreed batch is a pure function of the coefficients and the batch;
//     one flat ScaleAccVec pass per machine covers every micro-step.
//   - compute (parallel): every node's coded transition g_i = f(S̃_i, X̃_i)
//     is a pure function of the node's state and its coded command slice;
//     results land in index-addressed slots.
//   - broadcast: Byzantine lies consume the cluster RNG on the driving
//     goroutine in node order (planBroadcast); the RNG-free signing and
//     enqueueing (transmitResult) fans out across workers whenever the
//     transport's delivery schedule is enqueue-order-independent
//     (synchronous mode or post-GST; pre-GST sends stay in node order —
//     random delays consume the sequential RNG and a DelayFn may be
//     stateful) — delivery order is re-sorted deterministically by the
//     lock-step network, so enqueue order cannot leak into the simulation.
//   - decode (parallel): each honest node's Reed-Solomon decode of the
//     collected results is independent; message collection stays on the
//     driving goroutine so inbox draining is ordered.
//   - client/audit (sequential or pipelined): draws from the cluster RNG
//     on the driving goroutine; the tally itself may run on the
//     background client stage.
//
// Shared structures reached from worker goroutines are safe by
// construction: field.Counting uses atomic counters (which commute, so op
// totals are also identical), lcc.Code guards its lazy RS-code cache with
// a mutex, and poly rings/trees are immutable after construction.

// workers returns the effective worker count for node-level fan-out:
// cfg.Parallelism, defaulted and clamped to the cluster size.
func (c *Cluster[E]) workers() int {
	return pool.Clamp(c.cfg.Parallelism, c.cfg.N)
}

// Parallelism reports the effective worker count rounds execute with.
func (c *Cluster[E]) Parallelism() int { return c.workers() }

// encodeBatchCommands Lagrange-encodes the agreed batch once per node:
// encoding is linear and state-independent, so the per-machine command
// vectors of all micro-steps concatenate into one flat row per machine
// and each node's encode is K ScaleAccVec kernels over the whole batch.
func (c *Cluster[E]) encodeBatchCommands(steps [][][]E) error {
	cmdLen := c.tr.CmdLen()
	total := len(steps) * cmdLen
	vecs := steps[0]
	if len(steps) > 1 {
		flat := make([]E, c.cfg.K*total)
		vecs = make([][]E, c.cfg.K)
		for k := 0; k < c.cfg.K; k++ {
			row := flat[k*total : (k+1)*total : (k+1)*total]
			for j := range steps {
				copy(row[j*cmdLen:(j+1)*cmdLen], steps[j][k])
			}
			vecs[k] = row
		}
	}
	return pool.Run(c.workers(), len(c.nodes), func(i int) error {
		n := c.nodes[i]
		if n.behavior == Crashed || n.behavior == Recovering {
			return nil // down nodes hold no share and encode nothing
		}
		n.cmdScratch = n.lagrangeEncodeInto(n.cmdScratch, total, vecs)
		return nil
	})
}

// computeAllResults runs the compute phase: every node's true coded result
// for the batch's micro-th step, in parallel, index-aligned with c.nodes.
func (c *Cluster[E]) computeAllResults(micro int) ([][]E, error) {
	results := make([][]E, len(c.nodes))
	err := pool.Run(c.workers(), len(c.nodes), func(i int) error {
		n := c.nodes[i]
		if n.behavior == Crashed || n.behavior == Recovering {
			return nil // no state, no compute; planBroadcast sends nothing
		}
		r, err := n.computeResultAt(micro)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// transmitAllResults signs and enqueues every node's staged result
// broadcast. The fan-out runs in parallel only when the transport's
// delivery schedule at the current round is enqueue-order-independent:
// pre-GST sends must stay in node order (random delays draw from the
// network's sequential RNG at enqueue time, and an installed DelayFn may
// be stateful).
func (c *Cluster[E]) transmitAllResults() error {
	if c.workers() > 1 && c.net.DelayDeterministic(c.net.Round()) {
		return pool.Run(c.workers(), len(c.nodes), func(i int) error {
			return c.nodes[i].transmitResult()
		})
	}
	for _, n := range c.nodes {
		if err := n.transmitResult(); err != nil {
			return err
		}
	}
	return nil
}

// tryDecodeAll runs the decode phase for the pending honest nodes in
// parallel and reports whether every one of them now holds a decode. Every
// node is attempted even if one fails — a parallel pool races ahead of an
// error anyway, so the sequential path does the same and the cluster is
// left in an identical state for any worker count, error or not; the
// lowest-index error is reported.
func (c *Cluster[E]) tryDecodeAll(pending []*node[E], force bool, need int) (bool, error) {
	oks := make([]bool, len(pending))
	errs := make([]error, len(pending))
	_ = pool.Run(c.workers(), len(pending), func(i int) error {
		oks[i], errs[i] = pending[i].tryDecode(force, need)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	for _, ok := range oks {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
