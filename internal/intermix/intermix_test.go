package intermix

import (
	"math"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
)

var gold = field.NewGoldilocks()

func randomInstance(rng *rand.Rand, n, k int) ([][]uint64, []uint64) {
	a := make([][]uint64, n)
	for i := range a {
		a[i] = field.RandVec[uint64](gold, rng, k)
	}
	return a, field.RandVec[uint64](gold, rng, k)
}

func TestHonestWorkerPassesAudit(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a, x := randomInstance(rng, 8, 16)
	w, err := NewWorker[uint64](gold, a, x, HonestWorker, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	alert, err := Audit[uint64](gold, a, x, w.Output(), w.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if alert != nil {
		t.Fatalf("honest worker convicted: %+v", alert)
	}
}

func TestNaiveLiarCaughtAtFirstLevel(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a, x := randomInstance(rng, 8, 16)
	w, err := NewWorker[uint64](gold, a, x, NaiveLiar, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	alert, err := Audit[uint64](gold, a, x, w.Output(), w.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if alert == nil || alert.Kind != SumMismatch {
		t.Fatalf("alert = %+v, want SumMismatch", alert)
	}
	if alert.Row != 3 {
		t.Errorf("fraud located at row %d, want 3", alert.Row)
	}
	if alert.Queries != 1 {
		t.Errorf("naive liar took %d query pairs, want 1", alert.Queries)
	}
	if !VerifyAlert[uint64](gold, a, x, alert) {
		t.Error("valid alert rejected by commoners")
	}
}

func TestConsistentLiarCaughtAtLeaf(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, k := range []int{2, 7, 16, 33, 100} {
		a, x := randomInstance(rng, 5, k)
		col := int(rng.Uint64N(uint64(k)))
		w, err := NewWorker[uint64](gold, a, x, ConsistentLiar, 2, col)
		if err != nil {
			t.Fatal(err)
		}
		alert, err := Audit[uint64](gold, a, x, w.Output(), w.Answer)
		if err != nil {
			t.Fatal(err)
		}
		if alert == nil || alert.Kind != LeafMismatch {
			t.Fatalf("k=%d: alert = %+v, want LeafMismatch", k, alert)
		}
		if alert.LeafCol != col {
			t.Errorf("k=%d: fraud localized to column %d, want %d", k, alert.LeafCol, col)
		}
		// Algorithm 1 must terminate within ceil(log2 k) query pairs.
		maxQ := int(math.Ceil(math.Log2(float64(k)))) + 1
		if alert.Queries > maxQ {
			t.Errorf("k=%d: %d query pairs exceeds log bound %d", k, alert.Queries, maxQ)
		}
		if !VerifyAlert[uint64](gold, a, x, alert) {
			t.Error("valid leaf alert rejected")
		}
	}
}

func TestRefusingWorkerConvicted(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a, x := randomInstance(rng, 4, 8)
	w, err := NewWorker[uint64](gold, a, x, Refusing, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A refusing worker still publishes (a correct) output here; corrupt it
	// manually so the auditor needs answers.
	output := w.Output()
	output[1] = gold.Add(output[1], 1)
	alert, err := Audit[uint64](gold, a, x, output, w.Answer)
	if err != nil {
		t.Fatal(err)
	}
	if alert == nil || alert.Kind != RefusedToAnswer {
		t.Fatalf("alert = %+v, want RefusedToAnswer", alert)
	}
}

func TestVerifyAlertRejectsFabrications(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a, x := randomInstance(rng, 4, 8)
	if VerifyAlert[uint64](gold, a, x, nil) {
		t.Error("nil alert verified")
	}
	// Fabricated sum mismatch with consistent numbers: arithmetic check
	// fails (2 = 1+1).
	consistent := &Alert[uint64]{
		Kind:  SumMismatch,
		Steps: []Step[uint64]{{Left: 1, Right: 1, Claimed: 2}},
	}
	if VerifyAlert[uint64](gold, a, x, consistent) {
		t.Error("consistent numbers verified as mismatch")
	}
	if VerifyAlert[uint64](gold, a, x, &Alert[uint64]{Kind: SumMismatch}) {
		t.Error("empty steps verified")
	}
	// Leaf claim that happens to be correct.
	truthful := &Alert[uint64]{Kind: LeafMismatch, Row: 0, LeafCol: 0, Claim: gold.Mul(a[0][0], x[0])}
	if VerifyAlert[uint64](gold, a, x, truthful) {
		t.Error("truthful leaf claim verified as fraud")
	}
	outOfRange := &Alert[uint64]{Kind: LeafMismatch, Row: 99, LeafCol: 0}
	if VerifyAlert[uint64](gold, a, x, outOfRange) {
		t.Error("out-of-range alert verified")
	}
	if VerifyAlert[uint64](gold, a, x, &Alert[uint64]{Kind: AlertKind(9)}) {
		t.Error("unknown kind verified")
	}
}

func TestWorkerValidation(t *testing.T) {
	if _, err := NewWorker[uint64](gold, nil, nil, HonestWorker, 0, 0); err == nil {
		t.Error("empty instance should fail")
	}
	if _, err := NewWorker[uint64](gold, [][]uint64{{1, 2}}, []uint64{1}, HonestWorker, 0, 0); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := NewWorker[uint64](gold, [][]uint64{{1}}, []uint64{1}, NaiveLiar, 5, 0); err == nil {
		t.Error("corruption site out of range should fail")
	}
	rng := rand.New(rand.NewPCG(11, 12))
	a, x := randomInstance(rng, 3, 4)
	w, _ := NewWorker[uint64](gold, a, x, HonestWorker, 0, 0)
	if _, err := Audit[uint64](gold, a, x, w.Output()[:2], w.Answer); err == nil {
		t.Error("wrong output length should fail")
	}
}

func TestCommitteeSize(t *testing.T) {
	j, err := CommitteeSize(0.001, 1.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	// (1/3)^7 ~ 4.6e-4 <= 1e-3 < (1/3)^6 ~ 1.4e-3.
	if j != 7 {
		t.Errorf("J = %d, want 7", j)
	}
	if _, err := CommitteeSize(0, 0.3); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := CommitteeSize(1, 0.3); err == nil {
		t.Error("epsilon 1 should fail")
	}
	if _, err := CommitteeSize(0.01, 1); err == nil {
		t.Error("mu 1 should fail")
	}
	if j, err := CommitteeSize(0.01, 0); err != nil || j != 1 {
		t.Errorf("mu=0: J=%d err=%v", j, err)
	}
}

func TestElectionStatistics(t *testing.T) {
	// Average committee size over many beacons should be near J.
	const n, j, trials = 100, 8, 400
	total := 0
	for seed := uint64(0); seed < trials; seed++ {
		total += len(ElectCommittee(seed, n, j))
	}
	avg := float64(total) / trials
	if avg < float64(j)*0.8 || avg > float64(j)*1.2 {
		t.Errorf("average committee size %.2f far from J=%d", avg, j)
	}
	if SelfElect(1, 0, 0, 5) || SelfElect(1, 0, 10, 0) {
		t.Error("degenerate election parameters should elect nobody")
	}
	if !SelfElect(1, 3, 5, 5) {
		t.Error("j >= n should elect everybody")
	}
	if ProveElection(7, 3) != ProveElection(7, 3) {
		t.Error("election proof not deterministic")
	}
}

func TestElectNonEmpty(t *testing.T) {
	c, beacon, err := ElectNonEmpty(5, 50, 4)
	if err != nil || len(c) == 0 {
		t.Fatalf("committee %v beacon %d err %v", c, beacon, err)
	}
	if _, _, err := ElectNonEmpty(5, 0, 4); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestElectionSoundness(t *testing.T) {
	// Empirical Section 6.1 guarantee: with µ = 1/3 dishonest and
	// J = log(ε)/log(µ), the fraction of beacons whose committee is
	// entirely dishonest is about ε (here we only check it is small and
	// within an order of magnitude).
	const n = 120
	mu := 1.0 / 3.0
	eps := 0.01
	j, err := CommitteeSize(eps, mu)
	if err != nil {
		t.Fatal(err)
	}
	dishonest := make(map[int]bool, n/3)
	for i := 0; i < n/3; i++ {
		dishonest[i*3] = true // every third node
	}
	const trials = 3000
	allBad := 0
	for seed := uint64(0); seed < trials; seed++ {
		committee := ElectCommittee(seed, n, j)
		if len(committee) == 0 {
			continue
		}
		bad := true
		for _, m := range committee {
			if !dishonest[m] {
				bad = false
				break
			}
		}
		if bad {
			allBad++
		}
	}
	frac := float64(allBad) / trials
	if frac > 10*eps {
		t.Errorf("all-dishonest committee rate %.4f >> epsilon %.4f", frac, eps)
	}
	t.Logf("all-dishonest committee rate %.4f (target epsilon %.3f, J=%d)", frac, eps, j)
}

func TestSessionHonestWorkerAccepted(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	a, x := randomInstance(rng, 20, 16)
	out, err := RunSession(SessionConfig[uint64]{
		F: gold, A: a, X: x, NetworkSize: 20,
		Mu: 1.0 / 3.0, Epsilon: 0.01, Seed: 3,
		WorkerStrategy: HonestWorker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("honest worker rejected")
	}
	if out.ValidAlerts != 0 {
		t.Errorf("%d valid alerts against honest worker", out.ValidAlerts)
	}
}

func TestSessionLiarRejected(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	a, x := randomInstance(rng, 20, 16)
	for _, strategy := range []Strategy{NaiveLiar, ConsistentLiar} {
		out, err := RunSession(SessionConfig[uint64]{
			F: gold, A: a, X: x, NetworkSize: 20,
			Mu: 1.0 / 3.0, Epsilon: 0.01, Seed: 4,
			WorkerStrategy: strategy, CorruptRow: 7, CorruptCol: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			t.Fatalf("%v accepted", strategy)
		}
		if out.ValidAlerts == 0 {
			t.Fatalf("%v produced no valid alerts", strategy)
		}
	}
}

func TestSessionDishonestAuditorsDismissed(t *testing.T) {
	// All-dishonest committee vs honest worker: fabricated alerts must be
	// dismissed and the output accepted.
	rng := rand.New(rand.NewPCG(17, 18))
	a, x := randomInstance(rng, 12, 8)
	dishonest := make(map[int]bool)
	for i := 0; i < 12; i++ {
		dishonest[i] = true
	}
	out, err := RunSession(SessionConfig[uint64]{
		F: gold, A: a, X: x, NetworkSize: 12,
		Mu: 0.4, Epsilon: 0.05, Seed: 5,
		WorkerStrategy: HonestWorker, Dishonest: dishonest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("dishonest auditors defeated an honest worker")
	}
	if out.DismissedAlerts == 0 {
		t.Error("expected dismissed fabricated alerts")
	}
}

func TestSessionDishonestAuditorsShieldLiar(t *testing.T) {
	// All-dishonest committee + lying worker = wrong value accepted. This
	// is exactly the ε-probability failure mode the committee size bounds.
	rng := rand.New(rand.NewPCG(19, 20))
	a, x := randomInstance(rng, 12, 8)
	dishonest := make(map[int]bool)
	for i := 0; i < 12; i++ {
		dishonest[i] = true
	}
	out, err := RunSession(SessionConfig[uint64]{
		F: gold, A: a, X: x, NetworkSize: 12,
		Mu: 0.4, Epsilon: 0.05, Seed: 6,
		WorkerStrategy: ConsistentLiar, CorruptRow: 1, CorruptCol: 2,
		Dishonest: dishonest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("with no honest auditor the lie should survive (the ε case)")
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := RunSession(SessionConfig[uint64]{F: gold, NetworkSize: 1}); err == nil {
		t.Error("tiny network should fail")
	}
}

func TestIntermixComplexityFormula(t *testing.T) {
	// The measured worst-case overhead must not exceed the paper's bound
	// (J+1)c(AX) + 8JK + 3J logK + N-J-1 by more than bookkeeping slack.
	const n, k, j = 64, 32, 5
	counting := field.NewCounting[uint64](gold)
	rng := rand.New(rand.NewPCG(21, 22))
	a, x := randomInstance(rng, n, k)
	w, err := NewWorker[uint64](counting, a, x, ConsistentLiar, n/2, k/2)
	if err != nil {
		t.Fatal(err)
	}
	output := w.Output()
	counting.Reset()
	// One honest audit (the dominant term is one recomputation of AX).
	if _, err := Audit[uint64](counting, a, x, output, w.Answer); err != nil {
		t.Fatal(err)
	}
	measured := counting.Counts().Total()
	cAX := uint64(2 * n * k) // n rows of k mul + k add
	bound := WorstCaseOverhead(j, k, n, cAX)
	if measured > bound {
		t.Errorf("measured single-audit cost %d exceeds J-auditor bound %d", measured, bound)
	}
	t.Logf("single audit cost: %d ops; paper worst-case bound for J=%d auditors: %d ops", measured, j, bound)
}

func TestStrategyAndKindStrings(t *testing.T) {
	for _, s := range []Strategy{HonestWorker, NaiveLiar, ConsistentLiar, Refusing, Strategy(9)} {
		if s.String() == "" {
			t.Error("empty strategy string")
		}
	}
	for _, k := range []AlertKind{SumMismatch, LeafMismatch, RefusedToAnswer, AlertKind(9)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
}
