package poly

import (
	"fmt"
	"sync"
)

// SubproductTree is the binary tree of partial products
// prod_{i in range} (z - points[i]) used for quasilinear multi-point
// evaluation and interpolation (von zur Gathen & Gerhard, ch. 10). Building
// it costs O(M(n) log n) where M is the multiplication cost; with the NTT
// this is O(n log^2 n), matching the per-worker coding complexity the paper
// claims in Section 6.2.
type SubproductTree[E comparable] struct {
	ring   *Ring[E]
	points []E
	root   *treeNode[E]

	// Interpolation weights 1/m'(x_i) depend only on the points, not on the
	// interpolated values; they are computed once on first use and shared by
	// every subsequent Interpolate (each execution round interpolates L
	// codeword components against the same tree). sync.Once keeps the
	// lazy computation safe under the parallel decode fan-out.
	weightsOnce sync.Once
	invDeriv    []E
	weightsErr  error
}

type treeNode[E comparable] struct {
	prod        Poly[E] // prod_{i=lo..hi-1} (z - points[i])
	left, right *treeNode[E]
	lo, hi      int
}

// NewSubproductTree builds the subproduct tree over the given points.
func NewSubproductTree[E comparable](ring *Ring[E], points []E) *SubproductTree[E] {
	t := &SubproductTree[E]{ring: ring, points: points}
	if len(points) > 0 {
		t.root = t.build(0, len(points))
	}
	return t
}

func (t *SubproductTree[E]) build(lo, hi int) *treeNode[E] {
	n := &treeNode[E]{lo: lo, hi: hi}
	if hi-lo == 1 {
		n.prod = Poly[E]{t.ring.f.Neg(t.points[lo]), t.ring.f.One()}
		return n
	}
	mid := (lo + hi) / 2
	n.left = t.build(lo, mid)
	n.right = t.build(mid, hi)
	n.prod = t.ring.Mul(n.left.prod, n.right.prod)
	return n
}

// Master returns prod_i (z - points[i]).
func (t *SubproductTree[E]) Master() Poly[E] {
	if t.root == nil {
		return Poly[E]{t.ring.f.One()}
	}
	return t.root.prod
}

// Points returns the evaluation points the tree was built over.
func (t *SubproductTree[E]) Points() []E { return t.points }

// EvalMany evaluates p at every tree point by remainder descent:
// O(M(n) log n) instead of Horner's O(n deg p).
func (t *SubproductTree[E]) EvalMany(p Poly[E]) ([]E, error) {
	out := make([]E, len(t.points))
	if err := t.EvalManyInto(out, p); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalManyInto is EvalMany writing into a caller-owned slice of length
// len(Points()) — the repeated-decode hot paths reuse one scratch buffer
// per worker instead of allocating per call.
func (t *SubproductTree[E]) EvalManyInto(out []E, p Poly[E]) error {
	if len(out) != len(t.points) {
		return fmt.Errorf("poly: EvalManyInto dst length %d, want %d", len(out), len(t.points))
	}
	if t.root == nil {
		return nil
	}
	rem, err := t.ring.Mod(p, t.root.prod)
	if err != nil {
		return err
	}
	return t.evalDown(t.root, rem, out)
}

// evalLeafBlock is the node size at which the remainder descent switches to
// direct vectorized Horner evaluation: below it, the dominant cost of the
// two divisions per node is allocation and call overhead, while Horner over
// the residual degree-<block polynomial runs allocation-free on bulk
// kernels.
const evalLeafBlock = 8

func (t *SubproductTree[E]) evalDown(n *treeNode[E], p Poly[E], out []E) error {
	if n.hi-n.lo <= evalLeafBlock {
		// p is already reduced mod this node's product, so deg(p) < hi-lo:
		// evaluate it directly at the block's points.
		t.ring.EvalManyInto(out[n.lo:n.hi], p, t.points[n.lo:n.hi])
		return nil
	}
	pl, err := t.ring.Mod(p, n.left.prod)
	if err != nil {
		return err
	}
	pr, err := t.ring.Mod(p, n.right.prod)
	if err != nil {
		return err
	}
	if err := t.evalDown(n.left, pl, out); err != nil {
		return err
	}
	return t.evalDown(n.right, pr, out)
}

// Interpolate returns the unique polynomial of degree < n through
// (points[i], ys[i]) using the tree: weights from the derivative of the
// master polynomial, then a bottom-up linear combination. O(M(n) log n).
func (t *SubproductTree[E]) Interpolate(ys []E) (Poly[E], error) {
	if len(ys) != len(t.points) {
		return nil, fmt.Errorf("poly: fast interpolate: %d values for %d points: %w", len(ys), len(t.points), ErrDegreeMismatch)
	}
	if t.root == nil {
		return nil, nil
	}
	invs, err := t.interpWeights()
	if err != nil {
		return nil, err
	}
	weights := make([]E, len(ys))
	t.ring.bulk.MulVec(weights, ys, invs)
	return t.combine(t.root, weights), nil
}

// interpWeights returns (computing on first use) the cached barycentric-style
// weights 1/m'(x_i), where m'(x_i) = prod_{j != i} (x_i - x_j) is nonzero
// iff the points are distinct.
func (t *SubproductTree[E]) interpWeights() ([]E, error) {
	t.weightsOnce.Do(func() {
		deriv := t.ring.Derivative(t.Master())
		derivVals, err := t.EvalMany(deriv)
		if err != nil {
			t.weightsErr = err
			return
		}
		invs := make([]E, len(derivVals))
		if err := t.ring.bulk.BatchInvInto(invs, derivVals); err != nil {
			t.weightsErr = fmt.Errorf("poly: fast interpolate: duplicate points: %w", err)
			return
		}
		t.invDeriv = invs
	})
	return t.invDeriv, t.weightsErr
}

// combine computes sum_{i in node range} weights[i] * prod_{j != i, j in
// range} (z - points[j]) recursively:
// combine(node) = combine(left)*right.prod + combine(right)*left.prod.
func (t *SubproductTree[E]) combine(n *treeNode[E], weights []E) Poly[E] {
	if n.hi-n.lo == 1 {
		return t.ring.Constant(weights[n.lo])
	}
	l := t.combine(n.left, weights)
	r := t.combine(n.right, weights)
	return t.ring.Add(t.ring.Mul(l, n.right.prod), t.ring.Mul(r, n.left.prod))
}

// FastEvalMany is a convenience wrapper: build a tree over xs and evaluate.
func (r *Ring[E]) FastEvalMany(p Poly[E], xs []E) ([]E, error) {
	return NewSubproductTree(r, xs).EvalMany(p)
}

// FastInterpolate is a convenience wrapper: build a tree over xs and
// interpolate ys.
func (r *Ring[E]) FastInterpolate(xs, ys []E) (Poly[E], error) {
	return NewSubproductTree(r, xs).Interpolate(ys)
}
