package transport

import (
	"crypto/ed25519"
	"testing"
)

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func endpoint(t *testing.T, n *Network, id NodeID) *Endpoint {
	t.Helper()
	e, err := n.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := New(Config{N: 3, MaxPreGSTDelay: -1}); err == nil {
		t.Error("negative delay should fail")
	}
	n := newNet(t, Config{N: 3})
	if _, err := n.Endpoint(3); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	if _, err := n.PublicKey(-1); err == nil {
		t.Error("out-of-range public key should fail")
	}
}

func TestSynchronousDelivery(t *testing.T) {
	n := newNet(t, Config{N: 3, Mode: Sync, Seed: 1})
	a, b := endpoint(t, n, 0), endpoint(t, n, 1)
	if err := a.Send(1, "ping", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := b.Receive(); len(got) != 0 {
		t.Fatal("message delivered before Step")
	}
	n.Step()
	got := b.Receive()
	if len(got) != 1 || string(got[0].Payload) != "hello" || got[0].From != 0 || got[0].Kind != "ping" {
		t.Fatalf("received %+v", got)
	}
	// Inbox cleared next round.
	n.Step()
	if got := b.Receive(); len(got) != 0 {
		t.Fatal("stale inbox")
	}
	stats := n.Stats()
	if stats.MessagesDelivered != 1 || stats.BytesDelivered != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBroadcastExcludesSelf(t *testing.T) {
	n := newNet(t, Config{N: 4, Mode: Sync, Seed: 2})
	a := endpoint(t, n, 0)
	if err := a.Broadcast("blob", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	n.Step()
	if got := a.Receive(); len(got) != 0 {
		t.Error("broadcast delivered to self")
	}
	for id := NodeID(1); id < 4; id++ {
		if got := endpoint(t, n, id).Receive(); len(got) != 1 {
			t.Errorf("node %d received %d messages", id, len(got))
		}
	}
}

func TestSignatureVerification(t *testing.T) {
	n := newNet(t, Config{N: 3, Mode: Sync, Seed: 3})
	a := endpoint(t, n, 0)
	if err := a.Send(1, "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Step()
	msgs := endpoint(t, n, 1).Receive()
	if len(msgs) != 1 {
		t.Fatal("expected one message")
	}
	if !n.Verify(msgs[0]) {
		t.Error("valid signature rejected")
	}
	tampered := msgs[0]
	tampered.Payload = []byte("y")
	if n.Verify(tampered) {
		t.Error("tampered payload accepted")
	}
}

func TestForgeryDropped(t *testing.T) {
	// Node 2 (Byzantine) tries to inject a message claiming to be node 0.
	n := newNet(t, Config{N: 3, Mode: Sync, Seed: 4})
	forged := Message{
		From: 0, To: 1, Round: n.Round(), Kind: "k",
		Payload: []byte("fake"),
		Sig:     make([]byte, ed25519.SignatureSize),
	}
	n.Inject(forged)
	n.Step()
	if got := endpoint(t, n, 1).Receive(); len(got) != 0 {
		t.Fatal("forged message delivered")
	}
	if n.Stats().ForgeriesDropped != 1 {
		t.Errorf("forgeries dropped = %d", n.Stats().ForgeriesDropped)
	}
	// From out of range is also a forgery.
	n.Inject(Message{From: 99, To: 1, Round: n.Round(), Kind: "k"})
	if n.Stats().ForgeriesDropped != 2 {
		t.Error("out-of-range sender not dropped")
	}
}

func TestPartialSyncDelaysBeforeGST(t *testing.T) {
	const gst = 10
	n := newNet(t, Config{N: 2, Mode: PartialSync, GST: gst, MaxPreGSTDelay: 5, Seed: 5})
	a, b := endpoint(t, n, 0), endpoint(t, n, 1)
	if err := a.Send(1, "early", nil); err != nil {
		t.Fatal(err)
	}
	// The message must arrive within 1+MaxPreGSTDelay rounds, not
	// necessarily the next one.
	arrived := -1
	for r := 1; r <= 6; r++ {
		n.Step()
		if len(b.Receive()) > 0 {
			arrived = r
			break
		}
	}
	if arrived < 1 {
		t.Fatal("pre-GST message never arrived")
	}
	// After GST, delivery is next-round.
	for n.Round() < gst {
		n.Step()
	}
	if err := a.Send(1, "late", nil); err != nil {
		t.Fatal(err)
	}
	n.Step()
	got := b.Receive()
	if len(got) != 1 || got[0].Kind != "late" {
		t.Fatalf("post-GST message not delivered next round: %+v", got)
	}
}

func TestPartialSyncAdversarialDelayFn(t *testing.T) {
	// The adversary holds every pre-GST message for exactly 4 rounds.
	n := newNet(t, Config{
		N: 2, Mode: PartialSync, GST: 100, MaxPreGSTDelay: 5, Seed: 6,
		DelayFn: func(from, to NodeID, round int) int { return 4 },
	})
	a, b := endpoint(t, n, 0), endpoint(t, n, 1)
	if err := a.Send(1, "held", nil); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 3; r++ {
		n.Step()
		if len(b.Receive()) != 0 {
			t.Fatalf("delivered at round %d, expected 4", r)
		}
	}
	n.Step()
	if len(b.Receive()) != 1 {
		t.Fatal("not delivered at round 4")
	}
}

// deliverySchedule sends count pre-GST messages 0->1 one round apart and
// records each message's delivery round (identified by its payload byte).
func deliverySchedule(t *testing.T, n *Network, count int) map[byte]int {
	t.Helper()
	a, b := endpoint(t, n, 0), endpoint(t, n, 1)
	arrived := make(map[byte]int, count)
	for r := 0; r < count+16; r++ {
		if r < count {
			if err := a.Send(1, "m", []byte{byte(r)}); err != nil {
				t.Fatal(err)
			}
		}
		n.Step()
		for _, m := range b.Receive() {
			arrived[m.Payload[0]] = n.Round()
		}
	}
	if len(arrived) != count {
		t.Fatalf("only %d/%d messages arrived", len(arrived), count)
	}
	return arrived
}

func TestDelayFnDoesNotConsumeRNG(t *testing.T) {
	// Regression: deliveryRound used to draw from the seeded RNG even when
	// cfg.DelayFn overrode the delay. The RNG must be consumed only on the
	// random-delay path, so a DelayFn-scheduled network draws nothing.
	cfg := Config{N: 2, Mode: PartialSync, GST: 100, MaxPreGSTDelay: 5, Seed: 11}
	random := newNet(t, cfg)
	deliverySchedule(t, random, 20)
	if got := random.Stats().RandomDelays; got != 20 {
		t.Fatalf("random path drew %d delays, want 20", got)
	}
	cfg.DelayFn = func(from, to NodeID, round int) int { return 1 + round%3 }
	overridden := newNet(t, cfg)
	deliverySchedule(t, overridden, 20)
	if got := overridden.Stats().RandomDelays; got != 0 {
		t.Fatalf("DelayFn path consumed %d RNG delays, want 0", got)
	}
}

func TestSeedReproducibilityBothPaths(t *testing.T) {
	// Both pre-GST scheduling paths must be exactly reproducible under the
	// same seed: the random path (seeded RNG) and the DelayFn path
	// (adversary-chosen). The DelayFn schedule must also follow the
	// function exactly, unperturbed by the seed.
	base := Config{N: 2, Mode: PartialSync, GST: 100, MaxPreGSTDelay: 5, Seed: 123}
	randA := deliverySchedule(t, newNet(t, base), 24)
	randB := deliverySchedule(t, newNet(t, base), 24)
	for id, round := range randA {
		if randB[id] != round {
			t.Fatalf("random path not seed-reproducible: msg %d at round %d vs %d", id, round, randB[id])
		}
	}
	fn := func(from, to NodeID, round int) int { return 1 + (round*7)%4 }
	cfgFn := base
	cfgFn.DelayFn = fn
	fnA := deliverySchedule(t, newNet(t, cfgFn), 24)
	cfgFn.Seed = 999 // the DelayFn path must not depend on the seed at all
	fnB := deliverySchedule(t, newNet(t, cfgFn), 24)
	for id, round := range fnA {
		want := int(id) + fn(0, 1, int(id))
		if round != want {
			t.Fatalf("DelayFn schedule violated: msg %d delivered at %d, want %d", id, round, want)
		}
		if fnB[id] != round {
			t.Fatalf("DelayFn path not reproducible across seeds: msg %d at %d vs %d", id, round, fnB[id])
		}
	}
}

func TestDelayDeterministic(t *testing.T) {
	sync := newNet(t, Config{N: 2, Mode: Sync, Seed: 1})
	if !sync.DelayDeterministic(0) {
		t.Error("synchronous networks always schedule deterministically")
	}
	psync := newNet(t, Config{N: 2, Mode: PartialSync, GST: 10, Seed: 1})
	if psync.DelayDeterministic(5) {
		t.Error("pre-GST random delays consume the sequential RNG")
	}
	if !psync.DelayDeterministic(10) {
		t.Error("post-GST delivery is fixed one-round latency")
	}
	withFn := newNet(t, Config{
		N: 2, Mode: PartialSync, GST: 10, Seed: 1,
		DelayFn: func(from, to NodeID, round int) int { return 2 },
	})
	if withFn.DelayDeterministic(5) {
		t.Error("a DelayFn may be stateful: pre-GST sends must stay in program order")
	}
	if !withFn.DelayDeterministic(10) {
		t.Error("post-GST delivery is fixed even with a DelayFn installed")
	}
}

func TestNoEquivocationCoercesPayloads(t *testing.T) {
	// In broadcast mode a Byzantine node sending different payloads to
	// different peers in the same round has its later payloads replaced by
	// the first (everyone hears the same value).
	n := newNet(t, Config{N: 3, Mode: Sync, NoEquivocation: true, Seed: 7})
	byz := endpoint(t, n, 0)
	if err := byz.Send(1, "val", []byte("AAA")); err != nil {
		t.Fatal(err)
	}
	if err := byz.Send(2, "val", []byte("BBB")); err != nil {
		t.Fatal(err)
	}
	n.Step()
	m1 := endpoint(t, n, 1).Receive()
	m2 := endpoint(t, n, 2).Receive()
	if len(m1) != 1 || len(m2) != 1 {
		t.Fatal("missing deliveries")
	}
	if string(m1[0].Payload) != "AAA" || string(m2[0].Payload) != "AAA" {
		t.Fatalf("equivocation not suppressed: %q vs %q", m1[0].Payload, m2[0].Payload)
	}
	if !n.Verify(m2[0]) {
		t.Error("coerced message must still carry a valid signature")
	}
}

func TestEquivocationAllowedInP2P(t *testing.T) {
	n := newNet(t, Config{N: 3, Mode: Sync, NoEquivocation: false, Seed: 8})
	byz := endpoint(t, n, 0)
	if err := byz.Send(1, "val", []byte("AAA")); err != nil {
		t.Fatal(err)
	}
	if err := byz.Send(2, "val", []byte("BBB")); err != nil {
		t.Fatal(err)
	}
	n.Step()
	m1 := endpoint(t, n, 1).Receive()
	m2 := endpoint(t, n, 2).Receive()
	if string(m1[0].Payload) != "AAA" || string(m2[0].Payload) != "BBB" {
		t.Fatal("point-to-point network must permit equivocation")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Message {
		n := newNet(t, Config{N: 4, Mode: PartialSync, GST: 8, Seed: 99})
		var all []Message
		for r := 0; r < 12; r++ {
			for id := NodeID(0); id < 4; id++ {
				e := endpoint(t, n, id)
				_ = e.Broadcast("r", []byte{byte(r), byte(id)})
			}
			n.Step()
			for id := NodeID(0); id < 4; id++ {
				all = append(all, endpoint(t, n, id).Receive()...)
			}
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic message counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To || a[i].Round != b[i].Round ||
			string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("divergence at message %d", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if Sync.String() != "synchronous" || PartialSync.String() != "partially-synchronous" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestSendValidation(t *testing.T) {
	n := newNet(t, Config{N: 2, Seed: 10})
	a := endpoint(t, n, 0)
	if err := a.Send(5, "k", nil); err == nil {
		t.Error("out-of-range recipient should fail")
	}
	if a.ID() != 0 {
		t.Error("ID accessor wrong")
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	n := newNet(t, Config{N: 3, Seed: 4})
	a, b, c := endpoint(t, n, 0), endpoint(t, n, 1), endpoint(t, n, 2)
	if err := n.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if !n.Down(1) || n.Down(0) {
		t.Fatal("down state wrong")
	}
	// To the down node and from the down node: dropped before scheduling.
	if err := a.Send(1, "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(2, "k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "k", []byte("z")); err != nil {
		t.Fatal(err)
	}
	n.Step()
	if got := b.Receive(); len(got) != 0 {
		t.Fatalf("down node received %d messages", len(got))
	}
	if got := c.Receive(); len(got) != 1 || string(got[0].Payload) != "z" {
		t.Fatalf("live traffic disturbed: %v", got)
	}
	if st := n.Stats(); st.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want 2", st.DroppedDown)
	}
	// Back up: traffic flows again.
	if err := n.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, "k", []byte("w")); err != nil {
		t.Fatal(err)
	}
	n.Step()
	if got := b.Receive(); len(got) != 1 || string(got[0].Payload) != "w" {
		t.Fatalf("recovered node got %v", got)
	}
	if err := n.SetDown(7, true); err == nil {
		t.Fatal("out-of-range SetDown should fail")
	}
}

func TestDownNodeDropsInFlightAtDelivery(t *testing.T) {
	n := newNet(t, Config{N: 2, Seed: 4})
	a := endpoint(t, n, 0)
	if err := a.Send(1, "k", []byte("x")); err != nil { // in flight
		t.Fatal(err)
	}
	if err := n.SetDown(1, true); err != nil { // recipient crashes
		t.Fatal(err)
	}
	n.Step()
	if got := endpoint(t, n, 1).Receive(); len(got) != 0 {
		t.Fatalf("crashed node received %d in-flight messages", len(got))
	}
	if st := n.Stats(); st.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", st.DroppedDown)
	}
}

// TestDownDropPreservesDelayStream: drops happen before the delay draw,
// so a down node's (non-)traffic never shifts the seeded random delays of
// the surviving nodes.
func TestDownDropPreservesDelayStream(t *testing.T) {
	run := func(withDownSender bool) []Message {
		n := newNet(t, Config{N: 3, Mode: PartialSync, GST: 100, Seed: 21})
		if withDownSender {
			if err := n.SetDown(2, true); err != nil {
				t.Fatal(err)
			}
		}
		a, c := endpoint(t, n, 0), endpoint(t, n, 2)
		var all []Message
		for r := 0; r < 6; r++ {
			if withDownSender {
				_ = c.Send(0, "noise", []byte("dropped")) // must not draw a delay
			}
			_ = a.Send(1, "k", []byte{byte(r)})
			n.Step()
			all = append(all, endpoint(t, n, 1).Receive()...)
		}
		return all
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("delay stream shifted: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i].Round != b[i].Round || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("delivery %d differs: round %d vs %d", i, a[i].Round, b[i].Round)
		}
	}
}
