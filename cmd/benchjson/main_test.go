package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: codedsm
BenchmarkClusterRoundParallel/N=64/K=22/workers=1-8         	       2	 517773358 ns/op	29644680 B/op	  562340 allocs/op
BenchmarkLCCEncode/K=4/N=12/L=2-8   	      10	       830 ns/op	     608 B/op	       4 allocs/op
BenchmarkNoMem-8	 1000	 123.5 ns/op
PASS
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Name != "BenchmarkClusterRoundParallel/N=64/K=22/workers=1-8" ||
		first.Iters != 2 || first.NsOp != 517773358 || first.BytesOp != 29644680 || first.AllocsOp != 562340 {
		t.Fatalf("first result mismatch: %+v", first)
	}
	if got[2].NsOp != 123.5 || got[2].AllocsOp != 0 {
		t.Fatalf("no-benchmem line mismatch: %+v", got[2])
	}
}
