// Membership, churn, and coded-state repair: the dynamic side of the CSM
// engine. The paper's central claim (Sections 2.1, 7) is that
// Lagrange-coded state survives a *dynamic* adversary — corruptions move
// between nodes across epochs, nodes crash and rejoin — because any
// b-bounded honest subset of shares determines the encoding polynomial,
// so a replacement node's share is a single Lagrange evaluation
// (lcc.RepairShare) rather than a re-download of all K states.
//
// # Fault budget
//
// Behaviors are budgeted by their Reed-Solomon cost (Table 2): an active
// misbehaviour (WrongResult, Equivocate, BadLeader, and Silent — see
// faultWeight for why silence is an error, not an erasure) consumes two
// parity symbols, a crash consumes one, and the total may not exceed 2b.
// A cluster sized for b Byzantine faults therefore tolerates, e.g., b
// errors, or 2b crashes, or any mix in between — every configuration the
// budget admits decodes, because the sync capacity N - dim ≥ 2b+1 gives
// rows - dim = N - s - dim ≥ 2e + 1 whenever 2e + s ≤ 2b. Additional
// rules keep the other thresholds intact: at least b+1 nodes must stay
// honest (clients need b+1 matching replies, Table 2); in partial
// synchrony at most b nodes may be non-sending (the N-b decode threshold
// must stay reachable); and under PBFT at most N-2b-1 nodes may be
// crashed (the 2b+1 prepare/commit quorum needs that many live voters —
// silent nodes still vote, their silence is execution-phase only).
package csm

import (
	"fmt"
	"math/rand/v2"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// faultWeight returns the Reed-Solomon budget a behavior consumes: an
// erasure (Crashed, Recovering — every decoder knows the coordinate is
// absent) costs one parity symbol, any active misbehaviour costs two (an
// unknown error needs both a location and a magnitude). Silent is budgeted
// as an error, not an erasure: a silent node withholds its execution
// result but is still adversarial wherever participation is unavoidable —
// consensus votes, client replies, repair contributions — so the engine
// cannot treat its coordinate as reliably absent.
func faultWeight(b Behavior) int {
	switch b {
	case Honest:
		return 0
	case Crashed, Recovering:
		return 1
	default:
		return 2
	}
}

// sendsNothing reports whether a behavior contributes no execution-phase
// result (its coordinate is missing from every decoder's received word).
func sendsNothing(b Behavior) bool {
	return b == Silent || b == Crashed || b == Recovering
}

// budgetCheck validates a complete behavior assignment (entries may
// include Honest, which is ignored) against the cluster fault rules; see
// the package comment above. Silent nodes still vote in consensus (their
// silence is execution-phase only), so the PBFT quorum rule counts only
// crashed/recovering nodes.
func budgetCheck(n, maxFaults int, mode transport.Mode, consensus ConsensusKind, behaviors map[int]Behavior) error {
	load, nonHonest, dark, crashed := 0, 0, 0, 0
	//csmlint:allow detmap(commutative counting fold over behaviors; keys are never read)
	for _, b := range behaviors {
		w := faultWeight(b)
		if w == 0 {
			continue
		}
		load += w
		nonHonest++
		if sendsNothing(b) {
			dark++
		}
		if b == Crashed || b == Recovering {
			crashed++
		}
	}
	if load > 2*maxFaults {
		return fmt.Errorf("%w: fault load %d (an error costs 2 parity symbols, an erasure 1) exceeds the budget 2b=%d", ErrFaultBudgetExceeded, load, 2*maxFaults)
	}
	if nonHonest > n-maxFaults-1 {
		return fmt.Errorf("%w: %d faulty nodes leave fewer than the b+1=%d honest repliers output delivery needs (Table 2)", ErrQuorumUnreachable, nonHonest, maxFaults+1)
	}
	if mode == transport.PartialSync && dark > maxFaults {
		return fmt.Errorf("%w: %d non-sending nodes exceed b=%d: the N-b partially synchronous decode threshold would be unreachable", ErrQuorumUnreachable, dark, maxFaults)
	}
	if consensus == PBFT && crashed > n-2*maxFaults-1 {
		return fmt.Errorf("%w: %d crashed nodes leave fewer than the 2b+1=%d voters the PBFT quorum needs", ErrQuorumUnreachable, crashed, 2*maxFaults+1)
	}
	return nil
}

// behaviorsWith is the cluster's current behavior assignment with one
// node's behavior overridden — the prospective pattern a membership change
// is checked against.
func (c *Cluster[E]) behaviorsWith(node int, b Behavior) map[int]Behavior {
	out := make(map[int]Behavior, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.behavior
	}
	out[node] = b
	return out
}

// RepairStats accounts the cost of coded-state repairs.
type RepairStats struct {
	// Repairs counts successful share reconstructions; Failed counts
	// repair attempts that could not complete (the node stays Recovering).
	Repairs, Failed int
	// Ops is the accumulated field-operation cost of all repairs — the
	// per-replacement price Section 7 (Remark 5) argues is what makes CSM
	// compatible with frequent membership rotation. Repair work is charged
	// to the shared cluster counters too; this field isolates it.
	Ops field.OpCounts
}

// RepairStats returns the accumulated repair-cost accounting.
func (c *Cluster[E]) RepairStats() RepairStats { return c.repairs }

// ---- Churn schedule ----

// ChurnOp selects what a ChurnEvent does to its node.
type ChurnOp int

const (
	// ChurnCrash fail-stops the node: its traffic drops, its coded state
	// is lost, and it leaves consensus and execution until repaired.
	ChurnCrash ChurnOp = iota
	// ChurnRejoin brings a crashed node back: the transport reconnects it
	// and a repair round reconstructs its coded share from the surviving
	// nodes (lcc.RepairShare) before it re-enters consensus and execution.
	ChurnRejoin
	// ChurnCorrupt hands the node to the adversary with the event's
	// Behavior (the dynamic adversary seizing a new target).
	ChurnCorrupt
	// ChurnRelease returns a corrupted node to honesty (the adversary
	// letting go to move elsewhere, as in post-facto corruption models).
	ChurnRelease
)

// String implements fmt.Stringer.
func (op ChurnOp) String() string {
	switch op {
	case ChurnCrash:
		return "crash"
	case ChurnRejoin:
		return "rejoin"
	case ChurnCorrupt:
		return "corrupt"
	case ChurnRelease:
		return "release"
	default:
		return fmt.Sprintf("ChurnOp(%d)", int(op))
	}
}

// ChurnEvent is one scheduled membership or adversary change, applied at
// the boundary of the consensus instance covering engine round Round
// (engine rounds advance for skipped instances too; see Config.Churn).
type ChurnEvent struct {
	Round int
	Node  int
	Op    ChurnOp
	// Behavior is the misbehaviour ChurnCorrupt installs; other ops ignore
	// it. Honest is rejected (use ChurnRelease), as are Crashed and
	// Recovering (use ChurnCrash / ChurnRejoin).
	Behavior Behavior
}

func (ev ChurnEvent) validate(n int) error {
	if ev.Round < 0 {
		return fmt.Errorf("event %v node %d: negative round %d", ev.Op, ev.Node, ev.Round)
	}
	if ev.Node < 0 || ev.Node >= n {
		return fmt.Errorf("round %d %v: node %d out of range [0,%d)", ev.Round, ev.Op, ev.Node, n)
	}
	switch ev.Op {
	case ChurnCrash, ChurnRejoin, ChurnRelease:
	case ChurnCorrupt:
		switch ev.Behavior {
		case Honest:
			return fmt.Errorf("round %d: corrupt node %d to Honest: use ChurnRelease", ev.Round, ev.Node)
		case Crashed, Recovering:
			return fmt.Errorf("round %d: corrupt node %d to %v: use ChurnCrash/ChurnRejoin", ev.Round, ev.Node, ev.Behavior)
		}
	default:
		return fmt.Errorf("round %d node %d: unknown churn op %d", ev.Round, ev.Node, int(ev.Op))
	}
	return nil
}

// apply performs the event on the cluster.
func (c *Cluster[E]) apply(ev ChurnEvent) error {
	var err error
	switch ev.Op {
	case ChurnCrash:
		err = c.Crash(ev.Node)
	case ChurnRejoin:
		err = c.Rejoin(ev.Node)
	case ChurnCorrupt:
		err = c.Corrupt(ev.Node, ev.Behavior)
	case ChurnRelease:
		err = c.Corrupt(ev.Node, Honest)
	default:
		err = fmt.Errorf("unknown churn op %d", int(ev.Op))
	}
	if err != nil {
		return fmt.Errorf("csm: churn round %d (%v node %d): %w", ev.Round, ev.Op, ev.Node, err)
	}
	return nil
}

// applyChurn runs the churn boundary for the consensus instance covering
// workload rounds [start, start+steps): all static schedule entries up to
// the window's end (swept once by cursor — an entry scheduled for an
// already-passed round fires at the next boundary), then the ChurnFn
// events for each covered round. The epoch advances iff anything applied.
// It runs on the driving goroutine before the instance's consensus phase,
// which is what keeps churn runs bit-identical across the sequential,
// parallel, and pipelined engines.
func (c *Cluster[E]) applyChurn(start, steps int) error {
	applied := false
	for c.churnAt < len(c.cfg.Churn) && c.cfg.Churn[c.churnAt].Round < start+steps {
		if err := c.apply(c.cfg.Churn[c.churnAt]); err != nil {
			return err
		}
		c.churnAt++
		applied = true
	}
	if c.cfg.ChurnFn != nil {
		for r := start; r < start+steps; r++ {
			for _, ev := range c.cfg.ChurnFn(r) {
				if err := ev.validate(c.cfg.N); err != nil {
					return fmt.Errorf("csm: ChurnFn(%d): %w", r, err)
				}
				if err := c.apply(ev); err != nil {
					return err
				}
				applied = true
			}
		}
	}
	if applied {
		c.epoch++
	}
	return nil
}

// MovingAdversary returns a ChurnFn implementing the paper's Section 7
// dynamic adversary: every epochLen rounds the adversary releases its
// current b corruptions and seizes b freshly chosen nodes (deterministic
// per seed, so runs remain reproducible). CSM survives it by design —
// there is no small committee whose capture matters, only the
// simultaneous count — which is exactly what the sharded-ledger story
// contrasts with random allocation. The corruption count must fit the
// node count (picking b distinct targets of n must terminate), epochLen
// must be positive, and behavior must be an active misbehaviour.
func MovingAdversary(n, b, epochLen int, behavior Behavior, seed uint64) (func(round int) []ChurnEvent, error) {
	if n < 1 || b < 0 || b > n {
		return nil, fmt.Errorf("csm: moving adversary: %d corruptions of %d nodes", b, n)
	}
	if epochLen < 1 {
		return nil, fmt.Errorf("csm: moving adversary: non-positive epoch length %d", epochLen)
	}
	switch behavior {
	case Honest, Crashed, Recovering:
		return nil, fmt.Errorf("csm: moving adversary: %v is not a corruption", behavior)
	}
	pick := func(epoch int) []int {
		rng := rand.New(rand.NewPCG(seed, uint64(epoch)+0xadf))
		seen := make(map[int]bool, b)
		out := make([]int, 0, b)
		for len(out) < b {
			i := rng.IntN(n)
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
		return out
	}
	return func(round int) []ChurnEvent {
		if round%epochLen != 0 {
			return nil
		}
		epoch := round / epochLen
		var evs []ChurnEvent
		if epoch > 0 {
			for _, i := range pick(epoch - 1) {
				evs = append(evs, ChurnEvent{Round: round, Node: i, Op: ChurnRelease})
			}
		}
		for _, i := range pick(epoch) {
			evs = append(evs, ChurnEvent{Round: round, Node: i, Op: ChurnCorrupt, Behavior: behavior})
		}
		return evs
	}, nil
}

// ---- Membership operations ----

// Corrupt changes a node's behaviour mid-run, modelling the dynamic
// (adaptive) adversary of Section 7: corruptions may move between nodes
// across epochs, but the *simultaneous* fault load may never exceed the
// budget (see the package comment). Pass Honest to release a node (the
// adversary "un-corrupts" it to move elsewhere, as in post-facto
// corruption models). Crashes are not corruptions — use Crash and Rejoin.
func (c *Cluster[E]) Corrupt(node int, behavior Behavior) error {
	if node < 0 || node >= c.cfg.N {
		return fmt.Errorf("csm: corrupt: node %d out of range", node)
	}
	if behavior == Crashed || behavior == Recovering {
		return fmt.Errorf("csm: corrupt node %d to %v: use Crash/Rejoin", node, behavior)
	}
	if cur := c.nodes[node].behavior; cur == Crashed || cur == Recovering {
		return fmt.Errorf("csm: corrupt node %d: node is %v (repair it first)", node, cur)
	}
	if err := budgetCheck(c.cfg.N, c.cfg.MaxFaults, c.cfg.Mode, c.cfg.Consensus, c.behaviorsWith(node, behavior)); err != nil {
		// budgetCheck errors carry the csm-prefixed sentinels already.
		return fmt.Errorf("corrupting node %d: %w", node, err)
	}
	c.setBehavior(node, behavior)
	return nil
}

// Crash fail-stops a node: the transport drops its traffic in both
// directions, its coded state is lost, and it leaves consensus and
// execution until Rejoin repairs it. A crash is an erasure — it consumes
// one parity symbol of the fault budget where an error consumes two.
func (c *Cluster[E]) Crash(node int) error {
	if node < 0 || node >= c.cfg.N {
		return fmt.Errorf("csm: crash: node %d out of range", node)
	}
	if cur := c.nodes[node].behavior; cur == Crashed || cur == Recovering {
		return fmt.Errorf("csm: crash node %d: already %v", node, cur)
	}
	if err := budgetCheck(c.cfg.N, c.cfg.MaxFaults, c.cfg.Mode, c.cfg.Consensus, c.behaviorsWith(node, Crashed)); err != nil {
		// budgetCheck errors carry the csm-prefixed sentinels already.
		return fmt.Errorf("crashing node %d: %w", node, err)
	}
	if err := c.net.SetDown(transport.NodeID(node), true); err != nil {
		return err
	}
	c.setBehavior(node, Crashed)
	n := c.nodes[node]
	n.codedState = field.ZeroVec(c.cfg.BaseField, c.tr.StateLen()) // the share is gone
	n.received, n.decoded = nil, nil
	return nil
}

// Rejoin brings a crashed node back: the transport reconnects it, a
// repair round reconstructs its coded share from the surviving nodes
// (RepairNode), and only then does it re-enter consensus and execution as
// Honest. If the repair cannot complete the node is left Recovering —
// reachable, but an erasure until a retried Rejoin succeeds.
func (c *Cluster[E]) Rejoin(node int) error {
	if node < 0 || node >= c.cfg.N {
		return fmt.Errorf("csm: rejoin: node %d out of range", node)
	}
	if cur := c.nodes[node].behavior; cur != Crashed && cur != Recovering {
		return fmt.Errorf("csm: rejoin node %d: node is %v, not crashed", node, cur)
	}
	if err := c.net.SetDown(transport.NodeID(node), false); err != nil {
		return err
	}
	c.setBehavior(node, Recovering)
	if err := c.RepairNode(node); err != nil {
		c.repairs.Failed++
		return fmt.Errorf("csm: rejoin node %d: %w", node, err)
	}
	c.setBehavior(node, Honest)
	n := c.nodes[node]
	n.suspects, n.primed, n.primedIdx, n.primedSusp = nil, nil, nil, nil
	return nil
}

// setBehavior installs a behavior on the node and mirrors it in the
// config's Byzantine map (kept consistent for consensus-phase lookups).
func (c *Cluster[E]) setBehavior(node int, behavior Behavior) {
	c.nodes[node].behavior = behavior
	if c.cfg.Byzantine == nil {
		c.cfg.Byzantine = make(map[int]Behavior)
	}
	if behavior == Honest {
		delete(c.cfg.Byzantine, node)
	} else {
		c.cfg.Byzantine[node] = behavior
	}
}

// RepairNode reconstructs node i's coded state from the *other* nodes'
// coded states via lcc.RepairShare: the share vector is a Reed-Solomon
// codeword of the encoding polynomial u_t (degree K-1) at the alphas, so
// any correct subset determines u_t and the repaired node re-derives
// S̃_i = u_t(α_i) without downloading all K states — this is what makes
// node replacement cheap in CSM, in contrast to the re-download cost that
// rules out frequent group rotation in random-allocation schemes
// (Section 7, Remark 5). The reconstruction is bit-identical to a fresh
// encode of the current machine states.
//
// Down (crashed/recovering) nodes contribute nothing; Byzantine nodes
// contribute garbage states, which the decoder corrects like any other
// error. The field-operation cost is accumulated in RepairStats.
func (c *Cluster[E]) RepairNode(i int) error {
	if i < 0 || i >= c.cfg.N {
		return fmt.Errorf("csm: repair: node %d out of range", i)
	}
	stateLen := c.tr.StateLen()
	indices := make([]int, 0, c.cfg.N-1)
	contributions := make([][]E, 0, c.cfg.N-1)
	for j, n := range c.nodes {
		if j == i || n.behavior == Crashed || n.behavior == Recovering {
			continue
		}
		indices = append(indices, j)
		if n.behavior != Honest {
			contributions = append(contributions, field.RandVec(c.cfg.BaseField, c.rng, stateLen))
			continue
		}
		contributions = append(contributions, n.codedState)
	}
	before := c.counting.Counts()
	repaired, _, err := c.code.RepairShare(indices, contributions, i)
	if err != nil {
		return fmt.Errorf("csm: repair of node %d: %w", i, err)
	}
	after := c.counting.Counts()
	c.repairs.Repairs++
	c.repairs.Ops.Adds += after.Adds - before.Adds
	c.repairs.Ops.Muls += after.Muls - before.Muls
	c.repairs.Ops.Invs += after.Invs - before.Invs
	c.nodes[i].codedState = repaired
	return nil
}

// ---- Liveness ----

// RunQueue executes a queue of command rounds with liveness: rounds are
// grouped into consensus batches of Config.BatchSize, and a batch whose
// consensus instance was skipped (a Byzantine leader pushed a garbage
// proposal through) is retried under the next instance's leader, so every
// client command is eventually executed — the paper's Liveness requirement
// (Section 2.1). Only the skipped suffix is retried: rounds that already
// executed are never re-submitted. maxAttempts bounds consecutive skipped
// attempts; <1 selects a full leader rotation (N attempts). Exhausting the
// budget fails with ErrRoundLimit; every failure carries a *BatchError
// with the executed prefix and the index of the first unexecuted round.
func (c *Cluster[E]) RunQueue(rounds [][][]E, maxAttempts int) ([]*RoundResult[E], error) {
	if maxAttempts < 1 {
		maxAttempts = c.cfg.N // a full leader rotation
	}
	bs := c.batchSize()
	out := make([]*RoundResult[E], 0, len(rounds))
	pending := rounds
	attempts := 0
	for len(pending) > 0 {
		base := len(rounds) - len(pending)
		end := min(bs, len(pending))
		res, err := c.executeBatch(pending[:end], nil)
		if err != nil {
			// Run's error contract: rounds in res fully completed (oracle
			// advanced, clients tallied) — report them, or a caller that
			// re-submits everything past len(out) would double-execute.
			out = append(out, res...)
			return out, newBatchError(err, out, base, base+len(res))
		}
		executed := 0
		for _, r := range res {
			if r.Skipped {
				break
			}
			executed++
		}
		out = append(out, res[:executed]...)
		pending = pending[executed:]
		if executed == end {
			attempts = 0
			continue
		}
		attempts++
		if attempts >= maxAttempts {
			return out, &BatchError[E]{
				Completed: out,
				Round:     len(rounds) - len(pending),
				Err: fmt.Errorf("%w: %d queued rounds not executed within %d attempts",
					ErrRoundLimit, len(pending), maxAttempts),
			}
		}
	}
	return out, nil
}
