// Package shard scales the CSM engine past one cluster: a Router owns S
// independent csm.Cluster instances (each with the full coded-execution,
// consensus, batching, and durability stack of the single-cluster
// engine) and routes per-machine command traffic to the shard a
// consistent-hash ring assigns the machine to. Single-shard commands
// route directly to the owning shard's ingress client; commands spanning
// machines on several shards run a two-phase prepare/commit protocol
// with typed abort errors (twophase.go); and a hot machine migrates
// between shards through the coded-state handoff of
// csm.DecodeMachineState / csm.AdoptMachineState (router.go, Rebalance).
//
// Everything is deterministic under a fixed seed: ring placement is a
// pure function of (seed, shards, virtual nodes), per-shard cluster
// seeds derive from the router seed by a fixed mix, and the engines
// underneath keep their bit-identical-for-any-worker-count contract —
// so a seeded sharded run reproduces exactly, and its per-machine final
// states match an unsharded oracle cluster fed the same commands.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when
// WithVirtualNodes is not given. Spreading each shard over many ring
// points keeps the per-shard key load within a few percent of uniform.
const DefaultVirtualNodes = 64

// mix64 is the splitmix64 finalizer: a fixed, seedless bijection used
// as the ring's hash. A deterministic hash (not Go's randomized map
// hash, not a seeded-at-startup sip hash) is what makes placement
// bit-identical across runs and processes.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash positions virtual node v of shard s on the ring.
func pointHash(seed uint64, s, v int) uint64 {
	return mix64(mix64(seed^0xcba1e5) ^ mix64(uint64(s)<<32|uint64(v)))
}

// keyHash positions a machine key on the ring. It does not depend on
// the shard count — the consistent-hashing property (growing the ring
// moves a key only when a new shard's point lands between the key and
// its old successor) needs key positions to be stable across ring
// sizes.
func keyHash(seed uint64, key uint64) uint64 {
	return mix64(mix64(seed^0x3a2d) ^ mix64(key))
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int
	vnode int
}

// Ring is a consistent-hash ring over S shards with V virtual nodes
// per shard. Placement is a pure function of (seed, shards, vnodes):
// two rings built from the same parameters are bit-identical, in any
// process, under any GOMAXPROCS.
type Ring struct {
	shards int
	vnodes int
	seed   uint64
	points []ringPoint // sorted by (hash, shard, vnode)
}

// NewRing builds the ring. shards and vnodes must be positive.
func NewRing(shards, vnodes int, seed uint64) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: NewRing: need at least one shard, got %d", shards)
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("shard: NewRing: need at least one virtual node per shard, got %d", vnodes)
	}
	points := make([]ringPoint, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{hash: pointHash(seed, s, v), shard: s, vnode: v})
		}
	}
	// Ties (astronomically unlikely, but the ring must be total) break by
	// (shard, vnode), so the sorted order is a pure function of the
	// parameters.
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.vnode < b.vnode
	})
	return &Ring{shards: shards, vnodes: vnodes, seed: seed, points: points}, nil
}

// Shards returns the shard count S.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Seed returns the placement seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Lookup maps an arbitrary key to its shard: the key's successor point
// on the ring (clockwise, wrapping past the top).
func (r *Ring) Lookup(key uint64) int {
	h := keyHash(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Machine maps global machine index m to its shard.
func (r *Ring) Machine(m int) int { return r.Lookup(uint64(m)) }

// Placement returns the shard of every machine in [0, machines).
func (r *Ring) Placement(machines int) []int {
	out := make([]int, machines)
	for m := range out {
		out[m] = r.Machine(m)
	}
	return out
}

// Loads returns how many of the first `machines` machine keys land on
// each shard.
func (r *Ring) Loads(machines int) []int {
	out := make([]int, r.shards)
	for m := 0; m < machines; m++ {
		out[r.Machine(m)]++
	}
	return out
}
