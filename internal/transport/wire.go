package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format shared by every non-simulated transport. A TCP connection
// carries a sequence of length-prefixed frames:
//
//	uint32 (LE)  body length
//	byte         frame type (frameHello | frameData | frameDone)
//	body         type-specific payload
//
// A frameData body is a Message in the fixed binary layout produced by
// AppendMessage — the same signed envelope the simulated network passes
// around in memory, so anything exchanged over sockets round-trips
// through one codec and one signature scheme (the codec-equivalence tests
// in wire_test.go pin this). frameHello identifies the sending node right
// after dialing; frameDone is the lock-step barrier marker that ends a
// peer's round (see tcp.go).
//
// All length fields are validated against hard caps before any
// allocation, so a malformed or adversarial frame (fuzzed in
// wire_fuzz_test.go) yields an error, never a panic or a huge make().
const (
	frameHello byte = 1
	frameData  byte = 2
	frameDone  byte = 3

	// maxFrameBody bounds a frame body; a peer announcing more is cut off
	// before any allocation happens.
	maxFrameBody = 16 << 20
	// maxWireKind bounds a message kind tag.
	maxWireKind = 255
	// wireMagic opens every hello frame: a cheap guard against a stray
	// client speaking a different protocol on the cluster port.
	wireMagic = 0x43534d31 // "CSM1"
)

// AppendMessage appends the fixed binary encoding of m to dst:
//
//	uint64 from | uint64 to | uint64 round |
//	uint8 kindLen | kind | uint32 payloadLen | payload | uint8 sigLen | sig
//
// all little-endian. It returns the extended slice.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	if len(m.Kind) > maxWireKind {
		return dst, fmt.Errorf("transport: kind %q longer than %d bytes", m.Kind[:32], maxWireKind)
	}
	if len(m.Payload) > maxFrameBody/2 {
		return dst, fmt.Errorf("transport: payload of %d bytes exceeds the frame cap", len(m.Payload))
	}
	if len(m.Sig) > maxWireKind {
		return dst, fmt.Errorf("transport: signature of %d bytes is malformed", len(m.Sig))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.From))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.To))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Round))
	dst = append(dst, byte(len(m.Kind)))
	dst = append(dst, m.Kind...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	dst = append(dst, byte(len(m.Sig)))
	dst = append(dst, m.Sig...)
	return dst, nil
}

// UnmarshalMessage parses the binary encoding produced by AppendMessage.
// Every length is checked against the remaining input before it is used,
// so truncated, padded, or length-lying inputs fail cleanly.
func UnmarshalMessage(b []byte) (Message, error) {
	var m Message
	if len(b) < 25 { // three uint64 headers + kindLen byte
		return m, fmt.Errorf("transport: message truncated at %d bytes", len(b))
	}
	m.From = NodeID(int64(binary.LittleEndian.Uint64(b[0:])))
	m.To = NodeID(int64(binary.LittleEndian.Uint64(b[8:])))
	m.Round = int(int64(binary.LittleEndian.Uint64(b[16:])))
	kindLen := int(b[24])
	b = b[25:]
	if len(b) < kindLen+4 {
		return m, fmt.Errorf("transport: message kind truncated")
	}
	m.Kind = string(b[:kindLen])
	payloadLen := int(binary.LittleEndian.Uint32(b[kindLen:]))
	b = b[kindLen+4:]
	if payloadLen > maxFrameBody/2 || len(b) < payloadLen+1 {
		return m, fmt.Errorf("transport: message payload truncated")
	}
	m.Payload = append([]byte(nil), b[:payloadLen]...)
	sigLen := int(b[payloadLen])
	b = b[payloadLen+1:]
	if len(b) != sigLen {
		return m, fmt.Errorf("transport: %d trailing bytes after signature", len(b)-sigLen)
	}
	m.Sig = append([]byte(nil), b...)
	return m, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > maxFrameBody {
		return fmt.Errorf("transport: frame body of %d bytes exceeds cap %d", len(body), maxFrameBody)
	}
	hdr := make([]byte, 5, 5+len(body))
	binary.LittleEndian.PutUint32(hdr, uint32(len(body)))
	hdr[4] = typ
	_, err := w.Write(append(hdr, body...))
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized bodies
// before allocating.
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[:4])
	if size > maxFrameBody {
		return 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds cap %d", size, maxFrameBody)
	}
	body = make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[4], body, nil
}

// helloBody encodes the post-dial identification frame: magic, the
// sender's node id, and a signature binding the id to the cluster's keys
// (domain-separated so it cannot be replayed as a protocol message).
func helloBody(id NodeID, sign func(context string, data []byte) []byte) []byte {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:], wireMagic)
	binary.LittleEndian.PutUint64(b[4:], uint64(id))
	return append(b[:], sign("csm-hello", b[:])...)
}

// parseHello validates a hello frame against the cluster roster.
func parseHello(body []byte, n int, verify func(id NodeID, context string, data, sig []byte) bool) (NodeID, error) {
	if len(body) < 12 {
		return 0, fmt.Errorf("transport: hello truncated at %d bytes", len(body))
	}
	if binary.LittleEndian.Uint32(body[0:]) != wireMagic {
		return 0, fmt.Errorf("transport: bad hello magic %#x", binary.LittleEndian.Uint32(body[0:]))
	}
	id := NodeID(int64(binary.LittleEndian.Uint64(body[4:])))
	if int(id) < 0 || int(id) >= n {
		return 0, fmt.Errorf("transport: hello from out-of-range node %d", id)
	}
	if !verify(id, "csm-hello", body[:12], body[12:]) {
		return 0, fmt.Errorf("transport: hello signature from node %d does not verify", id)
	}
	return id, nil
}

// doneBody encodes a barrier marker for the given round.
func doneBody(round int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(round))
	return b[:]
}

// parseDone decodes a barrier marker.
func parseDone(body []byte) (int, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("transport: done marker of %d bytes", len(body))
	}
	return int(int64(binary.LittleEndian.Uint64(body))), nil
}
