// Package mvpoly implements sparse multivariate polynomials over a finite
// field. CSM's state transition functions are multivariate polynomials of
// bounded total degree d (Section 4 of the paper); this package provides
// their representation, evaluation, arithmetic, and a small expression
// parser used by the examples.
package mvpoly

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"codedsm/internal/field"
)

// ErrArity reports an evaluation with the wrong number of arguments.
var ErrArity = errors.New("mvpoly: wrong number of arguments")

// Term is coeff * prod_i var_i^Exps[i].
type Term[E comparable] struct {
	Coeff E
	Exps  []int
}

// Poly is a sparse multivariate polynomial in a fixed number of variables.
// The zero value is the zero polynomial in zero variables; construct
// non-trivial polynomials with FromTerms, Constant, Variable, or Parse.
// Canonical form: terms sorted by exponent vector, no zero coefficients, no
// duplicate exponent vectors.
type Poly[E comparable] struct {
	nvars int
	terms []Term[E]
}

// Zero returns the zero polynomial in nvars variables.
func Zero[E comparable](nvars int) Poly[E] {
	return Poly[E]{nvars: nvars}
}

// Constant returns the constant polynomial c in nvars variables.
func Constant[E comparable](f field.Field[E], nvars int, c E) Poly[E] {
	if f.IsZero(c) {
		return Zero[E](nvars)
	}
	return Poly[E]{nvars: nvars, terms: []Term[E]{{Coeff: c, Exps: make([]int, nvars)}}}
}

// Variable returns the polynomial consisting of the single variable with
// the given index.
func Variable[E comparable](f field.Field[E], nvars, index int) (Poly[E], error) {
	if index < 0 || index >= nvars {
		return Poly[E]{}, fmt.Errorf("mvpoly: variable index %d out of range [0,%d)", index, nvars)
	}
	exps := make([]int, nvars)
	exps[index] = 1
	return Poly[E]{nvars: nvars, terms: []Term[E]{{Coeff: f.One(), Exps: exps}}}, nil
}

// FromTerms builds a canonical polynomial from arbitrary terms: exponent
// vectors must have length nvars; duplicate monomials are merged and zero
// coefficients dropped.
func FromTerms[E comparable](f field.Field[E], nvars int, terms []Term[E]) (Poly[E], error) {
	for i, t := range terms {
		if len(t.Exps) != nvars {
			return Poly[E]{}, fmt.Errorf("mvpoly: term %d has %d exponents, want %d", i, len(t.Exps), nvars)
		}
		for _, e := range t.Exps {
			if e < 0 {
				return Poly[E]{}, fmt.Errorf("mvpoly: term %d has negative exponent", i)
			}
		}
	}
	return canonicalize(f, nvars, terms), nil
}

func canonicalize[E comparable](f field.Field[E], nvars int, terms []Term[E]) Poly[E] {
	merged := make(map[string]Term[E], len(terms))
	for _, t := range terms {
		key := expsKey(t.Exps)
		if prev, ok := merged[key]; ok {
			prev.Coeff = f.Add(prev.Coeff, t.Coeff)
			merged[key] = prev
		} else {
			exps := make([]int, len(t.Exps))
			copy(exps, t.Exps)
			merged[key] = Term[E]{Coeff: t.Coeff, Exps: exps}
		}
	}
	out := make([]Term[E], 0, len(merged))
	for _, t := range merged {
		if !f.IsZero(t.Coeff) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return expsLess(out[i].Exps, out[j].Exps) })
	return Poly[E]{nvars: nvars, terms: out}
}

func expsKey(exps []int) string {
	var b strings.Builder
	for _, e := range exps {
		fmt.Fprintf(&b, "%d,", e)
	}
	return b.String()
}

func expsLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// NumVars returns the number of variables.
func (p Poly[E]) NumVars() int { return p.nvars }

// Terms returns a copy of the canonical term list.
func (p Poly[E]) Terms() []Term[E] {
	out := make([]Term[E], len(p.terms))
	for i, t := range p.terms {
		exps := make([]int, len(t.Exps))
		copy(exps, t.Exps)
		out[i] = Term[E]{Coeff: t.Coeff, Exps: exps}
	}
	return out
}

// IsZero reports whether p is the zero polynomial.
func (p Poly[E]) IsZero() bool { return len(p.terms) == 0 }

// TotalDegree returns the maximum total degree over all terms; the zero
// polynomial has degree -1 by convention, constants degree 0.
func (p Poly[E]) TotalDegree() int {
	if len(p.terms) == 0 {
		return -1
	}
	maxDeg := 0
	for _, t := range p.terms {
		d := 0
		for _, e := range t.Exps {
			d += e
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Eval evaluates p at the given point. len(args) must equal NumVars.
func (p Poly[E]) Eval(f field.Field[E], args []E) (E, error) {
	var zero E
	if len(args) != p.nvars {
		return zero, fmt.Errorf("mvpoly: eval with %d args, want %d: %w", len(args), p.nvars, ErrArity)
	}
	acc := f.Zero()
	for _, t := range p.terms {
		v := t.Coeff
		for i, e := range t.Exps {
			if e > 0 {
				v = f.Mul(v, field.Exp(f, args[i], uint64(e)))
			}
		}
		acc = f.Add(acc, v)
	}
	return acc, nil
}

// Add returns p + q; the operand variable counts must match.
func (p Poly[E]) Add(f field.Field[E], q Poly[E]) (Poly[E], error) {
	if p.nvars != q.nvars {
		return Poly[E]{}, fmt.Errorf("mvpoly: add with %d vs %d variables: %w", p.nvars, q.nvars, ErrArity)
	}
	return canonicalize(f, p.nvars, append(p.Terms(), q.Terms()...)), nil
}

// Sub returns p - q.
func (p Poly[E]) Sub(f field.Field[E], q Poly[E]) (Poly[E], error) {
	neg := q.Scale(f, f.Neg(f.One()))
	return p.Add(f, neg)
}

// Scale returns c * p.
func (p Poly[E]) Scale(f field.Field[E], c E) Poly[E] {
	terms := p.Terms()
	for i := range terms {
		terms[i].Coeff = f.Mul(c, terms[i].Coeff)
	}
	return canonicalize(f, p.nvars, terms)
}

// Mul returns p * q; the operand variable counts must match.
func (p Poly[E]) Mul(f field.Field[E], q Poly[E]) (Poly[E], error) {
	if p.nvars != q.nvars {
		return Poly[E]{}, fmt.Errorf("mvpoly: mul with %d vs %d variables: %w", p.nvars, q.nvars, ErrArity)
	}
	out := make([]Term[E], 0, len(p.terms)*len(q.terms))
	for _, a := range p.terms {
		for _, b := range q.terms {
			exps := make([]int, p.nvars)
			for i := range exps {
				exps[i] = a.Exps[i] + b.Exps[i]
			}
			out = append(out, Term[E]{Coeff: f.Mul(a.Coeff, b.Coeff), Exps: exps})
		}
	}
	return canonicalize(f, p.nvars, out), nil
}

// Equal reports whether p and q are identical polynomials.
func (p Poly[E]) Equal(f field.Field[E], q Poly[E]) bool {
	if p.nvars != q.nvars || len(p.terms) != len(q.terms) {
		return false
	}
	for i := range p.terms {
		if !f.Equal(p.terms[i].Coeff, q.terms[i].Coeff) {
			return false
		}
		for j := range p.terms[i].Exps {
			if p.terms[i].Exps[j] != q.terms[i].Exps[j] {
				return false
			}
		}
	}
	return true
}

// Format renders p with the given variable names (defaulting to v0, v1, ...).
func (p Poly[E]) Format(f field.Field[E], names []string) string {
	if len(p.terms) == 0 {
		return "0"
	}
	name := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("v%d", i)
	}
	var parts []string
	for _, t := range p.terms {
		var b strings.Builder
		coeff := f.Uint64(t.Coeff)
		wrote := false
		if coeff != 1 || allZero(t.Exps) {
			fmt.Fprintf(&b, "%d", coeff)
			wrote = true
		}
		for i, e := range t.Exps {
			if e == 0 {
				continue
			}
			if wrote {
				b.WriteString("*")
			}
			b.WriteString(name(i))
			if e > 1 {
				fmt.Fprintf(&b, "^%d", e)
			}
			wrote = true
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " + ")
}

func allZero(exps []int) bool {
	for _, e := range exps {
		if e != 0 {
			return false
		}
	}
	return true
}
