package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: codedsm
BenchmarkClusterRoundParallel/N=64/K=22/workers=1-8         	       2	 517773358 ns/op	29644680 B/op	  562340 allocs/op
BenchmarkLCCEncode/K=4/N=12/L=2-8   	      10	       830 ns/op	     608 B/op	       4 allocs/op
BenchmarkNoMem-8	 1000	 123.5 ns/op
PASS
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Name != "BenchmarkClusterRoundParallel/N=64/K=22/workers=1-8" ||
		first.Iters != 2 || first.NsOp != 517773358 || first.BytesOp != 29644680 || first.AllocsOp != 562340 {
		t.Fatalf("first result mismatch: %+v", first)
	}
	if got[2].NsOp != 123.5 || got[2].AllocsOp != 0 {
		t.Fatalf("no-benchmem line mismatch: %+v", got[2])
	}
}

func TestLoadBaselineFromArtifactAndText(t *testing.T) {
	dir := t.TempDir()
	artifact := dir + "/prev.json"
	if err := os.WriteFile(artifact, []byte(`{
  "note": "prev",
  "current": [{"name": "BenchmarkX", "iterations": 2, "ns_op": 100}],
  "generator": "make bench-json (cmd/benchjson)"
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkX" || got[0].NsOp != 100 {
		t.Fatalf("artifact baseline mismatch: %+v", got)
	}
	text := dir + "/prev.txt"
	if err := os.WriteFile(text, []byte("BenchmarkY 3 200 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err = loadBaseline(text); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "BenchmarkY" || got[0].NsOp != 200 {
		t.Fatalf("text baseline mismatch: %+v", got)
	}
	if _, err := loadBaseline(dir + "/missing"); err == nil {
		t.Fatal("missing baseline file must fail")
	}
}
