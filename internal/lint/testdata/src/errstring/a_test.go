// Test files are NOT exempt from errstring — tests are where message
// matching ossifies.
package fixture

import "strings"

func assertBoom(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `strings.Contains on err.Error\(\) matches error text`
}
