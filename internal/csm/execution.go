package csm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"iter"

	"codedsm/internal/field"
	"codedsm/internal/ints"
	"codedsm/internal/transport"
)

// stepOutcome carries everything one executed micro-step hands to the
// client stage: the agreed commands (for the oracle advance), the
// pre-drawn Byzantine client replies, and an immutable snapshot of every
// honest node's decode. The driving goroutine never mutates any of it
// after handing the outcome off, which is what lets the pipelined engine
// run the client stage concurrently with later rounds.
type stepOutcome[E comparable] struct {
	cmds    [][]E
	replies [][][]E
	decodes []*nodeDecode[E]
	res     *RoundResult[E]
	skip    bool // consensus decided garbage: nothing to tally
}

// executeBatch is the round engine shared by ExecuteRound, ExecuteBatch,
// Run and RunPipelined: one consensus instance over len(batch) rounds,
// then one execution micro-step per round. With a nil stage the client
// phase completes inline before the next micro-step starts; otherwise each
// outcome is enqueued on the stage and only the execution phases run here.
// The returned slice covers exactly the rounds whose execution completed
// (all of them when err is nil).
func (c *Cluster[E]) executeBatch(batch [][][]E, stage *clientStage[E]) ([]*RoundResult[E], error) {
	steps := len(batch)
	if steps == 0 {
		return nil, errors.New("csm: empty batch")
	}
	for j, cmds := range batch {
		if len(cmds) != c.cfg.K {
			return nil, &batchRoundError{offset: j, err: fmt.Errorf("%d command vectors for K=%d machines", len(cmds), c.cfg.K)}
		}
		for k, cmd := range cmds {
			if len(cmd) != c.tr.CmdLen() {
				return nil, &batchRoundError{offset: j, err: fmt.Errorf("command %d has length %d, want %d", k, len(cmd), c.tr.CmdLen())}
			}
		}
	}
	// Churn boundary: membership and adversary changes scheduled for the
	// rounds this instance covers apply before its consensus phase, on the
	// driving goroutine — the instance is the atomic unit of agreement, so
	// the fault pattern is static within it.
	if err := c.applyChurn(c.round, steps); err != nil {
		return nil, err
	}
	agreed, ticksConsensus, err := c.runConsensus(batch)
	if err != nil {
		return nil, err
	}
	if c.dur != nil {
		// Write-ahead: the decided batch (or the skipped instance) is on
		// disk before execution mutates any state, so a crash mid-batch
		// replays the whole decision on restart.
		if err := c.logBatch(steps, agreed); err != nil {
			return nil, err
		}
	}
	return c.executeAgreed(agreed, steps, ticksConsensus, stage, false)
}

// executeAgreed runs the post-consensus phases of executeBatch for an
// already-decided batch: the skipped-instance path, the delegated path,
// or the coded execution micro-steps. WAL replay calls it directly with
// replay set — the logged record is the decision, so consensus is
// bypassed and no durability records are written while re-executing.
func (c *Cluster[E]) executeAgreed(agreed [][][]E, steps, ticksConsensus int, stage *clientStage[E], replay bool) ([]*RoundResult[E], error) {
	if agreed == nil {
		// Byzantine leader: the whole batch is skipped (commands stay
		// pending with the clients), consensus ticks charged to its first
		// round.
		out := make([]*RoundResult[E], steps)
		for j := range out {
			out[j] = &RoundResult[E]{Skipped: true, Correct: true}
			if j == 0 {
				out[j].Ticks = ticksConsensus
			}
			c.round++
			if stage != nil {
				stage.enqueue(&stepOutcome[E]{res: out[j], skip: true})
			}
		}
		if c.dur != nil && !replay && stage == nil {
			if err := c.maybeSnapshotDur(); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	if c.cfg.Delegated {
		// The delegated execution phase (Section 6.2) performs its own
		// coding through the rotating worker; micro-steps simply share the
		// consensus instance. Pipelining is rejected at construction.
		out := make([]*RoundResult[E], 0, steps)
		for j := 0; j < steps; j++ {
			res, ticksExec, err := c.runExecutionDelegated(agreed[j])
			if err != nil {
				return out, err
			}
			res.Ticks = ticksExec
			if j == 0 {
				res.Ticks += ticksConsensus
			}
			c.round++
			out = append(out, res)
		}
		return out, nil
	}
	// One amortized Lagrange encode covers every micro-step's commands:
	// encoding is linear and state-independent, so the per-machine command
	// vectors of all steps concatenate into one flat row per machine and
	// each node runs K ScaleAccVec kernels over the whole batch at once.
	if err := c.encodeBatchCommands(agreed); err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		n.suspects = nil // first micro-step always runs the full decoder
	}
	out := make([]*RoundResult[E], 0, steps)
	for j := 0; j < steps; j++ {
		outcome, err := c.runExecutionStep(j)
		if err != nil {
			return out, err
		}
		outcome.cmds = agreed[j]
		if j == 0 {
			outcome.res.Ticks += ticksConsensus
		}
		if stage != nil {
			c.round++
			out = append(out, outcome.res)
			stage.enqueue(outcome)
			continue
		}
		if err := c.finishStep(outcome); err != nil {
			return out, err
		}
		c.round++
		out = append(out, outcome.res)
	}
	// Snapshot at batch boundaries only when the client phase completed
	// inline: under a pipelined stage the oracle state lags the execution
	// rounds, so pipelined runs log batches but defer snapshots (recovery
	// replays from the last non-pipelined snapshot).
	if c.dur != nil && !replay && stage == nil {
		if err := c.maybeSnapshotDur(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// runExecutionStep drives the coded execution phase for one micro-step of
// the current batch: compute (parallel), broadcast (randomness drawn in
// node order on the driving goroutine, signatures fanned out when the
// network schedule is RNG-free), then the lock-step collect/decode loop.
// On return every honest node has decoded and re-encoded its next coded
// state — the happens-before boundary the next micro-step's compute phase
// relies on — and the outcome snapshot is ready for the client stage.
func (c *Cluster[E]) runExecutionStep(micro int) (*stepOutcome[E], error) {
	results, err := c.computeAllResults(micro)
	if err != nil {
		return nil, err
	}
	for i, n := range c.nodes {
		n.received = make(map[int][]E, c.cfg.N)
		n.decoded = nil
		n.planBroadcast(results[i])
	}
	if err := c.transmitAllResults(); err != nil {
		return nil, err
	}
	ticks := 0
	deadline := 1 // synchronous networks: results arrive in exactly one tick
	need := c.decodeNeed()
	for {
		c.net.Step()
		ticks++
		// Collect sequentially (inbox draining), then decode in parallel —
		// the expensive Reed-Solomon work. Only nodes that have reached the
		// decode threshold are fanned out; the rest cannot decode yet
		// (tryDecode would return immediately), so delay-heavy ticks spawn
		// no workers at all.
		pending := 0
		ready := make([]*node[E], 0, len(c.nodes))
		for _, n := range c.nodes {
			if n.behavior != Honest || n.decoded != nil {
				continue
			}
			n.collect(n.ep.Receive())
			pending++
			if len(n.received) >= need {
				ready = append(ready, n)
			}
		}
		force := c.cfg.Mode == transport.PartialSync || ticks >= deadline
		allDecoded, err := c.tryDecodeAll(ready, force, need)
		if err != nil {
			return nil, err
		}
		if allDecoded && len(ready) == pending {
			break
		}
		if ticks >= c.cfg.MaxTicksPerRound {
			return nil, fmt.Errorf("%w (after %d ticks)", ErrRoundStuck, ticks)
		}
	}
	// Prime the next micro-step's decodes with this step's verdicts.
	for _, n := range c.nodes {
		if n.behavior != Honest || n.decoded == nil {
			continue
		}
		n.suspects = n.decoded.faulty
		if n.suspects == nil {
			n.suspects = []int{}
		}
	}
	return &stepOutcome[E]{
		replies: c.drawClientReplies(),
		decodes: c.snapshotDecodes(),
		res:     &RoundResult[E]{Ticks: ticks},
	}, nil
}

// decodeNeed is the result count a node waits for before decoding. In the
// synchronous model every live, non-silent node's result arrives within
// the one-tick deadline, so nodes expect exactly N minus the current
// erasure count — the fault budget guarantees whatever arrives decodes
// (rows - dim = N - s - dim ≥ 2e + 1 whenever 2e + s ≤ 2b, see the repair
// package comment). In partial synchrony delays are adversarial, so nodes
// wait for the classic N-b threshold; the budget caps non-sending nodes
// at b there, keeping it reachable.
func (c *Cluster[E]) decodeNeed() int {
	if c.cfg.Mode != transport.Sync {
		return c.cfg.N - c.cfg.MaxFaults
	}
	need := c.cfg.N
	for _, n := range c.nodes {
		if sendsNothing(n.behavior) {
			need--
		}
	}
	return need
}

// finishStep runs the sequential tail of a micro-step: advance the
// ground-truth oracle and run the client tally/audit. In pipelined runs
// this executes on the client-stage goroutine.
func (c *Cluster[E]) finishStep(o *stepOutcome[E]) error {
	oracleOutputs := make([][]E, c.cfg.K)
	for k, m := range c.oracle {
		out, err := m.Step(o.cmds[k])
		if err != nil {
			return err
		}
		oracleOutputs[k] = out
	}
	c.clientPhase(oracleOutputs, o.replies, o.decodes, o.res)
	return nil
}

// drawClientReplies draws the Byzantine nodes' garbage client replies for
// one round, in the exact (machine-major, node-minor) order the
// sequential client phase consumed the cluster RNG; honest slots are nil,
// and so are crashed/recovering ones — a down node sends the clients
// nothing at all, where an active liar sends garbage. Pre-drawing keeps
// pipelined runs on the same random stream as sequential ones.
func (c *Cluster[E]) drawClientReplies() [][][]E {
	f := c.cfg.BaseField
	out := make([][][]E, c.cfg.K)
	for k := 0; k < c.cfg.K; k++ {
		rep := make([][]E, len(c.nodes))
		for i, n := range c.nodes {
			if n.behavior != Honest && n.behavior != Crashed && n.behavior != Recovering {
				rep[i] = field.RandVec(f, c.rng, c.tr.OutLen())
			}
		}
		out[k] = rep
	}
	return out
}

// snapshotDecodes captures each node's decode for the client stage (nil
// for Byzantine or still-undecoded nodes). The pointed-to decode is
// immutable: every round allocates a fresh one.
func (c *Cluster[E]) snapshotDecodes() []*nodeDecode[E] {
	out := make([]*nodeDecode[E], len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.decoded
	}
	return out
}

// clientPhase simulates the M clients collecting per-node replies: a client
// accepts an output once b+1 nodes report the same value (Table 2, output
// delivery: 2b+1 <= N). Byzantine nodes report the pre-drawn garbage. The
// result is then audited against the oracle execution.
func (c *Cluster[E]) clientPhase(oracleOutputs [][]E, replies [][][]E, decodes []*nodeDecode[E], res *RoundResult[E]) {
	f := c.cfg.BaseField
	res.Outputs = make([][]E, c.cfg.K)
	res.Correct = true
	faulty := make(map[int]bool)
	var keyBuf []byte
	for k := 0; k < c.cfg.K; k++ {
		counts := make(map[string]int)
		values := make(map[string][]E)
		for i := range decodes {
			var reply []E
			switch {
			case replies[k][i] != nil:
				reply = replies[k][i]
			case decodes[i] != nil:
				reply = decodes[i].outputs[k]
			default:
				continue
			}
			// Tally replies by their canonical wire bytes; formatting the
			// vector through fmt was a per-node-per-machine allocation storm.
			keyBuf = keyBuf[:0]
			for _, e := range reply {
				keyBuf = binary.LittleEndian.AppendUint64(keyBuf, f.Uint64(e))
			}
			key := string(keyBuf)
			counts[key]++
			values[key] = reply
		}
		res.Outputs[k] = acceptReply(counts, values, c.cfg.MaxFaults+1)
		if res.Outputs[k] == nil || !field.VecEqual(f, res.Outputs[k], oracleOutputs[k]) {
			res.Correct = false
		}
	}
	// Consistency audit: every honest node must hold the same decoded next
	// states, matching the oracle.
	oracleStates := c.OracleStates()
	for _, dec := range decodes {
		if dec == nil {
			continue
		}
		for _, idx := range dec.faulty {
			faulty[idx] = true
		}
		for k := 0; k < c.cfg.K; k++ {
			if !field.VecEqual(f, dec.nextStates[k], oracleStates[k]) {
				res.Correct = false
			}
		}
	}
	res.FaultyDetected = ints.SortedKeys(faulty)
}

// acceptReply picks the client-accepted output under the b+1
// matching-replies rule. The previous implementation iterated the Go map
// and took the first key reaching the threshold — map iteration order is
// nondeterministic, so when two values qualified, identically-seeded runs
// could disagree on the accepted output. The winner is now chosen
// deterministically: highest count, ties broken by the smallest canonical
// wire-byte key.
func acceptReply[E comparable](counts map[string]int, values map[string][]E, threshold int) []E {
	best, bestKey := 0, ""
	//csmlint:allow detmap(order-independent argmax: strict count comparison with smallest-key tie-break picks the same winner in any order)
	for key, cnt := range counts {
		if cnt < threshold || cnt < best {
			continue
		}
		if cnt > best || key < bestKey {
			best, bestKey = cnt, key
		}
	}
	if best == 0 {
		return nil
	}
	return values[bestKey]
}

// batchRoundError marks a pre-execution batch failure attributable to one
// specific round of the batch, identified by its offset within the batch.
// The workload runners translate the offset into the workload round index.
type batchRoundError struct {
	offset int
	err    error
}

func (e *batchRoundError) Error() string {
	return fmt.Sprintf("csm: batch round %d: %v", e.offset, e.err)
}
func (e *batchRoundError) Unwrap() error { return e.err }

// batchSize returns the effective rounds-per-consensus-instance.
func (c *Cluster[E]) batchSize() int {
	if c.cfg.BatchSize > 1 {
		return c.cfg.BatchSize
	}
	return 1
}

// BatchSize reports the effective rounds-per-consensus-instance the
// workload runners group by.
func (c *Cluster[E]) BatchSize() int { return c.batchSize() }

// Run executes a whole workload: rounds[r][k] is machine k's command vector
// in round r. Rounds are grouped into consensus batches of
// Config.BatchSize; with Config.Pipeline > 0 the pipelined engine is used.
//
// Error contract: on a mid-workload error Run returns the reports of every
// round that fully completed — always a prefix of the workload — together
// with a *BatchError carrying that same prefix and the index of the failed
// round (recover both with errors.As; no string inspection needed).
func (c *Cluster[E]) Run(rounds [][][]E) ([]*RoundResult[E], error) {
	if c.cfg.Pipeline > 0 {
		return c.RunPipelined(rounds)
	}
	out := make([]*RoundResult[E], 0, len(rounds))
	bs := c.batchSize()
	for start := 0; start < len(rounds); start += bs {
		end := min(start+bs, len(rounds))
		res, err := c.executeBatch(rounds[start:end], nil)
		out = append(out, res...)
		if err != nil {
			return out, newBatchError(err, out, start, start+len(res))
		}
	}
	return out, nil
}

// Rounds executes a whole workload like Run but streams the reports: the
// returned iterator yields each round's report as soon as its client phase
// completes, so experiment harnesses consume rounds without materializing
// the result slice. On a mid-workload failure the final yield carries a
// nil report and the *BatchError naming the failed round, after which the
// iteration ends. Unlike Run's error, the streamed BatchError leaves
// Completed nil — the completed reports were already yielded, and
// retaining them would defeat the no-materialization point of streaming
// (the failed round's index tells the consumer how many preceded it).
//
// Rounds drives the sequential engine regardless of Config.Pipeline —
// streaming consumers need each report finished before it is yielded — and
// the reports are bit-identical to Run's for any engine configuration.
func (c *Cluster[E]) Rounds(rounds [][][]E) iter.Seq2[*RoundResult[E], error] {
	return func(yield func(*RoundResult[E], error) bool) {
		bs := c.batchSize()
		for start := 0; start < len(rounds); start += bs {
			end := min(start+bs, len(rounds))
			res, err := c.executeBatch(rounds[start:end], nil)
			for _, r := range res {
				if !yield(r, nil) {
					return
				}
			}
			if err != nil {
				yield(nil, newBatchError[E](err, nil, start, start+len(res)))
				return
			}
		}
	}
}

// RandomWorkload generates a reproducible workload: rounds x K command
// vectors of the transition's command length.
func RandomWorkload[E comparable](f field.Field[E], rounds, k, cmdLen int, seed uint64) [][][]E {
	rng := newWorkloadRNG(seed)
	out := make([][][]E, rounds)
	for r := range out {
		out[r] = make([][]E, k)
		for i := range out[r] {
			out[r][i] = field.RandVec(f, rng, cmdLen)
		}
	}
	return out
}
