package csm

import (
	"fmt"
	"sync"
)

// DefaultPipelineDepth is the client-stage queue depth RunPipelined uses
// when Config.Pipeline is zero: the driving goroutine may run up to this
// many rounds ahead of the client stage, so up to DefaultPipelineDepth+1
// rounds are in flight at once.
const DefaultPipelineDepth = 3

// clientStage is the background half of the pipelined engine: one
// goroutine consuming finished execution micro-steps in FIFO order,
// advancing the ground-truth oracle and running the client tally/audit
// while the driving goroutine already executes the consensus and coded
// execution phases of later rounds.
//
// Safety: each outcome references only immutable per-round snapshots (see
// stepOutcome), the stage alone touches the oracle machines while open,
// and the client phase works over the uncounted base field, so operation
// totals are identical to sequential execution.
type clientStage[E comparable] struct {
	c    *Cluster[E]
	jobs chan *stepOutcome[E]
	done chan struct{}

	mu        sync.Mutex
	err       error
	completed int
}

func newClientStage[E comparable](c *Cluster[E], depth int) *clientStage[E] {
	s := &clientStage[E]{
		c:    c,
		jobs: make(chan *stepOutcome[E], depth),
		done: make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *clientStage[E]) run() {
	defer close(s.done)
	for o := range s.jobs {
		if s.failed() != nil {
			continue // drain the queue without processing past a failure
		}
		if !o.skip {
			if err := s.c.finishStep(o); err != nil {
				s.fail(err)
				continue
			}
		}
		s.mu.Lock()
		s.completed++
		s.mu.Unlock()
	}
}

func (s *clientStage[E]) enqueue(o *stepOutcome[E]) { s.jobs <- o }

func (s *clientStage[E]) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *clientStage[E]) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// drain closes the stage, waits for the queue to empty, and reports how
// many rounds fully completed along with the stage's first error.
func (s *clientStage[E]) drain() (int, error) {
	close(s.jobs)
	<-s.done
	return s.completed, s.err // no concurrent access after done
}

// RunPipelined executes the workload on the pipelined engine regardless of
// Config.Pipeline (whose value, when positive, sets the depth; otherwise
// DefaultPipelineDepth is used). Results are bit-identical to Run's
// sequential engine — see the package documentation for the
// happens-before contract that makes the overlap safe.
//
// The error contract matches Run: the reports of every fully completed
// round (a workload prefix) are returned together with a *BatchError
// carrying that prefix and the failed round's index.
func (c *Cluster[E]) RunPipelined(rounds [][][]E) ([]*RoundResult[E], error) {
	if c.cfg.Delegated {
		return nil, fmt.Errorf("csm: pipelining requires the decentralized execution phase")
	}
	depth := c.cfg.Pipeline
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	stage := newClientStage(c, depth)
	out := make([]*RoundResult[E], 0, len(rounds))
	var cause error
	var causeBase, causeFailed int
	bs := c.batchSize()
	for start := 0; start < len(rounds); start += bs {
		end := min(start+bs, len(rounds))
		res, err := c.executeBatch(rounds[start:end], stage)
		out = append(out, res...)
		if err != nil {
			cause, causeBase, causeFailed = err, start, start+len(res)
			break
		}
		if stage.failed() != nil {
			break
		}
	}
	completed, stageErr := stage.drain()
	if stageErr != nil {
		// A stage failure happened at round `completed` — chronologically
		// before any driver error, which can only strike a later round
		// (the driver runs ahead of the stage). Report the first failure
		// so the error names the round right after the returned prefix.
		cause, causeBase, causeFailed = stageErr, completed, completed
	}
	if completed < len(out) {
		// Keep Round() consistent with the returned prefix, exactly as
		// the sequential engine does when a client phase fails: rounds
		// the driver executed ahead of the failed stage job don't count.
		c.round -= len(out) - completed
		out = out[:completed]
	}
	if cause != nil {
		return out, newBatchError(cause, out, causeBase, causeFailed)
	}
	return out, nil
}
