package field

import (
	"math/rand/v2"
	"sync/atomic"
)

// OpCounts is a snapshot of field-operation counters. The paper measures
// throughput as commands processed "per unit operation at each node", where
// an operation is an addition or multiplication in F (Section 2.2); OpCounts
// is the raw material for that metric.
type OpCounts struct {
	Adds uint64 // additions, subtractions and negations
	Muls uint64 // multiplications
	Invs uint64 // inversions (each costs O(log |F|) multiplications in GF(p))
}

// Total returns the paper's operation count: additions plus multiplications,
// with each inversion accounted as invMulCost multiplications.
func (c OpCounts) Total() uint64 {
	return c.Adds + c.Muls + c.Invs*invMulCost
}

// invMulCost is the multiplication-equivalent cost of one inversion
// (square-and-multiply over a 64-bit exponent: ~64 squarings + ~32 products).
const invMulCost = 96

// Add returns the elementwise sum of two snapshots.
func (c OpCounts) Add(o OpCounts) OpCounts {
	return OpCounts{Adds: c.Adds + o.Adds, Muls: c.Muls + o.Muls, Invs: c.Invs + o.Invs}
}

// Sub returns the elementwise difference of two snapshots.
func (c OpCounts) Sub(o OpCounts) OpCounts {
	return OpCounts{Adds: c.Adds - o.Adds, Muls: c.Muls - o.Muls, Invs: c.Invs - o.Invs}
}

// Counting wraps a Field and counts every arithmetic operation. It is safe
// for concurrent use. Construct with NewCounting.
//
// Counting also implements Bulk: each kernel charges the counters once for
// the whole vector (the exact totals the per-element scalar calls would
// have accumulated — atomic counters commute) and then runs the wrapped
// field's kernel, so measured clusters keep the devirtualized hot path.
type Counting[E comparable] struct {
	inner     Field[E]
	innerBulk Bulk[E]
	adds      atomic.Uint64
	muls      atomic.Uint64
	invs      atomic.Uint64
}

// NewCounting returns a counting decorator around f.
func NewCounting[E comparable](f Field[E]) *Counting[E] {
	return &Counting[E]{inner: f, innerBulk: AsBulk(f)}
}

var _ Field[uint64] = (*Counting[uint64])(nil)

// Counts returns a snapshot of the counters.
func (c *Counting[E]) Counts() OpCounts {
	return OpCounts{Adds: c.adds.Load(), Muls: c.muls.Load(), Invs: c.invs.Load()}
}

// Reset zeroes all counters.
func (c *Counting[E]) Reset() {
	c.adds.Store(0)
	c.muls.Store(0)
	c.invs.Store(0)
}

// Inner returns the wrapped field.
func (c *Counting[E]) Inner() Field[E] { return c.inner }

// Name implements Field.
func (c *Counting[E]) Name() string { return c.inner.Name() }

// Zero implements Field.
func (c *Counting[E]) Zero() E { return c.inner.Zero() }

// One implements Field.
func (c *Counting[E]) One() E { return c.inner.One() }

// FromUint64 implements Field.
func (c *Counting[E]) FromUint64(v uint64) E { return c.inner.FromUint64(v) }

// Uint64 implements Field.
func (c *Counting[E]) Uint64(e E) uint64 { return c.inner.Uint64(e) }

// Add implements Field.
func (c *Counting[E]) Add(a, b E) E {
	c.adds.Add(1)
	return c.inner.Add(a, b)
}

// Sub implements Field.
func (c *Counting[E]) Sub(a, b E) E {
	c.adds.Add(1)
	return c.inner.Sub(a, b)
}

// Neg implements Field.
func (c *Counting[E]) Neg(a E) E {
	c.adds.Add(1)
	return c.inner.Neg(a)
}

// Mul implements Field.
func (c *Counting[E]) Mul(a, b E) E {
	c.muls.Add(1)
	return c.inner.Mul(a, b)
}

// Inv implements Field.
func (c *Counting[E]) Inv(a E) (E, error) {
	c.invs.Add(1)
	return c.inner.Inv(a)
}

// Equal implements Field.
func (c *Counting[E]) Equal(a, b E) bool { return c.inner.Equal(a, b) }

// IsZero implements Field.
func (c *Counting[E]) IsZero(a E) bool { return c.inner.IsZero(a) }

// Rand implements Field.
func (c *Counting[E]) Rand(r *rand.Rand) E { return c.inner.Rand(r) }

// Elements implements Field.
func (c *Counting[E]) Elements(n int) ([]E, error) { return c.inner.Elements(n) }

// RootOfUnity implements NTTField when the wrapped field supports it.
func (c *Counting[E]) RootOfUnity(order uint64) (E, error) {
	ntt, ok := c.inner.(NTTField[E])
	if !ok {
		var zero E
		return zero, errNoNTT(c.inner.Name())
	}
	return ntt.RootOfUnity(order)
}

func errNoNTT(name string) error {
	return &noNTTError{name: name}
}

type noNTTError struct{ name string }

func (e *noNTTError) Error() string {
	return "field: " + e.name + " has no power-of-two roots of unity"
}
