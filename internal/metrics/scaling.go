package metrics

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/sm"
)

// ScalingRow is one point of the Theorem 1 series: at network size N with
// Byzantine fraction µ, CSM simultaneously achieves β = µN, γ = Θ(N), and
// the coding work per node stays polylogarithmic under delegation.
type ScalingRow struct {
	N, K, B int
	// Gamma is the measured storage efficiency (= K).
	Gamma int
	// Beta is the injected-and-survived fault count.
	Beta int
	// OpsPerNodeDecentralized: field ops per node per round when every
	// node encodes and decodes itself (Section 5).
	OpsPerNodeDecentralized float64
	// WorkerOpsFast: the delegated worker's coding ops per round
	// (Section 6.2 fast path: encode commands + decode results + refresh
	// coded states).
	WorkerOpsFast uint64
	// NetworkOpsNaive: total naive coding ops across the network per
	// round (N*K encoding plus a per-node decode) it replaces.
	NetworkOpsNaive uint64
	// OpsPerNodeDelegated: per-node average measured by running the engine
	// in delegated mode (Section 6.2): only the rotating worker and the
	// auditor committee pay coding costs. This is the quantity Theorem 1
	// claims grows polylogarithmically.
	OpsPerNodeDelegated float64
	Correct             bool
}

// ScalingConfig parameterizes the Theorem 1 series.
type ScalingConfig struct {
	// Ns are the measured network sizes; Mu the Byzantine fraction; D the
	// transition degree; Rounds the measured rounds per size.
	Ns     []int
	Mu     float64
	D      int
	Rounds int
	Seed   uint64
	// Parallelism is the worker count the measured clusters execute with
	// (csm.Config.Parallelism); op-count metrics are
	// worker-count-independent.
	Parallelism int
	// BatchSize groups rounds under one consensus instance
	// (csm.Config.BatchSize); batching lowers the decentralized
	// ops/node/round through primed decodes. The delegated series batches
	// too (its worker does the coding, so only consensus amortizes).
	BatchSize int
	// Pipeline sets the decentralized cluster's pipelined-engine depth;
	// the delegated cluster always runs sequentially (the Section 6.2
	// round interleaves client work with network phases).
	Pipeline int
}

// Scaling measures the series for the given network sizes at fraction mu.
// It is the unbatched, sequential-engine form of ScalingSeries.
func Scaling(ns []int, mu float64, d int, rounds int, seed uint64, parallelism int) ([]ScalingRow, error) {
	return ScalingSeries(ScalingConfig{
		Ns: ns, Mu: mu, D: d, Rounds: rounds, Seed: seed, Parallelism: parallelism,
	})
}

// ScalingSeries measures the Theorem 1 series under the given engine
// configuration.
func ScalingSeries(cfg ScalingConfig) ([]ScalingRow, error) {
	out := make([]ScalingRow, 0, len(cfg.Ns))
	gold := field.NewGoldilocks()
	for _, n := range cfg.Ns {
		b := int(cfg.Mu * float64(n))
		k := lcc.SyncMaxMachines(n, b, cfg.D)
		if k < 1 {
			return nil, fmt.Errorf("metrics: no capacity at N=%d", n)
		}
		byz := map[int]csm.Behavior{}
		for i := 0; len(byz) < b; i++ {
			byz[(i*5+2)%n] = csm.WrongResult
		}
		cluster, err := csm.Open(gold, bankLike(cfg.D),
			csm.WithNodes(n), csm.WithMachines(k), csm.WithFaults(b),
			csm.WithByzantine(byz), csm.WithSeed(cfg.Seed),
			csm.WithParallelism(cfg.Parallelism),
			csm.WithBatching(cfg.BatchSize), csm.WithPipeline(cfg.Pipeline))
		if err != nil {
			return nil, err
		}
		workload := csm.RandomWorkload[uint64](gold, cfg.Rounds, k, 1, cfg.Seed)
		correct, err := runCorrect(cluster, workload, cfg.Pipeline > 0, fmt.Sprintf("scaling N=%d", n))
		if err != nil {
			return nil, err
		}
		// Same cluster, delegated execution phase (never pipelined).
		delegatedCluster, err := csm.Open(gold, bankLike(cfg.D),
			csm.WithNodes(n), csm.WithMachines(k), csm.WithFaults(b),
			csm.WithDelegated(), csm.WithByzantine(byz), csm.WithSeed(cfg.Seed),
			csm.WithParallelism(cfg.Parallelism), csm.WithBatching(cfg.BatchSize))
		if err != nil {
			return nil, err
		}
		delegatedCorrect, err := runCorrect(delegatedCluster, workload, false, fmt.Sprintf("scaling delegated N=%d", n))
		if err != nil {
			return nil, err
		}
		correct = correct && delegatedCorrect
		workerFast, naive, err := codingCosts(k, n, b, cfg.D, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingRow{
			N: n, K: k, B: b, Gamma: k, Beta: b,
			OpsPerNodeDecentralized: float64(cluster.OpCounts().Total()) / float64(n*cfg.Rounds),
			WorkerOpsFast:           workerFast,
			NetworkOpsNaive:         naive,
			OpsPerNodeDelegated:     float64(delegatedCluster.OpCounts().Total()) / float64(n*cfg.Rounds),
			Correct:                 correct,
		})
	}
	return out, nil
}

// codingCosts measures one full round of coding work both ways. Delegated
// (Section 6.2): the worker fast-encodes the commands, decodes the N
// results (with b corruptions), and refreshes the coded states. Distributed
// (Section 5): every node encodes its own command (K multiply-adds each)
// and runs its own decode.
func codingCosts(k, n, b, d int, seed uint64) (fast, naive uint64, err error) {
	counting := field.NewCounting[uint64](field.NewGoldilocks())
	ring := poly.NewRing[uint64](counting)
	code, err := lcc.New(ring, k, n)
	if err != nil {
		return 0, 0, err
	}
	cmds := make([][]uint64, k)
	states := make([][]uint64, k)
	for i := range cmds {
		cmds[i] = []uint64{uint64(i + 1)}
		states[i] = []uint64{uint64(3 * (i + 1))}
	}
	codedStates, err := code.EncodeVectors(states)
	if err != nil {
		return 0, 0, err
	}
	codedCmds, err := code.EncodeVectors(cmds)
	if err != nil {
		return 0, 0, err
	}
	// A degree-d register machine produces the round's results.
	tr, err := sm.NewPolynomialRegister[uint64](counting, d)
	if err != nil {
		return 0, 0, err
	}
	results := make([][]uint64, n)
	for i := range results {
		if results[i], err = tr.ApplyResult(codedStates[i], codedCmds[i]); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < b; i++ {
		results[(i*3+1)%n][0]++
	}

	// Delegated worker: fast encode + one decode + fast state refresh.
	counting.Reset()
	if _, err := code.EncodeVectorsFast(cmds); err != nil {
		return 0, 0, err
	}
	dec, err := code.DecodeOutputs(results, d)
	if err != nil {
		return 0, 0, err
	}
	nextStates := make([][]uint64, k)
	for i := range nextStates {
		nextStates[i] = dec.Outputs[i][:1]
	}
	if _, err := code.EncodeVectorsFast(nextStates); err != nil {
		return 0, 0, err
	}
	fast = counting.Counts().Total()

	// Distributed: N per-node encodings plus N per-node decodes.
	counting.Reset()
	if _, err := code.EncodeVectors(cmds); err != nil {
		return 0, 0, err
	}
	if _, err := code.DecodeOutputs(results, d); err != nil {
		return 0, 0, err
	}
	perNodeDecode := counting.Counts().Total()
	naive = perNodeDecode * uint64(n)
	return fast, naive, nil
}

// RenderScaling renders the series.
func RenderScaling(rows []ScalingRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "N\tK=γ\tβ=b\tOPS/NODE decentralized\tOPS/NODE delegated\tWORKER OPS (fast)\tNETWORK OPS (naive)\tCORRECT")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%.0f\t%d\t%d\t%v\n",
			r.N, r.K, r.B, r.OpsPerNodeDecentralized, r.OpsPerNodeDelegated, r.WorkerOpsFast, r.NetworkOpsNaive, r.Correct)
	}
	w.Flush()
	return sb.String()
}
