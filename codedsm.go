// Package codedsm is a Go implementation of the Coded State Machine (CSM)
// from "Coded State Machine — Scaling State Machine Execution under
// Byzantine Faults" (Li, Sahraei, Yu, Avestimehr, Kannan, Viswanath,
// PODC 2019 / arXiv:1906.10817).
//
// CSM runs K independent state machines with a polynomial transition
// function on N untrusted nodes so that security β, storage efficiency γ,
// and throughput λ all scale linearly in N — where classic replication must
// trade them off. Each node stores one Lagrange-coded state, executes the
// transition directly on coded data, and Reed-Solomon decoding of the N
// results corrects everything up to b Byzantine nodes.
//
// The package re-exports the library's layers:
//
//   - fields:      NewGoldilocks (GF(2^64-2^32+1), NTT-friendly) and
//     NewGF2m (GF(2^m), for Boolean machines per Appendix A);
//   - machines:    NewBank, NewQuadraticTally, NewMultiplicativeAccumulator,
//     NewInnerProduct, NewPolynomialRegister, NewBooleanMachine, FromExprs;
//   - the engine:  NewCluster runs consensus + coded execution on a
//     deterministic simulated network with Byzantine fault injection;
//   - baselines:   NewFullReplication, NewPartialReplication and the
//     random-allocation experiment for the Table 1 / Section 7 comparisons;
//   - INTERMIX:    verifiable matrix-vector multiplication (Section 6.1);
//   - delegation:  centralized verifiable coding (Section 6.2);
//   - experiments: Table1, Table2, Scaling — the paper's quantitative
//     content as runnable measurements.
//
// Quickstart: see examples/quickstart/main.go.
package codedsm

import (
	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/lcc"
	"codedsm/internal/metrics"
	"codedsm/internal/mvpoly"
	"codedsm/internal/poly"
	"codedsm/internal/replication"
	"codedsm/internal/shard"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
	"codedsm/internal/wal"
)

// ---- Fields ----

// Field is the finite-field abstraction all coding is generic over.
type Field[E comparable] = field.Field[E]

// Goldilocks is GF(p), p = 2^64 - 2^32 + 1.
type Goldilocks = field.Goldilocks

// GF2m is the binary extension field GF(2^m).
type GF2m = field.GF2m

// OpCounts is a snapshot of counted field operations (the paper's
// throughput unit).
type OpCounts = field.OpCounts

// Counting wraps a field and counts operations.
type Counting[E comparable] = field.Counting[E]

// NewGoldilocks returns the default prime field.
func NewGoldilocks() Goldilocks { return field.NewGoldilocks() }

// NewGF2m returns GF(2^m) for 2 <= m <= 16 (Appendix A requires 2^m >= N+K).
func NewGF2m(m uint) (*GF2m, error) { return field.NewGF2m(m) }

// NewCounting wraps a field with operation counters.
func NewCounting[E comparable](f Field[E]) *Counting[E] { return field.NewCounting(f) }

// ---- State machines ----

// Transition is a polynomial state transition function.
type Transition[E comparable] = sm.Transition[E]

// Machine is an uncoded reference state machine.
type Machine[E comparable] = sm.Machine[E]

// BoolFunc is a Boolean transition for NewBooleanMachine.
type BoolFunc = sm.BoolFunc

// NewBank returns the paper's bank-balance machine (degree 1).
func NewBank[E comparable](f Field[E]) (*Transition[E], error) { return sm.NewBank(f) }

// NewQuadraticTally returns a degree-2 accumulator of squared commands.
func NewQuadraticTally[E comparable](f Field[E]) (*Transition[E], error) {
	return sm.NewQuadraticTally(f)
}

// NewMultiplicativeAccumulator returns the bilinear machine s' = s*x.
func NewMultiplicativeAccumulator[E comparable](f Field[E]) (*Transition[E], error) {
	return sm.NewMultiplicativeAccumulator(f)
}

// NewInnerProduct returns a vector machine whose output is <s+x, x>.
func NewInnerProduct[E comparable](f Field[E], dim int) (*Transition[E], error) {
	return sm.NewInnerProduct(f, dim)
}

// NewPolynomialRegister returns a machine of exact degree d.
func NewPolynomialRegister[E comparable](f Field[E], d int) (*Transition[E], error) {
	return sm.NewPolynomialRegister(f, d)
}

// NewAffine returns the linear machine S' = A S + B X.
func NewAffine[E comparable](f Field[E], a, b [][]E) (*Transition[E], error) {
	return sm.NewAffine(f, a, b)
}

// FromExprs builds a transition from polynomial expressions, e.g.
// FromExprs(f, "mymachine", []string{"s"}, []string{"x"},
// []string{"s + x^2"}, []string{"s*x"}).
func FromExprs[E comparable](f Field[E], name string, stateVars, cmdVars, nextExprs, outExprs []string) (*Transition[E], error) {
	return sm.FromExprs(f, name, stateVars, cmdVars, nextExprs, outExprs)
}

// NewBooleanMachine converts an arbitrary Boolean transition function into
// a polynomial machine over GF(2^m) (Appendix A).
func NewBooleanMachine(f Field[uint64], name string, stateBits, cmdBits, outBits int, fn BoolFunc) (*Transition[uint64], error) {
	return sm.NewBoolean(f, name, stateBits, cmdBits, outBits, fn)
}

// PackBits embeds bits into GF(2^m) coordinates (equation (13)).
func PackBits(f *GF2m, v uint64, width int) []uint64 { return sm.PackBits(f, v, width) }

// UnpackBits inverts PackBits.
func UnpackBits(f *GF2m, vec []uint64) (uint64, error) { return sm.UnpackBits(f, vec) }

// NewMachine creates an uncoded reference machine.
func NewMachine[E comparable](tr *Transition[E], initial []E) (*Machine[E], error) {
	return sm.NewMachine(tr, initial)
}

// ---- The CSM engine ----

// Cluster is a running CSM deployment.
type Cluster[E comparable] = csm.Cluster[E]

// ClusterConfig configures a cluster.
type ClusterConfig[E comparable] = csm.Config[E]

// RoundResult reports one executed round.
type RoundResult[E comparable] = csm.RoundResult[E]

// Behavior selects a Byzantine node's misbehaviour.
type Behavior = csm.Behavior

// Byzantine behaviours.
const (
	Honest      = csm.Honest
	WrongResult = csm.WrongResult
	SilentNode  = csm.Silent
	Equivocate  = csm.Equivocate
	BadLeader   = csm.BadLeader
	// Crashed is a fail-stopped node: an erasure, consuming one parity
	// symbol of the fault budget where an active misbehaviour consumes two
	// (a cluster sized for b Byzantine faults tolerates up to 2b crashes).
	Crashed = csm.Crashed
	// Recovering marks a node between rejoining and completing its
	// coded-state repair.
	Recovering = csm.Recovering
)

// ---- Membership and churn ----

// ChurnEvent is one scheduled membership or adversary change
// (ClusterConfig.Churn / ClusterConfig.ChurnFn), applied at the boundary
// of the consensus instance covering its round.
type ChurnEvent = csm.ChurnEvent

// ChurnOp selects what a ChurnEvent does to its node.
type ChurnOp = csm.ChurnOp

// Churn operations.
const (
	ChurnCrash   = csm.ChurnCrash
	ChurnRejoin  = csm.ChurnRejoin
	ChurnCorrupt = csm.ChurnCorrupt
	ChurnRelease = csm.ChurnRelease
)

// RepairStats accounts the cost of coded-state repairs
// (Cluster.RepairStats).
type RepairStats = csm.RepairStats

// MovingAdversary returns a ChurnFn implementing the paper's Section 7
// dynamic adversary: every epochLen rounds the b corruptions release and
// re-target deterministically per seed.
func MovingAdversary(n, b, epochLen int, behavior Behavior, seed uint64) (func(round int) []ChurnEvent, error) {
	return csm.MovingAdversary(n, b, epochLen, behavior, seed)
}

// ConsensusKind selects the consensus-phase protocol.
type ConsensusKind = csm.ConsensusKind

// Consensus protocols.
const (
	OracleConsensus = csm.Oracle
	DolevStrong     = csm.DolevStrong
	PBFT            = csm.PBFT
)

// NetworkMode selects the timing model.
type NetworkMode = transport.Mode

// Timing models.
const (
	Synchronous          = transport.Sync
	PartiallySynchronous = transport.PartialSync
)

// NewCluster builds a CSM cluster from a ClusterConfig literal — the
// struct-based constructor Open wraps. ClusterConfig.BatchSize groups
// rounds under one consensus instance and ClusterConfig.Pipeline overlaps
// a round's client stage with the following rounds' consensus and
// execution phases; Cluster.Run applies both, and Cluster.RunPipelined
// forces the pipelined engine (see the csm package documentation for the
// happens-before contract).
func NewCluster[E comparable](cfg ClusterConfig[E]) (*Cluster[E], error) { return csm.New(cfg) }

// ---- Functional options (the serving-oriented constructor) ----

// Option configures a cluster built with Open; options validate eagerly.
type Option = csm.Option

// Open builds a CSM cluster from functional options:
//
//	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
//		codedsm.WithNodes(64), codedsm.WithMachines(22), codedsm.WithFaults(21),
//		codedsm.WithConsensus(codedsm.PBFT), codedsm.WithPartialSync(0),
//		codedsm.WithBatching(8), codedsm.WithPipeline(2))
//
// When WithMachines is omitted, K defaults to the full Table 2 capacity of
// the configured N, fault budget, transition degree, and network mode.
func Open[E comparable](f Field[E], newTransition csm.TransitionFactory[E], opts ...Option) (*Cluster[E], error) {
	return csm.Open(f, newTransition, opts...)
}

// WithNodes sets the network size N (required).
func WithNodes(n int) Option { return csm.WithNodes(n) }

// WithMachines sets the number of state machines K (default: capacity).
func WithMachines(k int) Option { return csm.WithMachines(k) }

// WithFaults sets the fault budget b the cluster is sized for.
func WithFaults(b int) Option { return csm.WithFaults(b) }

// WithConsensus selects the consensus-phase protocol.
func WithConsensus(kind ConsensusKind) Option { return csm.WithConsensus(kind) }

// WithPartialSync switches to the partially synchronous timing model with
// the given global stabilization round.
func WithPartialSync(gst int) Option { return csm.WithPartialSync(gst) }

// WithByzantine assigns misbehaviours to nodes (merged; the map is copied).
func WithByzantine(behaviors map[int]Behavior) Option { return csm.WithByzantine(behaviors) }

// WithByzantineNode assigns one node's misbehaviour.
func WithByzantineNode(node int, behavior Behavior) Option {
	return csm.WithByzantineNode(node, behavior)
}

// WithNoEquivocation models a broadcast network (Section 6 assumption).
func WithNoEquivocation() Option { return csm.WithNoEquivocation() }

// WithDelegated enables the Section 6.2 delegated execution phase
// (implies WithNoEquivocation).
func WithDelegated() Option { return csm.WithDelegated() }

// WithSeed seeds all cluster and network randomness.
func WithSeed(seed uint64) Option { return csm.WithSeed(seed) }

// WithMaxTicksPerRound bounds a round's lock-step network ticks.
func WithMaxTicksPerRound(ticks int) Option { return csm.WithMaxTicksPerRound(ticks) }

// WithParallelism sets the execution-phase worker count.
func WithParallelism(workers int) Option { return csm.WithParallelism(workers) }

// WithBatching groups consecutive workload rounds under one consensus
// instance (command batching with primed decodes).
func WithBatching(rounds int) Option { return csm.WithBatching(rounds) }

// WithPipeline enables the pipelined engine at the given depth.
func WithPipeline(depth int) Option { return csm.WithPipeline(depth) }

// WithChurn appends scheduled membership and adversary changes.
func WithChurn(events ...ChurnEvent) Option { return csm.WithChurn(events...) }

// WithChurnFn installs a dynamic churn generator (see MovingAdversary).
func WithChurnFn(fn func(round int) []ChurnEvent) Option { return csm.WithChurnFn(fn) }

// WithInitialStates sets the K machines' initial state vectors.
func WithInitialStates[E comparable](states [][]E) Option { return csm.WithInitialStates(states) }

// ---- Durability (WAL + coded snapshots) ----

// DurabilityConfig enables the durable state layer (ClusterConfig.Durability);
// WithDurability is the options-based equivalent.
type DurabilityConfig = csm.DurabilityConfig

// DurabilityOption tunes the durable state layer enabled by WithDurability.
type DurabilityOption = csm.DurabilityOption

// WALSyncPolicy selects when the write-ahead log fsyncs.
type WALSyncPolicy = wal.SyncPolicy

// WAL fsync policies.
const (
	// SyncAlways fsyncs after every append: durable when Append returns.
	SyncAlways = wal.SyncAlways
	// SyncNever leaves syncing to the OS — faster, loses the tail of the
	// log on a machine (not process) crash.
	SyncNever = wal.SyncNever
)

// WithDurability persists the cluster's state under dir: decided batches
// are write-ahead logged and coded snapshots rotate atomically on a
// cadence, so an Open over a directory holding prior state resumes at
// the last durable round bit-identically to the uninterrupted run.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return csm.WithDurability(dir, opts...)
}

// SnapshotEvery sets the snapshot cadence in executed rounds (default 32).
func SnapshotEvery(rounds int) DurabilityOption { return csm.SnapshotEvery(rounds) }

// SyncPolicy selects the WAL fsync policy (default SyncAlways).
func SyncPolicy(policy WALSyncPolicy) DurabilityOption { return csm.SyncPolicy(policy) }

// ---- Ingress (Submit-based serving) ----

// Client is the submission front of an open cluster: Submit enqueues one
// command for one machine and returns a Future, while the client's
// scheduler coalesces pending submissions into rounds and consensus
// batches and drives the engines underneath (Cluster.Open).
type Client[E comparable] = csm.Client[E]

// Future is the pending result of one submitted command.
type Future[E comparable] = csm.Future[E]

// ClientOption configures Cluster.Open.
type ClientOption = csm.ClientOption

// DefaultSubmitQueueDepth is the per-machine backpressure bound used when
// WithSubmitQueueDepth is not given.
const DefaultSubmitQueueDepth = csm.DefaultSubmitQueueDepth

// WithSubmitQueueDepth bounds each machine's pending-submission queue
// (Submit blocks while the addressed machine's queue is full).
func WithSubmitQueueDepth(depth int) ClientOption { return csm.WithSubmitQueueDepth(depth) }

// WithDeterministicAdmission admits a round only when every machine has a
// pending command and a batch only when full, making a seeded
// Submit-driven run bit-identical to Run on the equivalent workload.
func WithDeterministicAdmission() ClientOption { return csm.WithDeterministicAdmission() }

// WithPadCommand sets the identity command submitted for idle machines
// when a round is admitted (default: the all-zero command).
func WithPadCommand[E comparable](cmd []E) ClientOption { return csm.WithPadCommand(cmd) }

// ---- Typed errors ----

// BatchError is attached to every mid-workload failure of
// Run/RunQueue/RunPipelined/Rounds/ExecuteBatch: it carries the completed
// prefix of round reports and the failed round's index (errors.As).
type BatchError[E comparable] = csm.BatchError[E]

// Sentinel errors (errors.Is).
var (
	// ErrRoundStuck: a round did not complete within the tick budget.
	ErrRoundStuck = csm.ErrRoundStuck
	// ErrRoundLimit: a round's consensus retry budget was exhausted.
	ErrRoundLimit = csm.ErrRoundLimit
	// ErrFaultBudgetExceeded: a fault pattern overruns the 2b parity budget.
	ErrFaultBudgetExceeded = csm.ErrFaultBudgetExceeded
	// ErrQuorumUnreachable: a fault pattern starves a quorum threshold, or
	// a machine output never gathered b+1 matching replies.
	ErrQuorumUnreachable = csm.ErrQuorumUnreachable
	// ErrClientClosed: Submit on a closed (or failed) ingress client.
	ErrClientClosed = csm.ErrClientClosed
)

// DefaultPipelineDepth is the client-stage queue depth RunPipelined uses
// when ClusterConfig.Pipeline is unset.
const DefaultPipelineDepth = csm.DefaultPipelineDepth

// RandomWorkload generates a reproducible workload.
func RandomWorkload[E comparable](f Field[E], rounds, k, cmdLen int, seed uint64) [][][]E {
	return csm.RandomWorkload(f, rounds, k, cmdLen, seed)
}

// ---- Capacity planning (Table 2 bounds) ----

// SyncMaxMachines returns the largest K for N nodes, b faults, degree d in
// a synchronous network.
func SyncMaxMachines(n, b, d int) int { return lcc.SyncMaxMachines(n, b, d) }

// PSyncMaxMachines is the partially synchronous bound.
func PSyncMaxMachines(n, b, d int) int { return lcc.PSyncMaxMachines(n, b, d) }

// SyncMaxFaults returns the largest b tolerated for fixed N, K, d.
func SyncMaxFaults(n, k, d int) int { return lcc.SyncMaxFaults(n, k, d) }

// PSyncMaxFaults is the partially synchronous bound.
func PSyncMaxFaults(n, k, d int) int { return lcc.PSyncMaxFaults(n, k, d) }

// ---- Replication baselines ----

// ReplicationConfig configures a baseline cluster.
type ReplicationConfig[E comparable] = replication.Config[E]

// FullReplication is the γ=1 baseline.
type FullReplication[E comparable] = replication.FullCluster[E]

// PartialReplication is the β=Θ(N/K) baseline.
type PartialReplication[E comparable] = replication.PartialCluster[E]

// NewFullReplication builds the full-replication baseline.
func NewFullReplication[E comparable](cfg ReplicationConfig[E]) (*FullReplication[E], error) {
	return replication.NewFull(cfg)
}

// NewPartialReplication builds the partial-replication baseline.
func NewPartialReplication[E comparable](cfg ReplicationConfig[E]) (*PartialReplication[E], error) {
	return replication.NewPartial(cfg)
}

// ReplicationOption configures a baseline cluster built with
// OpenFullReplication or OpenPartialReplication. The constructors mirror
// the cluster options under a WithRepl prefix.
type ReplicationOption = replication.Option

// ReplicationBehavior selects a baseline node's failure mode (Colluding,
// ReplicaCrash, or honest by default).
type ReplicationBehavior = replication.Behavior

// ReplicaCrash is the replication baselines' fail-stop behaviour.
const ReplicaCrash = replication.Crash

// WithReplNodes sets the baseline network size N (required).
func WithReplNodes(n int) ReplicationOption { return replication.WithNodes(n) }

// WithReplMachines sets the baseline machine count K (required).
func WithReplMachines(k int) ReplicationOption { return replication.WithMachines(k) }

// WithReplByzantine assigns failure modes to baseline nodes.
func WithReplByzantine(behaviors map[int]ReplicationBehavior) ReplicationOption {
	return replication.WithByzantine(behaviors)
}

// WithReplSeed seeds the baseline adversary's lies.
func WithReplSeed(seed uint64) ReplicationOption { return replication.WithSeed(seed) }

// WithReplParallelism sets the baseline replica-step worker count.
func WithReplParallelism(workers int) ReplicationOption { return replication.WithParallelism(workers) }

// WithReplPartialSync switches the baseline security-bound formulas to the
// partially synchronous ones.
func WithReplPartialSync() ReplicationOption { return replication.WithPartialSync() }

// WithReplInitialStates sets the baseline machines' initial states.
func WithReplInitialStates[E comparable](states [][]E) ReplicationOption {
	return replication.WithInitialStates(states)
}

// OpenFullReplication builds the full-replication baseline from
// functional options.
func OpenFullReplication[E comparable](f Field[E], newTransition replication.TransitionFactory[E], opts ...ReplicationOption) (*FullReplication[E], error) {
	return replication.OpenFull(f, newTransition, opts...)
}

// OpenPartialReplication builds the partial-replication baseline from
// functional options.
func OpenPartialReplication[E comparable](f Field[E], newTransition replication.TransitionFactory[E], opts ...ReplicationOption) (*PartialReplication[E], error) {
	return replication.OpenPartial(f, newTransition, opts...)
}

// ConcentratedAttack corrupts a majority of one partial-replication group.
func ConcentratedAttack(n, k, target int) (map[int]replication.Behavior, error) {
	return replication.ConcentratedAttack(n, k, target)
}

// Colluding is the replication baselines' lying behaviour.
const Colluding = replication.Colluding

// RandomAllocationExperiment models Section 7's random-allocation scheme
// under static and dynamic adversaries.
type RandomAllocationExperiment = replication.RandomAllocationExperiment

// Adversary kinds for RandomAllocationExperiment.
const (
	StaticAdversary  = replication.StaticAdversary
	DynamicAdversary = replication.DynamicAdversary
)

// ---- INTERMIX ----

// IntermixStrategy selects worker behaviour.
type IntermixStrategy = intermix.Strategy

// Worker strategies.
const (
	HonestWorker   = intermix.HonestWorker
	NaiveLiar      = intermix.NaiveLiar
	ConsistentLiar = intermix.ConsistentLiar
)

// IntermixSession configures a full INTERMIX round.
type IntermixSession[E comparable] = intermix.SessionConfig[E]

// IntermixOutcome reports a session.
type IntermixOutcome[E comparable] = intermix.Outcome[E]

// RunIntermix executes delegation + election + audits + verification.
func RunIntermix[E comparable](cfg IntermixSession[E]) (*IntermixOutcome[E], error) {
	return intermix.RunSession(cfg)
}

// CommitteeSize returns J = ceil(log ε / log µ).
func CommitteeSize(epsilon, mu float64) (int, error) { return intermix.CommitteeSize(epsilon, mu) }

// ---- Experiments (the paper's tables and figures) ----

// Table1Row is one measured row of the paper's Table 1.
type Table1Row = metrics.Table1Row

// Table1Config parameterizes the Table 1 experiment.
type Table1Config = metrics.Table1Config

// Table1 measures security, storage and throughput for every scheme.
func Table1(cfg Table1Config) ([]Table1Row, error) { return metrics.Table1(cfg) }

// RenderTable1 renders rows as text.
func RenderTable1(rows []Table1Row) string { return metrics.RenderTable1(rows) }

// Table2Row is one threshold row of the paper's Table 2.
type Table2Row = metrics.Table2Row

// Table2 sweeps fault counts around every threshold.
func Table2(n, k, d int, seed uint64) ([]Table2Row, error) { return metrics.Table2(n, k, d, seed) }

// RenderTable2 renders rows as text.
func RenderTable2(rows []Table2Row) string { return metrics.RenderTable2(rows) }

// ScalingRow is one point of the Theorem 1 scaling series.
type ScalingRow = metrics.ScalingRow

// ScalingConfig parameterizes the Theorem 1 series (worker count,
// batching, pipelining).
type ScalingConfig = metrics.ScalingConfig

// Scaling measures the Theorem 1 series over network sizes. parallelism is
// the worker count the measured clusters execute with (0 selects
// runtime.GOMAXPROCS); the op-count metrics are worker-count-independent.
func Scaling(ns []int, mu float64, d, rounds int, seed uint64, parallelism int) ([]ScalingRow, error) {
	return metrics.Scaling(ns, mu, d, rounds, seed, parallelism)
}

// ScalingSeries measures the Theorem 1 series under an explicit engine
// configuration (batching, pipelining, parallelism).
func ScalingSeries(cfg ScalingConfig) ([]ScalingRow, error) { return metrics.ScalingSeries(cfg) }

// RenderScaling renders the series as text.
func RenderScaling(rows []ScalingRow) string { return metrics.RenderScaling(rows) }

// RepairRow is one measured point of the repair-cost experiment
// (Section 7, Remark 5).
type RepairRow = metrics.RepairRow

// RepairCost measures what re-provisioning a crashed node costs, per
// network size, against the round cost and the naive re-download
// baseline.
func RepairCost(ns []int, mu float64, d, rounds int, seed uint64) ([]RepairRow, error) {
	return metrics.RepairCost(ns, mu, d, rounds, seed)
}

// RenderRepair renders the repair-cost series as text.
func RenderRepair(rows []RepairRow) string { return metrics.RenderRepair(rows) }

// ---- Sharded serving (the consistent-hash shard router) ----

// Router serves a fleet of independent CSM clusters behind one
// Submit/Future/Results surface: machines are addressed by global index
// and assigned to shards by a consistent-hash ring; cross-shard command
// sets run a two-phase prepare/commit protocol; Rebalance migrates a
// machine between shards through the coded-state handoff.
type Router[E comparable] = shard.Router[E]

// RouterOption configures OpenRouter.
type RouterOption = shard.Option

// RouterFuture is the pending result of one routed command.
type RouterFuture[E comparable] = shard.Future[E]

// ShardRing is the consistent-hash ring assigning machines to shards.
type ShardRing = shard.Ring

// ShardMove records one completed rebalance.
type ShardMove = shard.Move

// CrossOp is one machine's command inside a cross-shard command set
// (Router.SubmitCross).
type CrossOp[E comparable] = shard.Op[E]

// ShardError wraps a failure from one shard, naming it; the underlying
// csm error chain stays visible to errors.Is.
type ShardError = shard.ShardError

// AbortError reports an aborted two-phase cross-shard command: the
// failing phase and shard, and any shards that had already committed.
// It matches ErrCrossShardAborted via errors.Is.
type AbortError = shard.AbortError

// TwoPhase names a stage of the cross-shard protocol.
type TwoPhase = shard.Phase

// Two-phase stages.
const (
	PhasePrepare = shard.PhasePrepare
	PhaseCommit  = shard.PhaseCommit
)

// Router sentinel errors (errors.Is).
var (
	// ErrRouterClosed: an operation on a closed router.
	ErrRouterClosed = shard.ErrRouterClosed
	// ErrCrossShardAborted: a two-phase cross-shard command aborted.
	ErrCrossShardAborted = shard.ErrAborted
)

// DefaultVirtualNodes is the per-shard virtual-node count used when
// WithShardVirtualNodes is not given.
const DefaultVirtualNodes = shard.DefaultVirtualNodes

// NewShardRing builds a standalone consistent-hash ring (placement is a
// pure function of the parameters).
func NewShardRing(shards, vnodes int, seed uint64) (*ShardRing, error) {
	return shard.NewRing(shards, vnodes, seed)
}

// OpenRouter builds the ring, opens one CSM cluster per shard via the
// functional options, scatters the initial states, and starts serving:
//
//	router, err := codedsm.OpenRouter(gold, codedsm.NewBank[uint64],
//		codedsm.WithShards(3), codedsm.WithShardMachines(9),
//		codedsm.WithShardSeed(7),
//		codedsm.WithShardClusterOptions(
//			codedsm.WithNodes(12), codedsm.WithFaults(1)))
func OpenRouter[E comparable](f Field[E], newTransition csm.TransitionFactory[E], opts ...RouterOption) (*Router[E], error) {
	return shard.Open(f, newTransition, opts...)
}

// WithShards sets the shard count S (required).
func WithShards(s int) RouterOption { return shard.WithShards(s) }

// WithShardMachines sets the global machine count (required).
func WithShardMachines(m int) RouterOption { return shard.WithMachines(m) }

// WithShardSlots sets each shard cluster's machine capacity (default:
// the ring's maximum shard load plus one migration slot).
func WithShardSlots(k int) RouterOption { return shard.WithSlots(k) }

// WithShardVirtualNodes sets the ring's per-shard virtual-node count.
func WithShardVirtualNodes(v int) RouterOption { return shard.WithVirtualNodes(v) }

// WithShardSeed seeds ring placement, per-shard cluster seeds, and
// coordinator election.
func WithShardSeed(seed uint64) RouterOption { return shard.WithSeed(seed) }

// WithShardClusterOptions appends cluster options applied to every shard.
func WithShardClusterOptions(opts ...Option) RouterOption {
	return shard.WithClusterOptions(opts...)
}

// WithShardClusterOptionsFor appends cluster options applied to one
// shard only.
func WithShardClusterOptionsFor(s int, opts ...Option) RouterOption {
	return shard.WithClusterOptionsFor(s, opts...)
}

// WithShardClientOptions appends ingress client options applied whenever
// the router opens a shard's client.
func WithShardClientOptions(opts ...ClientOption) RouterOption {
	return shard.WithClientOptions(opts...)
}

// WithShardPadCommand sets the identity command used as both the shard
// clients' pad and the two-phase prepare probe.
func WithShardPadCommand[E comparable](cmd []E) RouterOption {
	return shard.WithPadCommand(cmd)
}

// WithShardInitialStates sets the global machines' initial states, in
// global machine order.
func WithShardInitialStates[E comparable](states [][]E) RouterOption {
	return shard.WithInitialStates(states)
}

// DigestShardState returns the hex SHA-256 digest of a state vector
// under the field's canonical uint64 representation — the cross-cluster
// comparison format Router.StateDigests uses.
func DigestShardState[E comparable](f Field[E], state []E) string {
	return shard.DigestState(f, state)
}

// DecodeMachineState reconstructs machine k's state from a cluster's
// coded shares (the coded read half of the rebalance handoff; also the
// oracle-comparison path for a closed cluster).
func DecodeMachineState[E comparable](c *Cluster[E], k int) ([]E, error) {
	return c.DecodeMachineState(k)
}

// ---- Polynomial utilities ----

// ParsePolynomial parses a multivariate polynomial expression.
func ParsePolynomial[E comparable](f Field[E], expr string, vars []string) (mvpoly.Poly[E], error) {
	return mvpoly.Parse(f, expr, vars)
}

// NewRing constructs a univariate polynomial ring (NTT-accelerated when the
// field supports it).
func NewRing[E comparable](f Field[E]) *poly.Ring[E] { return poly.NewRing[E](f) }
