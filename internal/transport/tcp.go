package transport

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"syscall"
	"time"
)

// TCPConfig configures one node's TCP link into a multi-process cluster.
type TCPConfig struct {
	// Self is this process's node id.
	Self NodeID
	// N is the cluster size; Peers must name all N listen addresses.
	N int
	// Seed derives the cluster's deterministic ed25519 keys (DeriveKeys);
	// every process of a cluster must use the same seed.
	Seed uint64
	// Listen is the address this node accepts peer connections on
	// (host:port; port 0 picks a free port, see Addr).
	Listen string
	// Peers maps node id -> listen address for the whole cluster
	// (Peers[Self] is ignored; it may repeat Listen).
	Peers []string
	// DialTimeout bounds the total time spent establishing (or
	// re-establishing) a connection to one peer, backoff included.
	// Defaults to 30s.
	DialTimeout time.Duration
	// RetryBackoff is the initial redial backoff; it doubles per attempt
	// up to 2s. Defaults to 50ms.
	RetryBackoff time.Duration
	// StepTimeout bounds how long Step waits for the round barrier before
	// failing — the guard that keeps a wedged peer from hanging the whole
	// process forever. Defaults to 60s.
	StepTimeout time.Duration
	// BindRetries is the number of extra listen attempts when the
	// configured address is already in use (default 0: fail fast). A
	// bootstrap-probed free port can be grabbed by another process
	// between the probe and the daemon's bind; retrying with backoff
	// rides out that reuse race instead of failing the node.
	BindRetries int
	// BindBackoff is the initial wait between bind attempts; it doubles
	// per attempt up to 2s. Defaults to RetryBackoff.
	BindBackoff time.Duration
	// FailoverQuorum, when positive, lets Step advance without the full
	// barrier: once that many peers (excluding self) have ended the round
	// and SuspectAfter has elapsed, the missing peers are marked suspected
	// and the round completes without them. Suspected peers are skipped by
	// later barriers (their frames are buffered, not written, so a crashed
	// peer cannot stall writes either) and rehabilitated the moment one of
	// their end-of-round markers arrives. Zero (the default) keeps the
	// strict all-peers barrier: any dead peer fails Step at StepTimeout.
	//
	// This knob trades the synchronous model's full-barrier determinism
	// for liveness under crash faults; enable it only when the protocol on
	// top tolerates missing senders (PBFT with N >= 3f+1 does, the Oracle
	// engine does not).
	FailoverQuorum int
	// SuspectAfter is how long a quorum-satisfied barrier waits for
	// stragglers before suspecting them. Only meaningful with
	// FailoverQuorum > 0. Defaults to 2s.
	SuspectAfter time.Duration
	// Logf, when non-nil, receives connection-lifecycle diagnostics
	// (dials, retries, replaced connections). Protocol traffic is never
	// logged.
	Logf func(format string, args ...any)
}

// outConn is the dedicated outbound (send-only) connection to one peer,
// with the retransmit buffer that makes reconnects lossless: frames of
// the current and previous round are replayed after a redial, and the
// receiving side deduplicates. Only the driving goroutine writes, so no
// lock is needed beyond the TCP struct's own.
type outConn struct {
	id   NodeID
	addr string
	// mu guards conn and the replay buffers: writes come from the driving
	// goroutine, but Close (from a signal handler, say) must also reach
	// the connection.
	mu      sync.Mutex
	conn    net.Conn
	round   int      // round the buffered frames belong to
	bufCur  [][]byte // raw frames written this round (data + done)
	bufPrev [][]byte // previous round's frames (the peer may not have read them yet)
}

// TCP is a Link over real sockets. Each process owns one node; rounds
// advance by a distributed barrier: a node ends its round by sending a
// DONE marker to every peer, and Step returns once the markers of all
// peers for the same round have arrived. Per-connection FIFO guarantees
// that a peer's DONE(r) trails all of its round-r messages, so when the
// barrier completes, the round's traffic is complete too — the same
// "sent in round r, delivered in round r+1" contract as the simulated
// synchronous network.
//
// Simulation-only knobs are rejected: SetDown fails with
// ErrSimulationOnly, and there is no equivalent of the simulator's delay
// models or equivocation coercion.
type TCP struct {
	cfg  TCPConfig
	pubs []ed25519.PublicKey
	priv ed25519.PrivateKey
	ln   net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	round    int
	buffered map[int][]Message       // send round -> verified messages for Self
	seen     map[int]map[string]bool // send round -> frame bodies (reconnect dedup)
	doneMax  map[NodeID]int          // highest round each peer has ended (absent: none)
	suspect  map[NodeID]bool         // peers presumed crashed (failover mode only)
	inConns  map[NodeID]net.Conn     // inbound (receive-only) connections
	out      map[NodeID]*outConn     // outbound (send-only) connections
	closed   bool
	stats    Stats

	wg sync.WaitGroup
}

// NewTCP opens the node's listener, dials every peer (with backoff until
// DialTimeout), and returns the ready link. Inbound connections from
// peers are accepted for the life of the link; a peer that reconnects
// replaces its previous connection.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", cfg.N)
	}
	if int(cfg.Self) < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("transport: self %d out of range [0,%d)", cfg.Self, cfg.N)
	}
	if len(cfg.Peers) != cfg.N {
		return nil, fmt.Errorf("transport: %d peer addresses for N=%d", len(cfg.Peers), cfg.N)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = 60 * time.Second
	}
	if cfg.BindBackoff <= 0 {
		cfg.BindBackoff = cfg.RetryBackoff
	}
	if cfg.FailoverQuorum < 0 || cfg.FailoverQuorum > cfg.N-1 {
		return nil, fmt.Errorf("transport: failover quorum %d out of range [0,%d]", cfg.FailoverQuorum, cfg.N-1)
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * time.Second
	}
	pubs, privs := DeriveKeys(cfg.Seed, cfg.N)
	var ln net.Listener
	for attempt, backoff := 0, cfg.BindBackoff; ; attempt++ {
		var err error
		ln, err = net.Listen("tcp", cfg.Listen)
		if err == nil {
			break
		}
		if attempt >= cfg.BindRetries || !errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("transport: node %d listen on %s: %w", cfg.Self, cfg.Listen, err)
		}
		if cfg.Logf != nil {
			cfg.Logf("node %d: %s in use, retrying bind in %v (attempt %d/%d)",
				cfg.Self, cfg.Listen, backoff, attempt+1, cfg.BindRetries)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	t := &TCP{
		cfg:      cfg,
		pubs:     pubs,
		priv:     privs[cfg.Self],
		ln:       ln,
		buffered: make(map[int][]Message),
		seen:     make(map[int]map[string]bool),
		doneMax:  make(map[NodeID]int),
		suspect:  make(map[NodeID]bool),
		inConns:  make(map[NodeID]net.Conn),
		out:      make(map[NodeID]*outConn),
	}
	t.cond = sync.NewCond(&t.mu)
	t.wg.Add(1)
	go t.acceptLoop()
	// Dial the full outbound mesh concurrently: peers come up in any
	// order, so each dial retries with backoff until DialTimeout.
	var dialWG sync.WaitGroup
	dialErrs := make([]error, cfg.N)
	for id := 0; id < cfg.N; id++ {
		if NodeID(id) == cfg.Self {
			continue
		}
		dialWG.Add(1)
		go func(id NodeID) {
			defer dialWG.Done()
			conn, err := t.dialPeer(id, t.cfg.DialTimeout)
			if err != nil {
				dialErrs[id] = err
				return
			}
			t.mu.Lock()
			t.out[id] = &outConn{id: id, addr: cfg.Peers[id], conn: conn}
			t.mu.Unlock()
		}(NodeID(id))
	}
	dialWG.Wait()
	if err := errors.Join(dialErrs...); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// Addr returns the bound listen address (useful with "host:0" configs).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

func (t *TCP) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// dialPeer connects to one peer with exponential backoff, sends the
// signed hello, and returns the connection. The timeout bounds the whole
// attempt, backoff included.
func (t *TCP) dialPeer(id NodeID, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout) //csmlint:allow detsource(dial deadline on a real socket; I/O pacing, never protocol state)
	backoff := t.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if t.isClosed() {
			return nil, fmt.Errorf("transport: node %d dialing %d: %w", t.cfg.Self, id, ErrClosed)
		}
		//csmlint:allow detsource(dial deadline on a real socket; I/O pacing, never protocol state)
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: node %d could not reach node %d at %s within %v: %w",
				t.cfg.Self, id, t.cfg.Peers[id], timeout, lastErr)
		}
		//csmlint:allow detsource(remaining dial budget on a real socket)
		conn, err := net.DialTimeout("tcp", t.cfg.Peers[id], time.Until(deadline))
		if err == nil {
			hello := helloBody(t.cfg.Self, func(context string, data []byte) []byte {
				return ed25519.Sign(t.priv, blobBytes(context, data))
			})
			if err = writeFrame(conn, frameHello, hello); err == nil {
				if attempt > 0 {
					t.logf("node %d reconnected to node %d after %d retries", t.cfg.Self, id, attempt)
				}
				return conn, nil
			}
			conn.Close()
		}
		lastErr = err
		t.logf("node %d dialing node %d at %s: %v (retry in %v)", t.cfg.Self, id, t.cfg.Peers[id], err, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// acceptLoop registers inbound peer connections for the life of the link.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleInbound(conn)
		}()
	}
}

// handleInbound validates the hello and runs the connection's read loop.
func (t *TCP) handleInbound(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //csmlint:allow detsource(hello read deadline on a real socket)
	typ, body, err := readFrame(conn)
	if err != nil || typ != frameHello {
		conn.Close()
		return
	}
	id, err := parseHello(body, t.cfg.N, func(id NodeID, context string, data, sig []byte) bool {
		return ed25519.Verify(t.pubs[id], blobBytes(context, data), sig)
	})
	if err != nil || id == t.cfg.Self {
		t.logf("node %d rejected inbound connection: %v", t.cfg.Self, err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	if old := t.inConns[id]; old != nil {
		old.Close() // the peer reconnected; its old reader unblocks and exits
	}
	t.inConns[id] = conn
	t.mu.Unlock()
	t.readLoop(id, conn)
}

// readLoop ingests one peer's frames until the connection breaks.
func (t *TCP) readLoop(id NodeID, conn net.Conn) {
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			if !t.isClosed() && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				t.logf("node %d lost inbound connection from node %d: %v", t.cfg.Self, id, err)
			}
			return
		}
		switch typ {
		case frameData:
			t.ingestData(body)
		case frameDone:
			round, err := parseDone(body)
			if err != nil {
				continue
			}
			t.mu.Lock()
			// DONE(r) marks the end of every round up to r, so one integer
			// per peer is enough — and it stays correct when failover lets
			// the cluster advance several rounds past a straggler. The
			// marker only feeds the barrier count (never message content),
			// so a lying future round can at worst stop us waiting for a
			// peer the failover policy would drop anyway.
			if max, ok := t.doneMax[id]; !ok || round > max {
				t.doneMax[id] = round
			}
			if t.suspect[id] && round >= t.round {
				delete(t.suspect, id)
				t.logf("node %d rehabilitated node %d (DONE for round %d arrived)", t.cfg.Self, id, round)
			}
			t.cond.Broadcast()
			t.mu.Unlock()
		default:
			// Unknown frame type: ignore (forward compatibility).
		}
	}
}

// ingestData verifies and buffers one data frame. Retransmitted frames
// (after a peer's reconnect) are deduplicated by their exact bytes.
func (t *TCP) ingestData(body []byte) {
	m, err := UnmarshalMessage(body)
	if err != nil {
		return
	}
	if m.To != t.cfg.Self {
		return // not ours; a confused or malicious peer
	}
	if int(m.From) < 0 || int(m.From) >= t.cfg.N ||
		!ed25519.Verify(t.pubs[m.From], signingBytes(m.From, m.Round, m.Kind, m.Payload), m.Sig) {
		t.mu.Lock()
		t.stats.ForgeriesDropped++
		t.mu.Unlock()
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if m.Round < t.round || m.Round > t.round+1 {
		// Late (its delivery round has passed) or impossibly far ahead (a
		// peer cannot be more than one barrier ahead): drop, so garbage
		// rounds cannot grow the buffers unboundedly.
		return
	}
	set := t.seen[m.Round]
	if set == nil {
		set = make(map[string]bool)
		t.seen[m.Round] = set
	}
	if set[string(body)] {
		return // replayed after a reconnect
	}
	set[string(body)] = true
	t.buffered[m.Round] = append(t.buffered[m.Round], m)
	t.stats.MessagesDelivered++
	t.stats.BytesDelivered += uint64(len(m.Payload))
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Self returns this process's node id.
func (t *TCP) Self() NodeID { return t.cfg.Self }

// N returns the cluster size.
func (t *TCP) N() int { return t.cfg.N }

// Round returns the current lock-step round.
func (t *TCP) Round() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.round
}

// Stats returns a snapshot of delivery counters.
func (t *TCP) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// SetDown is a simulation-only knob: over real sockets a crash happens to
// a process, it is not declared by a peer.
func (t *TCP) SetDown(id NodeID, down bool) error {
	return fmt.Errorf("transport: SetDown(%d, %v) on the TCP transport: %w", id, down, ErrSimulationOnly)
}

// SignBlob signs protocol content under a domain-separation context with
// this node's key (same byte layout as the simulated Endpoint's SignBlob,
// so chains signed on one transport verify on the other).
func (t *TCP) SignBlob(context string, data []byte) []byte {
	return ed25519.Sign(t.priv, blobBytes(context, data))
}

// VerifyBlob verifies a blob signature produced by node id's SignBlob.
func (t *TCP) VerifyBlob(id NodeID, context string, data, sig []byte) bool {
	if int(id) < 0 || int(id) >= t.cfg.N {
		return false
	}
	return ed25519.Verify(t.pubs[id], blobBytes(context, data), sig)
}

// Suspected reports the peers currently presumed crashed (failover mode
// only; always empty with FailoverQuorum == 0).
func (t *TCP) Suspected() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]NodeID, 0, len(t.suspect))
	for id := 0; id < t.cfg.N; id++ {
		if t.suspect[NodeID(id)] {
			ids = append(ids, NodeID(id))
		}
	}
	return ids
}

// markSuspect flags a peer as presumed crashed and wakes any barrier wait
// that may now be satisfiable at quorum.
func (t *TCP) markSuspect(id NodeID, cause string) {
	t.mu.Lock()
	if !t.suspect[id] && !t.closed {
		t.suspect[id] = true
		t.cond.Broadcast()
		t.mu.Unlock()
		t.logf("node %d suspects node %d (%s)", t.cfg.Self, id, cause)
		return
	}
	t.mu.Unlock()
}

func (t *TCP) isSuspect(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.suspect[id]
}

// writePeer frames and writes one message to a peer's outbound
// connection, buffering it for replay and redialing with backoff if the
// connection broke. Only the driving goroutine calls it.
func (t *TCP) writePeer(o *outConn, typ byte, body []byte, round int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if round != o.round {
		o.bufPrev, o.bufCur = o.bufCur, nil
		o.round = round
	}
	frame := make([]byte, 5+len(body))
	frame[4] = typ
	copy(frame[5:], body)
	frame[0] = byte(len(body))
	frame[1] = byte(len(body) >> 8)
	frame[2] = byte(len(body) >> 16)
	frame[3] = byte(len(body) >> 24)
	o.bufCur = append(o.bufCur, frame)
	if o.conn != nil {
		if _, err := o.conn.Write(frame); err == nil {
			return nil
		}
		o.conn.Close()
		o.conn = nil
	}
	// With failover enabled a suspected peer must not stall the writer:
	// skip the blocking redial, keep the frame buffered, and let a later
	// write (after rehabilitation) replay it.
	failover := t.cfg.FailoverQuorum > 0
	if failover && t.isSuspect(o.id) {
		return nil
	}
	// Reconnect and replay everything the peer may have missed: the
	// previous round's frames (it may not have processed our DONE) and
	// the current round's. The receiver deduplicates byte-identical
	// frames, so over-replay is harmless. In failover mode the redial
	// budget is SuspectAfter, not the full DialTimeout — an unreachable
	// peer becomes suspected instead of an error.
	dialBudget := t.cfg.DialTimeout
	if failover && t.cfg.SuspectAfter < dialBudget {
		dialBudget = t.cfg.SuspectAfter
	}
	conn, err := t.dialPeer(o.id, dialBudget)
	if err != nil {
		if failover {
			t.markSuspect(o.id, "unreachable on write")
			return nil
		}
		return err
	}
	o.conn = conn
	replay := make([][]byte, 0, len(o.bufPrev)+len(o.bufCur))
	replay = append(replay, o.bufPrev...)
	replay = append(replay, o.bufCur...)
	for _, f := range replay {
		if _, err := conn.Write(f); err != nil {
			conn.Close()
			o.conn = nil
			if failover {
				t.markSuspect(o.id, "write failed during replay")
				return nil
			}
			return fmt.Errorf("transport: node %d replaying to node %d: %w", t.cfg.Self, o.id, err)
		}
	}
	return nil
}

// send signs and transmits one message. A self-addressed message is
// buffered locally (the simulator's Endpoint.Send allows it too).
func (t *TCP) send(to NodeID, round int, kind string, payload, sig []byte) error {
	m := Message{From: t.cfg.Self, To: to, Round: round, Kind: kind, Payload: payload, Sig: sig}
	body, err := AppendMessage(nil, m)
	if err != nil {
		return err
	}
	if to == t.cfg.Self {
		t.ingestData(body)
		return nil
	}
	t.mu.Lock()
	o := t.out[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("transport: node %d send: %w", t.cfg.Self, ErrClosed)
	}
	if o == nil {
		return fmt.Errorf("transport: node %d has no connection to node %d", t.cfg.Self, to)
	}
	return t.writePeer(o, frameData, body, round)
}

// Send transmits a signed message to a single node.
func (t *TCP) Send(to NodeID, kind string, payload []byte) error {
	if int(to) < 0 || int(to) >= t.cfg.N {
		return fmt.Errorf("transport: recipient %d out of range", to)
	}
	round := t.Round()
	payload = append([]byte(nil), payload...)
	sig := ed25519.Sign(t.priv, signingBytes(t.cfg.Self, round, kind, payload))
	return t.send(to, round, kind, payload, sig)
}

// Broadcast transmits a signed message to every other node. As on the
// simulated network, the signature covers (sender, round, kind, payload)
// but not the recipient, so one ed25519 signature is shared by all N-1
// copies.
func (t *TCP) Broadcast(kind string, payload []byte) error {
	round := t.Round()
	payload = append([]byte(nil), payload...)
	sig := ed25519.Sign(t.priv, signingBytes(t.cfg.Self, round, kind, payload))
	for to := 0; to < t.cfg.N; to++ {
		if NodeID(to) == t.cfg.Self {
			continue
		}
		if err := t.send(NodeID(to), round, kind, payload, sig); err != nil {
			return err
		}
	}
	return nil
}

// Step ends this node's round: it sends DONE to every peer, waits (up to
// StepTimeout) for every peer's DONE of the same round, advances, and
// returns the round's deliveries sorted in the simulated network's
// deterministic order. With FailoverQuorum set, the barrier instead
// completes once that many peers have ended the round and the
// SuspectAfter grace for stragglers has elapsed; stragglers are marked
// suspected and skipped by later barriers until they reappear.
func (t *TCP) Step() ([]Message, error) {
	t.mu.Lock()
	r := t.round
	outs := make([]*outConn, 0, len(t.out))
	//csmlint:allow detmap(per-peer DONE fan-out; send order over distinct sockets is I/O scheduling, deliveries are re-sorted deterministically)
	for _, o := range t.out {
		outs = append(outs, o)
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: node %d step: %w", t.cfg.Self, ErrClosed)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].id < outs[j].id })
	done := doneBody(r)
	for _, o := range outs {
		if err := t.writePeer(o, frameDone, done, r); err != nil {
			return nil, err
		}
	}
	// Barrier: peers must end round r before we advance. Timers wake the
	// wait so a dead peer fails the Step (or, in failover mode, gets
	// suspected) instead of hanging it.
	failover := t.cfg.FailoverQuorum > 0
	deadline := time.Now().Add(t.cfg.StepTimeout) //csmlint:allow detsource(liveness timeout for the step barrier; expiry fails the Step, it never reorders deliveries)
	wake := func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	}
	timer := time.AfterFunc(t.cfg.StepTimeout, wake)
	defer timer.Stop()
	var graceOver time.Time
	if failover {
		graceOver = time.Now().Add(t.cfg.SuspectAfter) //csmlint:allow detsource(liveness grace before suspecting stragglers; expiry only shrinks the barrier, deliveries stay sorted)
		grace := time.AfterFunc(t.cfg.SuspectAfter, wake)
		defer grace.Stop()
	}
	var newSuspects []NodeID
	t.mu.Lock()
	for !t.closed {
		arrived := 0
		lateHealthy := 0 // missing peers not (yet) suspected
		missing := make([]NodeID, 0, t.cfg.N)
		for id := 0; id < t.cfg.N; id++ {
			if NodeID(id) == t.cfg.Self {
				continue
			}
			if max, ok := t.doneMax[NodeID(id)]; ok && max >= r {
				arrived++
				continue
			}
			missing = append(missing, NodeID(id))
			if !t.suspect[NodeID(id)] {
				lateHealthy++
			}
		}
		if arrived == t.cfg.N-1 {
			break
		}
		//csmlint:allow detsource(liveness grace before suspecting stragglers; expiry only shrinks the barrier, deliveries stay sorted)
		graceExpired := failover && !time.Now().Before(graceOver)
		if failover && arrived >= t.cfg.FailoverQuorum &&
			(lateHealthy == 0 || graceExpired) {
			for _, id := range missing {
				if !t.suspect[id] {
					t.suspect[id] = true
					newSuspects = append(newSuspects, id)
				}
			}
			break
		}
		//csmlint:allow detsource(liveness timeout for the step barrier; expiry fails the Step, it never reorders deliveries)
		if !time.Now().Before(deadline) {
			t.mu.Unlock()
			return nil, fmt.Errorf("transport: node %d round %d barrier timed out after %v waiting for peers %v",
				t.cfg.Self, r, t.cfg.StepTimeout, missing)
		}
		t.cond.Wait()
	}
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: node %d step: %w", t.cfg.Self, ErrClosed)
	}
	t.round = r + 1
	due := t.buffered[r]
	delete(t.buffered, r)
	delete(t.seen, r)
	t.mu.Unlock()
	for _, id := range newSuspects {
		t.logf("node %d suspects node %d (no DONE for round %d within %v)", t.cfg.Self, id, r, t.cfg.SuspectAfter)
	}
	// The simulator delivers sorted by sender, recipient, kind; recipient
	// is constant here.
	sort.SliceStable(due, func(i, j int) bool {
		if due[i].From != due[j].From {
			return due[i].From < due[j].From
		}
		return due[i].Kind < due[j].Kind
	})
	return due, nil
}

// Close shuts the link down: the listener stops accepting, all
// connections close, and blocked Steps fail with ErrClosed.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	conns := make([]net.Conn, 0, len(t.inConns))
	//csmlint:allow detmap(teardown: close order of inbound connections is irrelevant)
	for _, c := range t.inConns {
		conns = append(conns, c)
	}
	outs := make([]*outConn, 0, len(t.out))
	//csmlint:allow detmap(teardown: close order of outbound connections is irrelevant)
	for _, o := range t.out {
		outs = append(outs, o)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, o := range outs {
		o.mu.Lock()
		if o.conn != nil {
			o.conn.Close()
			o.conn = nil
		}
		o.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}
