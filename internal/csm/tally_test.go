package csm

import (
	"testing"
)

// TestAcceptReplyDeterministicOnCollision is the regression test for the
// client-tally determinism bug: the old implementation iterated the Go map
// and broke at the first key reaching the b+1 threshold, so with two
// qualifying values the accepted output depended on map iteration order.
// acceptReply must pick the highest count, ties broken by the smallest
// canonical wire-byte key — the same answer on every run.
func TestAcceptReplyDeterministicOnCollision(t *testing.T) {
	va := []uint64{1}
	vb := []uint64{2}
	vc := []uint64{3}
	keyA, keyB, keyC := "\x01aaaaaaa", "\x02bbbbbbb", "\x03ccccccc"

	// Two keys over threshold, distinct counts: highest count wins,
	// whatever the map order. Repeat to shake out iteration-order luck.
	for i := 0; i < 64; i++ {
		counts := map[string]int{keyA: 3, keyB: 5, keyC: 1}
		values := map[string][]uint64{keyA: va, keyB: vb, keyC: vc}
		if got := acceptReply(counts, values, 3); got == nil || got[0] != vb[0] {
			t.Fatalf("iteration %d: accepted %v, want highest-count value %v", i, got, vb)
		}
	}
	// Exact tie at the threshold: the smallest wire-byte key wins.
	for i := 0; i < 64; i++ {
		counts := map[string]int{keyB: 4, keyA: 4}
		values := map[string][]uint64{keyA: va, keyB: vb}
		if got := acceptReply(counts, values, 3); got == nil || got[0] != va[0] {
			t.Fatalf("iteration %d: tie broken to %v, want smallest-key value %v", i, got, va)
		}
	}
	// Nothing reaches the threshold: no accepted output.
	if got := acceptReply(map[string]int{keyA: 2, keyB: 2}, map[string][]uint64{keyA: va, keyB: vb}, 3); got != nil {
		t.Fatalf("below-threshold tally accepted %v", got)
	}
	// Empty tally (every node silent).
	if got := acceptReply(map[string]int{}, map[string][]uint64{}, 1); got != nil {
		t.Fatalf("empty tally accepted %v", got)
	}
}

// TestClientPhaseCollidingReplies drives the collision through clientPhase
// itself with crafted decode snapshots: 4 honest nodes split 2-2 between
// two decoded outputs (possible only through adversarial inputs, which is
// exactly when determinism matters most) plus a threshold of 2. The
// accepted value must be the smaller wire key on every run, and the round
// must be flagged incorrect when it disagrees with the oracle.
func TestClientPhaseCollidingReplies(t *testing.T) {
	cfg := baseConfig(2, 9, 1)
	c := newCluster(t, cfg)
	low := []uint64{7}   // smaller wire key
	high := []uint64{9}  // larger wire key
	state := []uint64{0} // audit state, matching the fresh oracle
	mk := func(out []uint64) *nodeDecode[uint64] {
		return &nodeDecode[uint64]{
			outputs:    [][]uint64{out, out},
			nextStates: [][]uint64{state, state},
		}
	}
	decodes := make([]*nodeDecode[uint64], cfg.N)
	decodes[0], decodes[1] = mk(high), mk(high)
	decodes[2], decodes[3] = mk(low), mk(low)
	replies := make([][][]uint64, cfg.K)
	for k := range replies {
		replies[k] = make([][]uint64, cfg.N)
	}
	oracle := [][]uint64{{7}, {9}}
	for i := 0; i < 64; i++ {
		res := &RoundResult[uint64]{}
		c.clientPhase(oracle, replies, decodes, res)
		for k := 0; k < cfg.K; k++ {
			if res.Outputs[k] == nil || res.Outputs[k][0] != low[0] {
				t.Fatalf("iteration %d machine %d: accepted %v, want deterministic %v", i, k, res.Outputs[k], low)
			}
		}
		// Machine 0's oracle output matches the accepted value; machine
		// 1's does not — the audit must flag the round.
		if res.Correct {
			t.Fatalf("iteration %d: colliding round audited as correct", i)
		}
	}
}
