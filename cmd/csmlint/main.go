// Csmlint is the repo's invariant checker: a multichecker over the
// analyzers in internal/lint (detmap, detsource, errstring, walfsync,
// wiremap, shadow). It runs two ways:
//
//	csmlint ./...                   standalone: loads packages itself
//	go vet -vettool=$(pwd)/bin/csmlint ./...   as a vet tool
//
// The vet mode implements the cmd/go unitchecker protocol with no
// dependency on golang.org/x/tools: the go command hands the tool a
// JSON *.cfg describing one compilation unit (file list, import map,
// export data); the tool type-checks the unit, runs the suite, prints
// findings, and writes an (empty — csmlint needs no cross-package
// facts) .vetx file for the build cache.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"codedsm/internal/lint"
	"codedsm/internal/lint/driver"
	"codedsm/internal/lint/load"
)

func main() {
	log := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "csmlint: "+format+"\n", args...)
	}

	fs := flag.NewFlagSet("csmlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csmlint [-tests=false] [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(command -v csmlint) [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, firstSentence(a.Doc))
		}
	}
	version := fs.String("V", "", "print version information (cmd/go tool protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go tool protocol)")
	tests := fs.Bool("tests", true, "also analyze test files (standalone mode)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	switch {
	case *version != "":
		// cmd/go probes `tool -V=full` and uses the reply as the
		// content hash for vet result caching; replicate the shape the
		// x/tools unitchecker prints.
		if *version != "full" {
			log("unsupported flag -V=%s", *version)
			os.Exit(2)
		}
		printVersion()
	case *printFlags:
		// cmd/go probes `tool -flags` to learn which vet flags the
		// tool accepts; csmlint exposes none beyond the protocol ones.
		fmt.Println("[]")
	case fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg"):
		runUnit(fs.Arg(0), log)
	default:
		runStandalone(fs.Args(), *tests, log)
	}
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion answers the cmd/go `-V=full` probe: the reported
// version must change whenever the binary does, so it embeds a hash of
// the executable, exactly as x/tools' unitchecker does.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(progname), string(h.Sum(nil)))
}

// runStandalone loads packages with the in-repo loader and prints
// findings. Exit status: 0 clean, 1 findings, 2 operational error.
func runStandalone(patterns []string, tests bool, log func(string, ...any)) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.AnalyzeModule(".", tests, patterns...)
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		log("%d finding(s)", len(findings))
		os.Exit(1)
	}
}

// vetConfig is the JSON unit description cmd/go hands a vet tool. The
// field set mirrors cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under the go vet driver.
func runUnit(cfgPath string, log func(string, ...any)) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log("parsing %s: %v", cfgPath, err)
		os.Exit(2)
	}
	// csmlint computes no cross-package facts, but the protocol
	// requires the .vetx artifact for the build cache.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("csmlint.vetx\n"), 0o666); err != nil {
				log("%v", err)
				os.Exit(2)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}
	files := cfg.GoFiles
	if !filepath.IsAbs(files[0]) && cfg.Dir != "" {
		files = load.AbsFiles(cfg.Dir, files)
	}
	imp := load.NewExportImporter(cfg.PackageFile, cfg.ImportMap)
	pkg, err := load.Check(cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log("%v", err)
		os.Exit(2)
	}
	findings, err := driver.Analyze(pkg)
	if err != nil {
		log("%v", err)
		os.Exit(2)
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}
