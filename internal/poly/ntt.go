package poly

import (
	"fmt"
	"math/bits"
)

// mulNTT multiplies two nonzero normalized polynomials with the number
// theoretic transform: three transforms of size the next power of two above
// deg(a)+deg(b)+1, O(n log n) field operations.
func (r *Ring[E]) mulNTT(a, b Poly[E]) (Poly[E], error) {
	outLen := len(a) + len(b) - 1
	size := nextPow2(outLen)
	w, err := r.ntt.RootOfUnity(uint64(size))
	if err != nil {
		return nil, err
	}
	fa := make([]E, size)
	fb := make([]E, size)
	copy(fa, a)
	copy(fb, b)
	for i := len(a); i < size; i++ {
		fa[i] = r.f.Zero()
	}
	for i := len(b); i < size; i++ {
		fb[i] = r.f.Zero()
	}
	r.nttTransform(fa, w)
	r.nttTransform(fb, w)
	r.bulk.MulVec(fa, fa, fb)
	if err := r.inverseNTT(fa, w); err != nil {
		return nil, err
	}
	return r.Normalize(fa[:outLen]), nil
}

// nttTransform performs an in-place iterative radix-2 Cooley-Tukey NTT of
// a (whose length must be a power of two) using the primitive len(a)-th
// root of unity w.
func (r *Ring[E]) nttTransform(a []E, w E) {
	n := len(a)
	bitReverse(a)
	for length := 2; length <= n; length <<= 1 {
		// wl = w^(n/length) is a primitive length-th root.
		wl := w
		for m := n; m > length; m >>= 1 {
			wl = r.f.Mul(wl, wl)
		}
		for start := 0; start < n; start += length {
			wn := r.f.One()
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := r.f.Mul(a[start+j+half], wn)
				a[start+j] = r.f.Add(u, v)
				a[start+j+half] = r.f.Sub(u, v)
				wn = r.f.Mul(wn, wl)
			}
		}
	}
}

// inverseNTT inverts nttTransform: transform with w^-1 then scale by n^-1.
func (r *Ring[E]) inverseNTT(a []E, w E) error {
	n := len(a)
	wInv, err := r.f.Inv(w)
	if err != nil {
		return err
	}
	r.nttTransform(a, wInv)
	nInv, err := r.f.Inv(r.intToField(n))
	if err != nil {
		return fmt.Errorf("poly: NTT size divides field characteristic: %w", err)
	}
	r.bulk.ScaleVec(a, nInv, a)
	return nil
}

// bitReverse permutes a into bit-reversed index order.
func bitReverse[E any](a []E) {
	n := len(a)
	shift := 64 - uint(bits.TrailingZeros64(uint64(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(uint64(n-1)))
}
