// Quickstart: run three bank-account state machines on twelve untrusted
// nodes, two of which lie about their computation results, and watch CSM
// decode the correct balances anyway.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"codedsm"
)

func main() {
	gold := codedsm.NewGoldilocks()

	// Three bank accounts (K=3) on twelve nodes (N=12), sized to tolerate
	// b=2 Byzantine nodes; nodes 4 and 9 actually lie.
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(12),
		codedsm.WithMachines(3),
		codedsm.WithFaults(2),
		codedsm.WithByzantineNode(4, codedsm.WrongResult),
		codedsm.WithByzantineNode(9, codedsm.WrongResult),
		codedsm.WithInitialStates([][]uint64{{1000}, {2000}, {3000}}),
		codedsm.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Deposits for each account, three rounds.
	deposits := [][][]uint64{
		{{100}, {200}, {300}},
		{{10}, {20}, {30}},
		{{1}, {2}, {3}},
	}
	for r, cmds := range deposits {
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: correct=%v, liars caught=%v\n", r, res.Correct, res.FaultyDetected)
		for k, out := range res.Outputs {
			fmt.Printf("  account %d balance: %d\n", k, out[0])
		}
	}
	fmt.Println("\nEach node stored just ONE coded state (storage efficiency γ = 3),")
	fmt.Println("yet the cluster survived 2 Byzantine nodes (security β = 2).")
}
