package csm

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/nodeapi"
	"codedsm/internal/transport"
	"codedsm/internal/wal"
)

// runDurableCluster opens a cluster over dir, runs the given workload
// slice, closes it, and returns the per-round outputs.
func runDurableCluster(t *testing.T, dir string, workload [][][]uint64, opts ...Option) [][][]uint64 {
	t.Helper()
	gold := field.NewGoldilocks()
	all := append([]Option{
		WithNodes(remoteN), WithMachines(remoteK), WithSeed(remoteSeed),
		WithDurability(dir, SnapshotEvery(2)),
	}, opts...)
	c, err := Open(gold, remoteTransition, all...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Run(workload)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]uint64, len(results))
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("round %d not correct", r)
		}
		out[r] = res.Outputs
	}
	return out
}

// TestClusterDurableRestartContinues is the in-process restart contract:
// a cluster closed after R1 rounds and reopened over the same directory
// resumes at round R1 and its continued outputs are bit-identical to an
// uninterrupted run — including under a Byzantine node, whose garbage
// draws differ after a restart but never reach the decoded outputs.
func TestClusterDurableRestartContinues(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	// One lying node, budgeted: N=5, b=1 keeps K=2 within capacity.
	byz := []Option{WithNodes(5), WithFaults(1), WithByzantineNode(2, WrongResult)}

	want := runDurableCluster(t, t.TempDir(), workload, byz...)

	dir := t.TempDir()
	first := runDurableCluster(t, dir, workload[:3], byz...)

	c, err := Open(gold, remoteTransition,
		append([]Option{WithNodes(remoteN), WithMachines(remoteK), WithSeed(remoteSeed),
			WithDurability(dir, SnapshotEvery(2))}, byz...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Round() != 3 {
		t.Fatalf("reopened cluster at round %d, want 3", c.Round())
	}
	results, err := c.Run(workload[3:])
	if err != nil {
		t.Fatal(err)
	}
	got := append([][][]uint64{}, first...)
	for _, res := range results {
		got = append(got, res.Outputs)
	}
	requireIdentical(t, 0, got, want)

	// The oracle machines must have been restored too: their states
	// after the full workload match an uninterrupted run's.
	ref, err := Open(gold, remoteTransition,
		append([]Option{WithNodes(remoteN), WithMachines(remoteK), WithSeed(remoteSeed)}, byz...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(workload); err != nil {
		t.Fatal(err)
	}
	gotStates, wantStates := c.OracleStates(), ref.OracleStates()
	for k := range wantStates {
		for j := range wantStates[k] {
			if gotStates[k][j] != wantStates[k][j] {
				t.Fatalf("restored oracle machine %d state diverged at %d", k, j)
			}
		}
	}
}

// TestClusterDurabilityOffBitIdentical pins the zero-interference
// contract: the same seeded run with and without durability produces
// bit-identical outputs (durability never touches the cluster RNG).
func TestClusterDurabilityOffBitIdentical(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	byz := []Option{WithNodes(5), WithFaults(1), WithByzantineNode(1, Equivocate)}

	plain, err := Open(gold, remoteTransition,
		append([]Option{WithNodes(remoteN), WithMachines(remoteK), WithSeed(remoteSeed)}, byz...)...)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := plain.Run(workload)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][][]uint64, len(wantRes))
	for r, res := range wantRes {
		want[r] = res.Outputs
	}
	got := runDurableCluster(t, t.TempDir(), workload, byz...)
	requireIdentical(t, 0, got, want)
}

// TestClusterDurableCrashMidAppendRecovers drives the fault-injection
// hook through the in-process engine: a crash torn mid-WAL-append
// unwinds the run, and a reopen over the directory truncates the torn
// record, replays the durable prefix, and finishes the workload with
// outputs bit-identical to an uninterrupted run.
func TestClusterDurableCrashMidAppendRecovers(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := runDurableCluster(t, t.TempDir(), workload)

	dir := t.TempDir()
	open := func() *Cluster[uint64] {
		c, err := Open(gold, remoteTransition,
			WithNodes(remoteN), WithMachines(remoteK), WithSeed(remoteSeed),
			WithDurability(dir, SnapshotEvery(2)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := open()
	if _, err := c.Run(workload[:2]); err != nil {
		t.Fatal(err)
	}
	// Crash the next batch's write-ahead append mid-record.
	wal.SetCrashHook(func(p wal.CrashPoint) {
		if p == wal.CrashMidRecord {
			panic("injected crash")
		}
	})
	func() {
		defer func() {
			wal.SetCrashHook(nil)
			if recover() == nil {
				t.Fatal("crash hook never fired")
			}
		}()
		c.Run(workload[2:3])
	}()
	c.Close() // the dying process's fd goes away; the torn tail stays

	c2 := open()
	defer c2.Close()
	if c2.Round() != 2 {
		t.Fatalf("recovered at round %d, want 2 (torn batch must not count)", c2.Round())
	}
	results, err := c2.Run(workload[2:])
	if err != nil {
		t.Fatal(err)
	}
	got := append([][][]uint64{}, want[:2]...)
	for _, res := range results {
		got = append(got, res.Outputs)
	}
	requireIdentical(t, 0, got, want)
}

// TestClusterDurabilityRejections pins the layer's config errors.
func TestClusterDurabilityRejections(t *testing.T) {
	gold := field.NewGoldilocks()
	if _, err := Open(gold, remoteTransition,
		WithNodes(remoteN), WithMachines(remoteK), WithDurability(t.TempDir()), WithDelegated(),
	); err == nil {
		t.Error("durability + delegated accepted")
	}
	if _, err := Open(gold, remoteTransition,
		WithNodes(remoteN), WithMachines(remoteK), WithDurability(""),
	); err == nil {
		t.Error("empty data dir accepted")
	}
	// A directory holding another cluster shape is refused, not misread.
	dir := t.TempDir()
	runDurableCluster(t, dir, RandomWorkload[uint64](gold, 2, remoteK, 1, 1))
	if _, err := Open(gold, remoteTransition,
		WithNodes(remoteN+2), WithMachines(remoteK), WithSeed(1), WithDurability(dir),
	); err == nil {
		t.Error("snapshot for N=4 accepted by an N=6 cluster")
	}
}

// ---- multi-process (NodeProcess) durability over local links ----

// durableSession runs one lock-step session over fresh local links:
// every node opens its durable store under dirs[i], runs Recover, and
// then node 0 leads the given workload slice. It returns the final
// digest of every node.
func durableSession(t *testing.T, dirs []string, workload [][][]uint64, batchSize int) []string {
	t.Helper()
	gold := field.NewGoldilocks()
	net, err := transport.New(transport.Config{N: remoteN, Mode: transport.Sync, Seed: remoteSeed})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]string, remoteN)
	errs := make([]error, remoteN)
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			p, err := NewNodeProcess(RemoteConfig[uint64]{
				BaseField:     gold,
				NewTransition: remoteTransition,
				K:             remoteK,
				MaxFaults:     remoteFaults,
				Durability:    &DurabilityConfig{Dir: dirs[i], SnapshotEvery: 2},
			}, l)
			if err != nil {
				errs[i] = err
				return
			}
			defer p.Close()
			if err := p.Recover(); err != nil {
				errs[i] = err
				return
			}
			resume := p.Round()
			if resume > len(workload) {
				errs[i] = errors.New("recovered past the workload")
				return
			}
			if p.IsSequencer() {
				_, errs[i] = p.Lead(workload[resume:], batchSize)
			} else {
				_, errs[i] = p.Follow()
			}
			digests[i] = p.DigestSum()
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("durable node %d: %v", i, err)
		}
	}
	return digests
}

// referenceDigest computes the canonical run digest of the oracle
// cluster on the same workload.
func referenceDigest(t *testing.T, workload [][][]uint64) string {
	t.Helper()
	d := nodeapi.NewDigest()
	for r, outs := range oracleOutputs(t, workload) {
		d.AddRound(r, outs)
	}
	return d.Sum()
}

func nodeDirs(t *testing.T) []string {
	t.Helper()
	base := t.TempDir()
	dirs := make([]string, remoteN)
	for i := range dirs {
		dirs[i] = filepath.Join(base, "node", string(rune('0'+i)))
	}
	return dirs
}

// copyDir snapshots a node's data directory (for rewinding it later).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
	return dst
}

// restoreDir replaces a node's data directory with an earlier copy.
func restoreDir(t *testing.T, dir, backup string) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.CopyFS(dir, os.DirFS(backup)); err != nil {
		t.Fatal(err)
	}
}

// TestNodeProcessDurableRestart: all nodes stop after R1 rounds and a
// fresh session over the same directories resumes — aligned, so Recover
// is a handshake no-op — and finishes with the reference digest.
func TestNodeProcessDurableRestart(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := referenceDigest(t, workload)
	dirs := nodeDirs(t)

	durableSession(t, dirs, workload[:3], 2)
	digests := durableSession(t, dirs, workload, 2)
	for i, d := range digests {
		if d != want {
			t.Fatalf("node %d digest %s, want %s", i, d, want)
		}
	}
}

// TestNodeProcessRecoverCatchUp rewinds one node a round behind the
// rest (a crash that lost its last applied record): with >= K
// up-to-date peers, Recover repairs its share from their broadcast
// deltas and absorbs the missing outputs, and the finished run's
// digests all match the reference.
func TestNodeProcessRecoverCatchUp(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := referenceDigest(t, workload)
	dirs := nodeDirs(t)

	durableSession(t, dirs, workload[:3], 1)
	backup := copyDir(t, dirs[3])
	durableSession(t, dirs, workload[:4], 1)
	restoreDir(t, dirs[3], backup) // node 3 is now one round stale

	digests := durableSession(t, dirs, workload, 1)
	for i, d := range digests {
		if d != want {
			t.Fatalf("node %d digest %s, want %s", i, d, want)
		}
	}
}

// TestNodeProcessRecoverRollback rewinds all but one node: fewer than K
// up-to-date shares remain, so no repair interpolation is possible and
// the ahead node must roll back to the floor round from its retained
// applied window. Deterministic re-execution then lands every node on
// the reference digest.
func TestNodeProcessRecoverRollback(t *testing.T) {
	if remoteK < 2 {
		t.Skip("rollback needs K >= 2 so one share is below the repair threshold")
	}
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := referenceDigest(t, workload)
	dirs := nodeDirs(t)

	durableSession(t, dirs, workload[:3], 1)
	backups := make([]string, remoteN)
	for i := 1; i < remoteN; i++ {
		backups[i] = copyDir(t, dirs[i])
	}
	durableSession(t, dirs, workload[:4], 1)
	for i := 1; i < remoteN; i++ {
		restoreDir(t, dirs[i], backups[i]) // only node 0 is at round 4
	}

	digests := durableSession(t, dirs, workload, 1)
	for i, d := range digests {
		if d != want {
			t.Fatalf("node %d digest %s, want %s", i, d, want)
		}
	}
}

// TestNodeProcessDurableTornTail: garbage appended to a node's current
// WAL segment (a torn write at kill time) must be truncated on reopen
// and the node still recovers and completes with the reference digest.
func TestNodeProcessDurableTornTail(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := referenceDigest(t, workload)
	dirs := nodeDirs(t)

	durableSession(t, dirs, workload[:3], 2)
	// Tear the tail of node 2's newest segment.
	segs, err := filepath.Glob(filepath.Join(dirs[2], "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dirs[2], err)
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	digests := durableSession(t, dirs, workload, 2)
	for i, d := range digests {
		if d != want {
			t.Fatalf("node %d digest %s, want %s", i, d, want)
		}
	}
}
