package lcc

import (
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/mvpoly"
	"codedsm/internal/poly"
)

func goldRing() *poly.Ring[uint64] { return poly.NewRing[uint64](field.NewGoldilocks()) }

func newTestCode(t *testing.T, k, n int) *Code[uint64] {
	t.Helper()
	c, err := New(goldRing(), k, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	ring := goldRing()
	if _, err := New(ring, 0, 5); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := New(ring, 6, 5); err == nil {
		t.Error("N<K should fail")
	}
	if _, err := NewWithPoints(ring, []uint64{1, 2}, []uint64{2, 3, 4}); err == nil {
		t.Error("alpha colliding with omega should fail")
	}
	if _, err := NewWithPoints(ring, []uint64{1, 1}, []uint64{3, 4, 5}); err == nil {
		t.Error("duplicate omegas should fail")
	}
	if _, err := NewWithPoints(ring, []uint64{1}, []uint64{3, 3}); err == nil {
		t.Error("duplicate alphas should fail")
	}
	c := newTestCode(t, 3, 10)
	if c.K() != 3 || c.N() != 10 || c.StorageEfficiency() != 3 {
		t.Errorf("K=%d N=%d gamma=%d", c.K(), c.N(), c.StorageEfficiency())
	}
}

func TestGF2mFieldTooSmall(t *testing.T) {
	f, err := field.NewGF2m(4) // 16 elements
	if err != nil {
		t.Fatal(err)
	}
	ring := poly.NewRing[uint64](f)
	if _, err := New(ring, 8, 10); err == nil {
		t.Error("K+N=18 > 16 should fail — Appendix A requires 2^m >= N (+K here)")
	}
	if _, err := New(ring, 4, 12); err != nil {
		t.Errorf("K+N=16 should fit exactly: %v", err)
	}
}

func TestCoeffsMatchLagrangeFormula(t *testing.T) {
	// c_ik must equal the direct product formula from equation (7).
	c := newTestCode(t, 4, 9)
	f := field.NewGoldilocks()
	for i := 0; i < c.N(); i++ {
		for k := 0; k < c.K(); k++ {
			want := f.One()
			for l := 0; l < c.K(); l++ {
				if l == k {
					continue
				}
				num := f.Sub(c.Alphas()[i], c.Omegas()[l])
				den := f.Sub(c.Omegas()[k], c.Omegas()[l])
				denInv, err := f.Inv(den)
				if err != nil {
					t.Fatal(err)
				}
				want = f.Mul(want, f.Mul(num, denInv))
			}
			if got := c.Coeffs()[i][k]; got != want {
				t.Fatalf("c[%d][%d] = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestEncodeAtIsPolynomialEvaluation(t *testing.T) {
	// S̃_i must equal u(α_i) where u interpolates (ω_k, S_k).
	rng := rand.New(rand.NewPCG(1, 2))
	c := newTestCode(t, 5, 12)
	ring := goldRing()
	states := field.RandVec[uint64](ring.Field(), rng, 5)
	u, err := ring.Interpolate(c.Omegas(), states)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		got, err := c.EncodeAt(states, i)
		if err != nil {
			t.Fatal(err)
		}
		if want := ring.Eval(u, c.Alphas()[i]); got != want {
			t.Fatalf("node %d: coded state %d != u(alpha)=%d", i, got, want)
		}
	}
	if _, err := c.EncodeAt(states, -1); err == nil {
		t.Error("negative node index should fail")
	}
	if _, err := c.EncodeAt(states, 12); err == nil {
		t.Error("out-of-range node index should fail")
	}
}

func TestEncodeVectorsFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, tc := range []struct{ k, n, l int }{{1, 3, 1}, {4, 10, 3}, {8, 30, 5}} {
		c := newTestCode(t, tc.k, tc.n)
		values := make([][]uint64, tc.k)
		for i := range values {
			values[i] = field.RandVec[uint64](c.f, rng, tc.l)
		}
		naive, err := c.EncodeVectors(values)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := c.EncodeVectorsFast(values)
		if err != nil {
			t.Fatal(err)
		}
		for i := range naive {
			if !field.VecEqual(c.f, naive[i], fast[i]) {
				t.Fatalf("k=%d n=%d: node %d fast != naive", tc.k, tc.n, i)
			}
		}
	}
}

func TestEncodeVectorsValidation(t *testing.T) {
	c := newTestCode(t, 2, 5)
	if _, err := c.EncodeVectors([][]uint64{{1}}); err == nil {
		t.Error("wrong K should fail")
	}
	if _, err := c.EncodeVectors([][]uint64{{1, 2}, {3}}); err == nil {
		t.Error("ragged vectors should fail")
	}
}

// applyTransition evaluates a transition polynomial f(s, x) componentwise.
func applyTransition(t *testing.T, f field.Field[uint64], polys []mvpoly.Poly[uint64], s, x []uint64) []uint64 {
	t.Helper()
	args := append(append([]uint64{}, s...), x...)
	out := make([]uint64, len(polys))
	for i, p := range polys {
		v, err := p.Eval(f, args)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func TestCodedExecutionRoundTrip(t *testing.T) {
	// Full Section 5 flow: encode states and commands, run a degree-2
	// polynomial transition on coded data at every node, corrupt up to b
	// results, decode, compare against the uncoded execution.
	gold := field.NewGoldilocks()
	// f(s, x) = (s + x^2, s*x): state and output, both degree <= 2.
	vars := []string{"s", "x"}
	next, err := mvpoly.Parse[uint64](gold, "s + x^2", vars)
	if err != nil {
		t.Fatal(err)
	}
	outp, err := mvpoly.Parse[uint64](gold, "s*x", vars)
	if err != nil {
		t.Fatal(err)
	}
	polys := []mvpoly.Poly[uint64]{next, outp}
	const d = 2

	rng := rand.New(rand.NewPCG(5, 6))
	for _, tc := range []struct{ k, n int }{{2, 10}, {3, 16}, {5, 40}} {
		c := newTestCode(t, tc.k, tc.n)
		b := SyncMaxFaults(tc.n, tc.k, d)
		states := make([][]uint64, tc.k)
		cmds := make([][]uint64, tc.k)
		for i := range states {
			states[i] = field.RandVec[uint64](gold, rng, 1)
			cmds[i] = field.RandVec[uint64](gold, rng, 1)
		}
		codedStates, err := c.EncodeVectors(states)
		if err != nil {
			t.Fatal(err)
		}
		codedCmds, err := c.EncodeVectorsFast(cmds)
		if err != nil {
			t.Fatal(err)
		}
		// Every node computes f on its coded data.
		results := make([][]uint64, tc.n)
		for i := 0; i < tc.n; i++ {
			results[i] = applyTransition(t, gold, polys, codedStates[i], codedCmds[i])
		}
		// Corrupt b nodes.
		corrupted := rng.Perm(tc.n)[:b]
		for _, i := range corrupted {
			results[i] = field.RandVec[uint64](gold, rng, len(results[i]))
		}
		dec, err := c.DecodeOutputs(results, d)
		if err != nil {
			t.Fatalf("k=%d n=%d b=%d: %v", tc.k, tc.n, b, err)
		}
		for k := 0; k < tc.k; k++ {
			want := applyTransition(t, gold, polys, states[k], cmds[k])
			if !field.VecEqual(gold, dec.Outputs[k], want) {
				t.Fatalf("k=%d n=%d: machine %d decoded %v, want %v", tc.k, tc.n, k, dec.Outputs[k], want)
			}
		}
		if len(dec.FaultyNodes) > b {
			t.Fatalf("identified %d faulty nodes, injected %d", len(dec.FaultyNodes), b)
		}
	}
}

func TestDecodeOutputsSubset(t *testing.T) {
	// Partially synchronous: b nodes silent, b of the received wrong.
	gold := field.NewGoldilocks()
	rng := rand.New(rand.NewPCG(7, 8))
	const k, d = 2, 1
	n := 16
	b := PSyncMaxFaults(n, k, d) // 3b <= N - d(K-1) - 1 = 14 -> b = 4
	c := newTestCode(t, k, n)
	states := [][]uint64{field.RandVec[uint64](gold, rng, 1), field.RandVec[uint64](gold, rng, 1)}
	coded, err := c.EncodeVectors(states)
	if err != nil {
		t.Fatal(err)
	}
	// Identity "transition": results are the coded states themselves (d=1).
	present := rng.Perm(n)[: n-b : n-b]
	results := make([][]uint64, len(present))
	for i, idx := range present {
		results[i] = append([]uint64{}, coded[idx]...)
	}
	for i := 0; i < b; i++ {
		results[i] = field.RandVec[uint64](gold, rng, 1)
	}
	dec, err := c.DecodeOutputsSubset(present, results, d)
	if err != nil {
		t.Fatal(err)
	}
	for ki := 0; ki < k; ki++ {
		if !field.VecEqual(gold, dec.Outputs[ki], states[ki]) {
			t.Fatalf("machine %d: got %v want %v", ki, dec.Outputs[ki], states[ki])
		}
	}
	if _, err := c.DecodeOutputsSubset(nil, results, d); err == nil {
		t.Error("nil indices should fail")
	}
}

func TestDecodeBeyondBoundFails(t *testing.T) {
	gold := field.NewGoldilocks()
	rng := rand.New(rand.NewPCG(9, 10))
	const k, n, d = 3, 10, 1
	c := newTestCode(t, k, n)
	b := SyncMaxFaults(n, k, d)
	states := make([][]uint64, k)
	for i := range states {
		states[i] = field.RandVec[uint64](gold, rng, 1)
	}
	coded, err := c.EncodeVectors(states)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rng.Perm(n)[:b+1] {
		coded[i] = field.RandVec[uint64](gold, rng, 1)
	}
	if dec, err := c.DecodeOutputs(coded, d); err == nil {
		// A silent miscorrection is possible in principle; it must at
		// least differ from the truth.
		same := true
		for ki := range states {
			if !field.VecEqual(gold, dec.Outputs[ki], states[ki]) {
				same = false
			}
		}
		if same {
			t.Fatal("decoded correctly with b+1 corruptions")
		}
	}
}

func TestBoundHelpers(t *testing.T) {
	cases := []struct {
		n, b, d int
		sync    int
		psync   int
	}{
		{31, 5, 1, 21, 16},
		{31, 5, 2, 11, 8},
		{31, 5, 3, 7, 6},
		{10, 5, 1, 0, 0},
		{10, 0, 1, 10, 10},
		{12, 2, 0, 8, 6}, // d<1 clamps to 1
	}
	for _, tc := range cases {
		if got := SyncMaxMachines(tc.n, tc.b, tc.d); got != tc.sync {
			t.Errorf("SyncMaxMachines(%d,%d,%d) = %d, want %d", tc.n, tc.b, tc.d, got, tc.sync)
		}
		if got := PSyncMaxMachines(tc.n, tc.b, tc.d); got != tc.psync {
			t.Errorf("PSyncMaxMachines(%d,%d,%d) = %d, want %d", tc.n, tc.b, tc.d, got, tc.psync)
		}
	}
	// Fault bounds are inverse to machine bounds: with K = SyncMaxMachines,
	// at least b faults are tolerated.
	for n := 5; n <= 40; n += 7 {
		for d := 1; d <= 3; d++ {
			for b := 0; b*2 < n; b++ {
				k := SyncMaxMachines(n, b, d)
				if k < 1 {
					continue
				}
				if got := SyncMaxFaults(n, k, d); got < b {
					t.Errorf("SyncMaxFaults(%d,%d,%d) = %d < b=%d", n, k, d, got, b)
				}
			}
		}
	}
	if SyncMaxFaults(3, 10, 1) != 0 || PSyncMaxFaults(3, 10, 1) != 0 {
		t.Error("negative fault bounds must clamp to 0")
	}
}

func TestResultDim(t *testing.T) {
	c := newTestCode(t, 5, 20)
	if got := c.ResultDim(2); got != 9 {
		t.Errorf("ResultDim(2) = %d, want 9", got)
	}
	if got := c.ResultDim(0); got != 5 {
		t.Errorf("ResultDim(0) = %d, want clamp to d=1: 5", got)
	}
}

func TestStateUpdatePreservesCoding(t *testing.T) {
	// Remark 4 / equation at end of Section 5.2: after decoding, node i
	// updates S̃_i(t+1) = Σ_k c_ik Ŝ_k(t+1); re-encoding decoded states must
	// equal direct encoding of the true next states.
	gold := field.NewGoldilocks()
	rng := rand.New(rand.NewPCG(11, 12))
	c := newTestCode(t, 3, 9)
	next := make([][]uint64, 3)
	for i := range next {
		next[i] = field.RandVec[uint64](gold, rng, 2)
	}
	enc1, err := c.EncodeVectors(next)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := c.EncodeVectorsFast(next)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc1 {
		if !field.VecEqual(gold, enc1[i], enc2[i]) {
			t.Fatal("state update differs between naive and fast encoders")
		}
	}
}
