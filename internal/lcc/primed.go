package lcc

import (
	"slices"
	"sync/atomic"

	"codedsm/internal/poly"
	"codedsm/internal/pool"
)

// Primed is a decode accelerator for repeated decodes against a stable
// fault pattern — the steady state of a batched execution round, where the
// same Byzantine nodes corrupt every micro-step of the batch (Section 5.2's
// decoder runs once; subsequent micro-steps reuse its verdict).
//
// Instead of running the full noisy-interpolation decoder (interpolation
// plus an extended-Euclidean error-locator solve per component), a primed
// decode excludes the suspected rows, interpolates the remaining
// ("trusted") rows directly, and checks the candidate against every
// received coordinate. Soundness does not rest on the suspicion being
// right: a candidate polynomial of degree < dim that matches all trusted
// rows agrees with the true result polynomial on at least
// |trusted| - maxFaults coordinates, and the capacity conditions of
// Table 2 (2b+1 <= N - d(K-1) synchronous, 3b+1 <= N - d(K-1) partially
// synchronous) make that at least dim, forcing the two polynomials equal.
// NewPrimed therefore refuses to prime when |trusted| < dim + maxFaults,
// and Decode reports ok=false — caller falls back to the full decoder —
// whenever a component's trusted interpolation exceeds the result degree
// (a suspect turned honest, or a new liar appeared among the trusted rows).
type Primed[E comparable] struct {
	code      *Code[E]
	dim       int
	maxFaults int
	indices   []int // node index per received row; nil means the full 0..N-1
	suspects  []int // node indices excluded from interpolation (sorted)
	rows      int
	trusted   []int // row positions (not node indices) used for interpolation

	trustedTree *poly.SubproductTree[E] // over the trusted rows' points
	rowTree     *poly.SubproductTree[E] // over all received rows' points

	colScratch []E // column-major transpose, reused across Decode calls
}

// NewPrimed builds a primed decoder for the given received-row layout
// (indices as in DecodeOutputsSubset; nil for the full node set), suspected
// node set, transition degree, and fault budget. It returns (nil, nil)
// when the layout is ineligible — too few unsuspected rows for the
// self-verifying fast path — in which case callers must use the full
// decoder.
func (c *Code[E]) NewPrimed(indices, suspects []int, degree, maxFaults int) (*Primed[E], error) {
	n := len(c.alphas)
	rows := n
	if indices != nil && !isFullSet(indices, n) {
		rows = len(indices)
	} else {
		indices = nil
	}
	dim := c.ResultDim(degree)
	suspect := make(map[int]bool, len(suspects))
	for _, s := range suspects {
		suspect[s] = true
	}
	trusted := make([]int, 0, rows)
	pts := make([]E, 0, rows)
	rowPts := make([]E, rows)
	for r := 0; r < rows; r++ {
		node := r
		if indices != nil {
			node = indices[r]
		}
		rowPts[r] = c.alphas[node]
		if suspect[node] {
			continue
		}
		trusted = append(trusted, r)
		pts = append(pts, c.alphas[node])
	}
	if len(trusted) < dim+maxFaults {
		return nil, nil // not enough trusted rows to self-verify
	}
	p := &Primed[E]{
		code:      c,
		dim:       dim,
		maxFaults: maxFaults,
		suspects:  slices.Clone(suspects),
		rows:      rows,
		trusted:   trusted,
	}
	slices.Sort(p.suspects)
	if indices != nil {
		p.indices = slices.Clone(indices)
	}
	p.trustedTree = poly.NewSubproductTree(c.ring, pts)
	if indices == nil {
		p.rowTree = c.alphaTree
	} else {
		p.rowTree = poly.NewSubproductTree(c.ring, rowPts)
	}
	return p, nil
}

// Matches reports whether this primed decoder was built for exactly the
// given received-row layout and suspect set (both as NewPrimed received
// them; suspects in any order).
func (p *Primed[E]) Matches(indices, suspects []int) bool {
	if indices != nil && isFullSet(indices, len(p.code.alphas)) {
		indices = nil
	}
	if !slices.Equal(p.indices, indices) {
		return false
	}
	if len(suspects) != len(p.suspects) {
		return false
	}
	s := suspects
	if !slices.IsSorted(s) { // the steady-state caller passes sorted sets
		s = slices.Clone(s)
		slices.Sort(s)
	}
	return slices.Equal(s, p.suspects)
}

// Decode attempts the primed fast path on a received results matrix shaped
// exactly like the layout the decoder was primed for. ok=false means some
// component could not be certified (the suspect set no longer explains the
// corruption pattern) and the caller must run the full decoder; the
// returned result is nil in that case. On ok=true the decode is exactly
// what the full decoder would have produced: the capacity precondition
// enforced at priming time makes the trusted interpolation provably equal
// to the true result polynomial, and FaultyNodes is recomputed from scratch
// against every received row (a suspect that sent a clean value this
// micro-step is not accused).
//
// A Primed belongs to one decoding node: Decode reuses internal scratch
// and must not be called concurrently on the same instance (the component
// fan-out inside one call is fine).
func (p *Primed[E]) Decode(results [][]E, workers int) (*DecodeResult[E], bool, error) {
	c := p.code
	l, err := c.vectorLen(results, p.rows)
	if err != nil {
		return nil, false, err
	}
	k := len(c.omegas)
	outputs := flatOutputs[E](k, l)
	p.colScratch = transposeColMajor(results, p.rows, l, p.colScratch)
	colMajor := p.colScratch
	f := c.f
	faultyByComponent := make([][]int, l)
	var fallback atomic.Bool
	type scratch struct {
		trusted   []E
		corrected []E
		omega     []E
	}
	scratches := make([]scratch, pool.Clamp(workers, l))
	err = pool.RunIndexed(workers, l, func(worker, j int) error {
		if fallback.Load() {
			return nil // some component already failed: short-circuit
		}
		word := colMajor[j*p.rows : (j+1)*p.rows]
		sc := &scratches[worker]
		if sc.trusted == nil {
			sc.trusted = make([]E, len(p.trusted))
			sc.corrected = make([]E, p.rows)
			sc.omega = make([]E, k)
		}
		for i, r := range p.trusted {
			sc.trusted[i] = word[r]
		}
		cand, ierr := p.trustedTree.Interpolate(sc.trusted)
		if ierr != nil {
			return ierr
		}
		if c.ring.Deg(cand) >= p.dim {
			fallback.Store(true) // a trusted row is corrupted: not certifiable
			return nil
		}
		if eerr := p.rowTree.EvalManyInto(sc.corrected, cand); eerr != nil {
			return eerr
		}
		var errorsAt []int
		for r := 0; r < p.rows; r++ {
			if !f.Equal(sc.corrected[r], word[r]) {
				node := r
				if p.indices != nil {
					node = p.indices[r]
				}
				errorsAt = append(errorsAt, node)
			}
		}
		if len(errorsAt) > p.maxFaults {
			// More corrupted rows than the budget explains: the candidate
			// cannot be certified (and under the capacity precondition this
			// means a trusted row lied consistently enough to slip through
			// the degree test — impossible for degree < dim, but cheap to
			// keep as a hard stop).
			fallback.Store(true)
			return nil
		}
		c.ring.EvalManyInto(sc.omega, cand, c.omegas)
		for ki := 0; ki < k; ki++ {
			outputs[ki][j] = sc.omega[ki]
		}
		faultyByComponent[j] = errorsAt
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	if fallback.Load() {
		return nil, false, nil
	}
	return &DecodeResult[E]{Outputs: outputs, FaultyNodes: mergeFaulty(faultyByComponent)}, true, nil
}
