package replication

import (
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

var gold = field.NewGoldilocks()

func bankFactory(f field.Field[uint64]) (*sm.Transition[uint64], error) {
	return sm.NewBank(f)
}

func cmdsFor(k int, base uint64) [][]uint64 {
	out := make([][]uint64, k)
	for i := range out {
		out[i] = []uint64{base + uint64(i)}
	}
	return out
}

func TestFullReplicationHonest(t *testing.T) {
	c, err := NewFull(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 3, N: 7, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Security() != 3 || c.StorageEfficiency() != 1 {
		t.Errorf("beta=%d gamma=%f", c.Security(), c.StorageEfficiency())
	}
	for r := 0; r < 4; r++ {
		res, err := c.ExecuteRound(cmdsFor(3, uint64(r*10)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d incorrect with no faults", r)
		}
	}
	if c.OpCounts().Total() == 0 {
		t.Error("no ops counted")
	}
	want := c.OracleStates()
	if want[0][0] != 0+10+20+30 {
		t.Errorf("oracle state %v", want[0])
	}
}

func TestFullReplicationToleratesMinority(t *testing.T) {
	byz := map[int]Behavior{0: Colluding, 2: Crash, 5: Colluding}
	c, err := NewFull(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 2, N: 7,
		Byzantine: byz, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecuteRound(cmdsFor(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("full replication failed below majority")
	}
}

func TestFullReplicationMajorityCorruptionFails(t *testing.T) {
	// 4 colluding of 7 > (N-1)/2 = 3: the colluding lie gathers 4 >= b+1
	// matching votes and wins.
	byz := map[int]Behavior{0: Colluding, 1: Colluding, 2: Colluding, 3: Colluding}
	c, err := NewFull(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 1, N: 7,
		Byzantine: byz, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecuteRound(cmdsFor(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("majority corruption must defeat full replication")
	}
}

func TestPartialReplicationStructure(t *testing.T) {
	c, err := NewPartial(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 3, N: 12, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.GroupSize() != 4 {
		t.Errorf("q = %d", c.GroupSize())
	}
	if c.GroupOf(0) != 0 || c.GroupOf(5) != 1 || c.GroupOf(11) != 2 {
		t.Error("group assignment wrong")
	}
	if c.Security() != 1 { // (4-1)/2
		t.Errorf("beta = %d", c.Security())
	}
	if c.StorageEfficiency() != 3 {
		t.Errorf("gamma = %f", c.StorageEfficiency())
	}
	res, err := c.ExecuteRound(cmdsFor(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("honest partial replication incorrect")
	}
	if _, err := NewPartial(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 3, N: 10,
	}); err == nil {
		t.Error("N not divisible by K should fail")
	}
}

func TestPartialReplicationConcentratedAttack(t *testing.T) {
	// The paper's Section 3 point: with K groups of q nodes, corrupting
	// q/2+1 = 3 nodes (of N=12!) defeats one machine — partial
	// replication's security is Θ(N/K), not Θ(N).
	const n, k, target = 12, 3, 1
	byz, err := ConcentratedAttack(n, k, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(byz) != 3 {
		t.Fatalf("attack size %d, want q/2+1=3", len(byz))
	}
	c, err := NewPartial(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: k, N: n,
		Byzantine: byz, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecuteRound(cmdsFor(k, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("concentrated attack must defeat partial replication")
	}
	// Machines outside the captured group stay correct.
	if res.Outputs[0] == nil || res.Outputs[2] == nil {
		t.Error("uncaptured machines should still deliver")
	}
	if _, err := ConcentratedAttack(10, 3, 0); err == nil {
		t.Error("non-divisible attack config should fail")
	}
	if _, err := ConcentratedAttack(12, 3, 5); err == nil {
		t.Error("bad target should fail")
	}
}

func TestPartialSyncSecurityBounds(t *testing.T) {
	c, err := NewFull(Config[uint64]{
		BaseField: gold, NewTransition: bankFactory, K: 1, N: 10,
		Mode: transport.PartialSync, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Security() != 3 { // (10-1)/3
		t.Errorf("psync beta = %d", c.Security())
	}
}

func TestRandomAllocationStaticVsDynamic(t *testing.T) {
	// Section 7: same budget q/2+1; a static adversary almost never
	// captures a group, a dynamic one always does.
	const n, k = 40, 10 // q = 4, need 3 to capture
	budget := 3
	static := RandomAllocationExperiment{N: n, K: k, Budget: budget, Kind: StaticAdversary, Seed: 7}
	dynamic := RandomAllocationExperiment{N: n, K: k, Budget: budget, Kind: DynamicAdversary, Seed: 7}
	fracStatic, err := static.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	fracDynamic, err := dynamic.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if fracDynamic != 1.0 {
		t.Errorf("dynamic adversary capture rate %.2f, want 1.0", fracDynamic)
	}
	if fracStatic > 0.2 {
		t.Errorf("static adversary capture rate %.2f suspiciously high", fracStatic)
	}
	t.Logf("capture rates: static=%.3f dynamic=%.3f (budget %d of N=%d)", fracStatic, fracDynamic, budget, n)
	// CSM with the same parameters tolerates Θ(N) dynamic corruptions.
	csmTolerance := CSMSecurityUnderDynamicAdversary(n, k, 1, transport.Sync)
	if csmTolerance <= budget {
		t.Errorf("CSM tolerance %d should exceed the group-capture budget %d", csmTolerance, budget)
	}
}

func TestRandomAllocationValidation(t *testing.T) {
	if _, err := (RandomAllocationExperiment{N: 10, K: 3, Budget: 1}).Trial(0); err == nil {
		t.Error("non-divisible N/K should fail")
	}
	if _, err := (RandomAllocationExperiment{N: 12, K: 3, Budget: 99}).Trial(0); err == nil {
		t.Error("budget > N should fail")
	}
	if _, err := (RandomAllocationExperiment{N: 12, K: 3, Budget: 1, Kind: AdversaryKind(9)}).Trial(0); err == nil {
		t.Error("unknown adversary should fail")
	}
	if _, err := (RandomAllocationExperiment{N: 12, K: 3, Budget: 1}).Run(0); err == nil {
		t.Error("zero trials should fail")
	}
	if StaticAdversary.String() != "static" || DynamicAdversary.String() != "dynamic" {
		t.Error("adversary strings")
	}
}

func TestDynamicAdversaryInsufficientBudget(t *testing.T) {
	// With budget < q/2+1, even the dynamic adversary fails.
	e := RandomAllocationExperiment{N: 40, K: 10, Budget: 2, Kind: DynamicAdversary, Seed: 8}
	frac, err := e.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("under-budget dynamic adversary captured %.2f", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewFull(Config[uint64]{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := NewFull(Config[uint64]{BaseField: gold, NewTransition: bankFactory, K: 0, N: 5}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewPartial(Config[uint64]{BaseField: gold, NewTransition: bankFactory, K: 6, N: 5}); err == nil {
		t.Error("N<K should fail")
	}
	c, err := NewFull(Config[uint64]{BaseField: gold, NewTransition: bankFactory, K: 2, N: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteRound(cmdsFor(5, 0)); err == nil {
		t.Error("wrong command count should fail")
	}
	p, err := NewPartial(Config[uint64]{BaseField: gold, NewTransition: bankFactory, K: 2, N: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecuteRound(cmdsFor(5, 0)); err == nil {
		t.Error("wrong command count should fail (partial)")
	}
	if p.OpCounts().Total() != 0 {
		t.Error("setup leaked into counters")
	}
	if len(p.OracleStates()) != 2 {
		t.Error("oracle states")
	}
}
