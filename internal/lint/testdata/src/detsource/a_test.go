// Test files are exempt from detsource: wall-clock timing in a test
// harness is legitimate.
package fixture

import "time"

func elapsed() time.Duration {
	start := time.Now() // no finding: _test.go file
	return time.Since(start)
}
