package lint_test

import (
	"strings"
	"testing"

	"codedsm/internal/lint/driver"
	"codedsm/internal/lint/load"
)

// TestAllowValidation checks the annotation diagnostics on the allow
// fixture. The flagged lines are themselves comment lines, so the
// expectations are spelled here instead of as in-fixture want markers.
func TestAllowValidation(t *testing.T) {
	pkg, err := load.Dir("testdata/src/allow", "codedsm/internal/csm", load.StdImporter())
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := driver.Analyze(pkg)
	if err != nil {
		t.Fatalf("analyzing fixture: %v", err)
	}

	want := []struct {
		line int
		sub  string
	}{
		{7, "malformed //csmlint:allow annotation"},
		{9, `unknown check "nosuchcheck"`},
		{11, "needs a reason"},
		{13, "malformed //csmlint:allow annotation"},
		{15, "suppresses nothing"},
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if f.Position.Line == w.line && strings.Contains(f.Message, w.sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("line %d: no %q diagnostic; findings:\n%s", w.line, w.sub, render(findings))
		}
	}
	if len(findings) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(want), render(findings))
	}
}

func render(findings []driver.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
