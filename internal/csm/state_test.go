package csm

import (
	"errors"
	"testing"

	"codedsm/internal/field"
)

// The coded read: DecodeMachineState reconstructs exactly the oracle's
// state for every machine, through Byzantine garbage and a crashed
// node's erasure.
func TestDecodeMachineStateMatchesOracle(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{5: WrongResult}
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	runRounds(t, c, 3)
	if err := c.Crash(7); err != nil {
		t.Fatal(err)
	}
	want := c.OracleStates()
	for k := range want {
		got, err := c.DecodeMachineState(k)
		if err != nil {
			t.Fatalf("machine %d: %v", k, err)
		}
		if !field.VecEqual(gold, got, want[k]) {
			t.Fatalf("machine %d: decoded %v, oracle %v", k, got, want[k])
		}
	}
}

// The coded write: AdoptMachineState's rank-1 share update leaves every
// node's share consistent with the new oracle states — the next decode
// returns the adopted state, and subsequent rounds execute correctly
// from it.
func TestAdoptMachineStateRoundTrips(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.Byzantine = map[int]Behavior{5: WrongResult}
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	runRounds(t, c, 2)

	adopted := []uint64{777}
	if err := c.AdoptMachineState(1, adopted); err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeMachineState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !field.VecEqual(gold, got, adopted) {
		t.Fatalf("decoded %v after adoption, want %v", got, adopted)
	}
	// The other machines' shares must be untouched by the rank-1 update.
	want := c.OracleStates()
	for _, k := range []int{0, 2} {
		got, err := c.DecodeMachineState(k)
		if err != nil {
			t.Fatalf("machine %d: %v", k, err)
		}
		if !field.VecEqual(gold, got, want[k]) {
			t.Fatalf("machine %d: decoded %v, oracle %v", k, got, want[k])
		}
	}
	// Rounds after the adoption stay Correct: the nodes' shares and the
	// oracle agree on the cluster's full state.
	for _, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatal("round incorrect after adoption")
		}
	}
}

// Adoption composes with the churn machinery: a node that was crashed
// through an adoption rejoins by repairing its share from the updated
// survivors, and the cluster keeps executing correctly.
func TestAdoptThenRejoinRepairsFromUpdatedShares(t *testing.T) {
	cfg := baseConfig(3, 12, 2)
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	runRounds(t, c, 2)
	if err := c.Crash(4); err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptMachineState(0, []uint64{4242}); err != nil {
		t.Fatal(err)
	}
	if err := c.Rejoin(4); err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeMachineState(0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.VecEqual(gold, got, []uint64{4242}) {
		t.Fatalf("decoded %v after adopt+rejoin, want [4242]", got)
	}
	for _, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatal("round incorrect after adopt+rejoin")
		}
	}
}

// Both handoff primitives refuse to race an open ingress client.
func TestStateHandoffRequiresNoClient(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	c := newCluster(t, cfg)
	cl, err := c.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeMachineState(0); !errors.Is(err, ErrClientOpen) {
		t.Fatalf("DecodeMachineState with an open client: %v", err)
	}
	if err := c.AdoptMachineState(0, []uint64{1}); !errors.Is(err, ErrClientOpen) {
		t.Fatalf("AdoptMachineState with an open client: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeMachineState(0); err != nil {
		t.Fatalf("DecodeMachineState after Close: %v", err)
	}
}

// Dimension and range validation.
func TestStateHandoffValidation(t *testing.T) {
	cfg := baseConfig(2, 10, 2)
	c := newCluster(t, cfg)
	if _, err := c.DecodeMachineState(2); err == nil {
		t.Error("machine index out of range should fail")
	}
	if err := c.AdoptMachineState(0, []uint64{1, 2}); err == nil {
		t.Error("wrong state length should fail")
	}
	if err := c.AdoptMachineState(-1, []uint64{1}); err == nil {
		t.Error("negative machine index should fail")
	}
}
