// Package ints holds small integer-set helpers shared by the coding layers
// (lcc's faulty-node sets, csm's client-phase audit sets). It is also the
// blessed way to iterate a map deterministically: csmlint's detmap check
// forbids raw map ranges in the protocol packages, and these helpers are
// the compliant replacement.
package ints

import "slices"

// SortedKeys returns the keys of a set in ascending order.
func SortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// SortedMapKeys returns the keys of any int-keyed map in ascending
// order, for deterministic iteration regardless of the value type.
func SortedMapKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
