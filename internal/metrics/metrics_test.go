package metrics

import (
	"strings"
	"testing"
)

func TestTable1SmallNetwork(t *testing.T) {
	rows, err := Table1(Table1Config{N: 24, Mu: 1.0 / 3.0, D: 1, Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byScheme := map[string]Table1Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if !r.Correct {
			t.Errorf("%s incorrect", r.Scheme)
		}
	}
	full := byScheme["full-replication"]
	part := byScheme["partial-replication"]
	cms := byScheme["csm"]
	limit := byScheme["info-theoretic-limit"]

	// Table 1 shape: full replication has top security but γ=1; partial
	// has γ=K but security q/2; CSM has both Θ(N) security and γ=K.
	if full.Storage != 1 {
		t.Errorf("γ_full = %f", full.Storage)
	}
	if part.Storage != float64(part.K) || cms.Storage != float64(cms.K) {
		t.Error("γ_partial and γ_csm should equal K")
	}
	if part.Security >= cms.Security {
		t.Errorf("β_partial=%d should be far below β_csm=%d", part.Security, cms.Security)
	}
	if full.Security <= cms.Security/2 {
		t.Errorf("β_full=%d vs β_csm=%d", full.Security, cms.Security)
	}
	if limit.Security != 12 || limit.Storage != 24 {
		t.Errorf("limit row wrong: %+v", limit)
	}
	// Throughput ordering: partial > full (K commands spread over groups).
	if part.Throughput <= full.Throughput {
		t.Errorf("λ_partial=%.4f should exceed λ_full=%.4f", part.Throughput, full.Throughput)
	}
	text := RenderTable1(rows)
	if !strings.Contains(text, "csm") || !strings.Contains(text, "SECURITY") {
		t.Error("render output malformed")
	}
}

func TestTable1Validation(t *testing.T) {
	if _, err := Table1(Table1Config{N: 25, Mu: 1.0 / 3.0, D: 1}); err == nil {
		t.Error("non-divisible N/K should fail with advice")
	}
	if _, err := Table1(Table1Config{N: 10, Mu: 0.6, D: 1}); err == nil {
		t.Error("no-capacity configuration should fail")
	}
}

func TestTable2ThresholdsMatch(t *testing.T) {
	rows, err := Table2(20, 3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("%s/%s: formula %d != empirical %d",
				r.Setting, r.Aspect, r.FormulaMaxB, r.EmpiricalMax)
		}
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "decoding") {
		t.Error("render output malformed")
	}
}

func TestTable2OtherShapes(t *testing.T) {
	for _, tc := range []struct{ n, k, d int }{{15, 2, 1}, {31, 4, 3}, {12, 1, 1}} {
		rows, err := Table2(tc.n, tc.k, tc.d, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Aspect == "decoding" && !r.Match {
				t.Errorf("n=%d k=%d d=%d %s decoding: formula %d != empirical %d",
					tc.n, tc.k, tc.d, r.Setting, r.FormulaMaxB, r.EmpiricalMax)
			}
		}
	}
}

func TestScalingSeries(t *testing.T) {
	rows, err := Scaling([]int{12, 24}, 1.0/3.0, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Theorem 1: γ and β both grow linearly with N.
	if rows[1].Gamma <= rows[0].Gamma || rows[1].Beta <= rows[0].Beta {
		t.Errorf("no simultaneous scaling: %+v", rows)
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("N=%d incorrect under %d faults", r.N, r.B)
		}
		if r.WorkerOpsFast == 0 || r.NetworkOpsNaive == 0 {
			t.Errorf("coding costs not measured: %+v", r)
		}
	}
	if !strings.Contains(RenderScaling(rows), "WORKER") {
		t.Error("render output malformed")
	}
}

func TestRepairCost(t *testing.T) {
	rows, err := RepairCost([]int{12, 18}, 0.2, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Fatalf("N=%d: incorrect under crash+repair", r.N)
		}
		if r.RepairOps == 0 {
			t.Fatalf("N=%d: repair cost not measured", r.N)
		}
	}
	if out := RenderRepair(rows); !strings.Contains(out, "REPAIR OPS") {
		t.Fatalf("render: %q", out)
	}
}
