// Fixture for the errstring analyzer. Error text is not API — the
// analyzer applies in every package.
package fixture

import (
	"errors"
	"strings"
)

var errSentinel = errors.New("boom")

func matches(err error) bool {
	if strings.Contains(err.Error(), "boom") { // want `strings.Contains on err.Error\(\) matches error text`
		return true
	}
	if strings.HasPrefix(err.Error(), "wal:") { // want `strings.HasPrefix on err.Error\(\) matches error text`
		return true
	}
	if err.Error() == "boom" { // want `comparing err.Error\(\) with == matches error text`
		return true
	}
	if err.Error() != "calm" { // want `comparing err.Error\(\) with != matches error text`
		return false
	}
	switch err.Error() { // want `switching on err.Error\(\) matches error text`
	case "boom":
		return true
	}
	return false
}

func compliant(err error, s string) bool {
	if errors.Is(err, errSentinel) { // errors.Is: the right tool, no finding
		return true
	}
	return strings.Contains(s, "boom") // plain string matching: no finding
}

// decoder has an Error method with a different signature, so it does
// not implement error and its text is fair game.
type decoder struct{}

func (decoder) Error(code int) string { return "code" }

func notAnError(d decoder) bool {
	return strings.Contains(d.Error(0), "code") // no finding
}

func annotated(err error) bool {
	//csmlint:allow errstring(third-party error exposes no typed cause)
	return strings.Contains(err.Error(), "connection refused")
}
