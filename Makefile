# Single source of truth for the commands CI and humans run.
GO ?= go

.PHONY: all build test race bench fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, no test re-run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	gofmt -w .

# Fails (and lists the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
