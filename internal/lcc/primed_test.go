package lcc

import (
	"slices"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/sm"
)

// primedFixture builds a K-machine code on N nodes with a degree-d
// polynomial register transition and returns two rounds of clean result
// matrices (the second from the first round's next states), so tests can
// corrupt rows independently per "micro-step".
type primedFixture struct {
	code    *Code[uint64]
	degree  int
	rounds  [][][]uint64 // per round: N result rows
	outputs [][][]uint64 // per round: K expected decoded result vectors
}

func newPrimedFixture(t *testing.T, k, n, d, rounds int) *primedFixture {
	t.Helper()
	code := newTestCode(t, k, n)
	gold := field.NewGoldilocks()
	tr, err := sm.NewPolynomialRegister[uint64](gold, d)
	if err != nil {
		t.Fatal(err)
	}
	states := make([][]uint64, k)
	for i := range states {
		states[i] = []uint64{uint64(3*i + 1)}
	}
	fx := &primedFixture{code: code, degree: d}
	for r := 0; r < rounds; r++ {
		cmds := make([][]uint64, k)
		for i := range cmds {
			cmds[i] = []uint64{uint64(7*i + r + 2)}
		}
		codedStates, err := code.EncodeVectors(states)
		if err != nil {
			t.Fatal(err)
		}
		codedCmds, err := code.EncodeVectors(cmds)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]uint64, n)
		for i := range results {
			if results[i], err = tr.ApplyResult(codedStates[i], codedCmds[i]); err != nil {
				t.Fatal(err)
			}
		}
		expected := make([][]uint64, k)
		next := make([][]uint64, k)
		for i := range expected {
			if expected[i], err = tr.ApplyResult(states[i], cmds[i]); err != nil {
				t.Fatal(err)
			}
			st, _, err := tr.SplitResult(expected[i])
			if err != nil {
				t.Fatal(err)
			}
			next[i] = append([]uint64(nil), st...)
		}
		fx.rounds = append(fx.rounds, results)
		fx.outputs = append(fx.outputs, expected)
		states = next
	}
	return fx
}

func corrupt(results [][]uint64, nodes ...int) [][]uint64 {
	out := make([][]uint64, len(results))
	for i, row := range results {
		out[i] = append([]uint64(nil), row...)
	}
	for _, i := range nodes {
		out[i][0] += 17
	}
	return out
}

func assertSameDecode(t *testing.T, got, full *DecodeResult[uint64]) {
	t.Helper()
	if !slices.Equal(got.FaultyNodes, full.FaultyNodes) {
		t.Fatalf("faulty sets differ: primed %v, full %v", got.FaultyNodes, full.FaultyNodes)
	}
	gold := field.NewGoldilocks()
	for k := range full.Outputs {
		if !field.VecEqual[uint64](gold, got.Outputs[k], full.Outputs[k]) {
			t.Fatalf("machine %d outputs differ: primed %v, full %v", k, got.Outputs[k], full.Outputs[k])
		}
	}
}

func TestPrimedMatchesFullDecodeStableLiars(t *testing.T) {
	const k, n, d, b = 4, 20, 1, 5
	fx := newPrimedFixture(t, k, n, d, 2)
	liars := []int{1, 6, 11, 17}
	first := corrupt(fx.rounds[0], liars...)
	fullFirst, err := fx.code.DecodeOutputs(first, d)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(fullFirst.FaultyNodes, liars) {
		t.Fatalf("full decode located %v, want %v", fullFirst.FaultyNodes, liars)
	}
	primed, err := fx.code.NewPrimed(nil, fullFirst.FaultyNodes, d, b)
	if err != nil {
		t.Fatal(err)
	}
	if primed == nil {
		t.Fatal("capacity admits priming: N=20, dim=4, b=5")
	}
	second := corrupt(fx.rounds[1], liars...)
	got, ok, err := primed.Decode(second, 1)
	if err != nil || !ok {
		t.Fatalf("primed decode failed: ok=%v err=%v", ok, err)
	}
	full, err := fx.code.DecodeOutputs(second, d)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDecode(t, got, full)
	// Parallel component fan-out must match too.
	gotPar, ok, err := primed.Decode(second, 4)
	if err != nil || !ok {
		t.Fatalf("parallel primed decode failed: ok=%v err=%v", ok, err)
	}
	assertSameDecode(t, gotPar, full)
}

func TestPrimedRecoveredSuspectNotAccused(t *testing.T) {
	// A node that lied in the priming round but is clean now must not
	// appear in FaultyNodes: detection is recomputed per decode.
	const k, n, d, b = 3, 16, 1, 4
	fx := newPrimedFixture(t, k, n, d, 2)
	primed, err := fx.code.NewPrimed(nil, []int{2, 9}, d, b)
	if err != nil || primed == nil {
		t.Fatalf("priming failed: %v", err)
	}
	second := corrupt(fx.rounds[1], 9) // node 2 recovered, node 9 still lying
	got, ok, err := primed.Decode(second, 1)
	if err != nil || !ok {
		t.Fatalf("primed decode failed: ok=%v err=%v", ok, err)
	}
	if !slices.Equal(got.FaultyNodes, []int{9}) {
		t.Fatalf("faulty = %v, want [9]", got.FaultyNodes)
	}
}

func TestPrimedFallsBackOnNewLiar(t *testing.T) {
	// A liar outside the suspect set corrupts a trusted row: the fast path
	// must refuse (ok=false), never certify a wrong result.
	const k, n, d, b = 3, 16, 1, 4
	fx := newPrimedFixture(t, k, n, d, 2)
	primed, err := fx.code.NewPrimed(nil, []int{2, 9}, d, b)
	if err != nil || primed == nil {
		t.Fatalf("priming failed: %v", err)
	}
	second := corrupt(fx.rounds[1], 2, 9, 13) // 13 is new
	got, ok, err := primed.Decode(second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("certified a batch with an unsuspected liar: %+v", got)
	}
	// The full decoder handles it fine.
	full, err := fx.code.DecodeOutputs(second, d)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(full.FaultyNodes, []int{2, 9, 13}) {
		t.Fatalf("full decode located %v", full.FaultyNodes)
	}
}

func TestPrimedSubsetRows(t *testing.T) {
	// Partially synchronous layout: only a subset of rows arrived.
	const k, n, d, b = 3, 20, 1, 4
	fx := newPrimedFixture(t, k, n, d, 2)
	indices := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != 4 && i != 15 { // two silent nodes
			indices = append(indices, i)
		}
	}
	sub := func(results [][]uint64) [][]uint64 {
		out := make([][]uint64, len(indices))
		for r, idx := range indices {
			out[r] = results[idx]
		}
		return out
	}
	second := corrupt(fx.rounds[1], 7)
	primed, err := fx.code.NewPrimed(indices, []int{7}, d, b)
	if err != nil || primed == nil {
		t.Fatalf("priming failed: %v", err)
	}
	got, ok, err := primed.Decode(sub(second), 1)
	if err != nil || !ok {
		t.Fatalf("subset primed decode failed: ok=%v err=%v", ok, err)
	}
	full, err := fx.code.DecodeOutputsSubset(indices, sub(second), d)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDecode(t, got, full)
}

func TestPrimedRefusesBelowCapacity(t *testing.T) {
	// |trusted| < dim + maxFaults: the self-verification argument breaks,
	// so NewPrimed must refuse.
	const k, n, d = 4, 12, 2
	code := newTestCode(t, k, n)
	// dim = d(K-1)+1 = 7; with b = 3 we need 10 trusted rows, but 3
	// suspects leave only 9.
	primed, err := code.NewPrimed(nil, []int{0, 1, 2}, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if primed != nil {
		t.Fatal("priming must refuse when trusted rows < dim + maxFaults")
	}
}

func TestPrimedMatches(t *testing.T) {
	const k, n, d, b = 3, 16, 1, 4
	code := newTestCode(t, k, n)
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	primed, err := code.NewPrimed(nil, []int{3, 8}, d, b)
	if err != nil || primed == nil {
		t.Fatalf("priming failed: %v", err)
	}
	if !primed.Matches(nil, []int{8, 3}) {
		t.Error("order-insensitive suspect match failed")
	}
	if !primed.Matches(full, []int{3, 8}) {
		t.Error("explicit full index set must match nil")
	}
	if primed.Matches(full[:n-1], []int{3, 8}) {
		t.Error("different row layout must not match")
	}
	if primed.Matches(nil, []int{3}) {
		t.Error("different suspect set must not match")
	}
}
