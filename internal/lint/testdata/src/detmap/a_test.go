// Test files are exempt from detmap: test assertions may iterate maps
// freely.
package fixture

func tallyForTest(votes map[int]int) int {
	total := 0
	for _, v := range votes { // no finding: _test.go file
		total += v
	}
	return total
}
