// Pipeline: run the same Byzantine workload on the sequential engine and
// on the pipelined engine with command batching, verify the two produce
// identical results round for round, and compare wall-clock.
//
// Batching groups B consecutive rounds under one consensus instance: the
// agreed commands are Lagrange-encoded in a single flat-row pass and,
// because the same liars corrupt every micro-step, the Reed-Solomon
// decodes of micro-steps 2..B are primed with the previous step's faulty
// set — the error-locator solve is skipped entirely. Pipelining overlaps
// a decided round's client tally and audit with the consensus and
// execution phases of the rounds after it.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"slices"
	"time"

	"codedsm"
)

const (
	nodes  = 48
	faults = 15
	rounds = 32
	batch  = 8
	depth  = 4
)

func build(batchSize, pipeline int) *codedsm.Cluster[uint64] {
	gold := codedsm.NewGoldilocks()
	k := codedsm.SyncMaxMachines(nodes, faults, 1)
	byz := map[int]codedsm.Behavior{}
	for i := 0; len(byz) < faults; i++ {
		byz[(i*5+2)%nodes] = codedsm.WrongResult
	}
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(nodes),
		codedsm.WithMachines(k),
		codedsm.WithFaults(faults),
		codedsm.WithConsensus(codedsm.DolevStrong),
		codedsm.WithByzantine(byz),
		codedsm.WithSeed(2019),
		codedsm.WithBatching(batchSize),
		codedsm.WithPipeline(pipeline))
	if err != nil {
		log.Fatal(err)
	}
	return cluster
}

func main() {
	gold := codedsm.NewGoldilocks()
	k := codedsm.SyncMaxMachines(nodes, faults, 1)
	workload := codedsm.RandomWorkload[uint64](gold, rounds, k, 1, 7)

	sequential := build(0, 0)
	start := time.Now()
	seqResults, err := sequential.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	seqElapsed := time.Since(start)

	pipelined := build(batch, depth)
	start = time.Now()
	pipeResults, err := pipelined.Run(workload)
	if err != nil {
		log.Fatal(err)
	}
	pipeElapsed := time.Since(start)

	for r := range seqResults {
		s, p := seqResults[r], pipeResults[r]
		if s.Correct != p.Correct || s.Skipped != p.Skipped ||
			!slices.Equal(s.FaultyDetected, p.FaultyDetected) {
			log.Fatalf("round %d diverged between engines", r)
		}
		for m := range s.Outputs {
			if !slices.Equal(s.Outputs[m], p.Outputs[m]) {
				log.Fatalf("round %d machine %d outputs diverged", r, m)
			}
		}
		if !s.Correct {
			log.Fatalf("round %d incorrect", r)
		}
	}
	seqOps := sequential.OpCounts().Total()
	pipeOps := pipelined.OpCounts().Total()

	fmt.Printf("N=%d nodes, K=%d machines, b=%d wrong-result nodes, %d rounds, Dolev-Strong consensus\n\n",
		nodes, k, faults, rounds)
	fmt.Printf("sequential engine:             %8.1fms  %9d field ops\n",
		seqElapsed.Seconds()*1e3, seqOps)
	fmt.Printf("pipelined (depth %d) + B=%d:    %8.1fms  %9d field ops\n",
		depth, batch, pipeElapsed.Seconds()*1e3, pipeOps)
	fmt.Printf("\nwall-clock %.2fx, field ops %.2fx — identical outputs, faults, and states.\n",
		seqElapsed.Seconds()/pipeElapsed.Seconds(), float64(seqOps)/float64(pipeOps))
	fmt.Println("One consensus instance now covers", batch, "rounds, the batch's commands")
	fmt.Println("encode in one bulk pass, and steady-state decodes skip the error-locator")
	fmt.Println("solve by reusing the previous micro-step's faulty set.")
}
