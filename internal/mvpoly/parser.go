package mvpoly

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"codedsm/internal/field"
)

// Parse builds a polynomial from a textual expression over the named
// variables. Supported grammar:
//
//	expr   := ['-'] term (('+' | '-') term)*
//	term   := factor ('*' factor)*
//	factor := number | ident ['^' number] | '(' expr ')' ['^' number]
//
// Numbers are nonnegative decimal integers mapped into the field with
// FromUint64. Identifiers must appear in vars; the variable index is the
// position in vars. Whitespace is ignored.
//
// Example: Parse(f, "s0 + 3*x0^2 - s0*x0", []string{"s0", "x0"}).
func Parse[E comparable](f field.Field[E], expr string, vars []string) (Poly[E], error) {
	index := make(map[string]int, len(vars))
	for i, v := range vars {
		if v == "" {
			return Poly[E]{}, fmt.Errorf("mvpoly: empty variable name at position %d", i)
		}
		if _, dup := index[v]; dup {
			return Poly[E]{}, fmt.Errorf("mvpoly: duplicate variable name %q", v)
		}
		index[v] = i
	}
	p := &parser[E]{f: f, nvars: len(vars), vars: index, input: expr}
	p.next()
	poly, err := p.parseExpr()
	if err != nil {
		return Poly[E]{}, err
	}
	if p.tok.kind != tokEOF {
		return Poly[E]{}, fmt.Errorf("mvpoly: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return poly, nil
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokCaret
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type parser[E comparable] struct {
	f     field.Field[E]
	nvars int
	vars  map[string]int
	input string
	pos   int
	tok   token
}

func (p *parser[E]) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '+':
		p.pos++
		p.tok = token{tokPlus, "+", start}
	case c == '-':
		p.pos++
		p.tok = token{tokMinus, "-", start}
	case c == '*':
		p.pos++
		p.tok = token{tokStar, "*", start}
	case c == '^':
		p.pos++
		p.tok = token{tokCaret, "^", start}
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		p.tok = token{tokNumber, p.input[start:p.pos], start}
	case unicode.IsLetter(rune(c)) || c == '_':
		for p.pos < len(p.input) && (unicode.IsLetter(rune(p.input[p.pos])) ||
			unicode.IsDigit(rune(p.input[p.pos])) || p.input[p.pos] == '_') {
			p.pos++
		}
		p.tok = token{tokIdent, p.input[start:p.pos], start}
	default:
		p.tok = token{tokEOF, string(c), start}
		p.pos = len(p.input) + 1 // force error upstream
	}
}

func (p *parser[E]) parseExpr() (Poly[E], error) {
	negate := false
	if p.tok.kind == tokMinus {
		negate = true
		p.next()
	}
	acc, err := p.parseTerm()
	if err != nil {
		return Poly[E]{}, err
	}
	if negate {
		acc = acc.Scale(p.f, p.f.Neg(p.f.One()))
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		sub := p.tok.kind == tokMinus
		p.next()
		t, err := p.parseTerm()
		if err != nil {
			return Poly[E]{}, err
		}
		if sub {
			acc, err = acc.Sub(p.f, t)
		} else {
			acc, err = acc.Add(p.f, t)
		}
		if err != nil {
			return Poly[E]{}, err
		}
	}
	return acc, nil
}

func (p *parser[E]) parseTerm() (Poly[E], error) {
	acc, err := p.parseFactor()
	if err != nil {
		return Poly[E]{}, err
	}
	for p.tok.kind == tokStar {
		p.next()
		fac, err := p.parseFactor()
		if err != nil {
			return Poly[E]{}, err
		}
		acc, err = acc.Mul(p.f, fac)
		if err != nil {
			return Poly[E]{}, err
		}
	}
	return acc, nil
}

func (p *parser[E]) parseFactor() (Poly[E], error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := strconv.ParseUint(p.tok.text, 10, 64)
		if err != nil {
			return Poly[E]{}, fmt.Errorf("mvpoly: bad number %q at offset %d: %w", p.tok.text, p.tok.pos, err)
		}
		p.next()
		return Constant(p.f, p.nvars, p.f.FromUint64(v)), nil
	case tokIdent:
		idx, ok := p.vars[p.tok.text]
		if !ok {
			return Poly[E]{}, fmt.Errorf("mvpoly: unknown variable %q at offset %d (declared: %s)",
				p.tok.text, p.tok.pos, strings.Join(sortedNames(p.vars), ", "))
		}
		p.next()
		v, err := Variable(p.f, p.nvars, idx)
		if err != nil {
			return Poly[E]{}, err
		}
		return p.maybePow(v)
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return Poly[E]{}, err
		}
		if p.tok.kind != tokRParen {
			return Poly[E]{}, fmt.Errorf("mvpoly: expected ')' at offset %d", p.tok.pos)
		}
		p.next()
		return p.maybePow(inner)
	default:
		return Poly[E]{}, fmt.Errorf("mvpoly: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
}

func (p *parser[E]) maybePow(base Poly[E]) (Poly[E], error) {
	if p.tok.kind != tokCaret {
		return base, nil
	}
	p.next()
	if p.tok.kind != tokNumber {
		return Poly[E]{}, fmt.Errorf("mvpoly: expected exponent at offset %d", p.tok.pos)
	}
	e, err := strconv.Atoi(p.tok.text)
	if err != nil || e < 0 {
		return Poly[E]{}, fmt.Errorf("mvpoly: bad exponent %q at offset %d", p.tok.text, p.tok.pos)
	}
	p.next()
	acc := Constant(p.f, p.nvars, p.f.One())
	for i := 0; i < e; i++ {
		acc, err = acc.Mul(p.f, base)
		if err != nil {
			return Poly[E]{}, err
		}
	}
	return acc, nil
}

func sortedNames(m map[string]int) []string {
	out := make([]string, len(m))
	for name, i := range m {
		out[i] = name
	}
	return out
}
