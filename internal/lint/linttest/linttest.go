// Package linttest runs csmlint analyzers over fixture packages and
// compares their findings against expectations written in the fixtures
// themselves — the analysistest convention, rebuilt on the stdlib-only
// framework.
//
// A fixture is a directory of .go files (conventionally under
// testdata/src/<name>) type-checked as one package. An expectation is a
// comment on the line the diagnostic should land on:
//
//	for _, v := range m { // want `range over map m has nondeterministic order`
//
// Each quoted string after "want" is a regexp that must match one
// diagnostic's message on that line; several expectations may share a
// line. Both backquoted and double-quoted Go string syntax work. A
// fixture with no want comments asserts the analyzers stay silent —
// that is how out-of-scope packages and exempt files are tested.
//
// The same fixture directory may be run under different simulated
// import paths, since package scoping is the very thing several
// analyzers decide on.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"codedsm/internal/lint"
	"codedsm/internal/lint/load"
)

// An expectation is one parsed want pattern.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	met  bool
}

// Run type-checks the fixture directory as a package with the given
// import path, applies the analyzers (plus annotation validation, so
// fixture annotations must be well-formed and non-stale), and reports
// every mismatch between findings and want comments as a test error.
func Run(t *testing.T, dir, path string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir, path, load.StdImporter())
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	want := parseExpectations(t, pkg)

	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := lint.ParseAllows(pkg.Fset, pkg.Files)
	var diags []lint.Diagnostic
	for _, a := range analyzers {
		ds, err := lint.Run(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, pkg.Path, allows)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, dir, err)
		}
		diags = append(diags, ds...)
	}
	diags = append(diags, allows.CheckDirectives(known)...)
	diags = append(diags, allows.CheckUnused(known)...)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(want, base(pos.Filename), pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s",
				base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range want {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.re)
		}
	}
}

// match pairs a diagnostic with the first unmet expectation on its
// line whose regexp matches.
func match(want []*expectation, file string, line int, msg string) bool {
	for _, w := range want {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

// wantMarker introduces expectations inside a comment. The fixture
// files spell it as a line comment; splitting the literal here keeps
// this harness from matching its own source.
var wantMarker = "// " + "want "

// parseExpectations scans fixture comments for want patterns.
func parseExpectations(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var want []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, wantMarker)
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(c.Text[i+len(wantMarker):])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", base(pos.Filename), pos.Line, err)
				}
				for _, re := range res {
					want = append(want, &expectation{file: base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return want
}

// parsePatterns reads a sequence of Go-quoted regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("want a quoted regexp, have %q", s)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad regexp %q: %v", lit, err)
		}
		res = append(res, re)
		s = s[len(q):]
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return res, nil
}

func base(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
