// Two-phase cross-shard commands. A command set spanning several shards
// cannot ride one cluster's consensus: each shard orders and executes
// independently. SubmitCross layers a prepare/commit protocol over the
// per-shard ingress clients, with the coordinator chosen per session by
// the intermix election beacon (the same VRF-style self-election the
// INTERMIX audit committee uses, so coordinator choice is deterministic
// under the router seed yet unpredictable across sessions):
//
//   - Prepare: every participant shard executes an identity probe (the
//     pad command) through its full consensus + coded-execution path,
//     coordinator first. A probe proves the shard is live, its leader
//     rotation functional, and its fault budget intact — while leaving
//     machine states untouched, so an aborted session commits nothing
//     anywhere and the state digests still match an oracle run that
//     never saw the session.
//
//   - Commit: the real per-shard commands are submitted and awaited in
//     the same order. A failure here surfaces as an AbortError naming
//     the shards that had already committed — the caller-visible
//     partial-commit record (per-shard atomicity comes from the shard's
//     own consensus; cross-shard atomicity is exactly what a failed
//     commit phase forfeits, and the error says so).
//
// Every failure is a typed *AbortError matching ErrAborted, with the
// failing shard's csm error chain (ErrFaultBudgetExceeded, ErrRoundLimit,
// BatchError, ...) intact under Unwrap.
package shard

import (
	"context"
	"fmt"

	"codedsm/internal/csm"
	"codedsm/internal/intermix"
)

// Op is one machine's command inside a cross-shard command set.
type Op[E comparable] struct {
	Machine int
	Cmd     []E
}

// participant groups a session's ops on one shard.
type participant[E comparable] struct {
	shard int
	ops   []int // indices into the session's op list
}

// SubmitCross executes a set of per-machine commands as one session:
// ops on a single shard submit directly; ops spanning shards run the
// two-phase prepare/commit protocol. It returns each op's decoded
// output, in op order. SubmitCross holds the routing fence shared, so a
// concurrent Rebalance waits for the whole session (and never splits
// it); concurrent SubmitCross and Submit calls interleave freely.
func (rt *Router[E]) SubmitCross(ctx context.Context, ops []Op[E]) ([][]E, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("shard: SubmitCross: no ops")
	}
	seen := make([]bool, rt.machines)
	for _, op := range ops {
		if op.Machine < 0 || op.Machine >= rt.machines {
			return nil, fmt.Errorf("shard: SubmitCross: machine %d out of range [0,%d)", op.Machine, rt.machines)
		}
		if seen[op.Machine] {
			return nil, fmt.Errorf("shard: SubmitCross: machine %d appears twice", op.Machine)
		}
		seen[op.Machine] = true
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.closed {
		return nil, ErrRouterClosed
	}

	// Group ops by current shard, ascending.
	byShard := make([][]int, len(rt.clusters))
	for i, op := range ops {
		sh := rt.place[op.Machine].shard
		byShard[sh] = append(byShard[sh], i)
	}
	var parts []participant[E]
	for sh, idxs := range byShard {
		if len(idxs) > 0 {
			parts = append(parts, participant[E]{shard: sh, ops: idxs})
		}
	}

	outs := make([][]E, len(ops))
	if len(parts) == 1 {
		// Single-shard fast path: ordinary routed submission, no protocol.
		if err := rt.commitOn(ctx, parts[0], ops, outs); err != nil {
			return nil, err.Err // unwrap to the plain ShardError
		}
		return outs, nil
	}

	// Coordinator election: the intermix beacon self-elects over the
	// participants; the first elected participant coordinates and
	// prepares first, the rest follow in ascending shard order.
	session := rt.sessions.Add(1)
	committee, _, err := intermix.ElectNonEmpty(mix64(rt.seed^session), len(parts), 1)
	if err != nil {
		return nil, fmt.Errorf("shard: SubmitCross: electing coordinator: %w", err)
	}
	coord := committee[0]
	order := make([]participant[E], 0, len(parts))
	order = append(order, parts[coord])
	for i, p := range parts {
		if i != coord {
			order = append(order, p)
		}
	}

	// Phase 1: prepare probes, serially in coordinator-first order. The
	// probe addresses the shard's first participating slot; it is the pad
	// command, so it advances no machine state.
	for _, p := range order {
		slot := rt.place[ops[p.ops[0]].Machine].slot
		fut, err := rt.clients[p.shard].Submit(ctx, slot, rt.pad)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, &AbortError{Phase: PhasePrepare, Shard: p.shard, Err: err}
		}
		if _, err := fut.Wait(ctx); err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, &AbortError{Phase: PhasePrepare, Shard: p.shard, Err: err}
		}
	}

	// Phase 2: commit, same order. Each shard's ops submit together (they
	// may share a round or batch) and are awaited before the next shard.
	var committed []int
	for _, p := range order {
		if serr := rt.commitOn(ctx, p, ops, outs); serr != nil {
			if ctx.Err() != nil {
				return nil, serr.Err
			}
			return nil, &AbortError{Phase: PhaseCommit, Shard: serr.Shard, Committed: committed, Err: serr.Err}
		}
		committed = append(committed, p.shard)
	}
	return outs, nil
}

// commitOn submits one participant shard's ops and awaits them, filling
// outs. Callers hold rt.mu shared.
func (rt *Router[E]) commitOn(ctx context.Context, p participant[E], ops []Op[E], outs [][]E) *ShardError {
	inner := make([]int, 0, len(p.ops))
	pending := make([]*csm.Future[E], 0, len(p.ops))
	for _, i := range p.ops {
		slot := rt.place[ops[i].Machine].slot
		fut, err := rt.clients[p.shard].Submit(ctx, slot, ops[i].Cmd)
		if err != nil {
			return &ShardError{Shard: p.shard, Err: err}
		}
		inner = append(inner, i)
		pending = append(pending, fut)
	}
	for j, fut := range pending {
		out, err := fut.Wait(ctx)
		if err != nil {
			return &ShardError{Shard: p.shard, Err: err}
		}
		outs[inner[j]] = out
	}
	return nil
}
