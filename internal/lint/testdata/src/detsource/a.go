// Fixture for the detsource analyzer, loaded under a
// deterministic-engine package path.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func clock() int64 {
	t := time.Now()     // want `time.Now reads the wall clock`
	d := time.Since(t)  // want `time.Since reads the wall clock`
	_ = time.Until(t)   // want `time.Until reads the wall clock`
	_ = time.Unix(0, 0) // construction, not a clock read: no finding
	return int64(d)
}

func globalDraws() int {
	n := rand.Int()      // want `rand.Int draws from the global RNG`
	n += randv2.IntN(7)  // want `rand.IntN draws from the global RNG`
	rand.Shuffle(n, nil) // want `rand.Shuffle draws from the global RNG`
	var z *randv2.Zipf   // type reference, not a draw: no finding
	_ = z
	return n
}

func seededDraws(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the compliant pattern
	return r.Int()                      // method on a seeded *rand.Rand: no finding
}

func entropy(buf []byte) {
	_, _ = crand.Read(buf) // want `crypto/rand.Read is a nondeterministic entropy source`
	_ = crand.Reader       // want `crypto/rand.Reader is a nondeterministic entropy source`
}

func annotated() time.Time {
	//csmlint:allow detsource(socket deadline on real I/O; never feeds protocol state)
	return time.Now()
}
