// Shutdown audit for the ingress client: no future may be left hanging
// by Close, whatever state its submission was in — queued but never
// admitted, blocked on backpressure, mid-drain, or stranded behind a
// sticky run failure. Each test runs under a deadline so a regression
// shows up as a failure, not a stuck suite.
package csm

import (
	"context"
	"errors"
	"testing"
	"time"

	"codedsm/internal/field"
)

// waitResolved asserts the future resolves within the deadline and
// returns its outcome.
func waitResolved(t *testing.T, fut *Future[uint64]) ([]uint64, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := fut.Wait(ctx)
	if ctx.Err() != nil {
		t.Fatal("future did not resolve: shutdown left it hanging")
	}
	return out, err
}

// TestClosePendingPartialRoundResolves: in deterministic mode a round
// only forms when every machine has a command, so a submission to one
// machine alone sits queued indefinitely. Close must drain it — pad the
// round, execute it, and resolve the future with a real output.
func TestClosePendingPartialRoundResolves(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(3), WithFaults(2), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open(WithDeterministicAdmission())
	if err != nil {
		t.Fatal(err)
	}
	fut, err := cl.Submit(context.Background(), 0, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := waitResolved(t, fut)
	if err != nil {
		t.Fatalf("drained future resolved with %v, want its padded round's output", err)
	}
	if len(out) == 0 {
		t.Fatal("drained future resolved with no output")
	}
}

// TestCloseUnblocksBackpressuredSubmit: a Submit blocked on a full
// machine queue when Close arrives must return — either ErrClientClosed,
// or (if the race admitted it into the drain) a future that resolves.
func TestCloseUnblocksBackpressuredSubmit(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open(WithDeterministicAdmission(), WithSubmitQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	// Fill machine 0's queue; machine 1 stays empty so nothing executes.
	if _, err := cl.Submit(context.Background(), 0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		fut *Future[uint64]
		err error
	}
	blocked := make(chan outcome, 1)
	go func() {
		fut, err := cl.Submit(context.Background(), 0, []uint64{2})
		blocked <- outcome{fut, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the Submit reach the full queue
	closed := make(chan error, 1)
	go func() { closed <- cl.Close() }()
	select {
	case o := <-blocked:
		if o.err != nil {
			if !errors.Is(o.err, ErrClientClosed) {
				t.Fatalf("blocked submit returned %v, want ErrClientClosed", o.err)
			}
		} else if _, err := waitResolved(t, o.fut); err != nil {
			t.Fatalf("admitted-at-close future resolved with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close left a backpressured Submit blocked")
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}

// TestCloseEndsResultsStream: a Results consumer blocked waiting for
// admissions must terminate once Close has drained the final futures —
// after yielding all of them.
func TestCloseEndsResultsStream(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open(WithDeterministicAdmission())
	if err != nil {
		t.Fatal(err)
	}
	stream := cl.Results()
	got := make(chan int, 1)
	go func() {
		n := 0
		for fut := range stream {
			if _, err := fut.Wait(context.Background()); err != nil {
				t.Errorf("streamed future: %v", err)
			}
			n++
		}
		got <- n
	}()
	// One partial round: only the drain at Close admits it.
	if _, err := cl.Submit(context.Background(), 1, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("stream yielded %d futures, want 1", n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close left the Results stream blocked")
	}
}

// TestStickyFailureResolvesQueuedFutures: once the scheduler has a
// sticky run error, submissions still queued when Close drains must
// resolve with that error (not hang, not execute), and later Submits
// must fail with ErrClientClosed.
func TestStickyFailureResolvesQueuedFutures(t *testing.T) {
	gold := field.NewGoldilocks()
	c, err := Open(gold, bankFactory, WithNodes(12), WithMachines(2), WithFaults(2), WithSeed(14))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Open(WithDeterministicAdmission())
	if err != nil {
		t.Fatal(err)
	}
	fut, err := cl.Submit(context.Background(), 0, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected run failure")
	cl.fail(boom) // the path every engine failure funnels through
	if _, err := cl.Submit(context.Background(), 1, []uint64{4}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("submit after failure: %v, want ErrClientClosed", err)
	}
	if err := cl.Close(); !errors.Is(err, boom) {
		t.Fatalf("close returned %v, want the sticky failure", err)
	}
	if _, err := waitResolved(t, fut); !errors.Is(err, boom) {
		t.Fatalf("queued future resolved with %v, want the sticky failure", err)
	}
}
