// Package poly implements univariate polynomial arithmetic over a finite
// field: evaluation, multiplication (schoolbook and NTT), division, the
// extended Euclidean algorithm, Lagrange interpolation, and quasilinear
// multi-point evaluation / interpolation via subproduct trees.
//
// The fast paths realize the complexity the paper's Section 6.2 relies on:
// encoding N coded commands and decoding the execution results in
// O(N log^2 N log log N) field operations at a single worker node (the paper
// cites Kedlaya-Umans style fast polynomial arithmetic; over the NTT-friendly
// Goldilocks field the same quasilinear bound is achieved with FFT-based
// multiplication and subproduct trees).
package poly

import (
	"errors"
	"fmt"

	"codedsm/internal/field"
)

// ErrDegreeMismatch reports malformed inputs (e.g. duplicate interpolation
// points).
var ErrDegreeMismatch = errors.New("poly: degree mismatch")

// Poly is a dense univariate polynomial; index i holds the coefficient of
// z^i. The canonical form has no trailing zero coefficients; the zero
// polynomial is the empty (or nil) slice.
type Poly[E comparable] []E

// Ring bundles a field with polynomial operations over it. If the field
// supports NTT (power-of-two roots of unity), multiplication above
// nttThreshold switches to the O(n log n) transform; otherwise schoolbook
// multiplication is used.
type Ring[E comparable] struct {
	f            field.Field[E]
	bulk         field.Bulk[E]     // resolved once: native kernels or adapter
	ntt          field.NTTField[E] // nil when unsupported
	nttThreshold int
}

// defaultNTTThreshold is the product-degree cutoff below which schoolbook
// multiplication wins over transform setup costs.
const defaultNTTThreshold = 64

// NewRing constructs a polynomial ring over f, auto-detecting NTT support
// and resolving the field's bulk-kernel capability once.
func NewRing[E comparable](f field.Field[E]) *Ring[E] {
	r := &Ring[E]{f: f, bulk: field.AsBulk(f), nttThreshold: defaultNTTThreshold}
	if nf, ok := f.(field.NTTField[E]); ok {
		// Probe: the field may wrap a non-NTT field (counting decorator).
		if _, err := nf.RootOfUnity(2); err == nil {
			r.ntt = nf
		}
	}
	return r
}

// Field returns the coefficient field.
func (r *Ring[E]) Field() field.Field[E] { return r.f }

// Bulk returns the field's resolved bulk-kernel capability: the coding hot
// paths (lcc, rs, csm) share this single resolution instead of re-adapting
// per call.
func (r *Ring[E]) Bulk() field.Bulk[E] { return r.bulk }

// HasNTT reports whether fast transform-based multiplication is available.
func (r *Ring[E]) HasNTT() bool { return r.ntt != nil }

// Normalize trims trailing zero coefficients, returning the canonical form.
func (r *Ring[E]) Normalize(p Poly[E]) Poly[E] {
	n := len(p)
	for n > 0 && r.f.IsZero(p[n-1]) {
		n--
	}
	return p[:n]
}

// Deg returns the degree of p, with Deg(0) = -1.
func (r *Ring[E]) Deg(p Poly[E]) int { return len(r.Normalize(p)) - 1 }

// IsZero reports whether p is the zero polynomial.
func (r *Ring[E]) IsZero(p Poly[E]) bool { return len(r.Normalize(p)) == 0 }

// Equal reports whether a and b are the same polynomial.
func (r *Ring[E]) Equal(a, b Poly[E]) bool {
	a, b = r.Normalize(a), r.Normalize(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !r.f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (r *Ring[E]) Clone(p Poly[E]) Poly[E] {
	out := make(Poly[E], len(p))
	copy(out, p)
	return out
}

// Constant returns the degree-0 polynomial c (or zero).
func (r *Ring[E]) Constant(c E) Poly[E] {
	if r.f.IsZero(c) {
		return nil
	}
	return Poly[E]{c}
}

// Eval evaluates p at x with Horner's rule: deg(p) multiplications and
// additions.
func (r *Ring[E]) Eval(p Poly[E], x E) E {
	acc := r.f.Zero()
	for i := len(p) - 1; i >= 0; i-- {
		acc = r.f.Add(r.f.Mul(acc, x), p[i])
	}
	return acc
}

// Add returns a + b.
func (r *Ring[E]) Add(a, b Poly[E]) Poly[E] {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Poly[E], len(a))
	copy(out, a)
	r.bulk.AddVec(out[:len(b)], out[:len(b)], b)
	return r.Normalize(out)
}

// Sub returns a - b.
func (r *Ring[E]) Sub(a, b Poly[E]) Poly[E] {
	n := max(len(a), len(b))
	m := min(len(a), len(b))
	out := make(Poly[E], n)
	r.bulk.SubVec(out[:m], a[:m], b[:m])
	// One operand is exhausted; the tail subtracts against zero, keeping the
	// same operation sequence the plain loop performed.
	zero := r.f.Zero()
	for i := m; i < len(a); i++ {
		out[i] = r.f.Sub(a[i], zero)
	}
	for i := m; i < len(b); i++ {
		out[i] = r.f.Sub(zero, b[i])
	}
	return r.Normalize(out)
}

// MulScalar returns c * p.
func (r *Ring[E]) MulScalar(c E, p Poly[E]) Poly[E] {
	if r.f.IsZero(c) {
		return nil
	}
	out := make(Poly[E], len(p))
	r.bulk.ScaleVec(out, c, p)
	return r.Normalize(out)
}

// MulNaive returns a * b by schoolbook multiplication, O(deg a * deg b).
func (r *Ring[E]) MulNaive(a, b Poly[E]) Poly[E] {
	a, b = r.Normalize(a), r.Normalize(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Poly[E], len(a)+len(b)-1)
	for i := range out {
		out[i] = r.f.Zero()
	}
	for i, av := range a {
		if r.f.IsZero(av) {
			continue
		}
		r.bulk.ScaleAccVec(out[i:i+len(b)], av, b)
	}
	return r.Normalize(out)
}

// Mul returns a * b, choosing NTT multiplication when available and the
// product is large enough to amortize the transforms.
func (r *Ring[E]) Mul(a, b Poly[E]) Poly[E] {
	a, b = r.Normalize(a), r.Normalize(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	if r.ntt == nil || outLen < r.nttThreshold {
		return r.MulNaive(a, b)
	}
	out, err := r.mulNTT(a, b)
	if err != nil {
		// Product too large for the field's subgroup: fall back.
		return r.MulNaive(a, b)
	}
	return out
}

// DivMod returns quotient and remainder with a = q*b + rem, deg(rem) <
// deg(b). It returns an error if b is zero. Large divisions over NTT fields
// use Newton iteration (O(M(n))); the rest use schoolbook long division.
func (r *Ring[E]) DivMod(a, b Poly[E]) (q, rem Poly[E], err error) {
	a, b = r.Normalize(a), r.Normalize(b)
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("poly: %w", field.ErrDivisionByZero)
	}
	if len(a) < len(b) {
		return nil, r.Clone(a), nil
	}
	return r.divModDispatch(a, b)
}

// divModNaive is schoolbook long division, O((deg a - deg b) * deg b).
func (r *Ring[E]) divModNaive(a, b Poly[E]) (q, rem Poly[E], err error) {
	leadInv, err := r.f.Inv(b[len(b)-1])
	if err != nil {
		return nil, nil, err
	}
	remBuf := r.Clone(a)
	q = make(Poly[E], len(a)-len(b)+1)
	for i := range q {
		q[i] = r.f.Zero()
	}
	for i := len(a) - 1; i >= len(b)-1; i-- {
		if r.f.IsZero(remBuf[i]) {
			continue
		}
		c := r.f.Mul(remBuf[i], leadInv)
		q[i-len(b)+1] = c
		r.bulk.SubScaleVec(remBuf[i-len(b)+1:i+1], c, b)
	}
	return r.Normalize(q), r.Normalize(remBuf[:len(b)-1]), nil
}

// Mod returns a mod b.
func (r *Ring[E]) Mod(a, b Poly[E]) (Poly[E], error) {
	_, rem, err := r.DivMod(a, b)
	return rem, err
}

// Derivative returns the formal derivative p'.
func (r *Ring[E]) Derivative(p Poly[E]) Poly[E] {
	p = r.Normalize(p)
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly[E], len(p)-1)
	for i := 1; i < len(p); i++ {
		// i * p[i] computed by repeated addition would be O(i); use the
		// field embedding of the integer i instead. This is correct in
		// prime fields and in GF(2^m) (where i mod 2 decides).
		out[i-1] = r.f.Mul(r.intToField(i), p[i])
	}
	return r.Normalize(out)
}

// intToField maps a small nonnegative integer into the field by its
// characteristic-aware embedding: n * 1.
func (r *Ring[E]) intToField(n int) E {
	// Double-and-add on the field's One; O(log n) additions.
	acc := r.f.Zero()
	one := r.f.One()
	for bit := 62; bit >= 0; bit-- {
		acc = r.f.Add(acc, acc)
		if n&(1<<bit) != 0 {
			acc = r.f.Add(acc, one)
		}
	}
	return acc
}

// PartialEEA runs the extended Euclidean algorithm on (a, b) and stops at
// the first remainder with degree < stopDeg. It returns (g, u, v) with
// g = u*a + v*b. This is the core of the Gao Reed-Solomon decoder.
func (r *Ring[E]) PartialEEA(a, b Poly[E], stopDeg int) (g, u, v Poly[E], err error) {
	r0, r1 := r.Normalize(a), r.Normalize(b)
	u0, u1 := Poly[E]{r.f.One()}, Poly[E](nil)
	v0, v1 := Poly[E](nil), Poly[E]{r.f.One()}
	for len(r0)-1 >= stopDeg {
		if len(r1) == 0 {
			// The remainder sequence terminated at zero before reaching
			// stopDeg (the gcd has high degree — e.g. decoding the all-zero
			// codeword). The zero remainder with its cofactors is the
			// correct final element: 0 = u1*a + v1*b.
			return r1, u1, v1, nil
		}
		q, rem, derr := r.DivMod(r0, r1)
		if derr != nil {
			return nil, nil, nil, derr
		}
		r0, r1 = r1, rem
		u0, u1 = u1, r.Sub(u0, r.Mul(q, u1))
		v0, v1 = v1, r.Sub(v0, r.Mul(q, v1))
	}
	return r0, u0, v0, nil
}

// Interpolate returns the unique polynomial of degree < len(xs) through the
// points (xs[i], ys[i]) by the classic O(n^2) Lagrange construction. The xs
// must be pairwise distinct.
func (r *Ring[E]) Interpolate(xs, ys []E) (Poly[E], error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: interpolate: %d points, %d values: %w", len(xs), len(ys), ErrDegreeMismatch)
	}
	n := len(xs)
	if n == 0 {
		return nil, nil
	}
	// master(z) = prod (z - xs[i])
	master := r.FromRootsNaive(xs)
	result := Poly[E](nil)
	for i := 0; i < n; i++ {
		// basis_i = master / (z - xs[i]), scaled by 1/basis_i(xs[i]).
		quot, rem, err := r.DivMod(master, Poly[E]{r.f.Neg(xs[i]), r.f.One()})
		if err != nil {
			return nil, err
		}
		if !r.IsZero(rem) {
			return nil, fmt.Errorf("poly: interpolate: internal division not exact")
		}
		denom := r.Eval(quot, xs[i])
		if r.f.IsZero(denom) {
			return nil, fmt.Errorf("poly: interpolate: duplicate point %v: %w", xs[i], ErrDegreeMismatch)
		}
		denomInv, err := r.f.Inv(denom)
		if err != nil {
			return nil, err
		}
		result = r.Add(result, r.MulScalar(r.f.Mul(ys[i], denomInv), quot))
	}
	return result, nil
}

// FromRootsNaive returns prod_i (z - roots[i]) by sequential multiplication,
// O(n^2).
func (r *Ring[E]) FromRootsNaive(roots []E) Poly[E] {
	acc := Poly[E]{r.f.One()}
	for _, root := range roots {
		acc = r.Mul(acc, Poly[E]{r.f.Neg(root), r.f.One()})
	}
	return acc
}

// EvalMany evaluates p at every point, O(n * deg p) via vectorized Horner.
func (r *Ring[E]) EvalMany(p Poly[E], xs []E) []E {
	out := make([]E, len(xs))
	r.EvalManyInto(out, p, xs)
	return out
}

// EvalManyInto is EvalMany writing into caller-owned scratch (len(out) must
// be at least len(xs)): each coefficient is folded into every accumulator
// with one HornerVec kernel call, so the whole evaluation performs
// len(p) kernel dispatches instead of len(p)*len(xs) scalar ones.
func (r *Ring[E]) EvalManyInto(out []E, p Poly[E], xs []E) {
	out = out[:len(xs)]
	for i := range out {
		out[i] = r.f.Zero()
	}
	for i := len(p) - 1; i >= 0; i-- {
		r.bulk.HornerVec(out, xs, p[i])
	}
}
