package csm

import (
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

func delegatedConfig(k, n, b int) Config[uint64] {
	cfg := baseConfig(k, n, b)
	cfg.NoEquivocation = true
	cfg.Delegated = true
	return cfg
}

func TestDelegatedRequiresBroadcastSync(t *testing.T) {
	cfg := baseConfig(2, 12, 2)
	cfg.Delegated = true // but NoEquivocation false
	if _, err := New(cfg); err == nil {
		t.Fatal("delegated mode without broadcast network must be rejected")
	}
	cfg = delegatedConfig(2, 12, 2)
	cfg.Mode = transport.PartialSync
	if _, err := New(cfg); err == nil {
		t.Fatal("delegated mode in partial synchrony must be rejected")
	}
}

func TestDelegatedHonestRound(t *testing.T) {
	cfg := delegatedConfig(3, 12, 2)
	cfg.InitialStates = [][]uint64{{10}, {20}, {30}}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 4) {
		if !res.Correct {
			t.Fatalf("round %d incorrect in delegated mode", r)
		}
	}
	// Honest nodes' coded states must match fresh encodings of the oracle.
	enc, err := c.code.EncodeVectors(c.OracleStates())
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.nodes {
		if n.behavior != Honest {
			continue
		}
		if !field.VecEqual[uint64](gold, n.codedState, enc[i]) {
			t.Fatalf("node %d coded state diverged", i)
		}
	}
}

func TestDelegatedToleratesLyingNodes(t *testing.T) {
	// Byzantine *nodes* (not the worker) corrupt their g_i; the worker's
	// Berlekamp-Welch decode corrects them and the tau proof names them.
	cfg := delegatedConfig(2, 14, 3)
	cfg.Byzantine = map[int]Behavior{3: WrongResult, 8: Silent, 11: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 3) {
		if !res.Correct {
			t.Fatalf("round %d incorrect with lying nodes", r)
		}
		if len(res.FaultyDetected) == 0 {
			t.Fatalf("round %d: liars not identified in tau complement", r)
		}
	}
}

func TestDelegatedByzantineWorkerRetried(t *testing.T) {
	// Round 0's worker (node 0) is Byzantine: it corrupts its coding work,
	// the auditors catch it, and the attempt is retried under node 1.
	cfg := delegatedConfig(2, 12, 2)
	cfg.Byzantine = map[int]Behavior{0: WrongResult}
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 1, 2, 1, 7)
	res, err := c.ExecuteRound(wl[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("round incorrect despite worker rotation")
	}
	// The retry costs extra ticks (more than one attempt's 4 phases).
	if res.Ticks <= 4 {
		t.Fatalf("expected a retried attempt, ticks=%d", res.Ticks)
	}
}

func TestDelegatedSilentWorkerRetried(t *testing.T) {
	cfg := delegatedConfig(2, 12, 2)
	cfg.Byzantine = map[int]Behavior{0: Silent}
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 1, 2, 1, 9)
	res, err := c.ExecuteRound(wl[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("round incorrect after silent worker")
	}
}

func TestDelegatedConsensusIntegration(t *testing.T) {
	cfg := delegatedConfig(2, 10, 2)
	cfg.Consensus = DolevStrong
	cfg.Byzantine = map[int]Behavior{4: WrongResult}
	c := newCluster(t, cfg)
	for r, res := range runRounds(t, c, 2) {
		if !res.Correct {
			t.Fatalf("round %d incorrect (delegated + Dolev-Strong)", r)
		}
	}
}

func TestDelegatedThroughputAdvantage(t *testing.T) {
	// The point of Section 6.2: per-node operation counts under delegation
	// are far below the decentralized mode at the same size, because only
	// the worker (plus auditors) pays coding costs instead of every node
	// decoding.
	const k, n, b, rounds = 8, 24, 8, 2
	run := func(delegated bool) uint64 {
		cfg := baseConfig(k, n, b)
		if delegated {
			cfg.NoEquivocation = true
			cfg.Delegated = true
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wl := RandomWorkload[uint64](gold, rounds, k, 1, 11)
		if _, err := c.Run(wl); err != nil {
			t.Fatal(err)
		}
		return c.OpCounts().Total()
	}
	decentralized := run(false)
	delegated := run(true)
	t.Logf("total ops, N=%d, %d rounds: decentralized=%d delegated=%d (%.1fx)",
		n, rounds, decentralized, delegated, float64(decentralized)/float64(delegated))
	if delegated >= decentralized {
		t.Fatalf("delegation should reduce total coding work: %d >= %d", delegated, decentralized)
	}
}
