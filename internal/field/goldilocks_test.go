package field

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func bigMod() *big.Int { return new(big.Int).SetUint64(GoldilocksModulus) }

// refAdd/refSub/refMul compute the expected results with math/big.
func refAdd(a, b uint64) uint64 {
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	x.Add(x, y).Mod(x, bigMod())
	return x.Uint64()
}

func refSub(a, b uint64) uint64 {
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	x.Sub(x, y).Mod(x, bigMod())
	return x.Uint64()
}

func refMul(a, b uint64) uint64 {
	x := new(big.Int).SetUint64(a)
	y := new(big.Int).SetUint64(b)
	x.Mul(x, y).Mod(x, bigMod())
	return x.Uint64()
}

func TestGoldilocksEdgeCases(t *testing.T) {
	g := NewGoldilocks()
	p := GoldilocksModulus
	cases := []uint64{0, 1, 2, goldEpsilon - 1, goldEpsilon, goldEpsilon + 1,
		1 << 32, (1 << 32) + 1, p - 2, p - 1, p / 2, p/2 + 1}
	for _, a := range cases {
		for _, b := range cases {
			if got, want := g.Add(a, b), refAdd(a, b); got != want {
				t.Errorf("Add(%d,%d) = %d, want %d", a, b, got, want)
			}
			if got, want := g.Sub(a, b), refSub(a, b); got != want {
				t.Errorf("Sub(%d,%d) = %d, want %d", a, b, got, want)
			}
			if got, want := g.Mul(a, b), refMul(a, b); got != want {
				t.Errorf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestGoldilocksAgainstBigInt(t *testing.T) {
	g := NewGoldilocks()
	cfg := &quick.Config{MaxCount: 2000}
	reduce := func(v uint64) uint64 { return g.FromUint64(v % GoldilocksModulus) }
	if err := quick.Check(func(a, b uint64) bool {
		a, b = reduce(a), reduce(b)
		return g.Add(a, b) == refAdd(a, b) &&
			g.Sub(a, b) == refSub(a, b) &&
			g.Mul(a, b) == refMul(a, b)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGoldilocksFieldAxioms(t *testing.T) {
	testFieldAxioms(t, NewGoldilocks(), 1)
}

func TestGoldilocksInv(t *testing.T) {
	g := NewGoldilocks()
	if _, err := g.Inv(0); err == nil {
		t.Fatal("Inv(0) should fail")
	}
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 200; i++ {
		a := g.Rand(r)
		if a == 0 {
			continue
		}
		inv, err := g.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if g.Mul(a, inv) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d", a)
		}
	}
}

func TestGoldilocksRootOfUnity(t *testing.T) {
	g := NewGoldilocks()
	for _, log2 := range []int{0, 1, 2, 3, 8, 16, 32} {
		order := uint64(1) << log2
		w, err := g.RootOfUnity(order)
		if err != nil {
			t.Fatalf("RootOfUnity(2^%d): %v", log2, err)
		}
		// w^order == 1 and w^(order/2) != 1 (primitivity).
		if got := Exp[uint64](g, w, order); got != 1 {
			t.Errorf("w^order = %d, want 1 (order 2^%d)", got, log2)
		}
		if order > 1 {
			if got := Exp[uint64](g, w, order/2); got == 1 {
				t.Errorf("w^(order/2) = 1, root of order 2^%d is not primitive", log2)
			}
		}
	}
	if _, err := g.RootOfUnity(3); err == nil {
		t.Error("RootOfUnity(3) should fail: not a power of two")
	}
	if _, err := g.RootOfUnity(1 << 33); err == nil {
		t.Error("RootOfUnity(2^33) should fail: exceeds subgroup")
	}
	if _, err := g.RootOfUnity(0); err == nil {
		t.Error("RootOfUnity(0) should fail")
	}
}

func TestGoldilocksElements(t *testing.T) {
	g := NewGoldilocks()
	elems, err := g.Elements(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, len(elems))
	for _, e := range elems {
		if seen[e] {
			t.Fatalf("duplicate element %d", e)
		}
		seen[e] = true
	}
	if _, err := g.Elements(-1); err == nil {
		t.Error("Elements(-1) should fail")
	}
}

func TestGoldilocksFromUint64Reduces(t *testing.T) {
	g := NewGoldilocks()
	if got := g.FromUint64(GoldilocksModulus); got != 0 {
		t.Errorf("FromUint64(p) = %d, want 0", got)
	}
	if got := g.FromUint64(GoldilocksModulus + 5); got != 5 {
		t.Errorf("FromUint64(p+5) = %d, want 5", got)
	}
}

// testFieldAxioms checks the field axioms with property-based testing.
// sampleSeed varies the RNG stream between fields.
func testFieldAxioms[E comparable](t *testing.T, f Field[E], sampleSeed uint64) {
	t.Helper()
	r := rand.New(rand.NewPCG(sampleSeed, 42))
	gen := func() E { return f.Rand(r) }
	for i := 0; i < 500; i++ {
		a, b, c := gen(), gen(), gen()
		if !f.Equal(f.Add(a, b), f.Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
			t.Fatal("multiplication not commutative")
		}
		if !f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) {
			t.Fatal("addition not associative")
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			t.Fatal("multiplication not associative")
		}
		if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
			t.Fatal("multiplication does not distribute over addition")
		}
		if !f.Equal(f.Add(a, f.Zero()), a) {
			t.Fatal("zero is not additive identity")
		}
		if !f.Equal(f.Mul(a, f.One()), a) {
			t.Fatal("one is not multiplicative identity")
		}
		if !f.Equal(f.Add(a, f.Neg(a)), f.Zero()) {
			t.Fatal("a + (-a) != 0")
		}
		if !f.Equal(f.Sub(a, b), f.Add(a, f.Neg(b))) {
			t.Fatal("a - b != a + (-b)")
		}
		if !f.IsZero(a) {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("Inv failed on nonzero element: %v", err)
			}
			if !f.Equal(f.Mul(a, inv), f.One()) {
				t.Fatal("a * a^-1 != 1")
			}
		}
	}
}

func BenchmarkGoldilocksMul(b *testing.B) {
	g := NewGoldilocks()
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = g.Mul(x, y)
	}
	sinkUint64 = x
}

func BenchmarkGoldilocksInv(b *testing.B) {
	g := NewGoldilocks()
	x := uint64(0x123456789abcdef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, _ = g.Inv(x)
	}
	sinkUint64 = x
}

var sinkUint64 uint64
