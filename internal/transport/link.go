package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Link operations after the link (or its peer
// group) has been closed.
var ErrClosed = errors.New("transport: link closed")

// Link is the per-node transport surface of a lock-step cluster: the
// interface a single node's process drives, as opposed to *Network, which
// a single-process simulation drives for all N nodes at once. Two
// implementations exist:
//
//   - NewLocalLinks adapts the simulated Network: N links in one process,
//     Step is a barrier that advances the shared network once all N nodes
//     have arrived. This is the deterministic test oracle.
//   - NewTCP speaks length-prefixed frames over real sockets: one link
//     per OS process, Step is a distributed barrier over per-peer DONE
//     markers. This is the production path.
//
// Both deliver messages with the synchronous model's one-round latency
// (sent in round r, delivered in round r+1) and both carry the same
// signed Message envelope, so a protocol driven over a Link is
// bit-identical across the two — the property the remote-engine
// equivalence tests pin.
//
// Simulation-only knobs (SetDown crash injection; the delay models and
// equivocation coercion of Config) are honoured by the local links and
// rejected with ErrSimulationOnly by the TCP transport.
type Link interface {
	// Self is the node this link belongs to.
	Self() NodeID
	// N is the cluster size.
	N() int
	// Round is the current lock-step round.
	Round() int
	// Send transmits a signed message to one node.
	Send(to NodeID, kind string, payload []byte) error
	// Broadcast transmits a signed message to every other node.
	Broadcast(kind string, payload []byte) error
	// Step ends this node's round: it blocks until every node in the
	// cluster has ended the same round, advances to the next one, and
	// returns the messages delivered to this node (everything sent to it
	// during the round that just ended). A TCP link configured with a
	// FailoverQuorum may instead advance once that many peers have ended
	// the round, suspecting the rest (see TCPConfig).
	Step() ([]Message, error)
	// SignBlob signs protocol content under a domain-separation context
	// with this node's key. Blob signatures survive re-broadcast by other
	// nodes (Dolev-Strong chains, PBFT view-change proofs), unlike the
	// per-message envelope signature, which binds sender and round.
	SignBlob(context string, data []byte) []byte
	// VerifyBlob verifies a blob signature produced by node id's SignBlob
	// against the cluster roster.
	VerifyBlob(id NodeID, context string, data, sig []byte) bool
	// SetDown injects a crash (simulation only; the TCP transport fails
	// with ErrSimulationOnly).
	SetDown(id NodeID, down bool) error
	// Close releases the link. Closing any link of a local group, or a
	// TCP link, aborts blocked and future Steps with ErrClosed.
	Close() error
}

// localGroup synchronizes the N local links of one simulated network:
// the last link to arrive at the barrier advances the network.
type localGroup struct {
	net     *Network
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	closed  bool
}

// localLink adapts one Endpoint of a simulated Network to the Link
// interface.
type localLink struct {
	g  *localGroup
	ep *Endpoint
}

// NewLocalLinks returns one Link per node of the simulated network. The
// links share a barrier: each node's Step blocks until all N nodes have
// called Step, the network advances exactly once, and every link then
// returns its own inbox — the same delivery schedule a single-process
// simulation sees, but drivable by N independent goroutines. Closing any
// link closes the whole group (the lock-step run cannot continue without
// every node).
func NewLocalLinks(net *Network) ([]Link, error) {
	g := &localGroup{net: net}
	g.cond = sync.NewCond(&g.mu)
	links := make([]Link, net.N())
	for i := range links {
		ep, err := net.Endpoint(NodeID(i))
		if err != nil {
			return nil, err
		}
		links[i] = &localLink{g: g, ep: ep}
	}
	return links, nil
}

func (l *localLink) Self() NodeID { return l.ep.ID() }
func (l *localLink) N() int       { return l.g.net.N() }
func (l *localLink) Round() int   { return l.g.net.Round() }

func (l *localLink) Send(to NodeID, kind string, payload []byte) error {
	return l.ep.Send(to, kind, payload)
}

func (l *localLink) Broadcast(kind string, payload []byte) error {
	return l.ep.Broadcast(kind, payload)
}

func (l *localLink) SignBlob(context string, data []byte) []byte {
	return l.ep.SignBlob(context, data)
}

func (l *localLink) VerifyBlob(id NodeID, context string, data, sig []byte) bool {
	return l.g.net.VerifyBlob(id, context, data, sig)
}

func (l *localLink) SetDown(id NodeID, down bool) error {
	return l.g.net.SetDown(id, down)
}

func (l *localLink) Step() ([]Message, error) {
	g := l.g
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("transport: local link %d: %w", l.ep.ID(), ErrClosed)
	}
	myGen := g.gen
	g.arrived++
	if g.arrived == g.net.N() {
		g.net.Step()
		g.arrived = 0
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == myGen && !g.closed {
			g.cond.Wait()
		}
	}
	closed := g.closed
	g.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: local link %d: %w", l.ep.ID(), ErrClosed)
	}
	return l.ep.Receive(), nil
}

func (l *localLink) Close() error {
	g := l.g
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	return nil
}
