// Fixture for the detmap analyzer, loaded under an in-scope protocol
// package path.
package fixture

import "sort"

func tally(votes map[int]int) int {
	total := 0
	for _, v := range votes { // want `range over map votes has nondeterministic order`
		total += v
	}
	return total
}

func tallySorted(votes map[int]int) int {
	keys := make([]int, 0, len(votes))
	//csmlint:allow detmap(keys are sorted before any order-dependent use)
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0
	for _, k := range keys { // slice iteration: deterministic, no finding
		total += votes[k]
	}
	return total
}

func sameLineAllow(votes map[int]int) int {
	n := 0
	for range votes { //csmlint:allow detmap(pure count, order-free)
		n++
	}
	return n
}

func notMaps(xs []int, s string, ch chan int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	for _, r := range s {
		total += int(r)
	}
	for x := range ch {
		total += x
	}
	return total
}
