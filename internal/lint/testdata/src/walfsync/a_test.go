// Test files are exempt from walfsync: test fixtures shuffle files
// without durability obligations.
package fixture

import "os"

func swapForTest(a, b string) error {
	return os.Rename(a, b) // no finding: _test.go file
}
