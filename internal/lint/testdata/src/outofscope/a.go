// Fixture exercising package scoping: every construct here would be
// flagged in an in-scope package, and the harness runs this directory
// under out-of-scope import paths expecting zero findings.
package fixture

import (
	"fmt"
	"os"
	"time"
)

func mapIteration(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func wallClock() time.Time {
	return time.Now()
}

func unsyncedRename(tmp, final string) error {
	return os.Rename(tmp, final)
}

func mapRender(m map[int]int) string {
	return fmt.Sprintf("%v", m)
}
