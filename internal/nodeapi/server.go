// The sequencer side of the ingress protocol, extracted from cmd/csmnode
// so its error paths are testable without real cluster processes: the
// Server owns accept/serve/cut mechanics and drives the engine through
// the narrow Sequencer interface.

package nodeapi

import (
	"errors"
	"fmt"
	"net"
)

// Sequencer is the engine surface the ingress Server drives — the
// sequencer-side node process, seen over plain uint64 command and output
// vectors (cmd/csmnode adapts the field-element engine to it).
type Sequencer interface {
	// Machines returns K, the number of coded state machines.
	Machines() int
	// CmdLen returns the per-machine command length.
	CmdLen() int
	// Round returns the next round to be sequenced.
	Round() int
	// Canonicalize maps raw client words into the engine's field.
	Canonicalize(cmd []uint64) []uint64
	// LeadRound sequences one round of K canonical commands through the
	// cluster and returns the K decoded outputs.
	LeadRound(cmds [][]uint64) ([][]uint64, error)
	// DigestSum returns the canonical run digest over every round
	// decoded so far.
	DigestSum() string
	// Stop stops the whole cluster (close op, or listener shutdown).
	Stop() error
}

// Server accepts ingress clients one at a time and sequences the rounds
// they submit. A round is cut as soon as every machine has a pending
// command; a flush cuts one immediately, padding idle machines with the
// identity command.
//
// Client misbehavior is contained: a malformed or over-long frame gets
// an error reply and drops that client, a mid-stream disconnect drops
// the client silently, and in both cases the server keeps accepting.
// Only a sequencing failure (the cluster itself broke) or a close op
// ends serving.
type Server struct {
	seq  Sequencer
	logf func(format string, a ...any)
}

// NewServer returns a server over the sequencer. logf, if non-nil,
// receives one line per contained client failure.
func NewServer(seq Sequencer, logf func(format string, a ...any)) *Server {
	return &Server{seq: seq, logf: logf}
}

func (s *Server) logClient(format string, a ...any) {
	if s.logf != nil {
		s.logf(format, a...)
	}
}

// Serve accepts clients on ln until a client closes the cluster (returns
// nil), the listener closes (stops the cluster so followers unwind, and
// returns Stop's error), or sequencing fails (returns that error).
func (s *Server) Serve(ln net.Listener) error {
	for {
		raw, err := ln.Accept()
		if err != nil {
			// Listener closed: a signal shutdown.
			return s.seq.Stop()
		}
		done, err := s.serveClient(NewConn(raw))
		raw.Close()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// serveClient drives one client session. done is true when the client
// closed the cluster (as opposed to only disconnecting); err is non-nil
// only for failures of the cluster itself — client-side misbehavior
// never stops the server.
func (s *Server) serveClient(conn *Conn) (done bool, err error) {
	K := s.seq.Machines()
	cmdLen := s.seq.CmdLen()
	pending := make([][][]uint64, K) // per-machine FIFO
	fail := func(msg string) {
		conn.WriteResponse(Response{Op: OpError, Msg: msg})
	}
	// cut sequences one round from the pending queues, padding machines
	// with nothing queued, and streams all K outputs back.
	cut := func() error {
		cmds := make([][]uint64, K)
		for m := 0; m < K; m++ {
			if len(pending[m]) > 0 {
				cmds[m] = pending[m][0]
				pending[m] = pending[m][1:]
			} else {
				cmds[m] = make([]uint64, cmdLen) // pad: identity command
			}
		}
		round := s.seq.Round()
		outs, err := s.seq.LeadRound(cmds)
		if err != nil {
			return err
		}
		for m, out := range outs {
			if err := conn.WriteResponse(Response{
				Op: OpResult, Round: round, Machine: m, Output: out,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	allPending := func() bool {
		for m := 0; m < K; m++ {
			if len(pending[m]) == 0 {
				return false
			}
		}
		return true
	}
	anyPending := func() bool {
		for m := 0; m < K; m++ {
			if len(pending[m]) > 0 {
				return true
			}
		}
		return false
	}
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if errors.Is(err, ErrMalformed) || errors.Is(err, ErrLineTooLong) {
				// Protocol violation: tell the client why, drop it, keep
				// serving.
				fail(err.Error())
				s.logClient("dropping ingress client: %v", err)
				return false, nil
			}
			// Client went away without closing the cluster; keep serving.
			return false, nil
		}
		switch req.Op {
		case OpSubmit:
			if req.Machine < 0 || req.Machine >= K {
				fail(fmt.Sprintf("machine %d out of range [0,%d)", req.Machine, K))
				return false, nil
			}
			if len(req.Cmd) != cmdLen {
				fail(fmt.Sprintf("command length %d, want %d", len(req.Cmd), cmdLen))
				return false, nil
			}
			pending[req.Machine] = append(pending[req.Machine], s.seq.Canonicalize(req.Cmd))
			for allPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
		case OpFlush:
			for anyPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
		case OpStatus:
			if err := conn.WriteResponse(Response{
				Op: OpStatus, Round: s.seq.Round(), Machine: K, Digest: s.seq.DigestSum(),
			}); err != nil {
				return false, nil
			}
		case OpClose:
			if anyPending() {
				if err := cut(); err != nil {
					fail(err.Error())
					return false, err
				}
			}
			if err := s.seq.Stop(); err != nil {
				fail(err.Error())
				return false, err
			}
			conn.WriteResponse(Response{Op: OpClosed, Digest: s.seq.DigestSum()})
			return true, nil
		default:
			fail(fmt.Sprintf("unknown op %q", req.Op))
			return false, nil
		}
	}
}
