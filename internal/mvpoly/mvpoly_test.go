package mvpoly

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
)

var gold = field.NewGoldilocks()

func mustParse(t *testing.T, expr string, vars []string) Poly[uint64] {
	t.Helper()
	p, err := Parse[uint64](gold, expr, vars)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return p
}

func evalAt(t *testing.T, p Poly[uint64], args ...uint64) uint64 {
	t.Helper()
	v, err := p.Eval(gold, args)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConstructors(t *testing.T) {
	z := Zero[uint64](3)
	if !z.IsZero() || z.NumVars() != 3 || z.TotalDegree() != -1 {
		t.Error("Zero malformed")
	}
	c := Constant[uint64](gold, 2, 7)
	if c.TotalDegree() != 0 || evalAt(t, c, 1, 2) != 7 {
		t.Error("Constant malformed")
	}
	if !Constant[uint64](gold, 2, 0).IsZero() {
		t.Error("Constant(0) should be zero")
	}
	v, err := Variable[uint64](gold, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if evalAt(t, v, 10, 20) != 20 {
		t.Error("Variable eval wrong")
	}
	if _, err := Variable[uint64](gold, 2, 2); err == nil {
		t.Error("out-of-range variable should fail")
	}
}

func TestFromTermsCanonicalization(t *testing.T) {
	// 3*x*y + 2*x*y - 5*x*y = 0 should vanish entirely.
	terms := []Term[uint64]{
		{Coeff: 3, Exps: []int{1, 1}},
		{Coeff: 2, Exps: []int{1, 1}},
		{Coeff: gold.Neg(5), Exps: []int{1, 1}},
	}
	p, err := FromTerms[uint64](gold, 2, terms)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsZero() {
		t.Errorf("expected cancellation, got %s", p.Format(gold, nil))
	}
	if _, err := FromTerms[uint64](gold, 2, []Term[uint64]{{Coeff: 1, Exps: []int{1}}}); err == nil {
		t.Error("wrong exps length should fail")
	}
	if _, err := FromTerms[uint64](gold, 1, []Term[uint64]{{Coeff: 1, Exps: []int{-1}}}); err == nil {
		t.Error("negative exponent should fail")
	}
}

func TestEvalArity(t *testing.T) {
	p := mustParse(t, "s0 + x0", []string{"s0", "x0"})
	if _, err := p.Eval(gold, []uint64{1}); !errors.Is(err, ErrArity) {
		t.Error("wrong arity should fail")
	}
}

func TestParseAndEval(t *testing.T) {
	vars := []string{"s0", "s1", "x0"}
	cases := []struct {
		expr string
		args []uint64
		want uint64
	}{
		{"s0 + x0", []uint64{3, 0, 4}, 7},
		{"s0*x0", []uint64{3, 0, 4}, 12},
		{"s0^2 + 2*s0*x0 + x0^2", []uint64{3, 0, 4}, 49},
		{"(s0 + x0)^2", []uint64{3, 0, 4}, 49},
		{"5", []uint64{1, 2, 3}, 5},
		{"s1 - s0", []uint64{3, 10, 0}, 7},
		{"-s0 + x0", []uint64{3, 0, 10}, 7},
		{"2*(s0 + s1)*(x0 - 1)", []uint64{1, 2, 3}, 12},
		{"s0^0", []uint64{9, 9, 9}, 1},
		{"s0 - s0", []uint64{5, 0, 0}, 0},
	}
	for _, tc := range cases {
		p := mustParse(t, tc.expr, vars)
		if got := evalAt(t, p, tc.args...); got != tc.want {
			t.Errorf("%q at %v = %d, want %d", tc.expr, tc.args, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	vars := []string{"x"}
	for _, expr := range []string{
		"", "x +", "y", "x^", "x^y", "(x", "x)", "3x", "x**x", "@", "x^-1", "x + + x",
	} {
		if _, err := Parse[uint64](gold, expr, vars); err == nil {
			t.Errorf("Parse(%q) should fail", expr)
		}
	}
	if _, err := Parse[uint64](gold, "x", []string{"x", "x"}); err == nil {
		t.Error("duplicate variable names should fail")
	}
	if _, err := Parse[uint64](gold, "x", []string{""}); err == nil {
		t.Error("empty variable name should fail")
	}
}

func TestTotalDegree(t *testing.T) {
	vars := []string{"s", "x"}
	cases := []struct {
		expr string
		deg  int
	}{
		{"s + x", 1},
		{"s*x", 2},
		{"s^2*x + x", 3},
		{"7", 0},
		{"s - s", -1},
	}
	for _, tc := range cases {
		p := mustParse(t, tc.expr, vars)
		if got := p.TotalDegree(); got != tc.deg {
			t.Errorf("deg(%q) = %d, want %d", tc.expr, got, tc.deg)
		}
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	// (p+q)(r) == p(r)+q(r), (p*q)(r) == p(r)*q(r) under random points.
	vars := []string{"a", "b", "c"}
	p := mustParse(t, "a^2 + b*c", vars)
	q := mustParse(t, "c - 2*a*b", vars)
	sum, err := p.Add(gold, q)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := p.Mul(gold, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		args := field.RandVec[uint64](gold, rng, 3)
		pv, qv := evalAt(t, p, args...), evalAt(t, q, args...)
		if got := evalAt(t, sum, args...); got != gold.Add(pv, qv) {
			t.Fatal("(p+q)(r) != p(r)+q(r)")
		}
		if got := evalAt(t, prod, args...); got != gold.Mul(pv, qv) {
			t.Fatal("(p*q)(r) != p(r)*q(r)")
		}
	}
	if _, err := p.Add(gold, Zero[uint64](2)); !errors.Is(err, ErrArity) {
		t.Error("mismatched nvars Add should fail")
	}
	if _, err := p.Mul(gold, Zero[uint64](2)); !errors.Is(err, ErrArity) {
		t.Error("mismatched nvars Mul should fail")
	}
}

func TestEqualAndTerms(t *testing.T) {
	vars := []string{"x", "y"}
	a := mustParse(t, "x + y^2", vars)
	b := mustParse(t, "y^2 + x", vars)
	if !a.Equal(gold, b) {
		t.Error("order-independent equality failed")
	}
	c := mustParse(t, "x + y", vars)
	if a.Equal(gold, c) {
		t.Error("distinct polynomials compare equal")
	}
	terms := a.Terms()
	terms[0].Exps[0] = 99
	if !a.Equal(gold, b) {
		t.Error("Terms() exposes internal state")
	}
}

func TestFormat(t *testing.T) {
	vars := []string{"s", "x"}
	p := mustParse(t, "s^2 + 3*x + 1", vars)
	got := p.Format(gold, vars)
	want := "1 + 3*x + s^2"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	if Zero[uint64](2).Format(gold, vars) != "0" {
		t.Error("zero format")
	}
	// Unnamed variables fall back to vN.
	if got := p.Format(gold, nil); got != "1 + 3*v1 + v0^2" {
		t.Errorf("Format(nil) = %q", got)
	}
}

func TestGF2mPolynomials(t *testing.T) {
	f, err := field.NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	// Over characteristic 2: (x+y)^2 = x^2 + y^2.
	vars := []string{"x", "y"}
	sq, err := Parse[uint64](f, "(x + y)^2", vars)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Parse[uint64](f, "x^2 + y^2", vars)
	if err != nil {
		t.Fatal(err)
	}
	if !sq.Equal(f, want) {
		t.Errorf("freshman's dream fails over GF(2^8): %s", sq.Format(f, vars))
	}
}
