package codedsm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: build a cluster from the library's machine constructors, run a
// workload under faults, and cross-check with the baselines.
func TestPublicAPIEndToEnd(t *testing.T) {
	gold := NewGoldilocks()
	cluster, err := NewCluster(ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: NewBank[uint64],
		K:             3, N: 12, MaxFaults: 2,
		Byzantine:     map[int]Behavior{4: WrongResult, 9: SilentNode},
		InitialStates: [][]uint64{{100}, {200}, {300}},
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 3, 3, 1, 2)
	for r, cmds := range wl {
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
	if cluster.OpCounts().Total() == 0 {
		t.Error("no throughput accounting")
	}
}

func TestPublicAPICustomMachine(t *testing.T) {
	gold := NewGoldilocks()
	tr, err := FromExprs[uint64](gold, "amm-ish",
		[]string{"r0", "r1"}, []string{"dx"},
		[]string{"r0 + dx", "r1 + 2*dx"},
		[]string{"r0*r1 + dx^2"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() != 2 || tr.StateLen() != 2 {
		t.Fatalf("degree=%d stateLen=%d", tr.Degree(), tr.StateLen())
	}
	m, err := NewMachine(tr, []uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Step([]uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Output is f(S(t), X(t)) — evaluated on the *current* state (3, 4).
	if out[0] != 3*4+1 {
		t.Errorf("out = %v", out)
	}
	if st := m.State(); st[0] != 4 || st[1] != 6 {
		t.Errorf("next state = %v", st)
	}
}

func TestPublicAPIBooleanOverGF2m(t *testing.T) {
	f, err := NewGF2m(16)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig[uint64]{
		BaseField: f,
		NewTransition: func(ff Field[uint64]) (*Transition[uint64], error) {
			return NewBooleanMachine(ff, "xor", 1, 1, 1,
				func(s, c uint64) (uint64, uint64) { return (s ^ c) & 1, s & c & 1 })
		},
		K: 2, N: 8, MaxFaults: 1,
		Byzantine: map[int]Behavior{3: WrongResult},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmds := [][]uint64{PackBits(f, 1, 1), PackBits(f, 0, 1)}
	res, err := cluster.ExecuteRound(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("Boolean cluster incorrect")
	}
	bit, err := UnpackBits(f, res.Outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = bit
}

// TestPublicAPIOpenAndSubmit exercises the options constructor and the
// Submit-based ingress through the facade, including the typed-error
// taxonomy a downstream service is expected to program against.
func TestPublicAPIOpenAndSubmit(t *testing.T) {
	gold := NewGoldilocks()
	cluster, err := Open(gold, NewBank[uint64],
		WithNodes(12), WithMachines(3), WithFaults(2),
		WithByzantine(map[int]Behavior{4: WrongResult, 9: SilentNode}),
		WithInitialStates([][]uint64{{100}, {200}, {300}}),
		WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := cluster.Open(WithDeterministicAdmission(), WithSubmitQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var futs []*Future[uint64]
	for k := 0; k < 3; k++ {
		fut, err := client.Submit(ctx, k, []uint64{uint64(k + 1)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	for k, fut := range futs {
		out, err := fut.Wait(ctx)
		if err != nil {
			t.Fatalf("machine %d: %v", k, err)
		}
		if want := uint64(100*(k+1) + k + 1); out[0] != want {
			t.Fatalf("machine %d output %d, want %d", k, out[0], want)
		}
	}
	if _, err := client.Submit(ctx, 0, []uint64{1}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// The typed construction errors surface through the facade.
	if _, err := Open(gold, NewBank[uint64], WithNodes(6), WithMachines(2), WithFaults(1),
		WithByzantine(map[int]Behavior{0: WrongResult, 1: WrongResult})); !errors.Is(err, ErrFaultBudgetExceeded) {
		t.Fatalf("budget error %v, want ErrFaultBudgetExceeded", err)
	}
	// And mid-workload failures carry a BatchError.
	bad := RandomWorkload[uint64](gold, 2, 3, 1, 3)
	bad[1] = bad[1][:1]
	_, err = cluster.Run(bad)
	var batchErr *BatchError[uint64]
	if !errors.As(err, &batchErr) || batchErr.Round != 1 || len(batchErr.Completed) != 1 {
		t.Fatalf("run error %v, want BatchError at round 1 with 1 completed", err)
	}
}

// TestPublicAPIRoundsStreaming consumes a workload through the streaming
// iterator.
func TestPublicAPIRoundsStreaming(t *testing.T) {
	gold := NewGoldilocks()
	cluster, err := Open(gold, NewBank[uint64],
		WithNodes(12), WithMachines(3), WithFaults(2), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for res, err := range cluster.Rounds(RandomWorkload[uint64](gold, 3, 3, 1, 4)) {
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d incorrect", rounds)
		}
		rounds++
	}
	if rounds != 3 {
		t.Fatalf("streamed %d rounds, want 3", rounds)
	}
}

func TestPublicAPIBaselinesAndExperiments(t *testing.T) {
	gold := NewGoldilocks()
	full, err := OpenFullReplication(gold, NewBank[uint64],
		WithReplNodes(6), WithReplMachines(2), WithReplSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if full.Security() != 2 {
		t.Errorf("full security %d", full.Security())
	}
	attack, err := ConcentratedAttack(6, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(attack) != 2 {
		t.Errorf("attack size %d", len(attack))
	}
	rows, err := Table2(15, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("threshold mismatch: %+v", r)
		}
	}
	if !strings.Contains(RenderTable2(rows), "decoding") {
		t.Error("render")
	}
	if SyncMaxMachines(31, 5, 2) != 11 {
		t.Error("capacity helper")
	}
	if PSyncMaxFaults(31, 11, 2) < 0 {
		t.Error("psync helper")
	}
}

func TestPublicAPIIntermix(t *testing.T) {
	gold := NewGoldilocks()
	a := [][]uint64{{1, 2}, {3, 4}, {5, 6}}
	x := []uint64{7, 8}
	out, err := RunIntermix(IntermixSession[uint64]{
		F: gold, A: a, X: x, NetworkSize: 6,
		Mu: 0.3, Epsilon: 0.05, Seed: 1,
		WorkerStrategy: NaiveLiar, CorruptRow: 1, CorruptCol: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("liar accepted")
	}
	j, err := CommitteeSize(0.05, 0.3)
	if err != nil || j < 1 {
		t.Errorf("J=%d err=%v", j, err)
	}
}

func TestPublicAPIPolynomialUtilities(t *testing.T) {
	gold := NewGoldilocks()
	p, err := ParsePolynomial[uint64](gold, "a^2 + 2*b", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Eval(gold, []uint64{3, 4})
	if err != nil || v != 17 {
		t.Errorf("eval = %d, %v", v, err)
	}
	ring := NewRing[uint64](gold)
	if !ring.HasNTT() {
		t.Error("Goldilocks ring should be NTT-capable")
	}
}

func TestPublicAPIPartiallySynchronousPBFT(t *testing.T) {
	gold := NewGoldilocks()
	cluster, err := NewCluster(ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: NewQuadraticTally[uint64],
		K:             2, N: 13, MaxFaults: 3,
		Mode: PartiallySynchronous, GST: 0,
		Consensus: PBFT,
		Byzantine: map[int]Behavior{6: WrongResult},
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 2, 2, 1, 4)
	for r, cmds := range wl {
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("round %d incorrect", r)
		}
	}
}

func TestPublicAPIDelegatedMode(t *testing.T) {
	gold := NewGoldilocks()
	cluster, err := NewCluster(ClusterConfig[uint64]{
		BaseField:     gold,
		NewTransition: NewBank[uint64],
		K:             3, N: 12, MaxFaults: 2,
		NoEquivocation: true,
		Delegated:      true,
		Byzantine:      map[int]Behavior{4: WrongResult},
		Seed:           21,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := RandomWorkload[uint64](gold, 2, 3, 1, 22)
	for r, cmds := range wl {
		res, err := cluster.ExecuteRound(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Fatalf("delegated round %d incorrect", r)
		}
	}
	// Liveness and repair are part of the public surface too.
	if err := cluster.RepairNode(7); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.RunQueue(RandomWorkload[uint64](gold, 1, 3, 1, 23), 0); err != nil {
		t.Fatal(err)
	}
}
