package sm

import (
	"testing"

	"codedsm/internal/field"
)

func gf16(t *testing.T) *field.GF2m {
	t.Helper()
	f, err := field.NewGF2m(16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBooleanXORCounter(t *testing.T) {
	// A 2-bit machine: next = state XOR cmd, out = AND of the two state
	// bits after update.
	f := gf16(t)
	fn := func(state, cmd uint64) (uint64, uint64) {
		next := (state ^ cmd) & 3
		out := (next & 1) & (next >> 1 & 1)
		return next, out
	}
	tr, err := NewBoolean(f, "xor2", 2, 2, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degree() > 4 {
		t.Errorf("degree %d exceeds n=4 (Appendix A bound)", tr.Degree())
	}
	// Exhaustive agreement with the Boolean function.
	for state := uint64(0); state < 4; state++ {
		for cmd := uint64(0); cmd < 4; cmd++ {
			wantNext, wantOut := fn(state, cmd)
			next, out, err := tr.Apply(PackBits(f, state, 2), PackBits(f, cmd, 2))
			if err != nil {
				t.Fatal(err)
			}
			gotNext, err := UnpackBits(f, next)
			if err != nil {
				t.Fatal(err)
			}
			gotOut, err := UnpackBits(f, out)
			if err != nil {
				t.Fatal(err)
			}
			if gotNext != wantNext || gotOut != wantOut {
				t.Errorf("state=%d cmd=%d: got (%d,%d), want (%d,%d)",
					state, cmd, gotNext, gotOut, wantNext, wantOut)
			}
		}
	}
}

func TestBooleanFullAdder(t *testing.T) {
	// State: 1 carry bit. Command: 2 addend bits. Output: 1 sum bit.
	f := gf16(t)
	fn := func(state, cmd uint64) (uint64, uint64) {
		a, b, cin := cmd&1, cmd>>1&1, state&1
		sum := a ^ b ^ cin
		cout := (a & b) | (a & cin) | (b & cin)
		return cout, sum
	}
	tr, err := NewBoolean(f, "adder", 1, 2, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for state := uint64(0); state < 2; state++ {
		for cmd := uint64(0); cmd < 4; cmd++ {
			wantNext, wantOut := fn(state, cmd)
			next, out, err := tr.Apply(PackBits(f, state, 1), PackBits(f, cmd, 2))
			if err != nil {
				t.Fatal(err)
			}
			gotNext, _ := UnpackBits(f, next)
			gotOut, _ := UnpackBits(f, out)
			if gotNext != wantNext || gotOut != wantOut {
				t.Errorf("carry=%d cmd=%02b: got (%d,%d), want (%d,%d)",
					state, cmd, gotNext, gotOut, wantNext, wantOut)
			}
		}
	}
}

func TestBooleanValidation(t *testing.T) {
	f := gf16(t)
	fn := func(state, cmd uint64) (uint64, uint64) { return 0, 0 }
	if _, err := NewBoolean(f, "t", 0, 1, 1, fn); err == nil {
		t.Error("zero state bits should fail")
	}
	if _, err := NewBoolean(f, "t", 1, 0, 1, fn); err == nil {
		t.Error("zero cmd bits should fail")
	}
	if _, err := NewBoolean(f, "t", 1, 1, 0, fn); err == nil {
		t.Error("zero out bits should fail")
	}
	if _, err := NewBoolean(f, "t", 8, 8, 1, fn); err == nil {
		t.Error("16 input bits should exceed the expansion limit")
	}
}

func TestPackUnpackBits(t *testing.T) {
	f := gf16(t)
	v := uint64(0b1011)
	packed := PackBits(f, v, 4)
	got, err := UnpackBits(f, packed)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("round trip = %#b", got)
	}
	if _, err := UnpackBits(f, []uint64{2}); err == nil {
		t.Error("non-embedded element should fail to unpack")
	}
}

func TestBooleanConstantFunction(t *testing.T) {
	// Always-one output: polynomial is the constant 1 (sum over all 2^n
	// assignments).
	f := gf16(t)
	fn := func(state, cmd uint64) (uint64, uint64) { return 0, 1 }
	tr, err := NewBoolean(f, "const1", 1, 1, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for state := uint64(0); state < 2; state++ {
		for cmd := uint64(0); cmd < 2; cmd++ {
			_, out, err := tr.Apply(PackBits(f, state, 1), PackBits(f, cmd, 1))
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := UnpackBits(f, out); got != 1 {
				t.Errorf("const1(%d,%d) = %d", state, cmd, got)
			}
		}
	}
}
