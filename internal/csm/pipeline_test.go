package csm

import (
	"bytes"
	"errors"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/transport"
)

// TestPipelinedBitIdenticalToSequential mirrors
// TestParallelRoundsBitIdenticalToSequential for the pipelined engine: for
// every Byzantine scenario, a sequential cluster and a pipelined one (same
// seed, BatchSize 1) must produce byte-identical round reports — outputs,
// correctness, detected-fault sets, skips, and tick counts — plus
// identical coded states, oracle states, and field-operation totals.
func TestPipelinedBitIdenticalToSequential(t *testing.T) {
	const rounds = 6
	for name, cfg := range parallelScenarios() {
		t.Run(name, func(t *testing.T) {
			seqCfg, pipeCfg := cfg, cfg
			seqCfg.Pipeline = 0
			pipeCfg.Pipeline = 4
			seq := newCluster(t, seqCfg)
			pipe := newCluster(t, pipeCfg)
			wl := RandomWorkload[uint64](gold, rounds, cfg.K, seq.tr.CmdLen(), 7)
			seqRes, err := seq.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			pipeRes, err := pipe.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			if len(seqRes) != len(pipeRes) {
				t.Fatalf("round counts differ: %d vs %d", len(seqRes), len(pipeRes))
			}
			for r := range seqRes {
				if !bytes.Equal(encodeRound(t, seqRes[r]), encodeRound(t, pipeRes[r])) {
					t.Fatalf("round %d diverged:\nsequential: %+v\npipelined:  %+v", r, seqRes[r], pipeRes[r])
				}
				if !seqRes[r].Correct {
					t.Fatalf("round %d incorrect (scenario must execute cleanly)", r)
				}
			}
			for i := 0; i < cfg.N; i++ {
				seqState, err := seq.NodeCodedState(i)
				if err != nil {
					t.Fatal(err)
				}
				pipeState, err := pipe.NodeCodedState(i)
				if err != nil {
					t.Fatal(err)
				}
				if !field.VecEqual[uint64](gold, seqState, pipeState) {
					t.Fatalf("node %d coded state diverged", i)
				}
			}
			for k, seqState := range seq.OracleStates() {
				if !field.VecEqual[uint64](gold, seqState, pipe.OracleStates()[k]) {
					t.Fatalf("oracle state %d diverged", k)
				}
			}
			if seqOps, pipeOps := seq.OpCounts(), pipe.OpCounts(); seqOps != pipeOps {
				t.Fatalf("op counts diverged: sequential %+v, pipelined %+v", seqOps, pipeOps)
			}
		})
	}
}

// TestRunPipelinedForcesPipelining pins that RunPipelined works without
// the config knob (DefaultPipelineDepth) and matches Run.
func TestRunPipelinedForcesPipelining(t *testing.T) {
	cfg := baseConfig(2, 12, 3)
	cfg.Byzantine = map[int]Behavior{1: WrongResult, 5: Silent}
	seq := newCluster(t, cfg)
	pipe := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 4, 2, seq.tr.CmdLen(), 11)
	seqRes, err := seq.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	pipeRes, err := pipe.RunPipelined(wl)
	if err != nil {
		t.Fatal(err)
	}
	for r := range seqRes {
		if !bytes.Equal(encodeRound(t, seqRes[r]), encodeRound(t, pipeRes[r])) {
			t.Fatalf("round %d diverged", r)
		}
	}
}

// TestPipelinedPartialSyncByzantineMixRace is the race-detector workout:
// a partially synchronous network that stabilizes mid-workload, a
// Byzantine mix at the fault budget, command batching, and a pipeline
// deep enough for >= 3 rounds in flight (depth 4 => up to 5). Run with
// -race in CI.
func TestPipelinedPartialSyncByzantineMixRace(t *testing.T) {
	cfg := baseConfig(2, 16, 4)
	cfg.Mode = transport.PartialSync
	cfg.GST = 3 // pre-GST rounds exercise the sequential-transmit path too
	cfg.NoEquivocation = false
	cfg.Byzantine = map[int]Behavior{0: WrongResult, 3: Silent, 8: Equivocate, 13: WrongResult}
	cfg.Pipeline = 4
	cfg.BatchSize = 3
	cfg.Parallelism = 8
	c := newCluster(t, cfg)
	wl := RandomWorkload[uint64](gold, 12, 2, c.tr.CmdLen(), 13)
	results, err := c.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(wl) {
		t.Fatalf("completed %d/%d rounds", len(results), len(wl))
	}
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("round %d incorrect under pipelined partial synchrony", r)
		}
	}
}

// TestRunPartialResultsOnError pins the Run error contract: a
// mid-workload failure returns the reports of every fully completed round
// (a workload prefix) plus a BatchError carrying that prefix and the
// failed round's index — on both engines.
func TestRunPartialResultsOnError(t *testing.T) {
	wl := RandomWorkload[uint64](gold, 5, 2, 1, 3)
	wl[3] = [][]uint64{{1, 2}, {3}} // malformed: wrong command length
	for _, pipeline := range []int{0, 4} {
		cfg := baseConfig(2, 12, 3)
		cfg.Pipeline = pipeline
		c := newCluster(t, cfg)
		out, err := c.Run(wl)
		if err == nil {
			t.Fatalf("pipeline=%d: malformed round must fail", pipeline)
		}
		if len(out) != 3 {
			t.Fatalf("pipeline=%d: %d completed rounds returned, want 3", pipeline, len(out))
		}
		var batchErr *BatchError[uint64]
		if !errors.As(err, &batchErr) {
			t.Fatalf("pipeline=%d: error is not a BatchError: %v", pipeline, err)
		}
		if batchErr.Round != 3 {
			t.Fatalf("pipeline=%d: error blames round %d, want 3: %v", pipeline, batchErr.Round, err)
		}
		if len(batchErr.Completed) != len(out) {
			t.Fatalf("pipeline=%d: BatchError carries %d completed rounds, want %d",
				pipeline, len(batchErr.Completed), len(out))
		}
		for r, res := range out {
			if !res.Correct {
				t.Fatalf("pipeline=%d: completed round %d incorrect", pipeline, r)
			}
		}
		if c.Round() != 3 {
			t.Fatalf("pipeline=%d: cluster advanced %d rounds, want 3", pipeline, c.Round())
		}
	}
	// Batched: the batch containing the malformed round fails up front
	// (none of its rounds execute) and the error names the offending
	// round, not just the batch head.
	wl = RandomWorkload[uint64](gold, 6, 2, 1, 3)
	wl[5] = [][]uint64{{1, 2}, {3}}
	cfg := baseConfig(2, 12, 3)
	cfg.BatchSize = 3
	c := newCluster(t, cfg)
	out, err := c.Run(wl)
	var batchErr *BatchError[uint64]
	if err == nil || !errors.As(err, &batchErr) || batchErr.Round != 5 {
		t.Fatalf("batched error must name the malformed round (5): %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("batched: %d completed rounds returned, want 3 (first batch only)", len(out))
	}
}

// TestPipelineConfigValidation pins the knob rules.
func TestPipelineConfigValidation(t *testing.T) {
	cfg := baseConfig(2, 9, 2)
	cfg.Pipeline = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative Pipeline must be rejected")
	}
	cfg = baseConfig(2, 9, 2)
	cfg.BatchSize = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative BatchSize must be rejected")
	}
	cfg = baseConfig(2, 12, 2)
	cfg.NoEquivocation = true
	cfg.Delegated = true
	cfg.Pipeline = 2
	if _, err := New(cfg); err == nil {
		t.Error("Pipeline + Delegated must be rejected")
	}
	// RunPipelined on a delegated cluster is rejected too.
	cfg.Pipeline = 0
	c := newCluster(t, cfg)
	if _, err := c.RunPipelined(RandomWorkload[uint64](gold, 1, 2, 1, 3)); err == nil {
		t.Error("RunPipelined on a delegated cluster must fail")
	}
	if _, err := c.ExecuteBatch(nil); err == nil {
		t.Error("empty batch must fail")
	}
}
