package lint

import (
	"go/ast"
	"go/types"
)

// WireMap flags map-typed values being formatted or gob-encoded on
// wire/digest paths. Byte streams that another process, a CRC, or a
// run digest will see must be bit-identical across runs; fmt's
// rendering of a map is not a stable wire codec, and encoding/gob
// serializes map entries in random iteration order — the PR 2
// tally-by-wire-bytes bug class. Wire paths must use the fixed binary
// codec (length-prefixed, little-endian, sorted keys); a map headed
// for a log line rather than the wire carries
// //csmlint:allow wiremap(reason).
var WireMap = &Analyzer{
	Name: "wiremap",
	Doc: "flag fmt formatting and gob encoding of map-typed values in wire/digest " +
		"packages (transport, nodeapi, wal, csm, consensus); maps must be serialized " +
		"through the fixed binary codec with sorted keys",
	Run: runWireMap,
}

// fmtRenderFuncs are the fmt functions whose output could feed a wire
// frame, a digest, or a file.
var fmtRenderFuncs = map[string]bool{
	"Sprint":   true,
	"Sprintf":  true,
	"Sprintln": true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
	"Appendf":  true,
	"Append":   true,
	"Appendln": true,
}

func runWireMap(pass *Pass) error {
	if !pathMatchesAny(pass.Path, wirePkgs) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg := importedPackage(pass, sel); pkg != nil && pkg.Path() == "fmt" && fmtRenderFuncs[sel.Sel.Name] {
					for _, arg := range call.Args {
						if t := argType(pass, arg); t != nil && containsMapType(t) {
							pass.Reportf(arg.Pos(),
								"fmt.%s renders map-typed %s; map formatting is not a wire codec — serialize through the fixed binary codec with sorted keys, or annotate //csmlint:allow wiremap(reason)",
								sel.Sel.Name, types.ExprString(arg))
						}
					}
				}
				if sel.Sel.Name == "Encode" && isGobEncoder(pass, sel.X) {
					for _, arg := range call.Args {
						if t := argType(pass, arg); t != nil && containsMapType(t) {
							pass.Reportf(arg.Pos(),
								"gob-encoding map-typed %s serializes entries in random iteration order; wire bytes must come from the fixed binary codec with sorted keys",
								types.ExprString(arg))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func argType(pass *Pass, arg ast.Expr) types.Type {
	tv, ok := pass.Info.Types[arg]
	if !ok {
		return nil
	}
	return tv.Type
}

// containsMapType reports whether t is a map, a pointer to one, or a
// struct/slice/array carrying one — any shape whose default rendering
// depends on iteration order.
func containsMapType(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var rec func(types.Type) bool
	rec = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Map:
			return true
		case *types.Pointer:
			return rec(u.Elem())
		case *types.Slice:
			return rec(u.Elem())
		case *types.Array:
			return rec(u.Elem())
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if rec(u.Field(i).Type()) {
					return true
				}
			}
		}
		return false
	}
	return rec(t)
}

// isGobEncoder reports whether expr is an *encoding/gob.Encoder.
func isGobEncoder(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob" && obj.Name() == "Encoder"
}
