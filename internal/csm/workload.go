package csm

import "math/rand/v2"

// newWorkloadRNG isolates workload randomness from protocol randomness.
func newWorkloadRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x90ad))
}
