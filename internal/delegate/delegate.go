// Package delegate implements Section 6.2 of the paper: delegating all of
// CSM's coding work (command encoding, state updates, result decoding) to a
// single worker node so that the network-wide coding complexity drops from
// O(N*K) per round (every node encodes by inner product) to
// O(N log^2 N log log N) at one node — with every step verifiable by the
// rest of the network through INTERMIX.
//
// The worker proves three claims per round:
//
//  1. encoding:  X̃ = C X   (the Lagrange coefficient matrix times the
//     agreed commands) — audited directly as a matrix-vector product;
//  2. decoding:  the coefficients b of h(z) satisfy equation (9): there is
//     a set τ of at least (N+K'+1)/2 node indices whose received results
//     match V_τ b, where V is the Vandermonde matrix of the alphas;
//  3. outputs:   equation (8): the machine outputs are Ω b with
//     Ω = [ω_k^j].
//
// All three are matrix-vector products, so INTERMIX applies as a black box.
package delegate

import (
	"errors"
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/rs"
)

// CorruptMode selects how a Byzantine delegate misbehaves.
type CorruptMode int

const (
	// HonestDelegate performs all coding correctly.
	HonestDelegate CorruptMode = iota
	// CorruptEncoding returns a wrong coded command for one node.
	CorruptEncoding
	// CorruptDecoding returns wrong polynomial coefficients.
	CorruptDecoding
	// CorruptOutputs returns wrong final outputs for one machine.
	CorruptOutputs
)

// String implements fmt.Stringer.
func (m CorruptMode) String() string {
	switch m {
	case HonestDelegate:
		return "honest"
	case CorruptEncoding:
		return "corrupt-encoding"
	case CorruptDecoding:
		return "corrupt-decoding"
	case CorruptOutputs:
		return "corrupt-outputs"
	default:
		return fmt.Sprintf("CorruptMode(%d)", int(m))
	}
}

// ErrProofInvalid reports a delegate proof the auditors rejected.
var ErrProofInvalid = errors.New("delegate: proof rejected")

// Delegation wraps an lcc.Code with worker-side fast coding and
// auditor-side verification.
type Delegation[E comparable] struct {
	code *lcc.Code[E]
	ring *poly.Ring[E]
	f    field.Field[E]
	mode CorruptMode

	// Parallelism fans the worker's per-component Reed-Solomon decodes
	// across goroutines (the worker is the only node doing coding work in
	// this mode, so across-node fan-out does not apply). Results are
	// identical for any value. 1 decodes sequentially; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

// New creates a delegation layer over the given code.
func New[E comparable](ring *poly.Ring[E], code *lcc.Code[E], mode CorruptMode) *Delegation[E] {
	return &Delegation[E]{code: code, ring: ring, f: ring.Field(), mode: mode, Parallelism: 1}
}

// Mode returns the delegate's corruption mode.
func (d *Delegation[E]) Mode() CorruptMode { return d.mode }

// EncodeCommands is the worker's fast path: interpolation over the omegas
// plus multi-point evaluation at the alphas per vector component,
// O((N+K) log^2) with NTT — versus O(N*K) for the distributed inner-product
// encoding it replaces.
func (d *Delegation[E]) EncodeCommands(cmds [][]E) ([][]E, error) {
	coded, err := d.code.EncodeVectorsFast(cmds)
	if err != nil {
		return nil, err
	}
	if d.mode == CorruptEncoding && len(coded) > 0 && len(coded[0]) > 0 {
		coded[0][0] = d.f.Add(coded[0][0], d.f.One())
	}
	return coded, nil
}

// AuditEncoding verifies the claimed coded commands against X̃ = C X using
// INTERMIX per vector component: the auditor recomputes, and on fraud the
// interactive bisection pins a constant-time-checkable inconsistency.
// It returns ErrProofInvalid if any component fails.
func (d *Delegation[E]) AuditEncoding(cmds, claimed [][]E) error {
	if len(claimed) != d.code.N() {
		return fmt.Errorf("delegate: %d coded commands for N=%d: %w", len(claimed), d.code.N(), ErrProofInvalid)
	}
	if len(cmds) != d.code.K() {
		return fmt.Errorf("delegate: %d commands for K=%d: %w", len(cmds), d.code.K(), ErrProofInvalid)
	}
	comps := len(cmds[0])
	c := d.code.Coeffs()
	for j := 0; j < comps; j++ {
		x := make([]E, d.code.K())
		for k := range x {
			x[k] = cmds[k][j]
		}
		output := make([]E, d.code.N())
		for i := range output {
			output[i] = claimed[i][j]
		}
		// The worker's answer function recomputes truthfully on the real
		// data; the *claim* under audit is the published output.
		answer := func(row, lo, hi int) (E, error) {
			acc := d.f.Zero()
			for idx := lo; idx < hi; idx++ {
				acc = d.f.Add(acc, d.f.Mul(c[row][idx], x[idx]))
			}
			return acc, nil
		}
		alert, err := intermix.Audit(d.f, c, x, output, answer)
		if err != nil {
			return err
		}
		if alert != nil {
			return fmt.Errorf("delegate: encoding component %d: %v at row %d: %w",
				j, alert.Kind, alert.Row, ErrProofInvalid)
		}
	}
	return nil
}

// DecodeProof is the worker's published evidence for a decoded round:
// per result component, the coefficients of h and the agreeing set τ.
type DecodeProof[E comparable] struct {
	// Dim is the RS dimension K' + 1 = d(K-1) + 1.
	Dim int
	// Coeffs[j] are the coefficients of h_j (length <= Dim).
	Coeffs []poly.Poly[E]
	// Tau[j] lists at least (N + K' + 1)/2 node indices whose submitted
	// results equal h_j(alpha_i) (equation (9)).
	Tau [][]int
}

// DecodeWithProof is the worker's decode, producing outputs and a proof.
// The paper offhandedly names Berlekamp-Welch for this step while claiming
// quasilinear cost; BW's linear-algebra formulation is cubic, so the worker
// uses the Gao extended-Euclidean decoder (the quasilinear-capable one);
// DecodeBW remains available and is compared in the decoder ablation
// benchmarks.
func (d *Delegation[E]) DecodeWithProof(results [][]E, degree int) (*lcc.DecodeResult[E], *DecodeProof[E], error) {
	if len(results) != d.code.N() {
		return nil, nil, fmt.Errorf("delegate: %d results for N=%d", len(results), d.code.N())
	}
	dim := d.code.ResultDim(degree)
	code, err := rs.NewCode(d.ring, d.code.Alphas(), dim)
	if err != nil {
		return nil, nil, err
	}
	comps := len(results[0])
	proof := &DecodeProof[E]{Dim: dim, Coeffs: make([]poly.Poly[E], comps), Tau: make([][]int, comps)}
	outputs := make([][]E, d.code.K())
	for k := range outputs {
		outputs[k] = make([]E, comps)
	}
	// Transpose into per-component words and fan the independent
	// Reed-Solomon decodes across the worker's goroutines.
	words := make([][]E, comps)
	for j := 0; j < comps; j++ {
		word := make([]E, d.code.N())
		for i := range results {
			if len(results[i]) != comps {
				return nil, nil, fmt.Errorf("delegate: ragged results")
			}
			word[i] = results[i][j]
		}
		words[j] = word
	}
	decs, err := code.DecodeMany(words, d.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	faulty := map[int]bool{}
	for j, res := range decs {
		proof.Coeffs[j] = res.Message
		tau := make([]int, 0, d.code.N()-len(res.ErrorsAt))
		errSet := map[int]bool{}
		for _, e := range res.ErrorsAt {
			errSet[e] = true
			faulty[e] = true
		}
		for i := 0; i < d.code.N(); i++ {
			if !errSet[i] {
				tau = append(tau, i)
			}
		}
		proof.Tau[j] = tau
		vals := d.ring.EvalMany(res.Message, d.code.Omegas())
		for k := 0; k < d.code.K(); k++ {
			outputs[k][j] = vals[k]
		}
	}
	if d.mode == CorruptDecoding && comps > 0 {
		proof.Coeffs[0] = d.ring.Add(proof.Coeffs[0], poly.Poly[E]{d.f.One()})
	}
	if d.mode == CorruptOutputs && comps > 0 {
		outputs[0][0] = d.f.Add(outputs[0][0], d.f.One())
	}
	dec := &lcc.DecodeResult[E]{Outputs: outputs, FaultyNodes: sortedKeys(faulty)}
	return dec, proof, nil
}

// VerifyDecodeProof is the auditors' check of a published decode: for each
// component, the τ set is large enough and the Vandermonde identities (9)
// and (8) hold. Both are matrix-vector claims; this verifier recomputes
// them directly, which is what an INTERMIX auditor does before any
// interaction is needed.
func (d *Delegation[E]) VerifyDecodeProof(results [][]E, degree int, proof *DecodeProof[E], outputs [][]E) error {
	n := d.code.N()
	dim := d.code.ResultDim(degree)
	if proof == nil || proof.Dim != dim {
		return fmt.Errorf("delegate: wrong proof dimension: %w", ErrProofInvalid)
	}
	comps := len(proof.Coeffs)
	if comps == 0 || len(proof.Tau) != comps {
		return fmt.Errorf("delegate: malformed proof: %w", ErrProofInvalid)
	}
	// Threshold |τ| >= N - (N - K' - 1)/2 = (N + K' + 1)/2 with K' = dim-1.
	threshold := (n + dim) / 2 // == (n + (dim-1) + 1) / 2
	alphas := d.code.Alphas()
	for j := 0; j < comps; j++ {
		h := proof.Coeffs[j]
		if d.ring.Deg(h) >= dim {
			return fmt.Errorf("delegate: component %d: degree %d too high: %w", j, d.ring.Deg(h), ErrProofInvalid)
		}
		tau := proof.Tau[j]
		if len(tau) < threshold {
			return fmt.Errorf("delegate: component %d: |tau|=%d below threshold %d: %w",
				j, len(tau), threshold, ErrProofInvalid)
		}
		seen := map[int]bool{}
		for _, i := range tau {
			if i < 0 || i >= n || seen[i] {
				return fmt.Errorf("delegate: component %d: bad tau entry %d: %w", j, i, ErrProofInvalid)
			}
			seen[i] = true
			// Equation (9): h(alpha_i) must equal the received g_i.
			if !d.f.Equal(d.ring.Eval(h, alphas[i]), results[i][j]) {
				return fmt.Errorf("delegate: component %d: tau node %d mismatch: %w", j, i, ErrProofInvalid)
			}
		}
	}
	// Equation (8): outputs = evaluations of h at the omegas.
	if len(outputs) != d.code.K() {
		return fmt.Errorf("delegate: %d outputs for K=%d: %w", len(outputs), d.code.K(), ErrProofInvalid)
	}
	for j := 0; j < comps; j++ {
		vals := d.ring.EvalMany(proof.Coeffs[j], d.code.Omegas())
		for k := 0; k < d.code.K(); k++ {
			if len(outputs[k]) != comps {
				return fmt.Errorf("delegate: ragged outputs: %w", ErrProofInvalid)
			}
			if !d.f.Equal(outputs[k][j], vals[k]) {
				return fmt.Errorf("delegate: output (%d,%d) mismatch: %w", k, j, ErrProofInvalid)
			}
		}
	}
	return nil
}

// UpdateStates is the worker's fast coded-state refresh (same machinery as
// command encoding, Section 6.2 "Updating coded states").
func (d *Delegation[E]) UpdateStates(nextStates [][]E) ([][]E, error) {
	return d.EncodeCommands(nextStates)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
