package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"codedsm/internal/csm"
	"codedsm/internal/sm"
)

// BenchmarkShardedThroughput measures the routed serving path end to
// end: concurrent submitters push individual commands through
// Router.Submit, each shard's admission scheduler coalesces its slice of
// the traffic into rounds and consensus batches, and S coded clusters
// execute concurrently. Each op is one submitted command, so aggregate
// commands/sec = 1 / (ns_op * 1e-9).
//
// The S axis is the scaling claim the router exists for: one cluster's
// machine capacity is capped by Table 2 (K ≤ (N-2b-1)/d + 1), so
// serving more machines means more clusters. Here every shard is an
// identical N=12 cluster serving ~6 machines and the global machine
// count grows with S (M = 6·S); commands spread uniformly. A flat ns_op
// from S=1 to S=4 is 4x the aggregate machines served at the same
// per-command cost — that S=1 vs S=4 comparison is recorded as
// BENCH_PR10.json.
func BenchmarkShardedThroughput(b *testing.B) {
	const (
		perShard = 6  // machines per shard (ring-balanced on average)
		nodes    = 12 // per shard
		faults   = 1  // per shard
		seed     = 11
	)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		machines := perShard * shards
		ring, err := NewRing(shards, DefaultVirtualNodes, seed)
		if err != nil {
			b.Fatal(err)
		}
		maxLoad := 0
		for _, l := range ring.Loads(machines) {
			if l > maxLoad {
				maxLoad = l
			}
		}
		for _, submitters := range []int{1, 4, 8} {
			name := fmt.Sprintf("S=%d/N=%d/M=%d/submitters=%d", shards, nodes, machines, submitters)
			b.Run(name, func(b *testing.B) {
				// Tight slots (no rebalance headroom): idle-slot padding
				// would bill skewed rings for machines that do not exist.
				rt, err := Open(gold, sm.NewBank[uint64],
					WithShards(shards), WithMachines(machines), WithSeed(seed),
					WithSlots(maxLoad),
					WithClusterOptions(
						csm.WithNodes(nodes), csm.WithFaults(faults),
						csm.WithByzantineNode(3, csm.WrongResult),
						csm.WithParallelism(2), csm.WithBatching(4)))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						for i := s; i < b.N; i += submitters {
							machine := i % machines
							if _, err := rt.Submit(ctx, machine, []uint64{uint64(i)}); err != nil {
								b.Error(err)
								return
							}
						}
					}(s)
				}
				wg.Wait()
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
			})
		}
	}
}
