// Fixture for the shadow analyzer.
package fixture

import "errors"

func sum(rows [][]int) int {
	n := 0
	for _, row := range rows {
		for _, n := range row { // want `declaration of "n" shadows a int declared at`
			_ = n
		}
	}
	return n
}

func rebind(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := x * 2 // want `declaration of "total" shadows a int declared at`
			_ = total
		}
	}
	return total
}

func errExempt() error {
	err := errors.New("outer")
	if true {
		err := errors.New("inner") // err is exempt by convention: no finding
		_ = err
	}
	return err
}

func differentType() int {
	v := 0
	{
		v := "shadow of a different type is a rebind, not a hazard"
		_ = v
	}
	return v
}

func noUseAfter(xs []int) {
	n := 0
	_ = n // only use of the outer n precedes the shadow
	for _, x := range xs {
		n := x // outer n never read after this scope ends: no finding
		_ = n
	}
}
