package field

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// GoldilocksModulus is p = 2^64 - 2^32 + 1, a prime whose multiplicative
// group has order p-1 = 2^32 * (2^32 - 1), i.e. it contains a subgroup of
// order 2^32 — large enough for NTT-based fast polynomial arithmetic on any
// network size this library simulates.
const GoldilocksModulus uint64 = 0xffffffff00000001

// goldEpsilon is 2^32 - 1; note 2^64 ≡ goldEpsilon (mod p).
const goldEpsilon uint64 = 0xffffffff

// maxNTTLog2 is the log2 of the largest power-of-two subgroup order.
const maxNTTLog2 = 32

// Goldilocks is GF(p) with p = 2^64 - 2^32 + 1. Elements are canonical
// uint64 values in [0, p). The zero value of Goldilocks is ready to use.
type Goldilocks struct{}

var _ NTTField[uint64] = Goldilocks{}

// NewGoldilocks returns the Goldilocks prime field GF(2^64 - 2^32 + 1).
func NewGoldilocks() Goldilocks { return Goldilocks{} }

// Name implements Field.
func (Goldilocks) Name() string { return "GF(2^64-2^32+1)" }

// Zero implements Field.
func (Goldilocks) Zero() uint64 { return 0 }

// One implements Field.
func (Goldilocks) One() uint64 { return 1 }

// FromUint64 implements Field, reducing v modulo p.
func (Goldilocks) FromUint64(v uint64) uint64 {
	if v >= GoldilocksModulus {
		v -= GoldilocksModulus
	}
	return v
}

// Uint64 implements Field.
func (Goldilocks) Uint64(e uint64) uint64 { return e }

// Add implements Field.
func (Goldilocks) Add(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		// s = a+b-2^64; true value ≡ s + 2^32 - 1 (mod p). With canonical
		// inputs the addition below cannot overflow again.
		s += goldEpsilon
	}
	if s >= GoldilocksModulus {
		s -= GoldilocksModulus
	}
	return s
}

// Sub implements Field.
func (Goldilocks) Sub(a, b uint64) uint64 {
	d, borrow := bits.Sub64(a, b, 0)
	if borrow != 0 {
		// d = a-b+2^64; true value ≡ d - (2^32 - 1) (mod p). With canonical
		// inputs d ≥ 2^32, so this cannot underflow.
		d -= goldEpsilon
	}
	return d
}

// Neg implements Field.
func (g Goldilocks) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return GoldilocksModulus - a
}

// Mul implements Field.
func (Goldilocks) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return goldReduce(hi, lo)
}

// goldReduce reduces the 128-bit value hi*2^64 + lo modulo p, using
// 2^64 ≡ 2^32 - 1 and 2^96 ≡ -1 (mod p).
func goldReduce(hi, lo uint64) uint64 {
	hiHi := hi >> 32
	hiLo := hi & goldEpsilon
	// t0 = lo - hiHi (mod p)
	t0, borrow := bits.Sub64(lo, hiHi, 0)
	if borrow != 0 {
		t0 -= goldEpsilon
	}
	// t1 = hiLo * (2^32 - 1); fits in 64 bits since hiLo < 2^32.
	t1 := hiLo * goldEpsilon
	s, carry := bits.Add64(t0, t1, 0)
	if carry != 0 {
		s += goldEpsilon
	}
	if s >= GoldilocksModulus {
		s -= GoldilocksModulus
	}
	return s
}

// Inv implements Field via Fermat's little theorem: a^(p-2).
func (g Goldilocks) Inv(a uint64) (uint64, error) {
	if a == 0 {
		return 0, ErrDivisionByZero
	}
	return goldExp(a, GoldilocksModulus-2), nil
}

func goldExp(base, e uint64) uint64 {
	var gl Goldilocks
	result := uint64(1)
	acc := base
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = gl.Mul(result, acc)
		}
		acc = gl.Mul(acc, acc)
	}
	return result
}

// Equal implements Field.
func (Goldilocks) Equal(a, b uint64) bool { return a == b }

// IsZero implements Field.
func (Goldilocks) IsZero(a uint64) bool { return a == 0 }

// Rand implements Field.
func (Goldilocks) Rand(r *rand.Rand) uint64 { return r.Uint64N(GoldilocksModulus) }

// Elements implements Field: it returns 0, 1, ..., n-1.
func (Goldilocks) Elements(n int) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("field: negative element count %d", n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out, nil
}

// goldGenerator generates the full multiplicative group of GF(p).
const goldGenerator uint64 = 7

// RootOfUnity implements NTTField. order must be a power of two at most
// 2^32.
func (g Goldilocks) RootOfUnity(order uint64) (uint64, error) {
	if order == 0 || order&(order-1) != 0 {
		return 0, fmt.Errorf("field: root-of-unity order %d is not a power of two", order)
	}
	log2 := bits.TrailingZeros64(order)
	if log2 > maxNTTLog2 {
		return 0, fmt.Errorf("field: root-of-unity order 2^%d exceeds maximum 2^%d", log2, maxNTTLog2)
	}
	// w = g^((p-1)/2^32) is a primitive 2^32-th root; square down to order.
	w := goldExp(goldGenerator, (GoldilocksModulus-1)>>maxNTTLog2)
	for i := maxNTTLog2; i > log2; i-- {
		w = g.Mul(w, w)
	}
	return w, nil
}
