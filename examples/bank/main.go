// Bank: the paper's motivating scenario (Section 1) — multiple financial
// institutions keep their customers' accounts on a shared pool of commodity
// machines, some of which are compromised. Each institution is one state
// machine; CSM runs all of them with full security AND full storage
// efficiency, with real consensus (Dolev-Strong) on every command batch.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"codedsm"
)

const (
	numBanks = 2  // K
	numNodes = 10 // N
	faults   = 2  // b: tolerated Byzantine nodes
)

func main() {
	gold := codedsm.NewGoldilocks()
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(numNodes),
		codedsm.WithMachines(numBanks),
		codedsm.WithFaults(faults),
		codedsm.WithConsensus(codedsm.DolevStrong),        // real agreement on every batch
		codedsm.WithByzantineNode(3, codedsm.WrongResult), // corrupts execution results
		codedsm.WithByzantineNode(7, codedsm.SilentNode),  // withholds results entirely
		codedsm.WithInitialStates([][]uint64{{5_000}, {12_000}}),
		codedsm.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	neg := gold.Neg // withdrawals are additive inverses in GF(p)
	ledger := [][][]uint64{
		{{250}, {neg(1_000)}}, // bank A: +250, bank B: -1000
		{{neg(75)}, {3_000}},  // bank A: -75,  bank B: +3000
		{{1_125}, {neg(500)}}, // ...
		{{neg(300)}, {42}},    //
	}
	fmt.Printf("%d banks on %d untrusted nodes (b=%d: one liar, one silent), Dolev-Strong consensus\n\n",
		numBanks, numNodes, faults)
	for r, batch := range ledger {
		res, err := cluster.ExecuteRound(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d (consensus+execution took %d network rounds): correct=%v detected=%v\n",
			r, res.Ticks, res.Correct, res.FaultyDetected)
		for k, out := range res.Outputs {
			fmt.Printf("  bank %c balance: %d\n", 'A'+k, out[0])
		}
	}

	// Cross-check against an independent uncoded ledger.
	tr, err := codedsm.NewBank[uint64](gold)
	if err != nil {
		log.Fatal(err)
	}
	oracleA, _ := codedsm.NewMachine(tr, []uint64{5_000})
	oracleB, _ := codedsm.NewMachine(tr, []uint64{12_000})
	for _, batch := range ledger {
		if _, err := oracleA.Step(batch[0]); err != nil {
			log.Fatal(err)
		}
		if _, err := oracleB.Step(batch[1]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nindependent uncoded ledgers agree: A=%d B=%d\n",
		oracleA.State()[0], oracleB.State()[0])
}
