package csm

import (
	"encoding/binary"
	"fmt"

	"codedsm/internal/field"
	"codedsm/internal/ints"
	"codedsm/internal/transport"
)

// runExecution drives the coded execution phase for an agreed batch. It
// returns the round report and the number of lock-step ticks consumed.
// Node-level work runs on cfg.Parallelism workers (see parallel.go); the
// phase split keeps rounds bit-identical to sequential execution.
func (c *Cluster[E]) runExecution(agreed [][]E) (*RoundResult[E], int, error) {
	// Compute phase (parallel): every node computes its true coded result;
	// Byzantine behaviour is applied at broadcast time (the adversary knows
	// the true value).
	results, err := c.computeAllResults(agreed)
	if err != nil {
		return nil, 0, err
	}
	// Broadcast phase (sequential, in node order): Byzantine lies consume
	// the cluster RNG and messages enter the lock-step network.
	for i, n := range c.nodes {
		n.received = make(map[int][]E, c.cfg.N)
		n.decoded = nil
		if err := n.broadcastResult(results[i]); err != nil {
			return nil, 0, err
		}
	}
	ticks := 0
	deadline := 1 // synchronous networks: results arrive in exactly one tick
	for {
		c.net.Step()
		ticks++
		// Collect sequentially (inbox draining), then decode in parallel —
		// the expensive Reed-Solomon work. Only nodes that have reached the
		// N-b result threshold are fanned out; the rest cannot decode yet
		// (tryDecode would return immediately), so delay-heavy ticks spawn
		// no workers at all.
		need := c.cfg.N - c.cfg.MaxFaults
		pending := 0
		ready := make([]*node[E], 0, len(c.nodes))
		for _, n := range c.nodes {
			if n.behavior != Honest || n.decoded != nil {
				continue
			}
			n.collect(n.ep.Receive())
			pending++
			if len(n.received) >= need {
				ready = append(ready, n)
			}
		}
		force := c.cfg.Mode == transport.PartialSync || ticks >= deadline
		allDecoded, err := c.tryDecodeAll(ready, force)
		if err != nil {
			return nil, ticks, err
		}
		if allDecoded && len(ready) == pending {
			break
		}
		if ticks >= c.cfg.MaxTicksPerRound {
			return nil, ticks, fmt.Errorf("%w (after %d ticks)", ErrRoundStuck, ticks)
		}
	}
	// Advance the ground-truth oracle.
	oracleOutputs := make([][]E, c.cfg.K)
	for k, m := range c.oracle {
		out, err := m.Step(agreed[k])
		if err != nil {
			return nil, ticks, err
		}
		oracleOutputs[k] = out
	}
	res := c.clientPhase(oracleOutputs)
	return res, ticks, nil
}

// clientPhase simulates the M clients collecting per-node replies: a client
// accepts an output once b+1 nodes report the same value (Table 2, output
// delivery: 2b+1 <= N). Byzantine nodes report garbage. The result is then
// audited against the oracle execution.
func (c *Cluster[E]) clientPhase(oracleOutputs [][]E) *RoundResult[E] {
	f := c.cfg.BaseField
	res := &RoundResult[E]{
		Outputs: make([][]E, c.cfg.K),
		Correct: true,
	}
	faulty := make(map[int]bool)
	var keyBuf []byte
	for k := 0; k < c.cfg.K; k++ {
		counts := make(map[string]int)
		values := make(map[string][]E)
		for _, n := range c.nodes {
			var reply []E
			switch {
			case n.behavior != Honest:
				reply = field.RandVec(f, c.rng, c.tr.OutLen())
			case n.decoded != nil:
				reply = n.decoded.outputs[k]
			default:
				continue
			}
			// Tally replies by their canonical wire bytes; formatting the
			// vector through fmt was a per-node-per-machine allocation storm.
			keyBuf = keyBuf[:0]
			for _, e := range reply {
				keyBuf = binary.LittleEndian.AppendUint64(keyBuf, f.Uint64(e))
			}
			key := string(keyBuf)
			counts[key]++
			values[key] = reply
		}
		for key, cnt := range counts {
			if cnt >= c.cfg.MaxFaults+1 {
				res.Outputs[k] = values[key]
				break
			}
		}
		if res.Outputs[k] == nil || !field.VecEqual(f, res.Outputs[k], oracleOutputs[k]) {
			res.Correct = false
		}
	}
	// Consistency audit: every honest node must hold the same decoded next
	// states, matching the oracle.
	oracleStates := c.OracleStates()
	for _, n := range c.nodes {
		if n.behavior != Honest || n.decoded == nil {
			continue
		}
		for _, idx := range n.decoded.faulty {
			faulty[idx] = true
		}
		for k := 0; k < c.cfg.K; k++ {
			if !field.VecEqual(f, n.decoded.nextStates[k], oracleStates[k]) {
				res.Correct = false
			}
		}
	}
	res.FaultyDetected = ints.SortedKeys(faulty)
	return res
}

// Run executes a whole workload: rounds[r][k] is machine k's command vector
// in round r. It returns the per-round results.
func (c *Cluster[E]) Run(rounds [][][]E) ([]*RoundResult[E], error) {
	out := make([]*RoundResult[E], 0, len(rounds))
	for r, cmds := range rounds {
		res, err := c.ExecuteRound(cmds)
		if err != nil {
			return out, fmt.Errorf("csm: round %d: %w", r, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// RandomWorkload generates a reproducible workload: rounds x K command
// vectors of the transition's command length.
func RandomWorkload[E comparable](f field.Field[E], rounds, k, cmdLen int, seed uint64) [][][]E {
	rng := newWorkloadRNG(seed)
	out := make([][][]E, rounds)
	for r := range out {
		out[r] = make([][]E, k)
		for i := range out[r] {
			out[r][i] = field.RandVec(f, rng, cmdLen)
		}
	}
	return out
}
