// Shardedledger: the paper's blockchain motivation (Sections 1 and 7). A
// sharded ledger assigns each shard (state machine) to a small group of
// nodes — exactly partial replication. A dynamic adversary who sees the
// assignment captures one group with a handful of corruptions. CSM runs the
// same shards on the same nodes and survives Θ(N) corruptions. The final
// act serves the same ledger through the shard router (internal/shard):
// when the ledger outgrows one cluster's Table 2 capacity, the
// consistent-hash ingress spreads its shards over independent coded
// clusters behind the same client surface.
//
//	go run ./examples/shardedledger
package main

import (
	"context"
	"fmt"
	"log"

	"codedsm"
)

const (
	shards = 4  // K
	nodes  = 16 // N, so each shard group has q = 4 nodes
)

func main() {
	gold := codedsm.NewGoldilocks()

	// --- Partial replication under a concentrated (dynamic) attack ---
	attack, err := codedsm.ConcentratedAttack(nodes, shards, 1) // capture shard 1
	if err != nil {
		log.Fatal(err)
	}
	partial, err := codedsm.OpenPartialReplication(gold, codedsm.NewBank[uint64],
		codedsm.WithReplNodes(nodes), codedsm.WithReplMachines(shards),
		codedsm.WithReplByzantine(attack), codedsm.WithReplSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	cmds := [][]uint64{{100}, {200}, {300}, {400}}
	res, err := partial.ExecuteRound(cmds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial replication (q=%d per shard), adversary corrupts %d nodes of shard 1:\n",
		partial.GroupSize(), len(attack))
	fmt.Printf("  round correct = %v  <- shard 1's clients accepted a forged balance!\n\n", res.Correct)

	// --- CSM with the same number of corruptions, anywhere ---
	byz := map[int]codedsm.Behavior{}
	for node := range attack {
		byz[node] = codedsm.WrongResult
	}
	budget := len(attack)
	maxShards := codedsm.SyncMaxMachines(nodes, budget, 1)
	if maxShards < shards {
		log.Fatalf("capacity: %d", maxShards)
	}
	cluster, err := codedsm.Open(gold, codedsm.NewBank[uint64],
		codedsm.WithNodes(nodes), codedsm.WithMachines(shards), codedsm.WithFaults(budget),
		codedsm.WithByzantine(byz), codedsm.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	resCSM, err := cluster.ExecuteRound(cmds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSM, same %d corrupted nodes (no group to capture — every node holds a coded mix):\n", budget)
	fmt.Printf("  round correct = %v, liars identified = %v\n\n", resCSM.Correct, resCSM.FaultyDetected)

	// --- Section 7 statistics: static vs dynamic adversary on random allocation ---
	static := codedsm.RandomAllocationExperiment{
		N: nodes, K: shards, Budget: budget, Kind: codedsm.StaticAdversary, Seed: 5,
	}
	dynamic := codedsm.RandomAllocationExperiment{
		N: nodes, K: shards, Budget: budget, Kind: codedsm.DynamicAdversary, Seed: 5,
	}
	fs, err := static.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	fd, err := dynamic.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random re-allocation of shards: static adversary captures a shard in %.1f%% of epochs,\n", 100*fs)
	fmt.Printf("a dynamic (post-facto) adversary in %.1f%% — CSM needs %d corruptions either way.\n\n",
		100*fd, codedsm.SyncMaxFaults(nodes, shards, 1)+1)

	// --- Scaling out: the same ledger behind the shard router ---
	// One cluster caps its machine count at Table 2's K ≤ (N-2b-1)/d + 1.
	// Past that, the routing ingress serves the ledger's shards from
	// independent coded clusters picked by consistent hashing, with the
	// same Submit/Future surface (and each serving cluster still tolerates
	// the full budget of corruptions anywhere among its nodes).
	ctx := context.Background()
	router, err := codedsm.OpenRouter(gold, codedsm.NewBank[uint64],
		codedsm.WithShards(2), codedsm.WithShardMachines(shards),
		codedsm.WithShardSeed(8),
		codedsm.WithShardClusterOptions(
			codedsm.WithNodes(nodes), codedsm.WithFaults(budget),
			codedsm.WithByzantineNode(2, codedsm.WrongResult)))
	if err != nil {
		log.Fatal(err)
	}
	var futs []*codedsm.RouterFuture[uint64]
	for m, cmd := range cmds {
		fut, err := router.Submit(ctx, m, cmd)
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if _, err := fut.Wait(ctx); err != nil {
			log.Fatal(err)
		}
	}
	if err := router.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard router: the %d ledger shards served by %d coded clusters (loads %v, Byzantine node in each):\n",
		shards, router.Shards(), router.Loads())
	for m := range cmds {
		state, err := router.MachineState(m)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := router.ShardOf(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ledger shard %d (cluster %d): balance %d\n", m, cl, state[0])
	}
}
