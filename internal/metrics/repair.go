package metrics

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"text/tabwriter"

	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/lcc"
	"codedsm/internal/poly"
	"codedsm/internal/sm"
)

// RepairRow is one measured point of the repair-cost experiment
// (Section 7, Remark 5): what re-provisioning one crashed node costs in
// field operations, against two baselines — the per-node cost of an
// ordinary execution round (repair should be of the same order, so churn
// is cheap), and the naive replacement cost of re-downloading and
// re-encoding all K machine states (what random-allocation schemes pay,
// which is why they cannot rotate groups frequently).
type RepairRow struct {
	N, K, B int
	// RepairOps: field operations of one lcc.RepairShare reconstruction —
	// interpolate the encoding polynomial from surviving shares, evaluate
	// it at the replacement node's point.
	RepairOps uint64
	// RoundOpsPerNode: steady-state execution ops per node per round, for
	// scale.
	RoundOpsPerNode float64
	// FullDecodeOps: the cost of the indirect route RepairShare replaces —
	// decode the surviving shares all the way to the K machine states
	// (lcc.DecodeOutputsSubset) and re-encode coordinate i — measured over
	// the same share matrix with the same number of corrupted rows.
	FullDecodeOps uint64
	// Correct reports that the cluster stayed oracle-correct through the
	// crash, the repair, and the rejoined node's subsequent rounds.
	Correct bool
}

// RepairCost measures the repair experiment for each network size: run a
// cluster with µN Byzantine nodes for rounds/2 rounds, crash one honest
// node, run to rounds, rejoin it through a coded-state repair, and charge
// the reconstruction. Byzantine nodes contribute garbage shares to the
// repair, which the decoder corrects like any other error.
func RepairCost(ns []int, mu float64, d, rounds int, seed uint64) ([]RepairRow, error) {
	out := make([]RepairRow, 0, len(ns))
	gold := field.NewGoldilocks()
	for _, n := range ns {
		b := int(mu * float64(n))
		k := lcc.SyncMaxMachines(n, b, d)
		if k < 1 {
			return nil, fmt.Errorf("metrics: no capacity at N=%d mu=%.2f d=%d", n, mu, d)
		}
		// Inject b-1 liars: b errors would consume the whole 2b parity
		// budget, leaving no symbol for the crash erasure under test.
		byz := map[int]csm.Behavior{}
		for i := 0; i < b-1; i++ {
			byz[(i*3+1)%n] = csm.WrongResult
		}
		// The crash target must be honest and off the Byzantine stride.
		target := 0
		for byz[target] != csm.Honest {
			target++
		}
		half := max(rounds/2, 1)
		cluster, err := csm.Open(gold,
			func(f field.Field[uint64]) (*sm.Transition[uint64], error) {
				return sm.NewPolynomialRegister(f, d)
			},
			csm.WithNodes(n), csm.WithMachines(k), csm.WithFaults(b),
			csm.WithByzantine(byz), csm.WithSeed(seed),
			csm.WithChurn(
				csm.ChurnEvent{Round: half, Node: target, Op: csm.ChurnCrash},
				csm.ChurnEvent{Round: 2 * half, Node: target, Op: csm.ChurnRejoin},
			))
		if err != nil {
			return nil, err
		}
		wl := csm.RandomWorkload[uint64](gold, 2*half+1, k, cluster.Transition().CmdLen(), seed)
		completed := 0
		correct := true
		for res, err := range cluster.Rounds(wl) {
			if err != nil {
				return nil, fmt.Errorf("metrics: repair run N=%d: %d/%d rounds completed: %w",
					n, completed, len(wl), err)
			}
			correct = correct && res.Correct
			completed++
		}
		stats := cluster.RepairStats()
		if stats.Repairs != 1 {
			return nil, fmt.Errorf("metrics: N=%d: %d repairs, want 1", n, stats.Repairs)
		}
		total := cluster.OpCounts().Total()
		fullOps, err := fullDecodeRepairOps(cluster, target, len(byz), seed)
		if err != nil {
			return nil, err
		}
		out = append(out, RepairRow{
			N: n, K: k, B: b,
			RepairOps:       stats.Ops.Total(),
			RoundOpsPerNode: float64(total-stats.Ops.Total()) / float64(n*completed),
			FullDecodeOps:   fullOps,
			Correct:         correct,
		})
	}
	return out, nil
}

// fullDecodeRepairOps measures the indirect repair route on the cluster's
// current state: a fresh counting field re-encodes the oracle states into
// the N shares, corrupts `garbage` contributor rows (as many as the
// engine's repair faced), then pays for DecodeOutputsSubset to the K
// machine states plus the per-coordinate re-encode at the target.
func fullDecodeRepairOps(cluster *csm.Cluster[uint64], target, garbage int, seed uint64) (uint64, error) {
	gold := field.NewGoldilocks()
	counting := field.NewCounting[uint64](gold)
	ring := poly.NewRing[uint64](counting)
	code, err := lcc.NewWithPoints(ring, cluster.Code().Omegas(), cluster.Code().Alphas())
	if err != nil {
		return 0, err
	}
	states := cluster.OracleStates()
	enc, err := code.EncodeVectors(states)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewPCG(seed, 0x4e9a12))
	indices := make([]int, 0, code.N()-1)
	shares := make([][]uint64, 0, code.N()-1)
	for j := 0; j < code.N(); j++ {
		if j == target {
			continue
		}
		row := enc[j]
		if garbage > 0 {
			row = field.RandVec[uint64](gold, rng, len(row))
			garbage--
		}
		indices = append(indices, j)
		shares = append(shares, row)
	}
	counting.Reset()
	dec, err := code.DecodeOutputsSubset(indices, shares, 1)
	if err != nil {
		return 0, err
	}
	vals := make([]uint64, code.K())
	for comp := range states[0] {
		for k := range vals {
			vals[k] = dec.Outputs[k][comp]
		}
		if _, err := code.EncodeAt(vals, target); err != nil {
			return 0, err
		}
	}
	return counting.Counts().Total(), nil
}

// RenderRepair renders the repair-cost series.
func RenderRepair(rows []RepairRow) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "N\tK\tb\tREPAIR OPS\tROUND OPS/NODE\tFULL-DECODE OPS\tCORRECT")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.0f\t%d\t%v\n",
			r.N, r.K, r.B, r.RepairOps, r.RoundOpsPerNode, r.FullDecodeOps, r.Correct)
	}
	w.Flush()
	return sb.String()
}
