package csm

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"codedsm/internal/field"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// remoteFixture is the shared shape of the remote-vs-oracle tests: a
// 4-node cluster, K=2 degree-2 polynomial registers, a seeded workload.
const (
	remoteN      = 4
	remoteK      = 2
	remoteFaults = 0
	remoteRounds = 6
	remoteSeed   = 4242
)

func remoteTransition(f field.Field[uint64]) (*sm.Transition[uint64], error) {
	return sm.NewPolynomialRegister(f, 2)
}

// runRemoteCluster drives one NodeProcess per link concurrently — node 0
// leads the workload, the rest follow — and returns each node's decoded
// outputs.
func runRemoteCluster(t *testing.T, links []transport.Link, workload [][][]uint64, batchSize int) [][][][]uint64 {
	t.Helper()
	gold := field.NewGoldilocks()
	outs := make([][][][]uint64, len(links))
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(i int, l transport.Link) {
			defer wg.Done()
			p, err := NewNodeProcess(RemoteConfig[uint64]{
				BaseField:     gold,
				NewTransition: remoteTransition,
				K:             remoteK,
				MaxFaults:     remoteFaults,
			}, l)
			if err != nil {
				errs[i] = err
				return
			}
			if p.IsSequencer() {
				outs[i], errs[i] = p.Lead(workload, batchSize)
			} else {
				outs[i], errs[i] = p.Follow()
			}
		}(i, l)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote node %d: %v", i, err)
		}
	}
	return outs
}

// oracleOutputs runs the same workload on the simulated single-process
// cluster (the deterministic oracle) and returns its per-round outputs.
func oracleOutputs(t *testing.T, workload [][][]uint64) [][][]uint64 {
	t.Helper()
	c, err := New(Config[uint64]{
		BaseField:     field.NewGoldilocks(),
		NewTransition: remoteTransition,
		K:             remoteK,
		N:             remoteN,
		MaxFaults:     remoteFaults,
		Mode:          transport.Sync,
		Consensus:     Oracle,
		Seed:          remoteSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Run(workload)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]uint64, len(results))
	for r, res := range results {
		if !res.Correct {
			t.Fatalf("oracle round %d not correct", r)
		}
		out[r] = res.Outputs
	}
	return out
}

// requireIdentical asserts a remote node's outputs are bit-identical to
// the oracle's, element for element.
func requireIdentical(t *testing.T, node int, got [][][]uint64, want [][][]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("node %d executed %d rounds, oracle %d", node, len(got), len(want))
	}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("node %d round %d: %d machines, oracle %d", node, r, len(got[r]), len(want[r]))
		}
		for k := range want[r] {
			if len(got[r][k]) != len(want[r][k]) {
				t.Fatalf("node %d round %d machine %d: output length %d, oracle %d",
					node, r, k, len(got[r][k]), len(want[r][k]))
			}
			for j := range want[r][k] {
				if got[r][k][j] != want[r][k][j] {
					t.Fatalf("node %d round %d machine %d elem %d: got %d, oracle %d",
						node, r, k, j, got[r][k][j], want[r][k][j])
				}
			}
		}
	}
}

// TestRemoteMatchesClusterOverLocalLinks is the engine-equivalence
// contract on the deterministic transport: the per-process engine, run
// over the in-memory lock-step links, produces outputs bit-identical to
// the monolithic simulated Cluster on the same workload.
func TestRemoteMatchesClusterOverLocalLinks(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := oracleOutputs(t, workload)
	for _, batch := range []int{1, 3} {
		net, err := transport.New(transport.Config{N: remoteN, Mode: transport.Sync, Seed: remoteSeed})
		if err != nil {
			t.Fatal(err)
		}
		links, err := transport.NewLocalLinks(net)
		if err != nil {
			t.Fatal(err)
		}
		outs := runRemoteCluster(t, links, workload, batch)
		for i := range outs {
			requireIdentical(t, i, outs[i], want)
		}
	}
}

// TestRemoteMatchesClusterOverTCP is the full tentpole contract: the same
// engine over real localhost sockets — framed, signed, reconnecting —
// still lands bit-identical to the in-memory oracle.
func TestRemoteMatchesClusterOverTCP(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, remoteRounds, remoteK, 1, remoteSeed)
	want := oracleOutputs(t, workload)

	addrs := make([]string, remoteN)
	lns := make([]net.Listener, remoteN)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	links := make([]transport.Link, remoteN)
	errs := make([]error, remoteN)
	var wg sync.WaitGroup
	for i := 0; i < remoteN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tcp, err := transport.NewTCP(transport.TCPConfig{
				Self: transport.NodeID(i), N: remoteN, Seed: remoteSeed,
				Listen: addrs[i], Peers: addrs,
				DialTimeout: 20 * time.Second, StepTimeout: 20 * time.Second,
			})
			links[i], errs[i] = tcp, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tcp node %d: %v", i, err)
		}
	}
	defer func() {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
	}()
	outs := runRemoteCluster(t, links, workload, 2)
	for i := range outs {
		requireIdentical(t, i, outs[i], want)
	}
}

// TestRemoteConfigValidation pins the constructor's rejections.
func TestRemoteConfigValidation(t *testing.T) {
	gold := field.NewGoldilocks()
	net, err := transport.New(transport.Config{N: 4, Mode: transport.Sync, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	base := RemoteConfig[uint64]{BaseField: gold, NewTransition: remoteTransition, K: 2}
	for _, tc := range []struct {
		name string
		mut  func(*RemoteConfig[uint64])
	}{
		{"missing field", func(c *RemoteConfig[uint64]) { c.BaseField = nil }},
		{"negative faults", func(c *RemoteConfig[uint64]) { c.MaxFaults = -1 }},
		{"over capacity", func(c *RemoteConfig[uint64]) { c.K = 100 }},
		{"bad initial state count", func(c *RemoteConfig[uint64]) { c.InitialStates = [][]uint64{{0}} }},
	} {
		cfg := base
		tc.mut(&cfg)
		if _, err := NewNodeProcess(cfg, links[0]); err == nil {
			t.Errorf("%s: NewNodeProcess accepted invalid config", tc.name)
		}
	}
	if _, err := NewNodeProcess(base, nil); err == nil {
		t.Error("nil link accepted")
	}
	// Role checks.
	p0, err := NewNodeProcess(base, links[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewNodeProcess(base, links[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.LeadBatch(nil); err == nil {
		t.Error("follower was allowed to lead")
	}
	if _, _, err := p0.FollowBatch(); err == nil {
		t.Error("sequencer was allowed to follow")
	}
	if err := p1.Stop(); err == nil {
		t.Error("follower was allowed to stop the cluster")
	}
	if cmd := p0.PadCommand(); len(cmd) != p0.Transition().CmdLen() {
		t.Errorf("PadCommand length %d, want %d", len(cmd), p0.Transition().CmdLen())
	}
}

// TestRemoteStopIsIdempotent: Lead already stops the cluster; a second
// Stop must be a no-op and LeadBatch afterwards must fail ErrStopped.
func TestRemoteStopIsIdempotent(t *testing.T) {
	gold := field.NewGoldilocks()
	workload := RandomWorkload[uint64](gold, 2, remoteK, 1, 7)
	net, err := transport.New(transport.Config{N: remoteN, Mode: transport.Sync, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*NodeProcess[uint64], remoteN)
	for i, l := range links {
		p, err := NewNodeProcess(RemoteConfig[uint64]{
			BaseField: gold, NewTransition: remoteTransition, K: remoteK,
		}, l)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	var wg sync.WaitGroup
	errs := make([]error, remoteN)
	var leadErr error
	for i := 1; i < remoteN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = procs[i].Follow()
		}(i)
	}
	_, leadErr = procs[0].Lead(workload, 1)
	wg.Wait()
	if leadErr != nil {
		t.Fatal(leadErr)
	}
	for i := 1; i < remoteN; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
	}
	if err := procs[0].Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if _, err := procs[0].LeadBatch([][][]uint64{{make([]uint64, 1), make([]uint64, 1)}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("LeadBatch after Stop: %v, want ErrStopped", err)
	}
}

// TestRemoteBatchValidation pins LeadBatch's shape checks.
func TestRemoteBatchValidation(t *testing.T) {
	gold := field.NewGoldilocks()
	net, err := transport.New(transport.Config{N: remoteN, Mode: transport.Sync, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	links, err := transport.NewLocalLinks(net)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewNodeProcess(RemoteConfig[uint64]{
		BaseField: gold, NewTransition: remoteTransition, K: remoteK,
	}, links[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := [][][][]uint64{
		{},                         // empty batch
		{{{0}}},                    // one command vector for K=2
		{{{0, 1}, {0}}},            // wrong command length
		{{make([]uint64, 1)}, nil}, // second round malformed
	}
	for i, batch := range cases {
		if _, err := p.LeadBatch(batch); err == nil {
			t.Errorf("case %d: LeadBatch accepted malformed batch %v", i, batch)
		}
	}
}
