package csm

import (
	"fmt"

	"codedsm/internal/delegate"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/poly"
)

// Delegated-mode message kinds (Section 6.2 over the lock-step network).
const (
	dlgCmdsKind   = "csm-dlg-cmds"
	dlgResultKind = "csm-result" // nodes broadcast results as in Section 5
	dlgProofKind  = "csm-dlg-proof"
	dlgAlertKind  = "csm-dlg-alert"
)

// dlgCmdsMsg carries the worker's coded commands for every node.
type dlgCmdsMsg struct {
	Round, Attempt int
	Coded          [][]uint64 // N rows, cmdLen columns
}

// dlgProofMsg carries the worker's decode proof and the refreshed coded
// states.
type dlgProofMsg struct {
	Round, Attempt int
	Dim            int
	Coeffs         [][]uint64 // per result component, h's coefficients
	Taus           [][]int
	Outputs        [][]uint64 // K result vectors [next state | output]
	CodedNext      [][]uint64 // N refreshed coded states
}

// dlgAlertMsg is an auditor's fraud alert; Phase is "enc" or "dec".
type dlgAlertMsg struct {
	Round, Attempt int
	Phase          string
}

// delegationEpsilon is the committee failure-probability target.
const delegationEpsilon = 0.01

// runExecutionDelegated is the Section 6.2 execution phase: a rotating
// worker performs all coding, a random auditor committee verifies it, and
// fraud aborts the attempt so the next worker retries. Requires the
// broadcast (no-equivocation) network, as the paper does.
func (c *Cluster[E]) runExecutionDelegated(agreed [][]E) (*RoundResult[E], int, error) {
	ticks := 0
	for attempt := 0; attempt < c.cfg.N; attempt++ {
		worker := (c.round + attempt) % c.cfg.N
		res, t, aborted, err := c.delegatedAttempt(agreed, worker, attempt)
		ticks += t
		if err != nil {
			return nil, ticks, err
		}
		if !aborted {
			return res, ticks, nil
		}
	}
	return nil, ticks, fmt.Errorf("csm: delegated round found no honest worker: %w", ErrRoundStuck)
}

// committee returns this attempt's honest-auditor election result.
func (c *Cluster[E]) committee(attempt int) []int {
	mu := float64(c.cfg.MaxFaults) / float64(c.cfg.N)
	j, err := intermix.CommitteeSize(delegationEpsilon, mu)
	if err != nil || j < 1 {
		j = 1
	}
	beacon := c.cfg.Seed ^ (uint64(c.round) << 16) ^ uint64(attempt)
	return intermix.ElectCommittee(beacon, c.cfg.N, j)
}

func (c *Cluster[E]) delegatedAttempt(agreed [][]E, worker, attempt int) (*RoundResult[E], int, bool, error) {
	ticks := 0
	d := delegate.New(c.ring, c.code, delegate.HonestDelegate)
	d.Parallelism = c.workers()
	committee := c.committee(attempt)
	isAuditor := make(map[int]bool, len(committee))
	for _, a := range committee {
		isAuditor[a] = true
	}
	workerByz := c.cfg.Byzantine[worker] != Honest

	// Phase 1: the worker fast-encodes the commands and broadcasts them.
	if c.cfg.Byzantine[worker] != Silent {
		coded, err := d.EncodeCommands(agreed)
		if err != nil {
			return nil, ticks, false, err
		}
		if workerByz {
			coded[0][0] = c.counting.Add(coded[0][0], c.counting.One())
		}
		payload, err := encodePayload(dlgCmdsMsg{Round: c.round, Attempt: attempt, Coded: c.wireMatrix(coded)})
		if err != nil {
			return nil, ticks, false, err
		}
		if err := c.nodes[worker].ep.Broadcast(dlgCmdsKind, payload); err != nil {
			return nil, ticks, false, err
		}
		c.nodes[worker].dlgCoded = coded // the worker keeps its own copy
	}
	c.net.Step()
	ticks++

	// Phase 2: nodes pick up their coded command; honest auditors verify
	// the encoding; every node computes and broadcasts its result.
	gotCmds := false
	var claimed [][]E
	for i, n := range c.nodes {
		n.received = make(map[int][]E, c.cfg.N)
		n.decoded = nil
		var coded [][]E
		if i == worker {
			coded = n.dlgCoded
		}
		for _, m := range n.ep.Receive() {
			if m.Kind != dlgCmdsKind {
				continue
			}
			var dm dlgCmdsMsg
			if err := decodePayload(m.Payload, &dm); err != nil ||
				dm.Round != c.round || dm.Attempt != attempt || len(dm.Coded) != c.cfg.N {
				continue
			}
			coded = c.unwireMatrix(dm.Coded)
		}
		if coded == nil {
			continue // silent worker: nothing to execute against
		}
		gotCmds = true
		claimed = coded
		if isAuditor[i] && c.cfg.Byzantine[i] == Honest {
			if err := d.AuditEncoding(agreed, coded); err != nil {
				payload, perr := encodePayload(dlgAlertMsg{Round: c.round, Attempt: attempt, Phase: "enc"})
				if perr != nil {
					return nil, ticks, false, perr
				}
				if err := n.ep.Broadcast(dlgAlertKind, payload); err != nil {
					return nil, ticks, false, err
				}
			}
		}
		result, err := c.tr.ApplyResult(n.codedState, coded[i])
		if err != nil {
			return nil, ticks, false, err
		}
		n.planBroadcast(result)
		if err := n.transmitResult(); err != nil {
			return nil, ticks, false, err
		}
	}
	c.net.Step()
	ticks++
	if !gotCmds {
		return nil, ticks, true, nil // silent worker: abort attempt
	}

	// Phase 3: check encoding alerts (commoner O(1) re-check, modelled by
	// re-running the verifier once); the worker decodes and broadcasts the
	// proof.
	abort := false
	for i, n := range c.nodes {
		msgs := n.ep.Receive()
		n.collect(msgs)
		for _, m := range msgs {
			if m.Kind != dlgAlertKind {
				continue
			}
			var am dlgAlertMsg
			if err := decodePayload(m.Payload, &am); err != nil ||
				am.Round != c.round || am.Attempt != attempt || am.Phase != "enc" {
				continue
			}
			if i == 0 { // validate once for the whole (broadcast) network
				if err := d.AuditEncoding(agreed, claimed); err != nil {
					abort = true
				}
			}
		}
	}
	if abort {
		return nil, ticks, true, nil
	}
	var proof dlgProofMsg
	if c.cfg.Byzantine[worker] != Silent {
		w := c.nodes[worker]
		results := make([][]E, c.cfg.N)
		for i := 0; i < c.cfg.N; i++ {
			if v, ok := w.received[i]; ok {
				results[i] = v
			} else {
				results[i] = field.ZeroVec[E](c.counting, c.tr.ResultLen())
			}
		}
		dec, dproof, err := d.DecodeWithProof(results, c.tr.Degree())
		if err != nil {
			return nil, ticks, false, err
		}
		nextStates := make([][]E, c.cfg.K)
		for k := 0; k < c.cfg.K; k++ {
			next, _, err := c.tr.SplitResult(dec.Outputs[k])
			if err != nil {
				return nil, ticks, false, err
			}
			nextStates[k] = next
		}
		codedNext, err := d.UpdateStates(nextStates)
		if err != nil {
			return nil, ticks, false, err
		}
		if workerByz {
			dec.Outputs[0][0] = c.counting.Add(dec.Outputs[0][0], c.counting.One())
		}
		proof = dlgProofMsg{
			Round: c.round, Attempt: attempt, Dim: dproof.Dim,
			Coeffs:    c.wirePolys(dproof.Coeffs),
			Taus:      dproof.Tau,
			Outputs:   c.wireMatrix(dec.Outputs),
			CodedNext: c.wireMatrix(codedNext),
		}
		payload, err := encodePayload(proof)
		if err != nil {
			return nil, ticks, false, err
		}
		if err := w.ep.Broadcast(dlgProofKind, payload); err != nil {
			return nil, ticks, false, err
		}
		w.dlgProof = &proof
	}
	c.net.Step()
	ticks++

	// Phase 4: auditors verify the decode proof; Byzantine auditors raise
	// false alerts against an honest worker.
	gotProof := false
	for i, n := range c.nodes {
		var pm *dlgProofMsg
		if i == worker && n.dlgProof != nil {
			pm = n.dlgProof
		}
		for _, m := range n.ep.Receive() {
			if m.Kind != dlgProofKind {
				continue
			}
			var got dlgProofMsg
			if err := decodePayload(m.Payload, &got); err != nil ||
				got.Round != c.round || got.Attempt != attempt {
				continue
			}
			pm = &got
		}
		if pm == nil {
			continue
		}
		gotProof = true
		n.dlgProof = pm
		if !isAuditor[i] {
			continue
		}
		raise := false
		if c.cfg.Byzantine[i] != Honest {
			raise = true // dishonest auditor: fabricated alert
		} else if c.verifyDelegationProof(d, n, pm) != nil {
			raise = true
		}
		if raise {
			payload, err := encodePayload(dlgAlertMsg{Round: c.round, Attempt: attempt, Phase: "dec"})
			if err != nil {
				return nil, ticks, false, err
			}
			if err := n.ep.Broadcast(dlgAlertKind, payload); err != nil {
				return nil, ticks, false, err
			}
		}
	}
	c.net.Step()
	ticks++
	if !gotProof {
		return nil, ticks, true, nil
	}

	// Phase 5: commoners re-check any alert in O(1) (modelled by one
	// re-verification) and either abort or accept.
	alertSeen := false
	for _, n := range c.nodes {
		for _, m := range n.ep.Receive() {
			if m.Kind != dlgAlertKind {
				continue
			}
			var am dlgAlertMsg
			if err := decodePayload(m.Payload, &am); err != nil ||
				am.Round != c.round || am.Attempt != attempt || am.Phase != "dec" {
				continue
			}
			alertSeen = true
		}
	}
	if alertSeen {
		// One network-wide validity check (the broadcast transcript is
		// shared): a fabricated alert against an honest proof is dismissed.
		validator := c.honestNodeWithProof()
		if validator == nil {
			return nil, ticks, true, nil
		}
		if err := c.verifyDelegationProof(d, validator, validator.dlgProof); err != nil {
			return nil, ticks, true, nil // valid alert: abort attempt
		}
	}
	// Accept: honest nodes adopt the verified outputs and coded states.
	outputs := c.unwireMatrix(c.anyProof().Outputs)
	codedNext := c.unwireMatrix(c.anyProof().CodedNext)
	faulty := c.tauComplement(c.anyProof().Taus)
	for i, n := range c.nodes {
		if c.cfg.Byzantine[i] != Honest {
			continue
		}
		nextStates := make([][]E, c.cfg.K)
		outs := make([][]E, c.cfg.K)
		for k := 0; k < c.cfg.K; k++ {
			next, out, err := c.tr.SplitResult(outputs[k])
			if err != nil {
				return nil, ticks, false, err
			}
			nextStates[k] = next
			outs[k] = out
		}
		n.decoded = &nodeDecode[E]{outputs: outs, nextStates: nextStates, faulty: faulty}
		n.codedState = append([]E(nil), codedNext[i]...)
	}
	// Advance the oracle and run the client phase.
	oracleOutputs := make([][]E, c.cfg.K)
	for k, m := range c.oracle {
		out, err := m.Step(agreed[k])
		if err != nil {
			return nil, ticks, false, err
		}
		oracleOutputs[k] = out
	}
	res := &RoundResult[E]{Ticks: ticks}
	c.clientPhase(oracleOutputs, c.drawClientReplies(), c.snapshotDecodes(), res)
	return res, ticks, false, nil
}

// verifyDelegationProof is the auditor-side verification of a broadcast
// proof against the auditor's own received results.
func (c *Cluster[E]) verifyDelegationProof(d *delegate.Delegation[E], n *node[E], pm *dlgProofMsg) error {
	results := make([][]E, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		if v, ok := n.received[i]; ok {
			results[i] = v
		} else {
			results[i] = field.ZeroVec[E](c.counting, c.tr.ResultLen())
		}
	}
	dproof := &delegate.DecodeProof[E]{
		Dim:    pm.Dim,
		Coeffs: c.unwirePolys(pm.Coeffs),
		Tau:    pm.Taus,
	}
	outputs := c.unwireMatrix(pm.Outputs)
	if err := d.VerifyDecodeProof(results, c.tr.Degree(), dproof, outputs); err != nil {
		return err
	}
	// The refreshed coded states must encode the proved next states.
	nextStates := make([][]E, c.cfg.K)
	for k := 0; k < c.cfg.K; k++ {
		next, _, err := c.tr.SplitResult(outputs[k])
		if err != nil {
			return err
		}
		nextStates[k] = next
	}
	return d.AuditEncoding(nextStates, c.unwireMatrix(pm.CodedNext))
}

// honestNodeWithProof returns an honest node holding the round's proof.
func (c *Cluster[E]) honestNodeWithProof() *node[E] {
	for i, n := range c.nodes {
		if c.cfg.Byzantine[i] == Honest && n.dlgProof != nil {
			return n
		}
	}
	return nil
}

// anyProof returns the proof any node holds (identical network-wide under
// the broadcast assumption).
func (c *Cluster[E]) anyProof() *dlgProofMsg {
	for _, n := range c.nodes {
		if n.dlgProof != nil {
			return n.dlgProof
		}
	}
	return nil
}

// tauComplement lists nodes excluded from every component's tau set —
// the nodes whose results the decode identified as corrupted or missing.
func (c *Cluster[E]) tauComplement(taus [][]int) []int {
	inAll := make([]int, c.cfg.N)
	for _, tau := range taus {
		for _, i := range tau {
			inAll[i]++
		}
	}
	var out []int
	for i, cnt := range inAll {
		if cnt < len(taus) {
			out = append(out, i)
		}
	}
	return out
}

// wireMatrix / unwireMatrix convert vectors of field vectors.
func (c *Cluster[E]) wireMatrix(m [][]E) [][]uint64 {
	out := make([][]uint64, len(m))
	for i, row := range m {
		out[i] = c.toWire(row)
	}
	return out
}

func (c *Cluster[E]) unwireMatrix(m [][]uint64) [][]E {
	out := make([][]E, len(m))
	for i, row := range m {
		out[i] = c.fromWire(row)
	}
	return out
}

func (c *Cluster[E]) wirePolys(ps []poly.Poly[E]) [][]uint64 {
	out := make([][]uint64, len(ps))
	for i, p := range ps {
		out[i] = c.toWire(p)
	}
	return out
}

func (c *Cluster[E]) unwirePolys(ps [][]uint64) []poly.Poly[E] {
	out := make([]poly.Poly[E], len(ps))
	for i, p := range ps {
		out[i] = poly.Poly[E](c.fromWire(p))
	}
	return out
}
