package field

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestBatchInv(t *testing.T) {
	g := NewGoldilocks()
	r := rand.New(rand.NewPCG(7, 8))
	xs := make([]uint64, 50)
	for i := range xs {
		for xs[i] == 0 {
			xs[i] = g.Rand(r)
		}
	}
	invs, err := BatchInv[uint64](g, xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if g.Mul(xs[i], invs[i]) != 1 {
			t.Fatalf("index %d: x * inv(x) != 1", i)
		}
	}
}

func TestBatchInvZero(t *testing.T) {
	g := NewGoldilocks()
	if _, err := BatchInv[uint64](g, []uint64{1, 2, 0, 4}); !errors.Is(err, ErrDivisionByZero) {
		t.Fatalf("expected ErrDivisionByZero, got %v", err)
	}
	out, err := BatchInv[uint64](g, nil)
	if err != nil || out != nil {
		t.Fatalf("BatchInv(nil) = %v, %v", out, err)
	}
}

func TestDivAndExp(t *testing.T) {
	g := NewGoldilocks()
	q, err := Div[uint64](g, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mul(q, 5) != 10 {
		t.Fatalf("10/5 * 5 != 10 (got q=%d)", q)
	}
	if _, err := Div[uint64](g, 1, 0); !errors.Is(err, ErrDivisionByZero) {
		t.Fatal("Div by zero should fail")
	}
	if got := Exp[uint64](g, 3, 0); got != 1 {
		t.Errorf("3^0 = %d, want 1", got)
	}
	if got := Exp[uint64](g, 3, 5); got != 243 {
		t.Errorf("3^5 = %d, want 243", got)
	}
	// Fermat: a^(p-1) == 1.
	if got := Exp[uint64](g, 12345, GoldilocksModulus-1); got != 1 {
		t.Errorf("a^(p-1) = %d, want 1", got)
	}
}

func TestVectorOps(t *testing.T) {
	g := NewGoldilocks()
	a := []uint64{1, 2, 3}
	b := []uint64{10, 20, 30}
	sum, err := VecAdd[uint64](g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual[uint64](g, sum, []uint64{11, 22, 33}) {
		t.Errorf("VecAdd = %v", sum)
	}
	if _, err := VecAdd[uint64](g, a, b[:2]); err == nil {
		t.Error("VecAdd length mismatch should fail")
	}
	scaled := VecScale[uint64](g, 2, a)
	if !VecEqual[uint64](g, scaled, []uint64{2, 4, 6}) {
		t.Errorf("VecScale = %v", scaled)
	}
	d, err := Dot[uint64](g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1*10+2*20+3*30 {
		t.Errorf("Dot = %d", d)
	}
	if _, err := Dot[uint64](g, a, b[:1]); err == nil {
		t.Error("Dot length mismatch should fail")
	}
	if VecEqual[uint64](g, a, b) {
		t.Error("VecEqual on different vectors")
	}
	if VecEqual[uint64](g, a, a[:2]) {
		t.Error("VecEqual on different lengths")
	}
	z := ZeroVec[uint64](g, 4)
	for _, e := range z {
		if e != 0 {
			t.Error("ZeroVec not zero")
		}
	}
	r := rand.New(rand.NewPCG(1, 1))
	rv := RandVec[uint64](g, r, 8)
	if len(rv) != 8 {
		t.Error("RandVec wrong length")
	}
}

func TestCountingField(t *testing.T) {
	c := NewCounting[uint64](NewGoldilocks())
	if c.Counts() != (OpCounts{}) {
		t.Fatal("fresh counter not zero")
	}
	c.Add(1, 2)
	c.Sub(5, 3)
	c.Neg(7)
	c.Mul(3, 4)
	c.Mul(3, 4)
	if _, err := c.Inv(9); err != nil {
		t.Fatal(err)
	}
	got := c.Counts()
	want := OpCounts{Adds: 3, Muls: 2, Invs: 1}
	if got != want {
		t.Fatalf("counts = %+v, want %+v", got, want)
	}
	if got.Total() != 3+2+invMulCost {
		t.Errorf("Total = %d", got.Total())
	}
	c.Reset()
	if c.Counts() != (OpCounts{}) {
		t.Fatal("Reset did not zero counters")
	}
	// Decorated arithmetic must agree with the inner field.
	g := NewGoldilocks()
	if c.Mul(123, 456) != g.Mul(123, 456) {
		t.Fatal("counting field changes results")
	}
	if c.Name() != g.Name() || c.Zero() != 0 || c.One() != 1 {
		t.Fatal("identity methods differ")
	}
	if c.FromUint64(GoldilocksModulus+1) != 1 || c.Uint64(42) != 42 {
		t.Fatal("conversion methods differ")
	}
	if !c.Equal(5, 5) || c.Equal(5, 6) || !c.IsZero(0) || c.IsZero(1) {
		t.Fatal("comparison methods differ")
	}
	if _, err := c.Elements(10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RootOfUnity(8); err != nil {
		t.Fatalf("counting Goldilocks should expose roots of unity: %v", err)
	}
	if c.Inner() == nil {
		t.Fatal("Inner is nil")
	}
}

func TestCountingFieldNoNTT(t *testing.T) {
	f, err := NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting[uint64](f)
	if _, err := c.RootOfUnity(8); err == nil {
		t.Fatal("GF(2^8) must not expose power-of-two roots of unity")
	}
}

func TestOpCountsArithmetic(t *testing.T) {
	a := OpCounts{Adds: 10, Muls: 5, Invs: 1}
	b := OpCounts{Adds: 3, Muls: 2, Invs: 1}
	if got := a.Add(b); got != (OpCounts{Adds: 13, Muls: 7, Invs: 2}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (OpCounts{Adds: 7, Muls: 3, Invs: 0}) {
		t.Errorf("Sub = %+v", got)
	}
}
