package wal

import "sync/atomic"

// CrashPoint names a location in the WAL/snapshot write paths where the
// fault-injection harness can take the process down. Hooks typically
// call os.Exit (in a crash harness) or panic (in tests) — returning
// normally continues the write.
type CrashPoint string

const (
	// CrashBeforeAppend fires before any byte of a record is written:
	// the decision is lost entirely, the log stays clean.
	CrashBeforeAppend CrashPoint = "wal-before-append"
	// CrashMidRecord fires after roughly half a record has hit the
	// file: recovery must detect the torn tail and truncate it.
	CrashMidRecord CrashPoint = "wal-mid-record"
	// CrashBeforeSync fires after a full record is written but before
	// fsync: the record may or may not survive, and recovery must
	// accept either outcome.
	CrashBeforeSync CrashPoint = "wal-before-sync"
	// CrashSnapshotTemp fires after the snapshot temp file is fully
	// written and synced but before the atomic rename: recovery must
	// ignore the orphan temp and use the previous snapshot.
	CrashSnapshotTemp CrashPoint = "snapshot-before-rename"
	// CrashSnapshotRenamed fires after the rename but before old
	// generations are pruned: recovery must pick the newest valid
	// snapshot among several.
	CrashSnapshotRenamed CrashPoint = "snapshot-after-rename"
)

// crashHook holds a func(CrashPoint) or nil. A process-global is the
// point: the harness wants to kill the whole process at a precise byte
// boundary, whichever log instance gets there first.
var crashHook atomic.Value

type hookBox struct{ fn func(CrashPoint) }

// SetCrashHook installs fn to be called at every crash point in the
// package; nil removes it. Intended for fault-injection tests and the
// csmnode crash harness only — production paths leave it unset, which
// keeps Append on a single-write fast path.
func SetCrashHook(fn func(CrashPoint)) {
	crashHook.Store(hookBox{fn: fn})
}

func hookInstalled() bool {
	box, _ := crashHook.Load().(hookBox)
	return box.fn != nil
}

func fire(p CrashPoint) {
	box, _ := crashHook.Load().(hookBox)
	if box.fn != nil {
		box.fn(p)
	}
}
