package intermix

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// SelfElect reports whether a node elects itself into the audit committee
// for the given beacon seed: a VRF-style hash of (seed, node) is compared
// against the threshold J/N. An auditor remains anonymous until it presents
// this hash as its proof of election (Section 6.1); here the hash is
// deterministic, so any node can verify another's claim with ProveElection.
func SelfElect(seed uint64, node, n, j int) bool {
	if n <= 0 || j <= 0 {
		return false
	}
	if j >= n {
		return true
	}
	h := electionHash(seed, node)
	// P(h < t) = j/n with t = floor(2^64 * j/n).
	threshold := uint64(math.Floor(float64(math.MaxUint64) * float64(j) / float64(n)))
	return h < threshold
}

// ProveElection returns the hash a node presents as its election proof.
func ProveElection(seed uint64, node int) uint64 { return electionHash(seed, node) }

func electionHash(seed uint64, node int) uint64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(node))
	sum := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(sum[:8])
}

// ElectCommittee returns all self-elected nodes for the seed. The committee
// size is random with expectation J; the soundness analysis only needs at
// least one honest member with probability 1-ε, which the expectation
// argument plus the per-round beacon refresh provides. Callers that need a
// non-empty committee retry with the next beacon value.
func ElectCommittee(seed uint64, n, j int) []int {
	var out []int
	for node := 0; node < n; node++ {
		if SelfElect(seed, node, n, j) {
			out = append(out, node)
		}
	}
	return out
}

// ElectNonEmpty retries the beacon until the committee is non-empty,
// returning the committee and the beacon value used.
func ElectNonEmpty(seed uint64, n, j int) ([]int, uint64, error) {
	if n <= 0 || j <= 0 {
		return nil, 0, fmt.Errorf("intermix: invalid election parameters n=%d j=%d", n, j)
	}
	for attempt := uint64(0); attempt < 1024; attempt++ {
		beacon := seed + attempt
		if c := ElectCommittee(beacon, n, j); len(c) > 0 {
			return c, beacon, nil
		}
	}
	return nil, 0, fmt.Errorf("intermix: election produced no committee after 1024 beacons")
}
