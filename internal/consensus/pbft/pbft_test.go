package pbft

import (
	"bytes"
	"testing"

	"codedsm/internal/consensus"
	"codedsm/internal/transport"
)

func setup(t *testing.T, n int, mode transport.Mode, gst int, seed uint64) *transport.Network {
	t.Helper()
	net, err := transport.New(transport.Config{N: n, Mode: mode, GST: gst, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func honest(t *testing.T, net *transport.Network, id, f int, value []byte) *Node {
	t.Helper()
	tr, err := consensus.NewNetTransport(net, transport.NodeID(id))
	if err != nil {
		t.Fatal(err)
	}
	nd, err := New(Config{
		Transport: tr, Slot: 1, MaxFaults: f, Value: value,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

type silent struct{}

func (silent) Tick(inbox []transport.Message) error { return nil }
func (silent) Decided() ([]byte, bool)              { return nil, true }

func checkAgreement(t *testing.T, nodes []consensus.Node, waitFor []int) []byte {
	t.Helper()
	var first []byte
	for _, i := range waitFor {
		got, ok := nodes[i].Decided()
		if !ok {
			t.Fatalf("node %d undecided", i)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Fatalf("disagreement: node %d decided %q, others %q", i, got, first)
		}
	}
	return first
}

func TestAllHonestSync(t *testing.T) {
	const n, f = 4, 1
	net := setup(t, n, transport.Sync, 0, 1)
	nodes := make([]consensus.Node, n)
	waitFor := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = honest(t, net, i, f, []byte("LEADER-VALUE"))
		waitFor[i] = i
	}
	if err := consensus.Run(net, nodes, waitFor, 30); err != nil {
		t.Fatal(err)
	}
	if got := checkAgreement(t, nodes, waitFor); string(got) != "LEADER-VALUE" {
		t.Errorf("decided %q", got)
	}
}

func TestSilentLeaderViewChange(t *testing.T) {
	// Node 0 (view-0 leader) is silent; the protocol must change views and
	// decide node 1's proposal.
	const n, f = 4, 1
	net := setup(t, n, transport.Sync, 0, 2)
	nodes := make([]consensus.Node, n)
	nodes[0] = silent{}
	waitFor := []int{1, 2, 3}
	for _, i := range waitFor {
		nodes[i] = honest(t, net, i, f, []byte{byte('A' + i)})
	}
	if err := consensus.Run(net, nodes, waitFor, 80); err != nil {
		t.Fatal(err)
	}
	got := checkAgreement(t, nodes, waitFor)
	if string(got) != "B" {
		t.Errorf("decided %q, want view-1 leader's proposal B", got)
	}
	if v := nodes[1].(*Node).View(); v != 1 {
		t.Errorf("node 1 in view %d, want 1", v)
	}
}

func TestTwoSilentLeaders(t *testing.T) {
	// N = 7, f = 2: leaders of views 0 and 1 both silent; view 2 decides.
	const n, f = 7, 2
	net := setup(t, n, transport.Sync, 0, 3)
	nodes := make([]consensus.Node, n)
	nodes[0], nodes[1] = silent{}, silent{}
	waitFor := []int{2, 3, 4, 5, 6}
	for _, i := range waitFor {
		nodes[i] = honest(t, net, i, f, []byte{byte('A' + i)})
	}
	if err := consensus.Run(net, nodes, waitFor, 200); err != nil {
		t.Fatal(err)
	}
	got := checkAgreement(t, nodes, waitFor)
	if string(got) != "C" {
		t.Errorf("decided %q, want view-2 leader's proposal C", got)
	}
}

func TestPartialSynchronyDecidesAfterGST(t *testing.T) {
	// Messages are delayed arbitrarily until GST; PBFT must still decide
	// (possibly after view changes) once the network stabilizes.
	const n, f, gst = 4, 1, 12
	net := setup(t, n, transport.PartialSync, gst, 4)
	nodes := make([]consensus.Node, n)
	waitFor := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = honest(t, net, i, f, []byte("PSYNC"))
		waitFor[i] = i
	}
	if err := consensus.Run(net, nodes, waitFor, 300); err != nil {
		t.Fatal(err)
	}
	if got := checkAgreement(t, nodes, waitFor); string(got) != "PSYNC" {
		t.Errorf("decided %q", got)
	}
}

func TestEquivocatingLeaderSafety(t *testing.T) {
	// A Byzantine leader sends different pre-prepares to different nodes
	// (point-to-point network, equivocation allowed). With 2f+1 quorums no
	// two honest nodes can commit different values; eventually a view
	// change installs an honest leader.
	const n, f = 4, 1
	net := setup(t, n, transport.Sync, 0, 5)
	ep, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]consensus.Node, n)
	nodes[0] = &equivLeader{ep: ep, slot: 1}
	waitFor := []int{1, 2, 3}
	for _, i := range waitFor {
		nodes[i] = honest(t, net, i, f, []byte{byte('A' + i)})
	}
	if err := consensus.Run(net, nodes, waitFor, 120); err != nil {
		t.Fatal(err)
	}
	checkAgreement(t, nodes, waitFor)
}

// equivLeader sends pre-prepare "X" to node 1 and "Y" to nodes 2..: with
// N=4, f=1 neither value can gather 2f+1=3 prepares from honest nodes alone
// plus the leader's, since honest holders of X are 1 and of Y are 2 — the
// leader adds its vote to both but 1+1 < 3 and 2+1 = 3... the second may
// prepare, which is fine: safety only forbids conflicting commits.
type equivLeader struct {
	ep   *transport.Endpoint
	slot uint64
	sent bool
}

func (e *equivLeader) Tick(inbox []transport.Message) error {
	if e.sent {
		return nil
	}
	e.sent = true
	payloadX := consensus.AppendPrePrepareMsg(nil, consensus.PrePrepareMsg{Slot: e.slot, View: 0, Value: []byte("X")})
	payloadY := consensus.AppendPrePrepareMsg(nil, consensus.PrePrepareMsg{Slot: e.slot, View: 0, Value: []byte("Y")})
	if err := e.ep.Send(1, kindPrePrepare, payloadX); err != nil {
		return err
	}
	for to := transport.NodeID(2); int(to) < 4; to++ {
		if err := e.ep.Send(to, kindPrePrepare, payloadY); err != nil {
			return err
		}
	}
	return nil
}

func (e *equivLeader) Decided() ([]byte, bool) { return nil, true }

func TestConfigValidation(t *testing.T) {
	net := setup(t, 4, transport.Sync, 0, 6)
	tr, err := consensus.NewNetTransport(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Transport: nil}); err == nil {
		t.Error("nil transport should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: 2}); err == nil {
		t.Error("N < 3f+1 should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: -1}); err == nil {
		t.Error("negative f should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: 1, BaseTimeout: -3}); err == nil {
		t.Error("negative timeout should fail")
	}
	if _, err := New(Config{Transport: tr, MaxFaults: 1, StartView: -1}); err == nil {
		t.Error("negative StartView should fail")
	}
	if _, err := consensus.NewNetTransport(net, 9); err == nil {
		t.Error("bad ID should fail")
	}
}

func TestLeaderRotation(t *testing.T) {
	if Leader(0, 4) != 0 || Leader(1, 4) != 1 || Leader(4, 4) != 0 || Leader(6, 4) != 2 {
		t.Error("leader rotation wrong")
	}
}

func TestGarbageIgnored(t *testing.T) {
	const n, f = 4, 1
	net := setup(t, n, transport.Sync, 0, 7)
	ep, err := net.Endpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]consensus.Node, n)
	waitFor := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = honest(t, net, i, f, []byte("V"))
		waitFor[i] = i
	}
	for _, kind := range []string{kindPrePrepare, kindPrepare, kindCommit, kindViewChange, kindNewView} {
		if err := ep.Broadcast(kind, []byte("garbage")); err != nil {
			t.Fatal(err)
		}
	}
	if err := consensus.Run(net, nodes, waitFor, 40); err != nil {
		t.Fatal(err)
	}
	if got := checkAgreement(t, nodes, waitFor); string(got) != "V" {
		t.Errorf("decided %q", got)
	}
}

func TestForgedViewChangeRejected(t *testing.T) {
	// A Byzantine node fabricates view-change messages claiming to be from
	// others (bad blob signatures): the new leader must not assemble a new
	// view from them.
	net := setup(t, 4, transport.Sync, 0, 8)
	nd := honest(t, net, 1, 1, []byte("V"))
	fake := consensus.ViewChangeMsg{Slot: 1, NewView: 1, PreparedView: -1, Sender: 2, Sig: []byte("bad")}
	if nd.validVC(fake) {
		t.Error("invalid VC signature accepted")
	}
}
