// Package codedsm is a Go implementation of the Coded State Machine (CSM)
// from "Coded State Machine — Scaling State Machine Execution under
// Byzantine Faults" (Li, Sahraei, Yu, Avestimehr, Kannan, Viswanath,
// PODC 2019 / arXiv:1906.10817).
//
// CSM runs K independent state machines with a polynomial transition
// function on N untrusted nodes so that security β, storage efficiency γ,
// and throughput λ all scale linearly in N — where classic replication must
// trade them off. Each node stores one Lagrange-coded state, executes the
// transition directly on coded data, and Reed-Solomon decoding of the N
// results corrects everything up to b Byzantine nodes.
//
// The package re-exports the library's layers:
//
//   - fields:      NewGoldilocks (GF(2^64-2^32+1), NTT-friendly) and
//     NewGF2m (GF(2^m), for Boolean machines per Appendix A);
//   - machines:    NewBank, NewQuadraticTally, NewMultiplicativeAccumulator,
//     NewInnerProduct, NewPolynomialRegister, NewBooleanMachine, FromExprs;
//   - the engine:  NewCluster runs consensus + coded execution on a
//     deterministic simulated network with Byzantine fault injection;
//   - baselines:   NewFullReplication, NewPartialReplication and the
//     random-allocation experiment for the Table 1 / Section 7 comparisons;
//   - INTERMIX:    verifiable matrix-vector multiplication (Section 6.1);
//   - delegation:  centralized verifiable coding (Section 6.2);
//   - experiments: Table1, Table2, Scaling — the paper's quantitative
//     content as runnable measurements.
//
// Quickstart: see examples/quickstart/main.go.
package codedsm

import (
	"codedsm/internal/csm"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
	"codedsm/internal/lcc"
	"codedsm/internal/metrics"
	"codedsm/internal/mvpoly"
	"codedsm/internal/poly"
	"codedsm/internal/replication"
	"codedsm/internal/sm"
	"codedsm/internal/transport"
)

// ---- Fields ----

// Field is the finite-field abstraction all coding is generic over.
type Field[E comparable] = field.Field[E]

// Goldilocks is GF(p), p = 2^64 - 2^32 + 1.
type Goldilocks = field.Goldilocks

// GF2m is the binary extension field GF(2^m).
type GF2m = field.GF2m

// OpCounts is a snapshot of counted field operations (the paper's
// throughput unit).
type OpCounts = field.OpCounts

// Counting wraps a field and counts operations.
type Counting[E comparable] = field.Counting[E]

// NewGoldilocks returns the default prime field.
func NewGoldilocks() Goldilocks { return field.NewGoldilocks() }

// NewGF2m returns GF(2^m) for 2 <= m <= 16 (Appendix A requires 2^m >= N+K).
func NewGF2m(m uint) (*GF2m, error) { return field.NewGF2m(m) }

// NewCounting wraps a field with operation counters.
func NewCounting[E comparable](f Field[E]) *Counting[E] { return field.NewCounting(f) }

// ---- State machines ----

// Transition is a polynomial state transition function.
type Transition[E comparable] = sm.Transition[E]

// Machine is an uncoded reference state machine.
type Machine[E comparable] = sm.Machine[E]

// BoolFunc is a Boolean transition for NewBooleanMachine.
type BoolFunc = sm.BoolFunc

// NewBank returns the paper's bank-balance machine (degree 1).
func NewBank[E comparable](f Field[E]) (*Transition[E], error) { return sm.NewBank(f) }

// NewQuadraticTally returns a degree-2 accumulator of squared commands.
func NewQuadraticTally[E comparable](f Field[E]) (*Transition[E], error) {
	return sm.NewQuadraticTally(f)
}

// NewMultiplicativeAccumulator returns the bilinear machine s' = s*x.
func NewMultiplicativeAccumulator[E comparable](f Field[E]) (*Transition[E], error) {
	return sm.NewMultiplicativeAccumulator(f)
}

// NewInnerProduct returns a vector machine whose output is <s+x, x>.
func NewInnerProduct[E comparable](f Field[E], dim int) (*Transition[E], error) {
	return sm.NewInnerProduct(f, dim)
}

// NewPolynomialRegister returns a machine of exact degree d.
func NewPolynomialRegister[E comparable](f Field[E], d int) (*Transition[E], error) {
	return sm.NewPolynomialRegister(f, d)
}

// NewAffine returns the linear machine S' = A S + B X.
func NewAffine[E comparable](f Field[E], a, b [][]E) (*Transition[E], error) {
	return sm.NewAffine(f, a, b)
}

// FromExprs builds a transition from polynomial expressions, e.g.
// FromExprs(f, "mymachine", []string{"s"}, []string{"x"},
// []string{"s + x^2"}, []string{"s*x"}).
func FromExprs[E comparable](f Field[E], name string, stateVars, cmdVars, nextExprs, outExprs []string) (*Transition[E], error) {
	return sm.FromExprs(f, name, stateVars, cmdVars, nextExprs, outExprs)
}

// NewBooleanMachine converts an arbitrary Boolean transition function into
// a polynomial machine over GF(2^m) (Appendix A).
func NewBooleanMachine(f Field[uint64], name string, stateBits, cmdBits, outBits int, fn BoolFunc) (*Transition[uint64], error) {
	return sm.NewBoolean(f, name, stateBits, cmdBits, outBits, fn)
}

// PackBits embeds bits into GF(2^m) coordinates (equation (13)).
func PackBits(f *GF2m, v uint64, width int) []uint64 { return sm.PackBits(f, v, width) }

// UnpackBits inverts PackBits.
func UnpackBits(f *GF2m, vec []uint64) (uint64, error) { return sm.UnpackBits(f, vec) }

// NewMachine creates an uncoded reference machine.
func NewMachine[E comparable](tr *Transition[E], initial []E) (*Machine[E], error) {
	return sm.NewMachine(tr, initial)
}

// ---- The CSM engine ----

// Cluster is a running CSM deployment.
type Cluster[E comparable] = csm.Cluster[E]

// ClusterConfig configures a cluster.
type ClusterConfig[E comparable] = csm.Config[E]

// RoundResult reports one executed round.
type RoundResult[E comparable] = csm.RoundResult[E]

// Behavior selects a Byzantine node's misbehaviour.
type Behavior = csm.Behavior

// Byzantine behaviours.
const (
	Honest      = csm.Honest
	WrongResult = csm.WrongResult
	SilentNode  = csm.Silent
	Equivocate  = csm.Equivocate
	BadLeader   = csm.BadLeader
	// Crashed is a fail-stopped node: an erasure, consuming one parity
	// symbol of the fault budget where an active misbehaviour consumes two
	// (a cluster sized for b Byzantine faults tolerates up to 2b crashes).
	Crashed = csm.Crashed
	// Recovering marks a node between rejoining and completing its
	// coded-state repair.
	Recovering = csm.Recovering
)

// ---- Membership and churn ----

// ChurnEvent is one scheduled membership or adversary change
// (ClusterConfig.Churn / ClusterConfig.ChurnFn), applied at the boundary
// of the consensus instance covering its round.
type ChurnEvent = csm.ChurnEvent

// ChurnOp selects what a ChurnEvent does to its node.
type ChurnOp = csm.ChurnOp

// Churn operations.
const (
	ChurnCrash   = csm.ChurnCrash
	ChurnRejoin  = csm.ChurnRejoin
	ChurnCorrupt = csm.ChurnCorrupt
	ChurnRelease = csm.ChurnRelease
)

// RepairStats accounts the cost of coded-state repairs
// (Cluster.RepairStats).
type RepairStats = csm.RepairStats

// MovingAdversary returns a ChurnFn implementing the paper's Section 7
// dynamic adversary: every epochLen rounds the b corruptions release and
// re-target deterministically per seed.
func MovingAdversary(n, b, epochLen int, behavior Behavior, seed uint64) (func(round int) []ChurnEvent, error) {
	return csm.MovingAdversary(n, b, epochLen, behavior, seed)
}

// ConsensusKind selects the consensus-phase protocol.
type ConsensusKind = csm.ConsensusKind

// Consensus protocols.
const (
	OracleConsensus = csm.Oracle
	DolevStrong     = csm.DolevStrong
	PBFT            = csm.PBFT
)

// NetworkMode selects the timing model.
type NetworkMode = transport.Mode

// Timing models.
const (
	Synchronous          = transport.Sync
	PartiallySynchronous = transport.PartialSync
)

// NewCluster builds a CSM cluster. ClusterConfig.BatchSize groups rounds
// under one consensus instance and ClusterConfig.Pipeline overlaps a
// round's client stage with the following rounds' consensus and execution
// phases; Cluster.Run applies both, and Cluster.RunPipelined forces the
// pipelined engine (see the csm package documentation for the
// happens-before contract).
func NewCluster[E comparable](cfg ClusterConfig[E]) (*Cluster[E], error) { return csm.New(cfg) }

// DefaultPipelineDepth is the client-stage queue depth RunPipelined uses
// when ClusterConfig.Pipeline is unset.
const DefaultPipelineDepth = csm.DefaultPipelineDepth

// RandomWorkload generates a reproducible workload.
func RandomWorkload[E comparable](f Field[E], rounds, k, cmdLen int, seed uint64) [][][]E {
	return csm.RandomWorkload(f, rounds, k, cmdLen, seed)
}

// ---- Capacity planning (Table 2 bounds) ----

// SyncMaxMachines returns the largest K for N nodes, b faults, degree d in
// a synchronous network.
func SyncMaxMachines(n, b, d int) int { return lcc.SyncMaxMachines(n, b, d) }

// PSyncMaxMachines is the partially synchronous bound.
func PSyncMaxMachines(n, b, d int) int { return lcc.PSyncMaxMachines(n, b, d) }

// SyncMaxFaults returns the largest b tolerated for fixed N, K, d.
func SyncMaxFaults(n, k, d int) int { return lcc.SyncMaxFaults(n, k, d) }

// PSyncMaxFaults is the partially synchronous bound.
func PSyncMaxFaults(n, k, d int) int { return lcc.PSyncMaxFaults(n, k, d) }

// ---- Replication baselines ----

// ReplicationConfig configures a baseline cluster.
type ReplicationConfig[E comparable] = replication.Config[E]

// FullReplication is the γ=1 baseline.
type FullReplication[E comparable] = replication.FullCluster[E]

// PartialReplication is the β=Θ(N/K) baseline.
type PartialReplication[E comparable] = replication.PartialCluster[E]

// NewFullReplication builds the full-replication baseline.
func NewFullReplication[E comparable](cfg ReplicationConfig[E]) (*FullReplication[E], error) {
	return replication.NewFull(cfg)
}

// NewPartialReplication builds the partial-replication baseline.
func NewPartialReplication[E comparable](cfg ReplicationConfig[E]) (*PartialReplication[E], error) {
	return replication.NewPartial(cfg)
}

// ConcentratedAttack corrupts a majority of one partial-replication group.
func ConcentratedAttack(n, k, target int) (map[int]replication.Behavior, error) {
	return replication.ConcentratedAttack(n, k, target)
}

// Colluding is the replication baselines' lying behaviour.
const Colluding = replication.Colluding

// RandomAllocationExperiment models Section 7's random-allocation scheme
// under static and dynamic adversaries.
type RandomAllocationExperiment = replication.RandomAllocationExperiment

// Adversary kinds for RandomAllocationExperiment.
const (
	StaticAdversary  = replication.StaticAdversary
	DynamicAdversary = replication.DynamicAdversary
)

// ---- INTERMIX ----

// IntermixStrategy selects worker behaviour.
type IntermixStrategy = intermix.Strategy

// Worker strategies.
const (
	HonestWorker   = intermix.HonestWorker
	NaiveLiar      = intermix.NaiveLiar
	ConsistentLiar = intermix.ConsistentLiar
)

// IntermixSession configures a full INTERMIX round.
type IntermixSession[E comparable] = intermix.SessionConfig[E]

// IntermixOutcome reports a session.
type IntermixOutcome[E comparable] = intermix.Outcome[E]

// RunIntermix executes delegation + election + audits + verification.
func RunIntermix[E comparable](cfg IntermixSession[E]) (*IntermixOutcome[E], error) {
	return intermix.RunSession(cfg)
}

// CommitteeSize returns J = ceil(log ε / log µ).
func CommitteeSize(epsilon, mu float64) (int, error) { return intermix.CommitteeSize(epsilon, mu) }

// ---- Experiments (the paper's tables and figures) ----

// Table1Row is one measured row of the paper's Table 1.
type Table1Row = metrics.Table1Row

// Table1Config parameterizes the Table 1 experiment.
type Table1Config = metrics.Table1Config

// Table1 measures security, storage and throughput for every scheme.
func Table1(cfg Table1Config) ([]Table1Row, error) { return metrics.Table1(cfg) }

// RenderTable1 renders rows as text.
func RenderTable1(rows []Table1Row) string { return metrics.RenderTable1(rows) }

// Table2Row is one threshold row of the paper's Table 2.
type Table2Row = metrics.Table2Row

// Table2 sweeps fault counts around every threshold.
func Table2(n, k, d int, seed uint64) ([]Table2Row, error) { return metrics.Table2(n, k, d, seed) }

// RenderTable2 renders rows as text.
func RenderTable2(rows []Table2Row) string { return metrics.RenderTable2(rows) }

// ScalingRow is one point of the Theorem 1 scaling series.
type ScalingRow = metrics.ScalingRow

// ScalingConfig parameterizes the Theorem 1 series (worker count,
// batching, pipelining).
type ScalingConfig = metrics.ScalingConfig

// Scaling measures the Theorem 1 series over network sizes. parallelism is
// the worker count the measured clusters execute with (0 selects
// runtime.GOMAXPROCS); the op-count metrics are worker-count-independent.
func Scaling(ns []int, mu float64, d, rounds int, seed uint64, parallelism int) ([]ScalingRow, error) {
	return metrics.Scaling(ns, mu, d, rounds, seed, parallelism)
}

// ScalingSeries measures the Theorem 1 series under an explicit engine
// configuration (batching, pipelining, parallelism).
func ScalingSeries(cfg ScalingConfig) ([]ScalingRow, error) { return metrics.ScalingSeries(cfg) }

// RenderScaling renders the series as text.
func RenderScaling(rows []ScalingRow) string { return metrics.RenderScaling(rows) }

// RepairRow is one measured point of the repair-cost experiment
// (Section 7, Remark 5).
type RepairRow = metrics.RepairRow

// RepairCost measures what re-provisioning a crashed node costs, per
// network size, against the round cost and the naive re-download
// baseline.
func RepairCost(ns []int, mu float64, d, rounds int, seed uint64) ([]RepairRow, error) {
	return metrics.RepairCost(ns, mu, d, rounds, seed)
}

// RenderRepair renders the repair-cost series as text.
func RenderRepair(rows []RepairRow) string { return metrics.RenderRepair(rows) }

// ---- Polynomial utilities ----

// ParsePolynomial parses a multivariate polynomial expression.
func ParsePolynomial[E comparable](f Field[E], expr string, vars []string) (mvpoly.Poly[E], error) {
	return mvpoly.Parse(f, expr, vars)
}

// NewRing constructs a univariate polynomial ring (NTT-accelerated when the
// field supports it).
func NewRing[E comparable](f Field[E]) *poly.Ring[E] { return poly.NewRing[E](f) }
