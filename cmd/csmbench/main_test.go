package main

import "testing"

// TestAllExperimentsRun executes every experiment end to end (small round
// counts); this is the regression net for the paper-reproduction harness.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	if err := run([]string{"-all", "-rounds", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFlags(t *testing.T) {
	for _, flag := range []string{"-fig3", "-fig5"} {
		if err := run([]string{flag}); err != nil {
			t.Errorf("%s: %v", flag, err)
		}
	}
}

func TestBadTable1N(t *testing.T) {
	if err := run([]string{"-table1", "-n", "25"}); err == nil {
		t.Error("non-divisible N should fail with advice")
	}
}
