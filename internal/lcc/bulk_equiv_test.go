package lcc

import (
	"errors"
	"math/rand/v2"
	"testing"

	"codedsm/internal/field"
	"codedsm/internal/poly"
	"codedsm/internal/rs"
)

// scalarOnly hides any Bulk implementation of the wrapped field, forcing
// every kernel through field.AsBulk's generic per-element adapter — the
// fallback path a plain Field (or a Counting wrapper we want counted
// per-element) takes.
type scalarOnly[E comparable] struct{ field.Field[E] }

// rootOnly additionally forwards NTT capability, so the generic path keeps
// the same multiplication algorithm selection as the native path.
type rootOnly[E comparable] struct{ field.NTTField[E] }

func buildCodes(t *testing.T, k, n int) (native, generic *Code[uint64]) {
	t.Helper()
	gold := field.NewGoldilocks()
	nativeRing := poly.NewRing[uint64](gold)
	genericRing := poly.NewRing[uint64](rootOnly[uint64]{gold})
	if _, ok := any(gold).(field.Bulk[uint64]); !ok {
		t.Fatal("goldilocks must be natively bulk-capable")
	}
	if _, native := any(rootOnly[uint64]{gold}).(field.Bulk[uint64]); native {
		t.Fatal("wrapper must hide the bulk capability")
	}
	nc, err := New(nativeRing, k, n)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := New(genericRing, k, n)
	if err != nil {
		t.Fatal(err)
	}
	return nc, gc
}

// TestEncodeDecodeBulkMatchesGeneric proves the devirtualized kernels leave
// every observable output bit-identical to the generic interface path:
// coefficients, encodings (sequential and parallel), decodings (full and
// subset), detected faulty sets, and error behaviour beyond the radius.
func TestEncodeDecodeBulkMatchesGeneric(t *testing.T) {
	const k, n, l, degree = 5, 24, 7, 2
	native, generic := buildCodes(t, k, n)
	for i := range native.Coeffs() {
		for j := range native.Coeffs()[i] {
			if native.Coeffs()[i][j] != generic.Coeffs()[i][j] {
				t.Fatalf("coefficient (%d,%d) diverged", i, j)
			}
		}
	}
	rng := rand.New(rand.NewPCG(3, 4))
	gold := field.NewGoldilocks()
	values := make([][]uint64, k)
	for i := range values {
		values[i] = field.RandVec[uint64](gold, rng, l)
	}
	encN, err := native.EncodeVectors(values)
	if err != nil {
		t.Fatal(err)
	}
	encG, err := generic.EncodeVectors(values)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		encP, err := native.EncodeVectorsParallel(values, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range encN {
			if !field.VecEqual[uint64](gold, encN[i], encG[i]) || !field.VecEqual[uint64](gold, encN[i], encP[i]) {
				t.Fatalf("encoding row %d diverged (workers=%d)", i, workers)
			}
		}
	}

	// A degree-d execution: results[i][j] = enc[i][j]^degree, then corrupt up
	// to the radius so the faulty-set logic is exercised too.
	results := make([][]uint64, n)
	for i := range results {
		results[i] = make([]uint64, l)
		for j := range results[i] {
			results[i][j] = field.Exp[uint64](gold, encN[i][j], degree)
		}
	}
	dim := native.ResultDim(degree)
	radius := (n - dim) / 2
	for b := 0; b < radius; b++ {
		results[2*b][b%l] += 3
	}
	decN, err := native.DecodeOutputs(results, degree)
	if err != nil {
		t.Fatal(err)
	}
	decG, err := generic.DecodeOutputsParallel(results, degree, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ki := range decN.Outputs {
		if !field.VecEqual[uint64](gold, decN.Outputs[ki], decG.Outputs[ki]) {
			t.Fatalf("decoded output %d diverged", ki)
		}
	}
	if len(decN.FaultyNodes) != radius {
		t.Fatalf("expected %d faulty nodes, got %v", radius, decN.FaultyNodes)
	}
	for i := range decN.FaultyNodes {
		if decN.FaultyNodes[i] != decG.FaultyNodes[i] {
			t.Fatalf("faulty sets diverged: %v vs %v", decN.FaultyNodes, decG.FaultyNodes)
		}
	}

	// Subset decode: drop one row, keep the corruptions decodable.
	indices := make([]int, 0, n-1)
	sub := make([][]uint64, 0, n-1)
	for i := 1; i < n; i++ {
		indices = append(indices, i)
		sub = append(sub, results[i])
	}
	subN, err := native.DecodeOutputsSubset(indices, sub, degree)
	if err != nil {
		t.Fatal(err)
	}
	subG, err := generic.DecodeOutputsSubsetParallel(indices, sub, degree, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ki := range subN.Outputs {
		if !field.VecEqual[uint64](gold, subN.Outputs[ki], subG.Outputs[ki]) {
			t.Fatalf("subset decoded output %d diverged", ki)
		}
	}

	// Error path: corrupt component 0 in well over radius rows with random
	// garbage (a structured offset could itself be a codeword); both paths
	// must reject alike.
	for i := range results {
		results[i][0] = gold.Add(results[i][0], gold.Rand(rng)|1)
	}
	_, errN := native.DecodeOutputs(results, degree)
	_, errG := generic.DecodeOutputs(results, degree)
	if !errors.Is(errN, rs.ErrTooManyErrors) || !errors.Is(errG, rs.ErrTooManyErrors) {
		t.Fatalf("beyond-radius decode: native err %v, generic err %v", errN, errG)
	}
}

// TestCountingTotalsUnchangedByBulkKernels pins the accounting acceptance
// criterion: for identical encode/decode work, a Counting field measured
// per-element (its Bulk capability hidden, i.e. the pre-kernel generic
// path) reports exactly the operation totals the bulk-counting path does.
func TestCountingTotalsUnchangedByBulkKernels(t *testing.T) {
	const k, n, l, degree = 4, 20, 5, 2
	gold := field.NewGoldilocks()
	run := func(f field.Field[uint64]) field.OpCounts {
		t.Helper()
		counter := field.NewCounting[uint64](gold)
		var measured field.Field[uint64]
		if f == nil {
			measured = counter // bulk path: Counting's own kernels
		} else {
			measured = scalarOnly[uint64]{counter} // per-element scalar path
		}
		ring := poly.NewRing[uint64](measured)
		code, err := New(ring, k, n)
		if err != nil {
			t.Fatal(err)
		}
		counter.Reset()
		rng := rand.New(rand.NewPCG(9, 10))
		values := make([][]uint64, k)
		for i := range values {
			values[i] = field.RandVec[uint64](gold, rng, l)
		}
		enc, err := code.EncodeVectors(values)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]uint64, n)
		for i := range results {
			results[i] = make([]uint64, l)
			for j := range results[i] {
				results[i][j] = gold.Mul(enc[i][j], enc[i][j])
			}
		}
		results[3][0]++
		if _, err := code.DecodeOutputs(results, degree); err != nil {
			t.Fatal(err)
		}
		return counter.Counts()
	}
	scalar := run(gold) // any non-nil sentinel selects the scalar wrapper
	bulk := run(nil)
	if scalar.Total() == 0 {
		t.Fatal("scalar path counted nothing")
	}
	if scalar != bulk {
		t.Fatalf("op totals diverged: scalar %+v, bulk %+v", scalar, bulk)
	}
}
