// Crash-recovery handshake for the multi-process engine.
//
// After a whole-cluster restart each node resumes from its own durable
// state, and a crash mid-batch leaves the nodes skewed: the lock-step
// barrier bounds the skew to about one round, but "about" is not a
// protocol. Recover reconciles it before the workload resumes:
//
//  1. Every node broadcasts its recovered round. One lock-step tick
//     later everyone holds all N announcements and computes the same
//     view: target = max round, floor = min round.
//  2. If all nodes agree, recovery is done. Otherwise the decision is
//     pure arithmetic on the shared view, so no coordinator is needed:
//     - If at least K nodes sit at the target round, the stale nodes
//     catch up: each target node broadcasts a delta (its coded share
//     plus the decoded outputs of the rounds the floor is missing),
//     and each stale node absorbs the missing outputs into its digest
//     and rebuilds its own share with lcc.RepairShare over the target
//     nodes' shares — the paper's repair path, reused for recovery.
//     With more than K contributions the repair even corrects a
//     corrupted delta, the same (len-K)/2 bound as state repair.
//     - With fewer than K up-to-date shares no repair interpolation is
//     possible, so the cluster rolls back to the floor round instead:
//     each ahead node rewinds to its retained applied record (share +
//     digest state) at the floor. Re-execution is deterministic, so
//     a rollback costs time, never correctness.
//
// Every path ends with the same number of lock-step ticks on every node
// (announcements: one; deltas: one more), which is what keeps the
// barrier aligned for the workload that follows.
package csm

import (
	"fmt"
	"slices"

	"codedsm/internal/nodeapi"
)

// recoveryDelta is one target node's parsed deltaKind payload.
type recoveryDelta struct {
	from   int
	share  []uint64
	rounds [][][]uint64 // [r-from][machine] decoded outputs
}

// Recover reconciles this node's durable round with its peers after a
// restart. All N nodes must call it at the same point in the link's
// lock-step schedule — in practice right after NewNodeProcess, before
// leading or following any batch. It is correct (and a near no-op) on
// a cold start too.
func (p *NodeProcess[E]) Recover() error {
	if p.stopped {
		return ErrStopped
	}
	// Phase 1: announce rounds; one tick gathers all N.
	var ann bwriter
	ann.u64(uint64(p.round))
	if err := p.link.Broadcast(recoverKind, ann.b); err != nil {
		return err
	}
	rounds := map[int]int{p.self: p.round}
	for ticks := 0; len(rounds) < p.n; ticks++ {
		if ticks >= p.cfg.MaxTicksPerRound {
			missing := make([]int, 0, p.n)
			for i := 0; i < p.n; i++ {
				if _, ok := rounds[i]; !ok {
					missing = append(missing, i)
				}
			}
			return fmt.Errorf("csm: node %d recovery: %w — no announcement from nodes %v after %d ticks",
				p.self, ErrRoundStuck, missing, ticks)
		}
		msgs, err := p.link.Step()
		if err != nil {
			return err
		}
		for _, m := range msgs {
			if m.Kind != recoverKind {
				continue
			}
			r := &breader{b: m.Payload}
			v := int(r.u64())
			if !r.done() || v < 0 {
				continue
			}
			rounds[int(m.From)] = v
		}
	}
	target, floor := p.round, p.round
	//csmlint:allow detmap(min/max fold is commutative and order-independent)
	for _, v := range rounds {
		target = max(target, v)
		floor = min(floor, v)
	}
	if target == floor {
		return nil // everyone agrees; nothing to reconcile
	}
	ahead := make([]int, 0, p.n)
	for i := 0; i < p.n; i++ {
		if rounds[i] == target {
			ahead = append(ahead, i)
		}
	}
	if len(ahead) < p.cfg.K {
		// Not enough up-to-date shares to interpolate a repair.
		return p.rollbackTo(floor)
	}
	if p.round == target {
		payload, err := p.encodeDelta(target, floor)
		if err != nil {
			return err
		}
		if err := p.link.Broadcast(deltaKind, payload); err != nil {
			return err
		}
		// The tick that delivers the delta to the stale nodes.
		_, err = p.link.Step()
		return err
	}
	return p.catchUp(target, ahead)
}

// rollbackTo rewinds this node to the given round from its retained
// applied window (or the initial state for round 0). Nodes already at
// the round keep their state.
func (p *NodeProcess[E]) rollbackTo(round int) error {
	if p.round == round {
		return nil
	}
	if p.round < round {
		return fmt.Errorf("csm: node %d cannot roll forward from round %d to %d", p.self, p.round, round)
	}
	if round == 0 {
		p.round = 0
		p.codedState = append([]E(nil), p.initialCoded...)
		p.digest = nodeapi.NewDigest()
		return p.forceSnapshot()
	}
	if p.store == nil {
		return fmt.Errorf("csm: node %d cannot roll back to round %d without a durable store", p.self, round)
	}
	st, ok := p.store.appliedAt(round - 1)
	if !ok {
		return fmt.Errorf("csm: node %d cannot roll back to round %d: record evicted from the retained window", p.self, round)
	}
	p.round = round
	p.codedState = vecFromWire(p.cfg.BaseField, st.share)
	p.digest = nodeapi.NewDigest()
	if err := p.digest.UnmarshalBinary(st.digest); err != nil {
		return err
	}
	return p.forceSnapshot()
}

// encodeDelta serializes this (up-to-date) node's catch-up delta: its
// coded share at target plus the decoded outputs of rounds [from, target).
func (p *NodeProcess[E]) encodeDelta(target, from int) ([]byte, error) {
	if p.store == nil {
		return nil, fmt.Errorf("csm: node %d cannot serve a recovery delta without a durable store", p.self)
	}
	var w bwriter
	w.u64(uint64(target))
	w.u64(uint64(from))
	w.vec(vecToWire(p.cfg.BaseField, p.codedState))
	w.u32(uint32(p.cfg.K))
	for r := from; r < target; r++ {
		st, ok := p.store.appliedAt(r)
		if !ok || len(st.outputs) != p.cfg.K {
			return nil, fmt.Errorf("csm: node %d cannot serve a recovery delta: round %d evicted from the retained window", p.self, r)
		}
		for _, out := range st.outputs {
			w.vec(out)
		}
	}
	return w.b, nil
}

// parseDelta decodes a deltaKind payload against the agreed target.
func (p *NodeProcess[E]) parseDelta(payload []byte, target int) (recoveryDelta, bool) {
	r := &breader{b: payload}
	gotTarget := int(r.u64())
	from := int(r.u64())
	share := r.vec()
	k := int(r.u32())
	if r.fail || gotTarget != target || from < 0 || from > target ||
		k != p.cfg.K || len(share) != p.tr.StateLen() {
		return recoveryDelta{}, false
	}
	rounds := make([][][]uint64, target-from)
	for i := range rounds {
		outs := make([][]uint64, k)
		for j := range outs {
			outs[j] = r.vec()
		}
		rounds[i] = outs
	}
	if !r.done() {
		return recoveryDelta{}, false
	}
	return recoveryDelta{from: from, share: share, rounds: rounds}, true
}

// catchUp brings a stale node to target: absorb the missing rounds'
// outputs into the digest, then rebuild this node's coded share by
// Reed-Solomon repair over the up-to-date nodes' shares.
func (p *NodeProcess[E]) catchUp(target int, ahead []int) error {
	deltas := make(map[int]recoveryDelta, len(ahead))
	for ticks := 0; len(deltas) < len(ahead); ticks++ {
		if ticks >= p.cfg.MaxTicksPerRound {
			missing := make([]int, 0, len(ahead))
			for _, i := range ahead {
				if _, ok := deltas[i]; !ok {
					missing = append(missing, i)
				}
			}
			return fmt.Errorf("csm: node %d recovery: %w — no delta from nodes %v after %d ticks",
				p.self, ErrRoundStuck, missing, ticks)
		}
		msgs, err := p.link.Step()
		if err != nil {
			return err
		}
		for _, m := range msgs {
			if m.Kind != deltaKind || !slices.Contains(ahead, int(m.From)) {
				continue
			}
			if d, ok := p.parseDelta(m.Payload, target); ok {
				deltas[int(m.From)] = d
			}
		}
	}
	// Outputs are decode results, identical on every honest node; take
	// them from the lowest-indexed contributor.
	src := deltas[ahead[0]]
	if src.from > p.round {
		return fmt.Errorf("csm: node %d at round %d: recovery delta only covers rounds >= %d", p.self, p.round, src.from)
	}
	for r := p.round; r < target; r++ {
		outs := src.rounds[r-src.from]
		p.digest.AddRound(r, outs)
	}
	// The repair path of the paper, reused: interpolate this node's
	// evaluation point from the up-to-date shares (ahead is sorted
	// ascending by construction, as RepairShare requires).
	shares := make([][]E, len(ahead))
	for i, idx := range ahead {
		shares[i] = vecFromWire(p.cfg.BaseField, deltas[idx].share)
	}
	newShare, _, err := p.code.RepairShare(ahead, shares, p.self)
	if err != nil {
		return fmt.Errorf("csm: node %d recovery repair: %w", p.self, err)
	}
	p.codedState = newShare
	p.round = target
	return p.forceSnapshot()
}

// forceSnapshot cuts a snapshot generation at the node's current state
// (no-op without durability). Used after recovery changed the state
// outside the ordinary append path.
func (p *NodeProcess[E]) forceSnapshot() error {
	if p.store == nil {
		return nil
	}
	dstate, err := p.digest.MarshalBinary()
	if err != nil {
		return err
	}
	return p.store.maybeSnapshot(p.round, vecToWire(p.cfg.BaseField, p.codedState), dstate, true)
}
