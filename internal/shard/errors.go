package shard

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrapped shard-level failures keep their own chains:
// errors.Is against csm.ErrRoundLimit, csm.ErrFaultBudgetExceeded, or a
// csm.BatchError still works through a ShardError or AbortError.
var (
	// ErrRouterClosed reports an operation on a closed router.
	ErrRouterClosed = errors.New("shard: router is closed")

	// ErrAborted marks a two-phase cross-shard command that aborted; the
	// typed *AbortError carrying it names the failing shard and phase.
	ErrAborted = errors.New("shard: cross-shard command aborted")
)

// ShardError wraps a failure from one shard's cluster or ingress client,
// naming the shard. Unwrap exposes the underlying csm error chain.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Phase names a stage of the two-phase cross-shard protocol.
type Phase string

const (
	// PhasePrepare is the first phase: every participant shard proves it
	// can serve by executing an identity probe round.
	PhasePrepare Phase = "prepare"
	// PhaseCommit is the second phase: the real per-shard commands run.
	PhaseCommit Phase = "commit"
)

// AbortError reports an aborted cross-shard command: which phase failed,
// on which shard, and — for a commit-phase abort — which shards had
// already committed their part (a prepare-phase abort commits nothing:
// prepare probes are identity commands that leave no state behind).
// It matches ErrAborted via errors.Is, and Unwrap exposes the failing
// shard's underlying error chain (csm.ErrFaultBudgetExceeded,
// csm.ErrRoundLimit, csm.BatchError, ...).
type AbortError struct {
	Phase     Phase
	Shard     int
	Committed []int
	Err       error
}

func (e *AbortError) Error() string {
	if e.Phase == PhaseCommit && len(e.Committed) > 0 {
		return fmt.Sprintf("shard: cross-shard %s aborted on shard %d (shards %v already committed): %v",
			e.Phase, e.Shard, e.Committed, e.Err)
	}
	return fmt.Sprintf("shard: cross-shard %s aborted on shard %d: %v", e.Phase, e.Shard, e.Err)
}

func (e *AbortError) Unwrap() error { return e.Err }

// Is matches the ErrAborted sentinel.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }
