package intermix

import (
	"fmt"

	"codedsm/internal/field"
)

// SessionConfig describes one full INTERMIX round: delegated computation,
// committee election, audits, and commoner verification.
type SessionConfig[E comparable] struct {
	// F is the field (wrap in a counting field to measure complexity).
	F field.Field[E]
	// A is the public N-by-K matrix, X the public vector (in CSM: the
	// Lagrange coefficient matrix and the agreed commands, Section 6.2).
	A [][]E
	X []E
	// NetworkSize is N (auditors + commoners + worker).
	NetworkSize int
	// Mu is the dishonest fraction, Epsilon the failure probability target.
	Mu, Epsilon float64
	// Seed drives the election beacon.
	Seed uint64
	// WorkerStrategy and the corruption site.
	WorkerStrategy         Strategy
	CorruptRow, CorruptCol int
	// Dishonest marks nodes (by index) as dishonest: a dishonest auditor
	// never exposes a guilty worker and raises a fabricated alert against
	// an honest one.
	Dishonest map[int]bool
}

// Outcome reports a session.
type Outcome[E comparable] struct {
	// Output is the worker's claimed Y = AX.
	Output []E
	// Committee lists the self-elected auditor node indices.
	Committee []int
	// Beacon is the randomness actually used (after empty-committee retries).
	Beacon uint64
	// Accepted is the commoners' final verdict on the output.
	Accepted bool
	// ValidAlerts counts alerts that survived commoner verification.
	ValidAlerts int
	// DismissedAlerts counts fabricated alerts thrown out in O(1).
	DismissedAlerts int
	// Queries is the total number of bisection query pairs issued.
	Queries int
}

// RunSession executes the whole protocol in-process. The broadcast
// assumption is modelled by letting the commoners check an alert's final
// step against the worker's actual (deterministic) answers — the "overheard
// conversation" — before the constant-time arithmetic check.
func RunSession[E comparable](cfg SessionConfig[E]) (*Outcome[E], error) {
	if cfg.NetworkSize < 2 {
		return nil, fmt.Errorf("intermix: network size %d too small", cfg.NetworkSize)
	}
	j, err := CommitteeSize(cfg.Epsilon, cfg.Mu)
	if err != nil {
		return nil, err
	}
	committee, beacon, err := ElectNonEmpty(cfg.Seed, cfg.NetworkSize, j)
	if err != nil {
		return nil, err
	}
	worker, err := NewWorker(cfg.F, cfg.A, cfg.X, cfg.WorkerStrategy, cfg.CorruptRow, cfg.CorruptCol)
	if err != nil {
		return nil, err
	}
	output := worker.Output()
	out := &Outcome[E]{Output: output, Committee: committee, Beacon: beacon, Accepted: true}
	for _, auditor := range committee {
		if cfg.Dishonest[auditor] {
			// A dishonest auditor (a) shields a guilty worker by staying
			// silent and (b) attacks an honest one with a fabricated alert.
			fake := &Alert[E]{
				Row:  0,
				Kind: SumMismatch,
				Steps: []Step[E]{{
					Lo: 0, Mid: len(cfg.X) / 2, Hi: len(cfg.X),
					Left: cfg.F.One(), Right: cfg.F.One(), Claimed: cfg.F.Zero(),
				}},
			}
			if commonerCheck(cfg.F, cfg.A, cfg.X, worker, fake) {
				out.ValidAlerts++
				out.Accepted = false
			} else {
				out.DismissedAlerts++
			}
			continue
		}
		alert, err := Audit(cfg.F, cfg.A, cfg.X, output, worker.Answer)
		if err != nil {
			return nil, err
		}
		if alert == nil {
			continue // auditor confirms correctness
		}
		out.Queries += alert.Queries
		if commonerCheck(cfg.F, cfg.A, cfg.X, worker, alert) {
			out.ValidAlerts++
			out.Accepted = false
		} else {
			out.DismissedAlerts++
		}
	}
	return out, nil
}

// commonerCheck models a commoner's validation: the alert's final step must
// match the overheard conversation (the worker's actual answers), and the
// claimed inconsistency must hold — one addition or multiplication.
func commonerCheck[E comparable](f field.Field[E], a [][]E, x []E, worker *Worker[E], alert *Alert[E]) bool {
	if alert == nil {
		return false
	}
	switch alert.Kind {
	case RefusedToAnswer:
		// Everyone observed whether the worker answered.
		return worker.strategy == Refusing
	case SumMismatch:
		if len(alert.Steps) == 0 {
			return false
		}
		last := alert.Steps[len(alert.Steps)-1]
		// Transcript check ("we heard the worker say this"): the recorded
		// answers must be what the worker actually said. Fabricated
		// numbers fail here.
		l, err := worker.Answer(alert.Row, last.Lo, last.Mid)
		if err != nil {
			return true // silence mid-protocol convicts the worker anyway
		}
		r, err := worker.Answer(alert.Row, last.Mid, last.Hi)
		if err != nil {
			return true
		}
		if !f.Equal(l, last.Left) || !f.Equal(r, last.Right) {
			return false
		}
		// The claim must also descend from the overheard conversation: the
		// first step's claim is the published output coordinate, later
		// claims are prior answers.
		if !claimChainValid(f, worker, alert) {
			return false
		}
		return VerifyAlert(f, a, x, alert)
	case LeafMismatch:
		if !claimChainValid(f, worker, alert) {
			return false
		}
		return VerifyAlert(f, a, x, alert)
	default:
		return false
	}
}

// claimChainValid replays the overheard transcript: step i's Claimed must
// equal the parent's chosen half-answer, and the root claim must be the
// published output coordinate. (A real commoner does this by memory of the
// broadcast, not by recomputation; no field operations are charged.)
func claimChainValid[E comparable](f field.Field[E], worker *Worker[E], alert *Alert[E]) bool {
	output := worker.Output()
	if alert.Row < 0 || alert.Row >= len(output) {
		return false
	}
	expect := output[alert.Row]
	for i, st := range alert.Steps {
		if !f.Equal(st.Claimed, expect) {
			return false
		}
		l, errL := worker.Answer(alert.Row, st.Lo, st.Mid)
		r, errR := worker.Answer(alert.Row, st.Mid, st.Hi)
		if errL != nil || errR != nil {
			return true
		}
		if !f.Equal(l, st.Left) || !f.Equal(r, st.Right) {
			return false
		}
		if i < len(alert.Path) {
			if alert.Path[i] == 1 {
				expect = st.Left
			} else {
				expect = st.Right
			}
		}
	}
	if alert.Kind == LeafMismatch {
		return f.Equal(alert.Claim, expect)
	}
	return true
}
