package rs

import (
	"errors"
	"fmt"

	"codedsm/internal/field"
)

// errInconsistent reports an unsolvable linear system.
var errInconsistent = errors.New("rs: inconsistent linear system")

// solveLinear solves mat * x = rhs over f by Gaussian elimination with
// partial (first-nonzero) pivoting. The system may be overdetermined;
// free variables are set to zero. mat is modified in place. Row scaling and
// elimination run on the field's bulk kernels — the O(n^3) inner loops of
// the Berlekamp-Welch decoder.
func solveLinear[E comparable](f field.Field[E], mat [][]E, rhs []E) ([]E, error) {
	rows := len(mat)
	if rows != len(rhs) {
		return nil, fmt.Errorf("rs: %d rows but %d right-hand sides", rows, len(rhs))
	}
	if rows == 0 {
		return nil, nil
	}
	bulk := field.AsBulk(f)
	cols := len(mat[0])
	pivotRowOf := make([]int, cols) // column -> pivot row, or -1
	for j := range pivotRowOf {
		pivotRowOf[j] = -1
	}
	r := 0
	for col := 0; col < cols && r < rows; col++ {
		// Find a pivot.
		pivot := -1
		for i := r; i < rows; i++ {
			if !f.IsZero(mat[i][col]) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		mat[r], mat[pivot] = mat[pivot], mat[r]
		rhs[r], rhs[pivot] = rhs[pivot], rhs[r]
		inv, err := f.Inv(mat[r][col])
		if err != nil {
			return nil, err
		}
		bulk.ScaleVec(mat[r][col:], inv, mat[r][col:])
		rhs[r] = f.Mul(rhs[r], inv)
		for i := 0; i < rows; i++ {
			if i == r || f.IsZero(mat[i][col]) {
				continue
			}
			factor := mat[i][col]
			bulk.SubScaleVec(mat[i][col:], factor, mat[r][col:])
			rhs[i] = f.Sub(rhs[i], f.Mul(factor, rhs[r]))
		}
		pivotRowOf[col] = r
		r++
	}
	// Inconsistency: a zero row with nonzero RHS.
	for i := r; i < rows; i++ {
		if !f.IsZero(rhs[i]) {
			return nil, errInconsistent
		}
	}
	x := make([]E, cols)
	for j := 0; j < cols; j++ {
		if pr := pivotRowOf[j]; pr >= 0 {
			x[j] = rhs[pr]
		} else {
			x[j] = f.Zero() // free variable
		}
	}
	return x, nil
}

// MatVec multiplies an n-by-m matrix by an m-vector over f. It is the
// operation INTERMIX verifies and is shared by tests across packages.
func MatVec[E comparable](f field.Field[E], mat [][]E, x []E) ([]E, error) {
	bulk := field.AsBulk(f)
	out := make([]E, len(mat))
	for i, row := range mat {
		if len(row) != len(x) {
			return nil, fmt.Errorf("rs: row %d: field: dot product length mismatch %d != %d", i, len(row), len(x))
		}
		out[i] = bulk.DotVec(row, x)
	}
	return out, nil
}
