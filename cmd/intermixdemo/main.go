// Command intermixdemo runs one complete INTERMIX session (Section 6.1 of
// the Coded State Machine paper) and prints the whole interaction: worker
// output, committee election, Algorithm 1's bisection transcript, and the
// commoners' constant-time verdicts.
//
//	intermixdemo -n 24 -k 16 -worker consistent-liar -mu 0.33 -epsilon 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"codedsm"
	"codedsm/internal/field"
	"codedsm/internal/intermix"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "intermixdemo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("intermixdemo", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 24, "network size")
		k       = fs.Int("k", 16, "vector length (matrix is n x k)")
		worker  = fs.String("worker", "consistent-liar", "worker strategy: honest|naive-liar|consistent-liar")
		mu      = fs.Float64("mu", 1.0/3.0, "dishonest fraction")
		epsilon = fs.Float64("epsilon", 0.01, "target failure probability")
		seed    = fs.Uint64("seed", 7, "election seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	strategy, err := parseStrategy(*worker)
	if err != nil {
		return err
	}
	gold := field.NewGoldilocks()
	a := make([][]uint64, *n)
	for i := range a {
		a[i] = make([]uint64, *k)
		for j := range a[i] {
			a[i][j] = uint64(i**k + j + 1)
		}
	}
	x := make([]uint64, *k)
	for j := range x {
		x[j] = uint64(3*j + 5)
	}
	j, err := codedsm.CommitteeSize(*epsilon, *mu)
	if err != nil {
		return err
	}
	fmt.Printf("INTERMIX: verifying Y = AX with A %dx%d, committee target J = ceil(log ε / log µ) = %d\n",
		*n, *k, j)
	out, err := codedsm.RunIntermix(codedsm.IntermixSession[uint64]{
		F: gold, A: a, X: x, NetworkSize: *n,
		Mu: *mu, Epsilon: *epsilon, Seed: *seed,
		WorkerStrategy: strategy, CorruptRow: *n / 2, CorruptCol: *k / 2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("elected committee (beacon %d): %v\n", out.Beacon, out.Committee)
	fmt.Printf("worker strategy: %v\n", strategy)
	if strategy != intermix.HonestWorker {
		// Re-run one audit verbosely for the transcript.
		w, err := intermix.NewWorker[uint64](gold, a, x, strategy, *n/2, *k/2)
		if err != nil {
			return err
		}
		alert, err := intermix.Audit[uint64](gold, a, x, w.Output(), w.Answer)
		if err != nil {
			return err
		}
		if alert != nil {
			fmt.Printf("honest auditor found row %d wrong; bisection transcript:\n", alert.Row)
			for lvl, st := range alert.Steps {
				fmt.Printf("  level %d: [%d,%d) left=%d right=%d claim=%d\n",
					lvl, st.Lo, st.Hi, st.Left, st.Right, st.Claimed)
			}
			fmt.Printf("  verdict: %v (path %v, %d query pairs)\n", alert.Kind, alert.Path, alert.Queries)
		}
	}
	fmt.Printf("valid alerts: %d, dismissed alerts: %d\n", out.ValidAlerts, out.DismissedAlerts)
	fmt.Printf("final network verdict: accepted=%v\n", out.Accepted)
	return nil
}

func parseStrategy(s string) (intermix.Strategy, error) {
	switch s {
	case "honest":
		return intermix.HonestWorker, nil
	case "naive-liar":
		return intermix.NaiveLiar, nil
	case "consistent-liar":
		return intermix.ConsistentLiar, nil
	default:
		return intermix.HonestWorker, fmt.Errorf("unknown strategy %q", s)
	}
}
