package poly

import (
	"math/rand/v2"
	"testing"
)

func TestFastDivModMatchesNaive(t *testing.T) {
	r := newGoldRing()
	rng := rand.New(rand.NewPCG(21, 22))
	for _, degs := range [][2]int{{200, 60}, {300, 150}, {128, 64}, {500, 48}, {96, 96}} {
		a := randPoly(r, rng, degs[0])
		b := randPoly(r, rng, degs[1])
		qf, rf, err := r.fastDivMod(a, b)
		if err != nil {
			t.Fatal(err)
		}
		qn, rn, err := r.divModNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Equal(qf, qn) || !r.Equal(rf, rn) {
			t.Fatalf("degs %v: fast division disagrees with naive", degs)
		}
		if r.Deg(rf) >= r.Deg(b) {
			t.Fatalf("degs %v: remainder degree %d not below divisor %d", degs, r.Deg(rf), r.Deg(b))
		}
	}
}

func TestInvSeries(t *testing.T) {
	r := newGoldRing()
	rng := rand.New(rand.NewPCG(23, 24))
	p := randPoly(r, rng, 40)
	if r.f.IsZero(p[0]) {
		p[0] = 1
	}
	for _, k := range []int{1, 2, 7, 31, 64} {
		g, err := r.invSeries(p, k)
		if err != nil {
			t.Fatal(err)
		}
		// p * g ≡ 1 mod z^k.
		prod := r.Mul(p, g)
		if len(prod) == 0 || !r.f.Equal(prod[0], r.f.One()) {
			t.Fatalf("k=%d: constant term of p*g != 1", k)
		}
		for i := 1; i < k && i < len(prod); i++ {
			if !r.f.IsZero(prod[i]) {
				t.Fatalf("k=%d: coefficient %d of p*g nonzero", k, i)
			}
		}
	}
	if _, err := r.invSeries(Poly[uint64]{0, 1}, 4); err == nil {
		t.Error("invSeries with zero constant term should fail")
	}
}

func TestReversedAndTruncated(t *testing.T) {
	p := Poly[uint64]{1, 2, 3}
	rev := reversed(p)
	if rev[0] != 3 || rev[1] != 2 || rev[2] != 1 {
		t.Errorf("reversed = %v", rev)
	}
	if got := truncated(p, 2); len(got) != 2 || got[0] != 1 {
		t.Errorf("truncated = %v", got)
	}
	if got := truncated(p, 5); len(got) != 3 {
		t.Errorf("truncated beyond length = %v", got)
	}
}
