package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrString flags string matching against err.Error(). Error text is
// not API: wrapping (%w), fmt changes, and typed-error refactors all
// reword messages without breaking errors.Is/errors.As, and PR 5's
// migration to typed errors (BatchError, sentinel causes) had to chase
// down exactly this pattern. Inspect errors with errors.Is against a
// sentinel or errors.As against a typed error; a deliberate check of
// human-readable rendering carries //csmlint:allow errstring(reason).
// Test files are not exempt — tests are where message matching
// ossifies.
var ErrString = &Analyzer{
	Name: "errstring",
	Doc: "flag strings.Contains/HasPrefix/HasSuffix/EqualFold on err.Error() and " +
		"==/!= comparisons of err.Error(); use errors.Is/errors.As against typed errors",
	Run: runErrString,
}

// stringMatchFuncs are the strings-package predicates that turn error
// text into control flow.
var stringMatchFuncs = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
	"LastIndex": true,
}

func runErrString(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !stringMatchFuncs[sel.Sel.Name] {
					return true
				}
				pkg := importedPackage(pass, sel)
				if pkg == nil || pkg.Path() != "strings" {
					return true
				}
				for _, arg := range n.Args {
					if isErrorMessageCall(pass, arg) {
						pass.Reportf(n.Pos(),
							"strings.%s on err.Error() matches error text; use errors.Is/errors.As against a typed error, or annotate //csmlint:allow errstring(reason)",
							sel.Sel.Name)
						break
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrorMessageCall(pass, n.X) || isErrorMessageCall(pass, n.Y) {
					pass.Reportf(n.Pos(),
						"comparing err.Error() with %s matches error text; use errors.Is/errors.As against a typed error",
						n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isErrorMessageCall(pass, n.Tag) {
					pass.Reportf(n.Tag.Pos(),
						"switching on err.Error() matches error text; use errors.Is/errors.As against a typed error")
				}
			}
			return true
		})
	}
	return nil
}

// isErrorMessageCall reports whether expr is a call of the Error()
// method of a value implementing the error interface.
func isErrorMessageCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return implementsError(recv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}
