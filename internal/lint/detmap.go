package lint

import (
	"go/ast"
	"go/types"
)

// DetMap flags `range` over a map in the protocol packages. Go
// randomizes map iteration order per run, so any map range whose body
// can influence protocol state, emitted bytes, or client-visible
// output is a determinism bug — exactly the PR 3 client-tally bug,
// where a first-map-iteration fold made two identical runs disagree.
//
// The fix is to iterate a sorted key slice (ints.SortedKeys for
// map[int]bool sets, or sort.Ints/slices.Sort over collected keys).
// A genuinely order-independent loop — pure accumulation into another
// map, counting, closing everything — carries a
// //csmlint:allow detmap(reason) annotation instead, so every
// deliberately unordered iteration in the protocol layer is inventoried.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flag range over a map in protocol packages (internal/csm, internal/lcc, " +
		"internal/transport, internal/nodeapi, internal/consensus, internal/shard); " +
		"iterate sorted keys (ints.SortedKeys) or annotate with //csmlint:allow detmap(reason)",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	if !pathMatchesAny(pass.Path, protocolPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			// Tests assert over maps freely; the invariant guards the
			// engines themselves.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.For,
				"range over map %s has nondeterministic order; iterate sorted keys (e.g. ints.SortedKeys) or annotate //csmlint:allow detmap(reason)",
				types.ExprString(rng.X))
			return true
		})
	}
	return nil
}
