package nodeapi

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// fakeSequencer is a deterministic in-memory Sequencer: LeadRound echoes
// each command prefixed with the round it was cut in, so tests can check
// both sequencing order and result routing without a cluster.
type fakeSequencer struct {
	k, cmdLen int
	round     int
	stopped   bool
	leadErr   error
	led       [][][]uint64
}

func (s *fakeSequencer) Machines() int                      { return s.k }
func (s *fakeSequencer) CmdLen() int                        { return s.cmdLen }
func (s *fakeSequencer) Round() int                         { return s.round }
func (s *fakeSequencer) Canonicalize(cmd []uint64) []uint64 { return cmd }
func (s *fakeSequencer) DigestSum() string                  { return fmt.Sprintf("digest-at-%d", s.round) }
func (s *fakeSequencer) Stop() error                        { s.stopped = true; return nil }

func (s *fakeSequencer) LeadRound(cmds [][]uint64) ([][]uint64, error) {
	if s.leadErr != nil {
		return nil, s.leadErr
	}
	s.led = append(s.led, cmds)
	outs := make([][]uint64, s.k)
	for m := range outs {
		outs[m] = append([]uint64{uint64(s.round)}, cmds[m]...)
	}
	s.round++
	return outs, nil
}

// startServer serves seq on an ephemeral listener; the returned channel
// yields Serve's result once.
func startServer(t *testing.T, seq Sequencer) (addr string, served chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	served = make(chan error, 1)
	go func() { served <- NewServer(seq, t.Logf).Serve(ln) }()
	return ln.Addr().String(), served
}

// submitRound pushes one full round through the client and checks the
// streamed results against the fake's echo scheme.
func submitRound(t *testing.T, c *Client, k int, round int) {
	t.Helper()
	for m := 0; m < k; m++ {
		if err := c.Submit(m, []uint64{uint64(100*round + m)}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	for i := 0; i < k; i++ {
		resp, err := c.ReadResult()
		if err != nil {
			t.Fatalf("result %d of round %d: %v", i, round, err)
		}
		want := []uint64{uint64(round), uint64(100*round + resp.Machine)}
		if resp.Round != round || len(resp.Output) != 2 || resp.Output[0] != want[0] || resp.Output[1] != want[1] {
			t.Fatalf("round %d machine %d: got round=%d output=%v, want output=%v",
				round, resp.Machine, resp.Round, resp.Output, want)
		}
	}
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rawSession sends preformatted bytes and returns the first reply frame.
func rawSession(t *testing.T, addr string, payload []byte) Response {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw)
	go raw.Write(payload) // may block past the server's reply on big payloads
	resp, err := conn.ReadResponse()
	if err != nil {
		t.Fatalf("reading the server's reply: %v", err)
	}
	return resp
}

// TestServerSurvivesMalformedFrame: a garbage line gets a typed error
// reply and drops that client only — the next client is served in full.
func TestServerSurvivesMalformedFrame(t *testing.T) {
	seq := &fakeSequencer{k: 2, cmdLen: 1}
	addr, served := startServer(t, seq)

	resp := rawSession(t, addr, []byte("this is not json\n"))
	if resp.Op != OpError || !strings.Contains(resp.Msg, "malformed") {
		t.Fatalf("want a malformed-frame error reply, got %+v", resp)
	}

	c := dialT(t, addr)
	submitRound(t, c, 2, 0)
	if digest, err := c.Close(); err != nil || digest != "digest-at-1" {
		t.Fatalf("close after recovery client: digest=%q err=%v", digest, err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !seq.stopped {
		t.Fatal("close op did not stop the sequencer")
	}
}

// TestServerRejectsOversizedLine: a frame longer than MaxLine is
// refused with ErrLineTooLong's message instead of buffering without
// bound, and the server keeps serving.
func TestServerRejectsOversizedLine(t *testing.T) {
	seq := &fakeSequencer{k: 2, cmdLen: 1}
	addr, served := startServer(t, seq)

	huge := append(bytes.Repeat([]byte("a"), MaxLine+1), '\n')
	resp := rawSession(t, addr, huge)
	if resp.Op != OpError || !strings.Contains(resp.Msg, "maximum line length") {
		t.Fatalf("want a line-too-long error reply, got %+v", resp)
	}

	c := dialT(t, addr)
	submitRound(t, c, 2, 0)
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServerSurvivesMidStreamDisconnect: a client that vanishes with a
// half-filled round leaves no residue — the next client starts from an
// empty pending queue and the dropped commands are never sequenced.
func TestServerSurvivesMidStreamDisconnect(t *testing.T) {
	seq := &fakeSequencer{k: 2, cmdLen: 1}
	addr, served := startServer(t, seq)

	half := dialT(t, addr)
	if err := half.Submit(0, []uint64{77}); err != nil {
		t.Fatal(err)
	}
	half.conn.Close() // vanish without close: machine 1 never got a command

	c := dialT(t, addr)
	submitRound(t, c, 2, 0)
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if len(seq.led) != 1 {
		t.Fatalf("sequenced %d rounds, want 1 (the disconnected client's half round must be dropped)", len(seq.led))
	}
	if seq.led[0][0][0] == 77 {
		t.Fatal("the disconnected client's pending command leaked into the next session")
	}
}

// TestServerSubmitValidation: out-of-range machines and wrong-length
// commands get error replies, and the server survives both.
func TestServerSubmitValidation(t *testing.T) {
	seq := &fakeSequencer{k: 2, cmdLen: 1}
	addr, served := startServer(t, seq)

	bad := dialT(t, addr)
	if err := bad.Submit(5, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	var remote *RemoteError
	if _, err := bad.ReadResult(); !errors.As(err, &remote) || !strings.Contains(remote.Msg, "out of range") {
		t.Fatalf("want a sequencer-reported out-of-range error, got %v", err)
	}

	bad = dialT(t, addr)
	if err := bad.Submit(0, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.ReadResult(); !errors.As(err, &remote) || !strings.Contains(remote.Msg, "length") {
		t.Fatalf("want a sequencer-reported command-length error, got %v", err)
	}

	c := dialT(t, addr)
	submitRound(t, c, 2, 0)
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServerStatus: the status op reports round, machine count, and the
// running digest, interleaved with submissions.
func TestServerStatus(t *testing.T) {
	seq := &fakeSequencer{k: 3, cmdLen: 1}
	addr, served := startServer(t, seq)

	c := dialT(t, addr)
	round, machines, digest, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if round != 0 || machines != 3 || digest != "digest-at-0" {
		t.Fatalf("fresh status = (%d, %d, %q)", round, machines, digest)
	}
	submitRound(t, c, 3, 0)
	if round, _, digest, err = c.Status(); err != nil || round != 1 || digest != "digest-at-1" {
		t.Fatalf("status after a round = (%d, %q, %v)", round, digest, err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServerSequencingFailureStopsServing: an engine failure is fatal —
// the client gets the error frame and Serve returns the error.
func TestServerSequencingFailureStopsServing(t *testing.T) {
	boom := errors.New("cluster wedged")
	seq := &fakeSequencer{k: 1, cmdLen: 1, leadErr: boom}
	addr, served := startServer(t, seq)

	c := dialT(t, addr)
	if err := c.Submit(0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	var remote *RemoteError
	if _, err := c.ReadResult(); !errors.As(err, &remote) || !strings.Contains(remote.Msg, "wedged") {
		t.Fatalf("want the engine error surfaced as a RemoteError, got %v", err)
	}
	if err := <-served; !errors.Is(err, boom) {
		t.Fatalf("serve returned %v, want the engine error", err)
	}
}

// TestServerListenerCloseStopsCluster: tearing down the listener (the
// signal path in csmnode) stops the cluster so followers unwind.
func TestServerListenerCloseStopsCluster(t *testing.T) {
	seq := &fakeSequencer{k: 1, cmdLen: 1}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- NewServer(seq, t.Logf).Serve(ln) }()
	ln.Close()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !seq.stopped {
		t.Fatal("listener close did not stop the cluster")
	}
}
