// Package dolevstrong implements the Dolev-Strong authenticated broadcast
// protocol: with message signatures, a designated sender broadcasts a value
// and after t+1 rounds every honest node decides the same value, for any
// number of faults t < N. This is the classic Byzantine generals protocol
// with digital signatures the paper's synchronous consensus phase relies on
// (Section 3: "consistency ... for an arbitrary number b < N of malicious
// nodes").
//
// Participants are written against consensus.Transport, so one instance
// runs identically over the simulated lock-step network and over a
// transport.Link into a real TCP cluster; chain signatures are blob
// signatures over a fixed binary encoding (consensus.ChainMsg), which is
// what makes them verify across transports.
//
// Protocol (lock-step rounds):
//
//	round 0:  the sender signs its value and broadcasts (value, [sig_s]).
//	round r:  a node that receives a value carried by a chain of r distinct
//	          valid signatures starting with the sender's — and has
//	          extracted fewer than two distinct values so far — extracts
//	          it, appends its own signature, and re-broadcasts.
//	round t+1: a node decides the unique extracted value, or the default
//	          value if zero or more than one value was extracted (sender
//	          provably faulty).
package dolevstrong

import (
	"encoding/binary"
	"fmt"

	"codedsm/internal/consensus"
	"codedsm/internal/transport"
)

// msgKind tags Dolev-Strong messages on the wire.
const msgKind = "dolev-strong"

// Config configures one protocol instance at one node.
type Config struct {
	// Transport carries this node's broadcasts and blob signatures. Both
	// consensus.NewNetTransport (simulated network) and a transport.Link
	// (one real process per node) satisfy it.
	Transport consensus.Transport
	// Sender is the designated broadcaster for this slot.
	Sender transport.NodeID
	// Slot disambiguates concurrent instances (signature domain).
	Slot uint64
	// MaxFaults is t; the protocol runs t+1 relay rounds.
	MaxFaults int
	// Value is the sender's proposal (ignored at other nodes).
	Value []byte
	// Default is decided when the sender is detected faulty.
	Default []byte
}

// Node is one participant. It implements consensus.Node.
type Node struct {
	cfg       Config
	tr        consensus.Transport
	id        transport.NodeID
	tick      int
	extracted map[string][]byte // key: string(value)
	relayed   map[string]bool
	decided   []byte
	done      bool
}

var _ consensus.Node = (*Node)(nil)

// New creates a protocol participant.
func New(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("dolevstrong: nil transport")
	}
	if cfg.MaxFaults < 0 || cfg.MaxFaults >= cfg.Transport.N() {
		return nil, fmt.Errorf("dolevstrong: MaxFaults %d out of range [0,%d)", cfg.MaxFaults, cfg.Transport.N())
	}
	if int(cfg.Sender) < 0 || int(cfg.Sender) >= cfg.Transport.N() {
		return nil, fmt.Errorf("dolevstrong: sender %d out of range [0,%d)", cfg.Sender, cfg.Transport.N())
	}
	return &Node{
		cfg:       cfg,
		tr:        cfg.Transport,
		id:        cfg.Transport.Self(),
		extracted: make(map[string][]byte),
		relayed:   make(map[string]bool),
	}, nil
}

// signContext is the domain-separated context for chain signatures.
func signContext(slot uint64) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], slot)
	return "ds-chain:" + string(b[:])
}

// Tick implements consensus.Node.
func (n *Node) Tick(inbox []transport.Message) error {
	defer func() { n.tick++ }()
	if n.tick == 0 {
		if n.id == n.cfg.Sender {
			n.extract(n.cfg.Value)
			if err := n.relay(n.cfg.Value, nil, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if n.done {
		return nil
	}
	round := n.tick // messages processed at tick r were sent at r-1
	for _, m := range inbox {
		if m.Kind != msgKind {
			continue
		}
		cm, err := consensus.DecodeChainMsg(m.Payload)
		if err != nil {
			continue // malformed: Byzantine garbage
		}
		if cm.Slot != n.cfg.Slot {
			continue
		}
		if !n.validChain(cm, round) {
			continue
		}
		if n.extract(cm.Value) && len(n.extracted) <= 2 && round <= n.cfg.MaxFaults {
			if err := n.relay(cm.Value, cm.Signers, cm.Sigs); err != nil {
				return err
			}
		}
	}
	if round >= n.cfg.MaxFaults+1 {
		if len(n.extracted) == 1 {
			//csmlint:allow detmap(single-entry map by the len==1 guard; iteration order cannot matter)
			for _, v := range n.extracted {
				n.decided = v
			}
		} else {
			n.decided = n.cfg.Default
		}
		if n.decided == nil {
			n.decided = []byte{}
		}
		n.done = true
	}
	return nil
}

// extract records a value; it reports whether the value was new.
func (n *Node) extract(value []byte) bool {
	key := string(value)
	if _, ok := n.extracted[key]; ok {
		return false
	}
	n.extracted[key] = append([]byte(nil), value...)
	return true
}

// validChain checks a signature chain received in the given round: at least
// `round` distinct valid signers, the first being the designated sender.
func (n *Node) validChain(cm consensus.ChainMsg, round int) bool {
	if len(cm.Signers) != len(cm.Sigs) || len(cm.Signers) < round {
		return false
	}
	if len(cm.Signers) == 0 || transport.NodeID(cm.Signers[0]) != n.cfg.Sender {
		return false
	}
	seen := make(map[uint64]bool, len(cm.Signers))
	ctx := signContext(cm.Slot)
	for i, signer := range cm.Signers {
		if seen[signer] {
			return false
		}
		seen[signer] = true
		if !n.tr.VerifyBlob(transport.NodeID(signer), ctx, cm.Value, cm.Sigs[i]) {
			return false
		}
	}
	return true
}

// relay appends this node's signature to the chain and broadcasts.
func (n *Node) relay(value []byte, signers []uint64, sigs [][]byte) error {
	key := string(value)
	if n.relayed[key] {
		return nil
	}
	n.relayed[key] = true
	alreadySigned := false
	for _, s := range signers {
		if transport.NodeID(s) == n.id {
			alreadySigned = true
		}
	}
	outSigners := append([]uint64{}, signers...)
	outSigs := make([][]byte, len(sigs))
	copy(outSigs, sigs)
	if !alreadySigned {
		outSigners = append(outSigners, uint64(n.id))
		outSigs = append(outSigs, n.tr.SignBlob(signContext(n.cfg.Slot), value))
	}
	payload, err := consensus.AppendChainMsg(nil, consensus.ChainMsg{
		Slot: n.cfg.Slot, Value: value, Signers: outSigners, Sigs: outSigs,
	})
	if err != nil {
		return fmt.Errorf("dolevstrong: encode: %w", err)
	}
	return n.tr.Broadcast(msgKind, payload)
}

// Decided implements consensus.Node.
func (n *Node) Decided() ([]byte, bool) {
	if !n.done {
		return nil, false
	}
	return n.decided, true
}

// Rounds returns the number of lock-step rounds a full instance takes:
// t+2 ticks (one send round plus t+1 relay/decide rounds).
func Rounds(maxFaults int) int { return maxFaults + 2 }
